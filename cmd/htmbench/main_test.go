package main

import (
	"strings"
	"testing"

	"htmcmp/internal/harness"
	"htmcmp/internal/harness/sweep"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

// TestReconcileTraceResume pins the -trace-dir / -resume interaction:
// tracing needs every cell to execute, so a trace dir must force resume off
// with a warning; every other combination passes through silently.
func TestReconcileTraceResume(t *testing.T) {
	cases := []struct {
		name       string
		traceDir   string
		resume     bool
		wantResume bool
		wantWarn   bool
	}{
		{"no trace, resume on", "", true, true, false},
		{"no trace, resume off", "", false, false, false},
		{"trace forces resume off", "traces", true, false, true},
		{"trace, resume already off", "traces", false, false, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			got := reconcileTraceResume(tc.traceDir, tc.resume, &buf)
			if got != tc.wantResume {
				t.Errorf("effective resume = %v, want %v", got, tc.wantResume)
			}
			warned := buf.Len() > 0
			if warned != tc.wantWarn {
				t.Errorf("warning emitted = %v, want %v (output %q)", warned, tc.wantWarn, buf.String())
			}
			if tc.wantWarn && !strings.Contains(buf.String(), "-trace-dir forces -resume=false") {
				t.Errorf("warning does not name the flags: %q", buf.String())
			}
		})
	}
}

// TestVerifyCells exercises the -verify pass over a small planned cell set:
// duplicate configurations verify once and footprint cells are skipped.
func TestVerifyCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark cells")
	}
	spec := harness.RunSpec{
		Platform: platform.IntelCore, Benchmark: "ssca2", Threads: 2,
		Scale: stamp.ScaleTest, Seed: 42, Repeats: 1,
	}
	cells := []sweep.Cell{
		{Kind: sweep.Measure, Spec: spec},
		{Kind: sweep.Measure, Spec: spec}, // duplicate: verified once
		{Kind: sweep.Footprint, Bench: "ssca2", Platform: platform.IntelCore},
	}
	var buf strings.Builder
	n, err := verifyCells(cells, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("verified %d cells, want 1 (dedupe + footprint skip)", n)
	}
	if got := strings.Count(buf.String(), "verify ssca2"); got != 1 {
		t.Errorf("progress logged %d times, want 1:\n%s", got, buf.String())
	}
}
