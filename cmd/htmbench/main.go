// Command htmbench regenerates the tables and figures of Nakaike et al.,
// "Quantitative Comparison of Hardware Transactional Memory for Blue
// Gene/Q, zEnterprise EC12, Intel Core, and POWER8" (ISCA 2015) on the
// simulated-HTM substrate.
//
// Usage:
//
//	htmbench -exp fig2 [-scale sim] [-repeats 2] [-tune] [-csv] [-v]
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig9, fig10,
// fig11, prefetch (the Section 5.1 ablation), or all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"htmcmp/internal/features"
	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1,fig2,fig3,fig4,fig5,fig6,fig7,fig9,fig10,fig11,prefetch,stm,capacity,all")
	scaleName := flag.String("scale", "sim", "workload scale: test, sim, full")
	repeats := flag.Int("repeats", 2, "measured runs per point (paper: 4)")
	tune := flag.Bool("tune", false, "search retry counts per test case as the paper does (slow)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	verbose := flag.Bool("v", false, "log per-point progress to stderr")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	var scale stamp.Scale
	switch *scaleName {
	case "test":
		scale = stamp.ScaleTest
	case "sim":
		scale = stamp.ScaleSim
	case "full":
		scale = stamp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "htmbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	opts := harness.Options{
		Scale:   scale,
		Repeats: *repeats,
		Tune:    *tune,
		Seed:    *seed,
	}
	if *verbose {
		opts.Log = os.Stderr
	}

	emit := func(t harness.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}

	run := func(name string) error {
		switch name {
		case "table1":
			emit(harness.Table1())
		case "fig2", "fig3":
			f2, f3, err := harness.Fig2And3(opts)
			if err != nil {
				return err
			}
			if name == "fig2" {
				emit(f2)
			} else {
				emit(f3)
			}
		case "fig2+3":
			f2, f3, err := harness.Fig2And3(opts)
			if err != nil {
				return err
			}
			emit(f2)
			emit(f3)
		case "fig4":
			t, err := harness.Fig4(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "fig5":
			t, err := harness.Fig5(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "fig6":
			t, err := fig6Table(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "fig7":
			t, err := harness.Fig7(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "fig9":
			t, err := fig9Table(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "fig10", "fig11":
			t10, t11, err := figFootprintTables(opts)
			if err != nil {
				return err
			}
			if name == "fig10" {
				emit(t10)
			} else {
				emit(t11)
			}
		case "prefetch":
			t, err := harness.PrefetchAblation(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "stm":
			t, err := harness.STMComparison(opts)
			if err != nil {
				return err
			}
			emit(t)
		case "capacity":
			for _, bench := range []string{"intruder", "vacation-high", "yada"} {
				t, err := harness.CapacitySweep(opts, bench)
				if err != nil {
					return err
				}
				emit(t)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig2+3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "prefetch", "stm", "capacity"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

// fig6Table renders the Figure 6 CLQ experiment.
func fig6Table(opts harness.Options) (harness.Table, error) {
	logf(opts.Log, "fig6: zEC12 constrained transactions on ConcurrentLinkedQueue")
	results, err := features.RunCLQ(features.CLQOptions{Seed: opts.Seed})
	if err != nil {
		return harness.Table{}, err
	}
	t := harness.Table{
		Title:  "Figure 6: relative execution time vs lock-free ConcurrentLinkedQueue (zEC12)",
		Note:   "lower is better; baseline is the lock-free CAS implementation at each thread count",
		Header: []string{"threads", "LockFree", "NoRetryTM", "OptRetryTM", "ConstrainedTM"},
	}
	byThreads := map[int]map[features.CLQMode]float64{}
	var order []int
	for _, r := range results {
		if _, ok := byThreads[r.Threads]; !ok {
			byThreads[r.Threads] = map[features.CLQMode]float64{}
			order = append(order, r.Threads)
		}
		byThreads[r.Threads][r.Mode] = r.Relative
	}
	for _, n := range order {
		m := byThreads[n]
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", m[features.CLQLockFree]),
			fmt.Sprintf("%.2f", m[features.CLQNoRetryTM]),
			fmt.Sprintf("%.2f", m[features.CLQOptRetryTM]),
			fmt.Sprintf("%.2f", m[features.CLQConstrainedTM]))
	}
	return t, nil
}

// fig9Table renders the Figure 9 TLS experiment.
func fig9Table(opts harness.Options) (harness.Table, error) {
	logf(opts.Log, "fig9: POWER8 TLS with and without suspend/resume")
	results, err := features.RunTLS(features.TLSOptions{Seed: opts.Seed})
	if err != nil {
		return harness.Table{}, err
	}
	t := harness.Table{
		Title:  "Figure 9: TLS speed-up over sequential on POWER8",
		Header: []string{"kernel", "suspend/resume", "threads", "speedup", "abort%"},
	}
	for _, r := range results {
		sr := "without"
		if r.SuspendResume {
			sr = "with"
		}
		t.AddRow(r.Kernel.String(), sr, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.Speedup), fmt.Sprintf("%.1f", r.AbortRatio))
	}
	return t, nil
}

// figFootprintTables renders Figures 10 and 11.
func figFootprintTables(opts harness.Options) (t10, t11 harness.Table, err error) {
	logf(opts.Log, "fig10/11: transaction footprint traces")
	fps, err := trace.CollectAll(trace.Options{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return t10, t11, err
	}
	t10 = harness.Table{
		Title:  "Figure 10: 90-percentile transactional-load size vs capacity",
		Note:   "abort ratios for the same pairs appear in Figure 3; '>' marks sizes exceeding the platform's capacity",
		Header: []string{"benchmark", "platform", "P90 load KB", "max KB", "capacity KB", "over?"},
	}
	t11 = harness.Table{
		Title:  "Figure 11: 90-percentile transactional-store size vs capacity",
		Header: []string{"benchmark", "platform", "P90 store KB", "max KB", "capacity KB", "over?"},
	}
	for _, fp := range fps {
		spec := platform.New(fp.Platform)
		mark := func(over bool) string {
			if over {
				return ">"
			}
			return ""
		}
		t10.AddRow(fp.Benchmark, fp.Platform.Short(),
			fmt.Sprintf("%.2f", fp.P90LoadKB), fmt.Sprintf("%.2f", fp.MaxLoadKB),
			fmt.Sprintf("%.0f", float64(spec.LoadCapacity)/1024), mark(fp.ExceedsLoadCap))
		t11.AddRow(fp.Benchmark, fp.Platform.Short(),
			fmt.Sprintf("%.2f", fp.P90StoreKB), fmt.Sprintf("%.2f", fp.MaxStoreKB),
			fmt.Sprintf("%.0f", float64(spec.StoreCapacity)/1024), mark(fp.ExceedsStoreCap))
	}
	return t10, t11, nil
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		if !strings.HasSuffix(format, "\n") {
			format += "\n"
		}
		fmt.Fprintf(w, format, args...)
	}
}
