// Command htmbench regenerates the tables and figures of Nakaike et al.,
// "Quantitative Comparison of Hardware Transactional Memory for Blue
// Gene/Q, zEnterprise EC12, Intel Core, and POWER8" (ISCA 2015) on the
// simulated-HTM substrate.
//
// Usage:
//
//	htmbench -exp fig2 [-scale sim] [-repeats 2] [-tune] [-csv] [-v]
//	         [-jobs N] [-cache-dir .htmcache] [-no-cache] [-resume=false]
//	         [-trace-dir DIR] [-metrics FILE] [-verify]
//	         [-http :8080] [-http-linger 10m] [-flight-dir DIR]
//	         [-chaos] [-chaos-seed N] [-cell-retries N] [-chaos-report FILE]
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig9, fig10,
// fig11, prefetch (the Section 5.1 ablation), or all.
//
// Sweeps are scheduled: the selected experiments are first decomposed into
// their independent (benchmark, platform, threads, variant, seed) cells,
// which a worker pool executes concurrently (-jobs) on top of a
// content-addressed on-disk result cache (-cache-dir), so a rerun or an
// interrupted sweep resumes by skipping completed cells. Tables are then
// rendered from the precomputed results, byte-identical to a serial run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"htmcmp/internal/adapt"
	"htmcmp/internal/cache"
	"htmcmp/internal/chaos"
	"htmcmp/internal/features"
	"htmcmp/internal/harness"
	"htmcmp/internal/harness/sweep"
	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1,fig2,fig3,fig4,fig5,fig6,fig7,fig9,fig10,fig11,prefetch,stm,capacity,adaptive,all")
	scaleName := flag.String("scale", "sim", "workload scale: test, sim, full")
	repeats := flag.Int("repeats", 2, "measured runs per point (paper: 4)")
	tune := flag.Bool("tune", false, "search retry counts per test case as the paper does (slow)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	verbose := flag.Bool("v", false, "log per-point progress to stderr")
	seed := flag.Uint64("seed", 42, "workload seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent sweep workers")
	cacheDir := flag.String("cache-dir", ".htmcache", "on-disk result cache directory")
	noCache := flag.Bool("no-cache", false, "disable the on-disk result cache entirely")
	resume := flag.Bool("resume", true, "reuse cached results from earlier runs (false recomputes and overwrites)")
	cellTimeout := flag.Duration("cell-timeout", 30*time.Minute, "per-cell wall-clock budget (0 = unbounded)")
	progress := flag.Bool("progress", true, "print live sweep progress/ETA to stderr")
	traceDir := flag.String("trace-dir", "", "write per-cell JSONL transaction-event files into this directory (implies -resume=false: cached cells execute nothing)")
	verify := flag.Bool("verify", false, "cross-check every planned cell under {HTM, NOrec STM, global lock} before measuring; exit non-zero on divergence")
	metricsPath := flag.String("metrics", "", "write sweep-level counters as JSON to this file (METRICS.json style)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	httpAddr := flag.String("http", "", "serve live telemetry (dashboard at /, Prometheus text at /metrics, JSON at /api/state) on this address, e.g. :8080")
	sampleEvery := flag.Duration("sample", 500*time.Millisecond, "telemetry sampling period")
	httpLinger := flag.Duration("http-linger", 0, "keep the telemetry server up this long after the sweep completes (0 = close immediately)")
	flightDir := flag.String("flight-dir", "", "enable the flight recorder, writing anomaly dumps under this directory")
	flightAbort := flag.Float64("flight-abort-rate", 0, "aborts/sec that triggers a flight dump (0 = off)")
	flightStall := flag.Duration("flight-stall", 0, "a sweep cell running longer than this triggers a flight dump (0 = off)")
	flightDemotion := flag.Float64("flight-demotion-rate", 0, "STM demotions/sec that triggers a flight dump (0 = off)")
	flightProfile := flag.Bool("flight-profile", false, "include pprof CPU+heap profiles in flight dumps")
	chaosOn := flag.Bool("chaos", false, "inject deterministic faults into the sweep (every class, default mix); all injected faults are recovered and never cached, so rendered tables are unchanged")
	chaosSeed := flag.Uint64("chaos-seed", 42, "seed for fault injection and retry-backoff jitter")
	cellRetries := flag.Int("cell-retries", 2, "per-cell retry budget before quarantine (0 disables self-healing)")
	chaosReport := flag.String("chaos-report", "", "write injected-fault and recovery counts as JSON to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "htmbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush transient garbage so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "htmbench: memprofile: %v\n", err)
			}
		}()
	}

	var scale stamp.Scale
	switch *scaleName {
	case "test":
		scale = stamp.ScaleTest
	case "sim":
		scale = stamp.ScaleSim
	case "full":
		scale = stamp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "htmbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	opts := harness.Options{
		Scale:   scale,
		Repeats: *repeats,
		Tune:    *tune,
		Seed:    *seed,
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig2+3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "prefetch", "stm", "capacity", "adaptive"}
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: %v\n", err)
			os.Exit(1)
		}
	}
	*resume = reconcileTraceResume(*traceDir, *resume, os.Stderr)

	var store *cache.Store
	if !*noCache {
		var err error
		store, err = cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: %v (continuing without cache)\n", err)
		}
	}
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	var tel *obs.Telemetry
	if *httpAddr != "" || *flightDir != "" {
		cfg := obs.TelemetryConfig{
			HTTPAddr:       *httpAddr,
			SampleInterval: *sampleEvery,
			Reasons:        htm.NumReasons,
			Modes:          adapt.NumModes,
			Workers:        *jobs,
		}
		if *flightDir != "" {
			cfg.Flight = &obs.FlightConfig{
				Dir:          *flightDir,
				AbortRate:    *flightAbort,
				StallTimeout: *flightStall,
				DemotionRate: *flightDemotion,
				Profile:      *flightProfile,
			}
			cfg.SIGQUIT = true
		}
		var err error
		tel, err = obs.StartTelemetry(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer tel.Close()
		if a := tel.Addr(); a != "" {
			fmt.Fprintf(os.Stderr, "htmbench: live telemetry at http://%s/\n", a)
		}
	}
	var faults *chaos.Injector
	if *chaosOn {
		faults = chaos.New(chaos.DefaultConfig(*chaosSeed))
		fmt.Fprintf(os.Stderr, "htmbench: chaos enabled (seed %d); injected faults are recovered, results stay clean\n", *chaosSeed)
	}
	sched := sweep.New(sweep.Config{
		Jobs:      *jobs,
		Cache:     store,
		Resume:    *resume,
		Timeout:   *cellTimeout,
		Progress:  progressW,
		TraceDir:  *traceDir,
		Telemetry: tel,
		Retries:   *cellRetries,
		Seed:      *chaosSeed,
		Faults:    faults,
	})

	// Planning pass: record every cell the selected experiments will
	// request. Tables are rendered against zero results and discarded;
	// experiments without sweep cells (table1, fig6, fig9) are skipped.
	plan := sweep.NewPlan()
	planOpts := opts
	planOpts.Exec = plan
	for _, n := range names {
		if !hasCells(n) {
			continue
		}
		if err := runExperiment(n, planOpts, plan, io.Discard, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: planning %s: %v\n", n, err)
			os.Exit(1)
		}
	}

	// Verification pass (optional): every distinct measured configuration
	// is re-run under the differential runner modes before any time is
	// spent on the sweep proper.
	if *verify {
		if n, err := verifyCells(plan.Cells(), os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "htmbench: verified %d cells\n", n)
		}
	}

	// Execution pass: the worker pool computes (or loads) every cell.
	sum := sched.Prewarm(plan.Cells())

	// Render pass: the experiments re-run serially, now satisfied from
	// the precomputed results, so tables come out byte-identical to a
	// fully serial run.
	renderOpts := opts
	renderOpts.Exec = sched
	if *verbose {
		renderOpts.Log = os.Stderr
	}
	for _, n := range names {
		if err := runExperiment(n, renderOpts, sched, os.Stdout, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: %s: %v\n", n, err)
			fmt.Fprintf(os.Stderr, "sweep summary: %s\n", sum)
			writeMetrics(*metricsPath, sched)
			writeChaosReport(*chaosReport, faults, sum)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep summary: %s\n", sum)
	writeMetrics(*metricsPath, sched)
	writeChaosReport(*chaosReport, faults, sum)
	if tel != nil && *httpLinger > 0 {
		fmt.Fprintf(os.Stderr, "htmbench: telemetry server up for another %s (SIGQUIT dumps a flight recording)\n", *httpLinger)
		time.Sleep(*httpLinger)
	}
}

// verifyCells runs harness.Verify over the distinct measured configurations
// among cells (footprint-collection cells have nothing to verify), logging
// per-cell progress to w, and returns how many were verified. The first
// divergence aborts the pass: a broken engine makes the sweep worthless.
func verifyCells(cells []sweep.Cell, w io.Writer) (int, error) {
	seen := map[string]bool{}
	n := 0
	for _, c := range cells {
		if c.Kind == sweep.Footprint || c.Spec.Benchmark == "" {
			continue
		}
		if seen[c.Spec.Label()] {
			continue
		}
		seen[c.Spec.Label()] = true
		fmt.Fprintf(w, "htmbench: verify %s\n", c.Spec.Label())
		if err := harness.Verify(c.Spec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// reconcileTraceResume applies the -trace-dir / -resume flag interaction:
// cache hits never execute a simulation, so they would leave holes in the
// trace set — a non-empty trace dir therefore forces recomputation,
// warning on w. It returns the effective resume value.
func reconcileTraceResume(traceDir string, resume bool, w io.Writer) bool {
	if traceDir == "" || !resume {
		return resume
	}
	fmt.Fprintln(w, "htmbench: -trace-dir forces -resume=false (cached cells produce no events)")
	return false
}

// writeMetrics dumps the scheduler's live counters to path (no-op when
// empty). Written even on render failure so a partial sweep is observable.
func writeMetrics(path string, sched *sweep.Scheduler) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htmbench: metrics: %v\n", err)
		return
	}
	defer f.Close()
	if err := sched.Metrics().WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "htmbench: metrics: %v\n", err)
	}
}

// writeChaosReport dumps the injected-fault counters and the sweep's healing
// outcomes to path as JSON (no-op when path is empty). CI uploads it as an
// artifact so a chaos-smoke run leaves an inspectable record of what was
// injected and what recovered.
func writeChaosReport(path string, faults *chaos.Injector, sum sweep.Summary) {
	if path == "" {
		return
	}
	if faults == nil {
		fmt.Fprintln(os.Stderr, "htmbench: chaos-report: nothing to report without -chaos")
		return
	}
	report := struct {
		Seed        uint64            `json:"seed"`
		Injected    map[string]uint64 `json:"injected"`
		TotalFired  uint64            `json:"total_fired"`
		Cells       int               `json:"cells"`
		Retried     int               `json:"retried"`
		Quarantined int               `json:"quarantined"`
		Recovered   int               `json:"recovered"`
		Evicted     int               `json:"evicted"`
		Failed      int               `json:"failed"`
	}{
		Seed: faults.Seed(), Injected: faults.Counts(), TotalFired: faults.TotalFired(),
		Cells: sum.Cells, Retried: sum.Retried, Quarantined: sum.Quarantined,
		Recovered: sum.Recovered, Evicted: sum.Evicted, Failed: sum.Failed,
	}
	data, err := json.MarshalIndent(report, "", " ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "htmbench: chaos-report: %v\n", err)
	}
}

// hasCells reports whether the experiment decomposes into sweep cells; the
// remaining ones (static tables and the special-feature microbenchmarks) run
// inline during the render pass only.
func hasCells(name string) bool {
	switch name {
	case "table1", "fig6", "fig9":
		return false
	}
	return true
}

// runExperiment renders one experiment to out. The Exec inside opts (and
// coll, its trace counterpart) decides how measurement cells are satisfied:
// a *sweep.Plan records them, a *sweep.Scheduler serves them precomputed,
// and nil computes them inline.
func runExperiment(name string, opts harness.Options, coll trace.Collector, out io.Writer, csv bool) error {
	emit := func(t harness.Table) {
		if csv {
			t.CSV(out)
		} else {
			t.Fprint(out)
		}
	}
	switch name {
	case "table1":
		emit(harness.Table1())
	case "fig2", "fig3":
		f2, f3, err := harness.Fig2And3(opts)
		if err != nil {
			return err
		}
		if name == "fig2" {
			emit(f2)
		} else {
			emit(f3)
		}
	case "fig2+3":
		f2, f3, err := harness.Fig2And3(opts)
		if err != nil {
			return err
		}
		emit(f2)
		emit(f3)
	case "fig4":
		t, err := harness.Fig4(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "fig5":
		t, err := harness.Fig5(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "fig6":
		t, err := fig6Table(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "fig7":
		t, err := harness.Fig7(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "fig9":
		t, err := fig9Table(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "fig10", "fig11":
		t10, t11, err := figFootprintTables(opts, coll)
		if err != nil {
			return err
		}
		if name == "fig10" {
			emit(t10)
		} else {
			emit(t11)
		}
	case "prefetch":
		t, err := harness.PrefetchAblation(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "stm":
		t, err := harness.STMComparison(opts)
		if err != nil {
			return err
		}
		emit(t)
	case "capacity":
		for _, bench := range []string{"intruder", "vacation-high", "yada"} {
			t, err := harness.CapacitySweep(opts, bench)
			if err != nil {
				return err
			}
			emit(t)
		}
	case "adaptive":
		t, err := harness.AdaptiveComparison(opts)
		if err != nil {
			return err
		}
		emit(t)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// fig6Table renders the Figure 6 CLQ experiment.
func fig6Table(opts harness.Options) (harness.Table, error) {
	logf(opts.Log, "fig6: zEC12 constrained transactions on ConcurrentLinkedQueue")
	results, err := features.RunCLQ(features.CLQOptions{Seed: opts.Seed})
	if err != nil {
		return harness.Table{}, err
	}
	t := harness.Table{
		Title:  "Figure 6: relative execution time vs lock-free ConcurrentLinkedQueue (zEC12)",
		Note:   "lower is better; baseline is the lock-free CAS implementation at each thread count",
		Header: []string{"threads", "LockFree", "NoRetryTM", "OptRetryTM", "ConstrainedTM"},
	}
	byThreads := map[int]map[features.CLQMode]float64{}
	var order []int
	for _, r := range results {
		if _, ok := byThreads[r.Threads]; !ok {
			byThreads[r.Threads] = map[features.CLQMode]float64{}
			order = append(order, r.Threads)
		}
		byThreads[r.Threads][r.Mode] = r.Relative
	}
	for _, n := range order {
		m := byThreads[n]
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", m[features.CLQLockFree]),
			fmt.Sprintf("%.2f", m[features.CLQNoRetryTM]),
			fmt.Sprintf("%.2f", m[features.CLQOptRetryTM]),
			fmt.Sprintf("%.2f", m[features.CLQConstrainedTM]))
	}
	return t, nil
}

// fig9Table renders the Figure 9 TLS experiment.
func fig9Table(opts harness.Options) (harness.Table, error) {
	logf(opts.Log, "fig9: POWER8 TLS with and without suspend/resume")
	results, err := features.RunTLS(features.TLSOptions{Seed: opts.Seed})
	if err != nil {
		return harness.Table{}, err
	}
	t := harness.Table{
		Title:  "Figure 9: TLS speed-up over sequential on POWER8",
		Header: []string{"kernel", "suspend/resume", "threads", "speedup", "abort%"},
	}
	for _, r := range results {
		sr := "without"
		if r.SuspendResume {
			sr = "with"
		}
		t.AddRow(r.Kernel.String(), sr, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.Speedup), fmt.Sprintf("%.1f", r.AbortRatio))
	}
	return t, nil
}

// figFootprintTables renders Figures 10 and 11; coll routes the footprint
// collections through the sweep (nil collects inline).
func figFootprintTables(opts harness.Options, coll trace.Collector) (t10, t11 harness.Table, err error) {
	logf(opts.Log, "fig10/11: transaction footprint traces")
	fps, err := trace.CollectAll(trace.Options{Scale: opts.Scale, Seed: opts.Seed, Exec: coll})
	if err != nil {
		return t10, t11, err
	}
	t10 = harness.Table{
		Title:  "Figure 10: 90-percentile transactional-load size vs capacity",
		Note:   "abort ratios for the same pairs appear in Figure 3; '>' marks sizes exceeding the platform's capacity",
		Header: []string{"benchmark", "platform", "P90 load KB", "max KB", "capacity KB", "over?"},
	}
	t11 = harness.Table{
		Title:  "Figure 11: 90-percentile transactional-store size vs capacity",
		Header: []string{"benchmark", "platform", "P90 store KB", "max KB", "capacity KB", "over?"},
	}
	for _, fp := range fps {
		spec := platform.New(fp.Platform)
		mark := func(over bool) string {
			if over {
				return ">"
			}
			return ""
		}
		t10.AddRow(fp.Benchmark, fp.Platform.Short(),
			fmt.Sprintf("%.2f", fp.P90LoadKB), fmt.Sprintf("%.2f", fp.MaxLoadKB),
			fmt.Sprintf("%.0f", float64(spec.LoadCapacity)/1024), mark(fp.ExceedsLoadCap))
		t11.AddRow(fp.Benchmark, fp.Platform.Short(),
			fmt.Sprintf("%.2f", fp.P90StoreKB), fmt.Sprintf("%.2f", fp.MaxStoreKB),
			fmt.Sprintf("%.0f", float64(spec.StoreCapacity)/1024), mark(fp.ExceedsStoreCap))
	}
	return t10, t11, nil
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		if !strings.HasSuffix(format, "\n") {
			format += "\n"
		}
		fmt.Fprintf(w, format, args...)
	}
}
