// Package htm is a deliberately dirty core package for the htmlint
// smoke test: one wall-clock read and one observable map iteration.
package htm

import "time"

func stamp() int64 { return time.Now().UnixNano() }

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
