// Package trace carries a required cache-identity struct with no
// //htmlint:cachekey marker.
package trace

// Options would feed sweep cache keys in the real tree.
type Options struct {
	Scale int
}
