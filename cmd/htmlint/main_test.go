package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

var badmod = filepath.Join("testdata", "badmod")

// TestBadModuleJSON is the end-to-end smoke test: the known-bad fixture
// module must produce exit code 1 and a parseable -json findings array
// naming the expected checks.
func TestBadModuleJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(badmod, []string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var diags []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	counts := map[string]int{}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("finding missing position or message: %+v", d)
		}
		counts[d.Check]++
	}
	if counts["determinism"] != 2 || counts["cachekey"] != 1 || len(diags) != 3 {
		t.Errorf("findings per check = %v, want determinism:2 cachekey:1 and no others", counts)
	}
}

// TestBadModuleCheckSelection: restricting to one check must hide the
// other findings but still exit 1.
func TestBadModuleCheckSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(badmod, []string{"-c", "cachekey", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var diags []struct {
		Check string `json:"check"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Check != "cachekey" {
		t.Errorf("got %+v, want exactly one cachekey finding", diags)
	}
}

func TestUnknownCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(badmod, []string{"-c", "nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(badmod, []string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
}
