// Command htmlint runs the repo's invariant checkers (internal/lint)
// over a package pattern and reports findings in vet-style text or as a
// JSON array (the CI artifact format).
//
// Usage:
//
//	htmlint [-json] [-c check1,check2] [packages]
//
// Exit status: 0 when clean, 1 when there are findings, 2 on usage or
// load errors. Intentional violations are silenced in the source with
// `//htmlint:allow <check> -- <reason>`; see internal/lint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"htmcmp/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("htmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("c", "", "comma-separated checks to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: htmlint [-json] [-c checks] [packages]\n\nchecks:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(stderr, "htmlint:", err)
		return 2
	}

	pkgs, err := lint.Load(dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "htmlint:", err)
		return 2
	}
	diags, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "htmlint:", err)
		return 2
	}

	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "htmlint:", err)
			return 2
		}
	} else if err := lint.WriteText(stdout, diags); err != nil {
		fmt.Fprintln(stderr, "htmlint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
