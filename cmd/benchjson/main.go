// Command benchjson converts `go test -bench` output into a stable JSON
// document so the hot-path microbenchmark trajectory can be recorded PR over
// PR (BENCH_hotpath.json) and uploaded as a CI artifact.
//
// Usage:
//
//	go test -bench '^BenchmarkHotpath' -run '^$' ./internal/htm | benchjson \
//	    [-baseline BENCH_hotpath.json] [-label after] [-o BENCH_hotpath.json]
//	    [-gate 10]
//
// The input is the standard benchmark text format:
//
//	BenchmarkHotpathTxLoad8-8   7207948   166.1 ns/op   0 B/op   0 allocs/op
//
// With -baseline, the previous document's "current" section is preserved
// under "baseline" and a speedup ratio (baseline ns / current ns) is emitted
// per benchmark, so the JSON itself records the before/after comparison.
//
// With -gate PCT (requires -baseline), the command exits 1 after writing its
// output if any benchmark regressed by more than PCT percent versus the
// baseline, listing the offenders on stderr — the CI regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Label    string             `json:"label,omitempty"`
	Goos     string             `json:"goos,omitempty"`
	Goarch   string             `json:"goarch,omitempty"`
	Pkg      string             `json:"pkg,omitempty"`
	Current  []Result           `json:"current"`
	Baseline []Result           `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	// AllocsDelta records current minus baseline allocs/op for every gated
	// benchmark whose allocation count moved — the allocation-freeness
	// trajectory, PR over PR, alongside the ns/op speedups.
	AllocsDelta map[string]int64 `json:"allocs_delta_vs_baseline,omitempty"`
}

// benchLine matches `BenchmarkName-8  N  12.3 ns/op [B B/op] [A allocs/op]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+)\s+ns/op(?:\s+(\d+)\s+B/op)?(?:\s+(\d+)\s+allocs/op)?`)

func parse(sc *bufio.Scanner, doc *Doc) error {
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op on %q: %v", line, err)
		}
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Current = append(doc.Current, r)
	}
	return sc.Err()
}

// regression describes one gated benchmark that got slower.
type regression struct {
	name     string
	baseNs   float64
	curNs    float64
	deltaPct float64
}

// gateRegressions returns the benchmarks whose current ns/op exceeds the
// baseline by more than pct percent. Benchmarks absent from the baseline are
// ignored: a new benchmark has nothing to regress against.
func gateRegressions(doc Doc, pct float64) []regression {
	base := map[string]float64{}
	for _, r := range doc.Baseline {
		base[r.Name] = r.NsPerOp
	}
	var regs []regression
	for _, r := range doc.Current {
		b, ok := base[r.Name]
		if !ok || b <= 0 {
			continue
		}
		delta := 100 * (r.NsPerOp - b) / b
		if delta > pct {
			regs = append(regs, regression{name: r.Name, baseNs: b, curNs: r.NsPerOp, deltaPct: delta})
		}
	}
	return regs
}

// allocRegression describes one gated benchmark that started allocating
// more.
type allocRegression struct {
	name      string
	base, cur int64
}

// gateAllocRegressions returns the benchmarks whose allocs/op grew at all
// versus the baseline. Allocation counts are exact (not host-noisy like
// ns/op), so any growth is a regression: an allocation crept back onto a
// path that had been made allocation-free. Benchmarks absent from the
// baseline are ignored, like in gateRegressions.
func gateAllocRegressions(doc Doc) []allocRegression {
	base := map[string]int64{}
	seen := map[string]bool{}
	for _, r := range doc.Baseline {
		base[r.Name] = r.AllocsPerOp
		seen[r.Name] = true
	}
	var regs []allocRegression
	for _, r := range doc.Current {
		if seen[r.Name] && r.AllocsPerOp > base[r.Name] {
			regs = append(regs, allocRegression{name: r.Name, base: base[r.Name], cur: r.AllocsPerOp})
		}
	}
	return regs
}

// mergeBaseline folds a previous document into doc: its current section
// becomes doc's baseline, and per-benchmark speedup ratios and allocs/op
// deltas are computed for benchmarks present in both. Deltas are recorded
// only when the count moved, so the common all-zero case emits nothing.
func mergeBaseline(doc *Doc, prev Doc) {
	doc.Baseline = prev.Current
	doc.Speedup = map[string]float64{}
	base := map[string]float64{}
	baseAllocs := map[string]int64{}
	inBase := map[string]bool{}
	for _, r := range prev.Current {
		base[r.Name] = r.NsPerOp
		baseAllocs[r.Name] = r.AllocsPerOp
		inBase[r.Name] = true
	}
	for _, r := range doc.Current {
		if b, ok := base[r.Name]; ok && r.NsPerOp > 0 {
			// Round to 0.01x: these are host-side numbers, two decimal
			// places is already more precision than they repeat to.
			doc.Speedup[r.Name] = float64(int(b/r.NsPerOp*100+0.5)) / 100
		}
		if inBase[r.Name] && r.AllocsPerOp != baseAllocs[r.Name] {
			if doc.AllocsDelta == nil {
				doc.AllocsDelta = map[string]int64{}
			}
			doc.AllocsDelta[r.Name] = r.AllocsPerOp - baseAllocs[r.Name]
		}
	}
}

func main() {
	baseline := flag.String("baseline", "", "previous benchjson output; its current section becomes this document's baseline")
	label := flag.String("label", "", "free-form label recorded in the document")
	out := flag.String("o", "", "output file (default stdout)")
	gate := flag.Float64("gate", 0, "fail (exit 1) if any benchmark regresses more than this percentage vs -baseline; 0 disables")
	flag.Parse()

	if *gate > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -gate requires -baseline")
		os.Exit(2)
	}

	doc := Doc{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if err := parse(sc, &doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var prev Doc
		if err := json.Unmarshal(raw, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		mergeBaseline(&doc, prev)
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	// Write the document before gating: a failed gate should still leave
	// the comparison on disk / in the CI artifact for diagnosis.
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *gate > 0 {
		failed := false
		if regs := gateRegressions(doc, *gate); len(regs) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%%:\n", len(regs), *gate)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s: %.1f -> %.1f ns/op (+%.1f%%)\n", r.name, r.baseNs, r.curNs, r.deltaPct)
			}
		}
		if regs := gateAllocRegressions(doc); len(regs) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) grew allocs/op:\n", len(regs))
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s: %d -> %d allocs/op\n", r.name, r.base, r.cur)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
