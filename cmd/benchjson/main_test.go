package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: htmcmp/internal/htm
BenchmarkHotpathTxLoad8-8   	 7207948	       166.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotpathCommit-8    	 1000000	      1179 ns/op
not a benchmark line
BenchmarkHotpathSweepSmall-8	      12	  92578000 ns/op
PASS
ok  	htmcmp/internal/htm	42.0s
`
	var doc Doc
	if err := parse(bufio.NewScanner(strings.NewReader(in)), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "htmcmp/internal/htm" {
		t.Fatalf("header = %q %q %q", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if len(doc.Current) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Current))
	}
	r := doc.Current[0]
	if r.Name != "BenchmarkHotpathTxLoad8" || r.Iterations != 7207948 || r.NsPerOp != 166.1 {
		t.Fatalf("first result = %+v", r)
	}
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("mem stats = %d B/op %d allocs/op", r.BytesPerOp, r.AllocsPerOp)
	}
	if doc.Current[2].NsPerOp != 92578000 {
		t.Fatalf("sweep ns/op = %v", doc.Current[2].NsPerOp)
	}
}

func TestParseKeepsSubBenchmarkNames(t *testing.T) {
	in := "BenchmarkX/sub-case-16  100  5.0 ns/op\n"
	var doc Doc
	if err := parse(bufio.NewScanner(strings.NewReader(in)), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Current) != 1 || doc.Current[0].Name != "BenchmarkX/sub-case" {
		t.Fatalf("results = %+v", doc.Current)
	}
}
