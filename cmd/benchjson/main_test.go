package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: htmcmp/internal/htm
BenchmarkHotpathTxLoad8-8   	 7207948	       166.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotpathCommit-8    	 1000000	      1179 ns/op
not a benchmark line
BenchmarkHotpathSweepSmall-8	      12	  92578000 ns/op
PASS
ok  	htmcmp/internal/htm	42.0s
`
	var doc Doc
	if err := parse(bufio.NewScanner(strings.NewReader(in)), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "htmcmp/internal/htm" {
		t.Fatalf("header = %q %q %q", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if len(doc.Current) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Current))
	}
	r := doc.Current[0]
	if r.Name != "BenchmarkHotpathTxLoad8" || r.Iterations != 7207948 || r.NsPerOp != 166.1 {
		t.Fatalf("first result = %+v", r)
	}
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("mem stats = %d B/op %d allocs/op", r.BytesPerOp, r.AllocsPerOp)
	}
	if doc.Current[2].NsPerOp != 92578000 {
		t.Fatalf("sweep ns/op = %v", doc.Current[2].NsPerOp)
	}
}

func TestParseKeepsSubBenchmarkNames(t *testing.T) {
	in := "BenchmarkX/sub-case-16  100  5.0 ns/op\n"
	var doc Doc
	if err := parse(bufio.NewScanner(strings.NewReader(in)), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Current) != 1 || doc.Current[0].Name != "BenchmarkX/sub-case" {
		t.Fatalf("results = %+v", doc.Current)
	}
}

func TestGateRegressions(t *testing.T) {
	doc := Doc{
		Baseline: []Result{
			{Name: "BenchmarkA", NsPerOp: 100},
			{Name: "BenchmarkB", NsPerOp: 100},
			{Name: "BenchmarkC", NsPerOp: 100},
		},
		Current: []Result{
			{Name: "BenchmarkA", NsPerOp: 105},   // +5%: under a 10% gate
			{Name: "BenchmarkB", NsPerOp: 125},   // +25%: over
			{Name: "BenchmarkC", NsPerOp: 80},    // improvement
			{Name: "BenchmarkNew", NsPerOp: 999}, // no baseline: ignored
		},
	}
	regs := gateRegressions(doc, 10)
	if len(regs) != 1 || regs[0].name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want only BenchmarkB", regs)
	}
	if regs[0].deltaPct < 24.9 || regs[0].deltaPct > 25.1 {
		t.Errorf("deltaPct = %.2f, want ~25", regs[0].deltaPct)
	}
	if got := gateRegressions(doc, 30); len(got) != 0 {
		t.Errorf("30%% gate flagged %+v, want none", got)
	}
	if got := gateRegressions(doc, 1); len(got) != 2 {
		t.Errorf("1%% gate flagged %d, want 2 (A and B)", len(got))
	}
}

func TestGateIgnoresZeroBaseline(t *testing.T) {
	doc := Doc{
		Baseline: []Result{{Name: "BenchmarkZ", NsPerOp: 0}},
		Current:  []Result{{Name: "BenchmarkZ", NsPerOp: 50}},
	}
	if got := gateRegressions(doc, 10); len(got) != 0 {
		t.Errorf("zero baseline flagged %+v, want none", got)
	}
}

func TestGateAllocRegressions(t *testing.T) {
	doc := Doc{
		Baseline: []Result{
			{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 0},
			{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 5},
			{Name: "BenchmarkC", NsPerOp: 100, AllocsPerOp: 8},
		},
		Current: []Result{
			{Name: "BenchmarkA", NsPerOp: 90, AllocsPerOp: 2},    // 0 -> 2: regression
			{Name: "BenchmarkB", NsPerOp: 90, AllocsPerOp: 5},    // unchanged
			{Name: "BenchmarkC", NsPerOp: 90, AllocsPerOp: 0},    // improvement
			{Name: "BenchmarkNew", NsPerOp: 90, AllocsPerOp: 99}, // no baseline: ignored
		},
	}
	regs := gateAllocRegressions(doc)
	if len(regs) != 1 || regs[0].name != "BenchmarkA" {
		t.Fatalf("alloc regressions = %+v, want only BenchmarkA", regs)
	}
	if regs[0].base != 0 || regs[0].cur != 2 {
		t.Errorf("regression = %d -> %d, want 0 -> 2", regs[0].base, regs[0].cur)
	}
}

func TestAllocsDeltaMergesNonZeroOnly(t *testing.T) {
	// Mirror main's -baseline merge logic on a Doc directly: deltas are
	// recorded only for benchmarks present in both sections and only when
	// the count actually moved, so an all-zero comparison emits no map.
	prev := Doc{Current: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 4},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 0},
	}}
	doc := Doc{Current: []Result{
		{Name: "BenchmarkA", NsPerOp: 50, AllocsPerOp: 0},
		{Name: "BenchmarkB", NsPerOp: 50, AllocsPerOp: 0},
		{Name: "BenchmarkNew", NsPerOp: 50, AllocsPerOp: 7},
	}}
	mergeBaseline(&doc, prev)
	if doc.Speedup["BenchmarkA"] != 2.0 {
		t.Errorf("speedup[A] = %v, want 2.0", doc.Speedup["BenchmarkA"])
	}
	if got, ok := doc.AllocsDelta["BenchmarkA"]; !ok || got != -4 {
		t.Errorf("AllocsDelta[A] = %d (present=%v), want -4", got, ok)
	}
	if _, ok := doc.AllocsDelta["BenchmarkB"]; ok {
		t.Error("AllocsDelta records an unchanged benchmark")
	}
	if _, ok := doc.AllocsDelta["BenchmarkNew"]; ok {
		t.Error("AllocsDelta records a benchmark absent from the baseline")
	}
}
