package main

import (
	"fmt"
	"testing"

	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
)

func TestParsePlatform(t *testing.T) {
	cases := []struct {
		in   string
		want platform.Kind
		ok   bool
	}{
		{"bgq", platform.BlueGeneQ, true},
		{"bg", platform.BlueGeneQ, true},
		{"bluegeneq", platform.BlueGeneQ, true},
		{"zec12", platform.ZEC12, true},
		{"z", platform.ZEC12, true},
		{"intel", platform.IntelCore, true},
		{"core", platform.IntelCore, true},
		{"power8", platform.POWER8, true},
		{"p8", platform.POWER8, true},
		{"sparc", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, err := parsePlatform(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parsePlatform(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parsePlatform(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]stamp.Scale{
		"test": stamp.ScaleTest, "sim": stamp.ScaleSim, "full": stamp.ScaleFull,
	} {
		got, err := parseScale(in)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseScale("huge"); err == nil {
		t.Error("parseScale accepted an unknown scale")
	}
}

// TestSearchSpace pins the coarse lattice's shape: every candidate is
// distinct, Blue Gene/Q crosses retries with the running mode, the other
// platforms vary all three counters, and genome doubles the lattice with its
// chunk values.
func TestSearchSpace(t *testing.T) {
	for _, k := range platform.Kinds() {
		cands := searchSpace(k, "vacation-low")
		if len(cands) < 8 {
			t.Errorf("%v: only %d coarse candidates", k, len(cands))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			l := c.label(k)
			if seen[l] {
				t.Errorf("%v: duplicate candidate %q", k, l)
			}
			seen[l] = true
			if c.chunk != 0 {
				t.Errorf("%v: non-genome candidate has chunk %d", k, c.chunk)
			}
		}
		genome := searchSpace(k, "genome")
		if len(genome) != 2*len(cands) {
			t.Errorf("%v: genome lattice has %d candidates, want %d", k, len(genome), 2*len(cands))
		}
	}
	// BGQ candidates must keep mode and lazy subscription consistent.
	for _, c := range searchSpace(platform.BlueGeneQ, "yada") {
		if c.policy.LazySubscription != (c.mode == platform.LongRunning) {
			t.Errorf("bgq candidate %q: LazySubscription=%v under mode %v",
				c.label(platform.BlueGeneQ), c.policy.LazySubscription, c.mode)
		}
	}
}

// TestNeighbors pins the refinement moves: halved/doubled counters within
// clamps, no self-moves, mode flip on Blue Gene/Q.
func TestNeighbors(t *testing.T) {
	c := candidate{policy: tm.Policy{LockRetry: 8, PersistentRetry: 2, TransientRetry: 8}}
	ns := neighbors(c, platform.IntelCore)
	if len(ns) != 6 {
		t.Fatalf("interior point has %d neighbours, want 6", len(ns))
	}
	want := map[string]bool{
		"lock=4 persistent=2 transient=8":  true,
		"lock=16 persistent=2 transient=8": true,
		"lock=8 persistent=1 transient=8":  true,
		"lock=8 persistent=4 transient=8":  true,
		"lock=8 persistent=2 transient=4":  true,
		"lock=8 persistent=2 transient=16": true,
	}
	for _, n := range ns {
		if !want[n.label(platform.IntelCore)] {
			t.Errorf("unexpected neighbour %q", n.label(platform.IntelCore))
		}
	}

	// At the clamps, moves outside the range are dropped.
	edge := candidate{policy: tm.Policy{LockRetry: 1, PersistentRetry: maxPersistRetry, TransientRetry: maxTransientRetry}}
	for _, n := range neighbors(edge, platform.IntelCore) {
		p := n.policy
		if p.LockRetry < 1 || p.LockRetry > maxLockRetry ||
			p.PersistentRetry < 1 || p.PersistentRetry > maxPersistRetry ||
			p.TransientRetry < 1 || p.TransientRetry > maxTransientRetry {
			t.Errorf("neighbour %q escapes the clamps", n.label(platform.IntelCore))
		}
	}

	bgq := candidate{mode: platform.ShortRunning, policy: tm.Policy{TransientRetry: 8}}
	bns := neighbors(bgq, platform.BlueGeneQ)
	if len(bns) != 3 {
		t.Fatalf("bgq neighbours = %d, want 3 (half, double, mode flip)", len(bns))
	}
	flips := 0
	for _, n := range bns {
		if n.mode == platform.LongRunning {
			flips++
			if !n.policy.LazySubscription {
				t.Error("mode flip did not update LazySubscription")
			}
		}
	}
	if flips != 1 {
		t.Errorf("bgq neighbours contain %d mode flips, want 1", flips)
	}
}

// TestCandidateSpec checks the trial instantiation: single repeat, policy
// pinned, base fields preserved.
func TestCandidateSpec(t *testing.T) {
	base := harness.RunSpec{
		Platform: platform.ZEC12, Benchmark: "yada", Threads: 4,
		Scale: stamp.ScaleSim, Seed: 7, Repeats: 4,
	}
	c := candidate{policy: tm.Policy{LockRetry: 2, PersistentRetry: 1, TransientRetry: 4}}
	s := c.spec(base)
	if s.Repeats != 1 {
		t.Errorf("trial repeats = %d, want 1", s.Repeats)
	}
	if s.Policy == nil || *s.Policy != c.policy {
		t.Errorf("trial policy = %+v, want %+v", s.Policy, c.policy)
	}
	if s.Platform != base.Platform || s.Benchmark != base.Benchmark ||
		s.Threads != base.Threads || s.Seed != base.Seed {
		t.Errorf("trial lost base fields: %+v", s)
	}
}

// fakeEval returns a synthetic speedup per spec through fn and records every
// batch it served.
type fakeEval struct {
	batches [][]harness.RunSpec
	fn      func(harness.RunSpec) float64
}

func (f *fakeEval) eval(specs []harness.RunSpec) ([]harness.Result, error) {
	f.batches = append(f.batches, specs)
	out := make([]harness.Result, len(specs))
	for i, s := range specs {
		out[i] = harness.Result{Spec: s, Speedup: f.fn(s)}
	}
	return out, nil
}

// TestRunSearchConverges drives the search against a synthetic objective
// with a unique optimum and checks the refinement walks toward it: the
// winner must strictly improve on the best coarse-lattice point.
func TestRunSearchConverges(t *testing.T) {
	base := harness.RunSpec{
		Platform: platform.IntelCore, Benchmark: "yada", Threads: 4,
		Scale: stamp.ScaleSim, Seed: 42, Repeats: 2,
	}
	// Optimum at lock=16, persistent=1, transient=64 — outside the coarse
	// lattice on two axes, reachable by doubling moves.
	score := func(s harness.RunSpec) float64 {
		p := s.Policy
		d := abs(p.LockRetry-16) + 4*abs(p.PersistentRetry-1) + abs(p.TransientRetry-64)/8
		return 10.0 / float64(1+d)
	}
	f := &fakeEval{fn: score}
	best, res, err := runSearch(base, platform.IntelCore, "yada", 3, f.eval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.batches) < 2 {
		t.Fatalf("search never refined: %d batches", len(f.batches))
	}
	coarseBest := 0.0
	for _, s := range f.batches[0] {
		if v := score(s); v > coarseBest {
			coarseBest = v
		}
	}
	if res.Speedup <= coarseBest {
		t.Errorf("refinement did not improve: final %.3f, coarse best %.3f (winner %s)",
			res.Speedup, coarseBest, best.label(platform.IntelCore))
	}
	if best.policy.PersistentRetry != 1 {
		t.Errorf("search missed the persistent=1 valley: %s", best.label(platform.IntelCore))
	}
}

// TestRunSearchDeduplicates checks no candidate is measured twice even when
// neighbour moves revisit lattice points.
func TestRunSearchDeduplicates(t *testing.T) {
	base := harness.RunSpec{Platform: platform.ZEC12, Benchmark: "yada", Threads: 4}
	f := &fakeEval{fn: func(s harness.RunSpec) float64 {
		return float64(s.Policy.LockRetry) // monotone: walks toward the clamp
	}}
	_, _, err := runSearch(base, platform.ZEC12, "yada", 5, f.eval, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, b := range f.batches {
		for _, s := range b {
			k := fmt.Sprintf("%+v/%v/%d", *s.Policy, s.Mode, s.ChunkStep1)
			seen[k]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("candidate %s measured %d times", k, n)
		}
	}
}

// TestRunSearchRoundsBound checks -rounds bounds the refinement: rounds=0
// evaluates only the coarse lattice.
func TestRunSearchRoundsBound(t *testing.T) {
	base := harness.RunSpec{Platform: platform.POWER8, Benchmark: "yada", Threads: 4}
	f := &fakeEval{fn: func(s harness.RunSpec) float64 { return float64(s.Policy.LockRetry) }}
	_, _, err := runSearch(base, platform.POWER8, "yada", 0, f.eval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.batches) != 1 {
		t.Errorf("rounds=0 ran %d batches, want 1", len(f.batches))
	}
}

// TestComparisonSpecs pins the final report's three runs: default, tuned
// winner at full repeats, adaptive.
func TestComparisonSpecs(t *testing.T) {
	base := harness.RunSpec{
		Platform: platform.POWER8, Benchmark: "labyrinth", Threads: 4, Repeats: 3,
	}
	best := candidate{policy: tm.Policy{LockRetry: 4, PersistentRetry: 1, TransientRetry: 16}}
	specs := comparisonSpecs(base, best)
	if len(specs) != 3 {
		t.Fatalf("comparisonSpecs returned %d specs, want 3", len(specs))
	}
	def, win, ad := specs[0], specs[1], specs[2]
	if def.Policy != nil || def.Adaptive {
		t.Errorf("default spec is not the plain baseline: %+v", def)
	}
	if win.Policy == nil || *win.Policy != best.policy {
		t.Errorf("winner spec policy = %+v, want %+v", win.Policy, best.policy)
	}
	if win.Repeats != base.Repeats {
		t.Errorf("winner repeats = %d, want %d (trial used 1)", win.Repeats, base.Repeats)
	}
	if !ad.Adaptive || ad.Policy != nil {
		t.Errorf("adaptive spec misconfigured: %+v", ad)
	}
	for _, s := range specs {
		if s.Benchmark != base.Benchmark || s.Threads != base.Threads {
			t.Errorf("comparison spec lost base fields: %+v", s)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
