// Command htmtune explores the transaction-retry parameter space for one
// (platform, benchmark) pair, the way the paper tunes "the parameter values
// for each test case" (Section 5.1). It prints every candidate's speed-up
// and the winning configuration.
//
// Usage:
//
//	htmtune -platform zec12 -bench vacation-low [-threads 4] [-scale sim]
package main

import (
	"flag"
	"fmt"
	"os"

	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
)

func parsePlatform(s string) (platform.Kind, error) {
	switch s {
	case "bgq", "bluegene", "bluegeneq", "bg":
		return platform.BlueGeneQ, nil
	case "zec12", "z12", "z":
		return platform.ZEC12, nil
	case "intel", "ic", "core":
		return platform.IntelCore, nil
	case "power8", "p8":
		return platform.POWER8, nil
	}
	return 0, fmt.Errorf("unknown platform %q (bgq, zec12, intel, power8)", s)
}

func parseScale(s string) (stamp.Scale, error) {
	switch s {
	case "test":
		return stamp.ScaleTest, nil
	case "sim":
		return stamp.ScaleSim, nil
	case "full":
		return stamp.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test, sim, full)", s)
}

func main() {
	platName := flag.String("platform", "zec12", "platform: bgq, zec12, intel, power8")
	bench := flag.String("bench", "vacation-low", "STAMP benchmark name")
	threads := flag.Int("threads", 4, "thread count")
	scaleName := flag.String("scale", "sim", "workload scale: test, sim, full")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	kind, err := parsePlatform(*platName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtune:", err)
		os.Exit(2)
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtune:", err)
		os.Exit(2)
	}

	base := harness.RunSpec{
		Platform:  kind,
		Benchmark: *bench,
		Threads:   *threads,
		Scale:     scale,
		Seed:      *seed,
		Repeats:   1,
	}

	fmt.Printf("tuning %s on %s with %d threads (%s scale)\n\n", *bench, kind, *threads, scale)

	// Show the candidate grid explicitly (Tune evaluates the same grid but
	// reports only the winner; the exploration itself is informative).
	type cand struct {
		label string
		spec  harness.RunSpec
	}
	var cands []cand
	if kind == platform.BlueGeneQ {
		for _, mode := range []platform.BGQMode{platform.ShortRunning, platform.LongRunning} {
			for _, retries := range []int{4, 16} {
				pol := tm.DefaultPolicy(kind)
				pol.TransientRetry = retries
				pol.LazySubscription = mode == platform.LongRunning
				s := base
				s.Policy = &pol
				s.Mode = mode
				cands = append(cands, cand{
					label: fmt.Sprintf("%v retries=%d", mode, retries),
					spec:  s,
				})
			}
		}
	} else {
		for _, pol := range []tm.Policy{
			{LockRetry: 2, PersistentRetry: 1, TransientRetry: 4},
			{LockRetry: 4, PersistentRetry: 1, TransientRetry: 16},
			{LockRetry: 8, PersistentRetry: 2, TransientRetry: 8},
			{LockRetry: 16, PersistentRetry: 2, TransientRetry: 32},
			{LockRetry: 4, PersistentRetry: 8, TransientRetry: 16},
		} {
			pol := pol
			s := base
			s.Policy = &pol
			cands = append(cands, cand{
				label: fmt.Sprintf("lock=%d persistent=%d transient=%d",
					pol.LockRetry, pol.PersistentRetry, pol.TransientRetry),
				spec: s,
			})
		}
	}

	bestIdx, bestSpeed := -1, 0.0
	for i, c := range cands {
		res, err := harness.Run(c.spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "htmtune:", err)
			os.Exit(1)
		}
		marker := " "
		if res.Speedup > bestSpeed {
			bestSpeed = res.Speedup
			bestIdx = i
			marker = "*"
		}
		fmt.Printf("%s %-40s speedup %.2f  abort %.1f%%  serial %.1f%%\n",
			marker, c.label, res.Speedup, res.AbortRatio, res.SerializationRatio)
	}
	fmt.Printf("\nbest: %s (speedup %.2f)\n", cands[bestIdx].label, bestSpeed)
}
