// Command htmtune auto-searches the static retry-policy space for one
// (platform, benchmark) pair, the way the paper optimizes "the parameter
// values for each test case" (Section 5.1) — but as a parallel, cached,
// iterative search instead of a serial grid walk: a coarse candidate
// lattice is measured concurrently through the sweep worker pool (banking
// every cell in the on-disk cache, so reruns and refinements resume for
// free), then the best point is refined for -rounds rounds by measuring its
// halved/doubled neighbours along each policy axis.
//
// The final report compares the tuned winner against the platform default
// policy and the adaptive online controller, so a tuning session directly
// answers "adaptive vs best-static vs default".
//
// Usage:
//
//	htmtune -platform zec12 -bench vacation-low [-threads 4] [-scale sim]
//	        [-rounds 2] [-repeats 2] [-jobs N] [-cache-dir .htmcache]
//	        [-no-cache] [-resume=false] [-http :8080]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"htmcmp/internal/adapt"
	"htmcmp/internal/cache"
	"htmcmp/internal/harness"
	"htmcmp/internal/harness/sweep"
	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
)

func parsePlatform(s string) (platform.Kind, error) {
	switch s {
	case "bgq", "bluegene", "bluegeneq", "bg":
		return platform.BlueGeneQ, nil
	case "zec12", "z12", "z":
		return platform.ZEC12, nil
	case "intel", "ic", "core":
		return platform.IntelCore, nil
	case "power8", "p8":
		return platform.POWER8, nil
	}
	return 0, fmt.Errorf("unknown platform %q (bgq, zec12, intel, power8)", s)
}

func parseScale(s string) (stamp.Scale, error) {
	switch s {
	case "test":
		return stamp.ScaleTest, nil
	case "sim":
		return stamp.ScaleSim, nil
	case "full":
		return stamp.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test, sim, full)", s)
}

// candidate is one point of the search space: a retry policy plus the
// Blue Gene/Q running mode and genome's chunking, where applicable.
type candidate struct {
	policy tm.Policy
	mode   platform.BGQMode
	chunk  int
}

func (c candidate) label(kind platform.Kind) string {
	if kind == platform.BlueGeneQ {
		l := fmt.Sprintf("%v retries=%d", c.mode, c.policy.TransientRetry)
		if c.chunk > 0 {
			l += fmt.Sprintf(" chunk=%d", c.chunk)
		}
		return l
	}
	l := fmt.Sprintf("lock=%d persistent=%d transient=%d",
		c.policy.LockRetry, c.policy.PersistentRetry, c.policy.TransientRetry)
	if c.chunk > 0 {
		l += fmt.Sprintf(" chunk=%d", c.chunk)
	}
	return l
}

// spec instantiates the candidate as a single-repeat trial of base.
func (c candidate) spec(base harness.RunSpec) harness.RunSpec {
	s := base
	pol := c.policy
	s.Policy = &pol
	s.Mode = c.mode
	s.ChunkStep1 = c.chunk
	s.Repeats = 1
	return s
}

// retry-count clamps for the neighbour moves. The lattice stays well inside
// these; they only stop runaway doubling.
const (
	maxLockRetry      = 64
	maxPersistRetry   = 32
	maxTransientRetry = 128
)

// searchSpace returns the coarse starting lattice for kind. Blue Gene/Q has
// one system retry counter crossed with the running mode (Section 5.1); the
// other platforms span the three retry counters, seeded with the
// configurations the paper's own tuning found interesting (persistent=1 is
// in because "reducing the maximum persistent-retry count improves the
// performance" for yada). genome candidates are crossed with its
// CHUNK_STEP_1 values (Section 4).
func searchSpace(kind platform.Kind, bench string) []candidate {
	var cands []candidate
	if kind == platform.BlueGeneQ {
		for _, mode := range []platform.BGQMode{platform.ShortRunning, platform.LongRunning} {
			for _, retries := range []int{2, 4, 8, 16, 32} {
				pol := tm.DefaultPolicy(kind)
				pol.TransientRetry = retries
				pol.LazySubscription = mode == platform.LongRunning
				cands = append(cands, candidate{policy: pol, mode: mode})
			}
		}
	} else {
		for _, lock := range []int{2, 8} {
			for _, persist := range []int{1, 4} {
				for _, transient := range []int{8, 32} {
					cands = append(cands, candidate{policy: tm.Policy{
						LockRetry: lock, PersistentRetry: persist, TransientRetry: transient,
					}})
				}
			}
		}
		// The paper-grid seeds (internal/harness tune.go) fill lattice gaps.
		cands = append(cands,
			candidate{policy: tm.Policy{LockRetry: 4, PersistentRetry: 1, TransientRetry: 16}},
			candidate{policy: tm.Policy{LockRetry: 16, PersistentRetry: 2, TransientRetry: 32}},
			candidate{policy: tm.Policy{LockRetry: 4, PersistentRetry: 8, TransientRetry: 16}},
		)
	}
	if bench == "genome" {
		var expanded []candidate
		for _, c := range cands {
			for _, chunk := range []int{2, 9} {
				cc := c
				cc.chunk = chunk
				expanded = append(expanded, cc)
			}
		}
		cands = expanded
	}
	return cands
}

// neighbors returns the refinement moves around c: each retry counter halved
// and doubled (clamped), and for Blue Gene/Q the running mode flipped. The
// chunk is kept — the coarse pass already separates the chunk values.
func neighbors(c candidate, kind platform.Kind) []candidate {
	var out []candidate
	if kind == platform.BlueGeneQ {
		for _, r := range []int{c.policy.TransientRetry / 2, c.policy.TransientRetry * 2} {
			if r < 1 || r > maxTransientRetry || r == c.policy.TransientRetry {
				continue
			}
			n := c
			n.policy.TransientRetry = r
			out = append(out, n)
		}
		flip := c
		flip.mode = platform.ShortRunning
		if c.mode == platform.ShortRunning {
			flip.mode = platform.LongRunning
		}
		flip.policy.LazySubscription = flip.mode == platform.LongRunning
		out = append(out, flip)
		return out
	}
	move := func(v int, max int, set func(*candidate, int)) {
		for _, nv := range []int{v / 2, v * 2} {
			if nv < 1 || nv > max || nv == v {
				continue
			}
			n := c
			set(&n, nv)
			out = append(out, n)
		}
	}
	move(c.policy.LockRetry, maxLockRetry, func(n *candidate, v int) { n.policy.LockRetry = v })
	move(c.policy.PersistentRetry, maxPersistRetry, func(n *candidate, v int) { n.policy.PersistentRetry = v })
	move(c.policy.TransientRetry, maxTransientRetry, func(n *candidate, v int) { n.policy.TransientRetry = v })
	return out
}

// evalFunc measures a batch of trial specs and returns one result per spec,
// in order. The production implementation prewarm-executes the batch through
// the sweep worker pool; tests inject synthetic responses.
type evalFunc func(specs []harness.RunSpec) ([]harness.Result, error)

// searchLog receives one line per evaluated candidate.
type searchLog func(round int, c candidate, r harness.Result, best bool)

// runSearch performs the coarse-then-refine search: round 0 evaluates the
// full lattice, each later round the unvisited neighbours of the incumbent.
// It returns the winner and its (single-repeat) trial result.
func runSearch(base harness.RunSpec, kind platform.Kind, bench string,
	rounds int, eval evalFunc, logf searchLog) (candidate, harness.Result, error) {
	visited := map[string]bool{}
	var best candidate
	var bestRes harness.Result
	haveBest := false

	batch := searchSpace(kind, bench)
	for round := 0; ; round++ {
		var fresh []candidate
		for _, c := range batch {
			if l := c.label(kind); !visited[l] {
				visited[l] = true
				fresh = append(fresh, c)
			}
		}
		if len(fresh) == 0 {
			break
		}
		specs := make([]harness.RunSpec, len(fresh))
		for i, c := range fresh {
			specs[i] = c.spec(base)
		}
		results, err := eval(specs)
		if err != nil {
			return best, bestRes, err
		}
		for i, c := range fresh {
			improved := !haveBest || results[i].Speedup > bestRes.Speedup
			if improved {
				best, bestRes, haveBest = c, results[i], true
			}
			if logf != nil {
				logf(round, c, results[i], improved)
			}
		}
		if round >= rounds {
			break
		}
		batch = neighbors(best, kind)
	}
	return best, bestRes, nil
}

// schedulerEval adapts a sweep scheduler into an evalFunc: the batch is
// prewarmed concurrently (deduplicated, cached), then each result is read
// back from the memo.
func schedulerEval(sched *sweep.Scheduler) evalFunc {
	return func(specs []harness.RunSpec) ([]harness.Result, error) {
		cells := make([]sweep.Cell, len(specs))
		for i, s := range specs {
			cells[i] = sweep.Cell{Kind: sweep.Measure, Spec: s}
		}
		sched.Prewarm(cells)
		out := make([]harness.Result, len(specs))
		for i, s := range specs {
			r, err := sched.Measure(s, false)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
}

func main() {
	platName := flag.String("platform", "zec12", "platform: bgq, zec12, intel, power8")
	bench := flag.String("bench", "vacation-low", "STAMP benchmark name")
	threads := flag.Int("threads", 4, "thread count")
	scaleName := flag.String("scale", "sim", "workload scale: test, sim, full")
	seed := flag.Uint64("seed", 42, "workload seed")
	repeats := flag.Int("repeats", 2, "repeats for the final comparison runs")
	rounds := flag.Int("rounds", 2, "neighbour-refinement rounds after the coarse pass")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent search workers")
	cacheDir := flag.String("cache-dir", ".htmcache", "on-disk result cache directory")
	noCache := flag.Bool("no-cache", false, "disable the on-disk result cache entirely")
	resume := flag.Bool("resume", true, "reuse cached results from earlier runs")
	httpAddr := flag.String("http", "", "serve live telemetry (dashboard at /, Prometheus text at /metrics) on this address, e.g. :8080")
	sampleEvery := flag.Duration("sample", 500*time.Millisecond, "telemetry sampling period")
	flag.Parse()

	kind, err := parsePlatform(*platName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtune:", err)
		os.Exit(2)
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtune:", err)
		os.Exit(2)
	}

	var store *cache.Store
	if !*noCache {
		store, err = cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htmtune: %v (continuing without cache)\n", err)
		}
	}
	var tel *obs.Telemetry
	if *httpAddr != "" {
		tel, err = obs.StartTelemetry(obs.TelemetryConfig{
			HTTPAddr:       *httpAddr,
			SampleInterval: *sampleEvery,
			Reasons:        htm.NumReasons,
			Modes:          adapt.NumModes,
			Workers:        *jobs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "htmtune: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer tel.Close()
		fmt.Fprintf(os.Stderr, "htmtune: live telemetry at http://%s/\n", tel.Addr())
	}
	sched := sweep.New(sweep.Config{
		Jobs:      *jobs,
		Cache:     store,
		Resume:    *resume,
		Telemetry: tel,
	})

	base := harness.RunSpec{
		Platform:  kind,
		Benchmark: *bench,
		Threads:   *threads,
		Scale:     scale,
		Seed:      *seed,
		Repeats:   *repeats,
	}

	fmt.Printf("tuning %s on %s with %d threads (%s scale, %d refinement rounds)\n\n",
		*bench, kind, *threads, scale, *rounds)

	type line struct {
		round int
		text  string
	}
	var lines []line
	logf := func(round int, c candidate, r harness.Result, best bool) {
		marker := " "
		if best {
			marker = "*"
		}
		lines = append(lines, line{round, fmt.Sprintf("%s r%d %-44s speedup %.2f  abort %.1f%%  serial %.1f%%",
			marker, round, c.label(kind), r.Speedup, r.AbortRatio, r.SerializationRatio)})
	}
	best, _, err := runSearch(base, kind, *bench, *rounds, schedulerEval(sched), logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtune:", err)
		os.Exit(1)
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].round < lines[j].round })
	for _, l := range lines {
		fmt.Println(l.text)
	}

	// Final comparison at the requested repeat count: platform default vs
	// the tuned winner vs the adaptive online controller.
	finals := comparisonSpecs(base, best)
	results, err := schedulerEval(sched)(finals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtune:", err)
		os.Exit(1)
	}
	def, win, ada := results[0], results[1], results[2]
	fmt.Printf("\nbest static: %s\n\n", best.label(kind))
	fmt.Printf("%-12s speedup %.2f  abort %.1f%%  serial %.1f%%\n", "default", def.Speedup, def.AbortRatio, def.SerializationRatio)
	fmt.Printf("%-12s speedup %.2f  abort %.1f%%  serial %.1f%%\n", "best-static", win.Speedup, win.AbortRatio, win.SerializationRatio)
	fmt.Printf("%-12s speedup %.2f  abort %.1f%%  switches %d\n", "adaptive", ada.Speedup, ada.AbortRatio, ada.TM.ModeSwitches)
	if win.Speedup > 0 {
		fmt.Printf("\nadaptive/best-static = %.2f, best-static/default = %.2f\n",
			ada.Speedup/win.Speedup, safeRatio(win.Speedup, def.Speedup))
	}
}

// comparisonSpecs builds the three full-repeat comparison runs: default
// policy, tuned winner, adaptive controller. Blue Gene/Q's default keeps the
// winner's running mode comparison honest by using the harness default mode
// (the untuned baseline a user actually gets).
func comparisonSpecs(base harness.RunSpec, best candidate) []harness.RunSpec {
	def := base
	win := best.spec(base)
	win.Repeats = base.Repeats
	ad := base
	ad.Adaptive = true
	return []harness.RunSpec{def, win, ad}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
