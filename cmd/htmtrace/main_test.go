package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

func TestParsePlatform(t *testing.T) {
	cases := []struct {
		in   string
		want platform.Kind
		ok   bool
	}{
		{"bgq", platform.BlueGeneQ, true},
		{"bg", platform.BlueGeneQ, true},
		{"zec12", platform.ZEC12, true},
		{"z12", platform.ZEC12, true},
		{"intel", platform.IntelCore, true},
		{"ic", platform.IntelCore, true},
		{"power8", platform.POWER8, true},
		{"p8", platform.POWER8, true},
		{"sparc", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parsePlatform(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parsePlatform(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parsePlatform(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseScale(t *testing.T) {
	cases := []struct {
		in   string
		want stamp.Scale
		ok   bool
	}{
		{"test", stamp.ScaleTest, true},
		{"sim", stamp.ScaleSim, true},
		{"full", stamp.ScaleFull, true},
		{"huge", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseScale(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseScale(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseScale(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunChecks(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	if err := obs.WriteJSONLFile(good, []obs.Event{
		{Kind: obs.KindBegin, Thread: 0, VClock: 1, Line: obs.NoLine, Aborter: obs.NoThread},
		{Kind: obs.KindCommit, Thread: 0, VClock: 5, Dur: 4, Line: obs.NoLine, Aborter: obs.NoThread},
	}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"kind":"warp"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	goodTrace := filepath.Join(dir, "good.trace.json")
	if err := os.WriteFile(goodTrace, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	badTrace := filepath.Join(dir, "bad.trace.json")
	if err := os.WriteFile(badTrace, []byte(`{"traceEvents":`), 0o644); err != nil {
		t.Fatal(err)
	}

	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()

	goodProm := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(goodProm, []byte("# TYPE x_total counter\nx_total 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badProm := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(badProm, []byte("x_total not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		events, trace, metrics string
		want                   int
	}{
		{good, "", "", 0},
		{good, goodTrace, "", 0},
		{good, goodTrace, goodProm, 0},
		{"", "", goodProm, 0},
		{bad, "", "", 1},
		{"", badTrace, "", 1},
		{good, badTrace, "", 1},
		{"", "", badProm, 1},
		{"", "", filepath.Join(dir, "missing.prom"), 1},
		{filepath.Join(dir, "missing.jsonl"), "", "", 1},
	}
	for _, c := range cases {
		if got := runChecks(c.events, c.trace, c.metrics, null, null); got != c.want {
			t.Errorf("runChecks(%q, %q, %q) = %d, want %d", c.events, c.trace, c.metrics, got, c.want)
		}
	}
}

func TestRejectRemovedFlags(t *testing.T) {
	cases := []struct {
		args []string
		hit  bool
	}{
		{[]string{"-conflicts"}, true},
		{[]string{"--conflicts"}, true},
		{[]string{"-conflicts=true"}, true},
		{[]string{"-bench", "yada", "-conflicts"}, true},
		{[]string{"-events"}, false},
		{[]string{}, false},
		{[]string{"--", "-conflicts"}, false},       // terminator stops scanning
		{[]string{"-bench=yada", "-events"}, false}, // = form passes through
	}
	for _, c := range cases {
		var sb strings.Builder
		if got := rejectRemovedFlags(c.args, &sb); got != c.hit {
			t.Errorf("rejectRemovedFlags(%q) = %v, want %v", c.args, got, c.hit)
		}
		if c.hit && !strings.Contains(sb.String(), "-conflicts was removed; use -events") {
			t.Errorf("rejectRemovedFlags(%q) output %q lacks replacement guidance", c.args, sb.String())
		}
		if !c.hit && sb.Len() != 0 {
			t.Errorf("rejectRemovedFlags(%q) wrote %q for a clean command line", c.args, sb.String())
		}
	}
}
