// Command htmtrace analyses transaction behaviour: per-transaction footprint
// distributions (the data behind Figures 10 and 11), and optionally the
// conflict hot spots of a parallel run.
//
// Usage:
//
//	htmtrace -bench yada -platform zec12           # footprint distribution
//	htmtrace -bench intruder -platform zec12 -conflicts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
	"htmcmp/internal/trace"
)

func main() {
	platName := flag.String("platform", "zec12", "platform: bgq, zec12, intel, power8")
	bench := flag.String("bench", "vacation-low", "STAMP benchmark name")
	scaleName := flag.String("scale", "sim", "workload scale: test, sim, full")
	conflicts := flag.Bool("conflicts", false, "run 4 threads and report conflict hot lines instead of footprints")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	var kind platform.Kind
	switch *platName {
	case "bgq", "bg":
		kind = platform.BlueGeneQ
	case "zec12", "z12":
		kind = platform.ZEC12
	case "intel", "ic":
		kind = platform.IntelCore
	case "power8", "p8":
		kind = platform.POWER8
	default:
		fmt.Fprintf(os.Stderr, "htmtrace: unknown platform %q\n", *platName)
		os.Exit(2)
	}
	var scale stamp.Scale
	switch *scaleName {
	case "test":
		scale = stamp.ScaleTest
	case "sim":
		scale = stamp.ScaleSim
	case "full":
		scale = stamp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "htmtrace: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	if *conflicts {
		reportConflicts(kind, *bench, scale, *seed)
		return
	}

	fp, err := trace.Collect(*bench, kind, trace.Options{Scale: scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtrace:", err)
		os.Exit(1)
	}
	spec := platform.New(kind)
	fmt.Printf("%s on %s: %d committed transactions\n\n", *bench, kind, fp.Transactions)
	fmt.Printf("  90-pct load footprint:  %8.2f KB (capacity %d KB)%s\n",
		fp.P90LoadKB, spec.LoadCapacity/1024, overMark(fp.ExceedsLoadCap))
	fmt.Printf("  90-pct store footprint: %8.2f KB (capacity %d KB)%s\n",
		fp.P90StoreKB, spec.StoreCapacity/1024, overMark(fp.ExceedsStoreCap))
	fmt.Printf("  max load footprint:     %8.2f KB\n", fp.MaxLoadKB)
	fmt.Printf("  max store footprint:    %8.2f KB\n", fp.MaxStoreKB)
}

func overMark(over bool) string {
	if over {
		return "  << EXCEEDS CAPACITY"
	}
	return ""
}

// reportConflicts runs the benchmark with 4 threads and a conflict sampler
// attached and prints the hottest conflict-detection lines.
func reportConflicts(kind platform.Kind, bench string, scale stamp.Scale, seed uint64) {
	counts := map[uint32]int{}
	e := htm.New(platform.New(kind), htm.Config{
		Threads: 4, SpaceSize: 96 << 20, Seed: seed, Virtual: true, CostScale: 1,
		ConflictSampler: func(line uint32, victim int) { counts[line]++ },
	})
	b, err := stamp.New(bench, stamp.Config{Scale: scale, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtrace:", err)
		os.Exit(1)
	}
	b.Setup(e.Thread(0))
	lock := tm.NewGlobalLock(e)
	runners := make([]stamp.Runner, 4)
	for i := range runners {
		runners[i] = stamp.TMRunner{X: tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(kind))}
	}
	b.Run(runners)
	if err := b.Validate(e.Thread(0)); err != nil {
		fmt.Fprintln(os.Stderr, "htmtrace: validation:", err)
		os.Exit(1)
	}

	type lc struct {
		line uint32
		n    int
	}
	var ls []lc
	total := 0
	for l, n := range counts {
		ls = append(ls, lc{l, n})
		total += n
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].n != ls[j].n {
			return ls[i].n > ls[j].n
		}
		return ls[i].line < ls[j].line
	})
	fmt.Printf("%s on %s, 4 threads: %d conflicts across %d lines\n\n", bench, kind, total, len(ls))
	fmt.Printf("%-12s %-12s %-10s %s\n", "line", "address", "conflicts", "share")
	for i := 0; i < 15 && i < len(ls); i++ {
		fmt.Printf("%-12d %#-12x %-10d %.1f%%\n",
			ls[i].line, uint64(ls[i].line)*uint64(e.LineSize()), ls[i].n,
			100*float64(ls[i].n)/float64(total))
	}
}
