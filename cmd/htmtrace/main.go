// Command htmtrace analyses transaction behaviour: per-transaction footprint
// distributions (the data behind Figures 10 and 11), and full event traces
// of parallel runs with abort attribution.
//
// Usage:
//
//	htmtrace -bench yada -platform zec12             # footprint distribution
//	htmtrace -bench intruder -platform zec12 -events # traced 4-thread run
//	htmtrace -events -bench yada -jsonl yada.jsonl -perfetto yada.trace.json
//	htmtrace -check-events yada.jsonl                # validate a JSONL trace
//	htmtrace -check-trace yada.trace.json            # validate a Chrome trace
//	htmtrace -check-metrics metrics.prom             # validate Prometheus text
//
// The -events mode runs the benchmark with an event tracer attached and
// prints an abort-attribution report: abort-reason × retry-depth histogram,
// commit-latency percentiles in virtual cycles, and the hottest conflicting
// cache lines with their symbolic region names. -jsonl and -perfetto
// additionally export the raw events; the Perfetto file loads in
// https://ui.perfetto.dev or chrome://tracing with one track per simulated
// thread and virtual clocks as timestamps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
	"htmcmp/internal/trace"
)

func main() {
	platName := flag.String("platform", "zec12", "platform: bgq, zec12, intel, power8")
	bench := flag.String("bench", "vacation-low", "STAMP benchmark name")
	scaleName := flag.String("scale", "sim", "workload scale: test, sim, full")
	events := flag.Bool("events", false, "run -threads threads with an event tracer and report abort attribution")
	threads := flag.Int("threads", 4, "thread count for -events runs")
	seed := flag.Uint64("seed", 42, "workload seed")
	jsonlPath := flag.String("jsonl", "", "with -events: also write the raw events as JSONL to this file")
	perfettoPath := flag.String("perfetto", "", "with -events: also write a Chrome/Perfetto trace to this file")
	top := flag.Int("top", 10, "with -events: number of hot conflicting lines to print")
	checkEvents := flag.String("check-events", "", "validate a JSONL event file and exit (CI hook)")
	checkTrace := flag.String("check-trace", "", "validate a Chrome trace file and exit (CI hook)")
	checkMetrics := flag.String("check-metrics", "", "validate a Prometheus text exposition file and exit (CI hook)")
	if rejectRemovedFlags(os.Args[1:], os.Stderr) {
		os.Exit(2)
	}
	flag.Parse()

	if *checkEvents != "" || *checkTrace != "" || *checkMetrics != "" {
		os.Exit(runChecks(*checkEvents, *checkTrace, *checkMetrics, os.Stdout, os.Stderr))
	}

	kind, err := parsePlatform(*platName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtrace:", err)
		os.Exit(2)
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtrace:", err)
		os.Exit(2)
	}

	if *events {
		if err := runEvents(kind, *bench, scale, *seed, *threads, *top, *jsonlPath, *perfettoPath); err != nil {
			fmt.Fprintln(os.Stderr, "htmtrace:", err)
			os.Exit(1)
		}
		return
	}

	fp, err := trace.Collect(*bench, kind, trace.Options{Scale: scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmtrace:", err)
		os.Exit(1)
	}
	spec := platform.New(kind)
	fmt.Printf("%s on %s: %d committed transactions\n\n", *bench, kind, fp.Transactions)
	fmt.Printf("  90-pct load footprint:  %8.2f KB (capacity %d KB)%s\n",
		fp.P90LoadKB, spec.LoadCapacity/1024, overMark(fp.ExceedsLoadCap))
	fmt.Printf("  90-pct store footprint: %8.2f KB (capacity %d KB)%s\n",
		fp.P90StoreKB, spec.StoreCapacity/1024, overMark(fp.ExceedsStoreCap))
	fmt.Printf("  max load footprint:     %8.2f KB\n", fp.MaxLoadKB)
	fmt.Printf("  max store footprint:    %8.2f KB\n", fp.MaxStoreKB)
}

// parsePlatform resolves a platform flag value (long or short name).
func parsePlatform(name string) (platform.Kind, error) {
	switch name {
	case "bgq", "bg":
		return platform.BlueGeneQ, nil
	case "zec12", "z12":
		return platform.ZEC12, nil
	case "intel", "ic":
		return platform.IntelCore, nil
	case "power8", "p8":
		return platform.POWER8, nil
	}
	return 0, fmt.Errorf("unknown platform %q", name)
}

// parseScale resolves a scale flag value.
func parseScale(name string) (stamp.Scale, error) {
	switch name {
	case "test":
		return stamp.ScaleTest, nil
	case "sim":
		return stamp.ScaleSim, nil
	case "full":
		return stamp.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}

func overMark(over bool) string {
	if over {
		return "  << EXCEEDS CAPACITY"
	}
	return ""
}

// removedFlags maps flags deleted from the CLI to the guidance their error
// message carries. Deprecation lived one release; now the alias is gone and
// using it fails fast with the replacement spelled out.
var removedFlags = map[string]string{
	"conflicts": "-conflicts was removed; use -events",
}

// rejectRemovedFlags scans raw command-line arguments for flags that no
// longer exist, before flag.Parse can emit its generic "flag provided but
// not defined" error. It prints the replacement guidance to w and reports
// whether any removed flag was present. Non-flag tokens are skipped rather
// than terminating the scan — they may be the value of a preceding flag
// (htmtrace takes no positional arguments) — and "--" ends it.
func rejectRemovedFlags(args []string, w io.Writer) bool {
	hit := false
	for _, a := range args {
		if a == "--" {
			break
		}
		if len(a) == 0 || a[0] != '-' {
			continue
		}
		name := a[1:]
		if len(name) > 0 && name[0] == '-' {
			name = name[1:]
		}
		name, _, _ = strings.Cut(name, "=")
		if msg, ok := removedFlags[name]; ok {
			fmt.Fprintf(w, "htmtrace: %s\n", msg)
			hit = true
		}
	}
	return hit
}

// runChecks validates previously exported artefacts (the CI hooks behind
// -check-events/-check-trace/-check-metrics) and returns the process exit
// code.
func runChecks(eventsPath, tracePath, metricsPath string, out, errw *os.File) int {
	code := 0
	if eventsPath != "" {
		n, err := obs.ValidateFile(eventsPath)
		if err != nil {
			fmt.Fprintf(errw, "htmtrace: %s: %v\n", eventsPath, err)
			code = 1
		} else {
			fmt.Fprintf(out, "%s: %d valid events\n", eventsPath, n)
		}
	}
	if tracePath != "" {
		b, err := os.ReadFile(tracePath)
		switch {
		case err != nil:
			fmt.Fprintf(errw, "htmtrace: %v\n", err)
			code = 1
		case !json.Valid(b):
			fmt.Fprintf(errw, "htmtrace: %s: not valid JSON\n", tracePath)
			code = 1
		default:
			fmt.Fprintf(out, "%s: valid Chrome trace JSON (%d bytes)\n", tracePath, len(b))
		}
	}
	if metricsPath != "" {
		f, err := os.Open(metricsPath)
		if err != nil {
			fmt.Fprintf(errw, "htmtrace: %v\n", err)
			code = 1
		} else {
			n, err := obs.ValidatePromText(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(errw, "htmtrace: %s: %v\n", metricsPath, err)
				code = 1
			} else {
				fmt.Fprintf(out, "%s: %d valid metric samples\n", metricsPath, n)
			}
		}
	}
	return code
}

// runEvents runs the benchmark with an event tracer attached and prints the
// abort-attribution report; jsonlPath/perfettoPath additionally export the
// raw events.
func runEvents(kind platform.Kind, bench string, scale stamp.Scale, seed uint64, threads, top int, jsonlPath, perfettoPath string) error {
	if threads < 1 {
		threads = 1
	}
	tracer := obs.NewTracer(threads, obs.DefaultRingEvents)
	e := htm.New(platform.New(kind), htm.Config{
		Threads: threads, SpaceSize: 96 << 20, Seed: seed, Virtual: true, CostScale: 1,
		Tracer: tracer,
	})
	b, err := stamp.New(bench, stamp.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	b.Setup(e.Thread(0))
	lock := tm.NewGlobalLock(e)
	runners := make([]stamp.Runner, threads)
	for i := range runners {
		runners[i] = stamp.TMRunner{X: tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(kind))}
	}
	b.Run(runners)
	if err := b.Validate(e.Thread(0)); err != nil {
		return fmt.Errorf("validation: %w", err)
	}

	evs := tracer.Events()
	rep := obs.Aggregate(evs, obs.ReportOptions{
		TopN:     top,
		LineSize: e.LineSize(),
		RegionAt: e.Space().RegionAt,
	})
	fmt.Printf("%s on %s, %d threads (virtual clock %d, %d scheduler handoffs)\n\n",
		bench, kind, threads, e.MaxClock(), e.SchedHandoffs())
	rep.Fprint(os.Stdout)

	if jsonlPath != "" {
		if err := obs.WriteJSONLFile(jsonlPath, evs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "htmtrace: wrote %d events to %s\n", len(evs), jsonlPath)
	}
	if perfettoPath != "" {
		if err := obs.WriteChromeTraceFile(perfettoPath, evs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "htmtrace: wrote Chrome trace to %s (load in ui.perfetto.dev)\n", perfettoPath)
	}
	return nil
}
