# Make targets mirror what CI runs, so humans and the workflow invoke the
# same commands.

GO      ?= go
BIN     := bin
SMOKE   := /tmp/htmcmp-smoke
JOBS    ?= 4
# GATE is the bench-hotpath-smoke regression threshold in percent. It is
# deliberately loose: CI hosts differ from the machine that recorded
# BENCH_hotpath.json, so only a gross slowdown should fail the build.
GATE    ?= 200

# FUZZTIME is the per-target budget for fuzz-smoke.
FUZZTIME ?= 30s

.PHONY: build test race lint bench-smoke bench-hotpath bench-hotpath-smoke profile trace-smoke metrics-smoke fuzz-smoke chaos-smoke cover results-sim results-sim-diff clean

build:
	$(GO) build ./...
	$(GO) build -o $(BIN)/htmbench ./cmd/htmbench
	$(GO) build -o $(BIN)/htmtrace ./cmd/htmtrace
	$(GO) build -o $(BIN)/htmtune ./cmd/htmtune

test:
	$(GO) test ./...

# racecheck also compiles in the debug assertions (quiescent-only Stats).
race:
	$(GO) test -race -tags racecheck ./internal/...

# lint runs go vet, the gofmt gate, and htmlint — the repo's own
# invariant checkers (internal/lint): determinism of the simulated core,
# nil-gated instrumentation hooks, sweep cache identity, build-tag twin
# symmetry, and unmixed atomic/plain access. Intentional violations are
# annotated in source with `//htmlint:allow <check> -- <reason>`.
lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) build -o $(BIN)/htmlint ./cmd/htmlint
	./$(BIN)/htmlint ./...

# bench-smoke runs the figure sweep twice at test scale against a fresh
# cache: the first run computes every cell, the second must report a 100%
# cache hit (all cells skipped) and emit byte-identical tables.
bench-smoke: build
	rm -rf $(SMOKE)
	mkdir -p $(SMOKE)
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) \
		-cache-dir $(SMOKE)/cache >$(SMOKE)/run1.txt 2>$(SMOKE)/run1.log
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) \
		-cache-dir $(SMOKE)/cache >$(SMOKE)/run2.txt 2>$(SMOKE)/run2.log
	cmp $(SMOKE)/run1.txt $(SMOKE)/run2.txt
	grep -q 'hit=100.0%' $(SMOKE)/run2.log || { \
		echo "second run did not skip all cells:"; cat $(SMOKE)/run2.log; exit 1; }
	grep -q ' computed=0 ' $(SMOKE)/run2.log || { \
		echo "second run recomputed cells:"; cat $(SMOKE)/run2.log; exit 1; }
	@echo "bench-smoke ok: warm-cache run skipped 100% of cells, tables byte-identical"

# bench-hotpath measures the engine hot-path microbenchmarks (see
# internal/htm/hotpath_bench_test.go) and rewrites BENCH_hotpath.json. When
# the file already exists its current numbers are carried forward as the
# baseline, so the JSON records the before/after comparison.
bench-hotpath:
	$(GO) build -o $(BIN)/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '^BenchmarkHotpath' -benchmem \
		-count=1 ./internal/htm | tee /tmp/htmcmp-bench-hotpath.txt
	@if [ -f BENCH_hotpath.json ]; then \
		./$(BIN)/benchjson -baseline BENCH_hotpath.json -label "$$(git rev-parse --short HEAD 2>/dev/null || echo local)" \
			-o BENCH_hotpath.json </tmp/htmcmp-bench-hotpath.txt; \
	else \
		./$(BIN)/benchjson -label "$$(git rev-parse --short HEAD 2>/dev/null || echo local)" \
			-o BENCH_hotpath.json </tmp/htmcmp-bench-hotpath.txt; \
	fi
	@echo "bench-hotpath: wrote BENCH_hotpath.json"

# bench-hotpath-smoke is the CI gate: every microbenchmark must execute
# (one iteration) without failing; the parsed JSON is left in $(SMOKE) for
# artifact upload. Numbers from a 1x run are not meaningful and are not
# compared against anything.
bench-hotpath-smoke:
	mkdir -p $(SMOKE)
	$(GO) build -o $(BIN)/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '^BenchmarkHotpath' -benchtime=1x \
		-count=1 ./internal/htm | tee $(SMOKE)/bench-hotpath.txt
	./$(BIN)/benchjson -label smoke-1x -o $(SMOKE)/BENCH_hotpath.json \
		<$(SMOKE)/bench-hotpath.txt
	$(GO) test -run '^$$' -bench '^BenchmarkHotpathTx(Load|Store)(8|64)$$$$' \
		-benchmem -benchtime=20000x -count=1 ./internal/htm | tee $(SMOKE)/bench-gate.txt
	./$(BIN)/benchjson -baseline BENCH_hotpath.json -gate $(GATE) \
		-o $(SMOKE)/BENCH_gate.json <$(SMOKE)/bench-gate.txt
	@echo "bench-hotpath-smoke ok (gate: no per-op benchmark regressed >$(GATE)% or grew allocs/op)"

# profile captures CPU and heap pprof profiles of one sweep cell (a single
# uncached fig2+3 sweep at test scale) into $(SMOKE) for artifact upload.
# Inspect with `go tool pprof $(SMOKE)/sweep.cpu.pprof`.
profile: build
	mkdir -p $(SMOKE)
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) -no-cache \
		-cpuprofile $(SMOKE)/sweep.cpu.pprof -memprofile $(SMOKE)/sweep.heap.pprof \
		>/dev/null 2>$(SMOKE)/profile.log
	@test -s $(SMOKE)/sweep.cpu.pprof || { echo "empty CPU profile"; exit 1; }
	@test -s $(SMOKE)/sweep.heap.pprof || { echo "empty heap profile"; exit 1; }
	@echo "profile ok: wrote $(SMOKE)/sweep.cpu.pprof and $(SMOKE)/sweep.heap.pprof"

# trace-smoke records an event-traced run of a small benchmark and validates
# both export formats, then exercises the sweep-level tracing/metrics flags:
# every per-cell JSONL file must validate and METRICS.json must report the
# computed cells.
trace-smoke: build
	mkdir -p $(SMOKE)
	./$(BIN)/htmtrace -events -bench intruder -scale test -threads 4 \
		-jsonl $(SMOKE)/intruder.jsonl -perfetto $(SMOKE)/intruder.trace.json \
		>$(SMOKE)/intruder-report.txt 2>$(SMOKE)/intruder-report.log
	grep -q 'top conflicting lines' $(SMOKE)/intruder-report.txt
	./$(BIN)/htmtrace -check-events $(SMOKE)/intruder.jsonl \
		-check-trace $(SMOKE)/intruder.trace.json
	rm -rf $(SMOKE)/traces
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) -no-cache \
		-trace-dir $(SMOKE)/traces -metrics $(SMOKE)/METRICS.json \
		>/dev/null 2>$(SMOKE)/trace-sweep.log
	@ls $(SMOKE)/traces/*.jsonl >/dev/null 2>&1 || { \
		echo "sweep produced no per-cell trace files"; exit 1; }
	@for f in $(SMOKE)/traces/*.jsonl; do \
		./$(BIN)/htmtrace -check-events $$f >/dev/null || exit 1; done
	@grep -q '"cells_computed"' $(SMOKE)/METRICS.json || { \
		echo "METRICS.json missing counters:"; cat $(SMOKE)/METRICS.json; exit 1; }
	@echo "trace-smoke ok: event report, Chrome trace, per-cell JSONL and METRICS.json all validate"

# metrics-smoke drives the live-telemetry stack end to end: an uncached
# test-scale sweep serves the dashboard while it computes, the /metrics
# scrape must validate against the in-repo exposition parser (htmtrace
# -check-metrics), /api/state must carry the worker table, and a
# deliberately aggressive stall threshold forces the flight recorder to
# dump mid-sweep — any JSONL rings in the dump must pass -check-events.
metrics-smoke: build
	@set -e; \
	rm -rf $(SMOKE)/flight $(SMOKE)/metrics.log; mkdir -p $(SMOKE)/flight; \
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) -no-cache \
		-http 127.0.0.1:0 -sample 25ms -http-linger 15s \
		-flight-dir $(SMOKE)/flight -flight-stall 10ms \
		>$(SMOKE)/metrics-run.txt 2>$(SMOKE)/metrics.log & pid=$$!; \
	addr=""; for i in $$(seq 1 300); do \
		addr=$$(sed -n 's|.*live telemetry at http://\([^/]*\)/.*|\1|p' $(SMOKE)/metrics.log | head -1); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	[ -n "$$addr" ] || { echo "telemetry server never came up"; cat $(SMOKE)/metrics.log; exit 1; }; \
	curl -fsS "http://$$addr/metrics" >/dev/null || { echo "live scrape failed mid-sweep"; exit 1; }; \
	for i in $$(seq 1 1800); do \
		grep -q 'sweep summary:' $(SMOKE)/metrics.log && break; sleep 0.1; done; \
	grep -q 'sweep summary:' $(SMOKE)/metrics.log || { echo "sweep never finished"; cat $(SMOKE)/metrics.log; exit 1; }; \
	curl -fsS "http://$$addr/metrics" >$(SMOKE)/metrics.prom; \
	curl -fsS "http://$$addr/api/state" >$(SMOKE)/state.json; \
	curl -fsS "http://$$addr/" >$(SMOKE)/dashboard.html; \
	wait $$pid; \
	./$(BIN)/htmtrace -check-metrics $(SMOKE)/metrics.prom; \
	grep -q 'htm_tx_begins_total' $(SMOKE)/metrics.prom || { echo "scrape missing engine counters"; exit 1; }; \
	grep -q 'sweep_cells_done_total' $(SMOKE)/metrics.prom || { echo "scrape missing sweep counters"; exit 1; }; \
	grep -q '"workers"' $(SMOKE)/state.json || { echo "/api/state missing the worker table"; exit 1; }; \
	grep -q 'htmcmp live telemetry' $(SMOKE)/dashboard.html || { echo "dashboard page malformed"; exit 1; }; \
	ls -d $(SMOKE)/flight/flight-* >/dev/null 2>&1 || { echo "flight recorder never triggered"; cat $(SMOKE)/metrics.log; exit 1; }; \
	dump=$$(ls -d $(SMOKE)/flight/flight-* | head -1); \
	test -s "$$dump/info.json" || { echo "flight dump missing info.json"; exit 1; }; \
	./$(BIN)/htmtrace -check-metrics "$$dump/metrics.prom" >/dev/null; \
	for f in "$$dump"/rings-*.jsonl; do \
		[ -e "$$f" ] || break; \
		./$(BIN)/htmtrace -check-events "$$f" >/dev/null || exit 1; done; \
	echo "metrics-smoke ok: live scrape validates, dashboard served, flight dump at $$dump checks out"

# fuzz-smoke runs each native fuzz target for $(FUZZTIME) of coverage-guided
# input generation (generated transactional programs differentially checked
# against STM and a global lock, with witness-log replay), then proves the
# oracle actually fires: a build with -tags mutate_isolation seeds a
# write-set-isolation bug in the engine that the mutation tests must catch.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME) ./internal/verify
	$(GO) test -run '^$$' -fuzz '^FuzzProgramHTM$$' -fuzztime $(FUZZTIME) ./internal/verify
	$(GO) test -run '^$$' -fuzz '^FuzzRealConcurrency$$' -fuzztime $(FUZZTIME) ./internal/verify
	$(GO) test -tags mutate_isolation -run '^TestMutation' -count=1 ./internal/verify
	@echo "fuzz-smoke ok: all fuzz targets ran clean and the seeded mutation was caught"

# chaos-smoke proves the self-healing sweep end to end: the chaos/soak test
# suite runs under the race detector, then a test-scale sweep under -chaos
# (every fault class armed, including stalls against a short cell timeout)
# must complete with zero failed cells and emit tables byte-identical to a
# fault-free run. The chaos report is left in $(SMOKE) for artifact upload.
chaos-smoke: build
	$(GO) test -race -count=1 -run 'Chaos|Quarantine|RetryBackoff' \
		./internal/harness/sweep ./internal/chaos ./internal/htm ./internal/adapt ./internal/harness
	rm -rf $(SMOKE)/chaos
	mkdir -p $(SMOKE)/chaos
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) \
		-cache-dir $(SMOKE)/chaos/cache-clean \
		>$(SMOKE)/chaos/clean.txt 2>$(SMOKE)/chaos/clean.log
	./$(BIN)/htmbench -exp fig2+3 -scale test -jobs $(JOBS) \
		-chaos -chaos-seed 42 -cell-retries 2 -cell-timeout 5s \
		-chaos-report $(SMOKE)/chaos/report.json \
		-cache-dir $(SMOKE)/chaos/cache-chaos \
		>$(SMOKE)/chaos/chaos.txt 2>$(SMOKE)/chaos/chaos.log
	cmp $(SMOKE)/chaos/clean.txt $(SMOKE)/chaos/chaos.txt
	@grep -q ' failed=0 ' $(SMOKE)/chaos/chaos.log || { \
		echo "chaos sweep failed cells:"; cat $(SMOKE)/chaos/chaos.log; exit 1; }
	@grep -q '"total_fired": [1-9]' $(SMOKE)/chaos/report.json || { \
		echo "chaos never fired anything:"; cat $(SMOKE)/chaos/report.json; exit 1; }
	@echo "chaos-smoke ok: injected faults recovered, tables byte-identical to the fault-free run"

# cover gates statement coverage of the engine and its verification oracle
# against the checked-in floor (COVERAGE.floor, whole percent). The tm and
# harness suites run too because they drive much of internal/htm.
cover:
	mkdir -p $(SMOKE)
	$(GO) test -count=1 -coverprofile=$(SMOKE)/cover.out \
		-coverpkg=./internal/htm,./internal/verify \
		./internal/htm ./internal/verify ./internal/tm
	@total=$$($(GO) tool cover -func=$(SMOKE)/cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	floor=$$(cat COVERAGE.floor); \
	echo "coverage: $$total% (floor: $$floor%)"; \
	awk -v t=$$total -v f=$$floor 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || { \
		echo "coverage $$total% fell below the checked-in floor $$floor%"; exit 1; }

# results-sim regenerates the checked-in sim-scale results file. Run after
# any change that intentionally shifts measured numbers, and commit the
# result; the nightly workflow diffs against it.
results-sim: build
	./$(BIN)/htmbench -exp all -scale sim -repeats 2 -jobs $(JOBS) > results_sim.txt
	@echo "results-sim: rewrote results_sim.txt"

# results-sim-diff is the nightly drift gate: regenerate the sim-scale
# results into $(SMOKE) (reusing the content-addressed .htmcache, so an
# unchanged simulator costs almost nothing) and fail on any difference from
# the checked-in file, leaving the diff behind for artifact upload.
results-sim-diff: build
	mkdir -p $(SMOKE)
	./$(BIN)/htmbench -exp all -scale sim -repeats 2 -jobs $(JOBS) \
		>$(SMOKE)/results_sim.txt 2>$(SMOKE)/results_sim.log
	@if ! diff -u results_sim.txt $(SMOKE)/results_sim.txt >$(SMOKE)/results_sim.diff; then \
		echo "results_sim.txt drifted from a fresh sim sweep:"; \
		cat $(SMOKE)/results_sim.diff; exit 1; fi
	@echo "results-sim-diff ok: fresh sweep matches checked-in results_sim.txt byte-for-byte"

clean:
	rm -rf $(BIN) $(SMOKE) .htmcache
