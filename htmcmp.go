// Package htmcmp is a Go reproduction of Nakaike, Odaira, Gaudet, Michael
// and Tomari, "Quantitative Comparison of Hardware Transactional Memory for
// Blue Gene/Q, zEnterprise EC12, Intel Core, and POWER8" (ISCA 2015).
//
// Go has no HTM intrinsics and the four machines are museum pieces, so the
// hardware is substituted by a behavioural simulator (see DESIGN.md): a
// virtual-time HTM engine that executes real transactions against a
// simulated memory with per-platform conflict detection, store buffering,
// capacity accounting and abort semantics, plus Go ports of all eight STAMP
// benchmarks and the paper's processor-specific feature experiments.
//
// This package is the public facade: it re-exports the stable API of the
// internal packages so downstream users can build and run transactional
// workloads on the four platform models without importing internals.
//
// # Quick start
//
//	eng := htmcmp.NewEngine(htmcmp.ZEC12, htmcmp.EngineConfig{Threads: 4})
//	t0 := eng.Thread(0)
//	counter := t0.Alloc(64)
//	lock := htmcmp.NewGlobalLock(eng)
//	x := htmcmp.NewExecutor(t0, lock, htmcmp.DefaultPolicy(htmcmp.ZEC12))
//	x.Run(func(t *htmcmp.Thread) {
//	    t.Store64(counter, t.Load64(counter)+1)
//	})
//
// See examples/ for runnable programs and cmd/htmbench for the experiment
// driver that regenerates every table and figure of the paper.
package htmcmp

import (
	"htmcmp/internal/adapt"
	"htmcmp/internal/harness"
	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
	"htmcmp/internal/trace"
)

// Platform model types and the four processors of the study.
type (
	// PlatformKind identifies one of the four modelled processors.
	PlatformKind = platform.Kind
	// PlatformSpec is a processor's HTM model (Table 1 parameters plus
	// behavioural quirks).
	PlatformSpec = platform.Spec
	// BGQMode selects Blue Gene/Q's running mode.
	BGQMode = platform.BGQMode
)

// The four platforms, in the paper's order.
const (
	BlueGeneQ = platform.BlueGeneQ
	ZEC12     = platform.ZEC12
	IntelCore = platform.IntelCore
	POWER8    = platform.POWER8
)

// Blue Gene/Q running modes (Section 2.1).
const (
	ShortRunning = platform.ShortRunning
	LongRunning  = platform.LongRunning
)

// NewPlatform returns the model of the requested processor.
func NewPlatform(k PlatformKind) *PlatformSpec { return platform.New(k) }

// AllPlatforms returns all four platform models in the paper's order.
func AllPlatforms() []*PlatformSpec { return platform.All() }

// Engine types: the HTM simulator itself.
type (
	// Engine is one platform's HTM over one simulated memory.
	Engine = htm.Engine
	// EngineConfig configures an Engine (thread count, virtual-time
	// scheduling, ablation switches).
	EngineConfig = htm.Config
	// Thread is one hardware-thread context; all memory accesses go
	// through it.
	Thread = htm.Thread
	// TxKind selects normal, rollback-only or constrained transactions.
	TxKind = htm.TxKind
	// Abort describes one transaction abort (reason + persistence).
	Abort = htm.Abort
	// AbortReason is the engine-level abort reason.
	AbortReason = htm.Reason
	// EngineStats are the engine-level transaction counters.
	EngineStats = htm.Stats
	// Barrier is the scheduler-aware cyclic barrier.
	Barrier = htm.Barrier
)

// Transaction kinds.
const (
	TxNormal       = htm.TxNormal
	TxRollbackOnly = htm.TxRollbackOnly
	TxConstrained  = htm.TxConstrained
)

// NewEngine creates an HTM engine for the given platform. Unless overridden,
// experiments should set EngineConfig.Virtual for deterministic,
// host-independent measurement.
func NewEngine(k PlatformKind, cfg EngineConfig) *Engine {
	return htm.New(platform.New(k), cfg)
}

// Runtime types: the software TM layer of the paper's Section 3.
type (
	// GlobalLock is the single-global-lock fallback.
	GlobalLock = tm.GlobalLock
	// Policy holds the three-counter retry limits of Figure 1.
	Policy = tm.Policy
	// Executor runs critical sections with the retry mechanism.
	Executor = tm.Executor
	// RuntimeStats are the software-runtime counters (serialization ratio,
	// Figure 3 abort categories).
	RuntimeStats = tm.Stats
)

// NewGlobalLock allocates the global fallback lock in the engine's memory.
func NewGlobalLock(e *Engine) *GlobalLock { return tm.NewGlobalLock(e) }

// NewExecutor pairs a thread with the global lock and a retry policy.
func NewExecutor(t *Thread, lock *GlobalLock, pol Policy) *Executor {
	return tm.NewExecutor(t, lock, pol)
}

// DefaultPolicy returns an untuned retry policy for a platform.
func DefaultPolicy(k PlatformKind) Policy { return tm.DefaultPolicy(k) }

// Adaptive-runtime types: the online mode controller (HTM / NOrec STM /
// global lock per transaction site) described in DESIGN.md §6.
type (
	// AdaptController selects execution modes from windowed abort history.
	// One controller is shared by all executors of a run.
	AdaptController = adapt.Controller
	// AdaptConfig tunes the controller's windows and thresholds; the zero
	// value selects sane defaults.
	AdaptConfig = adapt.Config
	// ExecutorConfig bundles a static retry policy with an optional
	// adaptive controller for NewExecutorConfig.
	ExecutorConfig = tm.Config
)

// NewAdaptController builds an online mode controller.
func NewAdaptController(cfg AdaptConfig) *AdaptController { return adapt.NewController(cfg) }

// NewExecutorConfig is NewExecutor with an explicit config; attaching an
// AdaptController routes Run through the adaptive hybrid path (virtual-time
// engines only).
func NewExecutorConfig(t *Thread, lock *GlobalLock, cfg ExecutorConfig) *Executor {
	return tm.NewExecutorConfig(t, lock, cfg)
}

// STAMP benchmark types.
type (
	// StampBenchmark is one STAMP program instance.
	StampBenchmark = stamp.Benchmark
	// StampConfig parameterises a benchmark (scale, variant, seed).
	StampConfig = stamp.Config
	// StampScale selects the input size.
	StampScale = stamp.Scale
	// StampVariant selects original vs paper-modified code shape.
	StampVariant = stamp.Variant
	// Runner executes atomic sections for a benchmark worker.
	Runner = stamp.Runner
	// SeqRunner is the sequential (non-HTM) baseline runner.
	SeqRunner = stamp.SeqRunner
	// TMRunner runs sections through the transactional runtime.
	TMRunner = stamp.TMRunner
	// HLERunner runs sections through hardware lock elision.
	HLERunner = stamp.HLERunner
)

// STAMP scales and variants.
const (
	ScaleTest = stamp.ScaleTest
	ScaleSim  = stamp.ScaleSim
	ScaleFull = stamp.ScaleFull

	Modified = stamp.Modified
	Original = stamp.Original
)

// NewStamp creates STAMP benchmark name ("genome", "kmeans-high", …).
func NewStamp(name string, cfg StampConfig) (StampBenchmark, error) {
	return stamp.New(name, cfg)
}

// StampNames returns the registered benchmarks in the paper's figure order.
func StampNames() []string { return stamp.Names() }

// Experiment harness types.
type (
	// ExperimentOptions configure a figure reproduction.
	ExperimentOptions = harness.Options
	// RunSpec describes one measured configuration.
	RunSpec = harness.RunSpec
	// RunResult is the outcome of a measured RunSpec.
	RunResult = harness.Result
	// ResultTable is a rendered experiment table.
	ResultTable = harness.Table
	// FootprintTrace is one Figure 10/11 sample.
	FootprintTrace = trace.Footprint
	// FootprintOptions configure a footprint trace collection.
	FootprintOptions = trace.Options
)

// Measure runs one benchmark/platform configuration and reports speed-up and
// abort statistics.
func Measure(spec RunSpec) (RunResult, error) { return harness.Run(spec) }

// Table1 renders the paper's Table 1 from the platform models.
func Table1() ResultTable { return harness.Table1() }

// Fig2And3 reproduces Figures 2 and 3.
func Fig2And3(opts ExperimentOptions) (fig2, fig3 ResultTable, err error) {
	return harness.Fig2And3(opts)
}

// Fig4 reproduces Figure 4 (original vs modified STAMP).
func Fig4(opts ExperimentOptions) (ResultTable, error) { return harness.Fig4(opts) }

// Fig5 reproduces Figure 5 (thread scaling).
func Fig5(opts ExperimentOptions) (ResultTable, error) { return harness.Fig5(opts) }

// Fig7 reproduces Figure 7 (RTM vs HLE).
func Fig7(opts ExperimentOptions) (ResultTable, error) { return harness.Fig7(opts) }

// CollectFootprint gathers one benchmark/platform transaction-size
// distribution (Figures 10/11).
func CollectFootprint(bench string, k PlatformKind, opts FootprintOptions) (FootprintTrace, error) {
	return trace.Collect(bench, k, opts)
}
