package htmcmp

import (
	"fmt"
	"io"
	"testing"

	"htmcmp/internal/features"
	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/trace"
)

// One testing.B per table/figure of the paper. Each benchmark iteration
// regenerates the experiment at test scale (cmd/htmbench runs the full sim
// scale); the headline number of each figure is exposed via b.ReportMetric.

func benchOpts() harness.Options {
	return harness.Options{Scale: stamp.ScaleTest, Repeats: 1, Seed: 42}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.Table1()
		t.Fprint(io.Discard)
	}
}

func BenchmarkFig2SpeedupsAndFig3Aborts(b *testing.B) {
	var geomean float64
	for i := 0; i < b.N; i++ {
		fig2, _, err := harness.Fig2And3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// The geomean row's zEC12 column is the figure's headline.
		last := fig2.Rows[len(fig2.Rows)-1]
		geomean = parseF(b, last[3])
	}
	b.ReportMetric(geomean, "zEC12-geomean-speedup")
}

func BenchmarkFig4OriginalVsModified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ConstrainedCLQ(b *testing.B) {
	var constrained1 float64
	for i := 0; i < b.N; i++ {
		results, err := features.RunCLQ(features.CLQOptions{
			OpsPerThread: 500, Threads: []int{1, 4}, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Mode == features.CLQConstrainedTM && r.Threads == 1 {
				constrained1 = r.Relative
			}
		}
	}
	b.ReportMetric(constrained1, "constrained-rel-time-1t")
}

func BenchmarkFig7HLEvsRTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9TLSSuspendResume(b *testing.B) {
	var sphinxWith float64
	for i := 0; i < b.N; i++ {
		results, err := features.RunTLS(features.TLSOptions{
			Iterations: 512, Threads: []int{1, 4}, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Kernel == features.KernelSphinx3 && r.SuspendResume && r.Threads == 4 {
				sphinxWith = r.Speedup
			}
		}
	}
	b.ReportMetric(sphinxWith, "sphinx3-with-sr-speedup")
}

func BenchmarkFig10LoadFootprints(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		fp, err := trace.Collect("labyrinth", platform.POWER8, trace.Options{Scale: stamp.ScaleTest, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		p90 = fp.P90LoadKB
	}
	b.ReportMetric(p90, "labyrinth-P8-p90-load-KB")
}

func BenchmarkFig11StoreFootprints(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		fp, err := trace.Collect("yada", platform.ZEC12, trace.Options{Scale: stamp.ScaleTest, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		p90 = fp.P90StoreKB
	}
	b.ReportMetric(p90, "yada-z12-p90-store-KB")
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationPrefetch(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		on, err := harness.Run(harness.RunSpec{
			Platform: platform.IntelCore, Benchmark: "kmeans-low",
			Threads: 4, Scale: stamp.ScaleTest, Repeats: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		off, err := harness.Run(harness.RunSpec{
			Platform: platform.IntelCore, Benchmark: "kmeans-low",
			Threads: 4, Scale: stamp.ScaleTest, Repeats: 1,
			DisablePrefetch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		delta = off.Speedup - on.Speedup
	}
	b.ReportMetric(delta, "speedup-gain-prefetch-off")
}

func BenchmarkAblationResponderWins(b *testing.B) {
	var speed float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.RunSpec{
			Platform: platform.ZEC12, Benchmark: "vacation-low",
			Threads: 4, Scale: stamp.ScaleTest, Repeats: 1,
			ResponderWins: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		speed = res.Speedup
	}
	b.ReportMetric(speed, "responder-wins-speedup")
}

func BenchmarkAblationSMTSharing(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		shared, err := harness.Run(harness.RunSpec{
			Platform: platform.POWER8, Benchmark: "vacation-low",
			Threads: 12, Scale: stamp.ScaleTest, Repeats: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		unshared, err := harness.Run(harness.RunSpec{
			Platform: platform.POWER8, Benchmark: "vacation-low",
			Threads: 12, Scale: stamp.ScaleTest, Repeats: 1,
			DisableSMTSharing: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		gain = unshared.Speedup - shared.Speedup
	}
	b.ReportMetric(gain, "speedup-gain-no-smt-sharing")
}

func BenchmarkAblationBGQMode(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		short, err := harness.Run(harness.RunSpec{
			Platform: platform.BlueGeneQ, Benchmark: "labyrinth",
			Threads: 4, Scale: stamp.ScaleTest, Repeats: 1,
			Mode: platform.ShortRunning,
		})
		if err != nil {
			b.Fatal(err)
		}
		long, err := harness.Run(harness.RunSpec{
			Platform: platform.BlueGeneQ, Benchmark: "labyrinth",
			Threads: 4, Scale: stamp.ScaleTest, Repeats: 1,
			Mode: platform.LongRunning,
		})
		if err != nil {
			b.Fatal(err)
		}
		delta = long.Speedup - short.Speedup
	}
	b.ReportMetric(delta, "labyrinth-long-vs-short-gain")
}

// BenchmarkEngineOverhead measures the simulator's raw per-access cost (not
// a paper figure; engineering telemetry for the engine itself).
func BenchmarkEngineOverhead(b *testing.B) {
	e := NewEngine(IntelCore, EngineConfig{Threads: 1, SpaceSize: 1 << 20, CostScale: 0})
	th := e.Thread(0)
	a := th.Alloc(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.TryTx(TxNormal, func() {
			th.Store64(a, th.Load64(a)+1)
		})
	}
}

func parseF(b *testing.B, s string) float64 {
	b.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}
