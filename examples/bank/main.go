// Bank: a classic transactional-memory workload — random transfers between
// accounts — run on all four platform models, demonstrating isolation (the
// total balance is invariant), abort behaviour, and how conflict-detection
// granularity changes the abort ratio when accounts are packed densely
// versus padded to cache lines.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"

	"htmcmp"
)

const (
	nAccounts  = 256
	nThreads   = 8
	transfers  = 2000
	initialBal = 1000
)

func run(kind htmcmp.PlatformKind, padded bool) (aborts float64, ok bool) {
	eng := htmcmp.NewEngine(kind, htmcmp.EngineConfig{Threads: nThreads, Virtual: true})
	t0 := eng.Thread(0)

	accounts := make([]uint64, nAccounts)
	for i := range accounts {
		if padded {
			accounts[i] = t0.AllocAligned(8, eng.LineSize()) // one account per line
		} else {
			accounts[i] = t0.Alloc(8) // densely packed: false sharing
		}
		t0.Store64(accounts[i], initialBal)
	}

	lock := htmcmp.NewGlobalLock(eng)
	for i := 0; i < nThreads; i++ {
		eng.Thread(i).Register()
	}
	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			t := eng.Thread(tid)
			t.BeginWork()
			defer t.ExitWork()
			x := htmcmp.NewExecutor(t, lock, htmcmp.DefaultPolicy(kind))
			rng := t.Rand()
			for j := 0; j < transfers; j++ {
				from := accounts[rng.Intn(nAccounts)]
				to := accounts[rng.Intn(nAccounts)]
				amount := uint64(rng.Intn(20))
				x.Run(func(t *htmcmp.Thread) {
					balance := t.Load64(from)
					if balance < amount {
						return
					}
					t.Store64(from, balance-amount)
					t.Store64(to, t.Load64(to)+amount)
				})
			}
		}(i)
	}
	wg.Wait()

	var total uint64
	for _, a := range accounts {
		total += t0.Load64(a)
	}
	st := eng.Stats()
	return st.AbortRatio(), total == nAccounts*initialBal
}

func main() {
	fmt.Println("bank transfers: abort ratio by platform and account layout")
	fmt.Printf("%-12s  %-14s  %-14s\n", "platform", "packed abort%", "padded abort%")
	for _, spec := range htmcmp.AllPlatforms() {
		packed, okP := run(spec.Kind, false)
		padded, okA := run(spec.Kind, true)
		status := ""
		if !okP || !okA {
			status = "  BALANCE VIOLATION!"
		}
		fmt.Printf("%-12s  %-14.1f  %-14.1f%s\n", spec.Kind, packed, padded, status)
	}
	fmt.Println("\nLarger conflict-detection lines (zEC12: 256 B) suffer more from")
	fmt.Println("packed accounts — the false-conflict effect behind the paper's")
	fmt.Println("Section 4 kmeans fix.")
}
