// TLS: thread-level speculation on the POWER8 model (the paper's Section
// 6.3 / Figure 9) — ordered loop parallelisation with and without the
// suspend/resume instructions.
//
//	go run ./examples/tls
package main

import (
	"fmt"

	"htmcmp/internal/features"
)

func main() {
	fmt.Println("POWER8 thread-level speculation: speed-up over sequential (Figure 9)")
	fmt.Println()
	results, err := features.RunTLS(features.TLSOptions{
		Iterations: 1024,
		Threads:    []int{1, 2, 4, 6},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%-12s %-16s %-8s %-9s %s\n", "kernel", "suspend/resume", "threads", "speedup", "abort%")
	for _, r := range results {
		sr := "without"
		if r.SuspendResume {
			sr = "with"
		}
		fmt.Printf("%-12s %-16s %-8d %-9.2f %.1f\n",
			r.Kernel, sr, r.Threads, r.Speedup, r.AbortRatio)
	}
	fmt.Println()
	fmt.Println("Without suspend/resume the commit-order variable sits in every")
	fmt.Println("speculative transaction's read set, so the predecessor's ordering")
	fmt.Println("store aborts all successors; suspending around the ordering wait")
	fmt.Println("leaves only true data conflicts (the milc gauge-link updates).")
}
