// Quickstart: run one transactional counter on each of the four platform
// models and print the engine's view of what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"htmcmp"
)

func main() {
	for _, spec := range htmcmp.AllPlatforms() {
		eng := htmcmp.NewEngine(spec.Kind, htmcmp.EngineConfig{
			Threads: 4,
			Virtual: true, // deterministic virtual-time scheduling
		})
		lock := htmcmp.NewGlobalLock(eng)
		counter := eng.Thread(0).Alloc(64)

		// Register all workers, then run them: each increments the shared
		// counter 1000 times inside transactions with the paper's retry
		// mechanism and global-lock fallback.
		for i := 0; i < 4; i++ {
			eng.Thread(i).Register()
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				t := eng.Thread(tid)
				t.BeginWork()
				defer t.ExitWork()
				x := htmcmp.NewExecutor(t, lock, htmcmp.DefaultPolicy(spec.Kind))
				for j := 0; j < 1000; j++ {
					x.Run(func(t *htmcmp.Thread) {
						t.Store64(counter, t.Load64(counter)+1)
					})
				}
			}(i)
		}
		wg.Wait()

		st := eng.Stats()
		fmt.Printf("%-12s counter=%d commits=%d aborts=%d (%.1f%%) duration=%d cycles\n",
			spec.Kind, eng.Thread(0).Load64(counter),
			st.Commits, st.Aborts, st.AbortRatio(), eng.MaxClock())
	}
}
