// Stampmini: run one STAMP benchmark on all four platform models and print
// the paper's core metrics — speed-up over sequential, abort ratio with the
// Figure 3 category breakdown, and serialization ratio.
//
//	go run ./examples/stampmini [benchmark]
//
// Default benchmark: vacation-low. Any name from htmcmp.StampNames() works.
package main

import (
	"fmt"
	"os"

	"htmcmp"
	"htmcmp/internal/htm"
)

func main() {
	bench := "vacation-low"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	found := false
	for _, n := range htmcmp.StampNames() {
		if n == bench {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; choose one of %v\n", bench, htmcmp.StampNames())
		os.Exit(2)
	}

	fmt.Printf("STAMP %s, modified variant, 4 threads, sim scale\n\n", bench)
	fmt.Printf("%-12s %-8s %-8s %-10s %-40s\n", "platform", "speedup", "abort%", "serial%", "abort breakdown (cap/conf/other/lock)")
	for _, spec := range htmcmp.AllPlatforms() {
		res, err := htmcmp.Measure(htmcmp.RunSpec{
			Platform:  spec.Kind,
			Benchmark: bench,
			Threads:   4,
			Scale:     htmcmp.ScaleSim,
			Repeats:   1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.Kind, err)
			os.Exit(1)
		}
		br := res.Breakdown
		fmt.Printf("%-12s %-8.2f %-8.1f %-10.1f %.1f / %.1f / %.1f / %.1f\n",
			spec.Kind, res.Speedup, res.AbortRatio, res.SerializationRatio,
			br[htm.CategoryCapacity], br[htm.CategoryDataConflict],
			br[htm.CategoryOther], br[htm.CategoryLockConflict])
	}
	fmt.Println("\nSpeed-ups are virtual-time ratios (deterministic; host-independent).")
}
