// Queue: the paper's Section 6.1 experiment in miniature — a Michael–Scott
// concurrent linked queue on the zEC12 model, comparing the lock-free CAS
// implementation against normal transactions and constrained transactions.
//
//	go run ./examples/queue
package main

import (
	"fmt"

	"htmcmp/internal/features"
)

func main() {
	fmt.Println("ConcurrentLinkedQueue on zEC12: execution time relative to lock-free")
	fmt.Println("(Figure 6; lower is better, 1.00 = the lock-free CAS baseline)")
	fmt.Println()
	results, err := features.RunCLQ(features.CLQOptions{
		OpsPerThread: 2000,
		Threads:      []int{1, 2, 4, 8},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%-8s %-10s %-10s %-12s %s\n", "threads", "LockFree", "NoRetryTM", "OptRetryTM", "ConstrainedTM")
	row := map[int][]string{}
	var order []int
	for _, r := range results {
		if _, seen := row[r.Threads]; !seen {
			order = append(order, r.Threads)
		}
		row[r.Threads] = append(row[r.Threads], fmt.Sprintf("%.2f", r.Relative))
	}
	for _, n := range order {
		fmt.Printf("%-8d %-10s %-10s %-12s %s\n", n, row[n][0], row[n][1], row[n][2], row[n][3])
	}
	fmt.Println()
	fmt.Println("Single-threaded, transactions beat the CAS dance (shorter path);")
	fmt.Println("under contention the lock-free code wins, and constrained")
	fmt.Println("transactions track the tuned-retry variant without any tuning —")
	fmt.Println("the paper's Section 6.1 conclusion.")
}
