// STM: run the same STAMP benchmark under the zEC12 HTM model and under the
// NOrec software-TM baseline — the overhead trade-off the paper's
// introduction describes ("[HTM] has lower overhead than software
// transactional memory").
//
//	go run ./examples/stm [benchmark]
package main

import (
	"fmt"
	"os"

	"htmcmp"
)

func main() {
	bench := "vacation-low"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	fmt.Printf("%s on the zEC12 model: HTM vs NOrec STM (sim scale)\n\n", bench)
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "threads", "HTM", "STM", "HTM abort%", "STM abort%")
	for _, threads := range []int{1, 2, 4, 8} {
		row := [2]htmcmp.RunResult{}
		for i, useSTM := range []bool{false, true} {
			res, err := htmcmp.Measure(htmcmp.RunSpec{
				Platform:  htmcmp.ZEC12,
				Benchmark: bench,
				Threads:   threads,
				Scale:     htmcmp.ScaleSim,
				Repeats:   1,
				UseSTM:    useSTM,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			row[i] = res
		}
		fmt.Printf("%-8d %-10.2f %-10.2f %-10.1f %-10.1f\n",
			threads, row[0].Speedup, row[1].Speedup, row[0].AbortRatio, row[1].AbortRatio)
	}
	fmt.Println("\nSTM pays per-access instrumentation (worse single-thread overhead)")
	fmt.Println("and serialises writers on NOrec's global sequence lock, but it has")
	fmt.Println("no capacity limits and no false sharing: value-based validation at")
	fmt.Println("word granularity.")
}
