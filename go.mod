module htmcmp

go 1.22
