package htmcmp

import (
	"strings"
	"sync"
	"testing"
)

// The facade tests double as API-stability checks: downstream users program
// against exactly these names.

func TestFacadeQuickstartFlow(t *testing.T) {
	eng := NewEngine(ZEC12, EngineConfig{Threads: 2, SpaceSize: 4 << 20, Virtual: true, CostScale: 0})
	lock := NewGlobalLock(eng)
	counter := eng.Thread(0).Alloc(64)
	for i := 0; i < 2; i++ {
		eng.Thread(i).Register()
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := eng.Thread(tid)
			th.BeginWork()
			defer th.ExitWork()
			x := NewExecutor(th, lock, DefaultPolicy(ZEC12))
			for j := 0; j < 200; j++ {
				x.Run(func(th *Thread) {
					th.Store64(counter, th.Load64(counter)+1)
				})
			}
		}(i)
	}
	wg.Wait()
	if got := eng.Thread(0).Load64(counter); got != 400 {
		t.Errorf("counter = %d, want 400", got)
	}
}

func TestFacadePlatforms(t *testing.T) {
	all := AllPlatforms()
	if len(all) != 4 {
		t.Fatalf("AllPlatforms returned %d entries", len(all))
	}
	if NewPlatform(POWER8).LoadCapacity != 8<<10 {
		t.Error("POWER8 capacity wrong through facade")
	}
}

func TestFacadeStampRoundtrip(t *testing.T) {
	names := StampNames()
	if len(names) != 10 {
		t.Fatalf("StampNames returned %d benchmarks", len(names))
	}
	b, err := NewStamp("ssca2", StampConfig{Scale: ScaleTest, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(IntelCore, EngineConfig{Threads: 1, SpaceSize: 16 << 20, Virtual: true, CostScale: 0})
	b.Setup(eng.Thread(0))
	b.Run([]Runner{SeqRunner{T: eng.Thread(0)}})
	if err := b.Validate(eng.Thread(0)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMeasure(t *testing.T) {
	res, err := Measure(RunSpec{
		Platform: ZEC12, Benchmark: "kmeans-low",
		Threads: 2, Scale: ScaleTest, Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup = %v", res.Speedup)
	}
}

func TestFacadeTable1(t *testing.T) {
	var sb strings.Builder
	tb := Table1()
	tb.Fprint(&sb)
	if !strings.Contains(sb.String(), "POWER8") {
		t.Error("Table 1 missing POWER8 column")
	}
}

func TestFacadeFootprint(t *testing.T) {
	fp, err := CollectFootprint("kmeans-low", IntelCore, FootprintOptions{Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Transactions == 0 {
		t.Error("no transactions traced")
	}
}

func TestFacadeSTM(t *testing.T) {
	eng := NewEngine(ZEC12, EngineConfig{Threads: 1, SpaceSize: 2 << 20, CostScale: 0})
	th := eng.Thread(0)
	a := th.Alloc(64)
	ok, _ := th.TrySTM(func() { th.Store64(a, 7) })
	if !ok || th.Load64(a) != 7 {
		t.Error("STM through facade broken")
	}
}
