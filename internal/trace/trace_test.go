package trace

import (
	"testing"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

func TestCollectKmeansFootprints(t *testing.T) {
	fp, err := Collect("kmeans-low", platform.ZEC12, Options{Scale: stamp.ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Transactions == 0 {
		t.Fatal("no transactions sampled")
	}
	// A kmeans transaction updates one cluster record: tiny footprints.
	if fp.P90StoreKB > 1 {
		t.Errorf("kmeans P90 store = %.2f KB, want < 1 KB", fp.P90StoreKB)
	}
	if fp.ExceedsLoadCap || fp.ExceedsStoreCap {
		t.Error("kmeans must fit every platform's capacity")
	}
}

func TestCollectLabyrinthExceedsPOWER8(t *testing.T) {
	fp, err := Collect("labyrinth", platform.POWER8, Options{Scale: stamp.ScaleSim})
	if err != nil {
		t.Fatal(err)
	}
	// The routing BFS reads most of the 24 KB grid: far beyond POWER8's
	// 8 KB TMCAM — the Figure 10 point that explains labyrinth on POWER8.
	if !fp.ExceedsLoadCap {
		t.Errorf("labyrinth P90 load %.1f KB does not exceed POWER8's 8 KB capacity", fp.P90LoadKB)
	}
}

func TestCollectYadaStoresPressZEC12(t *testing.T) {
	fp, err := Collect("yada", platform.ZEC12, Options{Scale: stamp.ScaleSim})
	if err != nil {
		t.Fatal(err)
	}
	// Cavity retriangulation writes tens of 256-byte elements: at or above
	// the 8 KB gathering store cache (Figure 11's yada story).
	if fp.MaxStoreKB < 6 {
		t.Errorf("yada max store footprint %.1f KB, want >= 6 (store-capacity pressure)", fp.MaxStoreKB)
	}
}

func TestCollectRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Collect("nope", platform.ZEC12, Options{}); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

// recordingCollector counts dispatched pairs without simulating anything.
type recordingCollector struct {
	calls []string
	opts  []Options
}

func (r *recordingCollector) Collect(bench string, k platform.Kind, opts Options) (Footprint, error) {
	r.calls = append(r.calls, bench+"/"+k.Short())
	r.opts = append(r.opts, opts)
	return Footprint{Benchmark: bench, Platform: k}, nil
}

func TestCollectAllDispatchesThroughExec(t *testing.T) {
	rec := &recordingCollector{}
	fps, err := CollectAll(Options{Exec: rec})
	if err != nil {
		t.Fatal(err)
	}
	want := len(stamp.Names()) * len(platform.Kinds())
	if len(rec.calls) != want || len(fps) != want {
		t.Fatalf("dispatched %d pairs, returned %d, want %d", len(rec.calls), len(fps), want)
	}
	// Options must reach the Collector normalised, so a sweep scheduler
	// derives canonical cache keys from them.
	for _, o := range rec.opts {
		if o.Seed == 0 || o.Scale == 0 {
			t.Fatalf("Collector saw unnormalised options %+v", o)
		}
	}
	if fps[0].Benchmark != stamp.Names()[0] {
		t.Errorf("results out of order: first is %s", fps[0].Benchmark)
	}
}
