package trace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"htmcmp/internal/obs"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

func TestCollectKmeansFootprints(t *testing.T) {
	fp, err := Collect("kmeans-low", platform.ZEC12, Options{Scale: stamp.ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Transactions == 0 {
		t.Fatal("no transactions sampled")
	}
	// A kmeans transaction updates one cluster record: tiny footprints.
	if fp.P90StoreKB > 1 {
		t.Errorf("kmeans P90 store = %.2f KB, want < 1 KB", fp.P90StoreKB)
	}
	if fp.ExceedsLoadCap || fp.ExceedsStoreCap {
		t.Error("kmeans must fit every platform's capacity")
	}
}

func TestCollectLabyrinthExceedsPOWER8(t *testing.T) {
	fp, err := Collect("labyrinth", platform.POWER8, Options{Scale: stamp.ScaleSim})
	if err != nil {
		t.Fatal(err)
	}
	// The routing BFS reads most of the 24 KB grid: far beyond POWER8's
	// 8 KB TMCAM — the Figure 10 point that explains labyrinth on POWER8.
	if !fp.ExceedsLoadCap {
		t.Errorf("labyrinth P90 load %.1f KB does not exceed POWER8's 8 KB capacity", fp.P90LoadKB)
	}
}

func TestCollectYadaStoresPressZEC12(t *testing.T) {
	fp, err := Collect("yada", platform.ZEC12, Options{Scale: stamp.ScaleSim})
	if err != nil {
		t.Fatal(err)
	}
	// Cavity retriangulation writes tens of 256-byte elements: at or above
	// the 8 KB gathering store cache (Figure 11's yada story).
	if fp.MaxStoreKB < 6 {
		t.Errorf("yada max store footprint %.1f KB, want >= 6 (store-capacity pressure)", fp.MaxStoreKB)
	}
}

func TestCollectRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Collect("nope", platform.ZEC12, Options{}); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

// recordingCollector counts dispatched pairs without simulating anything.
type recordingCollector struct {
	calls []string
	opts  []Options
}

func (r *recordingCollector) Collect(bench string, k platform.Kind, opts Options) (Footprint, error) {
	r.calls = append(r.calls, bench+"/"+k.Short())
	r.opts = append(r.opts, opts)
	return Footprint{Benchmark: bench, Platform: k}, nil
}

func TestCollectAllDispatchesThroughExec(t *testing.T) {
	rec := &recordingCollector{}
	fps, err := CollectAll(Options{Exec: rec})
	if err != nil {
		t.Fatal(err)
	}
	want := len(stamp.Names()) * len(platform.Kinds())
	if len(rec.calls) != want || len(fps) != want {
		t.Fatalf("dispatched %d pairs, returned %d, want %d", len(rec.calls), len(fps), want)
	}
	// Options must reach the Collector normalised, so a sweep scheduler
	// derives canonical cache keys from them. (Scale stays as given:
	// ScaleTest is the zero value, not an unset marker.)
	for _, o := range rec.opts {
		if o.Seed == 0 {
			t.Fatalf("Collector saw unnormalised options %+v", o)
		}
	}
	if fps[0].Benchmark != stamp.Names()[0] {
		t.Errorf("results out of order: first is %s", fps[0].Benchmark)
	}
}

// failingCollector errors on the nth dispatched pair.
type failingCollector struct {
	calls  int
	failAt int
}

func (f *failingCollector) Collect(bench string, k platform.Kind, opts Options) (Footprint, error) {
	f.calls++
	if f.calls == f.failAt {
		return Footprint{}, errors.New("cell exploded")
	}
	return Footprint{Benchmark: bench, Platform: k}, nil
}

func TestCollectAllPropagatesExecError(t *testing.T) {
	fc := &failingCollector{failAt: 3}
	fps, err := CollectAll(Options{Exec: fc})
	if err == nil || !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("err = %v, want the collector's error", err)
	}
	if fps != nil {
		t.Errorf("got partial results alongside an error: %d entries", len(fps))
	}
	if fc.calls != 3 {
		t.Errorf("dispatched %d pairs after failure, want dispatch to stop at 3", fc.calls)
	}
}

func TestCollectWritesEventTrace(t *testing.T) {
	dir := t.TempDir()
	fp, err := Collect("kmeans-low", platform.ZEC12, Options{Scale: stamp.ScaleTest, TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "kmeans-low-"+platform.ZEC12.Short()+".jsonl")
	n, err := obs.ValidateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every committed transaction contributes at least a begin and a commit.
	if n < 2*fp.Transactions {
		t.Errorf("trace holds %d events for %d transactions, want >= %d", n, fp.Transactions, 2*fp.Transactions)
	}
}

func TestCollectTraceDirErrorPropagates(t *testing.T) {
	// A file in place of the directory makes the JSONL write fail.
	dir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect("kmeans-low", platform.ZEC12, Options{Scale: stamp.ScaleTest, TraceDir: dir}); err == nil {
		t.Error("unwritable trace dir did not error")
	}
}
