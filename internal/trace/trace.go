// Package trace collects per-transaction footprint distributions — the
// reproduction of the paper's Figures 10 and 11, which plot each
// (benchmark, processor) pair's 90-percentile transactional load and store
// sizes against its abort ratio. The paper gathered addresses with a
// tracing tool on one machine and mapped them onto each processor's cache
// lines; we do the equivalent by running each benchmark single-threaded on
// each platform model with the engine's footprint sampler attached.
package trace

import (
	"path/filepath"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/stats"
	"htmcmp/internal/tm"
)

// Footprint is the per-(benchmark, platform) result: 90-percentile
// transactional load/store sizes in KB, plus capacity verdicts.
type Footprint struct {
	Benchmark string
	Platform  platform.Kind
	// P90LoadKB and P90StoreKB are the 90th-percentile committed
	// transaction footprints, in kilobytes of conflict-detection lines.
	P90LoadKB  float64
	P90StoreKB float64
	// MaxLoadKB/MaxStoreKB are the largest observed footprints.
	MaxLoadKB  float64
	MaxStoreKB float64
	// Transactions is the number of sampled (committed) transactions.
	Transactions int
	// ExceedsLoadCap/ExceedsStoreCap report whether the 90-percentile size
	// exceeds the platform's capacity (the capacity lines drawn in the
	// figures).
	ExceedsLoadCap  bool
	ExceedsStoreCap bool
}

// Collector abstracts how footprint collections are executed. CollectAll
// requests every (benchmark, platform) pair through it, which lets a sweep
// scheduler record the pairs as cells and later serve them from a
// concurrently precomputed, cached result set. A nil Collector collects
// inline via Collect.
type Collector interface {
	Collect(bench string, k platform.Kind, opts Options) (Footprint, error)
}

// Options configure a trace collection. The JSON encoding feeds sweep
// cache keys (footprint cells embed it), so runtime-only fields carry
// json:"-" and new serialized fields must be ,omitempty; Scale and Seed
// predate the lint and are frozen into existing keys.
//
//htmlint:cachekey frozen=Scale,Seed
type Options struct {
	Scale stamp.Scale
	Seed  uint64
	// Exec, when non-nil, executes collections (sweep scheduling /
	// caching); nil collects inline.
	Exec Collector `json:"-"`
	// TraceDir, when non-empty, attaches an event tracer to the run and
	// writes a per-pair JSONL event file <bench>-<platform>.jsonl into it.
	// Excluded from JSON so sweep cache keys are unaffected by tracing.
	TraceDir string `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Collect runs benchmark bench single-threaded on platform k with footprint
// sampling and returns its distribution. Transactions are executed through
// the normal runtime so fallbacks and retries behave as in measurement runs,
// but with one thread every transaction commits.
func Collect(bench string, k platform.Kind, opts Options) (Footprint, error) {
	opts = opts.withDefaults()
	var mu sync.Mutex
	var loads, stores []int
	var tracer *obs.Tracer
	if opts.TraceDir != "" {
		tracer = obs.NewTracer(1, obs.DefaultRingEvents)
	}
	e := htm.New(platform.New(k), htm.Config{
		Threads:   1,
		SpaceSize: 96 << 20,
		Seed:      opts.Seed,
		CostScale: 0,
		Virtual:   true,
		Tracer:    tracer,
		// The paper's trace tool measured transaction sizes without any
		// capacity limit, then compared them against each platform's
		// budget; we do the same.
		UnboundedCapacity: true,
		FootprintSampler: func(readLines, writeLines int) {
			mu.Lock()
			loads = append(loads, readLines)
			stores = append(stores, writeLines)
			mu.Unlock()
		},
	})
	b, err := stamp.New(bench, stamp.Config{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return Footprint{}, err
	}
	b.Setup(e.Thread(0))
	lock := tm.NewGlobalLock(e)
	x := tm.NewExecutor(e.Thread(0), lock, tm.DefaultPolicy(k))
	b.Run([]stamp.Runner{stamp.TMRunner{X: x}})
	if err := b.Validate(e.Thread(0)); err != nil {
		return Footprint{}, err
	}

	line := float64(e.LineSize())
	toKB := func(lines float64) float64 { return lines * line / 1024 }
	spec := e.Platform()
	fp := Footprint{
		Benchmark:    bench,
		Platform:     k,
		P90LoadKB:    toKB(stats.PercentileInts(loads, 90)),
		P90StoreKB:   toKB(stats.PercentileInts(stores, 90)),
		MaxLoadKB:    toKB(stats.PercentileInts(loads, 100)),
		MaxStoreKB:   toKB(stats.PercentileInts(stores, 100)),
		Transactions: len(loads),
	}
	fp.ExceedsLoadCap = fp.P90LoadKB > float64(spec.LoadCapacity)/1024
	fp.ExceedsStoreCap = fp.P90StoreKB > float64(spec.StoreCapacity)/1024
	if tracer != nil {
		path := filepath.Join(opts.TraceDir, bench+"-"+k.Short()+".jsonl")
		if err := obs.WriteJSONLFile(path, tracer.Events()); err != nil {
			return Footprint{}, err
		}
	}
	return fp, nil
}

// CollectAll gathers footprints for every benchmark × platform pair
// (Figures 10 and 11 use all pairs except bayes, which the paper drops from
// analysis; it is included here and callers may filter). Options are
// normalised before dispatch so that an Exec sees canonical cell inputs.
func CollectAll(opts Options) ([]Footprint, error) {
	opts = opts.withDefaults()
	var out []Footprint
	for _, bench := range stamp.Names() {
		for _, k := range platform.Kinds() {
			var fp Footprint
			var err error
			if opts.Exec != nil {
				fp, err = opts.Exec.Collect(bench, k, opts)
			} else {
				fp, err = Collect(bench, k, opts)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, fp)
		}
	}
	return out, nil
}
