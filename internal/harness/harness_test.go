package harness

import (
	"strings"
	"testing"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

func TestRunProducesSpeedupSSCA2(t *testing.T) {
	res, err := Run(RunSpec{
		Platform:  platform.ZEC12,
		Benchmark: "ssca2",
		Threads:   4,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.0 {
		t.Errorf("ssca2 on zEC12 with 4 threads: speedup %.2f, want > 1 (virtual-time parallelism broken?)", res.Speedup)
	}
	if res.Speedup > 4.5 {
		t.Errorf("speedup %.2f exceeds thread count", res.Speedup)
	}
	if res.TM.Commits() == 0 {
		t.Error("no commits recorded")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	spec := RunSpec{
		Platform:  platform.POWER8,
		Benchmark: "vacation-low",
		Threads:   4,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
		Seed:      7,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup != b.Speedup || a.ParSeconds != b.ParSeconds {
		t.Errorf("virtual-time runs not deterministic: %.6f/%.0f vs %.6f/%.0f",
			a.Speedup, a.ParSeconds, b.Speedup, b.ParSeconds)
	}
	if a.TM != b.TM {
		t.Errorf("stats not deterministic: %+v vs %+v", a.TM, b.TM)
	}
}

func TestSequentialBaselineHasNoAborts(t *testing.T) {
	spec := RunSpec{
		Platform:  platform.IntelCore,
		Benchmark: "kmeans-low",
		Threads:   1,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One thread can still abort (zEC12 cache-fetch etc.) but on Intel the
	// only stochastic source is the prefetcher, which never conflicts with
	// a single thread.
	if res.AbortRatio > 1 {
		t.Errorf("single-thread abort ratio %.2f%%, want ~0", res.AbortRatio)
	}
	if res.Speedup < 0.90 || res.Speedup > 1.10 {
		t.Errorf("1-thread transactional speedup %.3f, want ~1 (overheads mismodelled)", res.Speedup)
	}
}

func TestTable1Rendering(t *testing.T) {
	tb := Table1()
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Blue Gene/Q", "zEC12", "Intel Core", "POWER8",
		"256 bytes", "8 KB", "4 MB", "22 KB", "20 MB (1.25 MB per core)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	tb.CSV(&csv)
	if !strings.Contains(csv.String(), "Processor type,Blue Gene/Q") {
		t.Error("CSV header malformed")
	}
}

func TestTuneFindsAPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning in -short mode")
	}
	tr, err := Tune(RunSpec{
		Platform:  platform.POWER8,
		Benchmark: "ssca2",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result.Speedup <= 0 {
		t.Errorf("tuned speedup %.2f", tr.Result.Speedup)
	}
	if tr.Policy.TransientRetry == 0 {
		t.Error("tuner returned zero policy")
	}
}

func TestTuneBGQSearchesModes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning in -short mode")
	}
	tr, err := Tune(RunSpec{
		Platform:  platform.BlueGeneQ,
		Benchmark: "kmeans-high",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result.Speedup <= 0 {
		t.Errorf("tuned speedup %.2f", tr.Result.Speedup)
	}
}

func TestHLESpecRuns(t *testing.T) {
	res, err := Run(RunSpec{
		Platform:  platform.IntelCore,
		Benchmark: "ssca2",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
		UseHLE:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TM.Commits() == 0 {
		t.Error("HLE run recorded no commits")
	}
}

func TestMeasureAppliesBGQGenomeChunk(t *testing.T) {
	opts := Options{Scale: stamp.ScaleTest, Repeats: 1}.withDefaults()
	res, err := opts.measure(platform.BlueGeneQ, "genome", 2, stamp.Modified)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.ChunkStep1 != 9 {
		t.Errorf("BG/Q genome ChunkStep1 = %d, want the paper's tuned 9", res.Spec.ChunkStep1)
	}
}
