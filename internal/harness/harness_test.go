package harness

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

func TestRunProducesSpeedupSSCA2(t *testing.T) {
	res, err := Run(RunSpec{
		Platform:  platform.ZEC12,
		Benchmark: "ssca2",
		Threads:   4,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.0 {
		t.Errorf("ssca2 on zEC12 with 4 threads: speedup %.2f, want > 1 (virtual-time parallelism broken?)", res.Speedup)
	}
	if res.Speedup > 4.5 {
		t.Errorf("speedup %.2f exceeds thread count", res.Speedup)
	}
	if res.TM.Commits() == 0 {
		t.Error("no commits recorded")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	spec := RunSpec{
		Platform:  platform.POWER8,
		Benchmark: "vacation-low",
		Threads:   4,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
		Seed:      7,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup != b.Speedup || a.ParSeconds != b.ParSeconds {
		t.Errorf("virtual-time runs not deterministic: %.6f/%.0f vs %.6f/%.0f",
			a.Speedup, a.ParSeconds, b.Speedup, b.ParSeconds)
	}
	if a.TM != b.TM {
		t.Errorf("stats not deterministic: %+v vs %+v", a.TM, b.TM)
	}
}

func TestSequentialBaselineHasNoAborts(t *testing.T) {
	spec := RunSpec{
		Platform:  platform.IntelCore,
		Benchmark: "kmeans-low",
		Threads:   1,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One thread can still abort (zEC12 cache-fetch etc.) but on Intel the
	// only stochastic source is the prefetcher, which never conflicts with
	// a single thread.
	if res.AbortRatio > 1 {
		t.Errorf("single-thread abort ratio %.2f%%, want ~0", res.AbortRatio)
	}
	if res.Speedup < 0.90 || res.Speedup > 1.10 {
		t.Errorf("1-thread transactional speedup %.3f, want ~1 (overheads mismodelled)", res.Speedup)
	}
}

func TestTable1Rendering(t *testing.T) {
	tb := Table1()
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Blue Gene/Q", "zEC12", "Intel Core", "POWER8",
		"256 bytes", "8 KB", "4 MB", "22 KB", "20 MB (1.25 MB per core)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	tb.CSV(&csv)
	if !strings.Contains(csv.String(), "Processor type,Blue Gene/Q") {
		t.Error("CSV header malformed")
	}
}

func TestTuneFindsAPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning in -short mode")
	}
	tr, err := Tune(RunSpec{
		Platform:  platform.POWER8,
		Benchmark: "ssca2",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result.Speedup <= 0 {
		t.Errorf("tuned speedup %.2f", tr.Result.Speedup)
	}
	if tr.Policy.TransientRetry == 0 {
		t.Error("tuner returned zero policy")
	}
}

func TestTuneBGQSearchesModes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning in -short mode")
	}
	tr, err := Tune(RunSpec{
		Platform:  platform.BlueGeneQ,
		Benchmark: "kmeans-high",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result.Speedup <= 0 {
		t.Errorf("tuned speedup %.2f", tr.Result.Speedup)
	}
}

func TestHLESpecRuns(t *testing.T) {
	res, err := Run(RunSpec{
		Platform:  platform.IntelCore,
		Benchmark: "ssca2",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   1,
		UseHLE:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TM.Commits() == 0 {
		t.Error("HLE run recorded no commits")
	}
}

func TestMeasureAppliesBGQGenomeChunk(t *testing.T) {
	opts := Options{Scale: stamp.ScaleTest, Repeats: 1}.withDefaults()
	res, err := opts.measure(platform.BlueGeneQ, "genome", 2, stamp.Modified)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.ChunkStep1 != 9 {
		t.Errorf("BG/Q genome ChunkStep1 = %d, want the paper's tuned 9", res.Spec.ChunkStep1)
	}
}

func TestRunWritesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{
		Platform:  platform.ZEC12,
		Benchmark: "kmeans-low",
		Threads:   2,
		Scale:     stamp.ScaleTest,
		Repeats:   2,
		TraceDir:  dir,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for rep := 0; rep < 2; rep++ {
		n, err := obs.ValidateFile(filepath.Join(dir, spec.withDefaults().traceName(rep)))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	// Each begin and each commit is one event; aborts add more.
	if want := int(res.Engine.Begins + res.Engine.Commits); total < want {
		t.Errorf("trace files hold %d events, want >= %d (begins+commits)", total, want)
	}
}

// TestTraceNamesSeparateVariants pins the collision fix: specs that share a
// label (the variant is not part of it) must still write distinct files.
func TestTraceNamesSeparateVariants(t *testing.T) {
	a := RunSpec{Platform: platform.ZEC12, Benchmark: "genome", Threads: 4, Variant: stamp.Original}
	b := a
	b.Variant = stamp.Modified
	if a.Label() != b.Label() {
		t.Fatalf("labels differ (%q vs %q); test premise broken", a.Label(), b.Label())
	}
	if a.traceName(0) == b.traceName(0) {
		t.Errorf("variants map to the same trace file %q; concurrent cells would corrupt it", a.traceName(0))
	}
	if a.traceName(0) == a.traceName(1) {
		t.Error("repeats map to the same trace file")
	}
	if !strings.Contains(a.traceName(0), "genome-z12-t4") {
		t.Errorf("trace name %q lost the human-readable label", a.traceName(0))
	}
}

func TestRunSpecJSONOmitsTraceDir(t *testing.T) {
	b, err := json.Marshal(RunSpec{TraceDir: "/tmp/somewhere"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "somewhere") || strings.Contains(string(b), "TraceDir") {
		t.Errorf("RunSpec JSON leaks TraceDir (cache-key contamination): %s", b)
	}
}
