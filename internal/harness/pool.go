package harness

import (
	"sync"

	"htmcmp/internal/mem"
)

// Space pooling. Every measured run builds a fresh engine over a SpaceSize
// arena (64 MiB by default), and a sweep performs hundreds of runs — without
// reuse that is tens of GB of allocation churn for memory that is zeroed
// and thrown away each time. The pool recycles arenas through
// mem.Space.Reset, which restores the exact fresh-Space allocation
// behaviour (pinned by the mem reset-equivalence test and the sweep golden
// byte-identity), so pooled and unpooled runs produce identical tables.

var spacePools sync.Map // arena size in bytes -> *sync.Pool of *mem.Space

// acquireSpace returns a fresh-or-Reset arena of the given size.
func acquireSpace(size int) *mem.Space {
	if p, ok := spacePools.Load(size); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return v.(*mem.Space)
		}
	}
	return mem.NewSpace(size)
}

// releaseSpace resets sp and parks it for reuse. The caller must guarantee
// no engine or thread still references the Space (htm.Engine.Release
// severs those references). Runs that fail or panic simply skip the
// release and let the GC take the arena — reuse is an optimisation, never
// a correctness requirement.
func releaseSpace(sp *mem.Space) {
	sp.Reset()
	size := sp.Size()
	p, ok := spacePools.Load(size)
	if !ok {
		p, _ = spacePools.LoadOrStore(size, &sync.Pool{})
	}
	p.(*sync.Pool).Put(sp)
}
