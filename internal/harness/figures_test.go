package harness

import (
	"strings"
	"testing"

	"htmcmp/internal/stamp"
)

func TestFig2And3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	opts := Options{Scale: stamp.ScaleTest, Repeats: 1}
	fig2, fig3, err := Fig2And3(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 10 benchmarks + geomean row; 1 name column + 4 platforms × 2 cells.
	if len(fig2.Rows) != 11 {
		t.Errorf("fig2 rows = %d, want 11", len(fig2.Rows))
	}
	for _, row := range fig2.Rows {
		if len(row) != 9 {
			t.Errorf("fig2 row width = %d, want 9: %v", len(row), row)
		}
	}
	if fig2.Rows[10][0] != "geomean" {
		t.Errorf("last fig2 row = %q", fig2.Rows[10][0])
	}
	// fig3: one row per benchmark × platform.
	if len(fig3.Rows) != 40 {
		t.Errorf("fig3 rows = %d, want 40", len(fig3.Rows))
	}
}

func TestFig4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	tb, err := Fig4(Options{Scale: stamp.ScaleTest, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 6 modified benchmarks × 4 platforms + 4 geomean rows.
	if len(tb.Rows) != 6*4+4 {
		t.Errorf("fig4 rows = %d, want 28", len(tb.Rows))
	}
}

func TestFig7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	tb, err := Fig7(Options{Scale: stamp.ScaleTest, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 { // 10 benchmarks + geomean
		t.Errorf("fig7 rows = %d, want 11", len(tb.Rows))
	}
	var sb strings.Builder
	tb.CSV(&sb)
	if !strings.HasPrefix(sb.String(), "benchmark,RTM,HLE,HLE/RTM") {
		t.Errorf("fig7 CSV header: %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
}

func TestSTMComparisonStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	tb, err := STMComparison(Options{Scale: stamp.ScaleTest, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Errorf("stm rows = %d, want 11", len(tb.Rows))
	}
}

func TestBGQDefaultModes(t *testing.T) {
	long := map[string]bool{"labyrinth": true, "yada": true, "bayes": true}
	for _, bench := range stamp.Names() {
		got := bgqDefaultMode(bench)
		if long[bench] != (got.String() == "long-running") {
			t.Errorf("%s default BG/Q mode = %v", bench, got)
		}
	}
}
