package harness

import (
	"testing"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

func TestSTMRunSpecAllBenchmarks(t *testing.T) {
	for _, name := range stamp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunSpec{
				Platform: platform.ZEC12, Benchmark: name,
				Threads: 4, Scale: stamp.ScaleTest, Repeats: 1, UseSTM: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TM.Commits() == 0 {
				t.Error("no STM commits")
			}
			if res.TM.IrrevocableCommits != 0 {
				t.Error("STM must never fall back to the lock")
			}
		})
	}
}

func TestSTMOverheadExceedsHTM(t *testing.T) {
	// The paper's premise: HTM's single-thread overhead is much lower than
	// STM's.
	htmRes, err := Run(RunSpec{Platform: platform.ZEC12, Benchmark: "vacation-low",
		Threads: 1, Scale: stamp.ScaleTest, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	stmRes, err := Run(RunSpec{Platform: platform.ZEC12, Benchmark: "vacation-low",
		Threads: 1, Scale: stamp.ScaleTest, Repeats: 1, UseSTM: true})
	if err != nil {
		t.Fatal(err)
	}
	if stmRes.Speedup >= htmRes.Speedup {
		t.Errorf("STM 1-thread speedup %.2f not below HTM's %.2f", stmRes.Speedup, htmRes.Speedup)
	}
}

func TestCapacitySweepMonotone(t *testing.T) {
	small, err := Run(RunSpec{Platform: platform.POWER8, Benchmark: "yada",
		Threads: 4, Scale: stamp.ScaleTest, Repeats: 1, TMCAMEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(RunSpec{Platform: platform.POWER8, Benchmark: "yada",
		Threads: 4, Scale: stamp.ScaleTest, Repeats: 1, TMCAMEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if big.Breakdown[0] > small.Breakdown[0] {
		t.Errorf("capacity aborts grew with larger TMCAM: %.1f%% -> %.1f%%",
			small.Breakdown[0], big.Breakdown[0])
	}
}
