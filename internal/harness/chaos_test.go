package harness

import (
	"sync"
	"testing"

	"htmcmp/internal/chaos"
	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
	"htmcmp/internal/verify"
)

// spuriousInjector returns an injector whose only effect is interrupt-style
// aborts at commit boundaries, at a rate high enough to fire in a
// test-scale run.
func spuriousInjector(rate float64) *chaos.Injector {
	cfg := chaos.Config{Seed: 1234}
	cfg.OpRates[chaos.SpuriousAbort] = rate
	return chaos.New(cfg)
}

// TestChaosRunRecovers: a measured harness run with engine-level spurious
// aborts completes, validates, and actually saw injections — transient
// interrupt aborts are recovered by the runtime's ordinary retry policy.
func TestChaosRunRecovers(t *testing.T) {
	in := spuriousInjector(0.05)
	spec := RunSpec{
		Platform: platform.ZEC12, Benchmark: "ssca2", Threads: 2,
		Scale: stamp.ScaleTest, Variant: stamp.Modified, Seed: 42,
		Repeats: 1, Faults: in,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if in.Fired(chaos.SpuriousAbort) == 0 {
		t.Fatal("no spurious aborts fired; the run proved nothing")
	}
	if res.Engine.AbortsByReason[htm.ReasonInterrupt] == 0 {
		t.Fatal("engine stats show no interrupt aborts")
	}
	if res.Engine.Commits == 0 {
		t.Fatal("run committed nothing")
	}
}

// TestChaosVerifyDifferential is the satellite check: the differential
// {HTM, STM, lock} cross-verification must agree under injected spurious
// aborts, not only on clean executions.
func TestChaosVerifyDifferential(t *testing.T) {
	in := spuriousInjector(0.05)
	spec := RunSpec{
		Platform: platform.ZEC12, Benchmark: "ssca2", Threads: 2,
		Scale: stamp.ScaleTest, Variant: stamp.Modified, Seed: 42,
		Repeats: 1, Faults: in,
	}
	if err := Verify(spec); err != nil {
		t.Fatalf("differential verification diverged under chaos: %v", err)
	}
	if in.Fired(chaos.SpuriousAbort) == 0 {
		t.Fatal("verification ran without any injected aborts")
	}
}

// TestChaosWitnessReplaySerializable: a witnessed run under injected
// spurious aborts (plus a sprinkle of forced capacity overflows) still
// replays serializably — injected aborts unwind through the ordinary
// rollback path and never leak speculative state.
func TestChaosWitnessReplaySerializable(t *testing.T) {
	cfg := chaos.Config{Seed: 7}
	cfg.OpRates[chaos.SpuriousAbort] = 0.1
	cfg.OpRates[chaos.CapacityFault] = 0.001
	in := chaos.New(cfg)

	wit := htm.NewWitness()
	const threads = 4
	e := htm.New(platform.New(platform.POWER8), htm.Config{
		Threads: threads, SpaceSize: 4 << 20, Seed: 20260808, Virtual: true,
		CostScale: 1, Witness: wit, Faults: in,
	})
	lock := tm.NewGlobalLock(e)
	setup := e.Thread(0)
	line := uint64(e.LineSize())
	const lines = 8
	base := setup.Alloc(lines * e.LineSize())
	total := setup.Alloc(8)
	for i := 0; i < threads; i++ {
		e.Thread(i).Register()
	}
	e.ResetClocks()
	wit.Start()

	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			x := tm.NewExecutor(th, lock, tm.DefaultPolicy(platform.POWER8))
			th.BeginWork()
			defer th.ExitWork()
			rng := th.Rand()
			for n := 0; n < 150; n++ {
				x.Run(func(t *htm.Thread) {
					off := uint64(rng.Intn(lines))
					for l := uint64(0); l < 3; l++ {
						a := base + ((off+l)%lines)*line
						t.Store64(a, t.Load64(a)+1)
					}
					t.Store64(total, t.Load64(total)+1)
				})
			}
		}(i)
	}
	wg.Wait()

	if in.TotalFired() == 0 {
		t.Fatal("chaos never fired; the replay proves nothing")
	}
	if got := setup.Load64(total); got != threads*150 {
		t.Fatalf("lost updates under chaos: total = %d, want %d", got, threads*150)
	}
	if v := verify.Replay(wit.Log()); v != nil {
		t.Fatalf("chaos run does not replay serializably: %v", v)
	}
}
