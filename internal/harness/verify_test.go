package harness

import (
	"testing"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

// TestVerifyCells cross-checks representative experiment cells — the
// differential contract must hold for real STAMP workloads, not just
// generated programs (internal/verify covers those).
func TestVerifyCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmark executions")
	}
	cases := []struct {
		bench string
		kind  platform.Kind
	}{
		{"ssca2", platform.BlueGeneQ},
		{"kmeans-low", platform.IntelCore},
		{"genome", platform.POWER8},
		{"vacation-low", platform.ZEC12},
		// yada declares stamp.DynamicWork (cascade-spawned triangles make
		// Units interleaving-dependent); Verify must rely on Validate alone
		// rather than reject the legitimate unit-count divergence.
		{"yada", platform.BlueGeneQ},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bench+"/"+tc.kind.Short(), func(t *testing.T) {
			t.Parallel()
			err := Verify(RunSpec{
				Platform: tc.kind, Benchmark: tc.bench, Threads: 4,
				Scale: stamp.ScaleTest, Seed: 42,
			})
			if err != nil {
				t.Error(err)
			}
		})
	}
}

// TestVerifySTMAndHLEModes pins the mode selection: an STM cell verifies
// against the lock only, and an HLE cell adds the elision runner.
func TestVerifySTMAndHLEModes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmark executions")
	}
	stmSpec := RunSpec{
		Platform: platform.IntelCore, Benchmark: "ssca2", Threads: 2,
		Scale: stamp.ScaleTest, Seed: 42, UseSTM: true,
	}
	if err := Verify(stmSpec); err != nil {
		t.Errorf("STM cell: %v", err)
	}
	hleSpec := RunSpec{
		Platform: platform.IntelCore, Benchmark: "ssca2", Threads: 2,
		Scale: stamp.ScaleTest, Seed: 42, UseHLE: true,
	}
	if err := Verify(hleSpec); err != nil {
		t.Errorf("HLE cell: %v", err)
	}
}
