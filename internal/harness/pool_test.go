package harness

import (
	"reflect"
	"testing"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

// TestPooledSpaceDeterminism pins the tentpole's correctness contract: runs
// executed on recycled (Reset) Spaces must produce results identical to
// runs on fresh Spaces. The first Run here allocates fresh arenas and
// parks them in the pool; the second Run is served from the pool, so any
// Reset leakage (stale bytes, free lists, labels) would diverge the
// virtual-time results.
func TestPooledSpaceDeterminism(t *testing.T) {
	spec := RunSpec{
		Platform:  platform.IntelCore,
		Benchmark: "kmeans-low",
		Threads:   4,
		Scale:     stamp.ScaleTest,
		Repeats:   2,
	}
	first, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("pooled rerun diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestReleaseSpaceResets guards the pool contract that released arenas come
// back in fresh state.
func TestReleaseSpaceResets(t *testing.T) {
	sp := acquireSpace(1 << 16)
	a := sp.Alloc(64)
	sp.Store64(a, 0xfeed)
	releaseSpace(sp)
	got := acquireSpace(1 << 16)
	// The pool may or may not hand back the same arena (sync.Pool), but
	// whatever it returns must behave freshly.
	if b := got.Alloc(64); got.Load64(b) != 0 {
		t.Error("pooled space returned non-zero memory")
	}
	if got.Used() != 64 {
		t.Errorf("pooled space Used = %d, want 64", got.Used())
	}
	releaseSpace(got)
}
