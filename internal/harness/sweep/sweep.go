// Package sweep schedules experiment sweeps. Every figure of the paper is a
// sweep over benchmark × platform × thread-count cells, and each cell is an
// independent, deterministic simulation — so instead of walking them one at
// a time, the harness decomposes an experiment into a flat list of Cell
// jobs (a planning pass records each requested point), a bounded worker
// pool executes the cells concurrently with per-cell panic recovery and
// timeouts, and the experiment then renders its tables from the precomputed
// results. Because every cell is seeded from its own spec and never shares
// state with its neighbours, the parallel results are bit-identical to the
// serial path.
//
// A content-addressed on-disk cache (internal/cache) sits underneath the
// scheduler: a rerun — or a sweep interrupted halfway — resumes by loading
// completed cells instead of recomputing them.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"htmcmp/internal/cache"
	"htmcmp/internal/chaos"
	"htmcmp/internal/harness"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/trace"
)

// ResultsVersion versions the semantics of cached results. Bump it whenever
// the simulation, the benchmarks, or the Result encoding change in a way
// that makes previously cached cells stale; it is folded into every cache
// key, so old records simply stop matching.
const ResultsVersion = "htmcmp-results-v1"

// Kind discriminates the unit of work a Cell carries.
type Kind int

const (
	// Measure is one harness.Run of the cell's RunSpec.
	Measure Kind = iota
	// TuneMeasure is a harness.Tune search over the cell's RunSpec
	// followed by a re-measured Run of the winner.
	TuneMeasure
	// Footprint is one trace.Collect footprint pass.
	Footprint
)

func (k Kind) String() string {
	switch k {
	case Measure:
		return "measure"
	case TuneMeasure:
		return "tune"
	case Footprint:
		return "footprint"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Cell is one independent job of a sweep: a (benchmark, platform, threads,
// variant, seed) measurement or a footprint collection. Its JSON encoding,
// together with ResultsVersion, is its cache identity.
type Cell struct {
	Kind Kind `json:"kind"`
	// Spec is the measured configuration (Measure and TuneMeasure).
	Spec harness.RunSpec `json:"spec,omitempty"`
	// Bench/Platform/Scale/Seed identify a Footprint collection.
	Bench    string        `json:"bench,omitempty"`
	Platform platform.Kind `json:"platform,omitempty"`
	Scale    stamp.Scale   `json:"scale,omitempty"`
	Seed     uint64        `json:"seed,omitempty"`
	// TraceDir is injected by the scheduler after the cache key is
	// computed; excluded from JSON so it never affects cache identity.
	TraceDir string `json:"-"`
}

// Key returns the cell's content address under ResultsVersion.
func (c Cell) Key() (string, error) {
	return cache.Key(ResultsVersion, c)
}

// Label is a short identifier for progress and error reporting.
func (c Cell) Label() string {
	if c.Kind == Footprint {
		return fmt.Sprintf("trace/%s/%s", c.Bench, c.Platform.Short())
	}
	l := c.Spec.Label()
	if c.Kind == TuneMeasure {
		l += "/tuned"
	}
	return l
}

// record is the on-disk cache payload: the cell (for human debugging of the
// cache directory) plus its result. Seconds is the wall-clock compute time
// of the cell when it was produced; resumed sweeps feed it to the duration
// estimator so cache-heavy reruns still schedule and predict accurately.
type record struct {
	Cell      Cell             `json:"cell"`
	Result    *harness.Result  `json:"result,omitempty"`
	Footprint *trace.Footprint `json:"footprint,omitempty"`
	Seconds   float64          `json:"seconds,omitempty"`
}

// outcome is the in-memory result of a cell.
type outcome struct {
	res harness.Result
	fp  trace.Footprint
	err error
}

// Config configures a Scheduler. It is on the cachekey-checked list
// because its handle fields ride next to the cell grid that IS keyed:
// excluding them via json:"-" keeps any future serialization of sweep
// state (resume manifests, torn-record repros) from coupling identity to
// runtime attachments. The frozen fields predate the lint.
//
//htmlint:cachekey frozen=Jobs,Resume,Timeout,TraceDir,Retries,RetryBackoff,RetryBackoffCap,Seed
type Config struct {
	// Jobs is the worker-pool size; <= 0 means GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, persists results between runs.
	Cache *cache.Store `json:"-"`
	// Resume reads previously cached results (a fresh or interrupted
	// sweep skips completed cells). When false, every cell is recomputed
	// and, if Cache is set, its record overwritten.
	Resume bool
	// Timeout bounds each cell's wall-clock time; 0 means unbounded. A
	// timed-out cell fails with an error (its goroutine is abandoned —
	// the simulator has no preemption points).
	Timeout time.Duration
	// Progress, when non-nil, receives live progress/ETA lines.
	Progress io.Writer `json:"-"`
	// TraceDir, when non-empty, writes per-cell JSONL event files for
	// every cell computed in this process. Cache hits execute nothing and
	// produce no files; the directory is injected into cells only after
	// their cache keys are computed, so tracing never perturbs identity.
	TraceDir string
	// Metrics receives live counters (cells_done, cells_cached,
	// cells_computed, cells_failed, cells_retried, cells_quarantined,
	// cells_recovered, cache_evictions, tx_begins, tx_commits, tx_aborts)
	// as cells complete; the progress line reads them. New allocates one
	// when nil.
	Metrics *obs.Metrics `json:"-"`
	// Telemetry, when set, is threaded into every computed cell's RunSpec
	// (live engine counters + flight-recorder event segments), mirrored
	// into registry counters (sweep_cells_*_total, sweep_steals_total) and
	// the sweep_eta_seconds gauge, and kept current in the worker table
	// the dashboard renders. Injected after cache keys are computed, so —
	// like TraceDir — it never perturbs cache identity.
	Telemetry *obs.Telemetry `json:"-"`
	// Retries is the per-cell bounded retry budget (heal.go): a failed or
	// chaos-afflicted attempt is re-executed up to Retries times with
	// jittered exponential backoff before the cell is quarantined for one
	// final serial retry. 0 disables self-healing entirely — a failed cell
	// is final, the pre-chaos behaviour the failure-path tests pin.
	Retries int
	// RetryBackoff is the base of the retry backoff (default 5ms);
	// RetryBackoffCap caps the exponential doubling (default 250ms). The
	// jitter is drawn from a pure hash of (Seed, cell key, attempt), so a
	// sweep's retry schedule is deterministic for a given seed.
	RetryBackoff    time.Duration
	RetryBackoffCap time.Duration
	// Seed drives the deterministic retry jitter (and fault-injection
	// affliction decisions when Faults is set). It never affects results —
	// only scheduling.
	Seed uint64
	// Faults, when non-nil, injects deterministic faults into the sweep
	// (internal/chaos): engine-level faults ride into afflicted cells'
	// RunSpecs (injected after Key(), like TraceDir, so cache identity is
	// unchanged), and harness-level faults panic cells, stall them past
	// Timeout, tear their cache records, or crash workers. Every injected
	// fault is recoverable: afflicted attempts must complete but their
	// fault-perturbed measurements are discarded and recomputed clean, so
	// rendered tables are byte-identical to a fault-free sweep.
	Faults *chaos.Injector `json:"-"`
}

// Summary reports what a Prewarm pass did.
type Summary struct {
	Cells    int // unique cells scheduled
	Computed int // executed in this pass
	Cached   int // satisfied from the on-disk cache
	Failed   int // ended in error after all healing (panics, timeouts)
	Steals   int // cells migrated between workers by the work-stealing pool
	// Self-healing outcomes (heal.go). Retried counts re-executed attempts
	// (including worker-crash requeues); Quarantined counts cells that
	// exhausted the pool's retry budget and were demoted to the serial
	// single-retry pass; Recovered counts cells that ultimately succeeded
	// after a retry, a quarantine pass, a worker crash, or a corrupt-cache
	// eviction; Evicted counts cache records evicted as corrupt or stale.
	// A quarantined cell is counted either Recovered or Failed, never both.
	Retried     int
	Quarantined int
	Recovered   int
	Evicted     int
	Elapsed     time.Duration
}

// HitRatio is the fraction of cells served from cache, in percent.
func (s Summary) HitRatio() float64 {
	if s.Cells == 0 {
		return 0
	}
	return 100 * float64(s.Cached) / float64(s.Cells)
}

func (s Summary) String() string {
	out := fmt.Sprintf("cells=%d computed=%d cached=%d failed=%d hit=%.1f%% elapsed=%s",
		s.Cells, s.Computed, s.Cached, s.Failed, s.HitRatio(), s.Elapsed.Round(time.Millisecond))
	if s.Steals > 0 {
		out += fmt.Sprintf(" steals=%d", s.Steals)
	}
	if s.Retried > 0 {
		out += fmt.Sprintf(" retried=%d", s.Retried)
	}
	if s.Quarantined > 0 {
		out += fmt.Sprintf(" quarantined=%d", s.Quarantined)
	}
	if s.Recovered > 0 {
		out += fmt.Sprintf(" recovered=%d", s.Recovered)
	}
	if s.Evicted > 0 {
		out += fmt.Sprintf(" evicted=%d", s.Evicted)
	}
	return out
}

// Scheduler executes cells through a bounded worker pool and memoises their
// outcomes. It implements harness.Exec and trace.Collector, so experiments
// rendered with it transparently read the precomputed results; a cell that
// was never prewarmed (plan drift) is computed inline on first request, so
// rendering is always correct, just slower.
type Scheduler struct {
	cfg Config
	est *estimator
	tc  *telemetryCounters // nil without cfg.Telemetry

	mu       sync.Mutex
	memo     map[string]outcome
	lastLine time.Time

	// progress counters (guarded by mu)
	total    int
	done     int
	computed int
	cached   int
	failed   int
	workers  int
	start    time.Time

	// self-healing state (heal.go; guarded by mu)
	retried     int
	quarantined int
	recovered   int
	evicted     int
	quarantine  []quarCell      // cells awaiting the serial retry pass
	disrupted   map[string]bool // keys recovering from eviction/worker crash
	crashed     map[string]bool // keys that already took a worker down once
}

// telemetryCounters are the scheduler's pre-resolved registry handles
// (registered once in New; bumped as cells complete).
type telemetryCounters struct {
	done        *obs.Counter
	cached      *obs.Counter
	computed    *obs.Counter
	failed      *obs.Counter
	steals      *obs.Counter
	retries     *obs.Counter
	quarantined *obs.Counter
	recovered   *obs.Counter
	evictions   *obs.Counter
	eta         *obs.Gauge
}

// New builds a Scheduler from cfg.
func New(cfg Config) *Scheduler {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	s := &Scheduler{
		cfg: cfg, memo: map[string]outcome{}, est: newEstimator(),
		disrupted: map[string]bool{}, crashed: map[string]bool{},
	}
	if tel := cfg.Telemetry; tel != nil {
		reg := tel.Registry
		s.tc = &telemetryCounters{
			done:        reg.Counter("sweep_cells_done_total"),
			cached:      reg.Counter("sweep_cells_cached_total"),
			computed:    reg.Counter("sweep_cells_computed_total"),
			failed:      reg.Counter("sweep_cells_failed_total"),
			steals:      reg.Counter("sweep_steals_total"),
			retries:     reg.Counter("sweep_cell_retries_total"),
			quarantined: reg.Counter("sweep_cells_quarantined"),
			recovered:   reg.Counter("sweep_cells_recovered_total"),
			evictions:   reg.Counter("sweep_cache_evictions_total"),
			eta:         reg.Gauge("sweep_eta_seconds"),
		}
	}
	if cfg.Cache != nil {
		// Evictions — Get detecting a torn record, or the identity check in
		// obtain catching a stale one — are recoveries: log them, count them,
		// and mark the key so its recompute is credited as Recovered.
		prev := cfg.Cache.OnEvict
		cfg.Cache.OnEvict = func(key string, reason error) {
			s.noteEviction(key, reason)
			if prev != nil {
				prev(key, reason)
			}
		}
	}
	return s
}

// Metrics returns the scheduler's live counter set.
func (s *Scheduler) Metrics() *obs.Metrics { return s.cfg.Metrics }

// cellRunner is the signature of the runCellHook test seam.
type cellRunner func(Cell) (harness.Result, trace.Footprint, error)

// runCellHook, when set, replaces cell execution (test seam for panic and
// timeout injection). Accessed atomically: a timed-out cell's abandoned
// goroutine may still read it after the test that installed it has restored
// the previous value.
var runCellHook atomic.Pointer[cellRunner]

// runCell executes one cell inline.
func runCell(c Cell) outcome {
	if h := runCellHook.Load(); h != nil {
		r, fp, err := (*h)(c)
		return outcome{res: r, fp: fp, err: err}
	}
	switch c.Kind {
	case Measure:
		r, err := harness.Run(c.Spec)
		return outcome{res: r, err: err}
	case TuneMeasure:
		tr, err := harness.Tune(c.Spec)
		return outcome{res: tr.Result, err: err}
	case Footprint:
		fp, err := trace.Collect(c.Bench, c.Platform,
			trace.Options{Scale: c.Scale, Seed: c.Seed, TraceDir: c.TraceDir})
		return outcome{fp: fp, err: err}
	}
	return outcome{err: fmt.Errorf("sweep: unknown cell kind %d", int(c.Kind))}
}

// execCell runs a cell with panic recovery and the configured timeout. The
// affliction (heal.go) carries this attempt's injected harness-level faults;
// the zero value runs the cell untouched.
func (s *Scheduler) execCell(c Cell, af affliction) outcome {
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("sweep: cell %s panicked: %v\n%s", c.Label(), r, debug.Stack())}
			}
		}()
		if af.stall > 0 {
			// An injected stall models a hung cell: sleep past the deadline
			// and never produce a result, so the timeout path fires. The cell
			// itself is not run — a genuinely hung cell computes nothing.
			time.Sleep(af.stall)
			ch <- outcome{err: fmt.Errorf("sweep: cell %s: chaos: injected stall", c.Label())}
			return
		}
		if af.panics {
			panic("chaos: injected cell panic")
		}
		ch <- runCell(c)
	}()
	if s.cfg.Timeout <= 0 {
		return <-ch
	}
	select {
	case o := <-ch:
		return o
	case <-time.After(s.cfg.Timeout):
		return outcome{err: fmt.Errorf("sweep: cell %s timed out after %v", c.Label(), s.cfg.Timeout)}
	}
}

// obtain returns the cell's outcome: memo hit, cache hit, or computed now.
// fromPool marks calls from the Prewarm workers (they update the progress
// counters); render-pass misses go through with fromPool=false.
func (s *Scheduler) obtain(c Cell, fromPool bool) outcome {
	key, err := c.Key()
	if err != nil {
		return outcome{err: fmt.Errorf("sweep: cell %s: %w", c.Label(), err)}
	}

	s.mu.Lock()
	if o, ok := s.memo[key]; ok {
		s.mu.Unlock()
		return o
	}
	s.mu.Unlock()

	cached := false
	var o outcome
	if s.cfg.Cache != nil && s.cfg.Resume {
		var rec record
		ok, err := s.cfg.Cache.Get(key, &rec)
		if err == nil && ok {
			// Identity check: the record parsed, but does its content still
			// hash to the key it was stored under? A stale record — a writer
			// that keyed one cell and stored another, or a record rewritten
			// in place — fails here and is evicted. (Torn and garbage records
			// never reach this point; Get evicts those itself.) Evictions are
			// recoveries: the cell is recomputed, not failed.
			if k2, kerr := rec.Cell.Key(); kerr != nil || k2 != key {
				s.cfg.Cache.Evict(key, fmt.Errorf("record content does not match its key (stale or corrupt)"))
			} else {
				cached = true
				switch {
				case c.Kind == Footprint && rec.Footprint != nil:
					o = outcome{fp: *rec.Footprint}
				case c.Kind != Footprint && rec.Result != nil:
					o = outcome{res: *rec.Result}
				default:
					cached = false // wrong shape: treat as corrupt → recompute
				}
				if cached {
					// The record remembers how long this cell took to compute;
					// train the estimator so LPT ordering and the ETA stay
					// accurate on cache-heavy resumes.
					s.est.observe(c, rec.Seconds)
				}
			}
		}
	}
	recovered, quarantined := false, false
	if !cached {
		if s.cfg.TraceDir != "" {
			c.TraceDir = s.cfg.TraceDir
			c.Spec.TraceDir = s.cfg.TraceDir
		}
		// Telemetry rides along the same way TraceDir does: injected after
		// Key() so live observability never changes what a cell IS.
		c.Spec.Telemetry = s.cfg.Telemetry
		var hi healInfo
		o, hi = s.computeHealed(c, key)
		if o.err == nil {
			s.est.observe(c, hi.seconds)
			// The cell landed after a disruption — a retried attempt, a
			// worker-crash requeue, or a corrupt-cache eviction — so the
			// sweep healed it.
			recovered = hi.recovered || s.takeDisrupted(key)
			if s.cfg.Cache != nil {
				rec := record{Cell: c, Seconds: hi.seconds}
				if c.Kind == Footprint {
					fp := o.fp
					rec.Footprint = &fp
				} else {
					res := o.res
					rec.Result = &res
				}
				// A failed Put (e.g. unencodable value) only costs a
				// recompute next run; it must not fail the sweep.
				if err := s.cfg.Cache.Put(key, rec); err != nil {
					s.progressf("sweep: warning: %v", err)
				} else {
					s.afflictRecord(c, key)
				}
			}
		} else if hi.quarantine && fromPool {
			// Retry budget exhausted: demote to the serial single-retry pass
			// that runs after the pool drains, instead of failing outright.
			quarantined = true
		}
	}

	m := s.cfg.Metrics
	m.Add("cells_done", 1)
	if cached {
		m.Add("cells_cached", 1)
	} else {
		m.Add("cells_computed", 1)
	}
	if recovered {
		m.Add("cells_recovered", 1)
	}
	if quarantined {
		m.Add("cells_quarantined", 1)
	}
	if tc := s.tc; tc != nil {
		tc.done.Inc(0)
		if cached {
			tc.cached.Inc(0)
		} else {
			tc.computed.Inc(0)
		}
		if o.err != nil && !quarantined {
			tc.failed.Inc(0)
		}
		if recovered {
			tc.recovered.Inc(0)
		}
		if quarantined {
			tc.quarantined.Inc(0)
		}
	}
	if o.err != nil {
		if !quarantined {
			m.Add("cells_failed", 1)
		}
	} else if c.Kind != Footprint {
		m.Add("tx_begins", o.res.Engine.Begins)
		m.Add("tx_commits", o.res.Engine.Commits)
		m.Add("tx_aborts", o.res.Engine.Aborts)
	}

	if fromPool {
		s.est.cellDone(c)
	}
	s.mu.Lock()
	s.memo[key] = o
	if fromPool {
		s.done++
		if cached {
			s.cached++
		} else {
			s.computed++
		}
		switch {
		case quarantined:
			s.quarantined++
			s.quarantine = append(s.quarantine, quarCell{c: c, key: key})
		case o.err != nil:
			s.failed++
		}
		if recovered {
			s.recovered++
		}
		if s.tc != nil {
			if eta, ok := s.etaSecondsLocked(); ok {
				s.tc.eta.Set(int64(eta))
			} else {
				s.tc.eta.Set(0)
			}
		}
		s.emitProgressLocked(c, cached)
	}
	s.mu.Unlock()
	return o
}

// etaSecondsLocked estimates the remaining wall-clock seconds of the current
// Prewarm pass (callers hold mu); ok is false until the estimator has a real
// duration to calibrate against.
func (s *Scheduler) etaSecondsLocked() (float64, bool) {
	if s.done == 0 || s.done >= s.total || !s.est.calibrated() {
		return 0, false
	}
	remaining := s.est.remainingSeconds()
	if workers := s.workers; workers > 1 {
		remaining /= float64(workers)
	}
	// Remaining cells that will be cache hits are discounted by the pass's
	// observed compute ratio.
	remaining *= float64(s.computed) / float64(s.done)
	return remaining, true
}

// emitProgressLocked prints a live progress/ETA line; callers hold mu. Lines
// are throttled to one per 250ms, except the final one.
func (s *Scheduler) emitProgressLocked(c Cell, cached bool) {
	if s.cfg.Progress == nil {
		return
	}
	now := time.Now()
	if s.done < s.total && now.Sub(s.lastLine) < 250*time.Millisecond {
		return
	}
	s.lastLine = now
	line := fmt.Sprintf("sweep %d/%d (%.0f%%)", s.done, s.total,
		100*float64(s.done)/float64(s.total))
	if s.cached > 0 {
		line += fmt.Sprintf(" cached=%d", s.cached)
	}
	if s.failed > 0 {
		line += fmt.Sprintf(" failed=%d", s.failed)
	}
	if s.retried > 0 {
		line += fmt.Sprintf(" retried=%d", s.retried)
	}
	if s.quarantined > 0 {
		line += fmt.Sprintf(" quarantined=%d", s.quarantined)
	}
	if s.recovered > 0 {
		line += fmt.Sprintf(" recovered=%d", s.recovered)
	}
	// ETA = per-class EWMA durations weighted by the remaining planned
	// work, divided across the worker pool. The old global-mean estimate
	// was wildly optimistic early on: cheap ssca2 cells finish first and
	// dragged the mean far below what the pending labyrinth cells cost.
	// Until a real duration exists (estimates are in prior units) no ETA is
	// shown.
	if remaining, ok := s.etaSecondsLocked(); ok {
		eta := time.Duration(remaining * float64(time.Second))
		line += fmt.Sprintf(" eta=%s", eta.Round(time.Second))
	}
	// The live counters also feed the line, so a watcher sees simulated
	// transaction volume without waiting for the summary.
	if aborts := s.cfg.Metrics.Get("tx_aborts"); aborts > 0 {
		line += fmt.Sprintf(" aborts=%d", aborts)
	}
	line += " last=" + c.Label()
	if cached {
		line += " (cached)"
	}
	fmt.Fprintln(s.cfg.Progress, line)
}

func (s *Scheduler) progressf(format string, args ...any) {
	if s.cfg.Progress != nil {
		fmt.Fprintf(s.cfg.Progress, format+"\n", args...)
	}
}

// Prewarm executes cells through the worker pool, deduplicating by cache
// key, and memoises every outcome for the render pass. Failed cells are
// recorded (the render pass surfaces their errors) but do not stop the
// sweep, so an interrupted or partially failing run still banks every
// completed cell in the cache.
func (s *Scheduler) Prewarm(cells []Cell) Summary {
	unique := make([]Cell, 0, len(cells))
	seen := map[string]bool{}
	for _, c := range cells {
		key, err := c.Key()
		if err != nil {
			// Keyless cells cannot be deduplicated or cached; keep
			// them so the render pass reports the error.
			unique = append(unique, c)
			continue
		}
		if !seen[key] {
			seen[key] = true
			unique = append(unique, c)
		}
	}

	jobs := s.cfg.Jobs
	if jobs > len(unique) {
		jobs = len(unique)
	}
	if jobs < 1 {
		jobs = 1
	}

	// Seed the duration estimator with any persisted history, register this
	// pass's cells for remaining-work ETA accounting, and assign the cells
	// to per-worker deques longest-expected-first (steal.go).
	s.est.load(s.cfg.Cache)
	s.est.beginPlan(unique)
	ests := make([]float64, len(unique))
	for i, c := range unique {
		ests[i] = s.est.estimate(c)
	}
	deques := lptAssign(unique, ests, jobs)

	s.mu.Lock()
	s.total = len(unique)
	s.done, s.computed, s.cached, s.failed = 0, 0, 0, 0
	s.retried, s.quarantined, s.recovered, s.evicted = 0, 0, 0, 0
	s.quarantine = nil
	s.disrupted = map[string]bool{}
	s.crashed = map[string]bool{}
	s.workers = jobs
	s.start = time.Now()
	s.mu.Unlock()

	// The live worker table (dashboard + stalled-cell detection) follows
	// this pass's pool; earlier tables from previous passes are replaced.
	var workers *obs.WorkerTable
	if tel := s.cfg.Telemetry; tel != nil {
		workers = obs.NewWorkerTable(jobs)
		tel.SetWorkers(workers)
	}

	var steals atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Supervisor loop: a chaos-crashed worker (heal.go) requeues its
			// cell before dying and is restarted here, so an injected crash
			// never strands work or shrinks the pool.
			for s.runWorker(deques, self, workers, &steals) {
				s.progressf("sweep: worker %d crashed (injected); restarting", self)
			}
		}(i)
	}
	wg.Wait()
	s.retryQuarantined()
	s.est.save(s.cfg.Cache)

	s.mu.Lock()
	sum := Summary{
		Cells:       s.total,
		Computed:    s.computed,
		Cached:      s.cached,
		Failed:      s.failed,
		Steals:      int(steals.Load()),
		Retried:     s.retried,
		Quarantined: s.quarantined,
		Recovered:   s.recovered,
		Evicted:     s.evicted,
		Elapsed:     time.Since(s.start),
	}
	s.mu.Unlock()
	return sum
}

// runWorker drains cells until every deque is empty. It reports true when
// the worker died to an injected crash (the supervisor restarts it) and
// false when the pass is over.
func (s *Scheduler) runWorker(deques []*deque, self int, workers *obs.WorkerTable, steals *atomic.Int64) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(workerCrash); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	for {
		c, ok := deques[self].popFront()
		if !ok {
			c, ok = steal(deques, self)
			if !ok {
				return false
			}
			steals.Add(1)
			if workers != nil {
				workers.NoteSteal(self)
				s.tc.steals.Inc(self)
			}
		}
		// The crash point sits before Begin so the worker table never shows
		// a Begin without a matching End.
		s.maybeCrashWorker(deques, self, c)
		if workers != nil {
			workers.Begin(self, c.Label())
		}
		s.obtain(c, true)
		if workers != nil {
			workers.End(self)
		}
	}
}

// Measure implements harness.Exec.
func (s *Scheduler) Measure(spec harness.RunSpec, tune bool) (harness.Result, error) {
	kind := Measure
	if tune {
		kind = TuneMeasure
	}
	o := s.obtain(Cell{Kind: kind, Spec: spec}, false)
	return o.res, o.err
}

// Collect implements trace.Collector.
func (s *Scheduler) Collect(bench string, k platform.Kind, opts trace.Options) (trace.Footprint, error) {
	o := s.obtain(Cell{Kind: Footprint, Bench: bench, Platform: k, Scale: opts.Scale, Seed: opts.Seed}, false)
	return o.fp, o.err
}
