package sweep

import (
	"math"
	"testing"
	"time"

	"htmcmp/internal/cache"
	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/trace"
)

func measureCell(bench string, threads int) Cell {
	return Cell{Kind: Measure, Spec: harness.RunSpec{
		Platform:  platform.IntelCore,
		Benchmark: bench,
		Threads:   threads,
		Scale:     stamp.ScaleSim,
		Seed:      42,
		Repeats:   1,
	}}
}

func TestEWMAWeightsRecentObservations(t *testing.T) {
	var w ewma
	w.observe(10)
	for i := 0; i < 20; i++ {
		w.observe(1)
	}
	if w.v > 1.1 {
		t.Errorf("EWMA after a run of 1s = %.3f, want near 1 (stale first sample dominates)", w.v)
	}
	var one ewma
	one.observe(7)
	if one.v != 7 {
		t.Errorf("first observation = %.3f, want exactly 7", one.v)
	}
}

func TestEstimatorClassBeatsGlobal(t *testing.T) {
	e := newEstimator()
	lab := measureCell("labyrinth", 4)
	ssca := measureCell("ssca2", 4)
	e.observe(lab, 8.0)
	e.observe(ssca, 0.05)
	if got := e.estimate(lab); math.Abs(got-8.0) > 1e-9 {
		t.Errorf("labyrinth estimate = %.3f, want its own class EWMA 8.0", got)
	}
	if got := e.estimate(ssca); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("ssca2 estimate = %.3f, want its own class EWMA 0.05", got)
	}
}

func TestEstimatorPriorFallback(t *testing.T) {
	e := newEstimator()
	lab := measureCell("labyrinth", 4)
	ssca := measureCell("ssca2", 4)
	// Cold: pure prior units, but the heavy benchmark must rank first.
	if e.estimate(lab) <= e.estimate(ssca) {
		t.Error("cold-start prior does not rank labyrinth above ssca2")
	}
	// After one unrelated observation the global EWMA calibrates the units;
	// the unobserved heavy class must still estimate heavier.
	e.observe(measureCell("genome", 4), 1.0)
	if !e.calibrated() {
		t.Fatal("estimator not calibrated after an observation")
	}
	if e.estimate(lab) <= e.estimate(ssca) {
		t.Error("global-fallback estimate does not rank labyrinth above ssca2")
	}
}

func TestRemainingSecondsWeightsPendingWork(t *testing.T) {
	e := newEstimator()
	lab := measureCell("labyrinth", 4)
	ssca := measureCell("ssca2", 4)
	e.beginPlan([]Cell{lab, lab, ssca})
	e.observe(lab, 10)
	e.observe(ssca, 1)
	if got, want := e.remainingSeconds(), 21.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("remainingSeconds = %.3f, want %.3f (2×10 + 1×1)", got, want)
	}
	e.cellDone(lab)
	if got, want := e.remainingSeconds(), 11.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("remainingSeconds after one labyrinth done = %.3f, want %.3f", got, want)
	}
	// The old estimator's failure mode: with mean-based ETA the cheap cell
	// would have predicted (10+1)/2 per remaining cell; the weighted sum
	// must instead charge the remaining labyrinth its own class estimate.
	e.cellDone(ssca)
	if got, want := e.remainingSeconds(), 10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("remainingSeconds with one labyrinth pending = %.3f, want %.3f", got, want)
	}
}

func TestEstimatorPersistence(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lab := measureCell("labyrinth", 4)
	e := newEstimator()
	e.observe(lab, 42)
	e.save(store)

	fresh := newEstimator()
	fresh.load(store)
	if !fresh.calibrated() {
		t.Fatal("loaded estimator not calibrated")
	}
	if got := fresh.estimate(lab); math.Abs(got-42) > 1e-9 {
		t.Errorf("persisted estimate = %.3f, want 42", got)
	}
	// In-memory observations must win over a stale persisted record.
	fresh.observe(lab, 2)
	before := fresh.estimate(lab)
	fresh.load(store)
	if got := fresh.estimate(lab); got != before {
		t.Errorf("load overwrote live estimate: %.3f -> %.3f", before, got)
	}
}

// TestPrewarmTrainsAndPersistsDurations runs a real Prewarm through the
// hook seam and checks the estimator learned from it and persisted its
// state, and that a resumed pass replays cached durations into a fresh
// scheduler's estimator.
func TestPrewarmTrainsAndPersistsDurations(t *testing.T) {
	setRunCellHook(t, func(Cell) (harness.Result, trace.Footprint, error) {
		time.Sleep(2 * time.Millisecond)
		return harness.Result{}, trace.Footprint{}, nil
	})
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells()

	s := New(Config{Jobs: 2, Cache: store, Resume: true})
	if sum := s.Prewarm(cells); sum.Computed != len(cells) {
		t.Fatalf("first pass summary = %s", sum)
	}
	if !s.est.calibrated() {
		t.Error("estimator not trained by computed cells")
	}

	// A fresh scheduler resuming from cache never computes, but the cached
	// records carry Seconds and the persisted file carries the EWMAs.
	s2 := New(Config{Jobs: 2, Cache: store, Resume: true})
	if sum := s2.Prewarm(cells); sum.Cached != len(cells) {
		t.Fatalf("resume summary = %s, want all cached", sum)
	}
	if !s2.est.calibrated() {
		t.Error("resumed estimator has no duration history")
	}
	if got := s2.est.estimate(cells[0]); got <= 0 {
		t.Errorf("resumed estimate = %.6f, want > 0", got)
	}
}
