package sweep

import (
	"strings"
	"sync"
	"testing"
	"time"

	"htmcmp/internal/harness"
	"htmcmp/internal/trace"
)

func TestLPTAssignLongestFirstAndBalanced(t *testing.T) {
	cells := []Cell{
		measureCell("labyrinth", 4), // est 10
		measureCell("yada", 4),      // est 6
		measureCell("ssca2", 4),     // est 1
		measureCell("kmeans-low", 4),
		measureCell("genome", 4),
		measureCell("intruder", 4),
	}
	ests := []float64{10, 6, 1, 1, 2, 1}
	deques := lptAssign(cells, ests, 2)

	if n := deques[0].size() + deques[1].size(); n != len(cells) {
		t.Fatalf("deques hold %d cells, want %d", n, len(cells))
	}
	// LPT: the single longest cell is the first the first worker pops.
	c, ok := deques[0].popFront()
	if !ok || c.Spec.Benchmark != "labyrinth" {
		t.Errorf("worker 0 front = %v, want the labyrinth cell", c.Label())
	}
	// The second-longest lands on the other (then least-loaded) worker.
	c, ok = deques[1].popFront()
	if !ok || c.Spec.Benchmark != "yada" {
		t.Errorf("worker 1 front = %v, want the yada cell", c.Label())
	}
}

func TestLPTAssignExactlyOnce(t *testing.T) {
	cells := testCells()
	ests := make([]float64, len(cells))
	for i := range ests {
		ests[i] = float64(i + 1)
	}
	deques := lptAssign(cells, ests, 3)
	seen := map[string]int{}
	for _, d := range deques {
		for {
			c, ok := d.popFront()
			if !ok {
				break
			}
			seen[c.Label()]++
		}
	}
	for _, c := range cells {
		if seen[c.Label()] != 1 {
			t.Errorf("cell %s scheduled %d times, want exactly once", c.Label(), seen[c.Label()])
		}
	}
}

func TestStealTakesFromRichestBack(t *testing.T) {
	a := &deque{cells: []Cell{measureCell("labyrinth", 4), measureCell("ssca2", 4)}}
	b := &deque{cells: []Cell{measureCell("yada", 4)}}
	self := &deque{}
	c, ok := steal([]*deque{a, b, self}, 2)
	if !ok {
		t.Fatal("steal found nothing")
	}
	// Richest victim is a (2 cells); thieves take from the back (cheapest).
	if c.Spec.Benchmark != "ssca2" {
		t.Errorf("stole %s, want the back of the richest deque (ssca2)", c.Label())
	}
	// Keep stealing; the thief must drain every victim before reporting
	// empty (workers only stop when no work is left anywhere).
	for {
		if _, ok := steal([]*deque{a, b, self}, 2); !ok {
			break
		}
	}
	if a.size() != 0 || b.size() != 0 {
		t.Errorf("deques not drained: a=%d b=%d", a.size(), b.size())
	}
}

// TestPrewarmStealsFromStragglers pins the scheduler's reason to exist:
// with two workers and one deque loaded with slow cells (the estimator is
// cold and the hook ignores estimates, so initial assignment splits the
// cells evenly in plan order), the worker that finishes early must steal
// the other's queued work rather than idle, and every cell still executes
// exactly once.
func TestPrewarmStealsFromStragglers(t *testing.T) {
	var mu sync.Mutex
	runs := map[string]int{}
	setRunCellHook(t, func(c Cell) (harness.Result, trace.Footprint, error) {
		mu.Lock()
		runs[c.Label()]++
		mu.Unlock()
		if c.Spec.Benchmark == "labyrinth" {
			time.Sleep(30 * time.Millisecond)
		}
		return harness.Result{}, trace.Footprint{}, nil
	})

	// Eight cheap cells + two slow ones: whatever the assignment, the
	// worker without (or finishing) the slow cells runs dry and must steal.
	cells := []Cell{measureCell("labyrinth", 2), measureCell("labyrinth", 4)}
	for _, th := range []int{1, 2, 3, 4} {
		cells = append(cells, measureCell("ssca2", th), measureCell("kmeans-low", th))
	}
	s := New(Config{Jobs: 2})
	sum := s.Prewarm(cells)
	if sum.Cells != len(cells) || sum.Computed != len(cells) || sum.Failed != 0 {
		t.Fatalf("summary = %s", sum)
	}
	for _, c := range cells {
		if runs[c.Label()] != 1 {
			t.Errorf("cell %s ran %d times, want exactly once", c.Label(), runs[c.Label()])
		}
	}
}

func TestStealSummaryString(t *testing.T) {
	sum := Summary{Cells: 4, Computed: 4, Steals: 2}
	if got := sum.String(); !strings.Contains(got, "steals=2") {
		t.Errorf("Summary.String() = %q, want steals=2 present", got)
	}
	quiet := Summary{Cells: 4, Cached: 4}
	if got := quiet.String(); strings.Contains(got, "steals") {
		t.Errorf("Summary.String() = %q, want no steals field when zero", got)
	}
}
