package sweep

import (
	"sort"
	"sync"
)

// Work-stealing cell scheduler. The old fixed worker pool fed cells through
// one channel in plan order, which made the sweep's wall clock hostage to
// its stragglers: a worker that drew a multi-second labyrinth cell near the
// end of the queue ran alone long after every other worker went idle. Here
// cells are assigned up front, longest-expected-first (LPT — the classic
// 4/3-approximation for makespan on identical machines), onto per-worker
// deques balanced by total expected load; each worker pops its own deque
// from the front (its longest work first) and, when empty, steals from the
// back of the currently richest victim (the cheapest cells, which are the
// cheapest to migrate and the likeliest to be mis-scheduled anyway).
//
// Scheduling order affects only wall clock, never results: every cell is
// executed exactly once and is independently seeded and deterministic.

// deque is one worker's job list. A mutex (not a lock-free deque) is
// plenty: operations are O(1) and run once per cell, and cells are
// simulations lasting milliseconds to minutes.
type deque struct {
	mu    sync.Mutex
	cells []Cell // sorted longest-first; owner pops front, thieves pop back
}

func (d *deque) popFront() (Cell, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.cells) == 0 {
		return Cell{}, false
	}
	c := d.cells[0]
	d.cells = d.cells[1:]
	return c, true
}

func (d *deque) popBack() (Cell, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.cells) == 0 {
		return Cell{}, false
	}
	c := d.cells[len(d.cells)-1]
	d.cells = d.cells[:len(d.cells)-1]
	return c, true
}

// push returns a cell to the front of the deque. This is the crashed
// worker's requeue path (heal.go): the cell is pushed back BEFORE the worker
// dies, so it is never invisible to the other workers' drain check — the
// restarted owner or a thief always finds it.
func (d *deque) push(c Cell) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cells = append([]Cell{c}, d.cells...)
}

func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.cells)
}

// lptAssign distributes cells onto `workers` deques: cells sorted by
// descending estimate (stable, so equal estimates keep plan order and the
// assignment stays deterministic for a given estimator state), each
// assigned to the least-loaded worker at that point. Returns the deques and
// the estimate-sorted order for inspection.
func lptAssign(cells []Cell, ests []float64, workers int) []*deque {
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ests[order[a]] > ests[order[b]] })

	deques := make([]*deque, workers)
	for i := range deques {
		deques[i] = &deque{}
	}
	loads := make([]float64, workers)
	for _, idx := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[w] {
				w = i
			}
		}
		deques[w].cells = append(deques[w].cells, cells[idx])
		loads[w] += ests[idx]
	}
	return deques
}

// steal takes a cell from the back of the richest deque other than self.
// Returns false only when every deque is empty (no new work ever appears
// mid-pass, so the pass is over).
func steal(deques []*deque, self int) (Cell, bool) {
	for {
		victim, best := -1, 0
		for i, d := range deques {
			if i == self {
				continue
			}
			if n := d.size(); n > best {
				victim, best = i, n
			}
		}
		if victim < 0 {
			return Cell{}, false
		}
		// The victim may have drained between the size probe and the pop;
		// loop and re-scan rather than give up.
		if c, ok := deques[victim].popBack(); ok {
			return c, true
		}
	}
}
