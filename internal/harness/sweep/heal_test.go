package sweep

// Chaos/soak suite for the self-healing sweep: every injected fault class
// must be recovered — the sweep completes, the healed results are equal to a
// fault-free run, and the Summary's Recovered accounting matches what was
// injected — plus property tests for the retry backoff bounds and for the
// worker pool draining around quarantined cells.

import (
	"reflect"
	"testing"
	"time"

	"htmcmp/internal/cache"
	"htmcmp/internal/chaos"
	"htmcmp/internal/harness"
	"htmcmp/internal/trace"
)

// chaosCells returns the standard test cell set with an optional spec
// mutation (to route cells through the STM or adaptive runtimes).
func chaosCells(mod func(*harness.RunSpec)) []Cell {
	cells := testCells()
	if mod != nil {
		for i := range cells {
			mod(&cells[i].Spec)
		}
	}
	return cells
}

// cleanResults computes the fault-free reference results directly.
func cleanResults(t *testing.T, cells []Cell) []harness.Result {
	t.Helper()
	out := make([]harness.Result, len(cells))
	for i, c := range cells {
		r, err := harness.Run(c.Spec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

// assertHealedEqual checks every healed cell against the fault-free
// reference: recovery must leave no fingerprint in the results.
func assertHealedEqual(t *testing.T, s *Scheduler, cells []Cell, want []harness.Result) {
	t.Helper()
	for i, c := range cells {
		got, err := s.Measure(c.Spec, false)
		if err != nil {
			t.Fatalf("cell %s failed after healing: %v", c.Label(), err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("cell %s: healed result differs from fault-free run", c.Label())
		}
	}
}

// TestChaosSoakPerClassRecovery afflicts EVERY cell with one fault class at
// a time and requires total recovery: no failures, every cell recovered via
// exactly one clean retry, and results identical to a fault-free sweep.
func TestChaosSoakPerClassRecovery(t *testing.T) {
	cases := []struct {
		name  string
		class chaos.Class
		op    float64 // per-opportunity rate for engine-level classes
		mod   func(*harness.RunSpec)
	}{
		{"spurious-abort", chaos.SpuriousAbort, 0.2, nil},
		{"capacity-fault", chaos.CapacityFault, 0.01, nil},
		{"stm-contention", chaos.STMContention, 0.05, func(s *harness.RunSpec) { s.UseSTM = true }},
		{"mode-thrash", chaos.ModeThrash, 0.1, func(s *harness.RunSpec) { s.Adaptive = true }},
		{"cell-panic", chaos.CellPanic, 0, nil},
		{"worker-crash", chaos.WorkerCrash, 0, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cells := chaosCells(tc.mod)
			want := cleanResults(t, cells)
			cfg := chaos.Config{Seed: 1}
			cfg.Rates[tc.class] = 1
			if tc.op > 0 {
				cfg.OpRates[tc.class] = tc.op
			}
			in := chaos.New(cfg)
			s := New(Config{
				Jobs: 2, Retries: 2, Seed: 7, Faults: in,
				RetryBackoff: time.Millisecond, RetryBackoffCap: 8 * time.Millisecond,
			})
			sum := s.Prewarm(cells)
			if sum.Failed != 0 {
				t.Fatalf("summary = %s, want no failures", sum)
			}
			if in.Fired(tc.class) == 0 {
				t.Fatalf("class %s never fired; the soak proves nothing", tc.class)
			}
			if sum.Recovered != len(cells) {
				t.Fatalf("summary = %s, want all %d cells recovered", sum, len(cells))
			}
			if sum.Retried != len(cells) {
				t.Fatalf("summary = %s, want exactly one retry per cell", sum)
			}
			assertHealedEqual(t, s, cells, want)
		})
	}
}

// TestChaosQuarantineRecovers forces every cell through quarantine: the
// affliction persists past the pool's retry budget (Persist > Retries), so
// each cell exhausts its retries, is quarantined, and is then healed by the
// serial single-retry pass. Running the identical sweep twice must heal
// identically — the whole schedule is a function of the seeds.
func TestChaosQuarantineRecovers(t *testing.T) {
	cells := testCells()
	want := cleanResults(t, cells)
	run := func() (Summary, *Scheduler) {
		cfg := chaos.Config{Seed: 3, Persist: 2}
		cfg.Rates[chaos.CellPanic] = 1
		s := New(Config{
			Jobs: 2, Retries: 1, Seed: 11, Faults: chaos.New(cfg),
			RetryBackoff: time.Millisecond, RetryBackoffCap: 4 * time.Millisecond,
		})
		return s.Prewarm(cells), s
	}
	sum, s := run()
	if sum.Quarantined != len(cells) || sum.Recovered != len(cells) || sum.Failed != 0 {
		t.Fatalf("summary = %s, want all %d quarantined and recovered", sum, len(cells))
	}
	assertHealedEqual(t, s, cells, want)

	sum2, _ := run()
	if sum2.Retried != sum.Retried || sum2.Quarantined != sum.Quarantined ||
		sum2.Recovered != sum.Recovered || sum2.Failed != sum.Failed {
		t.Fatalf("chaos healing not deterministic: %s vs %s", sum, sum2)
	}
}

// TestChaosStallTimesOutAndRecovers: an injected stall must trip the cell
// timeout, and the clean retry must land. The hook makes the real compute
// instant so the test's clock is dominated by the injected stall alone.
func TestChaosStallTimesOutAndRecovers(t *testing.T) {
	setRunCellHook(t, func(Cell) (harness.Result, trace.Footprint, error) {
		return harness.Result{}, trace.Footprint{}, nil
	})
	cfg := chaos.Config{Seed: 2}
	cfg.Rates[chaos.CellStall] = 1
	in := chaos.New(cfg)
	s := New(Config{
		Jobs: 2, Timeout: 100 * time.Millisecond, Retries: 1, Faults: in,
		RetryBackoff: time.Millisecond, RetryBackoffCap: 4 * time.Millisecond,
	})
	cells := testCells()
	sum := s.Prewarm(cells)
	if sum.Failed != 0 || sum.Recovered != len(cells) {
		t.Fatalf("summary = %s, want all %d stalled cells recovered", sum, len(cells))
	}
	if got := in.Fired(chaos.CellStall); got != uint64(len(cells)) {
		t.Fatalf("stalls fired = %d, want %d", got, len(cells))
	}
}

// TestChaosCacheCorruptionDetectedAndRecovered tears EVERY cache record
// after it is written (truncation, garbage, and stale-content modes, chosen
// per key); the resumed sweep must detect all of them, evict, recompute, and
// converge to the fault-free results.
func TestChaosCacheCorruptionDetectedAndRecovered(t *testing.T) {
	cells := testCells()
	want := cleanResults(t, cells)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (*Scheduler, *chaos.Injector) {
		cfg := chaos.Config{Seed: 4}
		cfg.Rates[chaos.CacheCorrupt] = 1
		in := chaos.New(cfg)
		s := New(Config{
			Jobs: 2, Cache: store, Resume: true, Retries: 1, Faults: in,
			RetryBackoff: time.Millisecond, RetryBackoffCap: 4 * time.Millisecond,
		})
		return s, in
	}
	s1, in1 := mk()
	sum1 := s1.Prewarm(cells)
	if sum1.Failed != 0 || sum1.Computed != len(cells) {
		t.Fatalf("pass-1 summary = %s", sum1)
	}
	if got := in1.Fired(chaos.CacheCorrupt); got != uint64(len(cells)) {
		t.Fatalf("tore %d records, want %d", got, len(cells))
	}
	// The in-memory results are banked before the record is torn; tearing
	// must not leak into what pass 1 serves.
	assertHealedEqual(t, s1, cells, want)

	s2, _ := mk()
	sum2 := s2.Prewarm(cells)
	if sum2.Cached != 0 || sum2.Computed != len(cells) {
		t.Fatalf("pass-2 summary = %s, want every torn record recomputed", sum2)
	}
	if sum2.Evicted != len(cells) || sum2.Recovered != len(cells) || sum2.Failed != 0 {
		t.Fatalf("pass-2 summary = %s, want %d evicted and recovered", sum2, len(cells))
	}
	assertHealedEqual(t, s2, cells, want)
}

// TestChaosSoakFullMixByteIdentical is the soak: every fault class armed at
// once (the default chaos mix), a sweep into a cache, and a resumed second
// sweep over the same store. Both passes must end with zero failures and
// results identical to the fault-free reference, and the second pass must
// detect exactly the records the first pass tore.
func TestChaosSoakFullMixByteIdentical(t *testing.T) {
	cells := testCells()
	want := cleanResults(t, cells)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (*Scheduler, *chaos.Injector) {
		in := chaos.New(chaos.DefaultConfig(1001))
		s := New(Config{
			Jobs: 2, Cache: store, Resume: true, Retries: 2, Seed: 1001, Faults: in,
			RetryBackoff: time.Millisecond, RetryBackoffCap: 8 * time.Millisecond,
		})
		return s, in
	}
	s1, in1 := mk()
	sum1 := s1.Prewarm(cells)
	if sum1.Failed != 0 {
		t.Fatalf("pass-1 summary = %s, want no failures under full chaos", sum1)
	}
	if in1.TotalFired() == 0 {
		t.Fatal("chaos never fired; the soak proves nothing")
	}
	assertHealedEqual(t, s1, cells, want)

	s2, _ := mk()
	sum2 := s2.Prewarm(cells)
	if sum2.Failed != 0 {
		t.Fatalf("pass-2 summary = %s, want no failures on chaotic resume", sum2)
	}
	if torn := int(in1.Fired(chaos.CacheCorrupt)); sum2.Evicted != torn {
		t.Errorf("pass 2 evicted %d records, want the %d pass 1 tore", sum2.Evicted, torn)
	}
	assertHealedEqual(t, s2, cells, want)
}

// TestQuarantineDoesNotStarvePool is the starvation property: cells that
// fail persistently (and burn their whole retry budget) must not keep the
// worker pool from draining — healthy cells still complete, work stealing
// still functions, and Prewarm returns with every cell accounted for.
func TestQuarantineDoesNotStarvePool(t *testing.T) {
	setRunCellHook(t, func(c Cell) (harness.Result, trace.Footprint, error) {
		if c.Spec.Benchmark == "ssca2" {
			return harness.Result{}, trace.Footprint{}, errTestPersistent
		}
		return harness.Result{}, trace.Footprint{}, nil
	})
	cells := testCells() // 2 ssca2 cells (always fail), 2 kmeans-low (succeed)
	s := New(Config{
		Jobs: 3, Retries: 2,
		RetryBackoff: time.Millisecond, RetryBackoffCap: 4 * time.Millisecond,
	})
	sum := s.Prewarm(cells)
	if sum.Cells != len(cells) || sum.Computed != len(cells) {
		t.Fatalf("summary = %s, want the pool to drain all %d cells", sum, len(cells))
	}
	if sum.Quarantined != 2 || sum.Failed != 2 {
		t.Fatalf("summary = %s, want the 2 persistent failures quarantined then failed", sum)
	}
	if sum.Retried != 2*2 {
		t.Fatalf("summary = %s, want both failing cells to burn their full retry budget", sum)
	}
	for _, c := range cells {
		_, err := s.Measure(c.Spec, false)
		if c.Spec.Benchmark == "ssca2" && err == nil {
			t.Errorf("cell %s: persistent failure healed away — impossible", c.Label())
		}
		if c.Spec.Benchmark != "ssca2" && err != nil {
			t.Errorf("cell %s starved by its failing neighbours: %v", c.Label(), err)
		}
	}
}

var errTestPersistent = &persistentErr{}

type persistentErr struct{}

func (*persistentErr) Error() string { return "persistent test failure" }

// TestRetryBackoffBoundedForAnySeed is the backoff property: for any seed
// and any attempt number — far past where naive doubling overflows — the
// delay is deterministic, positive, and never exceeds the cap.
func TestRetryBackoffBoundedForAnySeed(t *testing.T) {
	const ceiling = 100 * time.Millisecond
	for seed := uint64(0); seed < 64; seed++ {
		for attempt := 0; attempt < 70; attempt++ {
			d := chaos.Backoff(seed, "prop-cell", attempt, 2*time.Millisecond, ceiling)
			if d <= 0 || d > ceiling {
				t.Fatalf("seed %d attempt %d: backoff %v outside (0, %v]", seed, attempt, d, ceiling)
			}
			if d2 := chaos.Backoff(seed, "prop-cell", attempt, 2*time.Millisecond, ceiling); d2 != d {
				t.Fatalf("seed %d attempt %d: backoff not deterministic (%v vs %v)", seed, attempt, d, d2)
			}
		}
	}
}
