package sweep

// Self-healing cell execution. A sweep that only counts failures is fragile
// in exactly the ways the paper's platforms are: transient events (an
// interrupt-style abort, a crashed worker, a torn cache record) would fail a
// cell that a bounded retry recovers for free. This file wraps cell
// execution in that retry loop — jittered exponential backoff between
// attempts, a quarantine list for cells that exhaust the pool's budget, and
// corrupt-cache eviction/recompute — and is also where the chaos injector's
// harness-level faults land, so every recovery path is exercised on purpose
// by the chaos/soak suite.
//
// Determinism contract: with Config.Faults nil and Retries 0 nothing here
// runs — computeHealed collapses to exactly one execCell, so the fault-free
// sweep is byte-identical to the pre-healing scheduler. With chaos on, an
// engine-afflicted attempt must COMPLETE and validate (that is the recovery
// proof), but its fault-perturbed measurements are discarded and the cell is
// retried clean, so rendered tables and cached records never contain an
// injected fault's fingerprint.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"htmcmp/internal/chaos"
	"htmcmp/internal/harness"
)

// affliction carries one attempt's injected harness-level faults into
// execCell. The zero value is a clean attempt.
type affliction struct {
	panics bool
	stall  time.Duration // sleep this long instead of running (0 = none)
	engine *chaos.Injector
}

// healInfo reports what computeHealed did for one cell.
type healInfo struct {
	attempts   int
	seconds    float64 // compute time of the final attempt (backoff excluded)
	recovered  bool    // succeeded after at least one retry
	quarantine bool    // retry budget exhausted (only when Retries > 0)
}

// quarCell is one quarantined cell awaiting the serial retry pass.
type quarCell struct {
	c   Cell
	key string
}

// workerCrash is the panic payload of an injected worker crash; the
// supervisor in Prewarm recognises it and restarts the worker.
type workerCrash struct{}

// computeHealed executes the cell with the configured retry budget: up to
// 1+Retries attempts, separated by deterministic jittered exponential
// backoff. The attempt number feeds the chaos injector, whose afflictions
// expire after Persist attempts — which is what makes injected faults
// recoverable by bounded retry rather than by luck.
func (s *Scheduler) computeHealed(c Cell, key string) (outcome, healInfo) {
	var hi healInfo
	attempts := 1 + s.cfg.Retries
	var o outcome
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(chaos.Backoff(s.cfg.Seed, key, a-1, s.cfg.RetryBackoff, s.cfg.RetryBackoffCap))
			s.noteRetry()
		}
		hi.attempts = a + 1
		began := time.Now()
		o = s.executeAttempt(c, key, a)
		hi.seconds = time.Since(began).Seconds()
		if o.err == nil {
			hi.recovered = a > 0
			return o, hi
		}
		if a < attempts-1 {
			s.progressf("sweep: cell %s attempt %d/%d failed: %s (retrying)",
				c.Label(), a+1, attempts, firstLine(o.err.Error()))
		}
	}
	hi.quarantine = s.cfg.Retries > 0
	return o, hi
}

// executeAttempt runs one attempt of the cell, applying whatever faults the
// injector assigns to this (key, attempt) pair. Without an injector it is
// exactly execCell with a zero affliction.
func (s *Scheduler) executeAttempt(c Cell, key string, attempt int) outcome {
	var af affliction
	inj := s.cfg.Faults
	if inj != nil {
		if inj.Afflicts(chaos.CellPanic, key, attempt) {
			af.panics = true
			inj.Note(chaos.CellPanic)
		}
		if s.cfg.Timeout > 0 && inj.Afflicts(chaos.CellStall, key, attempt) {
			af.stall = s.cfg.Timeout + 50*time.Millisecond
			inj.Note(chaos.CellStall)
		}
		if c.Kind != Footprint {
			af.engine = inj.EngineFor(key, attempt)
		}
	}
	if c.Kind != Footprint {
		c.Spec.Faults = af.engine // nil on a clean attempt: zero overhead
	}
	o := s.execCell(c, af)
	if af.engine != nil {
		for cl := chaos.SpuriousAbort; cl <= chaos.ModeThrash; cl++ {
			inj.NoteN(cl, af.engine.Fired(cl))
		}
		if o.err == nil && af.engine.TotalFired() > 0 {
			// Shakedown: the afflicted run completed and validated — the
			// recovery proof — but its measurements carry injected aborts.
			// Discard and retry clean so tables stay byte-identical to a
			// fault-free sweep and only clean results are ever cached.
			o = outcome{err: fmt.Errorf("sweep: cell %s: chaos: %d engine fault(s) fired; measurement discarded for clean retry",
				c.Label(), af.engine.TotalFired())}
		}
	}
	return o
}

// retryQuarantined is the serial pass after the pool drains: each
// quarantined cell gets one more attempt, numbered past both the pool's
// budget and any injector Persist horizon, so it always runs clean unless
// the failure is real. Success overwrites the memoised failure and lands in
// the cache; failure is final and counts as Failed.
func (s *Scheduler) retryQuarantined() {
	s.mu.Lock()
	quar := s.quarantine
	s.quarantine = nil
	s.mu.Unlock()
	if len(quar) == 0 {
		return
	}
	s.progressf("sweep: %d cell(s) quarantined; serial retry pass", len(quar))
	m := s.cfg.Metrics
	for _, q := range quar {
		began := time.Now()
		o := s.executeAttempt(q.c, q.key, s.cfg.Retries+1)
		secs := time.Since(began).Seconds()
		if o.err == nil {
			s.est.observe(q.c, secs)
			if s.cfg.Cache != nil {
				rec := record{Cell: q.c, Seconds: secs}
				if q.c.Kind == Footprint {
					fp := o.fp
					rec.Footprint = &fp
				} else {
					res := o.res
					rec.Result = &res
				}
				if err := s.cfg.Cache.Put(q.key, rec); err != nil {
					s.progressf("sweep: warning: %v", err)
				}
			}
			m.Add("cells_recovered", 1)
			if s.tc != nil {
				s.tc.recovered.Inc(0)
			}
			s.progressf("sweep: quarantine: %s recovered", q.c.Label())
		} else {
			m.Add("cells_failed", 1)
			if s.tc != nil {
				s.tc.failed.Inc(0)
			}
			s.progressf("sweep: quarantine: %s failed for good: %s", q.c.Label(), firstLine(o.err.Error()))
		}
		s.mu.Lock()
		s.memo[q.key] = o
		if o.err == nil {
			s.recovered++
		} else {
			s.failed++
		}
		s.mu.Unlock()
	}
}

// maybeCrashWorker kills the calling worker (via a workerCrash panic the
// supervisor catches) when the chaos injector crashes it over this cell. The
// cell is requeued first, so it is computed by the restarted worker or a
// thief — an injected crash costs a retry, never a result.
func (s *Scheduler) maybeCrashWorker(deques []*deque, self int, c Cell) {
	inj := s.cfg.Faults
	if inj == nil {
		return
	}
	key, err := c.Key()
	if err != nil || !inj.Afflicts(chaos.WorkerCrash, key, 0) {
		return
	}
	if !s.markCrashed(key) {
		return // this cell already took a worker down once
	}
	inj.Note(chaos.WorkerCrash)
	s.noteRetry()
	s.markDisrupted(key)
	deques[self].push(c)
	panic(workerCrash{})
}

// afflictRecord tears the just-written cache record when the cell is
// afflicted by CacheCorrupt: truncation (a torn write), garbage bytes (rot),
// or a stale record whose content no longer hashes to its key. All three
// must be detected on the next resume pass — the first two by Get itself,
// the stale one by obtain's identity check — then evicted and recomputed.
func (s *Scheduler) afflictRecord(c Cell, key string) {
	inj := s.cfg.Faults
	if inj == nil || s.cfg.Cache == nil || key == "" || !inj.Afflicts(chaos.CacheCorrupt, key, 0) {
		return
	}
	path := s.cfg.Cache.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var torn []byte
	switch key[0] % 3 {
	case 0:
		torn = data[:len(data)/2]
	case 1:
		torn = []byte("\x00\xffnot json at all")
	default:
		stale := c
		stale.Seed ^= 0x5a5a
		stale.Spec.Seed ^= 0x5a5a
		torn, err = json.Marshal(record{Cell: stale, Result: &harness.Result{}, Seconds: 0.001})
		if err != nil {
			torn = data[:len(data)/2]
		}
	}
	if os.WriteFile(path, torn, 0o644) == nil {
		inj.Note(chaos.CacheCorrupt)
		s.progressf("sweep: chaos: tore cache record for %s", c.Label())
	}
}

// noteRetry counts one re-executed attempt (a backoff retry or a
// worker-crash requeue) in the progress counters, metrics and registry.
func (s *Scheduler) noteRetry() {
	s.mu.Lock()
	s.retried++
	s.mu.Unlock()
	s.cfg.Metrics.Add("cells_retried", 1)
	if s.tc != nil {
		s.tc.retries.Inc(0)
	}
}

// noteEviction observes a cache-record eviction (wired as the store's
// OnEvict hook in New): log it, count it, and mark the key disrupted so its
// successful recompute is credited as Recovered.
func (s *Scheduler) noteEviction(key string, reason error) {
	short := key
	if len(short) > 12 {
		short = short[:12]
	}
	s.progressf("sweep: cache: evicted record %s: %v (will recompute)", short, reason)
	s.mu.Lock()
	s.evicted++
	s.disrupted[key] = true
	s.mu.Unlock()
	s.cfg.Metrics.Add("cache_evictions", 1)
	if s.tc != nil {
		s.tc.evictions.Inc(0)
	}
}

// markCrashed records that the cell's key crashed a worker; reports false if
// it already did once (each cell crashes at most one worker, so a crashing
// cell cannot grind the pool down forever).
func (s *Scheduler) markCrashed(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed[key] {
		return false
	}
	s.crashed[key] = true
	return true
}

// markDisrupted flags the key as recovering from a disruption (eviction or
// worker crash); takeDisrupted consumes the flag when the recompute lands.
func (s *Scheduler) markDisrupted(key string) {
	s.mu.Lock()
	s.disrupted[key] = true
	s.mu.Unlock()
}

func (s *Scheduler) takeDisrupted(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.disrupted[key] {
		return false
	}
	delete(s.disrupted, key)
	return true
}

// firstLine trims a multi-line error (e.g. a panic with its stack) to its
// first line for progress output.
func firstLine(msg string) string {
	for i := 0; i < len(msg); i++ {
		if msg[i] == '\n' {
			return msg[:i]
		}
	}
	return msg
}
