package sweep

import (
	"sync"

	"htmcmp/internal/cache"
)

// Cell-duration estimation. Two consumers:
//
//   - The work-stealing scheduler (steal.go) orders cells longest-first
//     (LPT), which needs a relative cost estimate before any cell of this
//     run has executed.
//   - The progress line's ETA, which the old code derived from the global
//     mean duration of completed cells. That estimator is wildly optimistic
//     early in a sweep: the 301-cell paper sweep mixes ~ms ssca2 cells with
//     multi-second labyrinth/yada cells, and whichever class happens to
//     finish first dominates the mean. The estimator below keeps one EWMA
//     per cell class — (kind, benchmark, scale, threads) — and weights the
//     remaining-work sum by how many cells of each class are still pending.
//
// Estimates persist across runs through the sweep's content-addressed cache
// store under a fixed key, so even the first progress line of a rerun knows
// that labyrinth cells are expensive.

// etaAlpha is the EWMA smoothing factor: high enough to adapt when a class
// estimate carried over from a differently-loaded machine, low enough that
// one noisy cell does not whipsaw the ETA.
const etaAlpha = 0.3

// durationsVersion keys the persisted class-duration file in the cache
// store (it shares the directory with result records but not their
// versioning: durations are advisory and survive result-schema bumps).
const durationsVersion = "htmcmp-durations-v1"

// durationsKey is the fixed content address of the persisted estimates.
func durationsKey() (string, error) {
	return cache.Key(durationsVersion, "class-duration-ewma")
}

// cellClass buckets cells whose cost is expected to be similar. Seed and
// variant are deliberately excluded: they perturb conflict behaviour, not
// order-of-magnitude cost.
func cellClass(c Cell) string {
	if c.Kind == Footprint {
		return "footprint/" + c.Bench + "/" + c.Scale.String()
	}
	return c.Kind.String() + "/" + c.Spec.Benchmark + "/" + c.Spec.Scale.String() +
		"/" + itoa(c.Spec.Threads)
}

// itoa avoids pulling strconv into the hot progress path for tiny ints.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// benchWeight is the cold-start relative cost prior per benchmark: with no
// recorded durations at all, LPT still schedules the known-heavy STAMP
// benchmarks first. Values are coarse ratios from the checked-in
// results_sim.txt sweep; precision is irrelevant, ordering is what matters.
var benchWeight = map[string]float64{
	"labyrinth": 12,
	"yada":      6,
	"bayes":     4,
	"genome":    2,
}

// cellPrior is the relative cost prior of one cell.
func cellPrior(c Cell) float64 {
	bench := c.Spec.Benchmark
	if c.Kind == Footprint {
		bench = c.Bench
	}
	w, ok := benchWeight[bench]
	if !ok {
		w = 1
	}
	if c.Kind == TuneMeasure {
		// A tune cell is a whole grid search of measured runs.
		w *= 6
	}
	// Repeats multiply runs directly.
	if r := c.Spec.Repeats; r > 1 {
		w *= float64(r)
	}
	return w
}

// ewma is one exponentially weighted moving average.
type ewma struct {
	v float64
	n int
}

func (e *ewma) observe(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v = (1-etaAlpha)*e.v + etaAlpha*x
	}
	e.n++
}

// estimator tracks per-class EWMA durations plus the pending-cell census of
// the current Prewarm pass. All methods are safe for concurrent use.
type estimator struct {
	mu      sync.Mutex
	classes map[string]*ewma
	global  ewma // cross-class fallback, in seconds per unit of prior weight

	pending map[string]int     // class -> cells not yet finished this pass
	priors  map[string]float64 // class -> cold-start relative weight
}

func newEstimator() *estimator {
	return &estimator{
		classes: map[string]*ewma{},
		pending: map[string]int{},
		priors:  map[string]float64{},
	}
}

// beginPlan registers the cells of a Prewarm pass for remaining-work
// accounting (replacing any previous census).
func (e *estimator) beginPlan(cells []Cell) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pending = map[string]int{}
	e.priors = map[string]float64{}
	for _, c := range cells {
		cl := cellClass(c)
		e.pending[cl]++
		e.priors[cl] = cellPrior(c)
	}
}

// estimateLocked returns the expected duration of one cell of the class, in
// seconds — or, before any observation exists anywhere, in pure prior
// units (still a valid LPT ordering key).
func (e *estimator) estimateLocked(class string, prior float64) float64 {
	if w, ok := e.classes[class]; ok && w.n > 0 {
		return w.v
	}
	if e.global.n > 0 {
		// The global EWMA is normalised per unit of prior weight, so an
		// unobserved heavy class still estimates heavier than a light one.
		return e.global.v * prior
	}
	return prior
}

// estimate is the exported-shape wrapper used by the scheduler.
func (e *estimator) estimate(c Cell) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.estimateLocked(cellClass(c), cellPrior(c))
}

// observe records a finished cell's measured duration. computed=false marks
// durations replayed from cache records of earlier runs: they train the
// estimates but with the same EWMA path (they are real measurements).
func (e *estimator) observe(c Cell, seconds float64) {
	if seconds <= 0 {
		return
	}
	cl := cellClass(c)
	e.mu.Lock()
	w, ok := e.classes[cl]
	if !ok {
		w = &ewma{}
		e.classes[cl] = w
	}
	w.observe(seconds)
	if p := cellPrior(c); p > 0 {
		e.global.observe(seconds / p)
	}
	e.mu.Unlock()
}

// cellDone retires one pending cell of the census.
func (e *estimator) cellDone(c Cell) {
	cl := cellClass(c)
	e.mu.Lock()
	if e.pending[cl] > 0 {
		e.pending[cl]--
	}
	e.mu.Unlock()
}

// calibrated reports whether at least one real duration has been observed
// (from this run or a loaded history) — before that, estimates are in
// arbitrary prior units and must not be shown as an ETA.
func (e *estimator) calibrated() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.global.n > 0
}

// remainingSeconds sums the expected durations of all pending cells: the
// EWMA of completed-cell durations weighted by the remaining planned work.
func (e *estimator) remainingSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum float64
	for cl, n := range e.pending {
		if n > 0 {
			sum += float64(n) * e.estimateLocked(cl, e.priors[cl])
		}
	}
	return sum
}

// durationsRecord is the persisted payload: the EWMA state per class.
type durationsRecord struct {
	Classes map[string]float64 `json:"classes"`
	Counts  map[string]int     `json:"counts"`
	Global  float64            `json:"global"`
	GlobalN int                `json:"global_n"`
}

// load merges persisted estimates into the estimator; in-memory
// observations from the current process win. Missing or corrupt records
// are ignored — durations are advisory.
func (e *estimator) load(st *cache.Store) {
	if st == nil {
		return
	}
	key, err := durationsKey()
	if err != nil {
		return
	}
	var rec durationsRecord
	if ok, err := st.Get(key, &rec); err != nil || !ok {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for cl, v := range rec.Classes {
		if _, ok := e.classes[cl]; !ok && v > 0 {
			n := rec.Counts[cl]
			if n <= 0 {
				n = 1
			}
			e.classes[cl] = &ewma{v: v, n: n}
		}
	}
	if e.global.n == 0 && rec.GlobalN > 0 {
		e.global = ewma{v: rec.Global, n: rec.GlobalN}
	}
}

// save persists the current estimates. Failures are silently dropped for
// the same reason load ignores them.
func (e *estimator) save(st *cache.Store) {
	if st == nil {
		return
	}
	key, err := durationsKey()
	if err != nil {
		return
	}
	e.mu.Lock()
	rec := durationsRecord{
		Classes: make(map[string]float64, len(e.classes)),
		Counts:  make(map[string]int, len(e.classes)),
		Global:  e.global.v,
		GlobalN: e.global.n,
	}
	for cl, w := range e.classes {
		rec.Classes[cl] = w.v
		rec.Counts[cl] = w.n
	}
	e.mu.Unlock()
	_ = st.Put(key, rec)
}
