package sweep

import (
	"sync"

	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/trace"
)

// Plan records the cells an experiment requests without executing any of
// them. Running an experiment with a Plan as its Exec/Collector is the
// planning pass: experiment control flow never depends on measured values
// (the loops range over static benchmark/platform/thread lists), so the
// recorded list is exactly the set of cells the later render pass will ask
// for. Requests receive zero-valued results; the rendered output of the
// planning pass is discarded.
//
// Plan is safe for concurrent use, though experiments plan serially today.
type Plan struct {
	mu    sync.Mutex
	cells []Cell
	seen  map[string]bool
}

// NewPlan returns an empty Plan.
func NewPlan() *Plan {
	return &Plan{seen: map[string]bool{}}
}

func (p *Plan) add(c Cell) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if key, err := c.Key(); err == nil {
		if p.seen[key] {
			return
		}
		p.seen[key] = true
	}
	p.cells = append(p.cells, c)
}

// Cells returns the recorded cells, deduplicated, in first-request order.
func (p *Plan) Cells() []Cell {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Cell, len(p.cells))
	copy(out, p.cells)
	return out
}

// Measure implements harness.Exec by recording the cell.
func (p *Plan) Measure(spec harness.RunSpec, tune bool) (harness.Result, error) {
	kind := Measure
	if tune {
		kind = TuneMeasure
	}
	p.add(Cell{Kind: kind, Spec: spec})
	return harness.Result{}, nil
}

// Collect implements trace.Collector by recording the cell.
func (p *Plan) Collect(bench string, k platform.Kind, opts trace.Options) (trace.Footprint, error) {
	p.add(Cell{Kind: Footprint, Bench: bench, Platform: k, Scale: opts.Scale, Seed: opts.Seed})
	return trace.Footprint{}, nil
}
