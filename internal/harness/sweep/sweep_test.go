package sweep

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"htmcmp/internal/cache"
	"htmcmp/internal/harness"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/trace"
)

// testCells is a small, fast cell set: 2 benchmarks × 2 platforms at test
// scale with a single repeat.
func testCells() []Cell {
	var cells []Cell
	for _, bench := range []string{"ssca2", "kmeans-low"} {
		for _, k := range []platform.Kind{platform.ZEC12, platform.POWER8} {
			cells = append(cells, Cell{Kind: Measure, Spec: harness.RunSpec{
				Platform:  k,
				Benchmark: bench,
				Threads:   2,
				Scale:     stamp.ScaleTest,
				Variant:   stamp.Modified,
				Seed:      42,
				Repeats:   1,
			}})
		}
	}
	return cells
}

// TestParallelMatchesSerial is the ordering-independence guarantee: a
// 4-worker pool must produce results equal cell-for-cell to direct serial
// execution.
func TestParallelMatchesSerial(t *testing.T) {
	cells := testCells()
	want := make([]harness.Result, len(cells))
	for i, c := range cells {
		r, err := harness.Run(c.Spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	s := New(Config{Jobs: 4})
	sum := s.Prewarm(cells)
	if sum.Cells != len(cells) || sum.Computed != len(cells) || sum.Failed != 0 {
		t.Fatalf("summary = %s", sum)
	}
	for i, c := range cells {
		got, err := s.Measure(c.Spec, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("cell %s: parallel result differs from serial\n got %+v\nwant %+v",
				c.Label(), got, want[i])
		}
	}
}

func TestCacheHitAndCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells()

	s1 := New(Config{Jobs: 2, Cache: store, Resume: true})
	sum1 := s1.Prewarm(cells)
	if sum1.Computed != len(cells) || sum1.Cached != 0 {
		t.Fatalf("cold run summary = %s", sum1)
	}
	want, err := s1.Measure(cells[0].Spec, false)
	if err != nil {
		t.Fatal(err)
	}

	// Warm run: every cell must be served from disk.
	s2 := New(Config{Jobs: 2, Cache: store, Resume: true})
	sum2 := s2.Prewarm(cells)
	if sum2.Cached != len(cells) || sum2.Computed != 0 {
		t.Fatalf("warm run summary = %s", sum2)
	}
	if sum2.HitRatio() != 100 {
		t.Errorf("hit ratio = %.1f, want 100", sum2.HitRatio())
	}
	got, err := s2.Measure(cells[0].Spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached result differs from computed:\n got %+v\nwant %+v", got, want)
	}

	// Corrupt one record: the next run must recompute exactly that cell
	// and still converge to the same result.
	key, err := cells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(key), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Jobs: 2, Cache: store, Resume: true})
	sum3 := s3.Prewarm(cells)
	if sum3.Computed != 1 || sum3.Cached != len(cells)-1 {
		t.Fatalf("post-corruption summary = %s", sum3)
	}
	got3, err := s3.Measure(cells[0].Spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3, want) {
		t.Error("recomputed result differs after corrupt cache entry")
	}
}

// TestResumeAfterInterrupt models an interrupted sweep: only a prefix of the
// cells completed (and was cached); a fresh scheduler finishes the rest,
// loading the completed ones.
func TestResumeAfterInterrupt(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells()

	s1 := New(Config{Jobs: 1, Cache: store, Resume: true})
	if sum := s1.Prewarm(cells[:2]); sum.Computed != 2 {
		t.Fatalf("partial run summary = %s", sum)
	}

	s2 := New(Config{Jobs: 2, Cache: store, Resume: true})
	sum := s2.Prewarm(cells)
	if sum.Cached != 2 || sum.Computed != len(cells)-2 {
		t.Fatalf("resume summary = %s, want 2 cached / %d computed", sum, len(cells)-2)
	}
}

func TestNoResumeRecomputes(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells()[:1]
	New(Config{Jobs: 1, Cache: store, Resume: true}).Prewarm(cells)

	s := New(Config{Jobs: 1, Cache: store, Resume: false})
	if sum := s.Prewarm(cells); sum.Computed != 1 || sum.Cached != 0 {
		t.Fatalf("no-resume summary = %s, want recompute", sum)
	}
}

func TestPrewarmDeduplicates(t *testing.T) {
	c := testCells()[0]
	s := New(Config{Jobs: 4})
	sum := s.Prewarm([]Cell{c, c, c})
	if sum.Cells != 1 || sum.Computed != 1 {
		t.Errorf("summary = %s, want 1 unique cell", sum)
	}
}

// setRunCellHook installs a cell-execution hook for the duration of a test.
func setRunCellHook(t *testing.T, f cellRunner) {
	t.Helper()
	runCellHook.Store(&f)
	t.Cleanup(func() { runCellHook.Store(nil) })
}

func TestPanicRecovery(t *testing.T) {
	setRunCellHook(t, func(Cell) (harness.Result, trace.Footprint, error) {
		panic("boom")
	})

	s := New(Config{Jobs: 2})
	cells := testCells()
	sum := s.Prewarm(cells)
	if sum.Failed != len(cells) {
		t.Fatalf("summary = %s, want all failed", sum)
	}
	_, err := s.Measure(cells[0].Spec, false)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %v, want panic surfaced as error", err)
	}
}

func TestCellTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	setRunCellHook(t, func(Cell) (harness.Result, trace.Footprint, error) {
		<-block
		return harness.Result{}, trace.Footprint{}, nil
	})

	s := New(Config{Jobs: 1, Timeout: 20 * time.Millisecond})
	cells := testCells()[:1]
	sum := s.Prewarm(cells)
	if sum.Failed != 1 {
		t.Fatalf("summary = %s, want 1 failed", sum)
	}
	_, err := s.Measure(cells[0].Spec, false)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v, want timeout error", err)
	}
}

// TestFootprintCell runs one trace.Collect cell through the scheduler and
// checks it matches a direct collection.
func TestFootprintCell(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint collection in -short mode")
	}
	opts := trace.Options{Scale: stamp.ScaleTest, Seed: 42}
	want, err := trace.Collect("ssca2", platform.ZEC12, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Jobs: 2})
	cell := Cell{Kind: Footprint, Bench: "ssca2", Platform: platform.ZEC12, Scale: stamp.ScaleTest, Seed: 42}
	if sum := s.Prewarm([]Cell{cell}); sum.Failed != 0 {
		t.Fatalf("summary = %s", sum)
	}
	got, err := s.Collect("ssca2", platform.ZEC12, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("footprint differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestPlanRecordsFig7 checks the planning pass: Fig7 requests 10 RTM cells
// (one per benchmark) plus 10 HLE cells, with no simulation executed.
func TestPlanRecordsFig7(t *testing.T) {
	p := NewPlan()
	opts := harness.Options{Scale: stamp.ScaleTest, Repeats: 1, Exec: p}
	if _, err := harness.Fig7(opts); err != nil {
		t.Fatal(err)
	}
	cells := p.Cells()
	want := 2 * len(stamp.Names())
	if len(cells) != want {
		t.Fatalf("plan recorded %d cells, want %d", len(cells), want)
	}
	hle := 0
	for _, c := range cells {
		if c.Kind != Measure {
			t.Errorf("cell %s kind = %v, want Measure", c.Label(), c.Kind)
		}
		if c.Spec.UseHLE {
			hle++
		}
	}
	if hle != len(stamp.Names()) {
		t.Errorf("plan has %d HLE cells, want %d", hle, len(stamp.Names()))
	}
}

// TestPlanDeduplicates: Fig2And3 and Fig4 share every modified-variant
// measurement, so planning both must not duplicate cells.
func TestPlanDeduplicates(t *testing.T) {
	p := NewPlan()
	opts := harness.Options{Scale: stamp.ScaleTest, Repeats: 1, Exec: p}
	if _, _, err := harness.Fig2And3(opts); err != nil {
		t.Fatal(err)
	}
	n := len(p.Cells())
	if _, err := harness.Fig4(opts); err != nil {
		t.Fatal(err)
	}
	// Fig4 adds only the Original-variant cells of the 6 changed
	// benchmarks (4 platforms each).
	want := n + 6*4
	if got := len(p.Cells()); got != want {
		t.Errorf("plan has %d cells after Fig4, want %d", got, want)
	}
}

// TestPlanTune records tuned cells distinctly from untuned ones.
func TestPlanTune(t *testing.T) {
	p := NewPlan()
	spec := testCells()[0].Spec
	if _, err := p.Measure(spec, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(spec, true); err != nil {
		t.Fatal(err)
	}
	cells := p.Cells()
	if len(cells) != 2 {
		t.Fatalf("plan has %d cells, want 2 (tuned and untuned are distinct)", len(cells))
	}
	k0, _ := cells[0].Key()
	k1, _ := cells[1].Key()
	if k0 == k1 {
		t.Error("tuned and untuned cells share a cache key")
	}
}

// TestMetricsAndTraceDir exercises the observability hooks: the scheduler
// counts cells and transactions in its live metrics, writes per-cell event
// files when TraceDir is set, and cells served from cache leave no files.
func TestMetricsAndTraceDir(t *testing.T) {
	cells := testCells()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := New(Config{Jobs: 2, Cache: store, Resume: true, TraceDir: dir})
	sum := s.Prewarm(cells)
	if sum.Failed != 0 {
		t.Fatalf("summary = %s", sum)
	}

	m := s.Metrics()
	if got := m.Get("cells_done"); got != uint64(len(cells)) {
		t.Errorf("cells_done = %d, want %d", got, len(cells))
	}
	if got := m.Get("cells_computed"); got != uint64(len(cells)) {
		t.Errorf("cells_computed = %d, want %d", got, len(cells))
	}
	if m.Get("tx_commits") == 0 || m.Get("tx_begins") == 0 {
		t.Errorf("transaction counters stayed zero: %v", m.Snapshot())
	}

	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("TraceDir is empty after a computed sweep")
	}

	// A resumed sweep serves every cell from cache: no new trace files,
	// cached counter advances.
	dir2 := t.TempDir()
	s2 := New(Config{Jobs: 2, Cache: store, Resume: true, TraceDir: dir2})
	if sum2 := s2.Prewarm(cells); sum2.Cached != len(cells) {
		t.Fatalf("resumed summary = %s", sum2)
	}
	if got := s2.Metrics().Get("cells_cached"); got != uint64(len(cells)) {
		t.Errorf("cells_cached = %d, want %d", got, len(cells))
	}
	if names2, _ := os.ReadDir(dir2); len(names2) != 0 {
		t.Errorf("cache hits wrote %d trace files, want none", len(names2))
	}
}

func TestCellJSONOmitsTraceDir(t *testing.T) {
	c := Cell{Kind: Measure, TraceDir: "/tmp/x"}
	k1, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	c.TraceDir = ""
	k2, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("TraceDir changes the cache key; traced and untraced sweeps would not share a cache")
	}
}
