package harness

import (
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/stats"
)

// STMComparison is an extension experiment (not a paper figure): it
// quantifies the premise of the paper's introduction — "HTM … has lower
// overhead than software transactional memory" — by running the modified
// STAMP benchmarks under the NOrec STM baseline and under the zEC12 HTM
// model, at one and four threads. The expected shape: STM's single-thread
// overhead is far worse than HTM's (per-access instrumentation), while STM
// never aborts on capacity, so the capacity-bound benchmarks (yada,
// labyrinth) close part of the gap at four threads.
func STMComparison(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Extension: HTM (zEC12 model) vs NOrec STM, modified STAMP",
		Note:   "speed-up over the same sequential baseline; STM pays instrumentation but has no capacity limits",
		Header: []string{"benchmark", "HTM t=1", "STM t=1", "HTM t=4", "STM t=4", "STM abort% t=4"},
	}
	var htm1s, stm1s, htm4s, stm4s []float64
	for _, bench := range stamp.Names() {
		row := []string{bench}
		var cells [4]Result
		for i, cfg := range []struct {
			threads int
			useSTM  bool
		}{{1, false}, {1, true}, {4, false}, {4, true}} {
			spec := RunSpec{
				Platform:  platform.ZEC12,
				Benchmark: bench,
				Threads:   cfg.threads,
				Scale:     opts.Scale,
				Seed:      opts.Seed,
				CostScale: opts.CostScale,
				Repeats:   opts.Repeats,
				UseSTM:    cfg.useSTM,
			}
			res, err := opts.runSpec(spec, false)
			if err != nil {
				return t, err
			}
			cells[i] = res
		}
		opts.logf("  %-14s HTM %.2f/%.2f STM %.2f/%.2f", bench,
			cells[0].Speedup, cells[2].Speedup, cells[1].Speedup, cells[3].Speedup)
		row = append(row, f2(cells[0].Speedup), f2(cells[1].Speedup),
			f2(cells[2].Speedup), f2(cells[3].Speedup), f1(cells[3].AbortRatio))
		t.AddRow(row...)
		if bench != "bayes" {
			htm1s = append(htm1s, cells[0].Speedup)
			stm1s = append(stm1s, cells[1].Speedup)
			htm4s = append(htm4s, cells[2].Speedup)
			stm4s = append(stm4s, cells[3].Speedup)
		}
	}
	t.AddRow("geomean", f2(stats.GeoMean(htm1s)), f2(stats.GeoMean(stm1s)),
		f2(stats.GeoMean(htm4s)), f2(stats.GeoMean(stm4s)), "")
	return t, nil
}

// CapacitySweep is a second extension experiment, for the paper's Section 7
// recommendations "Larger Transactional-Store Capacity" and "Better
// Interaction with SMT": it re-runs a benchmark with 12 threads on POWER8's
// 6 cores — so SMT siblings halve each transaction's share of the TMCAM —
// while the TMCAM is scaled from the real 64 entries up to 1024, showing
// where the workload stops being capacity-bound.
func CapacitySweep(opts Options, bench string) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Extension (Section 7): POWER8 TMCAM capacity sweep, " + bench + ", 12 threads (SMT2 per core)",
		Note:   "real POWER8 has 64 entries (8 KB), shared among SMT siblings in transactions",
		Header: []string{"TMCAM entries", "capacity", "speedup t=12", "abort%", "capacity-abort%", "serial%"},
	}
	for _, entries := range []int{64, 128, 256, 512, 1024} {
		spec := RunSpec{
			Platform:     platform.POWER8,
			Benchmark:    bench,
			Threads:      12,
			Scale:        opts.Scale,
			Seed:         opts.Seed,
			CostScale:    opts.CostScale,
			Repeats:      opts.Repeats,
			TMCAMEntries: entries,
		}
		res, err := opts.runSpec(spec, false)
		if err != nil {
			return t, err
		}
		opts.logf("  TMCAM=%d speedup %.2f abort %.1f%%", entries, res.Speedup, res.AbortRatio)
		t.AddRow(f0(entries), byteSize(entries*128),
			f2(res.Speedup), f1(res.AbortRatio),
			f1(res.Breakdown[0]), f1(res.SerializationRatio))
	}
	return t, nil
}
