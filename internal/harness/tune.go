package harness

import (
	"htmcmp/internal/platform"
	"htmcmp/internal/tm"
)

// TuneResult records the winning configuration of a tuning search.
type TuneResult struct {
	Policy tm.Policy
	Mode   platform.BGQMode
	Chunk  int // genome CHUNK_STEP_1 (0 when not applicable)
	Result Result
}

// policyGrid is the retry-count search space for zEC12, Intel and POWER8 —
// a compact version of the paper's per-test-case optimisation ("we optimized
// the parameter values for each test case", Section 5.1). The persistent
// counter includes the value 1 because the paper found yada needs it
// ("reducing the maximum persistent-retry count improves the performance").
var policyGrid = []tm.Policy{
	{LockRetry: 2, PersistentRetry: 1, TransientRetry: 4},
	{LockRetry: 4, PersistentRetry: 1, TransientRetry: 16},
	{LockRetry: 8, PersistentRetry: 2, TransientRetry: 8},
	{LockRetry: 16, PersistentRetry: 2, TransientRetry: 32},
	{LockRetry: 4, PersistentRetry: 8, TransientRetry: 16},
}

// bgqGrid is Blue Gene/Q's search space: the single system retry counter
// crossed with the running mode (Section 5.1 tunes "the maximum retry count
// and the running mode for each benchmark").
var bgqGrid = []struct {
	retries int
	mode    platform.BGQMode
}{
	{4, platform.ShortRunning},
	{16, platform.ShortRunning},
	{4, platform.LongRunning},
	{16, platform.LongRunning},
}

// genomeChunks is the CHUNK_STEP_1 candidates; the paper selects 9 for Blue
// Gene/Q and 2 for the other processors (Section 4).
var genomeChunks = []int{2, 9}

// Tune searches the retry-policy space for spec (single-repeat trials) and
// returns the best configuration together with its re-measured result at the
// requested repeat count. It is the scaled-down analogue of the paper's
// exhaustive per-test-case optimisation.
func Tune(spec RunSpec) (TuneResult, error) {
	spec = spec.withDefaults()
	trial := spec
	trial.Repeats = 1

	var candidates []RunSpec
	if spec.Platform == platform.BlueGeneQ {
		for _, g := range bgqGrid {
			c := trial
			pol := tm.DefaultPolicy(platform.BlueGeneQ)
			pol.TransientRetry = g.retries
			pol.LazySubscription = g.mode == platform.LongRunning
			c.Policy = &pol
			c.Mode = g.mode
			candidates = append(candidates, c)
		}
	} else {
		for i := range policyGrid {
			c := trial
			c.Policy = &policyGrid[i]
			candidates = append(candidates, c)
		}
	}
	// genome additionally tunes its insertion chunk.
	if spec.Benchmark == "genome" && spec.ChunkStep1 == 0 {
		var expanded []RunSpec
		for _, c := range candidates {
			for _, chunk := range genomeChunks {
				cc := c
				cc.ChunkStep1 = chunk
				expanded = append(expanded, cc)
			}
		}
		candidates = expanded
	}

	best := -1
	bestSpeed := 0.0
	for i, c := range candidates {
		r, err := Run(c)
		if err != nil {
			return TuneResult{}, err
		}
		if r.Speedup > bestSpeed {
			bestSpeed = r.Speedup
			best = i
		}
	}
	win := candidates[best]
	win.Repeats = spec.Repeats
	final, err := Run(win)
	if err != nil {
		return TuneResult{}, err
	}
	return TuneResult{
		Policy: *win.Policy,
		Mode:   win.Mode,
		Chunk:  win.ChunkStep1,
		Result: final,
	}, nil
}
