// Package harness runs the paper's experiments: it assembles engines,
// runtimes and benchmarks into measured runs, tunes the per-(platform,
// benchmark) retry counts the way Section 5 does, and renders each table and
// figure of the evaluation as text/CSV.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"htmcmp/internal/adapt"
	"htmcmp/internal/chaos"
	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/stats"
	"htmcmp/internal/tm"
)

// RunSpec describes one measured configuration: a benchmark on a platform
// model with a thread count and policy. Its JSON encoding is the sweep
// cache key, so the frozen list below pins the fields whose zero values
// are already baked into existing on-disk keys; any NEW field must be
// tagged ,omitempty (see the cachekey check in internal/lint).
//
//htmlint:cachekey frozen=Platform,Benchmark,Threads,Scale,Variant,Seed,Mode,CostScale,Repeats,UseHLE,UseSTM,DisablePrefetch,DisableSMTSharing,ResponderWins,ChunkStep1,TMCAMEntries,SpaceSize
type RunSpec struct {
	Platform  platform.Kind
	Benchmark string
	Threads   int
	Scale     stamp.Scale
	Variant   stamp.Variant
	Seed      uint64
	// Policy is the retry policy; zero means DefaultPolicy(Platform).
	// Unlike the other pointer fields it IS serialized: the policy alters
	// measured results, so it belongs to cache identity (nil encodes as
	// null, which existing keys rely on).
	Policy *tm.Policy //htmlint:allow cachekey -- policy shapes results, so it is part of cache identity; nil is baked into existing keys
	// Mode is Blue Gene/Q's running mode.
	Mode platform.BGQMode
	// CostScale scales injected platform overheads (default 1).
	CostScale float64
	// Repeats is how many measured runs to average (paper: 4).
	Repeats int
	// UseHLE runs critical sections through hardware lock elision instead
	// of RTM (Figure 7; Intel only).
	UseHLE bool
	// UseSTM runs critical sections as NOrec software transactions instead
	// of HTM (the STM-overhead comparison of the paper's introduction).
	UseSTM bool
	// Adaptive routes every transaction site through the online mode
	// controller (internal/adapt) instead of the static retry policy; one
	// controller is shared by all threads of a run. Omitted from JSON when
	// false so existing sweep cache keys are unchanged.
	Adaptive bool `json:",omitempty"`
	// DisablePrefetch is the Section 5.1 hardware-prefetch ablation.
	DisablePrefetch bool
	// DisableSMTSharing is the Section 7 SMT ablation.
	DisableSMTSharing bool
	// ResponderWins flips the conflict-resolution policy (ablation).
	ResponderWins bool
	// ChunkStep1 overrides genome's chunking (tuned per platform).
	ChunkStep1 int
	// TMCAMEntries overrides POWER8's 64-entry TMCAM (the Section 7
	// capacity-sweep extension); zero keeps the real hardware value.
	TMCAMEntries int
	// SpaceSize overrides the arena size (bytes).
	SpaceSize int
	// TraceDir, when non-empty, attaches an event tracer to every parallel
	// run and writes a <label>-r<rep>.jsonl event file per repeat into it.
	// Excluded from JSON so sweep cache keys are unaffected by tracing.
	TraceDir string `json:"-"`
	// Telemetry, when set, publishes live counters from every parallel run
	// into the shared registry and drains a small per-run tracer into the
	// rolling event log (the flight recorder's dump source). Like TraceDir
	// it is excluded from JSON so sweep cache keys are unaffected, and
	// publication never charges virtual time, so measured results are
	// identical with it attached.
	Telemetry *obs.Telemetry `json:"-"`
	// Faults, when set, attaches the chaos injector to every parallel run's
	// engine (and, for adaptive runs, the mode controller): injected
	// spurious aborts, forced capacity overflows, STM seqlock contention
	// and controller thrash. The sequential baseline always runs clean, so
	// an afflicted run's speedup reflects the faults' cost. Excluded from
	// JSON so sweep cache keys are unchanged — the sweep never caches an
	// afflicted result anyway (it discards and recomputes clean).
	Faults *chaos.Injector `json:"-"`
}

// Label is a short human-readable identifier for progress reporting.
func (s RunSpec) Label() string {
	l := fmt.Sprintf("%s/%s/t%d", s.Benchmark, s.Platform.Short(), s.Threads)
	switch {
	case s.UseHLE:
		l += "/hle"
	case s.UseSTM:
		l += "/stm"
	case s.Adaptive:
		l += "/adapt"
	}
	if s.DisablePrefetch {
		l += "/nopf"
	}
	if s.TMCAMEntries > 0 {
		l += fmt.Sprintf("/cam%d", s.TMCAMEntries)
	}
	return l
}

func (s RunSpec) withDefaults() RunSpec {
	if s.Repeats <= 0 {
		s.Repeats = 2
	}
	if s.CostScale == 0 {
		s.CostScale = 1
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.SpaceSize == 0 {
		s.SpaceSize = 64 << 20
	}
	if s.Threads <= 0 {
		s.Threads = 4
	}
	return s
}

// platformSpec builds the (possibly capacity-overridden) platform model.
func (s RunSpec) platformSpec() *platform.Spec {
	spec := platform.New(s.Platform)
	if s.TMCAMEntries > 0 && s.Platform == platform.POWER8 {
		spec.LoadCapacity = s.TMCAMEntries * spec.LineSize
		spec.StoreCapacity = spec.LoadCapacity
	}
	return spec
}

func (s RunSpec) policy() tm.Policy {
	if s.Policy != nil {
		return *s.Policy
	}
	p := tm.DefaultPolicy(s.Platform)
	if s.Platform == platform.BlueGeneQ && s.Mode == platform.LongRunning {
		p.LazySubscription = true
	}
	return p
}

// Result is the outcome of a measured RunSpec.
type Result struct {
	Spec RunSpec
	// SeqSeconds and ParSeconds are the mean sequential and parallel
	// region-of-interest durations in virtual cycles (the unit cancels in
	// Speedup).
	SeqSeconds float64
	ParSeconds float64
	// Speedup is the paper's metric: sequential non-HTM time over
	// transactional time on the same platform model.
	Speedup float64
	// SpeedupCI is the 95% confidence half-width over the repeats.
	SpeedupCI float64
	// AbortRatio is the percentage of transaction attempts that aborted.
	AbortRatio float64
	// Breakdown splits the abort ratio into Figure 3's categories.
	Breakdown [htm.NumCategories]float64
	// SerializationRatio is the percentage of commits taken under the
	// global lock.
	SerializationRatio float64
	// TM aggregates the runtime counters of the parallel runs.
	TM tm.Stats
	// Engine aggregates the engine counters of the parallel runs.
	Engine htm.Stats
}

func (s RunSpec) engineConfig(threads int, seed uint64) htm.Config {
	return htm.Config{
		Threads:           threads,
		SpaceSize:         s.SpaceSize,
		Seed:              seed,
		Mode:              s.Mode,
		DisablePrefetch:   s.DisablePrefetch,
		DisableSMTSharing: s.DisableSMTSharing,
		ResponderWins:     s.ResponderWins,
		CostScale:         s.CostScale,
		Virtual:           true,
	}
}

func (s RunSpec) benchConfig(seed uint64) stamp.Config {
	return stamp.Config{
		Scale:      s.Scale,
		Variant:    s.Variant,
		Seed:       seed,
		ChunkStep1: s.ChunkStep1,
	}
}

// traceName is the per-repeat event-file name: the human-readable label
// plus a short digest of the full spec. The label alone does not separate
// every sweep dimension (e.g. original vs modified variants share one
// label), and two cells writing the same file concurrently would corrupt
// it.
func (s RunSpec) traceName(rep int) string {
	b, _ := json.Marshal(s)
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%s-%s-r%d.jsonl",
		strings.ReplaceAll(s.Label(), "/", "-"), hex.EncodeToString(sum[:4]), rep)
}

// runSeqOnce runs one sequential (non-HTM) execution and returns the region
// duration in virtual cycles.
func (s RunSpec) runSeqOnce(seed uint64) (float64, error) {
	cfg := s.engineConfig(1, seed)
	cfg.Space = acquireSpace(cfg.SpaceSize)
	e := htm.New(s.platformSpec(), cfg)
	b, err := stamp.New(s.Benchmark, s.benchConfig(seed))
	if err != nil {
		return 0, err
	}
	b.Setup(e.Thread(0))
	e.ResetClocks()
	b.Run([]stamp.Runner{stamp.SeqRunner{T: e.Thread(0)}})
	elapsed := float64(e.MaxClock())
	if err := b.Validate(e.Thread(0)); err != nil {
		return 0, fmt.Errorf("sequential %s on %s: %w", s.Benchmark, s.Platform, err)
	}
	// Recycle the engine's big allocations. Error/panic paths above skip
	// this and fall back to the GC.
	sp := e.Space()
	e.Release()
	releaseSpace(sp)
	return elapsed, nil
}

// runParOnce runs one parallel execution, returning the region duration in
// virtual cycles and the accumulated runtime/engine statistics.
func (s RunSpec) runParOnce(seed uint64, rep int) (float64, tm.Stats, htm.Stats, error) {
	cfg := s.engineConfig(s.Threads, seed)
	cfg.Space = acquireSpace(cfg.SpaceSize)
	cfg.Faults = s.Faults
	var tracer *obs.Tracer
	if s.TraceDir != "" {
		tracer = obs.NewTracer(s.Threads, obs.DefaultRingEvents)
		cfg.Tracer = tracer
	}
	if s.Telemetry != nil {
		cfg.Metrics = s.Telemetry.Engine
		if tracer == nil {
			// Telemetry alone keeps a small flight-recorder ring per thread —
			// enough recent events to explain an anomaly, cheap enough to
			// leave on for a whole sweep.
			tracer = obs.NewTracer(s.Threads, obs.DefaultRingEvents/16)
			cfg.Tracer = tracer
		}
	}
	e := htm.New(s.platformSpec(), cfg)
	b, err := stamp.New(s.Benchmark, s.benchConfig(seed))
	if err != nil {
		return 0, tm.Stats{}, htm.Stats{}, err
	}
	b.Setup(e.Thread(0))
	lock := tm.NewGlobalLock(e)
	pol := s.policy()
	var ctl *adapt.Controller
	if s.Adaptive {
		// One controller per run: every thread's executor feeds the same
		// per-site windows, so demotion decisions reflect run-wide history.
		ctl = adapt.NewController(adapt.Config{Faults: s.Faults})
	}
	runners := make([]stamp.Runner, s.Threads)
	execs := make([]*tm.Executor, s.Threads)
	for i := range runners {
		execs[i] = tm.NewExecutorConfig(e.Thread(i), lock, tm.Config{Policy: pol, Adapt: ctl})
		switch {
		case s.UseSTM:
			runners[i] = stamp.STMRunner{X: execs[i]}
		case s.UseHLE:
			runners[i] = stamp.HLERunner{X: execs[i]}
		default:
			runners[i] = stamp.TMRunner{X: execs[i]}
		}
	}
	e.ResetStats()
	e.ResetClocks()
	b.Run(runners)
	elapsed := float64(e.MaxClock())
	if err := b.Validate(e.Thread(0)); err != nil {
		return 0, tm.Stats{}, htm.Stats{}, fmt.Errorf("parallel %s on %s (%d threads): %w",
			s.Benchmark, s.Platform, s.Threads, err)
	}
	var agg tm.Stats
	for _, x := range execs {
		agg.Add(&x.Stats)
	}
	if tracer != nil {
		if s.TraceDir != "" {
			if err := obs.WriteJSONLStreamFile(filepath.Join(s.TraceDir, s.traceName(rep)),
				obs.HeaderFor(tracer), tracer.Events()); err != nil {
				return 0, tm.Stats{}, htm.Stats{}, err
			}
		}
		if s.Telemetry != nil {
			// Drained post-run (producers quiescent) into the rolling log the
			// flight recorder dumps from.
			s.Telemetry.Log.Drain(fmt.Sprintf("%s#r%d", s.Label(), rep), tracer)
		}
	}
	engStats := e.Stats()
	sp := e.Space()
	e.Release()
	releaseSpace(sp)
	return elapsed, agg, engStats, nil
}

// Run measures spec: Repeats sequential runs and Repeats parallel runs, and
// reports the mean speedup with its 95% confidence interval plus the abort
// statistics of the parallel runs.
func Run(spec RunSpec) (Result, error) {
	spec = spec.withDefaults()
	res := Result{Spec: spec}

	// Virtual-time runs are deterministic for a fixed seed, so repeats vary
	// the workload seed (the paper instead averaged repeated runs of one
	// noisy hardware execution).
	seqTimes := make([]float64, 0, spec.Repeats)
	for i := 0; i < spec.Repeats; i++ {
		s, err := spec.runSeqOnce(spec.Seed + uint64(i)*1009)
		if err != nil {
			return res, err
		}
		seqTimes = append(seqTimes, s)
	}
	res.SeqSeconds = stats.Mean(seqTimes)

	parTimes := make([]float64, 0, spec.Repeats)
	speedups := make([]float64, 0, spec.Repeats)
	for i := 0; i < spec.Repeats; i++ {
		p, tmStats, engStats, err := spec.runParOnce(spec.Seed+uint64(i)*1009, i)
		if err != nil {
			return res, err
		}
		parTimes = append(parTimes, p)
		speedups = append(speedups, seqTimes[i]/p)
		res.TM.Add(&tmStats)
		res.Engine = mergeEngine(res.Engine, engStats)
	}
	res.ParSeconds = stats.Mean(parTimes)
	res.Speedup = stats.Mean(speedups)
	res.SpeedupCI = stats.CI95(speedups)
	res.AbortRatio = res.TM.AbortRatio()
	res.Breakdown = res.TM.CategoryBreakdown()
	res.SerializationRatio = res.TM.SerializationRatio()
	return res, nil
}

func mergeEngine(a, b htm.Stats) htm.Stats {
	a.Begins += b.Begins
	a.Commits += b.Commits
	a.Aborts += b.Aborts
	for i := range a.AbortsByReason {
		a.AbortsByReason[i] += b.AbortsByReason[i]
	}
	a.TxLoads += b.TxLoads
	a.TxStores += b.TxStores
	a.SpecIDWaits += b.SpecIDWaits
	if b.MaxReadLines > a.MaxReadLines {
		a.MaxReadLines = b.MaxReadLines
	}
	if b.MaxWriteLines > a.MaxWriteLines {
		a.MaxWriteLines = b.MaxWriteLines
	}
	return a
}
