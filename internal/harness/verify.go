package harness

import (
	"fmt"

	"htmcmp/internal/htm"
	"htmcmp/internal/stamp"
	"htmcmp/internal/tm"
)

// Verify cross-checks one experiment cell: the benchmark runs to completion
// from the same seed under the cell's own transactional runtime, the NOrec
// STM, and the degenerate single-global-lock baseline. Every execution must
// pass the benchmark's own Validate consistency check and all three must
// complete the same number of work units. A non-nil error means the modes
// disagree — a correctness bug in the engine or runtime, not a workload
// property.
//
// Final memory images are deliberately NOT compared: STAMP data structures
// are interleaving-dependent (tree shapes, list orders, allocation
// addresses), so bit-identity across modes is not part of the contract —
// semantic consistency (Validate) and completed work (Units) are. For
// benchmarks that declare stamp.DynamicWork (yada: processing one item can
// spawn new ones, so the total is schedule-dependent), the Units comparison
// is skipped too and Validate alone carries the contract.
func Verify(spec RunSpec) error {
	spec = spec.withDefaults()
	modes := []string{"tm", "stm", "lock"}
	switch {
	case spec.UseSTM:
		modes = []string{"stm", "lock"}
	case spec.UseHLE:
		modes = []string{"hle", "stm", "lock"}
	}
	units := make([]int, len(modes))
	dynamic := false
	for i, mode := range modes {
		u, dyn, err := spec.runVerifyOnce(mode)
		if err != nil {
			return err
		}
		units[i] = u
		dynamic = dynamic || dyn
	}
	if dynamic {
		return nil
	}
	for i := 1; i < len(modes); i++ {
		if units[i] != units[0] {
			return fmt.Errorf("verify %s: completed units diverge: %s=%d, %s=%d",
				spec.Label(), modes[0], units[0], modes[i], units[i])
		}
	}
	return nil
}

// runVerifyOnce executes one parallel run with every critical section
// dispatched through the named runner mode and returns the completed work
// units after a successful Validate, plus whether the benchmark declares
// its unit count interleaving-dependent (stamp.DynamicWork).
func (s RunSpec) runVerifyOnce(mode string) (int, bool, error) {
	cfg := s.engineConfig(s.Threads, s.Seed)
	cfg.Space = acquireSpace(cfg.SpaceSize)
	// Chaos rides into the verification runs too: the differential modes
	// must agree under injected aborts, not only on clean executions.
	cfg.Faults = s.Faults
	e := htm.New(s.platformSpec(), cfg)
	b, err := stamp.New(s.Benchmark, s.benchConfig(s.Seed))
	if err != nil {
		return 0, false, err
	}
	b.Setup(e.Thread(0))
	lock := tm.NewGlobalLock(e)
	pol := s.policy()
	runners := make([]stamp.Runner, s.Threads)
	for i := range runners {
		x := tm.NewExecutor(e.Thread(i), lock, pol)
		switch mode {
		case "stm":
			runners[i] = stamp.STMRunner{X: x}
		case "hle":
			runners[i] = stamp.HLERunner{X: x}
		case "lock":
			runners[i] = stamp.LockRunner{X: x}
		default:
			runners[i] = stamp.TMRunner{X: x}
		}
	}
	b.Run(runners)
	if err := b.Validate(e.Thread(0)); err != nil {
		return 0, false, fmt.Errorf("verify %s under %s: %w", s.Label(), mode, err)
	}
	dyn, _ := b.(stamp.DynamicWork)
	units := b.Units()
	sp := e.Space()
	e.Release()
	releaseSpace(sp)
	return units, dyn != nil && dyn.UnitsDynamic(), nil
}
