package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the text analogue of one of the
// paper's tables or figures.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values (no escaping needed: cells
// are numeric or simple identifiers).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// f0 formats an integer.
func f0(x int) string { return fmt.Sprintf("%d", x) }
