package harness

import (
	"strconv"

	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/stats"
)

func itoa(n uint64) string { return strconv.FormatUint(n, 10) }

// AdaptiveBenches are the benchmarks of the adaptive-runtime comparison: the
// capacity-bound programs where the controller's early STM demotion should
// pay off (labyrinth, yada), plus a conflict-bound and a mostly-clean one as
// regressions guards.
var AdaptiveBenches = []string{"labyrinth", "yada", "intruder", "vacation-low"}

// AdaptiveComparison measures the online mode controller against the static
// retry policies: for each (benchmark, platform) point at four threads it
// reports the speed-up under the platform default policy, under the best
// static policy found by the retry-count search, and under the adaptive
// controller, together with the adaptive run's commit-mode mix. The paper
// tunes retry counts offline per test case (Section 5); the controller is the
// online answer to the same problem, so the interesting column is
// "adaptive vs best-static", with "default" as the untuned baseline.
func AdaptiveComparison(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title: "Adaptive runtime: online controller vs static retry policies, 4 threads",
		Note: "speed-up over sequential; mode mix is the adaptive run's commit split " +
			"htm/stm/lock in %; switches counts steady-mode transitions",
		Header: []string{"benchmark", "platform", "default", "best-static", "adaptive",
			"adapt/static", "htm%", "stm%", "lock%", "switches"},
	}
	var defs, tuned, adap []float64
	for _, bench := range AdaptiveBenches {
		for _, k := range platform.Kinds() {
			base := RunSpec{
				Platform:  k,
				Benchmark: bench,
				Threads:   4,
				Scale:     opts.Scale,
				Variant:   stamp.Modified,
				Seed:      opts.Seed,
				CostScale: opts.CostScale,
				Repeats:   opts.Repeats,
			}
			if k == platform.BlueGeneQ {
				base.Mode = bgqDefaultMode(bench)
			}
			def, err := opts.runSpec(base, false)
			if err != nil {
				return t, err
			}
			best, err := opts.runSpec(base, true)
			if err != nil {
				return t, err
			}
			aSpec := base
			aSpec.Adaptive = true
			ad, err := opts.runSpec(aSpec, false)
			if err != nil {
				return t, err
			}
			opts.logf("  %-14s %-12s default %.2f best-static %.2f adaptive %.2f",
				bench, k, def.Speedup, best.Speedup, ad.Speedup)
			ratio := 0.0
			if best.Speedup > 0 {
				ratio = ad.Speedup / best.Speedup
			}
			h, s, l := commitMix(ad)
			t.AddRow(bench, k.Short(), f2(def.Speedup), f2(best.Speedup), f2(ad.Speedup),
				f2(ratio), f1(h), f1(s), f1(l), itoa(ad.TM.ModeSwitches))
			defs = append(defs, def.Speedup)
			tuned = append(tuned, best.Speedup)
			adap = append(adap, ad.Speedup)
		}
	}
	t.AddRow("geomean", "", f2(stats.GeoMean(defs)), f2(stats.GeoMean(tuned)),
		f2(stats.GeoMean(adap)), "", "", "", "", "")
	return t, nil
}

// commitMix splits an adaptive run's commits into hardware, software and
// lock percentages.
func commitMix(r Result) (htmPct, stmPct, lockPct float64) {
	total := float64(r.TM.HTMCommits + r.TM.STMCommits + r.TM.IrrevocableCommits)
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(r.TM.HTMCommits) / total,
		100 * float64(r.TM.STMCommits) / total,
		100 * float64(r.TM.IrrevocableCommits) / total
}
