package harness

import (
	"fmt"
	"io"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
	"htmcmp/internal/stats"
)

// Exec abstracts how measurement cells are executed. Experiments request
// every measured point through it, which lets a sweep scheduler first record
// the flat cell list (a planning pass), then serve the very same requests
// from a concurrently precomputed, cached result set. A nil Exec runs each
// point inline, exactly as the serial code always has.
type Exec interface {
	// Measure runs (or replays) one measured cell. With tune set, the
	// point goes through the Tune retry-count search instead of a plain
	// Run, and the tuned re-measured Result is returned.
	Measure(spec RunSpec, tune bool) (Result, error)
}

// Options configure an experiment reproduction.
type Options struct {
	// Scale selects the input size. The zero value is ScaleTest; the CLI
	// drivers default their -scale flag to sim explicitly.
	Scale stamp.Scale
	// Repeats per measured point (paper: 4; default 2).
	Repeats int
	// Tune searches retry counts per test case as the paper does; when
	// false, platform defaults are used (much faster).
	Tune bool
	// CostScale scales injected platform overheads (default 1).
	CostScale float64
	// Seed for deterministic workloads.
	Seed uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Exec, when non-nil, executes measurement cells (sweep scheduling /
	// caching); nil executes them inline.
	Exec Exec
}

func (o Options) withDefaults() Options {
	if o.Repeats <= 0 {
		o.Repeats = 2
	}
	if o.CostScale == 0 {
		o.CostScale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// runSpec executes one cell through Exec when set, or inline otherwise.
func (o Options) runSpec(spec RunSpec, tune bool) (Result, error) {
	if o.Exec != nil {
		return o.Exec.Measure(spec, tune)
	}
	if tune {
		tr, err := Tune(spec)
		if err != nil {
			return Result{}, err
		}
		return tr.Result, nil
	}
	return Run(spec)
}

// measure runs (tuned or default) one benchmark/platform/threads point.
func (o Options) measure(k platform.Kind, bench string, threads int, variant stamp.Variant) (Result, error) {
	spec := RunSpec{
		Platform:  k,
		Benchmark: bench,
		Threads:   threads,
		Scale:     o.Scale,
		Variant:   variant,
		Seed:      o.Seed,
		CostScale: o.CostScale,
		Repeats:   o.Repeats,
	}
	if k == platform.BlueGeneQ {
		// The paper tunes Blue Gene/Q's running mode per benchmark
		// (Section 5.1): long-running mode pays one L1 invalidation per
		// transaction but serves transactional loads from the L1, which
		// wins for benchmarks with large transactions; short-running mode
		// wins for the small-transaction benchmarks.
		spec.Mode = bgqDefaultMode(bench)
		if bench == "genome" && variant == stamp.Modified {
			spec.ChunkStep1 = 9 // the paper's tuned value (Section 4)
		}
	}
	res, err := o.runSpec(spec, o.Tune)
	if err != nil {
		return Result{}, err
	}
	if o.Tune {
		o.logf("  %-14s %-12s t=%-2d tuned -> speedup %.2f", bench, k, threads, res.Speedup)
	} else {
		o.logf("  %-14s %-12s t=%-2d speedup %.2f abort %.1f%%", bench, k, threads, res.Speedup, res.AbortRatio)
	}
	return res, nil
}

// bgqDefaultMode returns the untuned-run default running mode for Blue
// Gene/Q, following the Section 5.1 observation that the best mode depends
// on transaction length. The Tune search still explores both.
func bgqDefaultMode(bench string) platform.BGQMode {
	switch bench {
	case "labyrinth", "yada", "bayes":
		return platform.LongRunning
	default:
		return platform.ShortRunning
	}
}

// Table1 renders the HTM implementation comparison of the paper's Table 1
// from the platform models.
func Table1() Table {
	t := Table{
		Title:  "Table 1: HTM implementations",
		Header: []string{"Processor type"},
	}
	specs := platform.All()
	for _, s := range specs {
		t.Header = append(t.Header, s.Kind.String())
	}
	row := func(label string, f func(s *platform.Spec) string) {
		cells := []string{label}
		for _, s := range specs {
			cells = append(cells, f(s))
		}
		t.AddRow(cells...)
	}
	row("Conflict-detection granularity", func(s *platform.Spec) string {
		if s.Kind == platform.BlueGeneQ {
			return "8 - 128 bytes"
		}
		return fmt.Sprintf("%d bytes", s.LineSize)
	})
	row("Transactional-load capacity", func(s *platform.Spec) string {
		if s.Kind == platform.BlueGeneQ {
			return "20 MB (1.25 MB per core)"
		}
		return byteSize(s.LoadCapacity)
	})
	row("Transactional-store capacity", func(s *platform.Spec) string {
		if s.Kind == platform.BlueGeneQ {
			return "20 MB (1.25 MB per core)"
		}
		return byteSize(s.StoreCapacity)
	})
	row("L1 data cache", func(s *platform.Spec) string { return s.L1Desc })
	row("L2 data cache", func(s *platform.Spec) string { return s.L2Desc })
	row("SMT level", func(s *platform.Spec) string {
		if s.SMT <= 1 {
			return "None"
		}
		return fmt.Sprintf("%d", s.SMT)
	})
	row("Kinds of abort reasons", func(s *platform.Spec) string {
		if s.AbortReasonKinds == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", s.AbortReasonKinds)
	})
	row("Cores / clock", func(s *platform.Spec) string {
		return fmt.Sprintf("%d cores, %s", s.Cores, s.Freq)
	})
	return t
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

// Fig2And3 reproduces Figures 2 and 3: 4-thread speed-up ratios and
// transaction-abort breakdowns of the modified STAMP benchmarks on all four
// platforms. bayes is measured but excluded from the geometric mean, as in
// the paper.
func Fig2And3(opts Options) (fig2, fig3 Table, err error) {
	opts = opts.withDefaults()
	kinds := platform.Kinds()
	fig2 = Table{
		Title:  "Figure 2: speed-up over sequential, modified STAMP, 4 threads",
		Note:   "error column is the 95% confidence half-width; bayes excluded from geomean",
		Header: []string{"benchmark"},
	}
	for _, k := range kinds {
		fig2.Header = append(fig2.Header, k.String(), "±")
	}
	fig3 = Table{
		Title:  "Figure 3: transaction-abort ratios (%), modified STAMP, 4 threads",
		Note:   "categories: capacity / data-conflict / other / lock-conflict (BG/Q reports no breakdown)",
		Header: []string{"benchmark", "platform", "total%", "capacity", "conflict", "other", "lock"},
	}
	speedups := map[platform.Kind][]float64{}
	for _, bench := range stamp.Names() {
		row := []string{bench}
		for _, k := range kinds {
			res, err := opts.measure(k, bench, 4, stamp.Modified)
			if err != nil {
				return fig2, fig3, err
			}
			row = append(row, f2(res.Speedup), f2(res.SpeedupCI))
			if bench != "bayes" {
				speedups[k] = append(speedups[k], res.Speedup)
			}
			br := res.Breakdown
			fig3.AddRow(bench, k.Short(), f1(res.AbortRatio),
				f1(br[htm.CategoryCapacity]), f1(br[htm.CategoryDataConflict]),
				f1(br[htm.CategoryOther]), f1(br[htm.CategoryLockConflict]))
		}
		fig2.AddRow(row...)
	}
	geo := []string{"geomean"}
	for _, k := range kinds {
		geo = append(geo, f2(stats.GeoMean(speedups[k])), "")
	}
	fig2.AddRow(geo...)
	return fig2, fig3, nil
}

// Fig4 reproduces Figure 4: original vs modified STAMP speed-ups with four
// threads. Only the benchmarks the paper changed differ between variants;
// the geometric mean covers all programs, with the unchanged ones measured
// once and reused, as their two variants are identical.
func Fig4(opts Options) (Table, error) {
	opts = opts.withDefaults()
	kinds := platform.Kinds()
	t := Table{
		Title:  "Figure 4: original vs modified STAMP speed-up, 4 threads",
		Header: []string{"benchmark", "platform", "original", "modified", "gain"},
	}
	isModified := map[string]bool{}
	for _, n := range stamp.ModifiedNames() {
		isModified[n] = true
	}
	orig := map[platform.Kind][]float64{}
	mod := map[platform.Kind][]float64{}
	for _, bench := range stamp.Names() {
		for _, k := range kinds {
			resMod, err := opts.measure(k, bench, 4, stamp.Modified)
			if err != nil {
				return t, err
			}
			resOrig := resMod
			if isModified[bench] {
				resOrig, err = opts.measure(k, bench, 4, stamp.Original)
				if err != nil {
					return t, err
				}
			}
			if bench != "bayes" {
				orig[k] = append(orig[k], resOrig.Speedup)
				mod[k] = append(mod[k], resMod.Speedup)
			}
			if isModified[bench] {
				gain := 0.0
				if resOrig.Speedup > 0 {
					gain = resMod.Speedup / resOrig.Speedup
				}
				t.AddRow(bench, k.Short(), f2(resOrig.Speedup), f2(resMod.Speedup), f2(gain))
			}
		}
	}
	for _, k := range kinds {
		t.AddRow("geomean", k.Short(), f2(stats.GeoMean(orig[k])), f2(stats.GeoMean(mod[k])), "")
	}
	return t, nil
}

// Fig5Threads is the thread sweep of Figure 5.
var Fig5Threads = []int{1, 2, 4, 8, 16}

// Fig5 reproduces Figure 5: scalability of the modified STAMP benchmarks
// with 1–16 threads. Points beyond a platform's hardware-thread count are
// skipped (Intel Core stops at 8), and points beyond its physical core count
// correspond to the paper's dotted SMT lines.
func Fig5(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Figure 5: speed-up vs thread count, modified STAMP",
		Note:   "* marks SMT points (threads > physical cores, dotted in the paper)",
		Header: []string{"benchmark", "platform", "t=1", "t=2", "t=4", "t=8", "t=16"},
	}
	for _, bench := range stamp.Names() {
		for _, k := range platform.Kinds() {
			spec := platform.New(k)
			row := []string{bench, k.Short()}
			for _, n := range Fig5Threads {
				if n > spec.MaxThreads() {
					row = append(row, "-")
					continue
				}
				res, err := opts.measure(k, bench, n, stamp.Modified)
				if err != nil {
					return t, err
				}
				cell := f2(res.Speedup)
				if n > spec.Cores {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig7 reproduces Figure 7: RTM vs HLE speed-ups on Intel Core with four
// threads. RTM retry counts are tuned (when opts.Tune); HLE has nothing to
// tune — that asymmetry is the figure's point.
func Fig7(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Figure 7: RTM vs HLE speed-up on Intel Core, 4 threads",
		Header: []string{"benchmark", "RTM", "HLE", "HLE/RTM"},
	}
	var rtms, hles []float64
	for _, bench := range stamp.Names() {
		rtm, err := opts.measure(platform.IntelCore, bench, 4, stamp.Modified)
		if err != nil {
			return t, err
		}
		hleSpec := RunSpec{
			Platform:  platform.IntelCore,
			Benchmark: bench,
			Threads:   4,
			Scale:     opts.Scale,
			Seed:      opts.Seed,
			CostScale: opts.CostScale,
			Repeats:   opts.Repeats,
			UseHLE:    true,
		}
		hle, err := opts.runSpec(hleSpec, false)
		if err != nil {
			return t, err
		}
		opts.logf("  %-14s HLE speedup %.2f", bench, hle.Speedup)
		ratio := 0.0
		if rtm.Speedup > 0 {
			ratio = hle.Speedup / rtm.Speedup
		}
		t.AddRow(bench, f2(rtm.Speedup), f2(hle.Speedup), f2(ratio))
		if bench != "bayes" {
			rtms = append(rtms, rtm.Speedup)
			hles = append(hles, hle.Speedup)
		}
	}
	gr, gh := stats.GeoMean(rtms), stats.GeoMean(hles)
	t.AddRow("geomean", f2(gr), f2(gh), f2(gh/gr))
	return t, nil
}

// PrefetchAblation reproduces the Section 5.1 experiment: kmeans on Intel
// Core with the hardware prefetcher enabled vs disabled (the paper measured
// abort ratios dropping from 16%/24% to 10%/10% and speed-ups improving from
// 3.5/3.7 to 3.9/4.0).
func PrefetchAblation(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Section 5.1: Intel hardware-prefetch ablation (kmeans, 4 threads)",
		Header: []string{"benchmark", "prefetch", "speedup", "abort%"},
	}
	for _, bench := range []string{"kmeans-high", "kmeans-low"} {
		for _, disable := range []bool{false, true} {
			spec := RunSpec{
				Platform:        platform.IntelCore,
				Benchmark:       bench,
				Threads:         4,
				Scale:           opts.Scale,
				Seed:            opts.Seed,
				CostScale:       opts.CostScale,
				Repeats:         opts.Repeats,
				DisablePrefetch: disable,
			}
			res, err := opts.runSpec(spec, false)
			if err != nil {
				return t, err
			}
			state := "on"
			if disable {
				state = "off"
			}
			opts.logf("  %-12s prefetch %-3s speedup %.2f abort %.1f%%", bench, state, res.Speedup, res.AbortRatio)
			t.AddRow(bench, state, f2(res.Speedup), f1(res.AbortRatio))
		}
	}
	return t, nil
}
