package stamp

import (
	"fmt"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
)

func init() {
	register("ssca2", func(cfg Config) Benchmark { return newSSCA2(cfg) })
}

// ssca2 is STAMP's port of the SSCA2 graph-analysis kernels. The
// transactional region of interest is kernel 1, graph construction: threads
// partition a pre-generated edge list and insert each edge into per-vertex
// adjacency arrays. Each insertion is a tiny transaction (read the vertex's
// fill index, bump it, write the slot) — the many-short-transactions profile
// that exhausts Blue Gene/Q's speculation-ID pool in the paper (Sections 5.1
// and 5.3).
//
// Memory layout per vertex: [count][slot_0 … slot_{maxDeg-1}] in one record;
// the edge list itself is read-only input.
type ssca2 struct {
	cfg       Config
	nVertices int
	nEdges    int
	maxDeg    int

	edgesU, edgesV []int // read-only edge endpoints (Go mirror of input)

	vtx []mem.Addr // per-vertex adjacency record

	units int
}

func newSSCA2(cfg Config) *ssca2 {
	s := &ssca2{cfg: cfg}
	switch cfg.Scale {
	case ScaleTest:
		s.nVertices, s.nEdges = 128, 512
	case ScaleSim:
		s.nVertices, s.nEdges = 1024, 8192
	default:
		s.nVertices, s.nEdges = 4096, 32768
	}
	return s
}

func (s *ssca2) Name() string { return "ssca2" }

func (s *ssca2) Setup(t *htm.Thread) {
	rng := prng.New(s.cfg.Seed ^ 0x7373636132) // "ssca2"
	// R-MAT-ish skew: a quarter of the endpoints land in a small hot set,
	// approximating SSCA2's clustered graphs.
	pick := func() int {
		if rng.Bernoulli(0.25) {
			return rng.Intn(s.nVertices / 16)
		}
		return rng.Intn(s.nVertices)
	}
	s.edgesU = make([]int, s.nEdges)
	s.edgesV = make([]int, s.nEdges)
	deg := make([]int, s.nVertices)
	for i := 0; i < s.nEdges; i++ {
		u, v := pick(), pick()
		s.edgesU[i], s.edgesV[i] = u, v
		deg[u]++
	}
	s.maxDeg = 8
	for _, d := range deg {
		if d+1 > s.maxDeg {
			s.maxDeg = d + 1
		}
	}
	s.vtx = make([]mem.Addr, s.nVertices)
	for v := 0; v < s.nVertices; v++ {
		s.vtx[v] = t.Alloc((1 + s.maxDeg) * 8)
	}
}

func (s *ssca2) Run(runners []Runner) {
	n := len(runners)
	runWorkers(runners, func(tid int, r Runner) {
		lo := tid * s.nEdges / n
		hi := (tid + 1) * s.nEdges / n
		for i := lo; i < hi; i++ {
			u, v := s.edgesU[i], s.edgesV[i]
			rec := s.vtx[u]
			r.Thread().Work(260) // R-MAT edge generation and permutation arithmetic
			r.Atomic(func(t *htm.Thread) {
				cnt := t.Load64(rec)
				t.Store64(rec+8+cnt*8, uint64(v)+1)
				t.Store64(rec, cnt+1)
			})
		}
	})
	s.units = s.nEdges
}

func (s *ssca2) Validate(t *htm.Thread) error {
	want := make(map[int]int, s.nVertices)
	for i := 0; i < s.nEdges; i++ {
		want[s.edgesU[i]]++
	}
	total := 0
	for v := 0; v < s.nVertices; v++ {
		cnt := int(t.Load64(s.vtx[v]))
		if cnt != want[v] {
			return fmt.Errorf("ssca2: vertex %d degree %d, want %d (lost insertions)", v, cnt, want[v])
		}
		for j := 0; j < cnt; j++ {
			e := t.Load64(s.vtx[v] + 8 + uint64(j)*8)
			if e == 0 || int(e-1) >= s.nVertices {
				return fmt.Errorf("ssca2: vertex %d slot %d holds invalid endpoint %d", v, j, e)
			}
		}
		total += cnt
	}
	if total != s.nEdges {
		return fmt.Errorf("ssca2: %d edges inserted, want %d", total, s.nEdges)
	}
	return nil
}

func (s *ssca2) Units() int { return s.units }
