package stamp

import (
	"fmt"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
	"htmcmp/internal/txds"
)

func init() {
	register("yada", func(cfg Config) Benchmark { return newYada(cfg) })
}

// yada is STAMP's Delaunay mesh refinement (Ruppert's algorithm). Each
// transaction pops a bad triangle from a shared work heap, expands a cavity
// around it (reading a neighbourhood of the mesh), retriangulates the cavity
// (killing its triangles and wiring |cavity|+2 new ones into the boundary),
// and pushes newly created bad triangles back onto the heap.
//
// Substitution note (DESIGN.md): exact circumcircle geometry is replaced by
// a synthetic mesh — triangles are records with adjacency links, per-triangle
// deterministic cavity-size targets drawn from yada's cavity-size range, and
// a generation counter standing in for element quality. What HTM observes is
// identical in shape: large mixed read/write footprints (cavity + boundary +
// new triangles), a contended work heap, and cascading work generation. The
// footprints exceed zEC12's and POWER8's store budgets, which is why only
// Blue Gene/Q scales on yada in the paper (Section 5.1).
//
// Triangle record: [alive][gen][seed][bad][nNbr][nbr_0 .. nbr_{K-1}].
type yada struct {
	cfg       Config
	nInitial  int
	nBad      int
	maxGen    int
	cavityMin int
	cavityMax int

	heap txds.Heap

	mu        sync.Mutex
	triangles []mem.Addr // all ever-created triangles (for validation)

	refinements int // bad triangles actually refined
	preempted   int // bad triangles killed by another cavity first
	spawned     int // cascade triangles created bad
}

const (
	triAlive  = 0
	triGen    = 1
	triSeed   = 2
	triBad    = 3
	triNNbr   = 4
	triNbr0   = 5
	triMaxNbr = 8
	triWords  = triNbr0 + triMaxNbr
)

func newYada(cfg Config) *yada {
	y := &yada{cfg: cfg, maxGen: 4, cavityMin: 6, cavityMax: 20}
	switch cfg.Scale {
	case ScaleTest:
		y.nInitial, y.nBad = 128, 16
	case ScaleSim:
		y.nInitial, y.nBad = 1024, 96
	default:
		y.nInitial, y.nBad = 4096, 384
	}
	return y
}

func (y *yada) Name() string { return "yada" }

func (y *yada) newTriangle(t *htm.Thread, gen int, seed uint64) mem.Addr {
	// STAMP's element_t carries coordinates, circumcenter and quality
	// doubles — ~256 bytes per element; reproduce that footprint so the
	// per-platform store-capacity story (zEC12's 8 KB gathering store
	// cache, POWER8's 64-entry TMCAM) matches the paper's.
	tri := t.AllocAligned(triWords*8, 256)
	t.Store64(tri+triAlive*8, 1)
	t.Store64(tri+triGen*8, uint64(gen))
	t.Store64(tri+triSeed*8, seed)
	t.Store64(tri+triBad*8, 0)
	t.Store64(tri+triNNbr*8, 0)
	return tri
}

// link makes a and b mutual neighbours if both have spare slots and are not
// already linked.
func (y *yada) link(t *htm.Thread, a, b mem.Addr) {
	if a == b {
		return
	}
	na := t.Load64(a + triNNbr*8)
	nb := t.Load64(b + triNNbr*8)
	if na >= triMaxNbr || nb >= triMaxNbr {
		return
	}
	for i := uint64(0); i < na; i++ {
		if t.Load64(a+triNbr0*8+i*8) == uint64(b) {
			return
		}
	}
	t.Store64(a+triNbr0*8+na*8, uint64(b))
	t.Store64(a+triNNbr*8, na+1)
	t.Store64(b+triNbr0*8+nb*8, uint64(a))
	t.Store64(b+triNNbr*8, nb+1)
}

// unlink removes dead from alive's neighbour list.
func (y *yada) unlink(t *htm.Thread, alive, dead mem.Addr) {
	n := t.Load64(alive + triNNbr*8)
	for i := uint64(0); i < n; i++ {
		if t.Load64(alive+triNbr0*8+i*8) == uint64(dead) {
			last := t.Load64(alive + triNbr0*8 + (n-1)*8)
			t.Store64(alive+triNbr0*8+i*8, last)
			t.Store64(alive+triNNbr*8, n-1)
			return
		}
	}
}

func (y *yada) Setup(t *htm.Thread) {
	rng := prng.New(y.cfg.Seed ^ 0x79616461) // "yada"
	y.triangles = make([]mem.Addr, 0, y.nInitial*4)
	y.heap = txds.NewHeap(t, y.nBad*2)
	// Initial mesh: a ring with random chords, degree <= K.
	for i := 0; i < y.nInitial; i++ {
		tri := y.newTriangle(t, y.maxGen, rng.Uint64()) // good by default
		y.triangles = append(y.triangles, tri)
	}
	for i := 0; i < y.nInitial; i++ {
		y.link(t, y.triangles[i], y.triangles[(i+1)%y.nInitial])
	}
	for i := 0; i < y.nInitial; i++ {
		y.link(t, y.triangles[i], y.triangles[rng.Intn(y.nInitial)])
	}
	// Mark the initial bad triangles (generation 0) and queue them.
	perm := rng.Perm(y.nInitial)
	for _, pi := range perm[:y.nBad] {
		tri := y.triangles[pi]
		t.Store64(tri+triGen*8, 0)
		t.Store64(tri+triBad*8, 1)
		y.heap.Push(t, int64(rng.Intn(1<<30)), uint64(tri))
	}
	y.refinements, y.preempted, y.spawned = 0, 0, 0
}

// cavityTarget derives the deterministic cavity size for a triangle from its
// seed, within yada's observed cavity-size range.
func (y *yada) cavityTarget(seed uint64) int {
	span := y.cavityMax - y.cavityMin + 1
	return y.cavityMin + int(txds.Hash64(seed)%uint64(span))
}

func (y *yada) Run(runners []Runner) {
	runWorkers(runners, func(tid int, r Runner) {
		rng := prng.Derive(y.cfg.Seed^0x726566, tid) // "ref"
		var created []mem.Addr
		for {
			didWork := false
			preempted := 0
			spawnedOne := false
			// Transaction 1 (STAMP: TM_BEGIN; heap_remove; TM_END): grab a
			// bad triangle. Stale entries for already-killed triangles are
			// skipped here; their chains were accounted by their killers.
			var tri mem.Addr
			empty := false
			r.Atomic(func(t *htm.Thread) {
				tri, empty = 0, false
				for {
					_, v, ok := y.heap.Pop(t)
					if !ok {
						empty = true
						return
					}
					if t.Load64(mem.Addr(v)+triAlive*8) != 0 {
						tri = mem.Addr(v)
						return
					}
				}
			})
			if empty {
				return
			}
			// Transaction 2: the refinement itself.
			r.Atomic(func(t *htm.Thread) {
				created = created[:0]
				didWork, preempted, spawnedOne = false, 0, false
				if t.Load64(tri+triAlive*8) == 0 {
					// Killed by a neighbouring cavity between the two
					// transactions; its killer counted the preemption.
					return
				}
				didWork = true
				gen := int(t.Load64(tri + triGen*8))
				seed := t.Load64(tri + triSeed*8)

				// Cavity expansion: BFS over alive neighbours.
				target := y.cavityTarget(seed)
				cavity := []mem.Addr{tri}
				inCavity := map[mem.Addr]bool{tri: true}
				for qi := 0; qi < len(cavity) && len(cavity) < target; qi++ {
					cur := cavity[qi]
					n := t.Load64(cur + triNNbr*8)
					for i := uint64(0); i < n && len(cavity) < target; i++ {
						nb := mem.Addr(t.Load64(cur + triNbr0*8 + i*8))
						if inCavity[nb] || t.Load64(nb+triAlive*8) == 0 {
							continue
						}
						inCavity[nb] = true
						cavity = append(cavity, nb)
					}
				}

				// Boundary: alive neighbours of cavity members outside it,
				// in deterministic discovery order (bl), with a set (seen)
				// for membership.
				seen := map[mem.Addr]bool{}
				var bl []mem.Addr
				for _, c := range cavity {
					n := t.Load64(c + triNNbr*8)
					for i := uint64(0); i < n; i++ {
						nb := mem.Addr(t.Load64(c + triNbr0*8 + i*8))
						if !inCavity[nb] && !seen[nb] && t.Load64(nb+triAlive*8) != 0 {
							seen[nb] = true
							bl = append(bl, nb)
						}
					}
				}

				// Kill the cavity; pending bad members die unrefined.
				for _, c := range cavity {
					if c != tri && t.Load64(c+triBad*8) != 0 {
						preempted++
					}
					t.Store64(c+triAlive*8, 0)
				}
				for _, b := range bl {
					for _, c := range cavity {
						y.unlink(t, b, c)
					}
				}

				// Retriangulate: |cavity|+2 new triangles in a ring, wired
				// round-robin into the boundary.
				nNew := len(cavity) + 2
				newTris := make([]mem.Addr, nNew)
				for i := range newTris {
					newTris[i] = y.newTriangle(t, gen+1, seed^uint64(i+1)*0x9e3779b97f4a7c15)
				}
				for i := range newTris {
					y.link(t, newTris[i], newTris[(i+1)%nNew])
				}
				for i, b := range bl {
					y.link(t, newTris[i%nNew], b)
				}
				// Cascade: one new bad triangle per refinement until the
				// generation bound.
				if gen+1 < y.maxGen {
					t.Store64(newTris[0]+triBad*8, 1)
					y.heap.Push(t, int64(rng.Intn(1<<30)), uint64(newTris[0]))
					spawnedOne = true
				}
				created = append(created, newTris...)
			})
			if !didWork {
				continue // raced with a cavity kill: take the next item
			}
			r.Thread().Work(150) // geometry arithmetic of one refinement
			y.mu.Lock()
			y.triangles = append(y.triangles, created...)
			y.refinements++
			y.preempted += preempted
			if spawnedOne {
				y.spawned++
			}
			y.mu.Unlock()
		}
	})
}

func (y *yada) Validate(t *htm.Thread) error {
	if n := y.heap.Len(t); n != 0 {
		return fmt.Errorf("yada: work heap not drained (%d left)", n)
	}
	// Work accounting: every bad triangle (initial or cascade-spawned) is
	// either refined or preempted by a neighbouring cavity.
	if y.refinements+y.preempted != y.nBad+y.spawned {
		return fmt.Errorf("yada: refined %d + preempted %d != initial %d + spawned %d",
			y.refinements, y.preempted, y.nBad, y.spawned)
	}
	if y.refinements < 1 {
		return fmt.Errorf("yada: no refinements performed")
	}
	alive := 0
	for _, tri := range y.triangles {
		if t.Load64(tri+triAlive*8) == 0 {
			continue
		}
		alive++
		n := t.Load64(tri + triNNbr*8)
		if n > triMaxNbr {
			return fmt.Errorf("yada: triangle with %d neighbours", n)
		}
		for i := uint64(0); i < n; i++ {
			nb := mem.Addr(t.Load64(tri + triNbr0*8 + i*8))
			if t.Load64(nb+triAlive*8) == 0 {
				return fmt.Errorf("yada: alive triangle links to dead neighbour")
			}
			m := t.Load64(nb + triNNbr*8)
			found := false
			for j := uint64(0); j < m; j++ {
				if mem.Addr(t.Load64(nb+triNbr0*8+j*8)) == tri {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("yada: asymmetric adjacency")
			}
		}
		// No alive bad triangle may remain: all work was drained.
		if t.Load64(tri+triBad*8) != 0 {
			return fmt.Errorf("yada: alive bad triangle left behind")
		}
	}
	if alive == 0 {
		return fmt.Errorf("yada: no alive triangles")
	}
	return nil
}

func (y *yada) Units() int {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.refinements
}

// UnitsDynamic marks yada's work count as interleaving-dependent: refining
// one cavity can spawn new bad triangles, and whether a neighbouring cavity
// preempts a queued triangle depends on processing order. Validate checks
// the order-independent invariant (refined + preempted = initial + spawned,
// heap drained, mesh consistent) instead.
func (y *yada) UnitsDynamic() bool { return true }
