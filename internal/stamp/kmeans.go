package stamp

import (
	"fmt"
	"math"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
)

func init() {
	register("kmeans-high", func(cfg Config) Benchmark { return newKMeans(cfg, true) })
	register("kmeans-low", func(cfg Config) Benchmark { return newKMeans(cfg, false) })
}

// kmeans is STAMP's K-means clustering. Each thread assigns a chunk of
// points to their nearest center and transactionally accumulates the point
// into the chosen cluster's record (a length counter plus per-feature sums);
// between iterations the main thread recomputes the centers.
//
// High contention = few clusters (STAMP's -m15), low = many (-m40): fewer
// clusters mean more threads updating the same record concurrently.
//
// The paper's Section 4 fix: the original collocates each cluster record
// contiguously with padding between records, but the records are not
// aligned to cache-line boundaries, so two clusters can share a line and
// conflict falsely; the modified variant aligns every record. Both layouts
// are implemented here. Intel's adjacent-line prefetch makes even aligned
// neighbouring records conflict (Section 5.1) — records are allocated
// adjacently so the engine's prefetch model can reproduce that.
type kmeans struct {
	cfg       Config
	name      string
	nPoints   int
	nFeatures int
	nClusters int
	nIters    int

	// points live in simulated memory (set up once, read-only afterwards)
	// and are mirrored in Go for the distance arithmetic.
	pointsAddr mem.Addr
	points     []float64 // nPoints × nFeatures mirror

	// accum[c] is the simulated address of cluster c's accumulator record:
	// [count][sum_0 … sum_{F-1}].
	accum []mem.Addr

	// centers are recomputed by the coordinator between iterations and are
	// read-only during the parallel phase.
	centers []float64 // nClusters × nFeatures

	units int
}

func newKMeans(cfg Config, high bool) *kmeans {
	k := &kmeans{cfg: cfg}
	if high {
		k.name = "kmeans-high"
	} else {
		k.name = "kmeans-low"
	}
	switch cfg.Scale {
	case ScaleTest:
		k.nPoints, k.nFeatures, k.nIters = 256, 4, 3
	case ScaleSim:
		k.nPoints, k.nFeatures, k.nIters = 2048, 8, 5
	default:
		k.nPoints, k.nFeatures, k.nIters = 8192, 16, 6
	}
	// STAMP: high contention -m15, low contention -m40.
	if high {
		k.nClusters = 15
	} else {
		k.nClusters = 40
	}
	return k
}

func (k *kmeans) Name() string { return k.name }

func (k *kmeans) recordBytes() int { return (1 + k.nFeatures) * 8 }

func (k *kmeans) Setup(t *htm.Thread) {
	rng := prng.New(k.cfg.Seed ^ 0x6b6d65616e73) // "kmeans"
	e := t.Engine()
	line := e.LineSize()

	// Points.
	k.points = make([]float64, k.nPoints*k.nFeatures)
	k.pointsAddr = t.Alloc(k.nPoints * k.nFeatures * 8)
	for i := range k.points {
		v := rng.Float64()
		k.points[i] = v
		t.Engine().Space().StoreFloat64(k.pointsAddr+uint64(i*8), v)
	}

	// Cluster accumulator records.
	k.accum = make([]mem.Addr, k.nClusters)
	rec := k.recordBytes()
	if k.cfg.Variant == Original {
		// Original layout: contiguous block, records padded to the line
		// size but deliberately offset so records straddle line
		// boundaries — two clusters can share a line (Section 4).
		stride := ((rec + line - 1) / line) * line
		blk := t.AllocAligned(k.nClusters*stride+line, line)
		misalign := uint64(line / 2)
		for c := 0; c < k.nClusters; c++ {
			k.accum[c] = blk + uint64(c*stride) + misalign
		}
	} else {
		// Modified layout: every record starts on its own line boundary.
		// Records are still adjacent in memory (successive lines), which
		// is what exposes Intel's prefetcher effect.
		stride := ((rec + line - 1) / line) * line
		blk := t.AllocAligned(k.nClusters*stride, line)
		for c := 0; c < k.nClusters; c++ {
			k.accum[c] = blk + uint64(c*stride)
		}
	}

	// Initial centers: the first nClusters points.
	k.centers = make([]float64, k.nClusters*k.nFeatures)
	copy(k.centers, k.points[:k.nClusters*k.nFeatures])
}

func (k *kmeans) nearest(p int) int {
	best, bestD := 0, math.MaxFloat64
	po := p * k.nFeatures
	for c := 0; c < k.nClusters; c++ {
		co := c * k.nFeatures
		d := 0.0
		for f := 0; f < k.nFeatures; f++ {
			diff := k.points[po+f] - k.centers[co+f]
			d += diff * diff
		}
		if d < bestD {
			bestD, best = d, c
		}
	}
	return best
}

func (k *kmeans) Run(runners []Runner) {
	n := len(runners)
	bar := NewBarrier(runners)
	runWorkers(runners, func(tid int, r Runner) {
		lo := tid * k.nPoints / n
		hi := (tid + 1) * k.nPoints / n
		for iter := 0; iter < k.nIters; iter++ {
			for p := lo; p < hi; p++ {
				r.Thread().Work(3 * k.nClusters * k.nFeatures) // distance arithmetic (sub, mul, add per feature)
				c := k.nearest(p)
				rec := k.accum[c]
				po := p * k.nFeatures
				r.Atomic(func(t *htm.Thread) {
					t.Store64(rec, t.Load64(rec)+1)
					for f := 0; f < k.nFeatures; f++ {
						a := rec + uint64((1+f)*8)
						t.StoreFloat64(a, t.LoadFloat64(a)+k.points[po+f])
					}
				})
			}
			bar.Wait(r.Thread())
			if tid == 0 {
				k.recompute(r.Thread(), iter == k.nIters-1)
			}
			bar.Wait(r.Thread())
		}
	})
	k.units = k.nPoints * k.nIters
}

// recompute derives new centers from the accumulators and clears them for
// the next iteration (the final iteration's accumulators are kept for
// Validate).
func (k *kmeans) recompute(t *htm.Thread, last bool) {
	for c := 0; c < k.nClusters; c++ {
		rec := k.accum[c]
		cnt := t.Load64(rec)
		if cnt > 0 {
			for f := 0; f < k.nFeatures; f++ {
				k.centers[c*k.nFeatures+f] = t.LoadFloat64(rec+uint64((1+f)*8)) / float64(cnt)
			}
		}
		if !last {
			t.Store64(rec, 0)
			for f := 0; f < k.nFeatures; f++ {
				t.StoreFloat64(rec+uint64((1+f)*8), 0)
			}
		}
	}
}

func (k *kmeans) Validate(t *htm.Thread) error {
	var total uint64
	for c := 0; c < k.nClusters; c++ {
		cnt := t.Load64(k.accum[c])
		total += cnt
		for f := 0; f < k.nFeatures; f++ {
			v := t.LoadFloat64(k.accum[c] + uint64((1+f)*8))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("kmeans: cluster %d feature %d is %v", c, f, v)
			}
			if v < 0 || v > float64(cnt)+1e-6 {
				return fmt.Errorf("kmeans: cluster %d feature-sum %v outside [0,count=%d]", c, v, cnt)
			}
		}
	}
	if total != uint64(k.nPoints) {
		return fmt.Errorf("kmeans: final assignment counts %d points, want %d (lost updates)", total, k.nPoints)
	}
	return nil
}

func (k *kmeans) Units() int { return k.units }
