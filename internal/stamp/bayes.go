package stamp

import (
	"fmt"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
	"htmcmp/internal/txds"
)

func init() {
	register("bayes", func(cfg Config) Benchmark { return newBayes(cfg) })
}

// bayes is STAMP's Bayesian-network structure learner: hill climbing over
// candidate edge insertions, where each transaction pops the best pending
// task, checks that the edge keeps the network acyclic (a graph search whose
// read set grows with the reachable region), applies it, and enqueues a
// follow-up candidate.
//
// Substitution note (DESIGN.md): the exact ADTree likelihood scoring is
// replaced by a deterministic pseudo-score (a hash of the edge), preserving
// the transaction shape — a contended task heap, long read-mostly acyclicity
// walks, and small writes. Like the original, the final network depends on
// interleaving; the paper excludes bayes from averages for exactly this
// non-determinism (Section 5.1), and Validate checks structural invariants
// only (acyclicity, degree caps, task accounting).
//
// Per-variable record: [nChildren][child_0 .. child_{cap-1}][nParents].
type bayes struct {
	cfg       Config
	nVars     int
	maxRounds int
	childCap  int
	maxParent int

	vars  []mem.Addr
	tasks txds.Heap

	mu        sync.Mutex
	processed int
	inserted  int
}

func newBayes(cfg Config) *bayes {
	b := &bayes{cfg: cfg, childCap: 8, maxParent: 4}
	switch cfg.Scale {
	case ScaleTest:
		b.nVars, b.maxRounds = 32, 4
	case ScaleSim:
		b.nVars, b.maxRounds = 256, 6
	default:
		b.nVars, b.maxRounds = 1024, 8
	}
	return b
}

func (b *bayes) Name() string { return "bayes" }

func (b *bayes) varAddr(v int) mem.Addr { return b.vars[v] }

func (b *bayes) Setup(t *htm.Thread) {
	rng := prng.New(b.cfg.Seed ^ 0x6261796573) // "bayes"
	b.vars = make([]mem.Addr, b.nVars)
	for v := range b.vars {
		b.vars[v] = t.Alloc((2 + b.childCap) * 8)
	}
	b.tasks = txds.NewHeap(t, b.nVars*2)
	for v := 0; v < b.nVars; v++ {
		u := rng.Intn(b.nVars)
		b.tasks.Push(t, b.score(u, v, 0), packTask(u, v, 0))
	}
	b.processed, b.inserted = 0, 0
}

// score is the deterministic pseudo log-likelihood gain of edge u→v.
func (b *bayes) score(u, v, gen int) int64 {
	return int64(txds.Hash64(uint64(u)<<40|uint64(v)<<16|uint64(gen)) >> 34)
}

func packTask(u, v, gen int) uint64 {
	return uint64(u)<<32 | uint64(v)<<16 | uint64(gen)
}

func unpackTask(x uint64) (u, v, gen int) {
	return int(x >> 32), int(x >> 16 & 0xffff), int(x & 0xffff)
}

// reaches reports whether dst is reachable from src via child links,
// reading the traversed adjacency transactionally.
func (b *bayes) reaches(t *htm.Thread, src, dst int) bool {
	if src == dst {
		return true
	}
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rec := b.varAddr(cur)
		n := t.Load64(rec)
		for i := uint64(0); i < n; i++ {
			c := int(t.Load64(rec + 8 + i*8))
			if c == dst {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

func (b *bayes) Run(runners []Runner) {
	runWorkers(runners, func(tid int, r Runner) {
		for {
			// Transaction 1: pop the best pending task.
			var task uint64
			var have bool
			r.Atomic(func(t *htm.Thread) {
				_, task, have = b.tasks.Pop(t)
			})
			if !have {
				return
			}
			didInsert := false
			// Transaction 2: validate and apply the edge insertion.
			r.Atomic(func(t *htm.Thread) {
				didInsert = false
				u, v, gen := unpackTask(task)

				uRec := b.varAddr(u)
				vRec := b.varAddr(v)
				nChildren := t.Load64(uRec)
				nParents := t.Load64(vRec + 8 + uint64(b.childCap)*8)
				if u != v &&
					nChildren < uint64(b.childCap) &&
					nParents < uint64(b.maxParent) &&
					!b.hasChild(t, u, v) &&
					!b.reaches(t, v, u) { // would close a cycle
					t.Store64(uRec+8+nChildren*8, uint64(v))
					t.Store64(uRec, nChildren+1)
					t.Store64(vRec+8+uint64(b.childCap)*8, nParents+1)
					didInsert = true
				}
				// Hill climbing: propose the next candidate for this chain.
				if gen+1 < b.maxRounds {
					nu := int(txds.Hash64(task^0x5bd1e995) % uint64(b.nVars))
					nv := int(txds.Hash64(task^0xdeadbeef) % uint64(b.nVars))
					b.tasks.Push(t, b.score(nu, nv, gen+1), packTask(nu, nv, gen+1))
				}
			})
			r.Thread().Work(80) // score evaluation arithmetic
			b.mu.Lock()
			b.processed++
			if didInsert {
				b.inserted++
			}
			b.mu.Unlock()
		}
	})
}

func (b *bayes) hasChild(t *htm.Thread, u, v int) bool {
	rec := b.varAddr(u)
	n := t.Load64(rec)
	for i := uint64(0); i < n; i++ {
		if int(t.Load64(rec+8+i*8)) == v {
			return true
		}
	}
	return false
}

func (b *bayes) Validate(t *htm.Thread) error {
	if n := b.tasks.Len(t); n != 0 {
		return fmt.Errorf("bayes: task heap not drained (%d left)", n)
	}
	if want := b.nVars * b.maxRounds; b.processed != want {
		return fmt.Errorf("bayes: processed %d tasks, want %d", b.processed, want)
	}
	// The learned network must be a DAG: Kahn's algorithm must consume all
	// edges.
	indeg := make([]int, b.nVars)
	edges := 0
	for u := 0; u < b.nVars; u++ {
		rec := b.varAddr(u)
		n := int(t.Load64(rec))
		if n > b.childCap {
			return fmt.Errorf("bayes: var %d has %d children (cap %d)", u, n, b.childCap)
		}
		for i := 0; i < n; i++ {
			v := int(t.Load64(rec + 8 + uint64(i)*8))
			indeg[v]++
			edges++
		}
	}
	if edges != b.inserted {
		return fmt.Errorf("bayes: %d edges in graph, %d recorded inserts", edges, b.inserted)
	}
	// Parent counters must match in-degrees.
	for v := 0; v < b.nVars; v++ {
		np := int(t.Load64(b.varAddr(v) + 8 + uint64(b.childCap)*8))
		if np != indeg[v] {
			return fmt.Errorf("bayes: var %d parent counter %d != in-degree %d", v, np, indeg[v])
		}
		if np > b.maxParent {
			return fmt.Errorf("bayes: var %d has %d parents (max %d)", v, np, b.maxParent)
		}
	}
	queue := []int{}
	for v := 0; v < b.nVars; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		rec := b.varAddr(u)
		n := int(t.Load64(rec))
		for i := 0; i < n; i++ {
			v := int(t.Load64(rec + 8 + uint64(i)*8))
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if removed != b.nVars {
		return fmt.Errorf("bayes: graph has a cycle (%d of %d vars topologically sorted)", removed, b.nVars)
	}
	return nil
}

func (b *bayes) Units() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.processed
}
