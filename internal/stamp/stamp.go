// Package stamp contains Go ports of the eight STAMP benchmarks (Minh et
// al., IISWC 2008) — bayes, genome, intruder, kmeans, labyrinth, ssca2,
// vacation and yada — running on the simulated-HTM substrate.
//
// The ports preserve what matters for HTM behaviour: the transactional
// structure (what is inside each critical section), the data-structure
// choices (including the TM-unfriendly originals), memory layout (padding
// and alignment), and contention profiles. Input sizes are scaled so a full
// four-platform sweep runs in minutes on the software engine; Scale selects
// the size. Where the paper modified a benchmark (Section 4), both the
// Original and Modified variants are implemented and selected by Variant.
//
// Two of the ports are structural simplifications, recorded here and in
// DESIGN.md: yada replaces exact Delaunay geometry with a synthetic mesh
// whose cavity-size distribution matches the original's transaction
// footprints, and bayes replaces exact Bayesian scoring with a deterministic
// pseudo-score; both keep the original transaction shapes (cavity expansion
// and retriangulation; acyclicity checks and edge insertion).
package stamp

import (
	"fmt"
	"sort"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/tm"
)

// Runner executes atomic critical sections on behalf of one worker thread.
// The three implementations — sequential, transactional (Figure 1 runtime)
// and HLE — let one benchmark implementation serve as its own baseline and
// as the measured subject.
type Runner interface {
	// Atomic runs body as one atomic critical section.
	Atomic(body func(t *htm.Thread))
	// Thread returns the hardware thread this runner executes on.
	Thread() *htm.Thread
}

// SeqRunner executes critical sections directly with no synchronisation —
// the "serial non-HTM execution" baseline of Section 5. It is only safe
// single-threaded.
type SeqRunner struct{ T *htm.Thread }

// Atomic runs body directly.
func (r SeqRunner) Atomic(body func(t *htm.Thread)) { body(r.T) }

// Thread returns the underlying hardware thread.
func (r SeqRunner) Thread() *htm.Thread { return r.T }

// TMRunner executes critical sections through the transactional runtime
// with global-lock fallback.
type TMRunner struct{ X *tm.Executor }

// Atomic runs body via the Figure 1 retry mechanism.
func (r TMRunner) Atomic(body func(t *htm.Thread)) { r.X.Run(body) }

// Thread returns the underlying hardware thread.
func (r TMRunner) Thread() *htm.Thread { return r.X.T }

// STMRunner executes critical sections as NOrec software transactions — the
// STM baseline the paper contrasts HTM against.
type STMRunner struct{ X *tm.Executor }

// Atomic runs body as a software transaction, retrying until commit.
func (r STMRunner) Atomic(body func(t *htm.Thread)) { r.X.RunSTM(body) }

// Thread returns the underlying hardware thread.
func (r STMRunner) Thread() *htm.Thread { return r.X.T }

// LockRunner executes every critical section irrevocably under the global
// lock — the single-global-lock baseline the differential verifier
// (internal/verify, harness.Verify) cross-checks transactional executions
// against.
type LockRunner struct{ X *tm.Executor }

// Atomic runs body under the global lock with no speculation.
func (r LockRunner) Atomic(body func(t *htm.Thread)) { r.X.RunIrrevocable(body) }

// Thread returns the underlying hardware thread.
func (r LockRunner) Thread() *htm.Thread { return r.X.T }

// HLERunner executes critical sections with hardware lock elision (Intel).
type HLERunner struct{ X *tm.Executor }

// Atomic runs body via HLE: one elided attempt, then the real lock.
func (r HLERunner) Atomic(body func(t *htm.Thread)) { r.X.RunHLE(body) }

// Thread returns the underlying hardware thread.
func (r HLERunner) Thread() *htm.Thread { return r.X.T }

// Scale selects the input size.
type Scale int

const (
	// ScaleTest is tiny: for unit tests.
	ScaleTest Scale = iota
	// ScaleSim matches the relative footprint regime of STAMP's simulator
	// inputs; the default for the figure-regeneration harness.
	ScaleSim
	// ScaleFull is the largest input, for longer experiment runs.
	ScaleFull
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSim:
		return "sim"
	case ScaleFull:
		return "full"
	}
	return "?"
}

// Variant selects the original STAMP code shape or the paper's Section 4
// modification.
type Variant int

const (
	// Modified applies the paper's fixes (hash tables for unordered sets,
	// cache-line-aligned clusters, tuned chunk sizes).
	Modified Variant = iota
	// Original is STAMP 0.9.10 behaviour.
	Original
)

// String returns the variant name.
func (v Variant) String() string {
	if v == Original {
		return "original"
	}
	return "modified"
}

// Config parameterises one benchmark instance.
type Config struct {
	Scale   Scale
	Variant Variant
	Seed    uint64
	// ChunkStep1 overrides genome's per-transaction insertion chunk (the
	// compile-time parameter the paper tunes per platform: 9 for Blue
	// Gene/Q, 2 for the others). Zero selects the benchmark default.
	ChunkStep1 int
}

// Benchmark is one STAMP program instance. The lifecycle is:
// Setup (single-threaded, untimed) → Run (parallel, the timed region of
// interest) → Validate (single-threaded consistency check).
type Benchmark interface {
	// Name returns the benchmark's registry name.
	Name() string
	// Setup builds the input state in simulated memory using t (non-tx).
	Setup(t *htm.Thread)
	// Run executes the benchmark's region of interest on the given
	// runners, one worker goroutine per runner, and blocks until done.
	// With a single SeqRunner it is the sequential baseline.
	Run(runners []Runner)
	// Validate checks output consistency after Run.
	Validate(t *htm.Thread) error
	// Units reports completed work items (throughput denominator).
	Units() int
}

// DynamicWork is an optional Benchmark extension for programs whose total
// work is discovered during execution rather than fixed by the input:
// processing one item may spawn new items, so the Units count legitimately
// depends on the interleaving. Cross-mode verification must not require
// equal Units for such benchmarks; Validate carries the full consistency
// contract instead.
type DynamicWork interface {
	// UnitsDynamic reports that Units varies across correct executions.
	UnitsDynamic() bool
}

// Factory creates a fresh Benchmark for a configuration.
type Factory func(cfg Config) Benchmark

var registry = map[string]Factory{}

// register adds a factory; benchmarks self-register in their init.
func register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("stamp: duplicate benchmark " + name)
	}
	registry[name] = f
}

// New creates benchmark name with cfg; it returns an error for unknown
// names.
func New(name string, cfg Config) (Benchmark, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("stamp: unknown benchmark %q", name)
	}
	return f(cfg), nil
}

// Names returns all registered benchmark names in the paper's figure order.
func Names() []string {
	order := []string{
		"bayes", "genome", "intruder", "kmeans-high", "kmeans-low",
		"labyrinth", "ssca2", "vacation-high", "vacation-low", "yada",
	}
	var names []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			names = append(names, n)
		}
	}
	// Append any extras deterministically (future benchmarks).
	var extra []string
	for n := range registry { //htmlint:allow determinism -- iteration order is normalised by the sort.Strings below
		found := false
		for _, o := range order {
			if n == o {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// ModifiedNames returns the benchmarks the paper's Section 4 modified
// (Figure 4's x-axis).
func ModifiedNames() []string {
	return []string{"genome", "intruder", "kmeans-high", "kmeans-low", "vacation-high", "vacation-low"}
}

// NewBarrier returns a scheduler-aware cyclic barrier for all runners — the
// benchmarks' phase-structure primitive (kmeans iterations, genome phases).
// In virtual-time engines, parties resume with synchronised clocks.
func NewBarrier(runners []Runner) *htm.Barrier {
	return runners[0].Thread().Engine().NewBarrier(len(runners))
}

// runWorkers runs fn(tid, runner) on one goroutine per runner and waits. The
// workers participate in the engine's virtual-time schedule: all threads are
// registered before any starts, so the scheduler's membership is complete.
func runWorkers(runners []Runner, fn func(tid int, r Runner)) {
	for _, r := range runners {
		r.Thread().Register()
	}
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(tid int, r Runner) {
			defer wg.Done()
			t := r.Thread()
			t.BeginWork()
			defer t.ExitWork()
			fn(tid, r)
		}(i, r)
	}
	wg.Wait()
}
