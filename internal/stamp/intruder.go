package stamp

import (
	"fmt"
	"sync/atomic"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
	"htmcmp/internal/txds"
)

func init() {
	register("intruder", func(cfg Config) Benchmark { return newIntruder(cfg) })
}

// attackSig is the signature the detector scans reassembled flows for.
const attackSig = "ATTACKSIG"

// intruder is STAMP's network intrusion detector: threads pull packet
// fragments off a shared queue (transaction 1), reassemble them into flows
// in a shared decoder dictionary (transaction 2: insert fragment; when the
// flow is complete, extract it and build the assembled payload), then scan
// the private assembled flow for attack signatures outside any transaction.
//
// Data-structure variants (Section 4): the original uses a red-black tree
// for the flow dictionary keyed by flow id (an unordered set — wrong tool)
// and a sorted linked list for each flow's fragments (an ordered set); the
// modified version uses a hash table for the dictionary and a red-black
// tree for the fragment lists.
//
// Packet record layout: [flowId][fragId][numFrags][lenBytes][dataAddr].
// Flow-state record: [received][numFrags][collectionHandle].
type intruder struct {
	cfg        Config
	nFlows     int
	maxFragLen int

	queue    txds.Queue
	decoder  dict
	nAttacks int // injected ground truth

	found     atomic.Int64
	done      atomic.Int64
	units     int
	fragTotal int
}

const (
	pktFlow  = 0
	pktFrag  = 1
	pktNFrag = 2
	pktLen   = 3
	pktData  = 4
	pktWords = 5

	flowRecv  = 0
	flowNFrag = 1
	flowColl  = 2
	flowWords = 3
)

func newIntruder(cfg Config) *intruder {
	b := &intruder{cfg: cfg}
	switch cfg.Scale {
	case ScaleTest:
		b.nFlows = 64
	case ScaleSim:
		b.nFlows = 1024
	default:
		b.nFlows = 4096
	}
	b.maxFragLen = 64
	return b
}

func (b *intruder) Name() string { return "intruder" }

func (b *intruder) Setup(t *htm.Thread) {
	rng := prng.New(b.cfg.Seed ^ 0x696e7472) // "intr"
	type pkt struct{ rec mem.Addr }
	var packets []pkt

	for flow := 0; flow < b.nFlows; flow++ {
		// Flow payload: 64 bytes to ~2 KB with a long tail (multiple of
		// 8), matching the heavy-tailed flow sizes behind the paper's
		// Figure 10/11 intruder footprints.
		words := 8 + rng.Intn(25)
		if rng.Bernoulli(0.15) {
			words += 32 + rng.Intn(192)
		}
		n := words * 8
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte('a' + rng.Intn(26))
		}
		if rng.Bernoulli(0.1) {
			off := rng.Intn(n - len(attackSig))
			copy(payload[off:], attackSig)
			b.nAttacks++
		}
		data := t.Alloc(n)
		t.Engine().Space().WriteBytes(data, payload)

		// Split into 1..16 fragments on 8-byte boundaries (STAMP -l16).
		nFrag := 1 + rng.Intn(16)
		if nFrag > words {
			nFrag = words
		}
		cuts := make([]int, 0, nFrag+1)
		cuts = append(cuts, 0)
		perm := rng.Perm(words - 1)
		for _, c := range perm[:nFrag-1] {
			cuts = append(cuts, (c+1)*8)
		}
		cuts = append(cuts, n)
		sortInts(cuts)
		for f := 0; f < nFrag; f++ {
			rec := t.Alloc(pktWords * 8)
			t.Store64(rec+pktFlow*8, uint64(flow))
			t.Store64(rec+pktFrag*8, uint64(f))
			t.Store64(rec+pktNFrag*8, uint64(nFrag))
			t.Store64(rec+pktLen*8, uint64(cuts[f+1]-cuts[f]))
			t.Store64(rec+pktData*8, data+uint64(cuts[f]))
			packets = append(packets, pkt{rec: rec})
		}
		b.fragTotal += nFrag
	}
	// Shuffle fragments globally (packets arrive interleaved).
	rng.Shuffle(len(packets), func(i, j int) { packets[i], packets[j] = packets[j], packets[i] })
	b.queue = txds.NewQueue(t, len(packets)+1)
	for _, p := range packets {
		b.queue.Push(t, p.rec)
	}
	b.decoder = newDict(t, b.cfg.Variant, 4*b.nFlows)
	b.found.Store(0)
	b.done.Store(0)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// fragments of a flow are collected in an ordered set keyed by fragment id:
// a sorted list in the original, a red-black tree in the modified variant.
func (b *intruder) newCollection(t *htm.Thread) uint64 {
	if b.cfg.Variant == Original {
		return uint64(txds.NewList(t).Handle())
	}
	return uint64(txds.NewRBTree(t).Handle())
}

func (b *intruder) collInsert(t *htm.Thread, h uint64, fragID int64, rec uint64) {
	if b.cfg.Variant == Original {
		txds.ListAt(h).Insert(t, fragID, rec)
	} else {
		txds.RBTreeAt(h).Insert(t, fragID, rec)
	}
}

func (b *intruder) collEach(t *htm.Thread, h uint64, fn func(k int64, v uint64) bool) {
	if b.cfg.Variant == Original {
		txds.ListAt(h).Each(t, fn)
	} else {
		txds.RBTreeAt(h).Each(t, fn)
	}
}

func (b *intruder) Run(runners []Runner) {
	runWorkers(runners, func(tid int, r Runner) {
		rng := prng.Derive(b.cfg.Seed^0x776f726b, tid) // per-item work jitter
		for {
			// Transaction 1: grab a packet.
			var pkt uint64
			var ok bool
			r.Atomic(func(t *htm.Thread) {
				pkt, ok = b.queue.Pop(t)
			})
			if !ok {
				return
			}
			r.Thread().Work(200 + rng.Intn(160)) // variable decode work per packet
			// Transaction 2: decode. If this fragment completes its flow,
			// assemble the payload inside the transaction (STAMP's
			// decoder_process + getComplete path).
			var assembled mem.Addr
			var assembledLen int
			r.Atomic(func(t *htm.Thread) {
				assembled, assembledLen = 0, 0
				flow := int64(t.Load64(pkt + pktFlow*8))
				fragID := int64(t.Load64(pkt + pktFrag*8))
				nFrag := t.Load64(pkt + pktNFrag*8)

				stateH, ok := b.decoder.get(t, flow)
				if !ok {
					state := t.Alloc(flowWords * 8)
					t.Store64(state+flowRecv*8, 0)
					t.Store64(state+flowNFrag*8, nFrag)
					t.Store64(state+flowColl*8, b.newCollection(t))
					b.decoder.insert(t, flow, state)
					stateH = state
				}
				coll := t.Load64(stateH + flowColl*8)
				b.collInsert(t, coll, fragID, pkt)
				recv := t.Load64(stateH+flowRecv*8) + 1
				t.Store64(stateH+flowRecv*8, recv)
				if recv < nFrag {
					return
				}
				// Flow complete: remove from the dictionary and assemble.
				b.decoder.remove(t, flow)
				total := 0
				b.collEach(t, coll, func(_ int64, frag uint64) bool {
					total += int(t.Load64(frag + pktLen*8))
					return true
				})
				buf := t.Alloc(total)
				off := uint64(0)
				b.collEach(t, coll, func(_ int64, frag uint64) bool {
					l := t.Load64(frag + pktLen*8)
					src := t.Load64(frag + pktData*8)
					for i := uint64(0); i < l; i += 8 {
						// Payload reads are transactional: hardware
						// tracks them, and on POWER8 they occupy TMCAM
						// entries — the capacity pressure behind the
						// paper's intruder findings.
						t.Store64(buf+off+i, t.Load64(src+i))
					}
					off += l
					return true
				})
				assembled, assembledLen = buf, total
			})
			// Detection phase: private scan, outside any transaction.
			if assembled != 0 {
				if scanForSignature(r.Thread(), assembled, assembledLen) {
					b.found.Add(1)
				}
				b.done.Add(1)
			}
		}
	})
	b.units = b.fragTotal
}

// scanForSignature searches the assembled (thread-private) flow for the
// attack signature.
func scanForSignature(t *htm.Thread, buf mem.Addr, n int) bool {
	if n < len(attackSig) {
		return false
	}
	for i := 0; i+len(attackSig) <= n; i++ {
		hit := true
		for j := 0; j < len(attackSig); j++ {
			if t.LoadRO8(buf+uint64(i+j)) != attackSig[j] {
				hit = false
				break
			}
		}
		if hit {
			return true
		}
	}
	return false
}

func (b *intruder) Validate(t *htm.Thread) error {
	if got := int(b.done.Load()); got != b.nFlows {
		return fmt.Errorf("intruder: %d flows reassembled, want %d", got, b.nFlows)
	}
	if got := int(b.found.Load()); got != b.nAttacks {
		return fmt.Errorf("intruder: %d attacks detected, want %d", got, b.nAttacks)
	}
	if !b.queue.Empty(t) {
		return fmt.Errorf("intruder: packet queue not drained")
	}
	// The decoder dictionary must be empty: every flow completed.
	leftover := 0
	b.decoder.each(t, func(int64, uint64) bool { leftover++; return true })
	if leftover != 0 {
		return fmt.Errorf("intruder: %d incomplete flows left in decoder", leftover)
	}
	return nil
}

func (b *intruder) Units() int { return b.units }
