package stamp

import (
	"sync"
	"testing"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/tm"
)

// runBench builds a fresh engine, sets up the benchmark, runs it on nThreads
// (sequentially when nThreads == 0), validates, and returns the executors'
// aggregate stats.
func runBench(t *testing.T, name string, cfg Config, k platform.Kind, nThreads int) tm.Stats {
	t.Helper()
	threads := nThreads
	if threads == 0 {
		threads = 1
	}
	e := htm.New(platform.New(k), htm.Config{
		Threads:   threads,
		SpaceSize: 96 << 20,
		Seed:      cfg.Seed + 1,
		CostScale: 0,
	})
	b, err := New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Setup(e.Thread(0))
	var agg tm.Stats
	if nThreads == 0 {
		b.Run([]Runner{SeqRunner{T: e.Thread(0)}})
	} else {
		lock := tm.NewGlobalLock(e)
		runners := make([]Runner, nThreads)
		execs := make([]*tm.Executor, nThreads)
		for i := range runners {
			execs[i] = tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(k))
			runners[i] = TMRunner{X: execs[i]}
		}
		b.Run(runners)
		for _, x := range execs {
			agg.Add(&x.Stats)
		}
	}
	if err := b.Validate(e.Thread(0)); err != nil {
		t.Fatalf("%s/%s/%d threads: %v", name, k, nThreads, err)
	}
	if b.Units() <= 0 {
		t.Fatalf("%s: Units() = %d, want > 0", name, b.Units())
	}
	return agg
}

func TestAllBenchmarksSequential(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runBench(t, name, Config{Scale: ScaleTest, Seed: 11}, platform.IntelCore, 0)
		})
	}
}

func TestAllBenchmarksParallelAllPlatforms(t *testing.T) {
	for _, k := range platform.Kinds() {
		k := k
		for _, name := range Names() {
			name := name
			t.Run(k.Short()+"/"+name, func(t *testing.T) {
				t.Parallel()
				st := runBench(t, name, Config{Scale: ScaleTest, Seed: 13}, k, 4)
				if st.Commits() == 0 {
					t.Error("no committed critical sections")
				}
			})
		}
	}
}

func TestOriginalVariantsSequential(t *testing.T) {
	for _, name := range ModifiedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			runBench(t, name, Config{Scale: ScaleTest, Variant: Original, Seed: 17}, platform.IntelCore, 0)
		})
	}
}

func TestOriginalVariantsParallel(t *testing.T) {
	for _, name := range ModifiedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runBench(t, name, Config{Scale: ScaleTest, Variant: Original, Seed: 19}, platform.POWER8, 4)
		})
	}
}

func TestGenomeChunkStepOverride(t *testing.T) {
	runBench(t, "genome", Config{Scale: ScaleTest, Seed: 23, ChunkStep1: 9}, platform.BlueGeneQ, 2)
}

func TestSimScaleSpotChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("sim scale in -short mode")
	}
	for _, name := range []string{"kmeans-high", "ssca2", "vacation-low"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runBench(t, name, Config{Scale: ScaleSim, Seed: 29}, platform.ZEC12, 4)
		})
	}
}

func TestNamesOrderAndRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("registry has %d benchmarks, want 10: %v", len(names), names)
	}
	if names[0] != "bayes" || names[len(names)-1] != "yada" {
		t.Errorf("paper order violated: %v", names)
	}
	if _, err := New("nonexistent", Config{}); err == nil {
		t.Error("New of unknown benchmark did not error")
	}
	for _, m := range ModifiedNames() {
		found := false
		for _, n := range names {
			if n == m {
				found = true
			}
		}
		if !found {
			t.Errorf("modified benchmark %s not in registry", m)
		}
	}
}

func TestBarrierRealMode(t *testing.T) {
	const n = 8
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: n, SpaceSize: 1 << 20, CostScale: 0,
	})
	lock := tm.NewGlobalLock(e)
	runners := make([]Runner, n)
	for i := range runners {
		runners[i] = TMRunner{X: tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(platform.IntelCore))}
	}
	bar := NewBarrier(runners)
	counter := make(chan int, n*3)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for phase := 0; phase < 3; phase++ {
				counter <- phase
				bar.Wait(runners[tid].Thread())
			}
		}(i)
	}
	wg.Wait()
	close(counter)
	var cnt [3]int
	for p := range counter {
		cnt[p]++
	}
	for p, c := range cnt {
		if c != n {
			t.Errorf("phase %d ran %d times, want %d", p, c, n)
		}
	}
}

// TestBarrierVirtualMode checks the scheduler-aware barrier: clocks of all
// parties synchronise to the maximum at each crossing.
func TestBarrierVirtualMode(t *testing.T) {
	const n = 4
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: n, SpaceSize: 1 << 20, CostScale: 0, Virtual: true,
	})
	bar := e.NewBarrier(n)
	for i := 0; i < n; i++ {
		e.Thread(i).Register()
	}
	var wg sync.WaitGroup
	clocks := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			th.BeginWork()
			defer th.ExitWork()
			th.Work((tid + 1) * 100) // unequal work before the barrier
			bar.Wait(th)
			clocks[tid] = th.Clock()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if clocks[i] != clocks[0] {
			t.Fatalf("clocks diverge after barrier: %v", clocks)
		}
	}
	if clocks[0] < uint64(n*100) {
		t.Errorf("barrier clock %d below the slowest party's work", clocks[0])
	}
}

// TestHLERunnerOnSTAMP drives a benchmark through the HLE runner (Figure 7's
// execution mode).
func TestHLERunnerOnSTAMP(t *testing.T) {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 4, SpaceSize: 64 << 20, Seed: 31, CostScale: 0,
	})
	b, err := New("ssca2", Config{Scale: ScaleTest, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	b.Setup(e.Thread(0))
	lock := tm.NewGlobalLock(e)
	runners := make([]Runner, 4)
	for i := range runners {
		runners[i] = HLERunner{X: tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(platform.IntelCore))}
	}
	b.Run(runners)
	if err := b.Validate(e.Thread(0)); err != nil {
		t.Fatal(err)
	}
}
