package stamp

import (
	"fmt"

	"htmcmp/internal/htm"
	"htmcmp/internal/prng"
	"htmcmp/internal/txds"
)

func init() {
	register("vacation-high", func(cfg Config) Benchmark { return newVacation(cfg, true) })
	register("vacation-low", func(cfg Config) Benchmark { return newVacation(cfg, false) })
}

// dict is the table abstraction vacation and intruder switch between the
// paper's variants with: the original STAMP red-black tree for unordered
// sets, or the modified hash table (Section 4).
type dict struct {
	useTree bool
	rb      txds.RBTree
	ht      txds.Hashtable
}

func newDict(t *htm.Thread, v Variant, sizeHint int) dict {
	if v == Original {
		return dict{useTree: true, rb: txds.NewRBTree(t)}
	}
	return dict{ht: txds.NewHashtable(t, sizeHint)}
}

func (d dict) insert(t *htm.Thread, k int64, v uint64) bool {
	if d.useTree {
		return d.rb.Insert(t, k, v)
	}
	return d.ht.Insert(t, k, v)
}

func (d dict) get(t *htm.Thread, k int64) (uint64, bool) {
	if d.useTree {
		return d.rb.Get(t, k)
	}
	return d.ht.Get(t, k)
}

func (d dict) remove(t *htm.Thread, k int64) (uint64, bool) {
	if d.useTree {
		return d.rb.Remove(t, k)
	}
	return d.ht.Remove(t, k)
}

func (d dict) each(t *htm.Thread, fn func(k int64, v uint64) bool) {
	if d.useTree {
		d.rb.Each(t, fn)
	} else {
		d.ht.Each(t, fn)
	}
}

// vacation is STAMP's travel-reservation system: three resource tables
// (cars, flights, rooms) plus a customer table, exercised by client
// transactions — reservations, customer deletions and table updates. Each
// client action is one transaction touching several table lookups and
// updates, which is why the original red-black-tree tables overflow
// POWER8's capacity and the modified hash tables don't (Sections 4, 5.2).
//
// Resource record layout: [total][used][free][price].
// Customer record: a txds.List handle of reservations
// (key = resourceType*relations + id, value = price at booking).
type vacation struct {
	cfg  Config
	name string

	relations int
	nTxs      int
	numQuery  int // -n: queries per reservation transaction
	queryPct  int // -q: percent of relations eligible for queries
	userPct   int // -u: percent of client actions that are reservations

	resources [3]dict // cars, flights, rooms
	customers dict

	units int
}

const (
	resTotal = 0
	resUsed  = 1
	resFree  = 2
	resPrice = 3
	resWords = 4
)

func newVacation(cfg Config, high bool) *vacation {
	v := &vacation{cfg: cfg}
	if high {
		// STAMP vacation-high: -n4 -q60 -u90.
		v.name = "vacation-high"
		v.numQuery, v.queryPct, v.userPct = 4, 60, 90
	} else {
		// STAMP vacation-low: -n2 -q90 -u98.
		v.name = "vacation-low"
		v.numQuery, v.queryPct, v.userPct = 2, 90, 98
	}
	// The paper runs STAMP's non-simulator -r16384: contention scales
	// inversely with the relation count, so the table stays large even
	// when the transaction count is scaled down.
	switch cfg.Scale {
	case ScaleTest:
		v.relations, v.nTxs = 512, 400
	case ScaleSim:
		v.relations, v.nTxs = 4096, 4096
	default:
		v.relations, v.nTxs = 16384, 16384
	}
	return v
}

func (v *vacation) Name() string { return v.name }

func (v *vacation) Setup(t *htm.Thread) {
	rng := prng.New(v.cfg.Seed ^ 0x766163) // "vac"
	for r := range v.resources {
		v.resources[r] = newDict(t, v.cfg.Variant, v.relations)
		for id := 0; id < v.relations; id++ {
			// STAMP's reservation_t plus its container node is ~100+ bytes
			// of separately malloc'd memory; 128-byte spacing reproduces
			// that heap density (records are not line-padded: on zEC12's
			// 256-byte lines neighbouring records still share a line).
			rec := t.AllocAligned(resWords*8, 128)
			total := uint64(100 + rng.Intn(300))
			t.Store64(rec+resTotal*8, total)
			t.Store64(rec+resUsed*8, 0)
			t.Store64(rec+resFree*8, total)
			t.Store64(rec+resPrice*8, uint64(50+rng.Intn(500)))
			v.resources[r].insert(t, int64(id), rec)
		}
	}
	v.customers = newDict(t, v.cfg.Variant, v.relations)
	for id := 0; id < v.relations; id++ {
		v.customers.insert(t, int64(id), txds.NewList(t).Handle())
	}
}

// reservationKey packs (resource type, id) into the customer-list key.
func (v *vacation) reservationKey(rtype, id int) int64 {
	return int64(rtype*v.relations + id)
}

// makeReservation is STAMP's client reservation action: numQuery random
// queries across the three tables, remembering the highest-priced available
// resource of each type, then booking those for the customer.
func (v *vacation) makeReservation(t *htm.Thread, rng *prng.Rand, queryRange int) {
	var bestID [3]int
	var bestPrice [3]int64
	for i := range bestID {
		bestID[i] = -1
	}
	customer := int64(rng.Intn(queryRange))
	// Choose query targets outside the transaction (like STAMP's client,
	// which draws them from its thread-local RNG first).
	types := make([]int, v.numQuery)
	ids := make([]int, v.numQuery)
	for q := 0; q < v.numQuery; q++ {
		types[q] = rng.Intn(3)
		ids[q] = rng.Intn(queryRange)
	}
	for q := 0; q < v.numQuery; q++ {
		rt, id := types[q], ids[q]
		rec, ok := v.resources[rt].get(t, int64(id))
		if !ok {
			continue
		}
		free := t.Load64(rec + resFree*8)
		price := int64(t.Load64(rec + resPrice*8))
		if free > 0 && price > bestPrice[rt] {
			bestPrice[rt] = price
			bestID[rt] = id
		}
	}
	// Book the winners.
	var custList txds.List
	custLoaded := false
	for rt := 0; rt < 3; rt++ {
		if bestID[rt] < 0 {
			continue
		}
		rec, ok := v.resources[rt].get(t, int64(bestID[rt]))
		if !ok {
			continue
		}
		free := t.Load64(rec + resFree*8)
		if free == 0 {
			continue
		}
		if !custLoaded {
			h, ok := v.customers.get(t, customer)
			if !ok {
				h = uint64(txds.NewList(t).Handle())
				v.customers.insert(t, customer, h)
			}
			custList = txds.ListAt(h)
			custLoaded = true
		}
		key := v.reservationKey(rt, bestID[rt])
		if !custList.Insert(t, key, uint64(bestPrice[rt])) {
			continue // already holds this exact reservation
		}
		t.Store64(rec+resFree*8, free-1)
		t.Store64(rec+resUsed*8, t.Load64(rec+resUsed*8)+1)
	}
}

// deleteCustomer releases all of a customer's reservations and removes the
// customer record.
func (v *vacation) deleteCustomer(t *htm.Thread, rng *prng.Rand, queryRange int) {
	customer := int64(rng.Intn(queryRange))
	h, ok := v.customers.get(t, customer)
	if !ok {
		return
	}
	list := txds.ListAt(h)
	for {
		key, _, ok := list.RemoveFirst(t)
		if !ok {
			break
		}
		rt := int(key) / v.relations
		id := int(key) % v.relations
		rec, ok := v.resources[rt].get(t, int64(id))
		if !ok {
			continue
		}
		t.Store64(rec+resFree*8, t.Load64(rec+resFree*8)+1)
		t.Store64(rec+resUsed*8, t.Load64(rec+resUsed*8)-1)
	}
	v.customers.remove(t, customer)
	t.Free(h)
}

// updateTables grows or shrinks resource availability (STAMP's
// manager_add/deleteReservation path).
func (v *vacation) updateTables(t *htm.Thread, rng *prng.Rand, queryRange int) {
	n := v.numQuery / 2
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		rt := rng.Intn(3)
		id := rng.Intn(queryRange)
		rec, ok := v.resources[rt].get(t, int64(id))
		if !ok {
			continue
		}
		if rng.Bernoulli(0.5) {
			t.Store64(rec+resTotal*8, t.Load64(rec+resTotal*8)+100)
			t.Store64(rec+resFree*8, t.Load64(rec+resFree*8)+100)
		} else if t.Load64(rec+resFree*8) >= 100 {
			t.Store64(rec+resTotal*8, t.Load64(rec+resTotal*8)-100)
			t.Store64(rec+resFree*8, t.Load64(rec+resFree*8)-100)
		}
	}
}

func (v *vacation) Run(runners []Runner) {
	n := len(runners)
	queryRange := v.relations * v.queryPct / 100
	if queryRange < 1 {
		queryRange = 1
	}
	runWorkers(runners, func(tid int, r Runner) {
		rng := prng.Derive(v.cfg.Seed^0x636c69656e74, tid) // "client"
		lo := tid * v.nTxs / n
		hi := (tid + 1) * v.nTxs / n
		for i := lo; i < hi; i++ {
			r.Thread().Work(60) // client-side action selection and RNG
			action := rng.Intn(100)
			// Snapshot the RNG so every transactional retry replays the
			// same action deterministically.
			actionRng := prng.Derive(v.cfg.Seed^0x616374, tid*1000003+i)
			switch {
			case action < v.userPct:
				r.Atomic(func(t *htm.Thread) {
					rr := *actionRng
					v.makeReservation(t, &rr, queryRange)
				})
			case action < v.userPct+(100-v.userPct)/2:
				r.Atomic(func(t *htm.Thread) {
					rr := *actionRng
					v.deleteCustomer(t, &rr, queryRange)
				})
			default:
				r.Atomic(func(t *htm.Thread) {
					rr := *actionRng
					v.updateTables(t, &rr, queryRange)
				})
			}
		}
	})
	v.units = v.nTxs
}

func (v *vacation) Validate(t *htm.Thread) error {
	// Conservation: per resource, used must equal the number of customer
	// reservations referencing it, and used+free == total.
	wantUsed := make(map[int64]uint64)
	v.customers.each(t, func(_ int64, h uint64) bool {
		txds.ListAt(h).Each(t, func(key int64, _ uint64) bool {
			wantUsed[key]++
			return true
		})
		return true
	})
	for rt := 0; rt < 3; rt++ {
		var err error
		v.resources[rt].each(t, func(id int64, rec uint64) bool {
			total := t.Load64(rec + resTotal*8)
			used := t.Load64(rec + resUsed*8)
			free := t.Load64(rec + resFree*8)
			if used+free != total {
				err = fmt.Errorf("vacation: resource %d/%d: used %d + free %d != total %d",
					rt, id, used, free, total)
				return false
			}
			if w := wantUsed[v.reservationKey(rt, int(id))]; w != used {
				err = fmt.Errorf("vacation: resource %d/%d: used %d but %d customer reservations",
					rt, id, used, w)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	if v.cfg.Variant == Original {
		if err := v.customers.rb.CheckInvariants(t); err != nil {
			return fmt.Errorf("vacation: customers tree: %w", err)
		}
	}
	return nil
}

func (v *vacation) Units() int { return v.units }
