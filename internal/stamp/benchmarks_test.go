package stamp

import (
	"testing"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/tm"
)

// Per-benchmark behavioural tests, beyond the registry-wide validation runs
// in stamp_test.go.

func seqRun(t *testing.T, name string, cfg Config, k platform.Kind) (Benchmark, *htm.Engine) {
	t.Helper()
	e := htm.New(platform.New(k), htm.Config{
		Threads: 1, SpaceSize: 96 << 20, Seed: cfg.Seed + 1, CostScale: 0, Virtual: true,
	})
	b, err := New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Setup(e.Thread(0))
	b.Run([]Runner{SeqRunner{T: e.Thread(0)}})
	if err := b.Validate(e.Thread(0)); err != nil {
		t.Fatal(err)
	}
	return b, e
}

func TestGenomeReconstructionAcrossChunks(t *testing.T) {
	for _, chunk := range []int{1, 2, 9, 24} {
		b, _ := seqRun(t, "genome", Config{Scale: ScaleTest, Seed: 5, ChunkStep1: chunk}, platform.IntelCore)
		g := b.(*genome)
		if string(g.result) != string(g.gene) {
			t.Errorf("chunk %d: reconstruction mismatch", chunk)
		}
	}
}

func TestGenomeOriginalUsesLargerChunk(t *testing.T) {
	orig := newGenome(Config{Scale: ScaleTest, Variant: Original})
	mod := newGenome(Config{Scale: ScaleTest, Variant: Modified})
	if orig.chunk <= mod.chunk {
		t.Errorf("original chunk %d must exceed modified %d (the Section 4 tuning)", orig.chunk, mod.chunk)
	}
}

func TestIntruderCountsInjectedAttacks(t *testing.T) {
	b, _ := seqRun(t, "intruder", Config{Scale: ScaleTest, Seed: 7}, platform.IntelCore)
	in := b.(*intruder)
	if in.nAttacks == 0 {
		t.Fatal("no attacks were injected; the detector is untested")
	}
	if got := int(in.found.Load()); got != in.nAttacks {
		t.Errorf("found %d attacks, injected %d", got, in.nAttacks)
	}
}

func TestKMeansVariantLayouts(t *testing.T) {
	e := htm.New(platform.New(platform.ZEC12), htm.Config{
		Threads: 1, SpaceSize: 16 << 20, CostScale: 0,
	})
	line := uint64(e.LineSize())
	mod := newKMeans(Config{Scale: ScaleTest, Variant: Modified, Seed: 1}, true)
	mod.Setup(e.Thread(0))
	for c, a := range mod.accum {
		if a%line != 0 {
			t.Errorf("modified: cluster %d at %#x not line-aligned", c, a)
		}
	}
	orig := newKMeans(Config{Scale: ScaleTest, Variant: Original, Seed: 1}, true)
	orig.Setup(e.Thread(0))
	misaligned := 0
	for _, a := range orig.accum {
		if a%line != 0 {
			misaligned++
		}
	}
	if misaligned == 0 {
		t.Error("original: no cluster record is misaligned (Section 4's false-conflict source missing)")
	}
}

func TestLabyrinthPathsAreDisjoint(t *testing.T) {
	b, e := seqRun(t, "labyrinth", Config{Scale: ScaleTest, Seed: 9}, platform.IntelCore)
	l := b.(*labyrinth)
	claimed := map[int]int{}
	for id, path := range l.paths {
		for _, c := range path {
			if prev, dup := claimed[c]; dup {
				t.Fatalf("cell %d claimed by routes %d and %d", c, prev, id)
			}
			claimed[c] = id
		}
	}
	_ = e
}

func TestVacationOriginalUsesTrees(t *testing.T) {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 1, SpaceSize: 32 << 20, CostScale: 0,
	})
	v := newVacation(Config{Scale: ScaleTest, Variant: Original, Seed: 1}, true)
	v.Setup(e.Thread(0))
	if !v.resources[0].useTree || !v.customers.useTree {
		t.Error("original vacation must use red-black trees for its tables")
	}
	m := newVacation(Config{Scale: ScaleTest, Variant: Modified, Seed: 1}, true)
	m.Setup(e.Thread(0))
	if m.resources[0].useTree {
		t.Error("modified vacation must use hash tables")
	}
}

func TestVacationParameterSets(t *testing.T) {
	hi := newVacation(Config{}, true)
	lo := newVacation(Config{}, false)
	// STAMP: -n4 -q60 -u90 vs -n2 -q90 -u98.
	if hi.numQuery != 4 || hi.queryPct != 60 || hi.userPct != 90 {
		t.Errorf("vacation-high params = %d/%d/%d", hi.numQuery, hi.queryPct, hi.userPct)
	}
	if lo.numQuery != 2 || lo.queryPct != 90 || lo.userPct != 98 {
		t.Errorf("vacation-low params = %d/%d/%d", lo.numQuery, lo.queryPct, lo.userPct)
	}
}

func TestKMeansContentionParameters(t *testing.T) {
	hi := newKMeans(Config{}, true)
	lo := newKMeans(Config{}, false)
	if hi.nClusters != 15 || lo.nClusters != 40 {
		t.Errorf("cluster counts = %d/%d, want 15/40 (STAMP -m15/-m40)", hi.nClusters, lo.nClusters)
	}
}

func TestYadaAccountingSequential(t *testing.T) {
	b, _ := seqRun(t, "yada", Config{Scale: ScaleTest, Seed: 11}, platform.IntelCore)
	y := b.(*yada)
	if y.refinements+y.preempted != y.nBad+y.spawned {
		t.Errorf("work accounting broken: %d+%d != %d+%d",
			y.refinements, y.preempted, y.nBad, y.spawned)
	}
	if y.refinements == 0 {
		t.Error("no refinements")
	}
}

func TestBayesLearnsSomeEdges(t *testing.T) {
	b, _ := seqRun(t, "bayes", Config{Scale: ScaleTest, Seed: 13}, platform.IntelCore)
	by := b.(*bayes)
	if by.inserted == 0 {
		t.Error("hill climbing inserted no edges")
	}
	if by.processed != by.nVars*by.maxRounds {
		t.Errorf("processed %d tasks, want %d", by.processed, by.nVars*by.maxRounds)
	}
}

// TestBenchmarksUnderSTMRunner: the same workloads must validate when every
// critical section runs as a NOrec software transaction.
func TestBenchmarksUnderSTMRunner(t *testing.T) {
	for _, name := range []string{"kmeans-low", "ssca2", "vacation-low", "genome", "yada"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e := htm.New(platform.New(platform.ZEC12), htm.Config{
				Threads: 4, SpaceSize: 96 << 20, Seed: 15, CostScale: 0, Virtual: true,
			})
			b, err := New(name, Config{Scale: ScaleTest, Seed: 15})
			if err != nil {
				t.Fatal(err)
			}
			b.Setup(e.Thread(0))
			lock := tm.NewGlobalLock(e)
			runners := make([]Runner, 4)
			for i := range runners {
				runners[i] = STMRunner{X: tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(platform.ZEC12))}
			}
			b.Run(runners)
			if err := b.Validate(e.Thread(0)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelDeterminismPerBenchmark: identical virtual-time runs must give
// identical speed-relevant outcomes for deterministic benchmarks.
func TestParallelDeterminismPerBenchmark(t *testing.T) {
	run := func(name string) (uint64, htm.Stats) {
		e := htm.New(platform.New(platform.POWER8), htm.Config{
			Threads: 4, SpaceSize: 96 << 20, Seed: 17, CostScale: 1, Virtual: true,
		})
		b, err := New(name, Config{Scale: ScaleTest, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		b.Setup(e.Thread(0))
		lock := tm.NewGlobalLock(e)
		runners := make([]Runner, 4)
		for i := range runners {
			runners[i] = TMRunner{X: tm.NewExecutor(e.Thread(i), lock, tm.DefaultPolicy(platform.POWER8))}
		}
		e.ResetClocks()
		b.Run(runners)
		if err := b.Validate(e.Thread(0)); err != nil {
			t.Fatal(err)
		}
		return e.MaxClock(), e.Stats()
	}
	for _, name := range []string{"kmeans-high", "vacation-low", "intruder"} {
		c1, s1 := run(name)
		c2, s2 := run(name)
		if c1 != c2 || s1 != s2 {
			t.Errorf("%s: runs differ (clock %d vs %d)", name, c1, c2)
		}
	}
}
