package stamp

import (
	"fmt"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
	"htmcmp/internal/txds"
)

func init() {
	register("genome", func(cfg Config) Benchmark { return newGenome(cfg) })
}

// genome is STAMP's gene sequencer. A gene string is shredded into
// overlapping segments (with duplicates); the benchmark reassembles it:
//
//	phase 1 (parallel, transactional): de-duplicate segments by inserting
//	  them into a shared hash set, CHUNK_STEP_1 segments per transaction —
//	  the compile-time parameter the paper tunes per platform (9 on Blue
//	  Gene/Q, 2 elsewhere; Section 4);
//	phase 2 (parallel, transactional): overlap matching — register each
//	  unique segment under its prefix hash, then link each segment to the
//	  segment starting with its suffix, claiming the successor with a
//	  transactional flag so every segment gets exactly one predecessor;
//	phase 3 (serial): walk the successor chain to rebuild the gene.
//
// Segments are fixed-length windows at a fixed stride, so the overlap length
// is constant and one matching round suffices (the STAMP original iterates
// overlap lengths; the transaction shapes per round are the same).
//
// Segment-record layout: [strAddr][next][linked][prefixHash][suffixHash].
type genome struct {
	cfg       Config
	geneLen   int
	segLen    int
	stride    int
	dupFactor int
	chunk     int // CHUNK_STEP_1

	gene    []byte
	segs    []mem.Addr // all segment strings (with duplicates)
	uniqSet txds.Hashtable
	starts  txds.Hashtable
	records []mem.Addr // unique segment records (built between phases)
	result  []byte     // phase-3 reconstruction
	units   int
}

const (
	segStr    = 0
	segNext   = 1
	segLinked = 2
	segPrefix = 3
	segSuffix = 4
	segWords  = 5
)

func newGenome(cfg Config) *genome {
	g := &genome{cfg: cfg, segLen: 32, stride: 8, dupFactor: 8}
	switch cfg.Scale {
	case ScaleTest:
		g.geneLen = 512
	case ScaleSim:
		g.geneLen = 2048
	default:
		g.geneLen = 8192
	}
	g.chunk = cfg.ChunkStep1
	if g.chunk <= 0 {
		if cfg.Variant == Original {
			// The untuned original batches many insertions per
			// transaction — the capacity-overflow source the paper's
			// Section 4 tuning eliminates (down to 9 on Blue Gene/Q and
			// 2 on the 8 KB-class platforms).
			g.chunk = 24
		} else {
			g.chunk = 2 // the paper's tuned value for zEC12/Intel/POWER8
		}
	}
	return g
}

func (g *genome) Name() string { return "genome" }

func (g *genome) overlap() int { return g.segLen - g.stride }

func (g *genome) Setup(t *htm.Thread) {
	rng := prng.New(g.cfg.Seed ^ 0x67656e6f6d65) // "genome"
	letters := []byte("acgt")
	g.gene = make([]byte, g.geneLen)
	for i := range g.gene {
		g.gene[i] = letters[rng.Intn(4)]
	}
	// Shred into overlapping windows; replicate each dupFactor times and
	// shuffle, as the sequencer's input arrives unordered.
	nWin := (g.geneLen-g.segLen)/g.stride + 1
	g.segs = g.segs[:0]
	for w := 0; w < nWin; w++ {
		start := w * g.stride
		a := t.Alloc(g.segLen)
		t.Engine().Space().WriteBytes(a, g.gene[start:start+g.segLen])
		for d := 0; d < g.dupFactor; d++ {
			g.segs = append(g.segs, a)
		}
	}
	rng.Shuffle(len(g.segs), func(i, j int) { g.segs[i], g.segs[j] = g.segs[j], g.segs[i] })
	g.uniqSet = txds.NewHashtable(t, nWin*8)
	g.starts = txds.NewHashtable(t, nWin*8)
	g.records = nil
	g.result = nil
}

// contentHash hashes the whole segment (4 aligned words).
func contentHash(t *htm.Thread, str mem.Addr, segLen int) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < segLen; i += 8 {
		h = txds.Hash64(h ^ t.LoadRO64(str+uint64(i)))
	}
	return int64(h | 1) // never zero
}

// affixHash hashes o bytes starting at off (both multiples of 8).
func affixHash(t *htm.Thread, str mem.Addr, off, o int) int64 {
	h := uint64(0xc2b2ae3d27d4eb4f)
	for i := 0; i < o; i += 8 {
		h = txds.Hash64(h ^ t.LoadRO64(str+uint64(off+i)))
	}
	return int64(h | 1)
}

func (g *genome) Run(runners []Runner) {
	n := len(runners)
	bar := NewBarrier(runners)
	o := g.overlap() // 24 bytes: bytes [0,24) prefix, [stride,segLen) suffix

	runWorkers(runners, func(tid int, r Runner) {
		// --- Phase 1: transactional de-duplication, chunked.
		lo := tid * len(g.segs) / n
		hi := (tid + 1) * len(g.segs) / n
		for base := lo; base < hi; base += g.chunk {
			end := base + g.chunk
			if end > hi {
				end = hi
			}
			r.Thread().Work(12 * (end - base)) // segment staging
			r.Atomic(func(t *htm.Thread) {
				for i := base; i < end; i++ {
					str := g.segs[i]
					g.uniqSet.Insert(t, contentHash(t, str, g.segLen), str)
				}
			})
		}
		bar.Wait(r.Thread())

		// Between phases: collect unique segments into records (serial,
		// like STAMP's sequencer bookkeeping between steps).
		if tid == 0 {
			t := r.Thread()
			g.records = g.records[:0]
			g.uniqSet.Each(t, func(_ int64, str uint64) bool {
				rec := t.AllocAligned(segWords*8, 64) // malloc-realistic spacing
				t.Store64(rec+segStr*8, str)
				t.Store64(rec+segNext*8, mem.Nil)
				t.Store64(rec+segLinked*8, 0)
				t.Store64(rec+segPrefix*8, uint64(affixHash(t, str, 0, o)))
				t.Store64(rec+segSuffix*8, uint64(affixHash(t, str, g.stride, o)))
				g.records = append(g.records, rec)
				return true
			})
		}
		bar.Wait(r.Thread())

		// --- Phase 2a: register unique segments by prefix hash.
		lo = tid * len(g.records) / n
		hi = (tid + 1) * len(g.records) / n
		for base := lo; base < hi; base += g.chunk {
			end := base + g.chunk
			if end > hi {
				end = hi
			}
			r.Atomic(func(t *htm.Thread) {
				for i := base; i < end; i++ {
					rec := g.records[i]
					g.starts.Insert(t, int64(t.Load64(rec+segPrefix*8)), rec)
				}
			})
		}
		bar.Wait(r.Thread())

		// --- Phase 2b: link each segment to its successor, claiming it.
		for i := lo; i < hi; i++ {
			rec := g.records[i]
			r.Atomic(func(t *htm.Thread) {
				suffix := int64(t.Load64(rec + segSuffix*8))
				cand, ok := g.starts.Get(t, suffix)
				if !ok || cand == rec {
					return
				}
				if t.Load64(cand+segLinked*8) != 0 {
					return
				}
				if t.Load64(rec+segNext*8) != mem.Nil {
					return
				}
				t.Store64(rec+segNext*8, cand)
				t.Store64(cand+segLinked*8, 1)
			})
		}
		bar.Wait(r.Thread())

		// --- Phase 3: serial chain walk rebuilding the gene.
		if tid == 0 {
			g.rebuild(r.Thread())
		}
	})
	g.units = len(g.segs)
}

// rebuild walks the successor chain from the head segment (the unique
// segment no other segment links to) and reconstructs the gene.
func (g *genome) rebuild(t *htm.Thread) {
	var head mem.Addr
	for _, rec := range g.records {
		if t.Load64(rec+segLinked*8) == 0 {
			head = rec
			break
		}
	}
	if head == mem.Nil {
		return // cycle: Validate will reject
	}
	out := make([]byte, 0, g.geneLen)
	cur := head
	for cur != mem.Nil {
		str := t.Load64(cur + segStr*8)
		if len(out) == 0 {
			out = append(out, t.Engine().Space().ReadBytes(str, g.segLen)...)
		} else {
			out = append(out, t.Engine().Space().ReadBytes(str+uint64(g.overlap()), g.stride)...)
		}
		cur = t.Load64(cur + segNext*8)
	}
	g.result = out
}

func (g *genome) Validate(t *htm.Thread) error {
	nWin := (g.geneLen-g.segLen)/g.stride + 1
	if len(g.records) != nWin {
		return fmt.Errorf("genome: %d unique segments after dedup, want %d", len(g.records), nWin)
	}
	// Every segment except the tail must be linked to a successor, and
	// every segment except the head must be claimed exactly once.
	linked := 0
	withNext := 0
	for _, rec := range g.records {
		if t.Load64(rec+segLinked*8) != 0 {
			linked++
		}
		if t.Load64(rec+segNext*8) != mem.Nil {
			withNext++
		}
	}
	if linked != nWin-1 || withNext != nWin-1 {
		return fmt.Errorf("genome: %d claimed / %d with successor, want %d of each",
			linked, withNext, nWin-1)
	}
	if string(g.result) != string(g.gene) {
		return fmt.Errorf("genome: reconstructed %d bytes != original %d-byte gene",
			len(g.result), len(g.gene))
	}
	return nil
}

func (g *genome) Units() int { return g.units }
