package stamp

import (
	"fmt"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/prng"
	"htmcmp/internal/txds"
)

func init() {
	register("labyrinth", func(cfg Config) Benchmark { return newLabyrinth(cfg) })
}

// labyrinth is STAMP's maze router (Lee's algorithm). Each transaction pops
// a (source, destination) work item, breadth-first-searches the shared grid
// for a shortest free path — reading every visited cell transactionally,
// the analogue of STAMP's in-transaction grid copy and the source of the
// multi-kilobyte read sets — and then claims the path cells with
// transactional stores.
//
// The footprint is why labyrinth barely scales anywhere in the paper's
// Figure 5: the BFS read set approaches the whole grid (larger than
// POWER8's 8 KB capacity), concurrent routes conflict on almost any write,
// and the path writes press on zEC12's 8 KB store cache.
//
// Grid layout: one word per cell; 0 = free, -1 = wall, k>0 = route k.
type labyrinth struct {
	cfg     Config
	w, h, d int
	nRoutes int

	grid  mem.Addr
	works txds.Queue
	paths [][]int // successful routes' cell indices (by route id)
	fails int

	units int
}

const (
	wallCell     = ^uint64(0)     // -1: obstacle
	reservedCell = ^uint64(0) - 1 // endpoint of a not-yet-routed work item
)

func newLabyrinth(cfg Config) *labyrinth {
	l := &labyrinth{cfg: cfg}
	switch cfg.Scale {
	case ScaleTest:
		l.w, l.h, l.d, l.nRoutes = 16, 16, 2, 8
	case ScaleSim:
		l.w, l.h, l.d, l.nRoutes = 32, 32, 3, 48
	default:
		l.w, l.h, l.d, l.nRoutes = 64, 64, 3, 128
	}
	return l
}

func (l *labyrinth) Name() string { return "labyrinth" }

func (l *labyrinth) cells() int { return l.w * l.h * l.d }

func (l *labyrinth) idx(x, y, z int) int { return (z*l.h+y)*l.w + x }

func (l *labyrinth) cellAddr(i int) mem.Addr { return l.grid + uint64(i)*8 }

func (l *labyrinth) Setup(t *htm.Thread) {
	rng := prng.New(l.cfg.Seed ^ 0x6c616279) // "laby"
	n := l.cells()
	l.grid = t.Alloc(n * 8)
	// 5% walls.
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.05) {
			t.Engine().Space().Store64(l.cellAddr(i), wallCell)
		}
	}
	// Work items: distinct random free endpoints, packed src<<32|dst.
	l.works = txds.NewQueue(t, l.nRoutes+1)
	used := map[int]bool{}
	freeCell := func() int {
		for {
			i := rng.Intn(n)
			if !used[i] && t.Engine().Space().Load64(l.cellAddr(i)) == 0 {
				used[i] = true
				return i
			}
		}
	}
	for r := 0; r < l.nRoutes; r++ {
		src, dst := freeCell(), freeCell()
		// Endpoints are reserved up front, as STAMP pre-marks all work-item
		// points: no route may pass through another route's terminals.
		t.Engine().Space().Store64(l.cellAddr(src), reservedCell)
		t.Engine().Space().Store64(l.cellAddr(dst), reservedCell)
		l.works.Push(t, uint64(src)<<32|uint64(dst))
	}
	l.paths = make([][]int, l.nRoutes+1)
	l.fails = 0
}

// neighbors appends the 6-connected neighbours of cell i to out.
func (l *labyrinth) neighbors(i int, out []int) []int {
	x := i % l.w
	y := (i / l.w) % l.h
	z := i / (l.w * l.h)
	if x > 0 {
		out = append(out, i-1)
	}
	if x < l.w-1 {
		out = append(out, i+1)
	}
	if y > 0 {
		out = append(out, i-l.w)
	}
	if y < l.h-1 {
		out = append(out, i+l.w)
	}
	if z > 0 {
		out = append(out, i-l.w*l.h)
	}
	if z < l.d-1 {
		out = append(out, i+l.w*l.h)
	}
	return out
}

// route BFSes from src to dst over free cells, reading the grid
// transactionally, and returns the path (src..dst) or nil.
func (l *labyrinth) route(t *htm.Thread, src, dst int) []int {
	n := l.cells()
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = int32(src)
	queue := make([]int, 0, n)
	queue = append(queue, src)
	var nbuf [6]int
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur == dst {
			// Reconstruct.
			var path []int
			for c := dst; ; c = int(prev[c]) {
				path = append(path, c)
				if c == src {
					break
				}
			}
			// Reverse to src..dst order.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, nb := range l.neighbors(cur, nbuf[:0]) {
			if prev[nb] != -1 {
				continue
			}
			v := t.Load64(l.cellAddr(nb)) // transactional grid read
			if v != 0 && nb != dst {      // own terminals are passable
				continue
			}
			prev[nb] = int32(cur)
			queue = append(queue, nb)
		}
	}
	return nil
}

func (l *labyrinth) Run(runners []Runner) {
	type result struct {
		id   int
		path []int
	}
	resCh := make(chan result, l.nRoutes)
	routeID := 1
	var idMu = make(chan int, 1)
	idMu <- routeID

	runWorkers(runners, func(tid int, r Runner) {
		for {
			var work uint64
			var ok bool
			r.Atomic(func(t *htm.Thread) {
				work, ok = l.works.Pop(t)
			})
			if !ok {
				return
			}
			src := int(work >> 32)
			dst := int(work & 0xffffffff)
			r.Thread().Work(100) // router bookkeeping per work item
			id := <-idMu
			myID := id
			idMu <- id + 1

			var path []int
			r.Atomic(func(t *htm.Thread) {
				path = l.route(t, src, dst)
				for _, c := range path {
					t.Store64(l.cellAddr(c), uint64(myID))
				}
			})
			resCh <- result{id: myID, path: path}
		}
	})
	close(resCh)
	for res := range resCh {
		if res.path == nil {
			l.fails++
		} else {
			l.paths[res.id] = res.path
		}
	}
	l.units = l.nRoutes
}

func (l *labyrinth) Validate(t *htm.Thread) error {
	succ := 0
	for id, path := range l.paths {
		if path == nil {
			continue
		}
		succ++
		for pi, c := range path {
			if got := t.Load64(l.cellAddr(c)); got != uint64(id) {
				return fmt.Errorf("labyrinth: route %d cell %d holds %d", id, c, got)
			}
			if pi > 0 {
				if !adjacent(l, path[pi-1], c) {
					return fmt.Errorf("labyrinth: route %d not connected at step %d", id, pi)
				}
			}
		}
	}
	if succ+l.fails != l.nRoutes {
		return fmt.Errorf("labyrinth: %d successes + %d fails != %d routes", succ, l.fails, l.nRoutes)
	}
	if succ == 0 {
		return fmt.Errorf("labyrinth: no route succeeded")
	}
	// No cell may carry a route id that has no path (aborted writes leaked),
	// and only failed routes may leave reserved terminals behind.
	n := l.cells()
	reserved := 0
	for i := 0; i < n; i++ {
		v := t.Load64(l.cellAddr(i))
		if v == 0 || v == wallCell {
			continue
		}
		if v == reservedCell {
			reserved++
			continue
		}
		if int(v) >= len(l.paths) || l.paths[v] == nil {
			return fmt.Errorf("labyrinth: cell %d claimed by unknown route %d", i, v)
		}
	}
	if reserved != 2*l.fails {
		return fmt.Errorf("labyrinth: %d reserved terminals left, want %d (2 per failed route)", reserved, 2*l.fails)
	}
	return nil
}

func adjacent(l *labyrinth, a, b int) bool {
	var buf [6]int
	for _, nb := range l.neighbors(a, buf[:0]) {
		if nb == b {
			return true
		}
	}
	return false
}

func (l *labyrinth) Units() int { return l.units }
