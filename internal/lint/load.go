package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked package plus the parsed-but-not-
// built files of its directory (build-tag-excluded sources, which the
// tagpair analyzer needs).
type Package struct {
	// Path is the import path; external test packages carry the base
	// path so per-package-path policy (e.g. the determinism core set)
	// applies to them too.
	Path string
	Name string
	Dir  string
	Fset *token.FileSet
	// Files are the type-checked sources. For the base package this is
	// GoFiles plus in-package TestGoFiles (the same merge the test
	// binary compiles); an external test package carries XTestGoFiles.
	Files []*ast.File
	// Ignored holds files excluded from the current build configuration
	// by build constraints — parsed, never type-checked. Only set on
	// the base package of a directory.
	Ignored []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// IsTestFile reports whether f is a _test.go file of this package.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath     string
	Name           string
	Dir            string
	Standard       bool
	DepOnly        bool
	ForTest        string
	Export         string
	GoFiles        []string
	TestGoFiles    []string
	XTestGoFiles   []string
	IgnoredGoFiles []string
}

// Load enumerates, parses and type-checks the packages matched by
// patterns under the module rooted at (or containing) dir. Dependencies
// — standard library and module-internal alike — are resolved from
// compiler export data produced by `go list -export`, so loading works
// without network access and without re-type-checking the dependency
// closure from source. CGO is disabled for hermeticity: the pure-Go
// fallbacks of the few cgo-capable stdlib packages are what get
// analyzed, matching how CI builds the tree.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e=false", "-test", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Standard,DepOnly,ForTest,Export,GoFiles,TestGoFiles,XTestGoFiles,IgnoredGoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		// Test variants ("p [p.test]") and synthetic test mains
		// ("p.test") exist only so the dep closure includes test-only
		// imports; the plain entries carry everything we analyze.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list %s matched no packages", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := &exportImporter{exports: exports}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)

	var pkgs []*Package
	for _, t := range targets {
		base, err := checkPackage(fset, imp, t, append(t.GoFiles, t.TestGoFiles...), t.ImportPath)
		if err != nil {
			return nil, err
		}
		for _, name := range t.IgnoredGoFiles {
			f, err := parseOne(fset, filepath.Join(t.Dir, name))
			if err != nil {
				return nil, err
			}
			base.Ignored = append(base.Ignored, f)
		}
		pkgs = append(pkgs, base)
		if len(t.XTestGoFiles) > 0 {
			// First try the external test package against pure export
			// data — the only view whose type identities agree with
			// sibling imports. That fails when the xtest references
			// in-package test declarations of its base (export data
			// does not carry them), so retry with the base's
			// source-checked object overriding its import.
			xt, err := checkPackage(fset, imp, t, t.XTestGoFiles, t.ImportPath+"_test")
			if err != nil && len(t.TestGoFiles) > 0 {
				imp.overridePath, imp.override = t.ImportPath, base.Types
				xt, err = checkPackage(fset, imp, t, t.XTestGoFiles, t.ImportPath+"_test")
				imp.overridePath, imp.override = "", nil
			}
			if err != nil {
				return nil, err
			}
			xt.Path = t.ImportPath // policy follows the directory's path
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one set of files as a package.
func checkPackage(fset *token.FileSet, imp types.Importer, t *listPkg, names []string, path string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parseOne(fset, filepath.Join(t.Dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	name := tpkg.Name()
	return &Package{
		Path:  path,
		Name:  name,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

func parseOne(fset *token.FileSet, path string) (*ast.File, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return f, nil
}

// exportImporter resolves every import from compiler export data — one
// gc importer instance, so each path maps to exactly one *types.Package
// regardless of the order targets are checked in. The single exception
// is override: while an external test package is being checked, its
// base package import resolves to the source-checked object instead
// (export data does not carry in-package test declarations).
type exportImporter struct {
	exports      map[string]string
	gc           types.Importer
	overridePath string
	override     *types.Package
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if e.override != nil && path == e.overridePath {
		return e.override, nil
	}
	return e.gc.Import(path)
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := e.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q (not in the `go list -test -deps` closure)", path)
	}
	return os.Open(f)
}
