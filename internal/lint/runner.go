package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Run executes the given analyzers over the loaded packages, applies the
// //htmlint:allow directives, and returns the surviving findings sorted
// by position. Malformed directives and allow directives that suppressed
// nothing are findings too (check name "directive").
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	ds := collectDirectives(pkgs)
	out := ds.apply(raw)
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	out = append(out, ds.unused(enabled)...)
	out = append(out, ds.malformed...)
	sortDiagnostics(out)
	return out, nil
}

// WriteText renders findings one per line in file:line:col format.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array — the CI artifact format.
// An empty run encodes as [] rather than null so consumers can always
// range over the result.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}
