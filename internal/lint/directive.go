package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// directivePrefix introduces every in-source htmlint annotation.
const directivePrefix = "//htmlint:"

// An allowDirective is one parsed `//htmlint:allow <check> -- <reason>`.
// It suppresses findings of the named check on its own line and on the
// line directly below it (so it can ride at the end of the offending
// line or on a comment line immediately above it).
type allowDirective struct {
	Check  string
	Reason string
	File   string
	Line   int
	used   bool
}

// directiveSet is every htmlint directive found in a set of packages,
// plus malformed ones surfaced as diagnostics.
type directiveSet struct {
	allows    []*allowDirective
	malformed []Diagnostic
}

// collectDirectives scans every comment of every parsed file (including
// build-tag-excluded ones) for htmlint annotations. The cachekey struct
// marker is validated and consumed by the cachekey analyzer itself; here
// it is only checked for gross syntax.
func collectDirectives(pkgs []*Package) *directiveSet {
	ds := &directiveSet{}
	seen := map[string]bool{} // file:line dedupe; base and xtest share ignored files
	for _, pkg := range pkgs {
		files := append([]*ast.File{}, pkg.Files...)
		files = append(files, pkg.Ignored...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := pos.Filename + ":" + strconv.Itoa(pos.Line)
					if seen[key] {
						continue
					}
					seen[key] = true
					ds.parse(c.Text[len(directivePrefix):], pos.Filename, pos.Line, pos.Column)
				}
			}
		}
	}
	return ds
}

func (ds *directiveSet) parse(body, file string, line, col int) {
	verb, rest, _ := strings.Cut(body, " ")
	bad := func(msg string) {
		ds.malformed = append(ds.malformed, Diagnostic{
			Check: "directive", File: file, Line: line, Col: col, Message: msg,
		})
	}
	switch verb {
	case "allow":
		spec, reason, ok := strings.Cut(rest, "--")
		check := strings.TrimSpace(spec)
		reason = strings.TrimSpace(reason)
		if !ok || reason == "" {
			bad("//htmlint:allow needs a justification: `//htmlint:allow <check> -- <reason>`")
			return
		}
		if !knownCheck(check) {
			bad("//htmlint:allow names unknown check " + quote(check))
			return
		}
		ds.allows = append(ds.allows, &allowDirective{
			Check: check, Reason: reason, File: file, Line: line,
		})
	case "cachekey":
		// Validated in depth by the cachekey analyzer, which also
		// reports markers that are attached to nothing.
	default:
		bad("unknown htmlint directive " + quote(verb) + " (want allow or cachekey)")
	}
}

// apply filters diags through the allow directives, marking each
// directive that suppressed at least one finding. It returns the
// surviving findings.
func (ds *directiveSet) apply(diags []Diagnostic) []Diagnostic {
	byLine := map[string][]*allowDirective{}
	for _, a := range ds.allows {
		byLine[a.File+":"+strconv.Itoa(a.Line)] = append(byLine[a.File+":"+strconv.Itoa(a.Line)], a)
	}
	match := func(d Diagnostic, line int) bool {
		for _, a := range byLine[d.File+":"+strconv.Itoa(line)] {
			if a.Check == d.Check {
				a.used = true
				return true
			}
		}
		return false
	}
	var out []Diagnostic
	for _, d := range diags {
		if match(d, d.Line) || match(d, d.Line-1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// unused reports every allow directive for an enabled check that
// suppressed nothing — dead annotations are findings themselves, which
// keeps each `//htmlint:allow` in the tree load-bearing: deleting the
// violation it covers without deleting the directive fails the build,
// and so does deleting neither-needed leftovers.
func (ds *directiveSet) unused(enabled map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, a := range ds.allows {
		if !a.used && enabled[a.Check] {
			out = append(out, Diagnostic{
				Check: "directive", File: a.File, Line: a.Line, Col: 1,
				Message: "//htmlint:allow " + a.Check + " suppresses no finding; delete it",
			})
		}
	}
	return out
}

func knownCheck(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

func quote(s string) string { return "\"" + s + "\"" }
