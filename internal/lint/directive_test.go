package lint_test

import (
	"strings"
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

// TestDirectiveFindings runs the whole suite over the host fixture,
// which deliberately carries one unused allow and three malformed
// directives; each must surface as a "directive" finding and nothing
// else may fire.
func TestDirectiveFindings(t *testing.T) {
	diags := linttest.Findings(t, fixtureDir, lint.Analyzers(), "./host")
	wantSubstrings := []string{
		"suppresses no finding",
		"needs a justification",
		"unknown check \"nosuchcheck\"",
		"unknown htmlint directive \"frobnicate\"",
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(wantSubstrings), render(diags))
	}
	for _, d := range diags {
		if d.Check != "directive" {
			t.Errorf("non-directive finding in host fixture: %s", d)
		}
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding mentions %q:\n%s", want, render(diags))
		}
	}
}

// TestUnusedAllowDisabledCheck: an allow for a check that is not in the
// enabled set must not be reported as unused — otherwise running a
// single analyzer would flag every other analyzer's annotations.
func TestUnusedAllowDisabledCheck(t *testing.T) {
	diags := linttest.Findings(t, fixtureDir,
		[]*lint.Analyzer{lint.TagpairAnalyzer}, "./host")
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses no finding") {
			t.Errorf("unused-allow reported for a disabled check: %s", d)
		}
	}
}

func render(ds []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
