package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hookTypes identifies the instrumentation handles covered by the
// zero-overhead contract: when the pointer is nil the hook must cost
// exactly one nil check, so every dereference has to sit behind a
// dominating nil check on the same handle. Keyed by declaring-package
// path suffix.
var hookTypes = map[string][]string{
	"internal/obs":   {"Tracer", "Ring", "EngineMetrics", "Telemetry"},
	"internal/chaos": {"Injector", "Stream"},
	"internal/htm":   {"Witness"},
}

// NilgateAnalyzer mechanises the zero-overhead instrumentation
// discipline: any access through a hook-typed struct field
// (htm.Config.Tracer/Witness/Metrics/Faults, the cached per-thread
// copies Thread.trace/metrics/faults/wit, sweep and RunSpec telemetry
// handles) must be dominated by a nil check of that same field chain.
//
// Only field accesses are checked: a local copied out of a field
// (`inj := s.cfg.Faults; if inj == nil { ... }`) is the other sanctioned
// idiom and needs no gate at the copy. The packages that *implement*
// the hooks (internal/obs, internal/chaos) are exempt — their internals
// manipulate the same types freely.
var NilgateAnalyzer = &Analyzer{
	Name: "nilgate",
	Doc: "instrumentation hook fields must be dereferenced only under a dominating nil check " +
		"(the zero-overhead-when-off contract)",
	Run: runNilgate,
}

func runNilgate(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path, "internal/obs") || pathHasSuffix(pass.Pkg.Path, "internal/chaos") {
		return nil
	}
	w := &nilgateWalker{pass: pass}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.stmts(fd.Body.List, guards{})
		}
	}
	return nil
}

// guards is the set of canonical field-chain expressions known non-nil
// at the current program point.
type guards map[string]bool

func (g guards) clone() guards {
	c := make(guards, len(g))
	for k, v := range g {
		c[k] = v
	}
	return c
}

func (g guards) add(facts []string) guards {
	if len(facts) == 0 {
		return g
	}
	c := g.clone()
	for _, f := range facts {
		c[f] = true
	}
	return c
}

type nilgateWalker struct {
	pass *Pass
}

// stmts walks a statement list, threading nil-check facts forward.
// Facts established by early-return guards (`if x == nil { return }`)
// and by nil-or-assign normalisation (`if x == nil { x = new(...) }`)
// flow to the following statements; facts never escape loops, defers,
// goroutines or function literals.
func (w *nilgateWalker) stmts(list []ast.Stmt, g guards) {
	for _, s := range list {
		w.stmt(s, g)
	}
}

func (w *nilgateWalker) stmt(s ast.Stmt, g guards) {
	switch s := s.(type) {
	case nil:
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.cond(s.Cond, g)
		ft, ff := nilFacts(s.Cond)
		w.stmt(s.Body, g.add(ft))
		if s.Else != nil {
			w.stmt(s.Else, g.add(ff))
		}
		// Facts that hold when the condition is false dominate the code
		// after the if when the true branch cannot fall through — the
		// early-return guard idiom — or when the true branch
		// re-establishes the handle itself (nil-or-assign).
		for _, f := range ff {
			if terminates(s.Body) || assignsNonNil(s.Body, f) {
				g[f] = true
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, g)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, g)
		}
		for _, lhs := range s.Lhs {
			// Writing *to* the hook field is a copy, not a deref, but a
			// deeper target (x.f.g = v) dereferences the chain prefix.
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				w.expr(sel.X, g)
			} else if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				w.expr(lhs, g)
			}
			// Any reassignment invalidates an established guard.
			if c := canonical(lhs); c != "" {
				delete(g, c)
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, g)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, g)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, g)
				return false
			}
			return true
		})
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		if s.Cond != nil {
			w.cond(s.Cond, g)
		}
		body := g.clone() // loop-carried assignments must not leak facts out
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		w.stmt(s.Body, body)
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.stmt(s.Body, g.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		if s.Tag != nil {
			w.expr(s.Tag, g)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cg := g.clone()
			for _, e := range cc.List {
				w.cond(e, cg)
			}
			w.stmts(cc.Body, cg)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.stmt(s.Assign, g)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, g.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cg := g.clone()
			if cc.Comm != nil {
				w.stmt(cc.Comm, cg)
			}
			w.stmts(cc.Body, cg)
		}
	case *ast.DeferStmt:
		// Runs at function exit: established guards may be stale.
		w.expr(s.Call.Fun, guards{})
		for _, a := range s.Call.Args {
			w.expr(a, guards{})
		}
	case *ast.GoStmt:
		w.expr(s.Call.Fun, guards{})
		for _, a := range s.Call.Args {
			w.expr(a, guards{})
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, g)
	case *ast.IncDecStmt:
		w.expr(s.X, g)
	case *ast.SendStmt:
		w.expr(s.Chan, g)
		w.expr(s.Value, g)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, g)
				return false
			}
			return true
		})
	}
}

// cond visits a boolean expression, threading short-circuit facts: in
// `x != nil && x.M()` the right operand is dominated by the left check,
// and in `x == nil || x.M()` by its negation.
func (w *nilgateWalker) cond(e ast.Expr, g guards) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			w.cond(e.X, g)
			ft, _ := nilFacts(e.X)
			w.cond(e.Y, g.add(ft))
			return
		case token.LOR:
			w.cond(e.X, g)
			_, ff := nilFacts(e.X)
			w.cond(e.Y, g.add(ff))
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			w.cond(e.X, g)
			return
		}
	}
	w.expr(e, g)
}

// expr checks one expression tree for unguarded hook dereferences.
func (w *nilgateWalker) expr(e ast.Expr, g guards) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, guards{})
			return false
		case *ast.BinaryExpr:
			if n.Op == token.LAND || n.Op == token.LOR {
				w.cond(n, g)
				return false
			}
		case *ast.SelectorExpr:
			w.checkDeref(n.X, g)
		case *ast.StarExpr:
			w.checkDeref(n.X, g)
		}
		return true
	})
}

// checkDeref reports inner when it is an unguarded hook-typed field
// chain being dereferenced by its parent node.
func (w *nilgateWalker) checkDeref(inner ast.Expr, g guards) {
	inner = ast.Unparen(inner)
	c := canonical(inner)
	if c == "" || g[c] {
		return
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return // bare locals are the caller-guarded-copy idiom
	}
	if !w.isField(sel) {
		return
	}
	tv, ok := w.pass.Pkg.Info.Types[inner]
	if !ok || !isHookType(tv.Type) {
		return
	}
	w.pass.Reportf(inner.Pos(),
		"%s is dereferenced without a dominating '%s != nil' check "+
			"(instrumentation hooks must cost one nil check when off)", c, c)
}

func (w *nilgateWalker) isField(sel *ast.SelectorExpr) bool {
	if s, ok := w.pass.Pkg.Info.Selections[sel]; ok {
		v, ok := s.Obj().(*types.Var)
		return ok && v.IsField()
	}
	return false
}

// nilFacts extracts the field chains known non-nil when e is true (ft)
// and when e is false (ff).
func nilFacts(e ast.Expr) (ft, ff []string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ:
			if c := nilCompared(e); c != "" {
				return []string{c}, nil
			}
		case token.EQL:
			if c := nilCompared(e); c != "" {
				return nil, []string{c}
			}
		case token.LAND:
			xt, _ := nilFacts(e.X)
			yt, _ := nilFacts(e.Y)
			return append(xt, yt...), nil
		case token.LOR:
			_, xf := nilFacts(e.X)
			_, yf := nilFacts(e.Y)
			return nil, append(xf, yf...)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			ft, ff = nilFacts(e.X)
			return ff, ft
		}
	}
	return nil, nil
}

// nilCompared returns the canonical chain of the non-nil side of a
// `x <op> nil` comparison, or "".
func nilCompared(e *ast.BinaryExpr) string {
	if isNilIdent(e.Y) {
		return canonical(e.X)
	}
	if isNilIdent(e.X) {
		return canonical(e.Y)
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// canonical flattens a pure identifier/selector chain ("e.cfg.Tracer")
// or returns "" for anything more complex.
func canonical(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := canonical(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// terminates reports whether the statement cannot fall through to the
// next statement: it ends in return, a branch, or a panic call.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	}
	return false
}

// assignsNonNil reports whether body assigns a value other than the
// literal nil to the chain c — the `if x == nil { x = newX() }`
// normalisation pattern.
func assignsNonNil(body *ast.BlockStmt, c string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			if canonical(lhs) == c && i < len(as.Rhs) && !isNilIdent(as.Rhs[i]) {
				found = true
			}
		}
		return true
	})
	return found
}

func isHookType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for suffix, names := range hookTypes {
		if pathHasSuffix(obj.Pkg().Path(), suffix) {
			for _, n := range names {
				if n == obj.Name() {
					return true
				}
			}
		}
	}
	return false
}
