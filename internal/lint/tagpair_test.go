package lint_test

import (
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

func TestTagpair(t *testing.T) {
	linttest.Check(t, fixtureDir,
		[]*lint.Analyzer{lint.TagpairAnalyzer}, "./internal/adapt")
}
