// Package host is outside the deterministic core: wall-clock reads are
// unrestricted here, and the package doubles as the fixture for the
// directive checks (malformed and unused annotations are findings).
package host

import "time"

func stamp() int64 { return time.Now().UnixNano() }

//htmlint:allow determinism -- nothing on the next line violates anything
func stale() int { return 1 }

//htmlint:allow determinism
func missingReason() int { return 2 }

//htmlint:allow nosuchcheck -- the check name is wrong
func unknownCheck() int { return 3 }

//htmlint:frobnicate
func unknownVerb() int { return 4 }
