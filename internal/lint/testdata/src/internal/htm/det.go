// Package htm sits on a deterministic-core import path, so the
// determinism analyzer applies to every file here.
package htm

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want determinism:"time.Now in deterministic core"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism:"time.Since in deterministic core"
}

func hostRandom() int {
	return rand.Int() // want determinism:"math/rand.Int in deterministic core"
}

func envProbe() string {
	v, _ := os.LookupEnv("HTM_MODE") // want determinism:"os.LookupEnv in deterministic core"
	return v
}

func tuneFromEnv() string {
	//htmlint:allow determinism -- debug-only escape hatch, never read in golden runs
	return os.Getenv("HTM_DEBUG")
}

func sumCounts(m map[string]int) int {
	total := 0
	for _, v := range m { // want determinism:"map iteration order is unordered"
		total += v
	}
	return total
}

// countKeys observes only the map's size; no iteration order escapes.
func countKeys(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// tick does pure Duration arithmetic — time the package is fine, only
// the wall-clock readers are banned.
func tick(d time.Duration) time.Duration { return d * 2 }
