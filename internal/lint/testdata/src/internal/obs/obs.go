// Package obs mirrors the shape of the real instrumentation provider:
// it declares the hook types and is therefore exempt from nilgate — its
// own internals manipulate the handles freely.
package obs

type Tracer struct{ n int }

func (t *Tracer) Emit(v int) { t.n += v }

type Ring struct{ buf []int }

func (r *Ring) Push(v int) { r.buf = append(r.buf, v) }

type EngineMetrics struct{ Aborts uint64 }

func (m *EngineMetrics) Add(v uint64) { m.Aborts += v }

type Telemetry struct{ events int }

func (t *Telemetry) Observe() { t.events++ }

// hub dereferences a hook field with no nil check; the provider-package
// exemption means this is not a finding.
type hub struct{ t *Tracer }

func (h *hub) relay(v int) { h.t.Emit(v) }
