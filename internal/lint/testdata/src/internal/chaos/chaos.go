// Package chaos mirrors the fault-injection provider; like obs it is
// exempt from nilgate.
package chaos

type Injector struct{ seed uint64 }

func (i *Injector) Arm(s uint64) { i.seed = s }

type Stream struct{ cursor int }

func (s *Stream) Next() int { s.cursor++; return s.cursor }
