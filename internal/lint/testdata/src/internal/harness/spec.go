// Package harness carries a marked cache-identity struct with one of
// every field violation plus the compliant shapes.
package harness

import "fixmod/internal/obs"

// RunSpec is one cell of a sweep grid; its JSON encoding is the cache
// key. Threads and Seed predate the lint, so their zero values are
// frozen into existing keys. Ghost names no field.
//
//htmlint:cachekey frozen=Threads,Seed,Ghost
type RunSpec struct { // want cachekey:"freezes unknown field \"Ghost\""
	Threads   int            `json:"threads"`
	Seed      uint64         `json:"seed"`
	Variant   string         `json:"variant,omitempty"`
	Repeats   int            `json:"repeats"` // want cachekey:"serialized without omitempty"
	Telemetry *obs.Telemetry // want cachekey:"pointer field without json:"
	Progress  func()         `json:"-"`
}

// Mode is not a struct, so the marker itself is the finding.
//
//htmlint:cachekey
type Mode int // want cachekey:"marker on non-struct type Mode"
