// Package trace declares a struct on the required list without the
// cachekey marker.
package trace

// Options configures a replay; it feeds cache keys but is unmarked.
type Options struct { // want cachekey:"must carry a //htmlint:cachekey marker"
	Scale int
	Seed  uint64
}
