// Package tm exercises the atomic/plain mixed-access check on shared
// counters of a simulated engine.
package tm

import (
	"sync"
	"sync/atomic"
)

type engine struct {
	mu      sync.Mutex
	aborts  uint64
	commits atomic.Uint64
	retries uint64
}

func (e *engine) abort() {
	atomic.AddUint64(&e.aborts, 1)
}

func (e *engine) snapshot() uint64 {
	return e.aborts // want atomicmix:"engine.aborts is accessed via sync/atomic elsewhere"
}

// drain reads and resets the counter under the mutex; a dominating lock
// makes the plain access legitimate.
func (e *engine) drain() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.aborts
	e.aborts = 0
	return v
}

// quiesce documents a single-threaded phase instead of locking.
func (e *engine) quiesce() {
	e.aborts = 0 //htmlint:allow atomicmix -- epoch boundary, no concurrent accessors
}

func (e *engine) commit() {
	e.commits.Add(1)
}

func (e *engine) copyCounter() atomic.Uint64 {
	return e.commits // want atomicmix:"engine.commits has atomic type"
}

// share hands out the address; the location stays shared, so this is
// not a copy.
func (e *engine) share() *atomic.Uint64 {
	return &e.commits
}

// retry touches a counter that is never accessed atomically; plain
// access is fine.
func (e *engine) retry() {
	e.retries++
}
