// Package mem consumes instrumentation hooks, so nilgate applies: every
// dereference of a hook-typed field chain needs a dominating nil check.
package mem

import (
	"fixmod/internal/chaos"
	"fixmod/internal/obs"
)

type config struct {
	Tracer  *obs.Tracer
	Metrics *obs.EngineMetrics
	Faults  *chaos.Injector
}

type pool struct {
	cfg   config
	trace *obs.Ring
}

func (p *pool) alloc(v int) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Emit(v) // guarded by the enclosing if
	}
	p.cfg.Metrics.Add(1) // want nilgate:"p.cfg.Metrics is dereferenced without a dominating"
}

// free uses the early-return guard idiom; the fact flows past the if.
func (p *pool) free(v int) {
	if p.trace == nil {
		return
	}
	p.trace.Push(v)
}

// observe relies on a short-circuit fact from the left && operand.
func (p *pool) observe(v int) {
	if p.cfg.Tracer != nil && v > 0 {
		p.cfg.Tracer.Emit(v)
	}
}

// reset copies the hook into a local first — the sanctioned alternative
// idiom; the copy itself is not a dereference.
func (p *pool) reset() {
	inj := p.cfg.Faults
	if inj != nil {
		inj.Arm(1)
	}
}

// rebind shows guard invalidation: reassigning the field kills the fact
// established by the enclosing check.
func (p *pool) rebind(t *obs.Tracer) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer = t
		p.cfg.Tracer.Emit(1) // want nilgate:"p.cfg.Tracer is dereferenced without a dominating"
	}
}

// hot documents a caller-side invariant instead of re-checking.
func (p *pool) hot(v int) {
	p.trace.Push(v) //htmlint:allow nilgate -- caller guarantees trace != nil on this path
}

// install writes to the hook field; assignment is a copy, not a deref.
func (p *pool) install(t *obs.Ring) {
	p.trace = t
}
