//go:build !fixdebug

// Default twin of pair_on.go: same package-level symbols, with push
// demoted to a value-receiver no-op (receiver pointerness is normalised
// away by the analyzer).
package adapt

const debugChecks = false

func auditEntry(n int) int { return n }

type auditState struct{}

func (s auditState) push() {}

func auditLeak() {} // want tagpair:"auditLeak is declared under build tag \"!fixdebug\""
