//go:build fixdebug

// Tagged twin: builds only with -tags fixdebug. The tagpair analyzer
// still parses this file (it is build-ignored under the default
// configuration) and compares its symbol set against pair_off.go.
package adapt

const debugChecks = true

func auditEntry(n int) int { return n + 1 }

type auditState struct{ depth int }

func (s *auditState) push() { s.depth++ }

func debugOnlyHook() {} // want tagpair:"debugOnlyHook is declared under build tag \"fixdebug\""

//htmlint:allow tagpair -- debug scaffolding has no production twin by design
func scaffold() {}
