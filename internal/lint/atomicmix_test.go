package lint_test

import (
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

func TestAtomicmix(t *testing.T) {
	linttest.Check(t, fixtureDir,
		[]*lint.Analyzer{lint.AtomicmixAnalyzer}, "./internal/tm")
}
