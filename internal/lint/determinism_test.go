package lint_test

import (
	"path/filepath"
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

var fixtureDir = filepath.Join("testdata", "src")

func TestDeterminism(t *testing.T) {
	linttest.Check(t, fixtureDir,
		[]*lint.Analyzer{lint.DeterminismAnalyzer}, "./internal/htm")
}

// TestDeterminismSkipsHostPackages proves the core-path scoping: the
// host fixture reads the wall clock freely and must yield nothing
// (the directive findings it also hosts are exercised separately).
func TestDeterminismSkipsHostPackages(t *testing.T) {
	diags := linttest.Findings(t, fixtureDir,
		[]*lint.Analyzer{lint.DeterminismAnalyzer}, "./host")
	for _, d := range diags {
		if d.Check == lint.DeterminismAnalyzer.Name {
			t.Errorf("determinism fired outside the core: %s", d)
		}
	}
}
