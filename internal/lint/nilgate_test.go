package lint_test

import (
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

func TestNilgate(t *testing.T) {
	linttest.Check(t, fixtureDir,
		[]*lint.Analyzer{lint.NilgateAnalyzer}, "./internal/mem")
}

// TestNilgateExemptsProviders: the packages that implement the hooks
// dereference them freely without findings.
func TestNilgateExemptsProviders(t *testing.T) {
	diags := linttest.Findings(t, fixtureDir,
		[]*lint.Analyzer{lint.NilgateAnalyzer}, "./internal/obs", "./internal/chaos")
	for _, d := range diags {
		t.Errorf("nilgate fired in a provider package: %s", d)
	}
}
