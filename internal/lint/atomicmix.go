package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicmixAnalyzer flags the race class behind the PR 1 Engine.Aborts
// bug: a struct field that is accessed through sync/atomic somewhere
// must not also be read or written plainly elsewhere — mixing the two
// is a data race even when each side looks locally harmless. A plain
// access is tolerated when it happens under a mutex Lock/RLock held in
// the same function (quiescent phases guarded by a dominating lock),
// otherwise it must be converted to an atomic op or justified with an
// //htmlint:allow atomicmix directive.
//
// Fields of atomic.* type (sync/atomic.Uint64 and friends) get the
// complementary check: copying such a field by value detaches it from
// the shared location, so any use that is neither a method call nor an
// address-taken expression is reported.
var AtomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic must not also be accessed plainly outside a " +
		"dominating lock",
	Run: runAtomicmix,
}

type atomicmixChecker struct {
	pass *Pass
	// atomicFields holds struct fields observed as &x.f (or &x.f[i])
	// arguments to sync/atomic calls anywhere in the package.
	atomicFields map[types.Object]bool
	// sanctioned marks selector nodes that ARE the atomic access (or an
	// address-taking of an atomic.* field) so pass 2 skips them.
	sanctioned map[*ast.SelectorExpr]bool
}

func runAtomicmix(pass *Pass) error {
	c := &atomicmixChecker{
		pass:         pass,
		atomicFields: map[types.Object]bool{},
		sanctioned:   map[*ast.SelectorExpr]bool{},
	}
	// Pass 1: find every field whose address feeds a sync/atomic call,
	// and every sanctioned use of an atomic.*-typed field.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, c.collect)
	}
	if len(c.atomicFields) == 0 && !c.hasAtomicTypedUse() {
		return nil
	}
	// Pass 2: flag plain accesses of those fields outside a lock.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					c.checkFunc(d.Body)
				}
			case *ast.GenDecl:
				// Package-level initializers run before goroutines
				// exist; only the copy check applies there.
				ast.Inspect(d, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						c.checkCopyOnly(sel)
					}
					return true
				})
			}
		}
	}
	return nil
}

func (c *atomicmixChecker) collect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if !c.isAtomicPkgCall(n) {
			return true
		}
		for _, arg := range n.Args {
			if sel := addrOfFieldSelector(arg); sel != nil {
				if obj := c.fieldObject(sel); obj != nil {
					c.atomicFields[obj] = true
					c.sanctioned[sel] = true
				}
			}
		}
	case *ast.SelectorExpr:
		// x.f.Load() / x.f.Store(v): the receiver selector x.f of an
		// atomic.* method is the sanctioned access.
		if sel, ok := n.X.(*ast.SelectorExpr); ok {
			if c.fieldObject(sel) != nil && c.isAtomicTyped(sel) && c.isMethodSel(n) {
				c.sanctioned[sel] = true
			}
		}
	case *ast.UnaryExpr:
		// &x.f of an atomic.* field: address-taken, still shared.
		if n.Op == token.AND {
			if sel, ok := n.X.(*ast.SelectorExpr); ok && c.isAtomicTyped(sel) {
				c.sanctioned[sel] = true
			}
		}
	}
	return true
}

// checkFunc walks a function body in source order keeping a linear
// Lock/Unlock depth count. The depth is an approximation — which mutex
// is irrelevant, only that some lock dominates the access — and a
// deferred Unlock does not release (the lock is held for the remainder
// of the function).
func (c *atomicmixChecker) checkFunc(body *ast.BlockStmt) {
	depth := 0
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			switch lockMethodName(n) {
			case "Lock", "RLock":
				depth++
			case "Unlock", "RUnlock":
				if !deferred[n] && depth > 0 {
					depth--
				}
			}
		case *ast.SelectorExpr:
			c.checkSelector(n, depth)
			// The walk continues into X so chained selectors (a.b.c)
			// are each examined once.
		}
		return true
	})
}

func (c *atomicmixChecker) checkSelector(sel *ast.SelectorExpr, depth int) {
	if c.sanctioned[sel] {
		return
	}
	obj := c.fieldObject(sel)
	if obj == nil {
		return
	}
	if c.atomicFields[obj] && depth == 0 {
		c.pass.Reportf(sel.Pos(),
			"%s is accessed via sync/atomic elsewhere in this package but read/written plainly "+
				"here outside a lock: mixed access is a data race (use atomic ops, or hold the "+
				"guarding mutex)", c.fieldLabel(sel, obj))
		return
	}
	c.checkCopyOnly(sel)
}

// checkCopyOnly reports value copies of atomic.*-typed fields — uses
// that are neither sanctioned method receivers nor address-takings.
func (c *atomicmixChecker) checkCopyOnly(sel *ast.SelectorExpr) {
	if c.sanctioned[sel] {
		return
	}
	obj := c.fieldObject(sel)
	if obj == nil || !c.isAtomicTyped(sel) {
		return
	}
	c.pass.Reportf(sel.Pos(),
		"%s has atomic type %s and is copied by value here: the copy detaches from the shared "+
			"location (call its methods or take its address instead)",
		c.fieldLabel(sel, obj), obj.Type().String())
}

// hasAtomicTypedUse reports whether any field selection in the package
// has an atomic.* type, so pass 2 can be skipped entirely otherwise.
func (c *atomicmixChecker) hasAtomicTypedUse() bool {
	for expr, s := range c.pass.Pkg.Info.Selections {
		if s.Kind() == types.FieldVal && c.isAtomicTyped(expr) {
			return true
		}
	}
	return false
}

func (c *atomicmixChecker) fieldObject(sel *ast.SelectorExpr) types.Object {
	s := c.pass.Pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// fieldLabel renders "Type.Field" for diagnostics.
func (c *atomicmixChecker) fieldLabel(sel *ast.SelectorExpr, obj types.Object) string {
	if s := c.pass.Pkg.Info.Selections[sel]; s != nil {
		t := s.Recv()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Name()
}

func (c *atomicmixChecker) isAtomicTyped(sel *ast.SelectorExpr) bool {
	s := c.pass.Pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	named, ok := s.Obj().Type().(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isMethodSel reports whether the selector resolves to a method (the
// x.f.Load in x.f.Load()).
func (c *atomicmixChecker) isMethodSel(sel *ast.SelectorExpr) bool {
	s := c.pass.Pkg.Info.Selections[sel]
	return s != nil && s.Kind() == types.MethodVal
}

// isAtomicPkgCall reports whether the call's callee is a function from
// package sync/atomic (atomic.LoadUint64, atomic.AddInt32, ...).
func (c *atomicmixChecker) isAtomicPkgCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := c.pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// lockMethodName returns the method name of a call like mu.Lock() when
// it is one of the four mutex verbs, else "".
func lockMethodName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.Sel.Name
	}
	return ""
}

// addrOfFieldSelector unwraps &x.f or &x.f[i] down to the field
// selector, or nil when the argument has another shape.
func addrOfFieldSelector(arg ast.Expr) *ast.SelectorExpr {
	u, ok := arg.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	x := u.X
	if ix, ok := x.(*ast.IndexExpr); ok {
		x = ix.X
	}
	sel, _ := x.(*ast.SelectorExpr)
	return sel
}
