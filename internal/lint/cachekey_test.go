package lint_test

import (
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

func TestCachekey(t *testing.T) {
	linttest.Check(t, fixtureDir,
		[]*lint.Analyzer{lint.CachekeyAnalyzer}, "./internal/harness", "./internal/trace")
}
