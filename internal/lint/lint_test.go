package lint_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"htmcmp/internal/lint"
	"htmcmp/internal/lint/linttest"
)

// TestSuiteOnFixtures runs every analyzer together over all the
// analyzer fixtures, proving the checks do not cross-fire: each want in
// the tree must be matched exactly once under the full suite.
func TestSuiteOnFixtures(t *testing.T) {
	linttest.Check(t, fixtureDir, lint.Analyzers(), "./internal/...")
}

func TestByName(t *testing.T) {
	all, err := lint.ByName(nil)
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(nil) = %d analyzers, err %v; want 5, nil", len(all), err)
	}
	two, err := lint.ByName([]string{"determinism", "cachekey"})
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(determinism,cachekey) = %d, err %v; want 2, nil", len(two), err)
	}
	if two[0].Name != "determinism" || two[1].Name != "cachekey" {
		t.Errorf("selection order not preserved: %s, %s", two[0].Name, two[1].Name)
	}
	if _, err := lint.ByName([]string{"nope"}); err == nil {
		t.Error("ByName(nope) did not error")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var got []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("empty run is not a JSON array: %v\n%s", err, buf.String())
	}
	if got == nil {
		t.Error("empty run encoded as null, want []")
	}

	buf.Reset()
	ds := []lint.Diagnostic{{Check: "determinism", File: "x.go", Line: 3, Col: 9, Message: "m"}}
	if err := lint.WriteJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil || len(got) != 1 || got[0] != ds[0] {
		t.Fatalf("round-trip mismatch: %+v err %v", got, err)
	}
}

// TestLoadShapes sanity-checks the loader on the fixture module: the
// tag-excluded twin must be parsed into Ignored, and import paths must
// be the real module paths.
func TestLoadShapes(t *testing.T) {
	pkgs, err := lint.Load(fixtureDir, "./internal/adapt")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "fixmod/internal/adapt" {
		t.Errorf("Path = %q", p.Path)
	}
	if len(p.Files) != 1 || len(p.Ignored) != 1 {
		t.Errorf("Files/Ignored = %d/%d, want 1/1", len(p.Files), len(p.Ignored))
	}
	if p.Types == nil || p.Types.Scope().Lookup("auditLeak") == nil {
		t.Error("type info missing for built file")
	}
}

func TestLoadRejectsBrokenPatterns(t *testing.T) {
	if _, err := lint.Load(fixtureDir, "./does/not/exist"); err == nil {
		t.Error("Load on a nonexistent pattern did not error")
	}
}
