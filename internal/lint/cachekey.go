package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// requiredCachekeyStructs are the types whose JSON encoding feeds the
// sweep's content-addressed cache keys (directly or via sweep.Cell);
// they must carry the //htmlint:cachekey marker so the field rules
// below apply. Identified by (package path suffix, type name).
var requiredCachekeyStructs = [][2]string{
	{"internal/harness", "RunSpec"},
	{"internal/trace", "Options"},
	{"internal/harness/sweep", "Config"},
}

// CachekeyAnalyzer enforces sweep cache identity — the PR 5 lesson that
// a new field silently changing every existing cache key is a
// correctness bug, and that runtime-only handles must never leak into
// keys. A struct marked
//
//	//htmlint:cachekey frozen=FieldA,FieldB
//
// is checked field by field:
//
//   - pointer, func, chan, interface and map fields must carry json:"-"
//     (runtime-only attachments must not perturb identity; maps would
//     also marshal in nondeterministic-by-construction sorted-key order
//     that still couples identity to content);
//   - every serialized field must have the omitempty option, unless it
//     is named in the frozen list — the fields that predate the lint,
//     whose zero values are already baked into existing on-disk keys.
//     New fields therefore default to omitempty and old keys stay
//     stable;
//   - frozen names must refer to existing serialized fields, so the
//     list cannot rot.
var CachekeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc: "cache-identity structs must exclude runtime-only fields via json:\"-\" and add new " +
		"serialized fields as omitempty so existing cache keys stay stable",
	Run: runCachekey,
}

func runCachekey(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, isStruct := ts.Type.(*ast.StructType)
				marker := cachekeyMarker(ts, gd)
				if marker == nil {
					if isStruct && requiresMarker(pass.Pkg.Path, ts.Name.Name) {
						pass.Reportf(ts.Pos(),
							"%s feeds sweep cache keys and must carry a //htmlint:cachekey marker",
							ts.Name.Name)
					}
					continue
				}
				if !isStruct {
					pass.Reportf(ts.Pos(), "//htmlint:cachekey marker on non-struct type %s", ts.Name.Name)
					continue
				}
				checkCachekeyStruct(pass, ts.Name.Name, st, marker)
			}
		}
	}
	return nil
}

// cachekeyMarker parses a //htmlint:cachekey directive from the type's
// doc comment (or the enclosing declaration group's). Returns the
// frozen field set, or nil when unmarked.
func cachekeyMarker(ts *ast.TypeSpec, gd *ast.GenDecl) map[string]bool {
	for _, doc := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if !strings.HasPrefix(c.Text, directivePrefix+"cachekey") {
				continue
			}
			frozen := map[string]bool{}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix+"cachekey"))
			if names, ok := strings.CutPrefix(rest, "frozen="); ok {
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						frozen[n] = true
					}
				}
			}
			return frozen
		}
	}
	return nil
}

func checkCachekeyStruct(pass *Pass, name string, st *ast.StructType, frozen map[string]bool) {
	seen := map[string]bool{}
	for _, field := range st.Fields.List {
		tag := fieldJSONTag(field)
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		runtimeOnly := isRuntimeOnlyType(tv.Type)
		for _, id := range fieldNames(field) {
			seen[id] = true
			if tag == "-" {
				continue // excluded from the key entirely
			}
			if runtimeOnly {
				pass.Reportf(field.Pos(),
					"%s.%s is a %s field without json:\"-\": runtime-only attachments must not "+
						"perturb sweep cache identity", name, id, typeKindWord(tv.Type))
				continue
			}
			if frozen[id] {
				continue
			}
			if !strings.Contains(tag, "omitempty") {
				pass.Reportf(field.Pos(),
					"%s.%s is serialized without omitempty: a newly added key field must omit its "+
						"zero value so existing sweep cache keys stay stable (or list it as frozen "+
						"if it predates the lint)", name, id)
			}
		}
	}
	for _, f := range sortedKeysOf(frozen) {
		if !seen[f] {
			pass.Reportf(st.Pos(), "%s freezes unknown field %q in its //htmlint:cachekey marker", name, f)
		}
	}
}

func fieldNames(field *ast.Field) []string {
	if len(field.Names) == 0 {
		// Embedded field: use the type's base name.
		name := ""
		switch t := field.Type.(type) {
		case *ast.Ident:
			name = t.Name
		case *ast.SelectorExpr:
			name = t.Sel.Name
		case *ast.StarExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				name = id.Name
			}
		}
		if name == "" {
			return nil
		}
		return []string{name}
	}
	var out []string
	for _, id := range field.Names {
		out = append(out, id.Name)
	}
	return out
}

func fieldJSONTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	return reflect.StructTag(raw).Get("json")
}

func isRuntimeOnlyType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Interface, *types.Map:
		return true
	}
	return false
}

func typeKindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Pointer:
		return "pointer"
	case *types.Signature:
		return "func"
	case *types.Chan:
		return "chan"
	case *types.Interface:
		return "interface"
	case *types.Map:
		return "map"
	}
	return "runtime-only"
}

func requiresMarker(pkgPath, typeName string) bool {
	for _, rc := range requiredCachekeyStructs {
		if rc[1] == typeName && pathHasSuffix(pkgPath, rc[0]) {
			return true
		}
	}
	return false
}

func sortedKeysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion order is map order; sort for deterministic reporting.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
