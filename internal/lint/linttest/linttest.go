// Package linttest runs lint analyzers over fixture modules and checks
// the findings against in-source expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a real Go module (its own go.mod) under a testdata
// directory, so the production Load path — `go list -export` plus
// export-data importing — is exactly what the tests exercise.
// Expectations are trailing comments of the form
//
//	// want determinism:"regex" nilgate:"another regex"
//
// on the line the finding is reported at. Every finding must match a
// want on its line, and every want for an enabled check must be matched
// by a finding; either direction failing fails the test.
package linttest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"htmcmp/internal/lint"
)

var wantRe = regexp.MustCompile(`([a-z]+):"((?:[^"\\]|\\.)*)"`)

// Findings loads the fixture module at dir and runs the analyzers,
// returning the diagnostics (directive findings included). It fails the
// test on load or run errors.
func Findings(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) []lint.Diagnostic {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	return diags
}

// Check runs the analyzers over the fixture module and compares the
// findings against the fixture's `// want` comments.
func Check(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	enabled := map[string]bool{"directive": true}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	wants := collectWants(t, pkgs, enabled)

	for _, d := range diags {
		key := d.File + ":" + strconv.Itoa(d.Line)
		matched := false
		for _, w := range wants[key] {
			if w.check == d.Check && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected %s finding matching %q, got none", key, w.check, w.re)
			}
		}
	}
}

type want struct {
	check   string
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every parsed file of the fixture — including
// build-tag-excluded ones, where tagpair findings land — for want
// comments. Wants naming checks outside the enabled set are ignored, so
// one fixture tree serves both whole-suite and single-analyzer runs.
func collectWants(t *testing.T, pkgs []*lint.Package, enabled map[string]bool) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		files := append([]*ast.File{}, pkg.Files...)
		files = append(files, pkg.Ignored...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := pos.Filename + ":" + strconv.Itoa(pos.Line)
					if seen[key] {
						continue
					}
					seen[key] = true
					matches := wantRe.FindAllStringSubmatch(body, -1)
					if len(matches) == 0 {
						t.Fatalf("%s: malformed want comment %q", key, c.Text)
					}
					for _, m := range matches {
						if !enabled[m[1]] {
							continue
						}
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, m[2], err)
						}
						re, err := regexp.Compile(unq)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, unq, err)
						}
						wants[key] = append(wants[key], &want{check: m[1], re: re})
					}
				}
			}
		}
	}
	return wants
}
