package lint

import (
	"go/ast"
	"go/types"
)

// CorePathSuffixes lists the packages forming the deterministic core:
// everything that executes between a fixed seed and a rendered table.
// A fixed-seed run must be bit-identical across hosts (the paper's
// tables compare abort rates and speedups quantitatively, and the
// golden determinism tests pin exact rows), so these packages must not
// read wall-clock time, host randomness, or the environment, and must
// not iterate maps where the order can escape. Host-side packages
// (internal/obs, the sweep scheduler's timing, cmd/) are exempt.
var CorePathSuffixes = []string{
	"internal/htm",
	"internal/mem",
	"internal/tm",
	"internal/adapt",
	"internal/chaos",
	"internal/txds",
	"internal/prng",
	"internal/stamp",
}

// DeterminismAnalyzer forbids nondeterminism sources in the core:
// time.Now/Since/Until, anything from math/rand (seeded or not — the
// core's only sanctioned generator is internal/prng, whose sequences
// are part of the pinned golden results), os.Getenv and friends, and
// range statements over maps that bind the iteration variables.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, math/rand, environment reads and observable map iteration " +
		"in the deterministic simulation core",
	Run: runDeterminism,
}

// bannedFuncs maps package path -> banned top-level identifiers. An
// empty set bans every reference to the package.
var bannedFuncs = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true},
}

func runDeterminism(pass *Pass) error {
	if !inCore(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.Pkg.Info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				banned, ok := bannedFuncs[obj.Pkg().Path()]
				if !ok {
					return true
				}
				if banned == nil || banned[obj.Name()] {
					pass.Reportf(n.Pos(),
						"%s.%s in deterministic core package %s: fixed-seed runs must be bit-identical "+
							"(use internal/prng / virtual time instead)",
						obj.Pkg().Path(), obj.Name(), pass.Pkg.Path)
				}
			case *ast.RangeStmt:
				tv, ok := pass.Pkg.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				// `for range m {}` with no iteration variables only
				// observes the count; order cannot escape.
				if bindsVariable(n.Key) || bindsVariable(n.Value) {
					pass.Reportf(n.Pos(),
						"map iteration order is unordered and observable here; deterministic core "+
							"code must iterate a sorted or insertion-ordered view")
				}
			}
			return true
		})
	}
	return nil
}

func bindsVariable(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	return true
}

func inCore(path string) bool {
	for _, s := range CorePathSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}
