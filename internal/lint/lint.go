// Package lint is the repo's invariant checker: a small suite of static
// analyzers that mechanically enforce the disciplines the reproduction's
// credibility rests on — fixed-seed determinism of the simulated core,
// zero-overhead-when-off instrumentation hooks, stable sweep cache
// identity, symmetric build-tag file pairs, and unmixed atomic/plain
// access to shared counters. The paper's methodology (Nakaike et al.,
// ISCA'15) compares abort rates and speedups quantitatively, so any
// nondeterminism in the engine invalidates a table; until this package
// existed the contracts lived only in comments and review convention.
//
// The design deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with `// want` comments)
// but is built entirely on the standard library: the loader feeds
// type-checked packages from `go list -export` output (load.go), so the
// checker builds and runs hermetically — no module downloads, no
// network, no third-party supply chain in the correctness tooling.
//
// Intentional violations are annotated in the source with
//
//	//htmlint:allow <check> -- <reason>
//
// on (or immediately above) the offending line. Directives are
// themselves checked: a missing reason or a directive that suppresses
// nothing is a finding, so every annotation in the tree stays
// load-bearing (directive.go).
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named invariant check. Run inspects a single
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the check in output and in //htmlint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced contract.
	Doc string
	// Run performs the check. It must be stateless across packages:
	// the runner may invoke it on packages in any order.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package
	// report collects diagnostics; use Reportf.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding. The JSON encoding is the
// `htmlint -json` CI artifact format.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// sortDiagnostics orders findings by position then check name, so output
// is stable regardless of analyzer or map-iteration order inside the
// checker itself.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NilgateAnalyzer,
		CachekeyAnalyzer,
		TagpairAnalyzer,
		AtomicmixAnalyzer,
	}
}

// ByName resolves a comma-separated selection of analyzer names ("" or
// "all" selects the whole suite).
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		if n == "all" {
			return all, nil
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: determinism, nilgate, cachekey, tagpair, atomicmix)", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// pathHasSuffix reports whether import path p is exactly suffix or ends
// with "/"+suffix — matching on whole path segments so that
// "htmcmp/internal/harness" matches "internal/harness" but
// "x/qinternal/harness" does not.
func pathHasSuffix(p, suffix string) bool {
	if p == suffix {
		return true
	}
	return len(p) > len(suffix) && p[len(p)-len(suffix)-1] == '/' && p[len(p)-len(suffix):] == suffix
}
