package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"sort"
	"strings"
)

// TagpairAnalyzer enforces symmetry between build-tag twin files: when
// one file in a package builds under `//go:build tag` and another under
// `//go:build !tag`, the two must declare identical sets of
// package-level symbols (types, funcs, consts, vars, and methods keyed
// by receiver base type). The repo leans on this pattern for compiled-
// away debug machinery — check_off.go/check_racecheck.go and
// live_off.go/live_racecheck.go (racecheck), mutate_on.go/mutate_off.go
// (mutate_isolation) — where a symbol present on one side only either
// breaks the tagged build outright or, worse, silently changes
// behaviour between CI's race job and production simulation runs.
//
// Only single-tag constraints participate; _test.go files are exempt
// (tag-gated test helpers need no production twin).
var TagpairAnalyzer = &Analyzer{
	Name: "tagpair",
	Doc: "files under complementary build tags (tag / !tag) must declare identical " +
		"package-level symbol sets",
	Run: runTagpair,
}

// tagSide aggregates the symbols declared by all files of one side of a
// tag. Symbol -> first declaration position (as token.Pos within the
// shared fset).
type tagSide struct {
	files []string
	decls map[string]ast.Node
}

func runTagpair(pass *Pass) error {
	// sides[tag][0] is the `tag` side, sides[tag][1] the `!tag` side.
	sides := map[string]*[2]*tagSide{}

	collect := func(f *ast.File) {
		name := pass.Pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			return
		}
		tag, neg, ok := singleTagConstraint(f)
		if !ok {
			return
		}
		s := sides[tag]
		if s == nil {
			s = &[2]*tagSide{}
			sides[tag] = s
		}
		idx := 0
		if neg {
			idx = 1
		}
		if s[idx] == nil {
			s[idx] = &tagSide{decls: map[string]ast.Node{}}
		}
		s[idx].files = append(s[idx].files, name)
		collectSymbols(f, s[idx].decls)
	}
	for _, f := range pass.Pkg.Files {
		collect(f)
	}
	for _, f := range pass.Pkg.Ignored {
		collect(f)
	}

	tags := make([]string, 0, len(sides))
	for tag := range sides {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		pair := sides[tag]
		pos, neg := pair[0], pair[1]
		if pos == nil || neg == nil {
			continue // no twin to compare against
		}
		reportMissing(pass, pos, neg, tag, "!"+tag)
		reportMissing(pass, neg, pos, "!"+tag, tag)
	}
	return nil
}

// reportMissing flags every symbol of side `have` absent from `want`.
func reportMissing(pass *Pass, have, want *tagSide, haveTag, wantTag string) {
	syms := make([]string, 0, len(have.decls))
	for s := range have.decls {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		if _, ok := want.decls[s]; !ok {
			pass.Reportf(have.decls[s].Pos(),
				"%s is declared under build tag %q but has no counterpart under %q "+
					"(files: %s): tagged twins must stay symmetric",
				s, haveTag, wantTag, strings.Join(want.files, ", "))
		}
	}
}

// singleTagConstraint extracts a plain `tag` or `!tag` //go:build
// constraint from f. Compound expressions do not form pairs.
func singleTagConstraint(f *ast.File) (tag string, negated, ok bool) {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return "", false, false
			}
			switch e := expr.(type) {
			case *constraint.TagExpr:
				return e.Tag, false, true
			case *constraint.NotExpr:
				if t, ok := e.X.(*constraint.TagExpr); ok {
					return t.Tag, true, true
				}
			}
			return "", false, false
		}
	}
	return "", false, false
}

// collectSymbols records f's package-level declarations into decls.
// Methods are keyed "BaseType.Name" with pointerness normalised away —
// a value-receiver no-op twin of a pointer-receiver implementation is
// symmetric for this purpose.
func collectSymbols(f *ast.File, decls map[string]ast.Node) {
	record := func(name string, n ast.Node) {
		if name == "_" || name == "init" || name == "" {
			return
		}
		if _, ok := decls[name]; !ok {
			decls[name] = n
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil || len(d.Recv.List) == 0 {
				record(d.Name.Name, d)
				continue
			}
			record(fmt.Sprintf("%s.%s", receiverBase(d.Recv.List[0].Type), d.Name.Name), d)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					record(s.Name.Name, s)
				case *ast.ValueSpec:
					for _, id := range s.Names {
						record(id.Name, id)
					}
				}
			}
		}
	}
}

func receiverBase(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return receiverBase(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverBase(t.X)
	case *ast.IndexListExpr:
		return receiverBase(t.X)
	}
	return ""
}
