// Package verify is the correctness tooling for the HTM engine: a
// serializability oracle over the commit-order witness log (Replay), a
// differential checker running one workload under HTM, NOrec STM and a
// global lock (Differential), and a deterministic transaction-program
// fuzzer with shrinking (GenProgram, Shrink) driven by native Go fuzz
// targets.
package verify

import (
	"fmt"

	"htmcmp/internal/htm"
)

// ViolationKind classifies what Replay found.
type ViolationKind int

const (
	// StaleRead: a committed transaction read a line version other than the
	// one in force at its commit point — its read is not consistent with
	// commit order.
	StaleRead ViolationKind = iota
	// DirtyRead: the version matched but the bytes did not — the
	// transaction observed state that no prefix of the commit order
	// produces (e.g. a speculative store leaking from an uncommitted or
	// aborted transaction).
	DirtyRead
	// FinalStateMismatch: replaying every record over the initial snapshot
	// does not reproduce the arena's final contents.
	FinalStateMismatch
	// BadLog: the log itself is malformed (duplicate sequence numbers,
	// missing snapshot).
	BadLog
)

func (k ViolationKind) String() string {
	switch k {
	case StaleRead:
		return "stale read"
	case DirtyRead:
		return "dirty read"
	case FinalStateMismatch:
		return "final-state mismatch"
	case BadLog:
		return "bad log"
	}
	return "?"
}

// Violation is the first serializability violation Replay found. Error()
// renders it with the offending line symbolised through mem.Space.RegionAt.
type Violation struct {
	Kind ViolationKind
	// Seq/Thread/VClock identify the offending record (zero for
	// final-state mismatches, which have no single record).
	Seq    uint64
	Thread int
	VClock uint64
	// Line is the offending conflict-detection line; Region its label.
	Line   uint32
	Region string
	// WantVer/GotVer are the replayed and recorded line versions (stale
	// reads); WantSum/GotSum the replayed and recorded value hashes.
	WantVer, GotVer uint64
	WantSum, GotSum uint64
	Msg             string
}

func (v *Violation) Error() string {
	loc := fmt.Sprintf("line %d", v.Line)
	if v.Region != "" {
		loc += " (" + v.Region + ")"
	}
	switch v.Kind {
	case StaleRead:
		return fmt.Sprintf("verify: stale read: tx seq=%d thread=%d vclock=%d read %s at version %d, but commit order says version %d",
			v.Seq, v.Thread, v.VClock, loc, v.GotVer, v.WantVer)
	case DirtyRead:
		return fmt.Sprintf("verify: dirty read: tx seq=%d thread=%d vclock=%d read %s at version %d with contents %#x, but commit order produces %#x",
			v.Seq, v.Thread, v.VClock, loc, v.GotVer, v.GotSum, v.WantSum)
	case FinalStateMismatch:
		return fmt.Sprintf("verify: final-state mismatch at %s: replaying the witness log does not reproduce the arena (%s)", loc, v.Msg)
	case BadLog:
		return "verify: bad witness log: " + v.Msg
	}
	return "verify: unknown violation"
}

// ReplayOptions tunes Replay.
type ReplayOptions struct {
	// SkipFinalState disables the arena-vs-replay final comparison. Needed
	// for runs that free and re-allocate simulated memory mid-run: the
	// arena allocator rewrites recycled blocks without a witness record.
	// Read-consistency checking is unaffected.
	SkipFinalState bool
}

// Replay re-executes the witness log against a fresh sequential memory and
// reports the first transaction whose observed reads are inconsistent with
// commit order (nil if the run was serializable). The replay applies each
// record's writes in commit-sequence order over the initial arena snapshot,
// maintaining per-line write-version counters exactly as the engine did;
// each record's reads must then match the replayed version and value.
func Replay(log htm.WitnessLog) *Violation {
	return ReplayOpts(log, ReplayOptions{})
}

// ReplayOpts is Replay with options.
func ReplayOpts(log htm.WitnessLog, opt ReplayOptions) *Violation {
	if len(log.Initial) == 0 {
		return &Violation{Kind: BadLog, Msg: "no initial snapshot (was Witness.Start called?)"}
	}
	m := append([]byte(nil), log.Initial...)
	ver := make([]uint64, log.NLines)
	var lastSeq uint64
	for i := range log.Records {
		rec := &log.Records[i]
		if i > 0 && rec.Seq == lastSeq {
			return &Violation{Kind: BadLog, Seq: rec.Seq,
				Msg: fmt.Sprintf("duplicate commit sequence number %d", rec.Seq)}
		}
		lastSeq = rec.Seq
		for _, r := range rec.Reads {
			if ver[r.Line] != r.Ver {
				return &Violation{
					Kind: StaleRead, Seq: rec.Seq, Thread: rec.Thread,
					VClock: rec.VClock, Line: r.Line, Region: regionOf(log, r.Line),
					WantVer: ver[r.Line], GotVer: r.Ver,
				}
			}
			if sum := htm.LineSum(m, r.Line, log.LineSize); sum != r.Sum {
				return &Violation{
					Kind: DirtyRead, Seq: rec.Seq, Thread: rec.Thread,
					VClock: rec.VClock, Line: r.Line, Region: regionOf(log, r.Line),
					WantVer: ver[r.Line], GotVer: r.Ver,
					WantSum: sum, GotSum: r.Sum,
				}
			}
		}
		// Apply the writes, bumping each distinct line's version once per
		// record — mirroring the engine, which bumps once per published
		// line. STM records do not participate in versioning (witness.go).
		var prevLine uint32 = ^uint32(0)
		for _, wr := range rec.Writes {
			copy(m[wr.Addr:wr.Addr+uint64(len(wr.Data))], wr.Data)
			if rec.Kind != htm.WitnessSTM && wr.Line != prevLine {
				ver[wr.Line]++
				prevLine = wr.Line
			}
		}
	}
	if !opt.SkipFinalState {
		if len(log.Final) != len(m) {
			return &Violation{Kind: BadLog, Msg: "final snapshot size differs from initial"}
		}
		for line := 0; line < log.NLines; line++ {
			a := htm.LineSum(m, uint32(line), log.LineSize)
			b := htm.LineSum(log.Final, uint32(line), log.LineSize)
			if a != b {
				return &Violation{
					Kind: FinalStateMismatch, Line: uint32(line),
					Region:  regionOf(log, uint32(line)),
					WantSum: a, GotSum: b,
					Msg: fmt.Sprintf("replayed hash %#x, arena hash %#x", a, b),
				}
			}
		}
	}
	return nil
}

// regionOf symbolises a line through the arena's labelled regions.
func regionOf(log htm.WitnessLog, line uint32) string {
	if log.Space == nil {
		return ""
	}
	return log.Space.RegionAt(uint64(line) * uint64(log.LineSize))
}
