package verify

import (
	"fmt"
	"testing"

	"htmcmp/internal/platform"
)

// Native Go fuzz targets. Each decodes its raw inputs into a deterministic
// generated program, runs the oracle, and on failure shrinks the program to
// a minimal counterexample and writes a runnable repro test before failing.
// The check bodies are shared, error-returning functions so the mutation
// smoke test (mutation_test.go, -tags mutate_isolation) can assert they
// fire on a broken engine without invoking the fuzz driver.

func kindFor(sel uint8) platform.Kind { return allPlatforms[int(sel)%len(allPlatforms)] }

func threadsFor(sel uint8) int { return []int{1, 2, 4, 8}[int(sel)%4] }

// checkDifferential is the FuzzDifferential body: full three-mode
// differential plus witness replay, virtual mode.
func checkDifferential(seed uint64, kind platform.Kind, threads int) error {
	return Differential(GenProgramThreads(seed, threads), kind)
}

// checkHTMReplay is the FuzzProgramHTM body: virtual-mode HTM run under the
// witness, replayed, and cross-checked against a lock-mode execution.
func checkHTMReplay(seed uint64, kind platform.Kind, threads int) error {
	p := GenProgramThreads(seed, threads)
	res, err := p.Run(kind, ModeHTM, true, true)
	if err != nil {
		return err
	}
	if v := Replay(res.Log); v != nil {
		return v
	}
	lockRes, err := p.Run(kind, ModeLock, true, false)
	if err != nil {
		return err
	}
	if res.Digest != lockRes.Digest {
		return fmt.Errorf("%s: HTM digest %#x != lock digest %#x",
			kind.Short(), res.Digest, lockRes.Digest)
	}
	return nil
}

// checkRealConcurrency is the FuzzRealConcurrency body: HTM with real
// goroutine concurrency (sharded-lock paths), replayed and cross-checked.
func checkRealConcurrency(seed uint64, kind platform.Kind, threads int) error {
	p := GenProgramThreads(seed, threads)
	res, err := p.Run(kind, ModeHTM, false, true)
	if err != nil {
		return err
	}
	if v := Replay(res.Log); v != nil {
		return v
	}
	lockRes, err := p.Run(kind, ModeLock, true, false)
	if err != nil {
		return err
	}
	if res.Digest != lockRes.Digest {
		return fmt.Errorf("%s: real-concurrency HTM digest %#x != lock digest %#x",
			kind.Short(), res.Digest, lockRes.Digest)
	}
	return nil
}

// failShrunk shrinks the failing program under the full differential check
// (it subsumes replay and digest comparison, so any engine bug the
// individual targets catch keeps failing it) and reports the minimal
// counterexample plus the path of an emitted runnable repro test.
func failShrunk(t *testing.T, err error, seed uint64, kind platform.Kind, threads int) {
	t.Helper()
	p := GenProgramThreads(seed, threads)
	shrunk := Shrink(p, func(q *Program) bool {
		return Differential(q, kind) != nil
	})
	path := SaveRepro("Shrunk", shrunk, kind)
	t.Fatalf("%v\nshrunk to %d threads / %d ops; repro test: %s",
		err, shrunk.Threads, shrunk.NumOps(), path)
}

func FuzzDifferential(f *testing.F) {
	for i := uint8(0); i < 4; i++ {
		f.Add(uint64(i)+1, i, i)
	}
	f.Fuzz(func(t *testing.T, seed uint64, kindSel, threadSel uint8) {
		kind, threads := kindFor(kindSel), threadsFor(threadSel)
		if err := checkDifferential(seed, kind, threads); err != nil {
			failShrunk(t, err, seed, kind, threads)
		}
	})
}

func FuzzProgramHTM(f *testing.F) {
	for i := uint8(0); i < 4; i++ {
		f.Add(uint64(i)+101, i, i)
	}
	f.Fuzz(func(t *testing.T, seed uint64, kindSel, threadSel uint8) {
		kind, threads := kindFor(kindSel), threadsFor(threadSel)
		if err := checkHTMReplay(seed, kind, threads); err != nil {
			failShrunk(t, err, seed, kind, threads)
		}
	})
}

func FuzzRealConcurrency(f *testing.F) {
	for i := uint8(0); i < 4; i++ {
		f.Add(uint64(i)+201, i, i)
	}
	f.Fuzz(func(t *testing.T, seed uint64, kindSel, threadSel uint8) {
		kind := kindFor(kindSel)
		// Cap real-concurrency fan-out: goroutine scheduling dominates past
		// the host's core count and slows the fuzz loop down.
		threads := []int{1, 2, 4, 4}[int(threadSel)%4]
		if err := checkRealConcurrency(seed, kind, threads); err != nil {
			failShrunk(t, err, seed, kind, threads)
		}
	})
}
