package verify

import (
	"strings"
	"testing"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
)

var allPlatforms = []platform.Kind{
	platform.BlueGeneQ, platform.ZEC12, platform.IntelCore, platform.POWER8,
}

// TestGenProgramDeterministic pins the generator: the same seed must yield
// an identical program and an identical virtual-mode execution.
func TestGenProgramDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		a, b := GenProgram(seed), GenProgram(seed)
		if a.Threads != b.Threads || a.NumOps() != b.NumOps() {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
		ra, err := a.Run(platform.IntelCore, ModeHTM, true, false)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(platform.IntelCore, ModeHTM, true, false)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Digest != rb.Digest || ra.Stats != rb.Stats {
			t.Fatalf("seed %d: virtual run not deterministic", seed)
		}
	}
}

// TestDifferentialMatrix is the tentpole end-to-end check: generated
// programs on all four platform models × {1,2,4,8} threads, virtual mode —
// HTM, STM and lock executions must agree and the HTM/lock witness logs
// must replay serializably.
func TestDifferentialMatrix(t *testing.T) {
	for _, kind := range allPlatforms {
		for _, threads := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= 3; seed++ {
				p := GenProgramThreads(seed+uint64(threads)<<8, threads)
				if err := Differential(p, kind); err != nil {
					t.Errorf("%s t=%d seed=%d: %v", kind.Short(), threads, seed, err)
				}
			}
		}
	}
}

// TestRealConcurrencyMatrix runs generated programs with real goroutine
// concurrency on every platform: the witness log must replay serializably
// and the final state must match a sequential lock-mode execution. (STM is
// excluded: NOrec's value-based validation loads race by design and only
// virtual mode serialises them for Go's memory model.)
func TestRealConcurrencyMatrix(t *testing.T) {
	for _, kind := range allPlatforms {
		for _, threads := range []int{1, 2, 4, 8} {
			seed := uint64(0xbeef) + uint64(threads)
			p := GenProgramThreads(seed, threads)
			res, err := p.Run(kind, ModeHTM, false, true)
			if err != nil {
				t.Fatalf("%s t=%d: %v", kind.Short(), threads, err)
			}
			if v := Replay(res.Log); v != nil {
				t.Errorf("%s t=%d: %v", kind.Short(), threads, v)
			}
			lockRes, err := p.Run(kind, ModeLock, true, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != lockRes.Digest {
				t.Errorf("%s t=%d: real HTM digest %#x != lock digest %#x (sums %v vs %v)",
					kind.Short(), threads, res.Digest, lockRes.Digest,
					res.ArraySums, lockRes.ArraySums)
			}
		}
	}
}

// tamperableLog runs a contended program and returns a log that contains at
// least one transaction record with reads and writes.
func tamperableLog(t *testing.T) htm.WitnessLog {
	t.Helper()
	p := GenProgramThreads(7, 4)
	res, err := p.Run(platform.ZEC12, ModeHTM, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if v := Replay(res.Log); v != nil {
		t.Fatalf("clean log does not replay: %v", v)
	}
	return res.Log
}

// TestReplayCatchesTamperedLog unit-tests the oracle's decision procedure:
// corrupting the log in each dimension must produce the matching violation.
func TestReplayCatchesTamperedLog(t *testing.T) {
	find := func(log htm.WitnessLog, want func(*htm.TxRecord) bool) int {
		for i := range log.Records {
			if want(&log.Records[i]) {
				return i
			}
		}
		t.Fatal("no suitable record in log")
		return -1
	}

	t.Run("stale read", func(t *testing.T) {
		log := tamperableLog(t)
		i := find(log, func(r *htm.TxRecord) bool { return len(r.Reads) > 0 })
		log.Records[i].Reads[0].Ver += 1
		v := Replay(log)
		if v == nil || v.Kind != StaleRead {
			t.Fatalf("want stale-read violation, got %v", v)
		}
	})
	t.Run("dirty read", func(t *testing.T) {
		log := tamperableLog(t)
		// Tamper a read of a workload line — not the global-lock word, which
		// every transaction reads first — so the violation symbolises to a
		// verify/ region.
		ri := -1
		i := find(log, func(r *htm.TxRecord) bool {
			for j, rd := range r.Reads {
				reg := log.Space.RegionAt(uint64(rd.Line) * uint64(log.LineSize))
				if strings.HasPrefix(reg, "verify/") {
					ri = j
					return true
				}
			}
			return false
		})
		log.Records[i].Reads[ri].Sum ^= 1
		v := Replay(log)
		if v == nil || v.Kind != DirtyRead {
			t.Fatalf("want dirty-read violation, got %v", v)
		}
		if !strings.Contains(v.Error(), "verify/") {
			t.Fatalf("violation not symbolised through RegionAt: %v", v)
		}
	})
	t.Run("lost write", func(t *testing.T) {
		log := tamperableLog(t)
		i := find(log, func(r *htm.TxRecord) bool {
			return r.Kind == htm.WitnessTx && len(r.Writes) > 0
		})
		log.Records[i].Writes[0].Data[0] ^= 0xff
		if v := Replay(log); v == nil {
			t.Fatal("corrupted write image not detected")
		}
	})
	t.Run("duplicate seq", func(t *testing.T) {
		log := tamperableLog(t)
		if len(log.Records) < 2 {
			t.Skip("log too short")
		}
		log.Records[1].Seq = log.Records[0].Seq
		v := Replay(log)
		if v == nil || v.Kind != BadLog {
			t.Fatalf("want bad-log violation, got %v", v)
		}
	})
	t.Run("missing snapshot", func(t *testing.T) {
		log := tamperableLog(t)
		log.Initial = nil
		v := Replay(log)
		if v == nil || v.Kind != BadLog {
			t.Fatalf("want bad-log violation, got %v", v)
		}
	})
}

// TestShrink checks the minimiser against a synthetic predicate: it must
// reduce a noisy program to the single responsible operation.
func TestShrink(t *testing.T) {
	const magic = 0xdeadbeef
	p := GenProgramThreads(3, 4)
	p.Txns[2] = append(p.Txns[2], Txn{Ops: []Op{
		{Kind: OpStore, Arr: 0, Idx: 0, K: 1},
		{Kind: OpStore, Arr: 0, Idx: 1, K: magic},
	}})
	failing := func(q *Program) bool {
		for _, txs := range q.Txns {
			for _, tx := range txs {
				for _, op := range tx.Ops {
					if op.K == magic {
						return true
					}
				}
			}
		}
		return false
	}
	s := Shrink(p, failing)
	if !failing(s) {
		t.Fatal("shrunk program no longer fails")
	}
	if s.Threads != 1 || s.NumOps() != 1 {
		t.Fatalf("shrink not minimal: threads=%d ops=%d", s.Threads, s.NumOps())
	}
}

// TestWriteReproTest pins the reproducer format: the emitted source must be
// a self-contained test that names the platform and the program.
func TestWriteReproTest(t *testing.T) {
	p := GenProgramThreads(11, 2)
	var b strings.Builder
	if err := WriteReproTest(&b, "Example", p, platform.POWER8); err != nil {
		t.Fatal(err)
	}
	src := b.String()
	for _, want := range []string{
		"package verify", "func TestReproExample", "platform.POWER8",
		"&Program{", "Txns: [][]Txn{", "Differential(p,",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("repro source missing %q:\n%s", want, src)
		}
	}
}

// TestSTMWitnessReplays covers the write-only STM record path explicitly.
func TestSTMWitnessReplays(t *testing.T) {
	p := GenProgramThreads(5, 4)
	res, err := p.Run(platform.IntelCore, ModeSTM, true, true)
	if err != nil {
		t.Fatal(err)
	}
	sawSTM := false
	for _, r := range res.Log.Records {
		if r.Kind == htm.WitnessSTM {
			sawSTM = true
			if len(r.Reads) != 0 {
				t.Fatal("STM record must be write-only")
			}
		}
	}
	if !sawSTM {
		t.Fatal("no STM commit records witnessed")
	}
	if v := Replay(res.Log); v != nil {
		t.Fatalf("STM log does not replay: %v", v)
	}
}
