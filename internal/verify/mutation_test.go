//go:build mutate_isolation

package verify

// Mutation smoke test: built with -tags mutate_isolation the engine's
// txStore writes through to the arena instead of the per-transaction
// buffer (see internal/htm/mutate_on.go), breaking write-set isolation —
// aborted transactions leak their stores and committed transactions publish
// stale buffers. This file proves the oracle actually fires on a broken
// engine: both the witness replay and the three-way differential must
// detect the bug, and the shrinker must hand back a still-failing
// reproducer. It is the "does the smoke detector beep" test for the whole
// verification stack; it never runs in a clean build.

import (
	"strings"
	"testing"

	"htmcmp/internal/platform"
)

// TestMutationCaught runs contended generated programs on every platform
// model and requires the oracle to flag the seeded isolation bug. Single
// seeds can get lucky (no abort ever leaks a store the digest notices), so
// each platform gets several; every platform must be caught at least once
// and the overall catch rate must be overwhelming.
func TestMutationCaught(t *testing.T) {
	const threads = 4
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	total, caught := 0, 0
	for _, kind := range allPlatforms {
		kindCaught := 0
		for _, seed := range seeds {
			total++
			if err := checkDifferential(seed, kind, threads); err != nil {
				caught++
				kindCaught++
			}
		}
		if kindCaught == 0 {
			t.Errorf("%s: seeded isolation bug never detected over %d seeds",
				kind.Short(), len(seeds))
		}
	}
	if caught*4 < total*3 {
		t.Errorf("oracle caught the mutation in only %d/%d runs", caught, total)
	}
	t.Logf("mutation caught in %d/%d runs", caught, total)
}

// TestMutationCaughtByReplay pins that the witness replay alone (no
// cross-mode digest comparison) sees the bug: a leaked or stale line shows
// up as a read whose contents disagree with commit order.
func TestMutationCaughtByReplay(t *testing.T) {
	hit := false
	for seed := uint64(1); seed <= 8 && !hit; seed++ {
		p := GenProgramThreads(seed, 4)
		res, err := p.Run(platform.IntelCore, ModeHTM, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if v := Replay(res.Log); v != nil {
			hit = true
			if v.Kind != StaleRead && v.Kind != DirtyRead && v.Kind != FinalStateMismatch {
				t.Fatalf("unexpected violation kind %v: %v", v.Kind, v)
			}
			t.Logf("replay violation: %v", v)
		}
	}
	if !hit {
		t.Fatal("witness replay never detected the seeded isolation bug")
	}
}

// TestMutationShrinksToRepro exercises the full failure pipeline on a real
// (seeded) engine bug: shrink a caught counterexample and emit a runnable
// repro test, exactly as the fuzz targets do.
func TestMutationShrinksToRepro(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		kind := platform.IntelCore
		p := GenProgramThreads(seed, 4)
		if Differential(p, kind) == nil {
			continue
		}
		s := Shrink(p, func(q *Program) bool { return Differential(q, kind) != nil })
		if Differential(s, kind) == nil {
			t.Fatal("shrunk program no longer fails")
		}
		if s.NumOps() > p.NumOps() {
			t.Fatalf("shrink grew the program: %d -> %d ops", p.NumOps(), s.NumOps())
		}
		var b strings.Builder
		if err := WriteReproTest(&b, "Mutation", s, kind); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "func TestReproMutation") {
			t.Fatalf("malformed repro source:\n%s", b.String())
		}
		t.Logf("seed %d shrunk from %d to %d ops", seed, p.NumOps(), s.NumOps())
		return
	}
	t.Fatal("no seed produced a differential failure to shrink")
}
