package verify

import (
	"fmt"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/platform"
	"htmcmp/internal/prng"
	"htmcmp/internal/tm"
)

// A Program is a deterministic, randomly generated transactional workload:
// per-thread sequences of transactions whose operations are loads, stores,
// explicit aborts, compute and suspended regions over labelled shared
// arrays. Stores are commutative per array (every store to an array applies
// that array's fixed combine operator, add or xor), so the final array
// contents are independent of transaction interleaving — any serializable
// execution of the same program produces the same digest, which is what
// lets Differential compare HTM, STM and global-lock runs bit-for-bit.
type Program struct {
	Seed    uint64
	Threads int
	Arrays  []ArraySpec
	// Txns[t] is the transaction sequence of thread t.
	Txns [][]Txn
}

// CombineKind is an array's store operator.
type CombineKind uint8

const (
	// CombineAdd: stores do word += operand.
	CombineAdd CombineKind = iota
	// CombineXor: stores do word ^= operand.
	CombineXor
)

func (k CombineKind) String() string {
	if k == CombineXor {
		return "xor"
	}
	return "add"
}

// ArraySpec describes one shared array of 8-byte words.
type ArraySpec struct {
	Words   int
	Combine CombineKind
}

// Txn is one atomic critical section.
type Txn struct{ Ops []Op }

// OpKind enumerates program operations.
type OpKind uint8

const (
	// OpLoad reads Arr[Idx] into a thread-local sink.
	OpLoad OpKind = iota
	// OpStore combines K into Arr[Idx] with the array's operator
	// (read-modify-write).
	OpStore
	// OpAbortOnce explicitly aborts the first attempt of this critical
	// section (no-op on later attempts and in lock mode, where there is
	// nothing to abort).
	OpAbortOnce
	// OpWork charges K%256 cost units of compute.
	OpWork
	// OpSuspended performs K%4+1 stores to the thread's private scratch
	// line inside a POWER8 suspended region (plain stores elsewhere).
	// Scratch lines are excluded from digests: suspended stores are
	// non-transactional and re-execute on retry, so they are not
	// exactly-once.
	OpSuspended
)

// Op is one operation of a transaction.
type Op struct {
	Kind OpKind
	Arr  uint8
	Idx  uint32
	K    uint64
}

// Mode selects the synchronisation a Program runs under.
type Mode int

const (
	// ModeHTM runs critical sections through the Figure 1 HTM runtime
	// (speculation with global-lock fallback).
	ModeHTM Mode = iota
	// ModeSTM runs them as NOrec software transactions.
	ModeSTM
	// ModeLock runs them irrevocably under the global lock.
	ModeLock
)

func (m Mode) String() string {
	switch m {
	case ModeHTM:
		return "htm"
	case ModeSTM:
		return "stm"
	case ModeLock:
		return "lock"
	}
	return "?"
}

// GenProgram deterministically generates a random program from seed. The
// thread count is drawn from the seed too; use GenProgramThreads to pin it.
func GenProgram(seed uint64) *Program {
	rng := prng.New(seed)
	threads := []int{1, 2, 4, 8}[rng.Intn(4)]
	return genProgram(seed, threads, rng)
}

// GenProgramThreads is GenProgram with a fixed thread count.
func GenProgramThreads(seed uint64, threads int) *Program {
	return genProgram(seed, threads, prng.New(seed^0x9e3779b97f4a7c15))
}

func genProgram(seed uint64, threads int, rng *prng.Rand) *Program {
	p := &Program{Seed: seed, Threads: threads}
	nArrays := 1 + rng.Intn(3)
	sizes := []int{8, 16, 64, 256, 1024}
	for i := 0; i < nArrays; i++ {
		p.Arrays = append(p.Arrays, ArraySpec{
			Words:   sizes[rng.Intn(len(sizes))],
			Combine: CombineKind(rng.Intn(2)),
		})
	}
	p.Txns = make([][]Txn, threads)
	for t := 0; t < threads; t++ {
		nTxns := 3 + rng.Intn(12)
		for j := 0; j < nTxns; j++ {
			var tx Txn
			// Hot transactions confine their indices to the first few
			// words of an array, manufacturing conflicts; cold ones range
			// over the whole array.
			hot := rng.Bernoulli(0.5)
			nOps := 1 + rng.Intn(16)
			if rng.Bernoulli(0.05) {
				nOps += 64 // occasionally large: exercises capacity aborts
			}
			for k := 0; k < nOps; k++ {
				arr := uint8(rng.Intn(nArrays))
				span := p.Arrays[arr].Words
				if hot && span > 8 {
					span = 8
				}
				op := Op{Arr: arr, Idx: uint32(rng.Intn(span)), K: rng.Uint64()}
				switch r := rng.Float64(); {
				case r < 0.40:
					op.Kind = OpLoad
				case r < 0.80:
					op.Kind = OpStore
				case r < 0.85:
					op.Kind = OpAbortOnce
				case r < 0.95:
					op.Kind = OpWork
				default:
					op.Kind = OpSuspended
				}
				tx.Ops = append(tx.Ops, op)
			}
			p.Txns[t] = append(p.Txns[t], tx)
		}
	}
	return p
}

// RunResult is one execution of a Program.
type RunResult struct {
	// Digest is the FNV-64a hash over the final contents of all shared
	// arrays (scratch lines excluded).
	Digest uint64
	// ArraySums are the per-array word sums (diagnostics for mismatches).
	ArraySums []uint64
	// Log is the extracted witness log (zero-valued when withWitness was
	// false).
	Log   htm.WitnessLog
	Stats htm.Stats
}

// Run executes the program on the given platform model under mode. virtual
// selects the deterministic virtual-time scheduler; real concurrency
// otherwise. When withWitness is set the run records the commit-order
// witness log for Replay.
func (p *Program) Run(kind platform.Kind, mode Mode, virtual, withWitness bool) (*RunResult, error) {
	spec := platform.New(kind)
	threads := p.Threads
	cfg := htm.Config{
		Threads:   threads,
		SpaceSize: 1 << 20,
		Seed:      p.Seed | 1,
		Virtual:   virtual,
	}
	var wit *htm.Witness
	if withWitness {
		wit = htm.NewWitness()
		cfg.Witness = wit
	}
	e := htm.New(spec, cfg)

	// Layout: each array line-aligned and labelled, then one private
	// scratch line per thread.
	space := e.Space()
	arrays := make([]mem.Addr, len(p.Arrays))
	for i, a := range p.Arrays {
		addr := space.AllocAligned(a.Words*8, e.LineSize())
		space.Label(addr, a.Words*8, fmt.Sprintf("verify/arr%d(%s)", i, a.Combine))
		arrays[i] = addr
	}
	scratch := make([]mem.Addr, threads)
	for t := range scratch {
		scratch[t] = space.AllocAligned(e.LineSize(), e.LineSize())
		space.Label(scratch[t], e.LineSize(), fmt.Sprintf("verify/scratch%d", t))
	}
	lock := tm.NewGlobalLock(e)
	if wit != nil {
		wit.Start()
	}

	var wg sync.WaitGroup
	errs := make([]error, threads)
	for t := 0; t < threads; t++ {
		e.Thread(t).Register()
	}
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := e.Thread(t)
			x := tm.NewExecutor(th, lock, tm.DefaultPolicy(kind))
			th.BeginWork()
			defer th.ExitWork()
			defer func() {
				if r := recover(); r != nil {
					errs[t] = fmt.Errorf("thread %d panicked: %v", t, r)
				}
			}()
			for _, tx := range p.Txns[t] {
				p.runTxn(th, x, mode, tx, arrays, scratch[t])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &RunResult{Stats: e.Stats()}
	for i, a := range p.Arrays {
		sum := uint64(0)
		for w := 0; w < a.Words; w++ {
			sum += space.Load64(arrays[i] + uint64(w*8))
		}
		res.ArraySums = append(res.ArraySums, sum)
		bytes := space.ReadBytes(arrays[i], a.Words*8)
		res.Digest = fnvMix(res.Digest, bytes)
	}
	if wit != nil {
		res.Log = wit.Log()
	}
	return res, nil
}

// runTxn executes one critical section under the selected mode, with
// exactly-once shared-memory semantics across retries.
func (p *Program) runTxn(th *htm.Thread, x *tm.Executor, mode Mode, tx Txn, arrays []mem.Addr, scratch mem.Addr) {
	attempt := 0
	var sink uint64
	body := func(t *htm.Thread) {
		attempt++
		for _, op := range tx.Ops {
			switch op.Kind {
			case OpLoad:
				sink ^= t.Load64(p.addrOf(op, arrays))
			case OpStore:
				a := p.addrOf(op, arrays)
				v := t.Load64(a)
				if p.Arrays[op.Arr].Combine == CombineXor {
					v ^= op.K
				} else {
					v += op.K
				}
				t.Store64(a, v)
			case OpAbortOnce:
				// Abort only the first attempt so retrying runtimes
				// (including RunSTM, which retries forever) terminate, and
				// only where an abort is meaningful.
				if attempt <= 1 && (t.InTx() || t.InSTM()) {
					t.Abort()
				}
			case OpWork:
				t.Work(int(op.K % 256))
			case OpSuspended:
				n := int(op.K%4) + 1
				suspend := t.InTx() && t.Engine().Platform().HasSuspendResume
				if suspend {
					t.Suspend()
				}
				wordsPerLine := t.Engine().LineSize() / 8
				for i := 0; i < n; i++ {
					idx := (int(op.K%64) + i) % wordsPerLine
					t.Store64(scratch+uint64(idx*8), op.K+uint64(i))
				}
				if suspend {
					t.Resume()
				}
			}
		}
	}
	switch mode {
	case ModeHTM:
		x.Run(body)
	case ModeSTM:
		x.RunSTM(body)
	case ModeLock:
		x.RunIrrevocable(body)
	}
	_ = sink
}

func (p *Program) addrOf(op Op, arrays []mem.Addr) mem.Addr {
	return arrays[op.Arr] + uint64(op.Idx)*8
}

// NumOps returns the total operation count (shrinking progress metric).
func (p *Program) NumOps() int {
	n := 0
	for _, txs := range p.Txns {
		for _, tx := range txs {
			n += len(tx.Ops)
		}
	}
	return n
}

func fnvMix(h uint64, b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	if h == 0 {
		h = offset64
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
