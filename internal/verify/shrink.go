package verify

// Shrinking: greedily minimise a failing Program while the predicate keeps
// failing, so fuzz counterexamples come out small enough to read. Passes
// remove whole threads, then whole transactions, then individual
// operations, repeating until a fixpoint (or the evaluation budget runs
// out). The predicate receives a candidate and reports whether it still
// fails; every candidate is a deep copy, so the predicate may run it
// freely.

// shrinkBudget bounds predicate evaluations: shrinking a pathological case
// must terminate within a fuzz iteration's time budget.
const shrinkBudget = 400

// Shrink returns a minimal (under its greedy passes) program that still
// makes failing return true. p itself must fail; the result always fails.
func Shrink(p *Program, failing func(*Program) bool) *Program {
	cur := p.clone()
	evals := 0
	try := func(cand *Program) bool {
		if evals >= shrinkBudget {
			return false
		}
		evals++
		if failing(cand) {
			cur = cand
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		// Drop whole threads (any index: the remaining schedules slide down,
		// keeping Threads contiguous).
		for t := cur.Threads - 1; t >= 0 && cur.Threads > 1; t-- {
			cand := cur.clone()
			cand.Txns = append(cand.Txns[:t:t], cand.Txns[t+1:]...)
			cand.Threads--
			if try(cand) {
				changed = true
			}
		}
		// Drop whole transactions.
		for t := 0; t < cur.Threads; t++ {
			for j := len(cur.Txns[t]) - 1; j >= 0; j-- {
				cand := cur.clone()
				cand.Txns[t] = append(cand.Txns[t][:j:j], cand.Txns[t][j+1:]...)
				if try(cand) {
					changed = true
				}
			}
		}
		// Drop individual operations.
		for t := 0; t < cur.Threads; t++ {
			for j := range cur.Txns[t] {
				for k := len(cur.Txns[t][j].Ops) - 1; k >= 0; k-- {
					cand := cur.clone()
					ops := cand.Txns[t][j].Ops
					cand.Txns[t][j].Ops = append(ops[:k:k], ops[k+1:]...)
					if try(cand) {
						changed = true
					}
				}
			}
		}
		if evals >= shrinkBudget {
			break
		}
	}
	return cur
}

// clone deep-copies the program.
func (p *Program) clone() *Program {
	q := &Program{Seed: p.Seed, Threads: p.Threads}
	q.Arrays = append([]ArraySpec(nil), p.Arrays...)
	q.Txns = make([][]Txn, len(p.Txns))
	for t, txs := range p.Txns {
		q.Txns[t] = make([]Txn, len(txs))
		for j, tx := range txs {
			q.Txns[t][j] = Txn{Ops: append([]Op(nil), tx.Ops...)}
		}
	}
	return q
}
