package verify

import (
	"fmt"

	"htmcmp/internal/platform"
)

// DiffOptions tunes Differential.
type DiffOptions struct {
	// Virtual selects the deterministic virtual-time scheduler (default
	// true via Differential; real concurrency exercises the locked paths).
	Virtual bool
	// SkipReplay disables the witness-replay serializability check on the
	// HTM and lock runs (the digest comparison still runs).
	SkipReplay bool
}

// Differential runs the program to completion under each of {platform HTM,
// NOrec STM, global lock} with the same seed and asserts that the final
// shared-memory state (per-array digests) matches across all three, and —
// unless opted out — that the HTM and lock runs' witness logs replay
// serializably. A non-nil error is a correctness bug in the engine (or a
// shrunk reproducer of one).
func Differential(p *Program, kind platform.Kind) error {
	return DifferentialOpts(p, kind, DiffOptions{Virtual: true})
}

// DifferentialOpts is Differential with options.
func DifferentialOpts(p *Program, kind platform.Kind, opt DiffOptions) error {
	type run struct {
		mode Mode
		res  *RunResult
	}
	runs := make([]run, 0, 3)
	for _, mode := range []Mode{ModeHTM, ModeSTM, ModeLock} {
		res, err := p.Run(kind, mode, opt.Virtual, !opt.SkipReplay)
		if err != nil {
			return fmt.Errorf("%s/%s run failed: %w", kind.Short(), mode, err)
		}
		if !opt.SkipReplay {
			// STM logs are write-only records: replay still validates that
			// applying them reproduces the final arena.
			if v := Replay(res.Log); v != nil {
				return fmt.Errorf("%s/%s: %w", kind.Short(), mode, v)
			}
		}
		runs = append(runs, run{mode, res})
	}
	base := runs[len(runs)-1] // lock run: the non-speculative reference
	for _, r := range runs[:len(runs)-1] {
		if r.res.Digest != base.res.Digest {
			return fmt.Errorf("%s: final-state digest diverges: %s=%#x, %s=%#x (array sums %v vs %v)",
				kind.Short(), r.mode, r.res.Digest, base.mode, base.res.Digest,
				r.res.ArraySums, base.res.ArraySums)
		}
	}
	return nil
}
