package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a, b := Derive(1, 0), Derive(1, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("derived streams collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	check := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Crude bucket test: 16 buckets from the top nibble.
	r := New(11)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	for i, c := range buckets {
		if c < n/16*8/10 || c > n/16*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", i, c, n/16)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const p = 0.25
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 3
	if math.Abs(mean-want) > 0.2 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestSplitMix64KnownSequenceDiffers(t *testing.T) {
	s := NewSplitMix64(0)
	a, b := s.Next(), s.Next()
	if a == b {
		t.Error("splitmix returned identical consecutive values")
	}
}
