// Package prng provides small, fast, deterministic pseudo-random number
// generators used by the workloads and by the stochastic parts of the HTM
// models (e.g. the zEC12 cache-fetch abort injector).
//
// The STAMP benchmarks depend on reproducible random streams: the C originals
// ship their own Mersenne Twister so that every platform sees the same input.
// We use splitmix64/xoshiro256** instead — equally deterministic, much
// smaller — and derive per-thread streams from a single seed so that runs are
// reproducible regardless of goroutine scheduling.
package prng

// SplitMix64 is the seeding generator recommended for xoshiro state
// initialization. It is also a perfectly good generator on its own for
// non-overlapping single streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New or Derive.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// A zero state would be absorbing; splitmix output makes this
	// astronomically unlikely, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Derive returns an independent generator for stream id derived from seed.
// Two Derive calls with different ids yield streams that do not overlap in
// practice (distinct splitmix seeds).
func Derive(seed uint64, id int) *Rand {
	return New(seed ^ (0x9e3779b97f4a7c15 * uint64(id+1)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is irrelevant here
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n), Fisher–Yates shuffled.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of failures before the first success).
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	n := 0
	for !r.Bernoulli(p) {
		n++
		if n > 1<<20 { // defensive bound for tiny p
			break
		}
	}
	return n
}
