// Package chaos is the deterministic fault injector behind the self-healing
// sweep. The paper's platforms abort transactions for reasons that have
// nothing to do with the program — BG/Q and zEC12 kill transactions when an
// external interrupt lands mid-flight, zEC12 suffers transient
// "cache-fetch-related" aborts, POWER8's SMT sharing shrinks the effective
// footprint budget — and a runtime that only counts those events has not
// demonstrated it can survive them. This package injects them on purpose.
//
// Everything is derived from one seed. Whether a given sweep cell is
// afflicted by a given fault class is a pure hash of (seed, class, cell
// key), independent of scheduling order, so two runs of the same sweep
// inject exactly the same faults into exactly the same cells no matter how
// the worker pool interleaves. Within an afflicted engine run, per-thread
// Streams (derived like the engine's own per-thread PRNGs) decide at each
// opportunity — a commit point, a capacity check, an STM load — whether the
// fault fires, so an engine run under the virtual-time scheduler is itself
// reproducible.
//
// The injector follows the same zero-overhead discipline as the tracer,
// witness and metrics: every hook is reachable only behind a nil check, a
// disabled injector costs one pointer comparison, and injection is absent
// from cache keys, so golden determinism holds bit-for-bit with chaos off.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"htmcmp/internal/prng"
)

// Class identifies one injectable fault class. The engine-level classes
// model the paper's abort taxonomy; the harness-level classes model the
// process- and filesystem-level failures a production sweep must survive.
type Class uint8

const (
	// SpuriousAbort is an interrupt-style transient abort injected at the
	// commit boundary (BG/Q and zEC12 abort on external interrupts; the
	// paper's Section 2 "other" category).
	SpuriousAbort Class = iota
	// CapacityFault forces a persistent capacity overflow at a capacity
	// check even though the footprint fits (modelling SMT neighbours or
	// way-conflict pressure shrinking the real budget).
	CapacityFault
	// STMContention bumps the NOrec global sequence lock under a software
	// transaction's feet, forcing value revalidation (the cost NOrec pays
	// whenever any writer commits).
	STMContention
	// ModeThrash forces the adaptive controller into a spurious steady-mode
	// transition on a commit, modelling a mis-tuned or flapping controller.
	ModeThrash
	// CellPanic panics the sweep cell's goroutine mid-execution.
	CellPanic
	// CellStall stalls the cell past the sweep's -cell-timeout budget.
	CellStall
	// CacheCorrupt tears the cell's on-disk cache record after it is
	// written (truncation, garbage bytes, or a stale record), so a resumed
	// sweep must detect, evict and recompute it.
	CacheCorrupt
	// WorkerCrash kills the sweep worker goroutine that picked the cell up
	// (the cell is requeued; the pool must heal and drain).
	WorkerCrash

	NumClasses
)

// String returns the short identifier used in reports and counters.
func (c Class) String() string {
	switch c {
	case SpuriousAbort:
		return "spurious-abort"
	case CapacityFault:
		return "capacity-fault"
	case STMContention:
		return "stm-contention"
	case ModeThrash:
		return "mode-thrash"
	case CellPanic:
		return "cell-panic"
	case CellStall:
		return "cell-stall"
	case CacheCorrupt:
		return "cache-corrupt"
	case WorkerCrash:
		return "worker-crash"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// EngineLevel reports whether the class is injected inside the simulated
// engine/runtime (as opposed to the sweep harness around it).
func (c Class) EngineLevel() bool { return c <= ModeThrash }

// Config parameterises an Injector. The zero value injects nothing; use
// DefaultConfig for a test-scale mix of every class.
type Config struct {
	// Seed drives every affliction and roll decision.
	Seed uint64
	// Rates[class] is the probability that one cell attempt is afflicted by
	// the class at all (decided by a pure hash of seed/class/key).
	Rates [NumClasses]float64
	// OpRates[class] is the per-opportunity probability that an afflicted
	// engine run fires the fault at one injection point (a commit, a
	// capacity check, an STM load, a controller commit).
	OpRates [NumClasses]float64
	// Persist is how many consecutive attempts of a cell an affliction
	// survives (default 1: the first retry runs clean). Tests raise it to
	// force cells into quarantine.
	Persist int
}

// DefaultConfig returns a test-scale configuration that exercises every
// fault class with enough probability to observe recovery in a small sweep.
func DefaultConfig(seed uint64) Config {
	cfg := Config{Seed: seed, Persist: 1}
	for c := Class(0); c < NumClasses; c++ {
		cfg.Rates[c] = 0.25
	}
	cfg.OpRates[SpuriousAbort] = 0.02
	cfg.OpRates[CapacityFault] = 0.0005
	cfg.OpRates[STMContention] = 0.01
	cfg.OpRates[ModeThrash] = 0.05
	return cfg
}

// Injector decides afflictions and counts fired injections. It is safe for
// concurrent use; a nil *Injector is valid everywhere and injects nothing.
type Injector struct {
	cfg   Config
	fired [NumClasses]atomic.Uint64
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	if cfg.Persist <= 0 {
		cfg.Persist = 1
	}
	return &Injector{cfg: cfg}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.cfg.Seed }

// Config returns the effective configuration.
func (in *Injector) Config() Config { return in.cfg }

// fnv64 is FNV-1a over s — a stable, dependency-free string hash for
// deriving per-cell streams.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// afflictionUnit maps (seed, class, key) to a uniform value in [0, 1) via
// one splitmix64 step — a pure function, so affliction decisions are
// independent of scheduling order.
func afflictionUnit(seed uint64, class Class, key string) float64 {
	sm := prng.NewSplitMix64(seed ^ fnv64(key) ^ (uint64(class)+1)*0x9e3779b97f4a7c15)
	return float64(sm.Next()>>11) / (1 << 53)
}

// Afflicts reports whether the given attempt (0-based) of the cell
// identified by key is afflicted by class. Deterministic in (seed, class,
// key, attempt); attempts at or beyond Persist always run clean, which is
// what makes every injected fault recoverable by bounded retry.
func (in *Injector) Afflicts(class Class, key string, attempt int) bool {
	if in == nil || attempt >= in.cfg.Persist {
		return false
	}
	p := in.cfg.Rates[class]
	if p <= 0 {
		return false
	}
	return afflictionUnit(in.cfg.Seed, class, key) < p
}

// Note counts one fired injection of class (used by harness-level faults
// whose firing is the affliction itself).
func (in *Injector) Note(class Class) {
	if in != nil {
		in.fired[class].Add(1)
	}
}

// NoteN counts n fired injections of class at once (used to fold a child
// injector's engine-level counts back into its parent for the chaos report).
func (in *Injector) NoteN(class Class, n uint64) {
	if in != nil && n > 0 {
		in.fired[class].Add(n)
	}
}

// Fired returns how many injections of class have fired.
func (in *Injector) Fired(class Class) uint64 {
	if in == nil {
		return 0
	}
	return in.fired[class].Load()
}

// TotalFired returns the total fired injections across all classes.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for c := Class(0); c < NumClasses; c++ {
		n += in.fired[c].Load()
	}
	return n
}

// Counts returns the fired-injection counters keyed by class name (for the
// chaos report).
func (in *Injector) Counts() map[string]uint64 {
	out := map[string]uint64{}
	if in == nil {
		return out
	}
	for c := Class(0); c < NumClasses; c++ {
		if n := in.fired[c].Load(); n > 0 {
			out[c.String()] = n
		}
	}
	return out
}

// EngineFor derives the engine-level child injector for one attempt of the
// cell identified by key: only the engine classes that afflict this attempt
// keep their per-opportunity rates. Returns nil when the attempt is clean —
// the engine then pays exactly one nil check per hook, same as chaos off.
// The child's fired counters tell the sweep whether injection actually
// happened during the run (an afflicted run may roll no faults at all).
func (in *Injector) EngineFor(key string, attempt int) *Injector {
	if in == nil {
		return nil
	}
	child := Config{
		Seed:    prng.NewSplitMix64(in.cfg.Seed ^ fnv64(key) ^ uint64(attempt)*0x9e3779b97f4a7c15).Next(),
		Persist: 1,
	}
	any := false
	for c := SpuriousAbort; c <= ModeThrash; c++ {
		if in.Afflicts(c, key, attempt) {
			child.OpRates[c] = in.cfg.OpRates[c]
			any = true
		}
	}
	if !any {
		return nil
	}
	return New(child)
}

// Stream is a deterministic per-context roll source: one per engine thread
// (id = slot) or per adaptive site (id = site id). A nil *Stream is valid
// and never fires.
type Stream struct {
	in  *Injector
	rng *prng.Rand
}

// Stream derives the injector's roll stream for context id.
func (in *Injector) Stream(id int) *Stream {
	if in == nil {
		return nil
	}
	return &Stream{in: in, rng: prng.Derive(in.cfg.Seed, id)}
}

// Roll decides whether the fault class fires at this opportunity, counting
// it when it does. Classes with a zero op-rate never touch the PRNG, so
// enabling one class does not perturb another's stream.
func (s *Stream) Roll(class Class) bool {
	if s == nil {
		return false
	}
	p := s.in.cfg.OpRates[class]
	if p <= 0 || !s.rng.Bernoulli(p) {
		return false
	}
	s.in.fired[class].Add(1)
	return true
}

// Backoff returns the jittered exponential backoff before retry `attempt`
// (0-based) of the cell identified by key: base<<attempt capped at max,
// jittered into [d/2, d) from a pure hash of (seed, key, attempt). It is a
// pure function — deterministic for a given sweep seed — and its result is
// always in (0, max], never unbounded doubling.
func Backoff(seed uint64, key string, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	if base > max {
		base = max
	}
	d := max
	if attempt < 20 { // beyond 2^20 doublings the cap has long since won
		if shifted := base << uint(attempt); shifted > 0 && shifted < max {
			d = shifted
		}
	}
	sm := prng.NewSplitMix64(seed ^ fnv64(key) ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(sm.Next()%uint64(half))
}
