package chaos

import (
	"testing"
	"time"
)

func TestAfflictsDeterministicAndOrderIndependent(t *testing.T) {
	in := New(DefaultConfig(7))
	keys := []string{"cell-a", "cell-b", "cell-c", "cell-d", "cell-e"}
	first := map[string]bool{}
	for _, k := range keys {
		first[k] = in.Afflicts(CellPanic, k, 0)
	}
	// Re-query in reverse order, through a fresh injector: decisions are a
	// pure function of (seed, class, key), never of query order or state.
	in2 := New(DefaultConfig(7))
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if got := in2.Afflicts(CellPanic, k, 0); got != first[k] {
			t.Fatalf("Afflicts(%q) changed across injectors/order: %v vs %v", k, got, first[k])
		}
	}
}

func TestAfflictsSeedSensitivity(t *testing.T) {
	// Across many keys, two seeds must not produce identical afflictions
	// (astronomically unlikely unless the hash ignores the seed).
	a, b := New(DefaultConfig(1)), New(DefaultConfig(2))
	same := true
	for i := 0; i < 256 && same; i++ {
		k := string(rune('a'+i%26)) + string(rune('0'+i%10)) + "key"
		if a.Afflicts(CellPanic, k, 0) != b.Afflicts(CellPanic, k, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("afflictions identical across different seeds")
	}
}

func TestAfflictsRespectsPersist(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Rates[CellPanic] = 1 // every cell afflicted
	cfg.Persist = 2
	in := New(cfg)
	if !in.Afflicts(CellPanic, "k", 0) || !in.Afflicts(CellPanic, "k", 1) {
		t.Fatal("affliction should persist for Persist attempts")
	}
	if in.Afflicts(CellPanic, "k", 2) {
		t.Fatal("attempt >= Persist must run clean (bounded retry must win)")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Afflicts(CellPanic, "k", 0) {
		t.Fatal("nil injector afflicted a cell")
	}
	if in.EngineFor("k", 0) != nil {
		t.Fatal("nil injector built an engine child")
	}
	if in.Stream(0).Roll(SpuriousAbort) {
		t.Fatal("nil stream fired")
	}
	if in.TotalFired() != 0 || in.Fired(CellPanic) != 0 {
		t.Fatal("nil injector counted")
	}
	in.Note(CellPanic) // must not panic
}

func TestEngineForOnlyEngineClasses(t *testing.T) {
	cfg := DefaultConfig(11)
	for c := Class(0); c < NumClasses; c++ {
		cfg.Rates[c] = 1
	}
	in := New(cfg)
	child := in.EngineFor("some-cell", 0)
	if child == nil {
		t.Fatal("every class afflicted, expected a child injector")
	}
	ccfg := child.Config()
	for c := SpuriousAbort; c <= ModeThrash; c++ {
		if ccfg.OpRates[c] != cfg.OpRates[c] {
			t.Errorf("engine class %s op-rate = %v, want %v", c, ccfg.OpRates[c], cfg.OpRates[c])
		}
	}
	for c := CellPanic; c < NumClasses; c++ {
		if ccfg.OpRates[c] != 0 {
			t.Errorf("harness class %s leaked into engine child", c)
		}
	}
	// Beyond Persist the attempt is clean: no child at all.
	if in.EngineFor("some-cell", cfg.Persist) != nil {
		t.Fatal("attempt beyond Persist produced an engine child")
	}
}

func TestStreamDeterministicAndCounted(t *testing.T) {
	cfg := Config{Seed: 5}
	cfg.OpRates[SpuriousAbort] = 0.5
	a, b := New(cfg), New(cfg)
	sa, sb := a.Stream(3), b.Stream(3)
	fired := 0
	for i := 0; i < 1000; i++ {
		ra, rb := sa.Roll(SpuriousAbort), sb.Roll(SpuriousAbort)
		if ra != rb {
			t.Fatalf("roll %d diverged between identical streams", i)
		}
		if ra {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("p=0.5 over 1000 rolls never fired")
	}
	if got := a.Fired(SpuriousAbort); got != uint64(fired) {
		t.Fatalf("Fired=%d, observed %d", got, fired)
	}
	if a.TotalFired() != uint64(fired) {
		t.Fatalf("TotalFired=%d, observed %d", a.TotalFired(), fired)
	}
	if a.Counts()[SpuriousAbort.String()] != uint64(fired) {
		t.Fatalf("Counts missing %s", SpuriousAbort)
	}
	// Zero-rate classes must not perturb the stream or count.
	if sa.Roll(CapacityFault) {
		t.Fatal("zero-rate class fired")
	}
}

func TestBackoffDeterministicBoundedMonotoneEnvelope(t *testing.T) {
	const base, cap = 5 * time.Millisecond, 250 * time.Millisecond
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		for _, key := range []string{"a", "cell/zec12/t2", ""} {
			for attempt := 0; attempt < 64; attempt++ {
				d1 := Backoff(seed, key, attempt, base, cap)
				d2 := Backoff(seed, key, attempt, base, cap)
				if d1 != d2 {
					t.Fatalf("Backoff not deterministic: %v vs %v", d1, d2)
				}
				if d1 <= 0 || d1 > cap {
					t.Fatalf("Backoff(%d) = %v out of (0, %v]", attempt, d1, cap)
				}
				// Jitter lives in [envelope/2, envelope): never below half
				// the base, never at or above the cap envelope.
				if attempt == 0 && d1 < base/2 {
					t.Fatalf("first backoff %v below base/2", d1)
				}
			}
		}
	}
	// Huge attempts (shift overflow territory) stay capped.
	if d := Backoff(9, "k", 1<<20, base, cap); d <= 0 || d > cap {
		t.Fatalf("overflowing attempt produced %v", d)
	}
	// Defaults engage on zero/negative base and cap.
	if d := Backoff(9, "k", 0, 0, 0); d <= 0 || d > 250*time.Millisecond {
		t.Fatalf("default backoff %v out of range", d)
	}
	// base > max is clamped, not inverted.
	if d := Backoff(9, "k", 0, time.Second, 10*time.Millisecond); d > 10*time.Millisecond {
		t.Fatalf("base>max produced %v", d)
	}
}

func TestClassStringsAndLevels(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("class %d has empty or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if Class(250).String() == "" {
		t.Fatal("out-of-range class has empty name")
	}
	for c := SpuriousAbort; c <= ModeThrash; c++ {
		if !c.EngineLevel() {
			t.Errorf("%s should be engine-level", c)
		}
	}
	for c := CellPanic; c < NumClasses; c++ {
		if c.EngineLevel() {
			t.Errorf("%s should be harness-level", c)
		}
	}
}
