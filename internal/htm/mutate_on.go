//go:build mutate_isolation

package htm

// Mutation build: break write-set isolation (see mutate_off.go). Only the
// internal/verify mutation smoke test builds with this tag; it asserts that
// verify.Replay and verify.Differential both report the bug.
const mutateWriteThrough = true
