package htm

import (
	"htmcmp/internal/chaos"
	"htmcmp/internal/mem"
)

// Software transactional memory: a NOrec-style runtime (Dalessandro, Spear,
// Scott, PPoPP 2010 — reference [15] of the paper) over the same simulated
// memory and the same Thread access API as the HTM models.
//
// The paper's premise (Sections 1 and 8) is that HTM exists because STM's
// per-access instrumentation is too expensive, while STM has no capacity
// limits and is portable. Running the same STAMP ports under NOrec makes
// that trade-off measurable: TrySTM has value-based word-granularity
// conflict detection (no false sharing, no capacity aborts, no cache-fetch
// weirdness) but pays instrumentation on every load and store and validates
// its whole read log whenever the global sequence lock moves.
//
// NOrec in brief: one global sequence lock (even = free). A transaction
// snapshots it at begin; every transactional load is logged (address,
// value); whenever the lock is observed to have moved, the read log is
// re-validated by value and the snapshot advances (abort on any change).
// Stores go to a write buffer. Commit acquires the lock by CAS, making the
// writer exclusive, re-validates if needed, writes back, and releases with
// snapshot+2. Read-only transactions commit without touching the lock.

// STM instrumentation costs in cycles, on top of the base access cost.
// Scaled by Config.CostScale like the platform costs.
const (
	stmLoadCost     = 9  // read-log append + lock check
	stmStoreCost    = 5  // write-buffer insert
	stmValidateCost = 2  // per read-log entry re-read and compare
	stmBeginCost    = 6  // snapshot
	stmCommitCost   = 25 // lock CAS + release
	stmAbortCost    = 30 // log reset + restart
)

// stmEntry is one read-log record.
type stmEntry struct {
	addr mem.Addr
	val  uint64
}

// stmState is the per-thread NOrec context (embedded in Thread). The write
// buffer is an accessTab (word-aligned address -> value) so clearing it at
// begin is an O(1) epoch bump rather than a map sweep; write-back order is
// kept in the explicit order log, never taken from the table.
type stmState struct {
	active   bool
	snapshot uint64
	readLog  []stmEntry
	writes   accessTab[mem.Addr, uint64]
	order    []mem.Addr // write-back order
}

// InSTM reports whether a software transaction is active on this thread.
func (t *Thread) InSTM() bool { return t.stm.active }

// TrySTM runs fn as one NOrec software transaction attempt. Like TryTx it
// returns (false, abort) on a validation failure with all stores discarded;
// unlike best-effort HTM there are no capacity or implementation aborts —
// the only reason is ReasonConflict. RunSTM in internal/tm retries until
// commit (NOrec guarantees progress for writers once the lock is held).
func (t *Thread) TrySTM(fn func()) (committed bool, abort Abort) {
	if t.inTx || t.stm.active {
		panic("htm: nested transaction begin")
	}
	t.stmBegin()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				t.stmRollback()
				panic(r)
			}
			t.stmRollback()
			committed, abort = false, t.pendingAbort
		}
	}()
	fn()
	t.stmCommit()
	return true, Abort{}
}

func (t *Thread) stmBegin() {
	t.stm.active = true
	t.stm.readLog = t.stm.readLog[:0]
	t.stm.order = t.stm.order[:0]
	t.stm.writes.reset()
	t.pendingAbort = Abort{}
	if t.metrics != nil {
		t.metrics.Begins.Inc(t.slot)
	}
	t.stats.Begins++
	t.work(t.eng.scaledCost(stmBeginCost))
	// Snapshot an even (unlocked) sequence number.
	for {
		s := t.eng.stmSeq.Load()
		if s&1 == 0 {
			t.stm.snapshot = s
			return
		}
		t.Pause(4)
	}
}

func (t *Thread) stmRollback() {
	t.stm.active = false
	if t.metrics != nil {
		t.metrics.Abort(t.slot, uint8(t.pendingAbort.Reason))
	}
	t.stats.Aborts++
	t.stats.AbortsByReason[t.pendingAbort.Reason]++
	for _, a := range t.allocs {
		t.eng.space.FreeArena(a, t.slot)
	}
	t.allocs = t.allocs[:0]
	t.frees = t.frees[:0]
	t.work(t.eng.scaledCost(stmAbortCost))
}

// stmValidate re-reads the whole read log after the sequence lock moved; a
// changed value aborts, otherwise the snapshot advances (NOrec's value-based
// validation).
func (t *Thread) stmValidate() {
	for {
		s := t.eng.stmSeq.Load()
		if s&1 == 1 {
			t.Pause(4)
			continue
		}
		t.work(t.eng.scaledCost(stmValidateCost) * (len(t.stm.readLog) + 1))
		data := t.data
		for _, ent := range t.stm.readLog {
			if le64(data[ent.addr:]) != ent.val {
				t.abortNow(ReasonConflict, false)
			}
		}
		if t.eng.stmSeq.Load() == s {
			t.stm.snapshot = s
			return
		}
	}
}

// injectSTMContention models a concurrent NOrec writer commit: the global
// sequence lock advances by 2 (even to even, CAS so a real writer holding
// the odd lock is never corrupted), publishing nothing. Every in-flight
// software transaction observes the moved clock and revalidates its read
// log — the cost NOrec pays under write contention — and, values being
// unchanged, continues.
func (t *Thread) injectSTMContention() {
	for {
		s := t.eng.stmSeq.Load()
		if s&1 == 1 {
			return // a real writer holds the lock: contention already exists
		}
		if t.eng.stmSeq.CompareAndSwap(s, s+2) {
			return
		}
	}
}

// stmLoadWord performs a NOrec transactional load of the aligned word at a.
func (t *Thread) stmLoadWord(a mem.Addr) uint64 {
	if v, ok := t.stm.writes.get(a); ok {
		return v
	}
	if t.faults != nil && t.faults.Roll(chaos.STMContention) {
		t.injectSTMContention()
	}
	t.work(t.eng.scaledCost(stmLoadCost))
	t.maybeYield()
	t.stats.TxLoads++
	for {
		v := le64(t.data[a:])
		if t.eng.stmSeq.Load() == t.stm.snapshot {
			t.stm.readLog = append(t.stm.readLog, stmEntry{addr: a, val: v})
			return v
		}
		t.stmValidate()
	}
}

// stmStoreWord buffers a NOrec transactional store of the aligned word at a.
func (t *Thread) stmStoreWord(a mem.Addr, v uint64) {
	t.work(t.eng.scaledCost(stmStoreCost))
	t.maybeYield()
	t.stats.TxStores++
	if !t.stm.writes.has(a) {
		t.stm.order = append(t.stm.order, a)
	}
	t.stm.writes.put(a, v)
}

func (t *Thread) stmCommit() {
	st := &t.stm
	if len(st.order) == 0 {
		// Read-only: NOrec commits without the lock.
		st.active = false
		if t.metrics != nil {
			t.metrics.Commits.Inc(t.slot)
		}
		t.stats.Commits++
		t.work(t.eng.scaledCost(stmCommitCost) / 2)
		t.allocs = t.allocs[:0]
		t.frees = t.frees[:0]
		return
	}
	// Acquire the sequence lock from our snapshot; a failed CAS means the
	// clock moved, so validate (advancing the snapshot) and try again.
	for !t.eng.stmSeq.CompareAndSwap(st.snapshot, st.snapshot+1) {
		t.stmValidate()
	}
	// Exclusive: write back in order. No yields while the lock is odd so
	// the critical section stays short (as a real NOrec's would).
	data := t.data
	for _, a := range st.order {
		v, _ := st.writes.get(a)
		putLE64(data[a:], v)
	}
	if t.wit != nil {
		// While the sequence lock is held: writer commits are totally
		// ordered by it, so the witness sequence matches visibility order.
		t.witnessSTM()
	}
	if t.eng.hybrid.Load() {
		// Hybrid mode (hybrid.go): the write-back above bypassed the line
		// table, so hardware transactions reading those lines were never
		// doomed. Every adaptive hardware transaction subscribes to the gate
		// line; doom them all before releasing the sequence lock.
		t.doomHybridGateReaders()
	}
	t.work(t.eng.scaledCost(stmCommitCost) + len(st.order))
	t.eng.stmSeq.Store(st.snapshot + 2)
	st.active = false
	if t.metrics != nil {
		t.metrics.Commits.Inc(t.slot)
	}
	t.stats.Commits++
	if s := t.eng.cfg.FootprintSampler; s != nil {
		s(len(st.readLog), len(st.order))
	}
	for _, a := range t.frees {
		t.eng.space.FreeArena(a, t.slot)
	}
	t.frees = t.frees[:0]
	t.allocs = t.allocs[:0]
	t.maybeYield()
}

// stmLoad/stmStore adapt sub-word accesses to the word-granularity logs.

func (t *Thread) stmLoadBytes(a mem.Addr, n int) uint64 {
	word := a &^ 7
	shift := (a - word) * 8
	v := t.stmLoadWord(word) >> shift
	switch n {
	case 1:
		return v & 0xff
	case 4:
		return v & 0xffffffff
	default:
		return v
	}
}

func (t *Thread) stmStoreBytes(a mem.Addr, n int, v uint64) {
	word := a &^ 7
	if a == word && n == 8 {
		t.stmStoreWord(word, v)
		return
	}
	shift := (a - word) * 8
	var mask uint64
	switch n {
	case 1:
		mask = 0xff
	case 4:
		mask = 0xffffffff
	default:
		mask = ^uint64(0)
	}
	old := t.stmLoadWord(word)
	t.stmStoreWord(word, (old&^(mask<<shift))|((v&mask)<<shift))
}
