//go:build !racecheck

package htm

// debugChecks gates assertions that are too expensive (or too strict) for
// production simulation runs. Enable them with -tags racecheck, the same tag
// CI's race job builds with (see `make race`).
const debugChecks = false
