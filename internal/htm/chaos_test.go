package htm

import (
	"sync"
	"testing"

	"htmcmp/internal/chaos"
	"htmcmp/internal/platform"
)

// chaosEngine builds a cost-free engine with the given chaos op-rates (every
// cell-level affliction decision is bypassed: the injector rolls directly).
func chaosEngine(t *testing.T, k platform.Kind, threads int, rates map[chaos.Class]float64) (*Engine, *chaos.Injector) {
	t.Helper()
	cfg := chaos.Config{Seed: 99, Persist: 1}
	for c, p := range rates { //htmlint:allow determinism -- keyed copy into OpRates, order-insensitive
		cfg.OpRates[c] = p
	}
	in := chaos.New(cfg)
	e := New(platform.New(k), Config{
		Threads:                 threads,
		SpaceSize:               1 << 20,
		Seed:                    42,
		CostScale:               0,
		DisableCacheFetchAborts: true,
		DisablePrefetch:         true,
		Faults:                  in,
	})
	return e, in
}

func TestChaosSpuriousAbortAtCommit(t *testing.T) {
	// With a certain roll, the first commit attempt dies with the injected
	// interrupt reason, transient, and the stores roll back.
	e, in := chaosEngine(t, platform.IntelCore, 1, map[chaos.Class]float64{chaos.SpuriousAbort: 1})
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 7)
	ok, ab := th.TryTx(TxNormal, func() { th.Store64(a, 99) })
	if ok {
		t.Fatal("transaction committed through a certain spurious abort")
	}
	if ab.Reason != ReasonInterrupt || ab.Persistent {
		t.Fatalf("abort = %+v, want transient interrupt", ab)
	}
	if got := th.Load64(a); got != 7 {
		t.Fatalf("injected abort leaked stores: Load64 = %d, want 7", got)
	}
	if in.Fired(chaos.SpuriousAbort) != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired(chaos.SpuriousAbort))
	}
}

func TestChaosSpuriousAbortRecoversByRetry(t *testing.T) {
	// At p=0.5 a bounded retry loop recovers every execution: injected
	// interrupts are transient, exactly like the platform aborts they model.
	e, in := chaosEngine(t, platform.IntelCore, 1, map[chaos.Class]float64{chaos.SpuriousAbort: 0.5})
	th := e.Thread(0)
	a := th.Alloc(64)
	committed := 0
	for i := 0; i < 50; i++ {
		for attempt := 0; ; attempt++ {
			if attempt > 100 {
				t.Fatal("transient injected abort did not clear after 100 retries")
			}
			ok, ab := th.TryTx(TxNormal, func() { th.Store64(a, th.Load64(a)+1) })
			if ok {
				committed++
				break
			}
			if ab.Reason != ReasonInterrupt {
				t.Fatalf("unexpected abort %+v", ab)
			}
		}
	}
	if got := th.Load64(a); got != uint64(committed) {
		t.Fatalf("counter = %d after %d commits", got, committed)
	}
	if in.Fired(chaos.SpuriousAbort) == 0 {
		t.Fatal("p=0.5 never fired")
	}
	st := e.Stats()
	if st.AbortsByReason[ReasonInterrupt] != in.Fired(chaos.SpuriousAbort) {
		t.Fatalf("engine counted %d interrupt aborts, injector fired %d",
			st.AbortsByReason[ReasonInterrupt], in.Fired(chaos.SpuriousAbort))
	}
}

func TestChaosCapacityFaultIsPersistent(t *testing.T) {
	e, in := chaosEngine(t, platform.POWER8, 1, map[chaos.Class]float64{chaos.CapacityFault: 1})
	th := e.Thread(0)
	a := th.Alloc(64)
	ok, ab := th.TryTx(TxNormal, func() { _ = th.Load64(a) })
	if ok {
		t.Fatal("transaction committed through a certain capacity fault")
	}
	if !ab.Persistent || ab.Reason.Category() != CategoryCapacity {
		t.Fatalf("abort = %+v, want persistent capacity", ab)
	}
	if in.Fired(chaos.CapacityFault) == 0 {
		t.Fatal("capacity fault did not count")
	}
}

func TestChaosSTMContentionForcesRevalidation(t *testing.T) {
	e, in := chaosEngine(t, platform.IntelCore, 1, map[chaos.Class]float64{chaos.STMContention: 1})
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 5)
	before := e.stmSeq.Load()
	ok, _ := th.TrySTM(func() {
		if got := th.Load64(a); got != 5 {
			t.Errorf("STM read %d, want 5", got)
		}
		th.Store64(a, 6)
	})
	if !ok {
		t.Fatal("injected seqlock contention aborted the STM transaction (no values changed)")
	}
	if got := th.Load64(a); got != 6 {
		t.Fatalf("STM commit lost: Load64 = %d, want 6", got)
	}
	if in.Fired(chaos.STMContention) == 0 {
		t.Fatal("contention injection never fired")
	}
	after := e.stmSeq.Load()
	if after&1 != 0 || after <= before {
		t.Fatalf("sequence lock %d -> %d: want advanced and even", before, after)
	}
}

func TestChaosHardenedConstrainedImmune(t *testing.T) {
	// zEC12 constrained transactions are guaranteed to commit; the injector
	// must respect the arbiter's hardening rather than livelock it.
	e, _ := chaosEngine(t, platform.ZEC12, 1, map[chaos.Class]float64{
		chaos.SpuriousAbort: 1, chaos.CapacityFault: 1,
	})
	th := e.Thread(0)
	a := th.Alloc(64)
	th.RunConstrained(func() { th.Store64(a, 11) })
	if got := th.Load64(a); got != 11 {
		t.Fatalf("constrained tx lost under chaos: Load64 = %d, want 11", got)
	}
}

// TestChaosZeroRateCycleIdentical pins the zero-overhead discipline: an
// attached injector whose rates are all zero yields a run cycle-identical to
// one with no injector at all.
func TestChaosZeroRateCycleIdentical(t *testing.T) {
	run := func(in *chaos.Injector) (uint64, Stats) {
		cfg := Config{
			Threads: 4, SpaceSize: 1 << 20, Seed: 42, CostScale: 1,
			Virtual: true, Faults: in,
		}
		e := New(platform.New(platform.ZEC12), cfg)
		base := e.Thread(0).Alloc(64)
		for i := 0; i < 4; i++ {
			e.Thread(i).Register()
		}
		e.ResetClocks()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(th *Thread) {
				defer wg.Done()
				th.BeginWork()
				defer th.ExitWork()
				for n := 0; n < 200; n++ {
					for {
						ok, _ := th.TryTx(TxNormal, func() { th.Store64(base, th.Load64(base)+1) })
						if ok {
							break
						}
					}
				}
			}(e.Thread(i))
		}
		wg.Wait()
		return e.MaxClock(), e.Stats()
	}
	clockOff, statsOff := run(nil)
	clockZero, statsZero := run(chaos.New(chaos.Config{Seed: 1}))
	if clockOff != clockZero {
		t.Fatalf("zero-rate injector changed the clock: %d vs %d", clockOff, clockZero)
	}
	if statsOff != statsZero {
		t.Fatalf("zero-rate injector changed stats: %+v vs %+v", statsOff, statsZero)
	}
}
