package htm

import "sync"

// specIDPool models Blue Gene/Q's 128 speculation IDs (Section 2.1). Every
// transaction needs an ID at begin; committed/aborted IDs are not
// immediately reusable but go to a retired list and are reclaimed in batched
// passes. When the free list is empty, the next transaction to begin
// performs (and pays for) a reclamation pass while holding the pool lock —
// which is exactly the serialisation the paper measures as the ssca2
// bottleneck ("the start of a new transaction was often blocked until a
// speculation ID became available").
type specIDPool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	free        []int
	retired     []int
	reclaimCost int
	// availableAt is the virtual time at which the last reclamation pass
	// finished; acquirers stall until then (virtual mode), modelling "the
	// start of a new transaction was often blocked until a speculation ID
	// became available" (Section 5.1).
	availableAt uint64
}

func newSpecIDPool(n, reclaimCost int) *specIDPool {
	p := &specIDPool{
		free:        make([]int, 0, n),
		retired:     make([]int, 0, n),
		reclaimCost: reclaimCost,
	}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire assigns a speculation ID to t, blocking (or reclaiming) when the
// pool is exhausted. It reports whether the caller had to wait or reclaim.
func (p *specIDPool) acquire(t *Thread) (waited bool) {
	p.mu.Lock()
	for len(p.free) == 0 {
		waited = true
		if len(p.retired) > 0 {
			// Reclamation pass: retired IDs become reusable, at a cost
			// paid under the pool lock (hardware scrubs the L2 directory
			// of the retired IDs' marks).
			t.work(p.reclaimCost)
			if t.vclock > p.availableAt {
				p.availableAt = t.vclock
			}
			p.free = append(p.free, p.retired...)
			p.retired = p.retired[:0]
			p.cond.Broadcast()
			break
		}
		if t.eng.sched != nil {
			// Virtual mode must not block holding the baton; spin-wait.
			p.mu.Unlock()
			t.Pause(16)
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	// A transaction cannot begin before the reclamation that freed its ID
	// completed.
	if t.vclock < p.availableAt {
		t.vclock = p.availableAt
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	t.specID = id
	p.mu.Unlock()
	return waited
}

// release retires t's ID; it becomes allocatable again only after a
// reclamation pass.
func (p *specIDPool) release(id int) {
	p.mu.Lock()
	p.retired = append(p.retired, id)
	// Waiters can only proceed via a reclamation pass, performed by one of
	// them; wake one to attempt it.
	p.cond.Signal()
	p.mu.Unlock()
}
