package htm

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"

	"htmcmp/internal/chaos"
	"htmcmp/internal/mem"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/prng"
)

// TxKind selects the transaction flavour at begin.
type TxKind int

const (
	// TxNormal is an ordinary best-effort transaction.
	TxNormal TxKind = iota
	// TxRollbackOnly is POWER8's rollback-only transaction: stores are
	// buffered and rolled back, but loads are not tracked and detect no
	// conflicts (Section 2.4).
	TxRollbackOnly
	// TxConstrained is a zEC12 constrained transaction: at most 32
	// accesses touching at most 4 lines, but guaranteed to eventually
	// commit (Section 2.2). Run through Thread.RunConstrained.
	TxConstrained
)

// abortSignal is the panic payload that unwinds a transaction to its begin
// point, mirroring the hardware register rollback.
type abortSignal struct{}

// ErrConstrained reports a constrained-transaction constraint violation.
// Unlike an abort, this is a programming error (real hardware would raise a
// constraint interrupt), so it surfaces as a regular panic value.
type ErrConstrained struct{ Msg string }

func (e *ErrConstrained) Error() string { return "htm: constrained transaction: " + e.Msg }

// Thread is one hardware-thread context. All transactional and
// strongly-isolated non-transactional memory accesses of a goroutine go
// through its Thread. A Thread must not be shared by concurrent goroutines.
type Thread struct {
	eng  *Engine
	slot int
	core int
	rng  *prng.Rand

	status     atomic.Int32
	doomReason atomic.Int32

	// Virtual-time scheduling state. virtual caches eng.sched != nil: under
	// the virtual scheduler exactly one thread runs at a time (the baton
	// holder), which is also the single-runner invariant that lets every
	// line-table access skip its shard lock (see lockLine). yieldBudget
	// counts accesses down to the next voluntary yield so the per-access
	// check is one decrement and one branch.
	vclock      uint64
	gate        chan struct{}
	entered     bool
	virtual     bool
	yieldBudget int
	quantum     int

	inTx        bool
	stm         stmState // NOrec software-transaction context (stm.go)
	kind        TxKind
	hardened    bool // constrained tx under the arbiter: immune to dooming
	suspendCnt  int  // POWER8 suspend/resume depth
	accessCount int  // constrained-tx instruction budget

	// rs maps line -> counted; counted=false means the line entered the
	// read set via the hardware prefetcher (conflict-detectable but not
	// charged against capacity). ws maps line -> buffered line copy. Both
	// are open-addressed epoch-reset tables (accessset.go); iteration goes
	// through readOrder/writeOrder, never the tables.
	rs           accessTab[uint32, bool]
	ws           accessTab[uint32, []byte]
	readOrder    []uint32
	writeOrder   []uint32
	readsCounted int
	waysets      wayCounter
	bufPool      [][]byte
	specID       int
	pendingAbort Abort
	allocs       []mem.Addr
	frees        []mem.Addr
	scratch      [8]byte // snapshot buffer for locked shared reads
	stats        Stats
	// abortCount mirrors stats.Aborts behind an atomic so Engine.Aborts can
	// be polled while threads are running (Stats itself is quiescent-only).
	abortCount atomic.Uint64

	// Event-tracing state (internal/obs). trace is this slot's ring, nil
	// when tracing is off — the only thing the disabled path ever checks.
	// Events are recorded at transaction boundaries exclusively; none of
	// this is touched on the per-access path. beginClock/retryDepth are
	// owner-only. doomLine/doomBy are the abort-attribution tags an aborter
	// writes (doomTagged) before dooming this thread; atomics because in
	// real-concurrency mode the aborter races the victim's begin reset.
	// pendingLine/pendingBy ride alongside pendingAbort from the abort site
	// to rollback's event record.
	trace      *obs.Ring
	beginClock uint64
	retryDepth uint16
	// metrics caches cfg.Metrics: nil means live telemetry is off and each
	// boundary pays one nil check, exactly like trace.
	metrics *obs.EngineMetrics
	// faults caches this thread's chaos roll stream (cfg.Faults): nil means
	// fault injection is off and every hook is one nil check, exactly like
	// trace/metrics/wit. The stream is derived per slot, so injection under
	// the virtual-time scheduler is deterministic.
	faults *chaos.Stream

	// Witness-log state (witness.go). wit caches cfg.Witness: nil means
	// recording is off and every hook is one nil check. witSeen dedupes
	// first-reads per transaction (rs cannot serve: its counted flag is
	// capacity bookkeeping — prefetches and read→write demotions would be
	// missed); witReads/witWrites accumulate the current transaction's
	// record. All owner-only.
	wit         *Witness
	witSeen     accessTab[uint32, bool]
	witReads    []WitnessRead
	witWrites   []WitnessWrite
	doomLine    atomic.Uint32
	doomBy      atomic.Int32
	pendingLine uint32
	pendingBy   int16

	// hybridSeq is the sequence-lock value held across a hybrid writer
	// commit's publication (hybrid.go).
	hybridSeq uint64

	loadCostPerOp  int
	storeCostPerOp int
	beginCost      int
	commitCost     int
	abortCost      int
	prefetchProb   float64
	cacheFetchProb float64

	// Hot-path caches of engine-invariant state: the line-index shift and
	// size, the flat line-ownership table, and the raw arena bytes. They
	// turn every per-access lookup into one pointer chase instead of two
	// (t.lines[i] vs going through t.eng) and stay valid for the engine's
	// lifetime — mem.Space.Reset never reallocates the backing array, and
	// Engine.Release nils them out along with the engine's own references.
	lineShift uint
	lineSize  uint64
	lines     []lineRec
	data      []byte
}

func newThread(e *Engine, slot int) *Thread {
	t := &Thread{
		eng:     e,
		slot:    slot,
		core:    e.plat.CoreOf(slot),
		rng:     e.rngFor(slot),
		gate:    make(chan struct{}, 1),
		virtual: e.sched != nil,
		specID:  -1,

		lineShift: e.lineShift,
		lineSize:  uint64(e.lineSize),
		lines:     e.lines,
		data:      e.space.Data(),
	}
	if e.cfg.Tracer != nil {
		t.trace = e.cfg.Tracer.Ring(slot)
	}
	t.metrics = e.cfg.Metrics
	if e.cfg.Faults != nil {
		t.faults = e.cfg.Faults.Stream(slot)
	}
	if e.cfg.Witness != nil {
		t.wit = e.cfg.Witness
		t.witSeen.init()
	}
	t.rs.init()
	t.ws.init()
	t.stm.writes.init()
	if e.plat.StoreSets > 0 {
		t.waysets.init(e.plat.StoreSets)
	}
	if t.virtual {
		t.quantum = e.sched.quantum
		t.yieldBudget = t.quantum
	}
	c := e.plat.Costs
	t.beginCost = e.scaledCost(c.Begin)
	t.commitCost = e.scaledCost(c.Commit)
	t.abortCost = e.scaledCost(c.Abort)
	t.loadCostPerOp = e.scaledCost(c.TxLoad)
	t.storeCostPerOp = e.scaledCost(c.TxStore)
	if e.plat.Kind == platform.BlueGeneQ && e.cfg.Mode == platform.LongRunning {
		t.beginCost = e.scaledCost(e.plat.BeginLong)
		t.loadCostPerOp = 0 // L1 serves transactional loads in long mode
	}
	if !e.cfg.DisablePrefetch {
		t.prefetchProb = e.plat.PrefetchProb
	}
	if !e.cfg.DisableCacheFetchAborts {
		t.cacheFetchProb = e.plat.CacheFetchAbortProb
	}
	return t
}

// Engine returns the owning engine.
func (t *Thread) Engine() *Engine { return t.eng }

// Slot returns this thread's hardware-thread index.
func (t *Thread) Slot() int { return t.slot }

// Core returns the physical core this thread runs on.
func (t *Thread) Core() int { return t.core }

// Rand returns the thread's deterministic PRNG (for workload use).
func (t *Thread) Rand() *prng.Rand { return t.rng }

// InTx reports whether a transaction is active on this thread.
func (t *Thread) InTx() bool { return t.inTx }

// Stats returns a copy of this thread's counters.
func (t *Thread) Stats() Stats { return t.stats }

// Clock returns the thread's virtual clock in cost units (meaningful in
// virtual mode).
func (t *Thread) Clock() uint64 { return t.vclock }

// FootprintLines reports the current transaction's footprint in distinct
// conflict-detection lines (reads excluding prefetches, writes). Outside a
// transaction both are zero. Intended for analysis tooling.
func (t *Thread) FootprintLines() (readLines, writeLines int) {
	return t.readsCounted, t.ws.size()
}

// ---------------------------------------------------------------------------
// Virtual-time participation

// Register announces that this thread will join the scheduled region. It
// must be called from the spawning goroutine for every worker *before* any
// of them starts, so the scheduler's membership is complete from the first
// instruction. A no-op in real-concurrency mode.
func (t *Thread) Register() {
	if t.eng.sched != nil {
		t.eng.sched.register(t)
	}
}

// BeginWork is a worker goroutine's first call: it waits for the baton in
// virtual mode. A no-op in real-concurrency mode.
func (t *Thread) BeginWork() {
	if t.eng.sched != nil {
		t.eng.sched.begin(t)
	}
	t.entered = true
}

// ExitWork leaves the scheduled region, handing the baton on.
func (t *Thread) ExitWork() {
	t.entered = false
	if t.eng.sched != nil {
		t.eng.sched.exit(t)
	}
}

// work charges n cost units of virtual time (or burns real CPU in
// real-concurrency mode) without a yield point.
func (t *Thread) work(n int) {
	if t.virtual {
		if n > 0 {
			t.vclock += uint64(n)
		}
		return
	}
	spin(n)
}

// maybeYield is a voluntary scheduling point (no Go locks may be held). The
// between-yield cost is one decrement and one branch; the scheduler is only
// consulted when the budget runs out.
func (t *Thread) maybeYield() {
	if !t.virtual || !t.entered {
		return
	}
	t.yieldBudget--
	if t.yieldBudget <= 0 {
		t.yieldBudget = t.quantum
		t.eng.sched.yield(t)
	}
}

// baseAccessCost is the cost of one memory access in cycles (an L1 hit).
const baseAccessCost = 4

// roAccessCost is the cost of a read-only cached access (LoadRO*): hot
// shared lines that hardware serves without coherence traffic.
const roAccessCost = 2

// tickOp charges one memory access (base cost plus extra) and counts it
// toward the yield quantum.
func (t *Thread) tickOp(extra int) {
	t.work(baseAccessCost + extra)
	t.maybeYield()
}

// tickRO charges a read-only cached access.
func (t *Thread) tickRO() {
	t.work(roAccessCost)
	t.maybeYield()
}

// Work charges n cost units of workload computation (the benchmark's
// non-memory arithmetic) and allows a reschedule. Benchmarks use it so the
// compute between memory accesses occupies virtual time.
func (t *Thread) Work(n int) {
	t.work(n)
	t.maybeYield()
}

// Pause charges n cost units and always offers the processor to another
// thread — the spin-wait primitive for lock waits and TLS ordering waits.
func (t *Thread) Pause(n int) {
	t.work(n)
	if t.virtual {
		if t.entered {
			t.yieldBudget = t.quantum
			t.eng.sched.yield(t)
		}
		return
	}
	runtime.Gosched()
}

// ---------------------------------------------------------------------------
// Transaction lifecycle

// TryTx runs fn as one transaction attempt of the given kind. It returns
// (true, zero Abort) on commit, or (false, abort info) if the transaction
// aborted — in which case all its stores have been rolled back, exactly like
// a hardware abort returning to the instruction after tbegin. Retry policy
// is the caller's job (internal/tm implements the paper's Figure 1).
func (t *Thread) TryTx(kind TxKind, fn func()) (committed bool, abort Abort) {
	if t.inTx {
		panic("htm: nested transaction begin (STAMP uses flat transactions)")
	}
	t.begin(kind)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				// A real panic (workload bug): roll back bookkeeping so
				// the engine stays consistent, then re-panic.
				t.rollback()
				panic(r)
			}
			t.rollback()
			committed, abort = false, t.pendingAbort
		}
	}()
	fn()
	t.commit()
	return true, Abort{}
}

// RunConstrained runs fn as a zEC12 constrained transaction, retrying until
// it commits — the hardware guarantee of Section 2.2. fn must respect the
// constraints (≤32 accesses, ≤4 lines) or the call panics with
// *ErrConstrained. It returns the number of aborts endured before success.
func (t *Thread) RunConstrained(fn func()) int {
	if !t.eng.plat.HasConstrainedTx {
		panic("htm: constrained transactions are a zEC12 feature")
	}
	aborts := 0
	for attempt := 0; ; attempt++ {
		if attempt == 4 {
			// Hardware escalates progressively (disabling superscalar
			// execution, fetching lines exclusively, finally quiescing
			// other CPUs). We model the endpoint: one arbitrated,
			// doom-immune attempt at a time.
			t.eng.lockArbiter(t)
			t.hardened = true
		}
		ok, _ := t.TryTx(TxConstrained, fn)
		if t.hardened {
			t.hardened = false
			t.eng.unlockArbiter()
		}
		if ok {
			return aborts
		}
		aborts++
		t.Pause(1 << uint(min(attempt, 10))) // exponential backoff
	}
}

func (t *Thread) begin(kind TxKind) {
	if t.eng.specPool != nil {
		waited := t.eng.specPool.acquire(t)
		if waited {
			t.stats.SpecIDWaits++
		}
	}
	t.inTx = true
	t.kind = kind
	t.accessCount = 0
	t.pendingAbort = Abort{}
	t.doomReason.Store(int32(ReasonNone))
	if t.trace != nil {
		// Clear stale attribution tags before becoming doomable, record the
		// begin, and remember the clock for the commit/abort Dur. Recording
		// charges no virtual time: tracing must not perturb the simulation.
		t.doomLine.Store(obs.NoLine)
		t.doomBy.Store(-1)
		t.beginClock = t.vclock
		t.trace.Record(obs.Event{
			Kind: obs.KindBegin, Thread: uint8(t.slot), Retry: t.retryDepth,
			Aborter: obs.NoThread, Line: obs.NoLine, VClock: t.vclock,
		})
	}
	if t.metrics != nil {
		t.metrics.Begins.Inc(t.slot)
	}
	t.status.Store(statusActive)
	t.eng.cores[t.core].activeTx.Add(1)
	t.eng.activeTx.Add(1)
	t.stats.Begins++
	t.work(t.beginCost)
}

// commit publishes buffered stores and releases ownership. A committing
// transaction is immune to dooming: conflicting requesters abort instead.
func (t *Thread) commit() {
	// Injected interrupt: the transaction dies at the commit boundary the
	// way BG/Q and zEC12 transactions die when an external interrupt lands.
	// Raised before the commit sequence number is drawn and before the
	// transaction turns visibly committing, so the ordinary transient-abort
	// path (rollback, retry) handles it. Hardened (constrained) transactions
	// are immune, as on real zEC12.
	if t.faults != nil && !t.hardened && t.faults.Roll(chaos.SpuriousAbort) {
		t.abortNow(ReasonInterrupt, false)
	}
	// The commit sequence number is taken before the transaction becomes
	// visibly committing: any access that observes the committing status
	// (and therefore orders itself after this commit) is guaranteed to draw
	// a later number. A doomed transaction wastes its number — Replay
	// tolerates gaps.
	var witSeq uint64
	if t.wit != nil {
		witSeq = t.wit.seq.Add(1)
	}
	// Hybrid-NOrec writer fence (hybrid.go): acquire the STM sequence lock
	// around publication so software transactions revalidate against it.
	// Acquired while still doomable — an STM writer holding the lock aborts
	// this transaction through the gate instead of letting it spin into a
	// commit of stale reads.
	fenced := t.eng.hybrid.Load() && len(t.writeOrder) > 0
	if fenced {
		t.hybridSeqAcquire()
	}
	if !t.status.CompareAndSwap(statusActive, statusCommitting) {
		// Doomed between the last access and commit.
		if fenced {
			t.hybridSeqRelease()
		}
		t.abortDoomed(Reason(t.doomReason.Load()))
	}
	// Publish written lines one at a time under their shard locks (elided
	// in virtual mode: only the baton holder touches the line table). Eager
	// dooming guarantees no live transaction still holds any of these
	// lines, and new requesters see us as a committing writer and abort
	// themselves, so per-line publication is globally safe.
	data := t.data
	for _, line := range t.writeOrder {
		buf, _ := t.ws.get(line)
		sh := t.lockLine(line)
		base := uint64(line) << t.lineShift
		end := base + t.lineSize
		if end > uint64(len(data)) {
			end = uint64(len(data))
		}
		copy(data[base:end], buf)
		rec := &t.lines[line]
		rec.writer = -1
		rec.clearReader(t.slot)
		if t.wit != nil {
			// Version bump under the shard lock so concurrent first-reads
			// sample (Ver, Sum) consistently with this publication.
			atomic.AddUint64(&t.wit.ver[line], 1)
		}
		unlockLine(sh)
		if t.wit != nil {
			t.witWrites = append(t.witWrites, WitnessWrite{
				Addr: base, Line: line,
				Data: append([]byte(nil), buf[:end-base]...),
			})
		}
		// The buffer's contents are published; recycle it.
		t.bufPool = append(t.bufPool, buf)
	}
	if fenced {
		t.hybridSeqRelease()
	}
	for _, line := range t.readOrder {
		if t.ws.has(line) {
			continue // released above
		}
		sh := t.lockLine(line)
		t.lines[line].clearReader(t.slot)
		unlockLine(sh)
	}
	if s := t.eng.cfg.FootprintSampler; s != nil {
		s(t.readsCounted, t.ws.size())
	}
	if t.trace != nil {
		// Before finishTx resets the access sets: footprints are still live.
		t.trace.Record(obs.Event{
			Kind: obs.KindCommit, Thread: uint8(t.slot), Retry: t.retryDepth,
			Aborter: obs.NoThread, Line: obs.NoLine,
			ReadLines: uint32(t.readsCounted), WriteLines: uint32(t.ws.size()),
			VClock: t.vclock, Dur: t.vclock - t.beginClock,
		})
		t.retryDepth = 0
	}
	if t.wit != nil {
		t.witnessCommitRecord(witSeq)
	}
	if t.metrics != nil {
		t.metrics.Commits.Inc(t.slot)
	}
	t.finishTx()
	t.stats.Commits++
	// Deferred frees become visible only now that the transaction is
	// durable (STAMP's TM_FREE semantics).
	for _, a := range t.frees {
		t.eng.space.FreeArena(a, t.slot)
	}
	t.frees = t.frees[:0]
	t.allocs = t.allocs[:0]
	t.status.Store(statusIdle)
	t.work(t.commitCost)
}

// rollback discards buffered state after an abort.
func (t *Thread) rollback() {
	if t.trace != nil {
		t.trace.Record(obs.Event{
			Kind: obs.KindAbort, Thread: uint8(t.slot),
			Reason: uint8(t.pendingAbort.Reason), Retry: t.retryDepth,
			Aborter: t.pendingBy, Line: t.pendingLine,
			ReadLines: uint32(t.readsCounted), WriteLines: uint32(t.ws.size()),
			VClock: t.vclock, Dur: t.vclock - t.beginClock,
		})
		if t.retryDepth < ^uint16(0) {
			t.retryDepth++
		}
	}
	if t.metrics != nil {
		t.metrics.Abort(t.slot, uint8(t.pendingAbort.Reason))
	}
	for _, line := range t.writeOrder {
		buf, _ := t.ws.get(line)
		sh := t.lockLine(line)
		rec := &t.lines[line]
		if rec.writer == int32(t.slot) {
			rec.writer = -1
		}
		rec.clearReader(t.slot)
		unlockLine(sh)
		t.bufPool = append(t.bufPool, buf)
	}
	for _, line := range t.readOrder {
		if t.ws.has(line) {
			continue
		}
		sh := t.lockLine(line)
		t.lines[line].clearReader(t.slot)
		unlockLine(sh)
	}
	t.finishTx()
	t.stats.Aborts++
	t.abortCount.Add(1)
	t.stats.AbortsByReason[t.pendingAbort.Reason]++
	// Transactionally allocated blocks never became visible; reclaim them.
	for _, a := range t.allocs {
		t.eng.space.FreeArena(a, t.slot)
	}
	t.allocs = t.allocs[:0]
	t.frees = t.frees[:0]
	t.status.Store(statusIdle)
	t.work(t.abortCost)
}

// finishTx clears the per-transaction tracking state common to commit and
// rollback and releases SMT/spec-ID resources.
func (t *Thread) finishTx() {
	if n := t.rs.size(); n > t.stats.MaxReadLines {
		t.stats.MaxReadLines = n
	}
	if n := t.ws.size(); n > t.stats.MaxWriteLines {
		t.stats.MaxWriteLines = n
	}
	if t.wit != nil {
		t.witSeen.reset()
		t.witReads = t.witReads[:0]
		t.witWrites = nil // non-nil only if an abort interrupted publication (impossible)
	}
	t.rs.reset()
	t.ws.reset()
	t.waysets.reset()
	t.readOrder = t.readOrder[:0]
	t.writeOrder = t.writeOrder[:0]
	t.readsCounted = 0
	t.suspendCnt = 0
	t.inTx = false
	t.eng.cores[t.core].activeTx.Add(-1)
	t.eng.activeTx.Add(-1)
	if t.eng.specPool != nil && t.specID >= 0 {
		t.eng.specPool.release(t.specID)
		t.specID = -1
	}
}

// TraceEvent records a runtime-level event (the adaptive runtime's mode
// switches) into this thread's trace ring, filling in the Thread and VClock
// fields. Recording charges no virtual time; a no-op when tracing is off.
func (t *Thread) TraceEvent(ev obs.Event) {
	if t.metrics != nil && ev.Kind == obs.KindModeSwitch {
		// Mode-switch events double as the live mode-switch counter feed
		// (ev.Reason carries the to-mode code, as in jsonl.go's wire schema).
		t.metrics.ModeSwitch(t.slot, ev.Reason)
	}
	if t.trace == nil {
		return
	}
	ev.Thread = uint8(t.slot)
	ev.VClock = t.vclock
	t.trace.Record(ev)
}

// abortNow records the abort and unwinds to the begin point.
func (t *Thread) abortNow(reason Reason, persistent bool) {
	t.abortAt(reason, persistent, obs.NoLine, obs.NoThread)
}

// abortAt is abortNow carrying the conflicting line and the dooming thread
// for abort attribution (obs.NoLine / obs.NoThread when inapplicable).
func (t *Thread) abortAt(reason Reason, persistent bool, line uint32, by int16) {
	t.pendingAbort = Abort{Reason: reason, Persistent: persistent}
	t.pendingLine, t.pendingBy = line, by
	panic(abortSignal{})
}

// abortDoomed takes the abort for a transaction another thread doomed,
// picking up the attribution tags that thread left via doomTagged.
func (t *Thread) abortDoomed(reason Reason) {
	if t.trace != nil {
		t.abortAt(reason, false, t.doomLine.Load(), int16(t.doomBy.Load()))
	}
	t.abortNow(reason, false)
}

// Abort explicitly aborts the current transaction — the tabort instruction
// for hardware transactions, a programmatic restart for software ones.
func (t *Thread) Abort() {
	if !t.inTx && !t.stm.active {
		panic("htm: Abort outside a transaction")
	}
	t.abortNow(ReasonExplicit, false)
}

// checkDoomed aborts if another thread has doomed this transaction. It is
// the first step of every transactional operation so that a doomed
// transaction cannot act on inconsistent data.
func (t *Thread) checkDoomed() {
	if t.status.Load() == statusDoomed {
		r := Reason(t.doomReason.Load())
		if r == ReasonNone {
			r = ReasonConflict
		}
		t.abortDoomed(r)
	}
}

// doomAt is doomTagged with the conflicting line reported to the sampler.
func (t *Thread) doomAt(line uint32, victim int32, reason Reason) bool {
	if s := t.eng.cfg.ConflictSampler; s != nil {
		s(line, int(victim))
	}
	return t.doomTagged(line, victim, reason)
}

// doomTagged is doom with the conflicting line and this (aborting) thread
// recorded on the victim for abort attribution. The tags are written before
// the doom so the victim cannot observe the doomed status without them; a
// tag left on a victim that turned out to be immune is overwritten or
// cleared at its next begin.
func (t *Thread) doomTagged(line uint32, victim int32, reason Reason) bool {
	if t.eng.traced {
		v := t.eng.threads[victim]
		v.doomLine.Store(line)
		v.doomBy.Store(int32(t.slot))
	}
	return t.doom(victim, reason)
}

// doom attempts to abort the transaction on thread victim with the given
// reason, as a coherence invalidation would. It fails (returns false) when
// the victim is already committing (immune) or the victim is hardened.
// Called with the relevant shard lock held.
func (t *Thread) doom(victim int32, reason Reason) bool {
	v := t.eng.threads[victim]
	if v.hardened {
		return false
	}
	v.doomReason.Store(int32(reason))
	return v.status.CompareAndSwap(statusActive, statusDoomed) ||
		v.status.Load() == statusDoomed
}

// Suspend suspends transactional execution (POWER8's tsuspend, Section 2.4):
// until Resume, memory accesses on this thread are non-transactional and are
// neither tracked nor buffered. Suspend nests.
func (t *Thread) Suspend() {
	if !t.eng.plat.HasSuspendResume {
		panic("htm: suspend/resume is a POWER8 feature")
	}
	if !t.inTx {
		panic("htm: Suspend outside a transaction")
	}
	t.suspendCnt++
}

// Resume resumes transactional execution. If the transaction was doomed
// while suspended, the abort is taken here (as hardware does at tresume).
func (t *Thread) Resume() {
	if t.suspendCnt == 0 {
		panic("htm: Resume without Suspend")
	}
	t.suspendCnt--
	if t.suspendCnt == 0 {
		t.checkDoomed()
	}
}

// Suspended reports whether the thread is in the suspended state.
func (t *Thread) Suspended() bool { return t.inTx && t.suspendCnt > 0 }

// ---------------------------------------------------------------------------
// Line registration and conflict resolution

// lockLine acquires the shard lock guarding line in real-concurrency mode
// and returns it for unlockLine. In virtual mode it returns nil without
// locking: the baton holder is the only runner, every scheduling point
// (maybeYield/Pause) sits outside the line-table critical sections, and so
// the single-runner invariant makes the table race-free by construction.
// Real-concurrency mode keeps the sharded locks and runs under -race in CI.
func (t *Thread) lockLine(line uint32) *padMutex {
	if t.virtual {
		return nil
	}
	sh := t.eng.shardOf(line)
	sh.Lock()
	return sh
}

// unlockLine releases a lock returned by lockLine (nil in virtual mode).
func unlockLine(sh *padMutex) {
	if sh != nil {
		sh.Unlock()
	}
}

// resolveAsReader registers the line for reading, resolving conflicts with a
// current writer. Requester-wins: the writer is doomed; if it is committing
// (immune) the requester aborts instead.
func (t *Thread) resolveAsReader(line uint32, counted bool) {
	sh := t.lockLine(line)
	rec := &t.lines[line]
	if w := rec.writer; w >= 0 && w != int32(t.slot) {
		if t.eng.cfg.ResponderWins && !t.hardened {
			unlockLine(sh)
			t.abortAt(ReasonConflict, false, line, int16(w))
		}
		if !t.doomAt(line, w, ReasonConflict) {
			unlockLine(sh)
			t.abortAt(ReasonCommitterConflict, false, line, int16(w))
		}
		rec.writer = -1
	}
	rec.setReader(t.slot)
	unlockLine(sh)
	t.rs.put(line, counted)
	t.readOrder = append(t.readOrder, line)
	if counted {
		t.readsCounted++
	}
}

// resolveAsWriter registers the line for writing, dooming conflicting
// readers and any conflicting writer, and returns with the line buffered in
// buf (copied under the shard lock so the snapshot is untorn).
func (t *Thread) resolveAsWriter(line uint32, buf []byte) {
	sh := t.lockLine(line)
	rec := &t.lines[line]
	if w := rec.writer; w >= 0 && w != int32(t.slot) {
		if t.eng.cfg.ResponderWins && !t.hardened {
			unlockLine(sh)
			t.abortAt(ReasonConflict, false, line, int16(w))
		}
		if !t.doomAt(line, w, ReasonConflict) {
			unlockLine(sh)
			t.abortAt(ReasonCommitterConflict, false, line, int16(w))
		}
		rec.writer = -1
	}
	for w, word := range rec.readers {
		for word != 0 {
			bit := word & (-word)
			word &^= bit
			slot := int32(w)*64 + trailingZeros(bit)
			if slot == int32(t.slot) {
				continue
			}
			if t.eng.cfg.ResponderWins && !t.hardened {
				unlockLine(sh)
				t.abortAt(ReasonConflict, false, line, int16(slot))
			}
			if !t.doomAt(line, slot, ReasonConflict) {
				unlockLine(sh)
				t.abortAt(ReasonCommitterConflict, false, line, int16(slot))
			}
			rec.readers[w] &^= bit
		}
	}
	rec.writer = int32(t.slot)
	base := uint64(line) << t.lineShift
	data := t.data
	end := base + t.lineSize
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	copy(buf, data[base:end])
	unlockLine(sh)
}

func trailingZeros(x uint64) int32 { return int32(bits.TrailingZeros64(x)) }

// ---------------------------------------------------------------------------
// Capacity accounting

func (t *Thread) capacityCheckLoad() {
	if t.eng.cfg.UnboundedCapacity {
		return
	}
	// Injected capacity overflow: the footprint fits, but the effective
	// budget did not (an SMT neighbour's transaction, a way conflict the
	// model's set mapping missed). Persistent, like real capacity aborts, so
	// the runtime's irrevocable fallback — not blind retry — must recover it.
	if t.faults != nil && !t.hardened && t.faults.Roll(chaos.CapacityFault) {
		t.abortNow(ReasonCapacityLoad, true)
	}
	div := t.eng.smtDivisor(t.core)
	cap := t.eng.loadCapLines / div
	if cap < 1 {
		cap = 1
	}
	var occupied int
	if t.eng.plat.CombinedCapacity {
		occupied = t.readsCounted + t.ws.size()
	} else {
		occupied = t.readsCounted
	}
	if occupied+1 > cap {
		reason := ReasonCapacityLoad
		if div > 1 && occupied+1 <= t.eng.loadCapLines {
			reason = ReasonCapacitySMT
		}
		t.abortNow(reason, true)
	}
}

func (t *Thread) capacityCheckStore(line uint32) {
	if t.eng.cfg.UnboundedCapacity {
		return
	}
	if t.faults != nil && !t.hardened && t.faults.Roll(chaos.CapacityFault) {
		t.abortNow(ReasonCapacityStore, true)
	}
	div := t.eng.smtDivisor(t.core)
	cap := t.eng.storeCapLines / div
	if cap < 1 {
		cap = 1
	}
	var occupied int
	if t.eng.plat.CombinedCapacity {
		occupied = t.readsCounted + t.ws.size()
		if counted, wasRead := t.rs.get(line); wasRead && counted {
			// A read line becoming written reuses its tracking entry
			// (the TMCAM/L2 entry just gains the write bit).
			occupied--
		}
	} else {
		occupied = t.ws.size()
	}
	if occupied+1 > cap {
		reason := ReasonCapacityStore
		if div > 1 && occupied+1 <= t.eng.storeCapLines {
			reason = ReasonCapacitySMT
		}
		t.abortNow(reason, true)
	}
	// Set-associativity overflow for L1-resident store buffers (Intel).
	if sets := t.eng.plat.StoreSets; sets > 0 {
		set := line % uint32(sets)
		ways := t.eng.plat.StoreWays / div
		if ways < 1 {
			ways = 1
		}
		if t.waysets.get(set)+1 > ways {
			t.abortNow(ReasonCapacityWay, true)
		}
		t.waysets.incr(set)
	}
}

// ---------------------------------------------------------------------------
// Access paths

func (t *Thread) lineOf(a mem.Addr) uint32 { return uint32(a >> t.lineShift) }

// maybePrefetch models Intel's hardware prefetcher pulling the adjacent line
// into the transactional read set (Section 5.1): the prefetched line becomes
// conflict-detectable — dooming a concurrent writer of that line exactly as
// the paper observed in kmeans — but is not charged against capacity, and a
// prefetch that cannot be satisfied (committing owner) is silently dropped
// rather than aborting the requester.
func (t *Thread) maybePrefetch(line uint32) {
	if t.prefetchProb == 0 {
		return
	}
	if !t.rng.Bernoulli(t.prefetchProb) {
		return
	}
	// The streamer runs several lines ahead of the access stream.
	const prefetchDepth = 3
	for d := uint32(1); d <= prefetchDepth; d++ {
		next := line + d
		if int(next) >= len(t.lines) {
			return
		}
		if t.rs.has(next) || t.ws.has(next) {
			continue
		}
		sh := t.lockLine(next)
		rec := &t.lines[next]
		if rec.writer >= 0 && rec.writer != int32(t.slot) {
			if !t.doomTagged(next, rec.writer, ReasonConflict) {
				unlockLine(sh)
				return // drop the prefetch; the owner is committing
			}
			rec.writer = -1
		}
		rec.setReader(t.slot)
		unlockLine(sh)
		t.rs.put(next, false)
		t.readOrder = append(t.readOrder, next)
	}
}

// maybeCacheFetchAbort injects zEC12's spurious transient aborts.
func (t *Thread) maybeCacheFetchAbort() {
	if t.cacheFetchProb != 0 && t.rng.Bernoulli(t.cacheFetchProb) {
		t.abortNow(ReasonCacheFetch, false)
	}
}

func (t *Thread) constrainedCheck(line uint32) {
	if t.kind != TxConstrained {
		return
	}
	t.accessCount++
	if t.accessCount > 32 {
		panic(&ErrConstrained{Msg: "more than 32 accesses"})
	}
	if !t.rs.has(line) && !t.ws.has(line) && t.rs.size()+t.ws.size() >= 4 {
		panic(&ErrConstrained{Msg: "footprint exceeds 4 lines / 256 bytes"})
	}
}

// txLoad performs a transactional load of n bytes at a, returning the slice
// to read from (the write buffer if the line is buffered, else the arena).
func (t *Thread) txLoad(a mem.Addr, n int) []byte {
	t.checkDoomed()
	t.boundsCheck(a, n)
	line := t.lineOf(a)
	t.constrainedCheck(line)
	t.maybeCacheFetchAbort()
	t.stats.TxLoads++
	t.tickOp(t.loadCostPerOp)
	if buf, ok := t.ws.get(line); ok {
		off := a & (t.lineSize - 1)
		return buf[off : off+uint64(n)]
	}
	if counted, ok := t.rs.get(line); ok {
		if !counted && t.kind != TxRollbackOnly {
			// Promote a prefetched line to a real read: charge capacity.
			t.capacityCheckLoad()
			t.rs.put(line, true)
			t.readsCounted++
		}
	} else if t.kind != TxRollbackOnly {
		t.capacityCheckLoad()
		t.resolveAsReader(line, true)
		t.maybePrefetch(line)
	}
	if t.wit != nil && t.kind != TxRollbackOnly {
		// Rollback-only loads are untracked (no conflict detection), so
		// their reads carry no consistency guarantee to witness.
		t.witnessRead(line)
	}
	return t.readShared(a, n, line)
}

// readShared returns the bytes at [a, a+n) of committed memory for a
// transactional load. In virtual mode only one thread runs at a time, so the
// slice may alias the arena directly. In real-concurrency mode the bytes are
// snapshotted under the line's shard lock: a doomed-but-not-yet-aware reader
// may otherwise tear against a committing writer publishing this line (the
// doomed transaction will abort at its next operation, but Go — unlike the
// hardware this models — does not tolerate the racy read itself).
func (t *Thread) readShared(a mem.Addr, n int, line uint32) []byte {
	data := t.data
	if t.virtual {
		return data[a : a+uint64(n)]
	}
	out := t.scratch[:]
	if n > len(out) {
		out = make([]byte, n)
	}
	sh := t.eng.shardOf(line)
	sh.Lock()
	copy(out[:n], data[a:a+uint64(n)])
	sh.Unlock()
	return out[:n]
}

// txStore performs a transactional store, returning the buffered slice to
// write into.
func (t *Thread) txStore(a mem.Addr, n int) []byte {
	t.checkDoomed()
	t.boundsCheck(a, n)
	line := t.lineOf(a)
	t.constrainedCheck(line)
	t.maybeCacheFetchAbort()
	t.stats.TxStores++
	t.tickOp(t.storeCostPerOp)
	buf, ok := t.ws.get(line)
	if !ok {
		t.capacityCheckStore(line)
		buf = t.getLineBuf()
		t.resolveAsWriter(line, buf)
		t.ws.put(line, buf)
		t.writeOrder = append(t.writeOrder, line)
		if counted, wasRead := t.rs.get(line); wasRead && counted {
			// The line's tracking entry transitions from read to
			// read+write; on combined-capacity platforms it must not be
			// charged twice.
			t.rs.put(line, false)
			t.readsCounted--
		}
		t.maybePrefetch(line)
	}
	if mutateWriteThrough {
		// Seeded write-set-isolation bug (build tag mutate_isolation, see
		// mutate_off.go): hand back the shared arena instead of the private
		// buffer, leaking speculative stores to other threads and reverting
		// them at commit when the stale buffer is published.
		return t.data[a : a+uint64(n)]
	}
	off := a & (t.lineSize - 1)
	return buf[off : off+uint64(n)]
}

func (t *Thread) getLineBuf() []byte {
	if n := len(t.bufPool); n > 0 {
		b := t.bufPool[n-1]
		t.bufPool = t.bufPool[:n-1]
		return b
	}
	return make([]byte, t.lineSize)
}

func (t *Thread) boundsCheck(a mem.Addr, n int) {
	if a == mem.Nil {
		// A nil dereference inside a transaction is almost always the
		// result of reading torn/doomed state; treat it as a conflict
		// abort rather than crashing, as hardware would simply have
		// aborted before the dependent access.
		if (t.inTx && t.suspendCnt == 0) || t.stm.active {
			t.abortNow(ReasonConflict, false)
		}
		panic("htm: access through nil simulated pointer")
	}
	if a+uint64(n) > uint64(t.eng.space.Size()) {
		if (t.inTx && t.suspendCnt == 0) || t.stm.active {
			t.abortNow(ReasonConflict, false)
		}
		panic(fmt.Sprintf("htm: access [%#x,%#x) out of arena bounds", a, a+uint64(n)))
	}
}

// nonTxLoad is a strongly-isolated non-transactional load: it dooms a
// conflicting transactional writer (requester always wins for
// non-transactional accesses) and reads committed memory. A writer that is
// already committing is immune; since hardware commits atomically, the
// non-transactional access waits for the publication to finish rather than
// observing a partially published multi-line commit.
func (t *Thread) nonTxLoad(a mem.Addr, n int) []byte {
	t.tickOp(0)
	t.boundsCheck(a, n)
	data := t.data
	// The tx-free fast path is only safe in virtual mode: with real
	// concurrency a transaction can begin and commit between this check and
	// the caller decoding the returned bytes.
	if t.virtual && t.eng.activeTx.Load() == 0 {
		return data[a : a+uint64(n)]
	}
	line := t.lineOf(a)
	for {
		sh := t.lockLine(line)
		rec := &t.lines[line]
		if rec.writer >= 0 && rec.writer != int32(t.slot) {
			if !t.doomTagged(line, rec.writer, ReasonNonTxConflict) {
				unlockLine(sh)
				t.Pause(2) // owner is committing; wait it out
				continue
			}
			rec.writer = -1
		}
		if t.virtual {
			// Single runner: the arena cannot change under the caller
			// before it consumes the slice.
			return data[a : a+uint64(n)]
		}
		// All callers read ≤8 bytes and decode immediately, so the
		// snapshot reuses the thread-local scratch buffer instead of
		// allocating per call.
		out := t.scratch[:]
		if n > len(out) {
			out = make([]byte, n)
		}
		copy(out[:n], data[a:a+uint64(n)])
		unlockLine(sh)
		return out[:n]
	}
}

// nonTxStore is a strongly-isolated non-transactional store: it dooms all
// conflicting transactional owners of the line and writes memory directly.
func (t *Thread) nonTxStore(a mem.Addr, n int, src []byte) {
	t.tickOp(0)
	t.boundsCheck(a, n)
	data := t.data
	// Same virtual-only gate as nonTxLoad: a racing tx commit could
	// otherwise tear against this unsynchronised write.
	if t.virtual && t.eng.activeTx.Load() == 0 {
		copy(data[a:a+uint64(n)], src)
		if t.wit != nil {
			t.witnessNonTx(a, n)
		}
		return
	}
	line := t.lineOf(a)
	for {
		sh := t.lockLine(line)
		rec := &t.lines[line]
		if rec.writer >= 0 && rec.writer != int32(t.slot) {
			if !t.doomTagged(line, rec.writer, ReasonNonTxConflict) {
				unlockLine(sh)
				t.Pause(2) // owner is committing; wait it out
				continue
			}
			rec.writer = -1
		}
		for w, word := range rec.readers {
			for word != 0 {
				bit := word & (-word)
				word &^= bit
				slot := int32(w)*64 + trailingZeros(bit)
				if slot == int32(t.slot) {
					continue
				}
				if t.doomTagged(line, slot, ReasonNonTxConflict) {
					rec.readers[w] &^= bit
				}
			}
		}
		copy(data[a:a+uint64(n)], src)
		if t.wit != nil {
			// Under the shard lock: the sequence number must order after
			// any committing reader of this line that the doom loop above
			// could not abort (see witnessNonTx).
			t.witnessNonTx(a, n)
		}
		unlockLine(sh)
		return
	}
}

// transactional reports whether accesses should take the transactional path.
func (t *Thread) transactional() bool { return t.inTx && t.suspendCnt == 0 }

// ---------------------------------------------------------------------------
// Typed accessors (the workload-facing API)

// le64/putLE64/le32/putLE32 decode and encode little-endian words with
// direct byte arithmetic: the explicit re-slice gives the compiler a single
// bounds check and lets it collapse the combine into one load/store on
// little-endian hosts, without an encoding/binary call in the hot path.

func le64(b []byte) uint64 {
	b = b[:8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b = b[:8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func le32(b []byte) uint32 {
	b = b[:4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b = b[:4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Load64 reads the 8-byte word at a, transactionally when in a transaction
// (hardware or software).
func (t *Thread) Load64(a mem.Addr) uint64 {
	if t.stm.active {
		t.boundsCheck(a, 8)
		return t.stmLoadBytes(a, 8)
	}
	if t.transactional() {
		return le64(t.txLoad(a, 8))
	}
	return le64(t.nonTxLoad(a, 8))
}

// Store64 writes the 8-byte word v at a, transactionally when in a
// transaction (hardware or software).
func (t *Thread) Store64(a mem.Addr, v uint64) {
	if t.stm.active {
		t.boundsCheck(a, 8)
		t.stmStoreBytes(a, 8, v)
		return
	}
	if t.transactional() {
		putLE64(t.txStore(a, 8), v)
		return
	}
	var b [8]byte
	putLE64(b[:], v)
	t.nonTxStore(a, 8, b[:])
}

// Load32 reads the 4-byte word at a.
func (t *Thread) Load32(a mem.Addr) uint32 {
	if t.stm.active {
		t.boundsCheck(a, 4)
		return uint32(t.stmLoadBytes(a, 4))
	}
	if t.transactional() {
		return le32(t.txLoad(a, 4))
	}
	return le32(t.nonTxLoad(a, 4))
}

// Store32 writes the 4-byte word v at a.
func (t *Thread) Store32(a mem.Addr, v uint32) {
	if t.stm.active {
		t.boundsCheck(a, 4)
		t.stmStoreBytes(a, 4, uint64(v))
		return
	}
	if t.transactional() {
		putLE32(t.txStore(a, 4), v)
		return
	}
	var b [4]byte
	putLE32(b[:], v)
	t.nonTxStore(a, 4, b[:])
}

// Load8 reads the byte at a.
func (t *Thread) Load8(a mem.Addr) byte {
	if t.stm.active {
		t.boundsCheck(a, 1)
		return byte(t.stmLoadBytes(a, 1))
	}
	if t.transactional() {
		return t.txLoad(a, 1)[0]
	}
	return t.nonTxLoad(a, 1)[0]
}

// Store8 writes the byte v at a.
func (t *Thread) Store8(a mem.Addr, v byte) {
	if t.stm.active {
		t.boundsCheck(a, 1)
		t.stmStoreBytes(a, 1, uint64(v))
		return
	}
	if t.transactional() {
		t.txStore(a, 1)[0] = v
		return
	}
	t.nonTxStore(a, 1, []byte{v})
}

// LoadRO64 reads the word at a without any conflict tracking. It is only
// correct for data that is never written during concurrent phases (inputs
// written at setup time): on real hardware such lines sit in the shared
// cache state and cost no coherence traffic and no tracking resources, and
// several STAMP benchmarks (kmeans points, genome nucleotides, intruder
// payloads) rely on exactly that. Using it on mutable shared data breaks
// isolation.
func (t *Thread) LoadRO64(a mem.Addr) uint64 {
	t.tickRO()
	t.boundsCheck(a, 8)
	return le64(t.data[a:])
}

// LoadRO8 is LoadRO64 for a single byte.
func (t *Thread) LoadRO8(a mem.Addr) byte {
	t.tickRO()
	t.boundsCheck(a, 1)
	return t.data[a]
}

// LoadROFloat64 is LoadRO64 for a float64.
func (t *Thread) LoadROFloat64(a mem.Addr) float64 {
	return math.Float64frombits(t.LoadRO64(a))
}

// LoadInt64 reads the word at a as a signed integer.
func (t *Thread) LoadInt64(a mem.Addr) int64 { return int64(t.Load64(a)) }

// StoreInt64 writes the signed integer v at a.
func (t *Thread) StoreInt64(a mem.Addr, v int64) { t.Store64(a, uint64(v)) }

// LoadFloat64 reads the float64 at a.
func (t *Thread) LoadFloat64(a mem.Addr) float64 {
	return math.Float64frombits(t.Load64(a))
}

// StoreFloat64 writes the float64 v at a.
func (t *Thread) StoreFloat64(a mem.Addr, v float64) {
	t.Store64(a, math.Float64bits(v))
}

// LoadPtr reads a simulated pointer (an 8-byte word) at a.
func (t *Thread) LoadPtr(a mem.Addr) mem.Addr { return t.Load64(a) }

// StorePtr writes the simulated pointer p at a.
func (t *Thread) StorePtr(a mem.Addr, p mem.Addr) { t.Store64(a, p) }

// CompareAndSwap64 performs an atomic compare-and-swap on the word at a when
// outside a transaction (the lock-free baseline of the Figure 6 queue uses
// it). Inside a transaction it degenerates to a plain read-modify-write,
// which the transaction makes atomic anyway.
func (t *Thread) CompareAndSwap64(a mem.Addr, old, new uint64) bool {
	if t.transactional() {
		if t.Load64(a) != old {
			return false
		}
		t.Store64(a, new)
		return true
	}
	// Serialise through the line's shard lock for non-tx atomicity. A CAS
	// is a serialising instruction, far more expensive than a plain load —
	// the path-length cost the paper's Figure 6 transactions elide.
	t.tickOp(t.eng.scaledCost(t.eng.plat.Costs.CAS))
	t.boundsCheck(a, 8)
	line := t.lineOf(a)
	for {
		sh := t.lockLine(line)
		rec := &t.lines[line]
		if rec.writer >= 0 && rec.writer != int32(t.slot) {
			if !t.doomTagged(line, rec.writer, ReasonNonTxConflict) {
				unlockLine(sh)
				t.Pause(2) // owner is committing; wait it out
				continue
			}
			rec.writer = -1
		}
		for w, word := range rec.readers {
			for word != 0 {
				bit := word & (-word)
				word &^= bit
				slot := int32(w)*64 + trailingZeros(bit)
				if slot == int32(t.slot) {
					continue
				}
				if t.doomTagged(line, slot, ReasonNonTxConflict) {
					rec.readers[w] &^= bit
				}
			}
		}
		data := t.data
		cur := le64(data[a:])
		ok := cur == old
		if ok {
			putLE64(data[a:], new)
			if t.wit != nil {
				t.witnessNonTx(a, 8)
			}
		}
		unlockLine(sh)
		return ok
	}
}

// ---------------------------------------------------------------------------
// Transactional allocation (STAMP's TM_MALLOC / TM_FREE)

// Alloc allocates size bytes of simulated memory. Inside a transaction the
// allocation is logged and automatically reclaimed if the transaction
// aborts.
func (t *Thread) Alloc(size int) mem.Addr {
	a := t.eng.space.AllocArena(size, 8, t.slot)
	if t.inTx || t.stm.active {
		t.allocs = append(t.allocs, a)
	}
	return a
}

// AllocAligned is Alloc with an alignment constraint.
func (t *Thread) AllocAligned(size, align int) mem.Addr {
	a := t.eng.space.AllocArena(size, align, t.slot)
	if t.inTx || t.stm.active {
		t.allocs = append(t.allocs, a)
	}
	return a
}

// Free releases the block at a. Inside a transaction the free is deferred
// until commit so that an abort does not lose live data.
func (t *Thread) Free(a mem.Addr) {
	if a == mem.Nil {
		return
	}
	if t.inTx || t.stm.active {
		t.frees = append(t.frees, a)
		return
	}
	t.eng.space.FreeArena(a, t.slot)
}
