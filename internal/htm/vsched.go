package htm

import (
	"fmt"
	"sync"
)

// vsched is the virtual-time cooperative scheduler. When an Engine is
// created with Config.Virtual, exactly one benchmark thread executes at any
// moment; every memory access and modelled overhead advances the running
// thread's virtual clock, and at yield points the scheduler hands the baton
// to the runnable thread with the smallest clock. Transactions therefore
// overlap in *virtual* time regardless of how many physical CPUs the host
// has, conflict patterns match a genuinely parallel execution, and every
// run is fully deterministic: the parallel region's duration is simply the
// maximum virtual clock across its threads.
//
// This is the measurement backbone of the reproduction: the paper's
// speed-up ratios are virtual-cycle ratios here, so results are identical
// on a laptop and a 64-core server.
//
// Scheduling state is O(1) per handoff: thread status lives in a
// slot-indexed slice and electable threads sit in a binary min-heap keyed
// by (vclock, slot). A parked thread's clock never changes while it is in
// the heap — clocks only advance on the baton holder, and unblock raises a
// clock *before* re-inserting — so heap keys are immutable and the usual
// decrease-key machinery is unnecessary. The common yield fast path (the
// caller is still the minimum) is a single peek at the heap root.
type vsched struct {
	mu      sync.Mutex
	quantum int

	// status per thread slot, indexed by Thread.slot.
	status []schedStatus
	// ready is a binary min-heap of electable threads ordered by
	// (vclock, slot). The running thread is never in the heap.
	ready []*Thread
	// running is the slot currently holding the baton, or -1.
	running int
	// pending counts registered threads whose goroutines have not reached
	// begin yet. No thread runs until it drops to zero: a startup barrier
	// that makes the schedule independent of goroutine launch order (and
	// therefore deterministic).
	pending int
	// handoffs counts baton elections (Engine.SchedHandoffs).
	handoffs uint64
}

type schedStatus int

const (
	schedNone    schedStatus = iota // slot never registered
	schedPending                    // registered; goroutine not started yet
	schedRunning
	schedReady   // parked, electable (in the ready heap)
	schedBlocked // parked, waiting for an Unblock (barrier)
	schedDone
)

func newVsched(quantum, nThreads int) *vsched {
	if quantum <= 0 {
		quantum = 8
	}
	return &vsched{
		quantum: quantum,
		status:  make([]schedStatus, nThreads),
		running: -1,
	}
}

// ensureSlot grows the status slice to cover slot. Caller holds s.mu.
func (s *vsched) ensureSlot(slot int) {
	for slot >= len(s.status) {
		s.status = append(s.status, schedNone)
	}
}

// schedLess orders threads by (vclock, slot): the deterministic election
// order of the scheduler.
func schedLess(a, b *Thread) bool {
	return a.vclock < b.vclock || (a.vclock == b.vclock && a.slot < b.slot)
}

// pushReady inserts t into the ready heap. Caller holds s.mu.
func (s *vsched) pushReady(t *Thread) {
	s.ready = append(s.ready, t)
	i := len(s.ready) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !schedLess(s.ready[i], s.ready[p]) {
			break
		}
		s.ready[i], s.ready[p] = s.ready[p], s.ready[i]
		i = p
	}
}

// popReady removes and returns the minimum-(clock, slot) ready thread, or
// nil when none is electable. Caller holds s.mu.
func (s *vsched) popReady() *Thread {
	n := len(s.ready)
	if n == 0 {
		return nil
	}
	min := s.ready[0]
	last := s.ready[n-1]
	s.ready[n-1] = nil // release the reference for GC
	s.ready = s.ready[:n-1]
	if n > 1 {
		s.ready[0] = last
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < n-1 && schedLess(s.ready[l], s.ready[small]) {
				small = l
			}
			if r < n-1 && schedLess(s.ready[r], s.ready[small]) {
				small = r
			}
			if small == i {
				break
			}
			s.ready[i], s.ready[small] = s.ready[small], s.ready[i]
			i = small
		}
	}
	return min
}

// register adds a thread before its worker goroutine starts, so the
// scheduler never mistakes a not-yet-started thread for a deadlock.
// Must be called from outside the scheduled region (e.g. the spawning
// goroutine).
func (s *vsched) register(t *Thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSlot(t.slot)
	if st := s.status[t.slot]; st != schedNone && st != schedDone {
		panic(fmt.Sprintf("htm: thread %d registered twice", t.slot))
	}
	s.status[t.slot] = schedPending
	s.pending++
}

// begin is a worker goroutine's first scheduler call. Threads park here
// until every registered thread has arrived (the startup barrier); the last
// arrival elects the minimum-clock thread to run first, so the schedule does
// not depend on goroutine launch order.
func (s *vsched) begin(t *Thread) {
	s.mu.Lock()
	if s.status[t.slot] != schedPending {
		s.mu.Unlock()
		panic(fmt.Sprintf("htm: thread %d begins without registration", t.slot))
	}
	s.status[t.slot] = schedReady
	s.pushReady(t)
	s.pending--
	if s.pending > 0 || s.running != -1 {
		// Not everyone is here yet, or a schedule is already in flight
		// (a thread registered into a running region): park until elected.
		s.mu.Unlock()
		<-t.gate
		return
	}
	first := s.electLocked()
	s.mu.Unlock()
	if first == t {
		return
	}
	first.gate <- struct{}{}
	<-t.gate
}

// electLocked pops the ready thread with the smallest (clock, slot), marks
// it running and returns it; nil when no thread is electable. Caller holds
// s.mu.
func (s *vsched) electLocked() *Thread {
	best := s.popReady()
	if best != nil {
		s.status[best.slot] = schedRunning
		s.running = best.slot
		s.handoffs++
	}
	return best
}

// checkDeadlockLocked panics when no thread can ever run again yet some are
// blocked. Caller holds s.mu.
func (s *vsched) checkDeadlockLocked() {
	blocked := 0
	for _, st := range s.status {
		switch st {
		case schedPending, schedReady, schedRunning:
			return // progress is still possible
		case schedBlocked:
			blocked++
		}
	}
	if blocked > 0 {
		panic(fmt.Sprintf("htm: virtual-scheduler deadlock: %d threads blocked, none runnable", blocked))
	}
}

// yield hands the baton to the minimum-clock ready thread if that is not the
// caller. The caller must be the running thread.
func (s *vsched) yield(t *Thread) {
	s.mu.Lock()
	// Fast path: caller remains the minimum — one peek at the heap root.
	if len(s.ready) == 0 || !schedLess(s.ready[0], t) {
		s.mu.Unlock()
		return
	}
	s.status[t.slot] = schedReady
	s.pushReady(t)
	next := s.electLocked()
	s.mu.Unlock()
	next.gate <- struct{}{}
	<-t.gate
}

// block parks the running thread until Unblock marks it ready; used by the
// scheduler-aware barrier.
func (s *vsched) block(t *Thread) {
	s.mu.Lock()
	s.status[t.slot] = schedBlocked
	next := s.electLocked()
	if next == nil {
		s.running = -1
		s.checkDeadlockLocked()
	}
	s.mu.Unlock()
	if next != nil {
		next.gate <- struct{}{}
	}
	<-t.gate
}

// unblockLocked marks a blocked thread ready and advances its clock to at
// least atClock (time spent blocked passes for everyone). The clock is
// raised before the heap insert, keeping heap keys immutable. Caller holds
// s.mu.
func (s *vsched) unblockLocked(t *Thread, atClock uint64) {
	if s.status[t.slot] != schedBlocked {
		panic(fmt.Sprintf("htm: unblock of non-blocked thread %d", t.slot))
	}
	if t.vclock < atClock {
		t.vclock = atClock
	}
	s.status[t.slot] = schedReady
	s.pushReady(t)
}

// exit removes the finishing thread from scheduling and passes the baton on.
func (s *vsched) exit(t *Thread) {
	s.mu.Lock()
	s.status[t.slot] = schedDone
	var next *Thread
	if s.running == t.slot {
		next = s.electLocked()
		if next == nil {
			s.running = -1
		}
	}
	s.mu.Unlock()
	if next != nil {
		next.gate <- struct{}{}
	}
}

// Barrier is a scheduler-aware cyclic barrier. In virtual mode all parties
// resume with their clocks advanced to the latest arrival's clock — the
// virtual-time semantics of a barrier. In real-concurrency mode it is an
// ordinary condition-variable barrier. Create with Engine.NewBarrier.
type Barrier struct {
	eng *Engine
	n   int

	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     int
	waiters []*Thread
}

// NewBarrier returns a barrier for n parties on this engine.
func (e *Engine) NewBarrier(n int) *Barrier {
	b := &Barrier{eng: e, n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks t until all n parties have arrived.
func (b *Barrier) Wait(t *Thread) {
	if b.eng.sched == nil {
		b.mu.Lock()
		gen := b.gen
		b.count++
		if b.count == b.n {
			b.count = 0
			b.gen++
			b.cond.Broadcast()
			b.mu.Unlock()
			return
		}
		for gen == b.gen {
			b.cond.Wait()
		}
		b.mu.Unlock()
		return
	}
	s := b.eng.sched
	s.mu.Lock()
	b.count++
	if b.count < b.n {
		b.waiters = append(b.waiters, t)
		s.status[t.slot] = schedBlocked
		next := s.electLocked()
		if next == nil {
			s.running = -1
			s.checkDeadlockLocked()
		}
		s.mu.Unlock()
		if next != nil {
			next.gate <- struct{}{}
		}
		<-t.gate
		return
	}
	// Last arriver: everyone resumes at the maximum clock.
	maxClock := t.vclock
	for _, w := range b.waiters {
		if w.vclock > maxClock {
			maxClock = w.vclock
		}
	}
	t.vclock = maxClock
	for _, w := range b.waiters {
		s.unblockLocked(w, maxClock)
	}
	b.waiters = b.waiters[:0]
	b.count = 0
	s.mu.Unlock()
}
