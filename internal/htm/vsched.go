package htm

import (
	"fmt"
	"sync"
)

// vsched is the virtual-time cooperative scheduler. When an Engine is
// created with Config.Virtual, exactly one benchmark thread executes at any
// moment; every memory access and modelled overhead advances the running
// thread's virtual clock, and at yield points the scheduler hands the baton
// to the runnable thread with the smallest clock. Transactions therefore
// overlap in *virtual* time regardless of how many physical CPUs the host
// has, conflict patterns match a genuinely parallel execution, and every
// run is fully deterministic: the parallel region's duration is simply the
// maximum virtual clock across its threads.
//
// This is the measurement backbone of the reproduction: the paper's
// speed-up ratios are virtual-cycle ratios here, so results are identical
// on a laptop and a 64-core server.
type vsched struct {
	mu      sync.Mutex
	quantum int

	// status per thread slot.
	status map[int]schedStatus
	// running is the slot currently holding the baton, or -1.
	running int
	// pending counts registered threads whose goroutines have not reached
	// begin yet. No thread runs until it drops to zero: a startup barrier
	// that makes the schedule independent of goroutine launch order (and
	// therefore deterministic).
	pending int
}

type schedStatus int

const (
	schedPending schedStatus = iota // registered; goroutine not started yet
	schedRunning
	schedReady   // parked, electable
	schedBlocked // parked, waiting for an Unblock (barrier)
	schedDone
)

func newVsched(quantum int) *vsched {
	if quantum <= 0 {
		quantum = 8
	}
	return &vsched{
		quantum: quantum,
		status:  make(map[int]schedStatus),
		running: -1,
	}
}

// register adds a thread before its worker goroutine starts, so the
// scheduler never mistakes a not-yet-started thread for a deadlock.
// Must be called from outside the scheduled region (e.g. the spawning
// goroutine).
func (s *vsched) register(t *Thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.status[t.slot]; ok && st != schedDone {
		panic(fmt.Sprintf("htm: thread %d registered twice", t.slot))
	}
	s.status[t.slot] = schedPending
	s.pending++
}

// begin is a worker goroutine's first scheduler call. Threads park here
// until every registered thread has arrived (the startup barrier); the last
// arrival elects the minimum-clock thread to run first, so the schedule does
// not depend on goroutine launch order.
func (s *vsched) begin(t *Thread) {
	s.mu.Lock()
	if s.status[t.slot] != schedPending {
		s.mu.Unlock()
		panic(fmt.Sprintf("htm: thread %d begins without registration", t.slot))
	}
	s.status[t.slot] = schedReady
	s.pending--
	if s.pending > 0 || s.running != -1 {
		// Not everyone is here yet, or a schedule is already in flight
		// (a thread registered into a running region): park until elected.
		s.mu.Unlock()
		<-t.gate
		return
	}
	first := s.electLocked(t.eng)
	s.mu.Unlock()
	if first == t {
		return
	}
	first.gate <- struct{}{}
	<-t.gate
}

// electLocked picks the ready thread with the smallest (clock, slot), marks
// it running and returns it; nil when no thread is electable. Caller holds
// s.mu.
func (s *vsched) electLocked(e *Engine) *Thread {
	var best *Thread
	for slot, st := range s.status {
		if st != schedReady {
			continue
		}
		th := e.threads[slot]
		if best == nil || th.vclock < best.vclock ||
			(th.vclock == best.vclock && th.slot < best.slot) {
			best = th
		}
	}
	if best != nil {
		s.status[best.slot] = schedRunning
		s.running = best.slot
	}
	return best
}

// checkDeadlockLocked panics when no thread can ever run again yet some are
// blocked. Caller holds s.mu.
func (s *vsched) checkDeadlockLocked() {
	blocked := 0
	for _, st := range s.status {
		switch st {
		case schedPending, schedReady, schedRunning:
			return // progress is still possible
		case schedBlocked:
			blocked++
		}
	}
	if blocked > 0 {
		panic(fmt.Sprintf("htm: virtual-scheduler deadlock: %d threads blocked, none runnable", blocked))
	}
}

// yield hands the baton to the minimum-clock ready thread if that is not the
// caller. The caller must be the running thread.
func (s *vsched) yield(t *Thread) {
	s.mu.Lock()
	// Fast path: caller remains the minimum.
	isMin := true
	for slot, st := range s.status {
		if st != schedReady {
			continue
		}
		th := t.eng.threads[slot]
		if th.vclock < t.vclock || (th.vclock == t.vclock && th.slot < t.slot) {
			isMin = false
			break
		}
	}
	if isMin {
		s.mu.Unlock()
		return
	}
	s.status[t.slot] = schedReady
	next := s.electLocked(t.eng)
	s.mu.Unlock()
	next.gate <- struct{}{}
	<-t.gate
}

// block parks the running thread until Unblock marks it ready; used by the
// scheduler-aware barrier.
func (s *vsched) block(t *Thread) {
	s.mu.Lock()
	s.status[t.slot] = schedBlocked
	next := s.electLocked(t.eng)
	if next == nil {
		s.running = -1
		s.checkDeadlockLocked()
	}
	s.mu.Unlock()
	if next != nil {
		next.gate <- struct{}{}
	}
	<-t.gate
}

// unblockLocked marks a blocked thread ready and advances its clock to at
// least atClock (time spent blocked passes for everyone). Caller holds s.mu.
func (s *vsched) unblockLocked(t *Thread, atClock uint64) {
	if s.status[t.slot] != schedBlocked {
		panic(fmt.Sprintf("htm: unblock of non-blocked thread %d", t.slot))
	}
	if t.vclock < atClock {
		t.vclock = atClock
	}
	s.status[t.slot] = schedReady
}

// exit removes the finishing thread from scheduling and passes the baton on.
func (s *vsched) exit(t *Thread) {
	s.mu.Lock()
	s.status[t.slot] = schedDone
	var next *Thread
	if s.running == t.slot {
		next = s.electLocked(t.eng)
		if next == nil {
			s.running = -1
		}
	}
	s.mu.Unlock()
	if next != nil {
		next.gate <- struct{}{}
	}
}

// Barrier is a scheduler-aware cyclic barrier. In virtual mode all parties
// resume with their clocks advanced to the latest arrival's clock — the
// virtual-time semantics of a barrier. In real-concurrency mode it is an
// ordinary condition-variable barrier. Create with Engine.NewBarrier.
type Barrier struct {
	eng *Engine
	n   int

	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     int
	waiters []*Thread
}

// NewBarrier returns a barrier for n parties on this engine.
func (e *Engine) NewBarrier(n int) *Barrier {
	b := &Barrier{eng: e, n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks t until all n parties have arrived.
func (b *Barrier) Wait(t *Thread) {
	if b.eng.sched == nil {
		b.mu.Lock()
		gen := b.gen
		b.count++
		if b.count == b.n {
			b.count = 0
			b.gen++
			b.cond.Broadcast()
			b.mu.Unlock()
			return
		}
		for gen == b.gen {
			b.cond.Wait()
		}
		b.mu.Unlock()
		return
	}
	s := b.eng.sched
	s.mu.Lock()
	b.count++
	if b.count < b.n {
		b.waiters = append(b.waiters, t)
		s.status[t.slot] = schedBlocked
		next := s.electLocked(b.eng)
		if next == nil {
			s.running = -1
			s.checkDeadlockLocked()
		}
		s.mu.Unlock()
		if next != nil {
			next.gate <- struct{}{}
		}
		<-t.gate
		return
	}
	// Last arriver: everyone resumes at the maximum clock.
	maxClock := t.vclock
	for _, w := range b.waiters {
		if w.vclock > maxClock {
			maxClock = w.vclock
		}
	}
	t.vclock = maxClock
	for _, w := range b.waiters {
		s.unblockLocked(w, maxClock)
	}
	b.waiters = b.waiters[:0]
	b.count = 0
	s.mu.Unlock()
}
