package htm

import (
	"testing"

	"htmcmp/internal/mem"
	"htmcmp/internal/platform"
)

// TestEngineAndThreadAccessors pins the small read-only surface the harness
// and telemetry layers depend on: configuration echo, stats reset, scheduler
// handoffs, slot/stats getters, and the read-only load family.
func TestEngineAndThreadAccessors(t *testing.T) {
	e := stmEngine(t, 2)
	th := e.Thread(0)

	if got := e.Config().Threads; got != 2 {
		t.Errorf("Config().Threads = %d, want 2", got)
	}
	if e.Virtual() {
		t.Error("real-concurrency engine reports Virtual")
	}
	if got := e.SchedHandoffs(); got != 0 {
		t.Errorf("SchedHandoffs without a scheduler = %d, want 0", got)
	}
	if got := th.Slot(); got != 0 {
		t.Errorf("Slot = %d, want 0", got)
	}
	if th.Suspended() {
		t.Error("Suspended outside a transaction")
	}

	a := th.Alloc(64)
	if ok, _ := th.TryTx(TxNormal, func() { th.Store64(a, 0x41) }); !ok {
		t.Fatal("tx aborted")
	}
	if got := th.Stats().Commits; got != 1 {
		t.Errorf("thread Stats().Commits = %d, want 1", got)
	}
	e.ResetStats()
	if got := th.Stats().Commits; got != 0 {
		t.Errorf("Commits after ResetStats = %d", got)
	}

	// Read-only loads see committed data without joining a read set.
	if got := th.LoadRO64(a); got != 0x41 {
		t.Errorf("LoadRO64 = %#x, want 0x41", got)
	}
	if got := th.LoadRO8(a); got != 0x41 {
		t.Errorf("LoadRO8 = %#x, want 0x41", got)
	}
	th.StoreFloat64(a+8, 1.5)
	if got := th.LoadROFloat64(a + 8); got != 1.5 {
		t.Errorf("LoadROFloat64 = %v, want 1.5", got)
	}

	b := th.AllocAligned(128, 64)
	if b%64 != 0 {
		t.Errorf("AllocAligned returned %#x, not 64-byte aligned", b)
	}

	ptr := th.Alloc(64)
	th.StorePtr(ptr, a)
	if got := th.LoadPtr(ptr); got != a {
		t.Errorf("LoadPtr = %#x, want %#x", got, a)
	}
}

func TestAlignedSpaceSize(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 64},
		{63, 64},
		{64, 64},
		{65, 72},
		{128, 128},
	}
	for _, c := range cases {
		if got := alignedSpaceSize(c.in); got != c.want {
			t.Errorf("alignedSpaceSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAbortIsCapacity(t *testing.T) {
	if !(Abort{Reason: ReasonCapacityLoad}).IsCapacity() {
		t.Error("capacity-load abort not classified as capacity")
	}
	if (Abort{Reason: ReasonConflict}).IsCapacity() {
		t.Error("conflict abort classified as capacity")
	}
}

// TestHybridGateAccessors exercises the hybrid-STM gate surface: disabled by
// default, a stable gate line once enabled, and an STM fence that leaves the
// sequence lock even (writers can still commit afterwards).
func TestHybridGateAccessors(t *testing.T) {
	e := New(platform.New(platform.ZEC12), Config{
		Threads: 1, SpaceSize: 8 << 20, Seed: 21, Virtual: true, CostScale: 0,
		DisableCacheFetchAborts: true,
	})
	th := e.Thread(0)
	th.Register()
	th.BeginWork()
	defer th.ExitWork()
	if e.HybridEnabled() {
		t.Error("hybrid enabled before EnableHybridSTM")
	}
	if got := e.HybridGate(); got != mem.Nil {
		t.Errorf("gate before enable = %#x, want mem.Nil", got)
	}
	gate := e.EnableHybridSTM()
	if !e.HybridEnabled() || e.HybridGate() != gate {
		t.Errorf("after enable: enabled=%v gate=%#x want %#x", e.HybridEnabled(), e.HybridGate(), gate)
	}
	e.STMFence(th)
	a := th.Alloc(64)
	if ok, _ := th.TrySTM(func() { th.Store64(a, 3) }); !ok {
		t.Error("STM writer cannot commit after STMFence returned")
	}
}
