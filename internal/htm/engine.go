// Package htm implements the behavioural hardware-transactional-memory
// engine at the core of this reproduction.
//
// The engine executes real concurrent transactions (one Thread per
// goroutine) against a simulated flat memory (internal/mem), mimicking how
// the four processors of the paper implement HTM on top of their cache
// hierarchies (Section 2):
//
//   - Conflict detection is eager and cache-line-granular: every
//     transactional access registers the accessed line in a global
//     line-ownership table, and a conflicting request dooms the current
//     owner, exactly as a coherence invalidation aborts the transaction
//     holding the line in real hardware ("requester wins").
//   - Stores are buffered: a transaction copies each written line into a
//     private buffer and publishes it at commit, so concurrent transactions
//     and non-transactional readers never observe speculative state.
//   - Capacity is accounted per platform: distinct-line counts against the
//     Table 1 load/store budgets, set-associativity overflow for store
//     buffers that live in the L1, and division of per-core resources among
//     SMT threads concurrently in transactions.
//   - Platform quirks are modelled where the paper identifies them as the
//     cause of measured behaviour: Blue Gene/Q's speculation-ID pool and
//     software begin/end overhead, zEC12's spurious cache-fetch aborts,
//     Intel's adjacent-line prefetches joining the read set.
//
// Aborts unwind to the transaction begin via panic/recover, mirroring the
// hardware register-state rollback.
package htm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"htmcmp/internal/chaos"
	"htmcmp/internal/mem"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/prng"
)

// obs carries abort reasons as raw uint8 codes (it must not import this
// package); registering the namer here gives every program linking the
// engine symbolic reason names in event sinks.
func init() {
	obs.SetReasonNamer(func(code uint8) string { return Reason(code).String() })
}

// maxThreads is the maximum number of Threads per Engine, bounded by the
// 256-bit reader sets in the line table. The largest paper configuration is
// 64 hardware threads (Blue Gene/Q).
const maxThreads = 256

const (
	statusIdle int32 = iota
	statusActive
	statusCommitting
	statusDoomed
)

// numShards is the number of mutexes striping the line-ownership table.
// Power of two; large enough that unrelated lines rarely contend.
const numShards = 4096

// lineRec is the ownership record of one conflict-detection line: the
// writing transaction (thread slot, or -1) and a bitmap of reading threads.
// It is the software analogue of tx-read/tx-dirty cache-line bits (zEC12,
// Section 2.2) or a TMCAM entry (POWER8, Section 2.4).
type lineRec struct {
	writer  int32
	readers [maxThreads / 64]uint64
}

func (l *lineRec) setReader(slot int)   { l.readers[slot>>6] |= 1 << (uint(slot) & 63) }
func (l *lineRec) clearReader(slot int) { l.readers[slot>>6] &^= 1 << (uint(slot) & 63) }

// padMutex is a mutex padded to a cache line to avoid false sharing between
// shards of the (heavily contended) line table.
type padMutex struct {
	sync.Mutex
	_ [56]byte
}

// coreState tracks how many hardware threads of one physical core are
// currently inside transactions, for the SMT resource-sharing model
// (Section 2, "Transaction capacity").
type coreState struct {
	activeTx atomic.Int32
	_        [60]byte
}

// Config configures an Engine.
type Config struct {
	// Threads is the number of hardware threads to provision (Thread
	// slots). It may exceed the platform's core count; extra threads share
	// cores per Spec.CoreOf. Must be in [1, 256].
	Threads int
	// SpaceSize is the simulated arena size in bytes (default 64 MiB).
	SpaceSize int
	// Space, when non-nil, is a pre-allocated (fresh or Reset) arena the
	// engine adopts instead of allocating its own — the sweep harness pools
	// multi-MB Spaces across cells this way. It must be in its
	// post-NewSpace/post-Reset state and its size must match SpaceSize
	// (after defaulting); New panics otherwise. The caller must not touch
	// the Space while the engine runs and must not hand it to two engines.
	Space *mem.Space
	// Seed seeds the per-thread PRNGs used by the stochastic models
	// (prefetcher, cache-fetch aborts) and by workloads.
	Seed uint64
	// Mode selects Blue Gene/Q's running mode; ignored elsewhere.
	Mode platform.BGQMode
	// DisablePrefetch turns off the Intel adjacent-line prefetcher model —
	// the hardware-prefetch ablation of Section 5.1.
	DisablePrefetch bool
	// DisableCacheFetchAborts turns off zEC12's spurious transient aborts.
	DisableCacheFetchAborts bool
	// ResponderWins flips the conflict-resolution policy so the requesting
	// transaction aborts instead of the current owner (an ablation; real
	// invalidation-based HTMs are requester-wins).
	ResponderWins bool
	// CostScale scales the injected platform overhead costs. 1.0 is the
	// calibrated model; 0 disables cost injection (fast functional tests).
	CostScale float64
	// DisableSMTSharing turns off division of capacity among SMT threads
	// (an ablation for the Section 7 "better interaction with SMT"
	// discussion).
	DisableSMTSharing bool
	// UnboundedCapacity disables all capacity aborts while still tracking
	// footprints: the tracing configuration behind Figures 10/11, which
	// measured transaction sizes with an external tool unconstrained by
	// any processor's real capacity.
	UnboundedCapacity bool
	// ConflictSampler, when set, receives every conflict event: the line
	// and the victim thread. Analysis tooling (cmd/htmtrace -conflicts)
	// uses it to locate contention hot spots. Thread-safety as for
	// FootprintSampler.
	ConflictSampler func(line uint32, victim int)
	// FootprintSampler, when set, receives every committed transaction's
	// footprint in distinct conflict-detection lines (prefetched lines
	// excluded). It is called from committing threads concurrently and
	// must be thread-safe; internal/trace uses it single-threaded to
	// collect the Figure 10/11 transaction-size distributions.
	FootprintSampler func(readLines, writeLines int)
	// Tracer, when set, receives one obs.Event per transaction boundary
	// (begin/commit/abort) in each thread's lock-free ring. Disabled (nil)
	// it costs one nil check per boundary and nothing on the per-access
	// path; enabled it never advances virtual time, so simulated results
	// are identical traced and untraced (pinned by internal/tm's golden
	// determinism test). Threads whose slot exceeds Tracer.Threads() record
	// nothing.
	Tracer *obs.Tracer
	// Metrics, when set, receives live counter bumps at transaction
	// boundaries (begins, commits, aborts by reason, mode switches) for the
	// telemetry registry. Same cost contract as Tracer: nil costs one check
	// per boundary, non-nil a few striped atomic adds that never advance
	// virtual time, so simulated results are identical either way. One
	// EngineMetrics may be shared across concurrent engines — counters
	// stripe by thread slot.
	Metrics *obs.EngineMetrics
	// Witness, when set, records the commit-order witness log consumed by
	// the verify.Replay serializability oracle: each committed
	// transaction's read set (line, version, value hash) and write set
	// (published line images) plus its commit vclock, and every
	// strongly-isolated non-transactional store. Disabled (nil) it costs
	// one nil check per transactional load and per commit; enabled it
	// never advances virtual time, so witnessed runs are cycle-identical
	// to unwitnessed ones. See witness.go for scope and limitations.
	Witness *Witness
	// Faults, when set, is the deterministic chaos injector (internal/chaos)
	// driving engine-level fault injection: interrupt-style spurious aborts
	// at the commit boundary, forced capacity overflows at the capacity
	// checks, and NOrec sequence-lock contention on STM loads. Same cost
	// contract as Tracer/Metrics/Witness: nil costs one pointer check per
	// hook and never advances virtual time, so runs with chaos off are
	// cycle-identical to runs built before the injector existed. Injected
	// aborts unwind through the ordinary abort path (rollback, stats,
	// witness), so chaos runs remain serializable.
	Faults *chaos.Injector
	// Virtual enables the deterministic virtual-time scheduler: one
	// thread runs at a time, costs advance per-thread virtual clocks, and
	// the scheduler always resumes the minimum-clock thread. This makes
	// conflict behaviour and measured speed-ups independent of the host's
	// CPU count and fully reproducible; all harness measurements use it.
	// Without it, threads run with real concurrency (used by stress
	// tests on multi-core hosts).
	Virtual bool
	// Quantum is the number of memory accesses between voluntary yields
	// in virtual mode (default 8). Smaller values interleave transactions
	// more finely.
	Quantum int
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.SpaceSize <= 0 {
		c.SpaceSize = 64 << 20
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Engine is one platform's HTM, instantiated over one simulated memory.
// Create with New, obtain per-goroutine Threads with Thread, and run
// transactions through the internal/tm runtime (or Thread.TryTx directly).
type Engine struct {
	plat  *platform.Spec
	space *mem.Space
	cfg   Config

	lineShift uint
	lineSize  int
	nLines    int
	lines     []lineRec
	shards    []padMutex

	cores    []coreState
	activeTx atomic.Int32 // engine-wide live transactions (strong-isolation fast path)

	specPool *specIDPool // Blue Gene/Q only

	// arbiter serialises "hardened" constrained transactions so that
	// zEC12's eventual-commit guarantee holds (Section 2.2). It is a
	// spin lock (not a sync.Mutex) so that a holder may yield the virtual
	// scheduler's baton while waiters Pause instead of blocking.
	arbiter atomic.Int32

	// sched is the virtual-time scheduler (nil in real-concurrency mode).
	sched *vsched

	// stmSeq is the global NOrec sequence lock (see stm.go).
	stmSeq atomic.Uint64

	// hybrid arms the HTM/STM coexistence fences (hybrid.go); hybridGate is
	// the line adaptive hardware transactions subscribe to. The gate is
	// written before the atomic flag flips (publication order), and the
	// mutex serialises concurrent EnableHybridSTM calls — executors may be
	// constructed from their worker goroutines.
	hybridMu   sync.Mutex
	hybrid     atomic.Bool
	hybridGate mem.Addr

	threads []*Thread

	// traced caches cfg.Tracer != nil for the conflict paths that tag the
	// victim's doomLine/doomBy attribution fields.
	traced bool

	loadCapLines  int
	storeCapLines int
}

// New creates an Engine for the given platform model over a fresh memory
// space. The returned engine has cfg.Threads thread contexts; index them
// with Thread(i).
func New(spec *platform.Spec, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Threads > maxThreads {
		panic(fmt.Sprintf("htm: %d threads exceeds engine maximum %d", cfg.Threads, maxThreads))
	}
	space := cfg.Space
	if space == nil {
		space = mem.NewSpace(cfg.SpaceSize)
	} else if space.Size() != alignedSpaceSize(cfg.SpaceSize) {
		panic(fmt.Sprintf("htm: pooled space is %d bytes, config wants %d", space.Size(), cfg.SpaceSize))
	}
	e := &Engine{
		plat:  spec,
		space: space,
		cfg:   cfg,
	}
	e.lineSize = spec.LineSize
	if spec.Kind == platform.BlueGeneQ && cfg.Mode == platform.ShortRunning {
		// In short-running mode only the L2 holds transactional data and
		// the directory can track at finer granularity (Section 2.1:
		// 8–128 bytes "based on certain conditions, such as the running
		// mode"). We model short-running as 64-byte detection.
		e.lineSize = 64
	}
	e.lineShift = uint(log2(e.lineSize))
	e.nLines = (e.space.Size() + e.lineSize - 1) / e.lineSize
	e.lines = getLineTable(e.nLines)
	e.shards = make([]padMutex, numShards)
	e.cores = make([]coreState, spec.Cores)
	if spec.SpecIDs > 0 {
		e.specPool = newSpecIDPool(spec.SpecIDs, e.scaledCost(spec.Costs.SpecIDHold))
	}
	e.loadCapLines = spec.LoadCapacity / e.lineSize
	e.storeCapLines = spec.StoreCapacity / e.lineSize
	if cfg.Virtual {
		e.sched = newVsched(cfg.Quantum, cfg.Threads)
	}
	e.traced = cfg.Tracer != nil
	if cfg.Witness != nil {
		cfg.Witness.attach(e)
	}
	e.threads = make([]*Thread, cfg.Threads)
	for i := range e.threads {
		e.threads[i] = newThread(e, i)
	}
	return e
}

// alignedSpaceSize mirrors mem.NewSpace's size rounding (minimum 64 bytes,
// multiple of the word size) so New can validate a pooled Space against the
// configured size.
func alignedSpaceSize(n int) int {
	if n < 64 {
		n = 64
	}
	return (n + 7) &^ 7
}

func log2(n int) int {
	s := 0
	for 1<<uint(s) < n {
		s++
	}
	if 1<<uint(s) != n {
		panic(fmt.Sprintf("htm: line size %d is not a power of two", n))
	}
	return s
}

// Platform returns the processor model this engine implements.
func (e *Engine) Platform() *platform.Spec { return e.plat }

// Space returns the simulated memory arena (for setup-phase direct access).
func (e *Engine) Space() *mem.Space { return e.space }

// LineSize returns the effective conflict-detection granularity in bytes
// (mode-dependent on Blue Gene/Q).
func (e *Engine) LineSize() int { return e.lineSize }

// Threads returns the number of provisioned thread contexts.
func (e *Engine) Threads() int { return len(e.threads) }

// Thread returns thread context i. Each context must be used by at most one
// goroutine at a time.
func (e *Engine) Thread(i int) *Thread { return e.threads[i] }

// Config returns the engine configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) shardOf(line uint32) *padMutex {
	return &e.shards[line&(numShards-1)]
}

// scaledCost applies Config.CostScale to a platform cost.
func (e *Engine) scaledCost(c int) int {
	return int(float64(c) * e.cfg.CostScale)
}

// lockArbiter spin-acquires the constrained-transaction arbiter.
func (e *Engine) lockArbiter(t *Thread) {
	for !e.arbiter.CompareAndSwap(0, 1) {
		t.Pause(8)
	}
}

// unlockArbiter releases the constrained-transaction arbiter.
func (e *Engine) unlockArbiter() { e.arbiter.Store(0) }

// smtDivisor returns how many hardware threads of core are currently inside
// transactions, which divides that core's tracking resources (Section 2).
func (e *Engine) smtDivisor(core int) int {
	if e.cfg.DisableSMTSharing || e.plat.SMT <= 1 {
		return 1
	}
	d := int(e.cores[core].activeTx.Load())
	if d < 1 {
		d = 1
	}
	return d
}

// Stats aggregates the per-thread statistics. Call it only while the
// engine's threads are quiescent (per-thread counters are owner-written and
// unsynchronised, so reading them mid-run is a data race and may return torn
// values). To poll progress while threads are running, use Aborts, which is
// backed by a dedicated atomic and safe for concurrent use. Builds with
// -tags racecheck assert the quiescence requirement and panic on violation.
func (e *Engine) Stats() Stats {
	if debugChecks {
		if n := e.activeTx.Load(); n != 0 {
			panic(fmt.Sprintf("htm: Stats called with %d transactions in flight; "+
				"Stats is quiescent-only — poll Aborts() instead", n))
		}
	}
	var total Stats
	for _, t := range e.threads {
		total.add(&t.stats)
	}
	return total
}

// Aborts returns the total abort count across threads. Unlike Stats, it
// reads a dedicated atomic counter and is safe to call while threads are
// running, so tests and monitors can poll it concurrently.
func (e *Engine) Aborts() uint64 {
	var n uint64
	for _, t := range e.threads {
		n += t.abortCount.Load()
	}
	return n
}

// ResetStats zeroes all per-thread statistics. Call between the warm-up and
// measured phases of an experiment, never while transactions are running.
func (e *Engine) ResetStats() {
	for _, t := range e.threads {
		t.stats = Stats{}
		t.abortCount.Store(0)
	}
}

// Virtual reports whether the engine runs under the virtual-time scheduler.
func (e *Engine) Virtual() bool { return e.sched != nil }

// ResetClocks zeroes every thread's virtual clock; call at the start of a
// measured region (never while threads are scheduled).
func (e *Engine) ResetClocks() {
	for _, t := range e.threads {
		t.vclock = 0
	}
}

// SchedHandoffs returns how many times the virtual scheduler elected a new
// baton holder (0 in real-concurrency mode) — a cheap proxy for how finely
// the run interleaved. Call while threads are quiescent.
func (e *Engine) SchedHandoffs() uint64 {
	if e.sched == nil {
		return 0
	}
	e.sched.mu.Lock()
	defer e.sched.mu.Unlock()
	return e.sched.handoffs
}

// MaxClock returns the largest virtual clock across threads — the duration
// of the last measured region in cost units.
func (e *Engine) MaxClock() uint64 {
	var m uint64
	for _, t := range e.threads {
		if t.vclock > m {
			m = t.vclock
		}
	}
	return m
}

// Stats are the engine-level transaction counters. The software runtime
// (internal/tm) layers its own counters (lock-conflict reclassification,
// serialization ratio) on top.
type Stats struct {
	Begins  uint64
	Commits uint64
	Aborts  uint64
	// AbortsByReason counts aborts per engine Reason.
	AbortsByReason [NumReasons]uint64
	// TxLoads/TxStores count transactional accesses (for cost analyses).
	TxLoads  uint64
	TxStores uint64
	// SpecIDWaits counts Blue Gene/Q transactions that had to wait or
	// reclaim at begin because the speculation-ID pool was empty.
	SpecIDWaits uint64
	// MaxReadLines/MaxWriteLines track the largest transactional footprints
	// observed (distinct lines).
	MaxReadLines  int
	MaxWriteLines int
}

func (s *Stats) add(o *Stats) {
	s.Begins += o.Begins
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	for i := range s.AbortsByReason {
		s.AbortsByReason[i] += o.AbortsByReason[i]
	}
	s.TxLoads += o.TxLoads
	s.TxStores += o.TxStores
	s.SpecIDWaits += o.SpecIDWaits
	if o.MaxReadLines > s.MaxReadLines {
		s.MaxReadLines = o.MaxReadLines
	}
	if o.MaxWriteLines > s.MaxWriteLines {
		s.MaxWriteLines = o.MaxWriteLines
	}
}

// AbortRatio returns the paper's transaction-abort ratio: aborted
// transactions as a percentage of all transaction attempts (Section 5).
func (s *Stats) AbortRatio() float64 {
	if s.Begins == 0 {
		return 0
	}
	return 100 * float64(s.Aborts) / float64(s.Begins)
}

// CategoryBreakdown splits the abort ratio into Figure 3's categories, as
// percentage points of all begins. Lock-conflict reclassification is done by
// internal/tm; here lock conflicts appear under their raw reason.
func (s *Stats) CategoryBreakdown() [NumCategories]float64 {
	var out [NumCategories]float64
	if s.Begins == 0 {
		return out
	}
	for r := 0; r < NumReasons; r++ {
		out[Reason(r).Category()] += 100 * float64(s.AbortsByReason[r]) / float64(s.Begins)
	}
	return out
}

// spinSink defeats dead-code elimination of the cost-injection spin loop.
var spinSink atomic.Uint64

// spin burns approximately n work units of CPU.
func spin(n int) {
	if n <= 0 {
		return
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
	}
	spinSink.Store(x)
}

// rngFor derives a deterministic per-thread generator.
func (e *Engine) rngFor(slot int) *prng.Rand {
	return prng.Derive(e.cfg.Seed, slot)
}
