//go:build racecheck

package htm

// debugChecks enables the engine's debug assertions (e.g. the Engine.Stats
// quiescence check). Built with -tags racecheck.
const debugChecks = true
