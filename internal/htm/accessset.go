package htm

// Map-free transactional access sets.
//
// The per-access hot path of the engine used to pay three Go map operations
// per transactional load/store (read-set lookup, write-set lookup, Intel's
// store-set way counter). Figure 10/11 of the paper show that the
// overwhelming majority of STAMP transactions touch at most a handful of
// conflict-detection lines, so the sets are now accessTab: a fixed
// 8-entry linearly-scanned array for the common case, spilling into an
// open-addressed power-of-two table (linear probing) when a transaction
// grows past it. Every slot carries an epoch stamp and reset() just bumps
// the epoch, so clearing the set at commit/rollback is O(1) regardless of
// how large the table has grown — the same trick hardware uses when it
// flash-clears tx-read/tx-dirty bits.
//
// Iteration order is never taken from the table: the engine keeps explicit
// readOrder/writeOrder append logs, so results cannot depend on hash
// layout. All operations are single-threaded per Thread (the sets are
// thread-private), hence no synchronisation.

const (
	// fastSetCap is the linear-scan fast-path capacity in entries. Figure 10
	// shows most STAMP transactions fit well within 8 distinct lines.
	fastSetCap = 8
	// minTabSlots is the initial open-addressed table size (power of two).
	minTabSlots = 64
)

// tabKey is the key domain: conflict-detection lines (uint32) or simulated
// word addresses (uint64, the STM write buffer).
type tabKey interface{ ~uint32 | ~uint64 }

type tabSlot[K tabKey, V any] struct {
	key  K
	used uint64 // epoch stamp; live iff == accessTab.epoch
	val  V
}

// accessTab maps keys to values with an O(1) epoch-based reset. The zero
// value is NOT ready; call init first (epoch must start nonzero so that
// freshly allocated slots, whose stamp is zero, read as empty).
type accessTab[K tabKey, V any] struct {
	fastKeys [fastSetCap]K
	fastVals [fastSetCap]V
	fastN    int
	spilled  bool // this epoch outgrew the fast path; use slots
	n        int  // live slot entries (valid when spilled)
	epoch    uint64
	slots    []tabSlot[K, V]
	mask     uint32
}

func (t *accessTab[K, V]) init() { t.epoch = 1 }

// reset empties the set in O(1): the epoch bump invalidates every table
// slot at once and the fast-path cursor rewinds.
func (t *accessTab[K, V]) reset() {
	t.fastN = 0
	t.spilled = false
	t.n = 0
	t.epoch++
}

// size returns the number of live entries.
func (t *accessTab[K, V]) size() int {
	if t.spilled {
		return t.n
	}
	return t.fastN
}

func (t *accessTab[K, V]) hash(k K) uint32 {
	// Fibonacci hashing; lines are sequential so the multiply spreads them.
	return uint32((uint64(k)*0x9E3779B97F4A7C15)>>32) & t.mask
}

// get returns the value stored under k.
func (t *accessTab[K, V]) get(k K) (V, bool) {
	if !t.spilled {
		for i := 0; i < t.fastN; i++ {
			if t.fastKeys[i] == k {
				return t.fastVals[i], true
			}
		}
		var zero V
		return zero, false
	}
	for idx := t.hash(k); ; idx = (idx + 1) & t.mask {
		s := &t.slots[idx]
		if s.used != t.epoch {
			var zero V
			return zero, false
		}
		if s.key == k {
			return s.val, true
		}
	}
}

// has reports whether k is in the set.
func (t *accessTab[K, V]) has(k K) bool {
	_, ok := t.get(k)
	return ok
}

// put inserts k=v, overwriting any existing entry.
func (t *accessTab[K, V]) put(k K, v V) {
	if !t.spilled {
		for i := 0; i < t.fastN; i++ {
			if t.fastKeys[i] == k {
				t.fastVals[i] = v
				return
			}
		}
		if t.fastN < fastSetCap {
			t.fastKeys[t.fastN] = k
			t.fastVals[t.fastN] = v
			t.fastN++
			return
		}
		t.spill()
	}
	t.putSlow(k, v)
}

// spill migrates the fast-path entries into the open-addressed table; the
// transaction has outgrown the linear scan.
func (t *accessTab[K, V]) spill() {
	if t.slots == nil {
		t.slots = make([]tabSlot[K, V], minTabSlots)
		t.mask = minTabSlots - 1
	}
	t.spilled = true
	t.n = 0
	for i := 0; i < t.fastN; i++ {
		t.putSlow(t.fastKeys[i], t.fastVals[i])
	}
}

func (t *accessTab[K, V]) putSlow(k K, v V) {
	if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	for idx := t.hash(k); ; idx = (idx + 1) & t.mask {
		s := &t.slots[idx]
		if s.used != t.epoch {
			s.key, s.val, s.used = k, v, t.epoch
			t.n++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
	}
}

// grow doubles the table, rehashing only the current epoch's live entries
// (stale slots from earlier transactions are dropped for free).
func (t *accessTab[K, V]) grow() {
	old := t.slots
	t.slots = make([]tabSlot[K, V], 2*len(old))
	t.mask = uint32(len(t.slots) - 1)
	t.n = 0
	for i := range old {
		if old[i].used == t.epoch {
			t.putSlow(old[i].key, old[i].val)
		}
	}
}

// wayCounter tracks per-cache-set store-buffer occupancy for Intel's
// set-associativity overflow model: a dense count per set with the same
// epoch-stamp trick, so reset is O(1) instead of clearing a map.
type wayCounter struct {
	cnt   []int32
	stamp []uint64
	epoch uint64
}

func (w *wayCounter) init(sets int) {
	w.cnt = make([]int32, sets)
	w.stamp = make([]uint64, sets)
	w.epoch = 1
}

func (w *wayCounter) reset() { w.epoch++ }

func (w *wayCounter) get(set uint32) int {
	if w.stamp[set] != w.epoch {
		return 0
	}
	return int(w.cnt[set])
}

func (w *wayCounter) incr(set uint32) {
	if w.stamp[set] != w.epoch {
		w.stamp[set] = w.epoch
		w.cnt[set] = 0
	}
	w.cnt[set]++
}
