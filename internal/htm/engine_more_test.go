package htm

import (
	"testing"

	"htmcmp/internal/platform"
)

func TestReasonCategories(t *testing.T) {
	want := []struct {
		r Reason
		c Category
	}{
		{ReasonConflict, CategoryDataConflict},
		{ReasonNonTxConflict, CategoryDataConflict},
		{ReasonCommitterConflict, CategoryDataConflict},
		{ReasonCapacityLoad, CategoryCapacity},
		{ReasonCapacityStore, CategoryCapacity},
		{ReasonCapacityWay, CategoryCapacity},
		{ReasonCapacitySMT, CategoryCapacity},
		{ReasonExplicit, CategoryOther},
		{ReasonCacheFetch, CategoryOther},
	}
	for _, tc := range want {
		if tc.r.Category() != tc.c {
			t.Errorf("%v category = %v, want %v", tc.r, tc.r.Category(), tc.c)
		}
	}
	for r := 0; r < NumReasons; r++ {
		if Reason(r).String() == "unknown" {
			t.Errorf("reason %d has no name", r)
		}
	}
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "Unclassified" {
			t.Errorf("category %d has no label", c)
		}
	}
}

func TestStatsAggregationAndRatios(t *testing.T) {
	var a, b Stats
	a.Begins, a.Commits, a.Aborts = 10, 7, 3
	a.AbortsByReason[ReasonConflict] = 3
	a.MaxReadLines, a.MaxWriteLines = 5, 2
	b.Begins, b.Commits, b.Aborts = 10, 10, 0
	b.MaxReadLines, b.MaxWriteLines = 9, 1
	a.add(&b)
	if a.Begins != 20 || a.Commits != 17 || a.Aborts != 3 {
		t.Errorf("aggregate = %+v", a)
	}
	if a.MaxReadLines != 9 || a.MaxWriteLines != 2 {
		t.Error("max footprints must take the maximum")
	}
	if got := a.AbortRatio(); got != 15 {
		t.Errorf("AbortRatio = %v, want 15", got)
	}
	br := a.CategoryBreakdown()
	if br[CategoryDataConflict] != 15 {
		t.Errorf("conflict breakdown = %v", br[CategoryDataConflict])
	}
	var empty Stats
	if empty.AbortRatio() != 0 {
		t.Error("empty stats AbortRatio should be 0")
	}
}

func TestFootprintSamplerReceivesCommits(t *testing.T) {
	var samples [][2]int
	e := New(platform.New(platform.IntelCore), Config{
		Threads: 1, SpaceSize: 1 << 20, CostScale: 0, DisablePrefetch: true,
		FootprintSampler: func(r, w int) { samples = append(samples, [2]int{r, w}) },
	})
	th := e.Thread(0)
	a := th.Alloc(8 * e.LineSize())
	th.TryTx(TxNormal, func() {
		for i := 0; i < 3; i++ {
			_ = th.Load64(a + uint64(i*e.LineSize()))
		}
		th.Store64(a+uint64(5*e.LineSize()), 1)
	})
	th.TryTx(TxNormal, func() { th.Abort() }) // aborted: not sampled
	if len(samples) != 1 {
		t.Fatalf("sampled %d transactions, want 1", len(samples))
	}
	if samples[0] != [2]int{3, 1} {
		t.Errorf("sample = %v, want [3 1]", samples[0])
	}
}

func TestConflictSamplerReceivesDooms(t *testing.T) {
	var conflicts int
	e := New(platform.New(platform.IntelCore), Config{
		Threads: 2, SpaceSize: 1 << 20, CostScale: 0, DisablePrefetch: true, Virtual: true,
		ConflictSampler: func(line uint32, victim int) { conflicts++ },
	})
	a := e.Thread(0).Alloc(64)
	done := make(chan struct{})
	e.Thread(0).Register()
	e.Thread(1).Register()
	go func() {
		defer close(done)
		t1 := e.Thread(1)
		t1.BeginWork()
		defer t1.ExitWork()
		for i := 0; i < 50; i++ {
			t1.TryTx(TxNormal, func() {
				t1.Store64(a, t1.Load64(a)+1)
				t1.Work(50)
			})
		}
	}()
	t0 := e.Thread(0)
	t0.BeginWork()
	for i := 0; i < 50; i++ {
		t0.TryTx(TxNormal, func() {
			t0.Store64(a, t0.Load64(a)+1)
			t0.Work(50)
		})
	}
	t0.ExitWork()
	<-done
	if conflicts == 0 {
		t.Error("contended counters produced no sampled conflicts")
	}
}

func TestUnboundedCapacityDisablesAborts(t *testing.T) {
	e := New(platform.New(platform.POWER8), Config{
		Threads: 1, SpaceSize: 8 << 20, CostScale: 0, UnboundedCapacity: true,
	})
	th := e.Thread(0)
	n := 500 // far beyond the 64-entry TMCAM
	a := th.Alloc(n * e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i < n; i++ {
			th.Store64(a+uint64(i*e.LineSize()), 1)
		}
	})
	if !ok {
		t.Fatalf("unbounded-capacity tx aborted: %+v", ab)
	}
}

func TestEngineConfigDefaults(t *testing.T) {
	e := New(platform.New(platform.ZEC12), Config{})
	if e.Threads() != 1 {
		t.Errorf("default threads = %d", e.Threads())
	}
	if e.Space().Size() != 64<<20 {
		t.Errorf("default space = %d", e.Space().Size())
	}
	if e.Virtual() {
		t.Error("virtual mode must be opt-in")
	}
}

func TestTooManyThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("engine accepted more threads than the reader bitmap supports")
		}
	}()
	New(platform.New(platform.ZEC12), Config{Threads: 257})
}

func TestROTStoresConflictDetected(t *testing.T) {
	// Rollback-only transactions still buffer and register STORES; a
	// conflicting non-transactional store from another thread must doom
	// the ROT.
	e := newTestEngine(t, platform.POWER8, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(256)

	wrote := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	var rotOK bool
	go func() {
		defer close(done)
		rotOK, _ = t0.TryTx(TxRollbackOnly, func() {
			t0.Store64(a, 1)
			close(wrote)
			<-release
			t0.Store64(a+8, 2) // must observe the doom
		})
	}()
	<-wrote
	t1.Store64(a, 99) // non-tx store to the ROT's write line
	close(release)
	<-done
	if rotOK {
		t.Error("ROT survived a conflicting store to its write set")
	}
	if got := t0.Load64(a); got != 99 {
		t.Errorf("memory = %d, want the non-tx store's 99", got)
	}
}
