package htm

import (
	"fmt"
	"testing"

	"htmcmp/internal/platform"
)

func TestAccessTabFastPathBasics(t *testing.T) {
	var tab accessTab[uint32, int]
	tab.init()
	if tab.size() != 0 || tab.has(1) {
		t.Fatal("fresh table not empty")
	}
	for i := uint32(0); i < fastSetCap; i++ {
		tab.put(i, int(i)*10)
	}
	if tab.spilled {
		t.Fatalf("spilled at %d entries; fast path should hold them", fastSetCap)
	}
	tab.put(3, 99) // overwrite must not grow the set
	if tab.size() != fastSetCap {
		t.Fatalf("size = %d after overwrite, want %d", tab.size(), fastSetCap)
	}
	if v, ok := tab.get(3); !ok || v != 99 {
		t.Fatalf("get(3) = %d,%v want 99,true", v, ok)
	}
	if _, ok := tab.get(1000); ok {
		t.Fatal("get of absent key succeeded")
	}
}

func TestAccessTabGrowthPastFastPath(t *testing.T) {
	var tab accessTab[uint32, uint32]
	tab.init()
	const n = 1000 // forces the spill and several grow() doublings
	for i := uint32(0); i < n; i++ {
		tab.put(i*7, i)
		if got := tab.size(); got != int(i)+1 {
			t.Fatalf("size = %d after %d inserts", got, i+1)
		}
	}
	if !tab.spilled {
		t.Fatal("table did not spill past the fast path")
	}
	for i := uint32(0); i < n; i++ {
		if v, ok := tab.get(i * 7); !ok || v != i {
			t.Fatalf("get(%d) = %d,%v want %d,true", i*7, v, ok, i)
		}
	}
	// Overwrites after growth must hit the same slots.
	for i := uint32(0); i < n; i++ {
		tab.put(i*7, i+1)
	}
	if tab.size() != n {
		t.Fatalf("size = %d after overwrites, want %d", tab.size(), n)
	}
}

func TestAccessTabEpochReuseAcrossTransactions(t *testing.T) {
	// 10k reset cycles over one table: entries from earlier epochs must
	// never be visible, and the table must not grow without bound (reset is
	// an epoch bump, not a reallocation).
	var tab accessTab[uint32, int]
	tab.init()
	for epoch := 0; epoch < 10000; epoch++ {
		n := 1 + epoch%12 // straddles the fast-path/spill boundary
		for i := 0; i < n; i++ {
			k := uint32(epoch*31+i) % 4096
			tab.put(k, epoch)
		}
		for i := 0; i < n; i++ {
			k := uint32(epoch*31+i) % 4096
			v, ok := tab.get(k)
			if !ok || v != epoch {
				t.Fatalf("epoch %d: get(%d) = %d,%v", epoch, k, v, ok)
			}
		}
		// A key from the previous epoch that is not in this one must be
		// invisible even though its slot still physically holds it.
		if epoch > 0 {
			stale := uint32((epoch-1)*31) % 4096
			if v, ok := tab.get(stale); ok && v != epoch {
				t.Fatalf("epoch %d: stale entry %d visible with value %d", epoch, stale, v)
			}
		}
		tab.reset()
		if tab.size() != 0 {
			t.Fatalf("epoch %d: size %d after reset", epoch, tab.size())
		}
	}
	if len(tab.slots) > 512 {
		t.Fatalf("table grew to %d slots across epochs; reset is leaking entries", len(tab.slots))
	}
}

func TestAccessTabSpillPreservesEntries(t *testing.T) {
	// The 9th insert migrates the 8 fast-path entries into the open table;
	// all must survive with their values.
	var tab accessTab[uint64, string]
	tab.init()
	for i := uint64(0); i < fastSetCap+1; i++ {
		tab.put(i<<40, fmt.Sprint(i)) // high bits exercise the uint64 hash
	}
	if !tab.spilled || tab.size() != fastSetCap+1 {
		t.Fatalf("spilled=%v size=%d", tab.spilled, tab.size())
	}
	for i := uint64(0); i < fastSetCap+1; i++ {
		if v, ok := tab.get(i << 40); !ok || v != fmt.Sprint(i) {
			t.Fatalf("get(%d) = %q,%v", i, v, ok)
		}
	}
}

func TestWayCounterEpochReset(t *testing.T) {
	var w wayCounter
	w.init(8)
	w.incr(3)
	w.incr(3)
	w.incr(5)
	if w.get(3) != 2 || w.get(5) != 1 || w.get(0) != 0 {
		t.Fatalf("counts = %d,%d,%d", w.get(3), w.get(5), w.get(0))
	}
	w.reset()
	for set := uint32(0); set < 8; set++ {
		if w.get(set) != 0 {
			t.Fatalf("set %d nonzero after reset", set)
		}
	}
	w.incr(3)
	if w.get(3) != 1 {
		t.Fatalf("count after reuse = %d", w.get(3))
	}
}

// TestPrefetchedLinePromotion checks the read-set's counted flag through the
// real access path: a line pulled in by the Intel adjacent-line prefetcher
// sits in the read set uncharged (counted=false); a later explicit load of
// that line promotes it — charging capacity exactly once.
func TestPrefetchedLinePromotion(t *testing.T) {
	// The prefetcher is a Bernoulli draw on the thread RNG, so scan seeds
	// for one where the first load's prefetch fires. Deterministic per seed.
	for seed := uint64(0); seed < 64; seed++ {
		e := New(platform.New(platform.IntelCore), Config{
			Threads: 1, SpaceSize: 1 << 20, Seed: seed, CostScale: 0,
		})
		th := e.Thread(0)
		a := th.Alloc(8 * e.lineSize)
		line0 := th.lineOf(a)
		var fired bool
		th.TryTx(TxNormal, func() {
			_ = th.Load64(a)
			if !th.rs.has(line0 + 1) {
				return // prefetch did not fire under this seed
			}
			fired = true
			if counted, _ := th.rs.get(line0 + 1); counted {
				t.Fatal("prefetched line charged against capacity")
			}
			if r, _ := th.FootprintLines(); r != 1 {
				t.Fatalf("readsCounted = %d before promotion, want 1", r)
			}
			// Explicit load of the prefetched line: promote, charge once.
			_ = th.Load64(a + uint64(e.lineSize))
			if counted, ok := th.rs.get(line0 + 1); !ok || !counted {
				t.Fatal("explicit load did not promote the prefetched line")
			}
			if r, _ := th.FootprintLines(); r != 2 {
				t.Fatalf("readsCounted = %d after promotion, want 2", r)
			}
			// Loading it again must not double-charge.
			_ = th.Load64(a + uint64(e.lineSize))
			if r, _ := th.FootprintLines(); r != 2 {
				t.Fatalf("readsCounted = %d after re-load, want 2", r)
			}
		})
		if fired {
			return
		}
	}
	t.Fatal("prefetch never fired in 64 seeds; check the prefetcher model")
}
