package htm_test

// bench_hotpath: microbenchmarks over the engine's per-access hot path.
// These are engineering telemetry for the simulator itself (not paper
// figures): they track the host-side cost of transactional loads/stores,
// commit/abort bookkeeping, strongly-isolated non-transactional accesses,
// the NOrec STM fast path, and one full small sweep cell. CI runs them with
// -benchtime=1x as an execution gate and `make bench-hotpath` converts the
// output into BENCH_hotpath.json (see cmd/benchjson) so the performance
// trajectory is recorded PR over PR.
//
// All benchmarks run in virtual mode — the configuration every harness
// measurement uses — except HotpathTxLoadReal/HotpathTxStoreReal, which keep
// real concurrency (and therefore the sharded line-table locks) to expose
// the cost of the locked path.

import (
	"testing"

	"htmcmp/internal/harness"
	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/stamp"
)

// hotpathEngine builds a single-thread virtual-mode engine with the
// stochastic models disabled, so every iteration does identical work.
func hotpathEngine(virtual bool) (*htm.Engine, *htm.Thread) {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 1, SpaceSize: 1 << 20, Seed: 99, Virtual: virtual,
		CostScale: 1, DisablePrefetch: true,
	})
	th := e.Thread(0)
	if virtual {
		th.Register()
		th.BeginWork()
	}
	return e, th
}

// benchTxLoads runs transactions of `lines` distinct-line loads each and
// reports ns per load.
func benchTxLoads(b *testing.B, virtual bool, lines int) {
	e, th := hotpathEngine(virtual)
	if virtual {
		defer th.ExitWork()
	}
	a := th.Alloc(lines * e.LineSize())
	stride := uint64(e.LineSize())
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		th.TryTx(htm.TxNormal, func() {
			for j := 0; j < lines; j++ {
				_ = th.Load64(a + uint64(j)*stride)
			}
		})
	}
}

// benchTxStores runs transactions of `lines` distinct-line stores each and
// reports ns per store.
func benchTxStores(b *testing.B, virtual bool, lines int) {
	e, th := hotpathEngine(virtual)
	if virtual {
		defer th.ExitWork()
	}
	a := th.Alloc(lines * e.LineSize())
	stride := uint64(e.LineSize())
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		th.TryTx(htm.TxNormal, func() {
			for j := 0; j < lines; j++ {
				th.Store64(a+uint64(j)*stride, uint64(i+j))
			}
		})
	}
}

func BenchmarkHotpathTxLoad8(b *testing.B)   { benchTxLoads(b, true, 8) }
func BenchmarkHotpathTxLoad64(b *testing.B)  { benchTxLoads(b, true, 64) }
func BenchmarkHotpathTxStore8(b *testing.B)  { benchTxStores(b, true, 8) }
func BenchmarkHotpathTxStore64(b *testing.B) { benchTxStores(b, true, 64) }

// Traced counterparts: same work with an obs tracer attached. Events are
// recorded only at transaction boundaries, so the per-access numbers should
// be indistinguishable from the untraced runs; the <2% disabled-path
// contract is the untraced benchmarks staying on their BENCH_hotpath.json
// baselines (enforced by cmd/benchjson -gate in CI).
func BenchmarkHotpathTxLoad8Traced(b *testing.B)  { benchTxLoadsTraced(b, 8) }
func BenchmarkHotpathTxStore8Traced(b *testing.B) { benchTxStoresTraced(b, 8) }

func tracedEngine() (*htm.Engine, *htm.Thread) {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 1, SpaceSize: 1 << 20, Seed: 99, Virtual: true,
		CostScale: 1, DisablePrefetch: true,
		Tracer: obs.NewTracer(1, obs.DefaultRingEvents),
	})
	th := e.Thread(0)
	th.Register()
	th.BeginWork()
	return e, th
}

func benchTxLoadsTraced(b *testing.B, lines int) {
	e, th := tracedEngine()
	defer th.ExitWork()
	a := th.Alloc(lines * e.LineSize())
	stride := uint64(e.LineSize())
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		th.TryTx(htm.TxNormal, func() {
			for j := 0; j < lines; j++ {
				_ = th.Load64(a + uint64(j)*stride)
			}
		})
	}
}

func benchTxStoresTraced(b *testing.B, lines int) {
	e, th := tracedEngine()
	defer th.ExitWork()
	a := th.Alloc(lines * e.LineSize())
	stride := uint64(e.LineSize())
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		th.TryTx(htm.TxNormal, func() {
			for j := 0; j < lines; j++ {
				th.Store64(a+uint64(j)*stride, uint64(i+j))
			}
		})
	}
}

// BenchmarkHotpathCommitTraced is BenchmarkHotpathCommit with tracing on:
// the cost of two ring records (begin + commit) per transaction.
func BenchmarkHotpathCommitTraced(b *testing.B) {
	_, th := tracedEngine()
	defer th.ExitWork()
	a := th.Alloc(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.TryTx(htm.TxNormal, func() {
			th.Store64(a, th.Load64(a)+1)
		})
	}
}

// Real-concurrency counterparts: the locked line-table path must stay
// correct (it runs under -race in CI) but is allowed to be slower.
func BenchmarkHotpathTxLoadReal8(b *testing.B)  { benchTxLoads(b, false, 8) }
func BenchmarkHotpathTxStoreReal8(b *testing.B) { benchTxStores(b, false, 8) }

// BenchmarkHotpathCommit measures begin+commit bookkeeping around a minimal
// read-modify-write transaction (one line in the read and write set).
func BenchmarkHotpathCommit(b *testing.B) {
	_, th := hotpathEngine(true)
	defer th.ExitWork()
	a := th.Alloc(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.TryTx(htm.TxNormal, func() {
			th.Store64(a, th.Load64(a)+1)
		})
	}
}

// BenchmarkHotpathAbort measures the rollback path: each transaction builds
// a 4-line footprint and explicitly aborts.
func BenchmarkHotpathAbort(b *testing.B) {
	e, th := hotpathEngine(true)
	defer th.ExitWork()
	a := th.Alloc(4 * e.LineSize())
	stride := uint64(e.LineSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		committed, _ := th.TryTx(htm.TxNormal, func() {
			for j := 0; j < 4; j++ {
				th.Store64(a+uint64(j)*stride, 1)
			}
			th.Abort()
		})
		if committed {
			b.Fatal("explicitly aborted transaction committed")
		}
	}
}

// BenchmarkHotpathNonTxLoad measures the strongly-isolated non-transactional
// load while a transaction is live on the engine (the path that scans the
// line table). POWER8's suspend/resume lets a single thread be both.
func BenchmarkHotpathNonTxLoad(b *testing.B) {
	e := htm.New(platform.New(platform.POWER8), htm.Config{
		Threads: 1, SpaceSize: 1 << 20, Seed: 99, Virtual: true, CostScale: 1,
	})
	th := e.Thread(0)
	th.Register()
	th.BeginWork()
	defer th.ExitWork()
	a := th.Alloc(64)
	b.ResetTimer()
	th.TryTx(htm.TxNormal, func() {
		_ = th.Load64(a)
		th.Suspend()
		for i := 0; i < b.N; i++ {
			_ = th.Load64(a) // suspended: non-transactional, tx still live
		}
		th.Resume()
	})
}

// BenchmarkHotpathSTM measures the NOrec software-transaction fast path
// (8 loads + 8 stores per transaction; ns per access).
func BenchmarkHotpathSTM(b *testing.B) {
	_, th := hotpathEngine(true)
	defer th.ExitWork()
	a := th.Alloc(16 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i += 16 {
		th.TrySTM(func() {
			for j := 0; j < 8; j++ {
				v := th.Load64(a + uint64(j*64))
				th.Store64(a+uint64((8+j)*64), v+1)
			}
		})
	}
}

// BenchmarkHotpathSweepSmall runs one full harness sweep cell (kmeans-low on
// Intel, 4 threads, test scale) per iteration: the end-to-end number the
// figure sweeps are made of.
func BenchmarkHotpathSweepSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(harness.RunSpec{
			Platform: platform.IntelCore, Benchmark: "kmeans-low",
			Threads: 4, Scale: stamp.ScaleTest, Repeats: 1, Seed: 42,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
