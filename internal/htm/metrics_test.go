package htm

import (
	"sync"
	"testing"

	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
)

// metricsEngine builds a 1-thread zEC12 engine with a live metrics handle
// attached (CostScale 0, cache-fetch aborts off: transactions only abort
// when the test asks them to).
func metricsEngine(t *testing.T, threads int) (*Engine, *obs.EngineMetrics) {
	t.Helper()
	reg := obs.NewRegistry()
	met := obs.NewEngineMetrics(reg, NumReasons, 3)
	e := New(platform.New(platform.ZEC12), Config{
		Threads: threads, SpaceSize: 8 << 20, Seed: 7, CostScale: 0,
		DisableCacheFetchAborts: true, Metrics: met,
	})
	return e, met
}

// TestEngineMetricsPublication drives every metrics publication point —
// HTM begin/commit/rollback, the STM boundaries, and the mode-switch feed —
// and checks the registry totals against what actually ran.
func TestEngineMetricsPublication(t *testing.T) {
	e, met := metricsEngine(t, 1)
	th := e.Thread(0)
	a := th.Alloc(64)

	// HTM: one committed transaction, one explicit abort.
	if ok, _ := th.TryTx(TxNormal, func() { th.Store64(a, 1) }); !ok {
		t.Fatal("uncontended HTM tx aborted")
	}
	if ok, _ := th.TryTx(TxNormal, func() { th.Abort() }); ok {
		t.Fatal("explicitly aborted HTM tx committed")
	}

	// STM: same pair through the NOrec path.
	if ok, _ := th.TrySTM(func() { th.Store64(a, 2) }); !ok {
		t.Fatal("uncontended STM tx aborted")
	}
	if ok, _ := th.TrySTM(func() { th.Abort() }); ok {
		t.Fatal("explicitly aborted STM tx committed")
	}

	// Mode switches feed the counter even with tracing off (the adaptive
	// runtime reports transitions through TraceEvent with Reason = to-mode).
	th.TraceEvent(obs.Event{Kind: obs.KindModeSwitch, Reason: 1})

	if got := met.Begins.Value(); got != 4 {
		t.Errorf("begins = %d, want 4", got)
	}
	if got := met.Commits.Value(); got != 2 {
		t.Errorf("commits = %d, want 2", got)
	}
	if got := met.Aborts.Value(); got != 2 {
		t.Errorf("aborts = %d, want 2", got)
	}
	if got := met.ByReason[ReasonExplicit].Value(); got != 2 {
		t.Errorf("explicit-reason aborts = %d, want 2", got)
	}
	if got := met.ByMode[1].Value(); got != 1 {
		t.Errorf("mode switches to mode 1 = %d, want 1", got)
	}
}

// TestEngineMetricsMatchStats cross-checks the registry against the
// engine's own counters under real contention: whatever mix of commits and
// aborts eight threads produce, both accountings must agree exactly.
func TestEngineMetricsMatchStats(t *testing.T) {
	e, met := metricsEngine(t, 8)
	counter := e.Thread(0).Alloc(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			for j := 0; j < 200; j++ {
				for {
					ok, _ := th.TryTx(TxNormal, func() {
						th.Store64(counter, th.Load64(counter)+1)
					})
					if ok {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if got := met.Begins.Value(); got != st.Begins {
		t.Errorf("registry begins = %d, engine stats = %d", got, st.Begins)
	}
	if got := met.Commits.Value(); got != st.Commits {
		t.Errorf("registry commits = %d, engine stats = %d", got, st.Commits)
	}
	if got := met.Aborts.Value(); got != st.Aborts {
		t.Errorf("registry aborts = %d, engine stats = %d", got, st.Aborts)
	}
	for r := 0; r < NumReasons; r++ {
		if got := met.ByReason[r].Value(); got != st.AbortsByReason[r] {
			t.Errorf("registry %v aborts = %d, engine stats = %d", Reason(r), got, st.AbortsByReason[r])
		}
	}
}
