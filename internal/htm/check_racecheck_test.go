//go:build racecheck

package htm

import (
	"testing"

	"htmcmp/internal/platform"
)

// TestStatsAssertsQuiescence pins the racecheck-build footgun guard: Stats
// reads owner-written per-thread counters without synchronisation, so
// calling it with a transaction in flight must panic under -tags racecheck
// (and is a silent data race without it — poll Aborts instead).
func TestStatsAssertsQuiescence(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)

	ok, _ := th.TryTx(TxNormal, func() {
		th.Store64(a, 1)
		defer func() {
			if r := recover(); r == nil {
				t.Error("Stats did not panic with a transaction in flight")
			}
		}()
		e.Stats()
	})
	if !ok {
		t.Fatal("transaction aborted")
	}

	// Quiescent again: Stats must work, and Aborts is always safe.
	if st := e.Stats(); st.Commits != 1 {
		t.Errorf("Commits = %d, want 1", st.Commits)
	}
	if e.Aborts() != 0 {
		t.Errorf("Aborts() = %d, want 0", e.Aborts())
	}
}
