package htm

import (
	"sync"
	"testing"

	"htmcmp/internal/platform"
)

func stmEngine(t *testing.T, threads int) *Engine {
	t.Helper()
	return New(platform.New(platform.ZEC12), Config{
		Threads: threads, SpaceSize: 8 << 20, Seed: 21, CostScale: 0,
		DisableCacheFetchAborts: true,
	})
}

func TestSTMCommitAndRollback(t *testing.T) {
	e := stmEngine(t, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 5)

	ok, _ := th.TrySTM(func() {
		th.Store64(a, 9)
		if got := th.Load64(a); got != 9 {
			t.Errorf("read-own-write = %d", got)
		}
	})
	if !ok {
		t.Fatal("uncontended STM tx aborted")
	}
	if got := th.Load64(a); got != 9 {
		t.Errorf("after commit = %d", got)
	}

	ok, ab := th.TrySTM(func() {
		th.Store64(a, 77)
		th.Abort()
	})
	if ok {
		t.Fatal("explicitly aborted STM tx committed")
	}
	if ab.Reason != ReasonExplicit {
		t.Errorf("abort reason = %v", ab.Reason)
	}
	if got := th.Load64(a); got != 9 {
		t.Errorf("store leaked from aborted STM tx: %d", got)
	}
}

func TestSTMSubWordAccesses(t *testing.T) {
	e := stmEngine(t, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	ok, _ := th.TrySTM(func() {
		th.Store8(a+3, 0xAB)
		th.Store32(a+12, 0xDEADBEEF)
		th.StoreFloat64(a+16, 2.5)
		if th.Load8(a+3) != 0xAB || th.Load32(a+12) != 0xDEADBEEF || th.LoadFloat64(a+16) != 2.5 {
			t.Error("sub-word read-own-write mismatch")
		}
	})
	if !ok {
		t.Fatal("tx aborted")
	}
	if th.Load8(a+3) != 0xAB || th.Load32(a+12) != 0xDEADBEEF || th.LoadFloat64(a+16) != 2.5 {
		t.Error("sub-word values lost after commit")
	}
	// Neighbouring bytes untouched.
	if th.Load8(a+2) != 0 || th.Load8(a+4) != 0 {
		t.Error("sub-word store clobbered neighbours")
	}
}

func TestSTMValidationDetectsConflict(t *testing.T) {
	e := stmEngine(t, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(64)
	t0.Store64(a, 1)

	read := make(chan struct{})
	wrote := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var firstAttemptAborted bool
	attempt := 0
	go func() {
		defer wg.Done()
		for {
			ok, _ := t0.TrySTM(func() {
				attempt++
				v := t0.Load64(a)
				if attempt == 1 {
					close(read)
					<-wrote
				}
				// A second load after the writer's commit must trigger
				// NOrec validation and abort attempt 1.
				_ = t0.Load64(a + 8)
				t0.Store64(a+16, v)
			})
			if ok {
				break
			}
			firstAttemptAborted = true
		}
	}()
	<-read
	ok, _ := t1.TrySTM(func() { t1.Store64(a, 42) })
	if !ok {
		t.Error("writer aborted unexpectedly")
	}
	close(wrote)
	wg.Wait()
	if !firstAttemptAborted {
		t.Error("stale read survived a concurrent committed write (validation broken)")
	}
	// The retried tx must have seen the new value.
	if got := t0.Load64(a + 16); got != 42 {
		t.Errorf("retried tx stored %d, want 42", got)
	}
}

func TestSTMCounterStress(t *testing.T) {
	e := stmEngine(t, 8)
	counter := e.Thread(0).Alloc(64)
	const perThread = 400
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			for j := 0; j < perThread; j++ {
				for {
					ok, _ := th.TrySTM(func() {
						th.Store64(counter, th.Load64(counter)+1)
					})
					if ok {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.Thread(0).Load64(counter); got != 8*perThread {
		t.Errorf("counter = %d, want %d", got, 8*perThread)
	}
}

func TestSTMNoCapacityLimit(t *testing.T) {
	// 1000 store lines would overflow every HTM model; NOrec must commit.
	e := stmEngine(t, 1)
	th := e.Thread(0)
	n := 1000
	a := th.Alloc(n * e.LineSize())
	ok, ab := th.TrySTM(func() {
		for i := 0; i < n; i++ {
			th.Store64(a+uint64(i*e.LineSize()), uint64(i))
		}
	})
	if !ok {
		t.Fatalf("large STM tx aborted: %+v", ab)
	}
	for i := 0; i < n; i++ {
		if th.Load64(a+uint64(i*e.LineSize())) != uint64(i) {
			t.Fatalf("write %d lost", i)
		}
	}
}

func TestSTMWordGranularityNoFalseConflicts(t *testing.T) {
	// Two threads repeatedly write ADJACENT WORDS of one cache line: every
	// HTM model conflicts (false sharing); NOrec's value-based validation
	// must commit both with zero aborts when writes do not overlap.
	e := stmEngine(t, 2)
	a := e.Thread(0).Alloc(64)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			addr := a + uint64(tid*8)
			for j := 0; j < 300; j++ {
				for {
					ok, _ := th.TrySTM(func() {
						th.Store64(addr, th.Load64(addr)+1)
					})
					if ok {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	t0 := e.Thread(0)
	if t0.Load64(a) != 300 || t0.Load64(a+8) != 300 {
		t.Errorf("counters = %d,%d want 300,300", t0.Load64(a), t0.Load64(a+8))
	}
	// Value-based validation can still abort on timing, but word-disjoint
	// writes commit exactly; correctness is the invariant here.
}

func TestSTMAllocReclaimOnAbort(t *testing.T) {
	e := stmEngine(t, 1)
	th := e.Thread(0)
	before := e.Space().Used()
	th.TrySTM(func() {
		th.Alloc(256)
		th.Abort()
	})
	if after := e.Space().Used(); after != before {
		t.Errorf("aborted STM tx leaked %d bytes", after-before)
	}
}

func TestSTMNestedPanics(t *testing.T) {
	e := stmEngine(t, 1)
	th := e.Thread(0)
	defer func() {
		if recover() == nil {
			t.Error("nested STM begin did not panic")
		}
	}()
	th.TrySTM(func() {
		th.TrySTM(func() {})
	})
}
