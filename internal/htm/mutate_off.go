//go:build !mutate_isolation

package htm

// mutateWriteThrough enables the seeded write-set-isolation bug used by the
// verification mutation smoke test (internal/verify): transactional stores
// write the shared arena directly instead of the private line buffer, so
// concurrent threads observe speculative state, aborted stores are never
// rolled back, and commit reverts the written lines to their pre-store
// images. Off in normal builds; `go test -tags mutate_isolation` turns it
// on to prove the serializability oracle actually fails when the engine is
// wrong.
const mutateWriteThrough = false
