package htm

import (
	"sync"
	"testing"

	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
)

// newTracedEngine is newTestEngine with an obs tracer attached.
func newTracedEngine(t *testing.T, k platform.Kind, threads int) (*Engine, *obs.Tracer) {
	t.Helper()
	tr := obs.NewTracer(threads, 1<<10)
	e := New(platform.New(k), Config{
		Threads:                 threads,
		SpaceSize:               1 << 20,
		Seed:                    42,
		CostScale:               0,
		DisableCacheFetchAborts: true,
		DisablePrefetch:         true,
		Tracer:                  tr,
	})
	return e, tr
}

func TestTraceRecordsBoundaryEvents(t *testing.T) {
	e, tr := newTracedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(3 * e.LineSize())

	// One committed transaction touching 2 read lines + 1 written line,
	// then one explicit abort.
	ok, _ := th.TryTx(TxNormal, func() {
		_ = th.Load64(a)
		_ = th.Load64(a + uint64(e.LineSize()))
		th.Store64(a+uint64(2*e.LineSize()), 1)
	})
	if !ok {
		t.Fatal("transaction aborted unexpectedly")
	}
	th.TryTx(TxNormal, func() { th.Abort() })

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("recorded %d events, want 4 (begin, commit, begin, abort): %+v", len(evs), evs)
	}
	wantKinds := []obs.Kind{obs.KindBegin, obs.KindCommit, obs.KindBegin, obs.KindAbort}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.Thread != 0 {
			t.Fatalf("event %d thread = %d, want 0", i, ev.Thread)
		}
	}
	commit := evs[1]
	if commit.ReadLines != 2 || commit.WriteLines != 1 {
		t.Errorf("commit footprint = %d read, %d write lines; want 2, 1",
			commit.ReadLines, commit.WriteLines)
	}
	if commit.Line != obs.NoLine || commit.Aborter != obs.NoThread {
		t.Errorf("commit carries conflict attribution: %+v", commit)
	}
	abort := evs[3]
	if got := Reason(abort.Reason); got != ReasonExplicit {
		t.Errorf("abort reason code = %v, want explicit", got)
	}
	if abort.Line != obs.NoLine || abort.Aborter != obs.NoThread {
		t.Errorf("explicit abort should have no line/aborter: %+v", abort)
	}
	if abort.Retry != 0 || evs[2].Retry != 0 {
		t.Errorf("first attempts should have retry depth 0")
	}
}

func TestTraceRetryDepthAdvances(t *testing.T) {
	e, tr := newTracedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	attempt := 0
	for {
		ok, _ := th.TryTx(TxNormal, func() {
			if attempt < 3 {
				attempt++
				th.Abort()
			}
		})
		if ok {
			break
		}
	}
	var aborts, commits []obs.Event
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.KindAbort:
			aborts = append(aborts, ev)
		case obs.KindCommit:
			commits = append(commits, ev)
		}
	}
	if len(aborts) != 3 || len(commits) != 1 {
		t.Fatalf("got %d aborts, %d commits; want 3, 1", len(aborts), len(commits))
	}
	for i, ev := range aborts {
		if int(ev.Retry) != i {
			t.Errorf("abort %d retry depth = %d, want %d", i, ev.Retry, i)
		}
	}
	if commits[0].Retry != 3 {
		t.Errorf("commit retry depth = %d, want 3 (after three aborts)", commits[0].Retry)
	}
}

func TestTraceAttributesConflictLineAndAborter(t *testing.T) {
	e, tr := newTracedEngine(t, platform.IntelCore, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(64)
	line := uint32(a) / uint32(e.LineSize())

	t0Read := make(chan struct{})
	t1Done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t0.TryTx(TxNormal, func() {
			_ = t0.Load64(a)
			close(t0Read)
			<-t1Done
			_ = t0.Load64(a) // doomed: takes the abort here
		})
	}()
	<-t0Read
	if ok, _ := t1.TryTx(TxNormal, func() { t1.Store64(a, 5) }); !ok {
		t.Fatal("writer should have committed")
	}
	close(t1Done)
	wg.Wait()

	var abort *obs.Event
	for _, ev := range tr.Ring(0).Events() {
		if ev.Kind == obs.KindAbort {
			cp := ev
			abort = &cp
		}
	}
	if abort == nil {
		t.Fatal("no abort event recorded for the doomed reader")
	}
	if got := Reason(abort.Reason); got != ReasonConflict {
		t.Errorf("abort reason = %v, want conflict", got)
	}
	if abort.Line != line {
		t.Errorf("abort line = %d, want %d", abort.Line, line)
	}
	if abort.Aborter != 1 {
		t.Errorf("aborter = %d, want thread 1", abort.Aborter)
	}
}

// TestTraceEventCountsMatchStats cross-checks the event stream against the
// engine's aggregate counters under a contended multi-threaded run.
func TestTraceEventCountsMatchStats(t *testing.T) {
	const threads = 4
	e, tr := newTracedEngine(t, platform.IntelCore, threads)
	setup := e.Thread(0)
	a := setup.Alloc(64)

	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		th := e.Thread(i)
		th.Register()
	}
	for i := 0; i < threads; i++ {
		th := e.Thread(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			th.BeginWork()
			defer th.ExitWork()
			for n := 0; n < 200; n++ {
				for {
					ok, _ := th.TryTx(TxNormal, func() {
						th.Store64(a, th.Load64(a)+1)
					})
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	st := e.Stats()
	rep := obs.Aggregate(tr.Events(), obs.ReportOptions{})
	if rep.Begins != st.Begins || rep.Commits != st.Commits || rep.Aborts != st.Aborts {
		t.Fatalf("event counts (b/c/a %d/%d/%d) != stats (%d/%d/%d)",
			rep.Begins, rep.Commits, rep.Aborts, st.Begins, st.Commits, st.Aborts)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events in a small run", tr.Dropped())
	}
	if got := setup.Load64(a); got != 200*threads {
		t.Fatalf("counter = %d, want %d", got, 200*threads)
	}
}
