package htm

import (
	"sync"
	"testing"

	"htmcmp/internal/platform"
)

// runVirtualCounters runs a counter workload under the virtual scheduler and
// returns (maxClock, stats). With shared=false every thread owns a private
// counter line; with shared=true all threads hammer one line.
func runVirtualCounters(t *testing.T, threads, perThread int, shared bool, seed uint64) (uint64, Stats) {
	t.Helper()
	e := New(platform.New(platform.IntelCore), Config{
		Threads: threads, SpaceSize: 4 << 20, Seed: seed, Virtual: true, CostScale: 1,
		DisablePrefetch: true,
	})
	base := e.Thread(0).Alloc(threads * 256)
	for i := 0; i < threads; i++ {
		e.Thread(i).Register()
	}
	e.ResetClocks()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			th.BeginWork()
			defer th.ExitWork()
			addr := base
			if !shared {
				addr += uint64(tid * 256)
			}
			for j := 0; j < perThread; j++ {
				th.Work(50)
				for {
					ok, _ := th.TryTx(TxNormal, func() {
						th.Store64(addr, th.Load64(addr)+1)
					})
					if ok {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	return e.MaxClock(), e.Stats()
}

func TestVirtualDisjointScalesPerfectly(t *testing.T) {
	c1, _ := runVirtualCounters(t, 1, 500, false, 7)
	c4, _ := runVirtualCounters(t, 4, 500, false, 7)
	// Independent threads: the 4-thread region lasts exactly as long as one
	// thread's own work.
	if c4 != c1 {
		t.Errorf("4-thread clock %d != 1-thread clock %d for disjoint work", c4, c1)
	}
}

func TestVirtualSharedCounterConflictsAndStaysExact(t *testing.T) {
	_, st := runVirtualCounters(t, 4, 300, true, 7)
	if st.Commits != 4*300 {
		t.Errorf("commits = %d, want %d", st.Commits, 4*300)
	}
	if st.Aborts == 0 {
		t.Error("shared-counter run produced no conflicts: threads are not overlapping in virtual time")
	}
}

func TestVirtualDeterminism(t *testing.T) {
	cA, sA := runVirtualCounters(t, 4, 300, true, 11)
	cB, sB := runVirtualCounters(t, 4, 300, true, 11)
	if cA != cB {
		t.Errorf("clocks differ across identical runs: %d vs %d", cA, cB)
	}
	if sA != sB {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", sA, sB)
	}
}

func TestVirtualClockMonotoneWithContention(t *testing.T) {
	cPriv, _ := runVirtualCounters(t, 4, 300, false, 13)
	cShared, _ := runVirtualCounters(t, 4, 300, true, 13)
	if cShared <= cPriv {
		t.Errorf("contended run (%d) not slower than private run (%d)", cShared, cPriv)
	}
}

func TestVirtualStartupBarrierIndependentOfArrival(t *testing.T) {
	// Register threads, then start their goroutines in adversarial order;
	// results must match a normal run.
	run := func(reverse bool) (uint64, Stats) {
		e := New(platform.New(platform.ZEC12), Config{
			Threads: 4, SpaceSize: 4 << 20, Seed: 3, Virtual: true, CostScale: 1,
			DisableCacheFetchAborts: true,
		})
		base := e.Thread(0).Alloc(1024)
		for i := 0; i < 4; i++ {
			e.Thread(i).Register()
		}
		e.ResetClocks()
		var wg sync.WaitGroup
		order := []int{0, 1, 2, 3}
		if reverse {
			order = []int{3, 2, 1, 0}
		}
		for _, tid := range order {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := e.Thread(tid)
				th.BeginWork()
				defer th.ExitWork()
				for j := 0; j < 200; j++ {
					for {
						ok, _ := th.TryTx(TxNormal, func() {
							th.Store64(base, th.Load64(base)+1)
						})
						if ok {
							break
						}
					}
				}
			}(tid)
		}
		wg.Wait()
		return e.MaxClock(), e.Stats()
	}
	cA, sA := run(false)
	cB, sB := run(true)
	if cA != cB || sA != sB {
		t.Errorf("schedule depends on goroutine launch order: clock %d vs %d", cA, cB)
	}
}

func TestVirtualBarrierSynchronisesClocks(t *testing.T) {
	e := New(platform.New(platform.IntelCore), Config{
		Threads: 3, SpaceSize: 1 << 20, Seed: 1, Virtual: true, CostScale: 0,
	})
	bar := e.NewBarrier(3)
	for i := 0; i < 3; i++ {
		e.Thread(i).Register()
	}
	var wg sync.WaitGroup
	after := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			th.BeginWork()
			defer th.ExitWork()
			th.Work(100 * (tid + 1))
			bar.Wait(th)
			after[tid] = th.Clock()
		}(i)
	}
	wg.Wait()
	if after[0] != after[1] || after[1] != after[2] {
		t.Errorf("clocks after barrier diverge: %v", after)
	}
	if after[0] < 300 {
		t.Errorf("barrier clock %d below slowest party's 300", after[0])
	}
}

func TestVirtualDeadlockDetection(t *testing.T) {
	e := New(platform.New(platform.IntelCore), Config{
		Threads: 2, SpaceSize: 1 << 20, Seed: 1, Virtual: true,
	})
	// A 3-party barrier with only 2 threads: both block, nobody can wake
	// them. The scheduler must panic rather than hang.
	bar := e.NewBarrier(3)
	e.Thread(0).Register()
	e.Thread(1).Register()
	done := make(chan interface{}, 2)
	for i := 0; i < 2; i++ {
		go func(tid int) {
			defer func() { done <- recover() }()
			th := e.Thread(tid)
			th.BeginWork()
			bar.Wait(th)
		}(i)
	}
	if r := <-done; r == nil {
		t.Fatal("expected a deadlock panic from the virtual scheduler")
	}
}

func TestVirtualSMTDivisorStillApplies(t *testing.T) {
	// Virtual mode must preserve the SMT capacity model: two POWER8
	// threads on one core halve the TMCAM.
	e := New(platform.New(platform.POWER8), Config{
		Threads: 12, SpaceSize: 4 << 20, Seed: 1, Virtual: true, CostScale: 0,
	})
	t0, t6 := e.Thread(0), e.Thread(6)
	if t0.Core() != t6.Core() {
		t.Fatal("threads 0 and 6 should share a core")
	}
	a := t0.Alloc(64 * e.LineSize())
	t0.Register()
	t6.Register()
	var wg sync.WaitGroup
	wg.Add(2)
	results := make([]bool, 2)
	go func() {
		defer wg.Done()
		t0.BeginWork()
		defer t0.ExitWork()
		ok, _ := t0.TryTx(TxNormal, func() {
			for i := 0; i < 40; i++ {
				_ = t0.Load64(a + uint64(i*e.LineSize()))
			}
			t0.Work(10000) // stay in-tx while the sibling runs
		})
		results[0] = ok
	}()
	go func() {
		defer wg.Done()
		t6.BeginWork()
		defer t6.ExitWork()
		t6.Work(500) // let t0 build its read set first
		ok, _ := t6.TryTx(TxNormal, func() {
			for i := 40; i < 80; i++ {
				_ = t6.Load64(a + uint64(i*e.LineSize()))
			}
		})
		results[1] = ok
	}()
	wg.Wait()
	if results[0] && results[1] {
		t.Error("both 40-line transactions on one SMT core committed; capacity sharing not applied")
	}
}
