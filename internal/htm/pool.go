package htm

import "sync"

// Line-table pooling. The line-ownership table is the engine's single
// largest allocation — a 64 MiB space at 64-byte lines is one million
// lineRecs (~40 MB) — and the sweep constructs two engines (sequential +
// parallel baseline) per cell, so without reuse a 301-cell sweep churns
// tens of GB through the garbage collector. Tables are pooled per length;
// getLineTable fully re-initialises every record, so a recycled table is
// indistinguishable from a fresh one regardless of what state the previous
// engine left behind.

var lineTablePools sync.Map // nLines -> *sync.Pool of []lineRec

// getLineTable returns a line table of exactly n records, every record in
// its quiescent state (no writer, no readers).
func getLineTable(n int) []lineRec {
	var ls []lineRec
	if p, ok := lineTablePools.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			ls = v.([]lineRec)
		}
	}
	if ls == nil {
		ls = make([]lineRec, n)
	}
	for i := range ls {
		ls[i] = lineRec{writer: -1}
	}
	return ls
}

// putLineTable returns a table to its pool.
func putLineTable(ls []lineRec) {
	if len(ls) == 0 {
		return
	}
	p, ok := lineTablePools.Load(len(ls))
	if !ok {
		p, _ = lineTablePools.LoadOrStore(len(ls), &sync.Pool{})
	}
	p.(*sync.Pool).Put(ls)
}

// Release returns the engine's line table to the package pool and detaches
// the simulated Space so the caller can recycle it (via mem.Space.Reset).
// Call only once, after all threads are quiescent and every needed result
// (Stats, MaxClock, ...) has been read; the engine and its Threads are
// unusable afterwards. Optional: an un-Released engine is simply collected
// by the GC like before.
func (e *Engine) Release() {
	ls := e.lines
	e.lines = nil
	e.space = nil
	for _, t := range e.threads {
		if t != nil {
			t.lines = nil
			t.data = nil
		}
	}
	putLineTable(ls)
}
