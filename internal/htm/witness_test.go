package htm

import (
	"testing"

	"htmcmp/internal/platform"
)

// newWitnessedEngine returns a single-purpose engine with a started witness
// attached, plus the witness.
func newWitnessedEngine(t *testing.T, k platform.Kind, threads int) (*Engine, *Witness) {
	t.Helper()
	w := NewWitness()
	e := New(platform.New(k), Config{
		Threads:                 threads,
		SpaceSize:               1 << 20,
		Seed:                    42,
		CostScale:               0,
		DisableCacheFetchAborts: true,
		DisablePrefetch:         true,
		Witness:                 w,
	})
	return e, w
}

// TestWitnessTxRecordContents pins the shape of a committed transaction's
// record: one record, tx kind, a read of the loaded line at its pre-commit
// version, and the exact published bytes for the stored line.
func TestWitnessTxRecordContents(t *testing.T) {
	e, w := newWitnessedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(2 * e.LineSize())
	b := a + uint64(e.LineSize())
	th.Store64(a, 7)
	w.Start()

	ok, _ := th.TryTx(TxNormal, func() {
		_ = th.Load64(a)
		th.Store64(b, 99)
	})
	if !ok {
		t.Fatal("single-threaded transaction aborted")
	}

	log := w.Log()
	if len(log.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(log.Records))
	}
	r := log.Records[0]
	if r.Kind != WitnessTx {
		t.Fatalf("record kind = %v, want WitnessTx", r.Kind)
	}
	if r.Seq == 0 {
		t.Fatal("commit seq must be > 0")
	}
	lineA := uint32(a >> uint(e.lineShift))
	lineB := uint32(b >> uint(e.lineShift))
	foundRead := false
	for _, rd := range r.Reads {
		if rd.Line == lineA {
			foundRead = true
			if rd.Ver != 0 {
				t.Errorf("read version = %d, want 0 (first access)", rd.Ver)
			}
			if want := LineSum(log.Initial, lineA, log.LineSize); rd.Sum != want {
				t.Errorf("read sum = %#x, want initial-snapshot sum %#x", rd.Sum, want)
			}
		}
	}
	if !foundRead {
		t.Fatalf("no witnessed read of line %d in %+v", lineA, r.Reads)
	}
	foundWrite := false
	for _, wr := range r.Writes {
		if wr.Line == lineB {
			foundWrite = true
			if len(wr.Data) < 8 {
				t.Fatalf("write image too short: %d bytes", len(wr.Data))
			}
			var v uint64
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(wr.Data[int(b-wr.Addr)+i])
			}
			if v != 99 {
				t.Errorf("published image decodes to %d, want 99", v)
			}
		}
	}
	if !foundWrite {
		t.Fatalf("no witnessed write of line %d in %+v", lineB, r.Writes)
	}
}

// TestWitnessAbortedTxLeavesNoRecord: an aborted transaction must not
// contribute a commit record (its wasted seq number is tolerated by
// replay), and the next committed transaction must still record.
func TestWitnessAbortedTxLeavesNoRecord(t *testing.T) {
	e, w := newWitnessedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	w.Start()

	ok, _ := th.TryTx(TxNormal, func() {
		th.Store64(a, 99)
		th.Abort()
	})
	if ok {
		t.Fatal("transaction with explicit abort committed")
	}
	if n := len(w.Log().Records); n != 0 {
		t.Fatalf("aborted tx left %d records, want 0", n)
	}

	if ok, _ := th.TryTx(TxNormal, func() { th.Store64(a, 1) }); !ok {
		t.Fatal("follow-up transaction aborted")
	}
	log := w.Log()
	if len(log.Records) != 1 || log.Records[0].Kind != WitnessTx {
		t.Fatalf("follow-up commit not recorded: %+v", log.Records)
	}
}

// TestWitnessNonTxStoreRecord: a plain store outside any transaction gets
// its own single-write record with the stored bytes.
func TestWitnessNonTxStoreRecord(t *testing.T) {
	e, w := newWitnessedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	w.Start()

	th.Store64(a, 0xabcd)

	log := w.Log()
	if len(log.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(log.Records))
	}
	r := log.Records[0]
	if r.Kind != WitnessNonTx {
		t.Fatalf("record kind = %v, want WitnessNonTx", r.Kind)
	}
	if len(r.Reads) != 0 || len(r.Writes) != 1 {
		t.Fatalf("non-tx record shape: %d reads / %d writes, want 0/1",
			len(r.Reads), len(r.Writes))
	}
	if r.Writes[0].Addr != a || len(r.Writes[0].Data) != 8 {
		t.Fatalf("non-tx write = addr %#x len %d, want addr %#x len 8",
			r.Writes[0].Addr, len(r.Writes[0].Data), a)
	}
}

// TestWitnessVersionAdvances: a committed write bumps the line version, so
// a later transaction's read of the same line carries the new version.
func TestWitnessVersionAdvances(t *testing.T) {
	e, w := newWitnessedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	w.Start()

	if ok, _ := th.TryTx(TxNormal, func() { th.Store64(a, 1) }); !ok {
		t.Fatal("writer tx aborted")
	}
	if ok, _ := th.TryTx(TxNormal, func() { _ = th.Load64(a) }); !ok {
		t.Fatal("reader tx aborted")
	}

	log := w.Log()
	if len(log.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(log.Records))
	}
	reader := log.Records[1]
	line := uint32(a >> uint(e.lineShift))
	for _, rd := range reader.Reads {
		if rd.Line == line {
			if rd.Ver != 1 {
				t.Fatalf("read version after one commit = %d, want 1", rd.Ver)
			}
			return
		}
	}
	t.Fatalf("reader tx did not witness line %d: %+v", line, reader.Reads)
}

// TestWitnessRestartResetsLog: Start() begins a fresh epoch — earlier
// records are dropped and the initial snapshot is retaken.
func TestWitnessRestartResetsLog(t *testing.T) {
	e, w := newWitnessedEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	w.Start()
	th.Store64(a, 5)
	if n := len(w.Log().Records); n != 1 {
		t.Fatalf("first epoch: %d records, want 1", n)
	}

	w.Start()
	log := w.Log()
	if n := len(log.Records); n != 0 {
		t.Fatalf("after restart: %d records, want 0", n)
	}
	if got := LineSum(log.Initial, uint32(a>>uint(e.lineShift)), log.LineSize); got !=
		LineSum(log.Final, uint32(a>>uint(e.lineShift)), log.LineSize) {
		t.Fatal("restart snapshot does not match current arena")
	}
}
