package htm

import (
	"htmcmp/internal/mem"
)

// Hybrid-NOrec coexistence: letting hardware transactions, NOrec software
// transactions and the irrevocable global lock run concurrently over the
// same memory — the execution model behind the adaptive runtime
// (internal/adapt), after Hybrid NOrec (Dalessandro et al., reference [15]'s
// successor design).
//
// The two TM layers are not naturally isolated from each other: STM commits
// write memory directly, bypassing the line-ownership table (so HTM readers
// of those lines are never doomed), and HTM commits do not advance the NOrec
// sequence lock (so STM readers never revalidate). Three fences close the
// gap once EnableHybridSTM is on:
//
//  1. Gate subscription: every adaptive hardware transaction transactionally
//     reads a dedicated gate line (SubscribeHybridGate), becoming a line-table
//     reader of it.
//  2. STM writer commits, while they hold the sequence lock, doom every gate
//     subscriber (doomHybridGateReaders) — aborting all in-flight hardware
//     transactions, whose reads may predate the write-back.
//  3. Hardware writer commits acquire the sequence lock around their
//     publication (hybridSeqAcquire/hybridSeqRelease in commit), so STM
//     transactions observe the sequence move and revalidate by value.
//     Acquisition happens while the transaction is still doomable: if an STM
//     writer holds the lock, the spinning hardware committer is aborted
//     through the gate rather than committing stale reads.
//
// The lock side needs no line-table tricks: adaptive software transactions
// subscribe to the global lock word with an ordinary (value-logged) STM
// load, and lock acquisition calls Engine.STMFence after writing the lock
// word, forcing every in-flight software transaction to revalidate and
// observe the held lock.
//
// Hybrid execution requires the virtual-time scheduler: STM write-back and
// HTM publication write the arena without per-line locks, which is safe
// under the single-runner baton (no yields while the sequence lock is odd)
// but would be a torn-read race under real concurrency. EnableHybridSTM
// enforces this.
//
// With EnableHybridSTM off (the default), the only cost is one boolean check
// per hardware writer commit — static-policy runs are byte-identical to the
// pre-hybrid engine (pinned by the golden determinism test).

// hybridFenceCost is the virtual-time cost in cycles of one sequence-lock
// fence operation (acquire or bump), scaled like the platform costs.
const hybridFenceCost = 4

// EnableHybridSTM switches the engine into hybrid HTM/STM mode: it allocates
// the gate line adaptive hardware transactions subscribe to and arms the
// commit-time fences described above. It returns the gate address
// (idempotent). Requires the virtual-time scheduler.
func (e *Engine) EnableHybridSTM() mem.Addr {
	if e.sched == nil {
		panic("htm: hybrid HTM/STM execution requires the virtual-time scheduler (Config.Virtual)")
	}
	// Serialised: each worker goroutine's executor constructor calls this.
	e.hybridMu.Lock()
	defer e.hybridMu.Unlock()
	if e.hybrid.Load() {
		return e.hybridGate
	}
	// The gate owns a full conflict-detection line so subscription never
	// falsely conflicts with program data.
	a := e.space.AllocAligned(e.lineSize, e.lineSize)
	e.space.Label(a, e.lineSize, "tm/hybrid-gate")
	e.hybridGate = a
	e.hybrid.Store(true) // publishes hybridGate: store after, load before
	return a
}

// HybridEnabled reports whether EnableHybridSTM has been called.
func (e *Engine) HybridEnabled() bool { return e.hybrid.Load() }

// HybridGate returns the gate line address (mem.Nil before EnableHybridSTM).
func (e *Engine) HybridGate() mem.Addr { return e.hybridGate }

// SubscribeHybridGate puts the hybrid gate line into the current hardware
// transaction's read set. The adaptive runtime calls it in every hardware
// transaction's prologue; a committing STM writer dooms all subscribers.
func (t *Thread) SubscribeHybridGate() {
	if !t.eng.hybrid.Load() {
		panic("htm: SubscribeHybridGate without EnableHybridSTM")
	}
	_ = t.Load64(t.eng.hybridGate)
}

// STMFence forces every in-flight software transaction to revalidate: it
// bumps the NOrec sequence lock by two (even to even), spinning out any
// writer mid-commit. The adaptive runtime calls it after writing the global
// lock word, so software transactions — which subscribe to the lock word by
// value — observe the held lock at their next load or commit and abort.
func (e *Engine) STMFence(t *Thread) {
	for {
		s := e.stmSeq.Load()
		if s&1 == 0 && e.stmSeq.CompareAndSwap(s, s+2) {
			break
		}
		t.Pause(4)
	}
	t.work(e.scaledCost(hybridFenceCost))
}

// hybridSeqAcquire takes the NOrec sequence lock for a hardware writer
// commit (fence 3 above). Called before the transaction becomes committing:
// while spinning here the thread is still doomable through the gate, which
// is what makes waiting on an STM writer safe.
func (t *Thread) hybridSeqAcquire() {
	for {
		s := t.eng.stmSeq.Load()
		if s&1 == 0 && t.eng.stmSeq.CompareAndSwap(s, s+1) {
			t.hybridSeq = s
			break
		}
		t.Pause(4)
	}
	t.work(t.eng.scaledCost(hybridFenceCost))
}

// hybridSeqRelease releases the sequence lock taken by hybridSeqAcquire,
// advancing it past the publication so software transactions revalidate.
func (t *Thread) hybridSeqRelease() {
	t.eng.stmSeq.Store(t.hybridSeq + 2)
}

// doomHybridGateReaders aborts every hardware transaction subscribed to the
// gate line (fence 2 above). Called by STM writer commits while the sequence
// lock is held: subscribers' transactional reads may predate the write-back
// this commit is publishing, so none of them may commit. A subscriber that
// already reached the committing state would hold the sequence lock itself
// (hybridSeqAcquire precedes the status transition), so every subscriber
// found here is still doomable — except read-only committers, which publish
// nothing and serialise before this commit.
func (t *Thread) doomHybridGateReaders() {
	line := t.lineOf(t.eng.hybridGate)
	sh := t.lockLine(line)
	rec := &t.eng.lines[line]
	if w := rec.writer; w >= 0 && w != int32(t.slot) {
		if t.doomTagged(line, w, ReasonConflict) {
			rec.writer = -1
		}
	}
	for w, word := range rec.readers {
		for word != 0 {
			bit := word & (-word)
			word &^= bit
			slot := int32(w)*64 + trailingZeros(bit)
			if slot == int32(t.slot) {
				continue
			}
			if t.doomTagged(line, slot, ReasonConflict) {
				rec.readers[w] &^= bit
			}
		}
	}
	unlockLine(sh)
}
