package htm

import (
	"sync"
	"testing"

	"htmcmp/internal/mem"
	"htmcmp/internal/platform"
)

// newTestEngine returns a small, cost-free engine for functional tests.
func newTestEngine(t *testing.T, k platform.Kind, threads int) *Engine {
	t.Helper()
	return New(platform.New(k), Config{
		Threads:   threads,
		SpaceSize: 1 << 20,
		Seed:      42,
		CostScale: 0,
		// Keep functional tests deterministic: no stochastic aborts.
		DisableCacheFetchAborts: true,
		DisablePrefetch:         true,
	})
}

func TestCommitPublishesStores(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 7)

	ok, _ := th.TryTx(TxNormal, func() {
		th.Store64(a, 99)
		if got := th.Load64(a); got != 99 {
			t.Errorf("in-tx read-own-write = %d, want 99", got)
		}
	})
	if !ok {
		t.Fatal("single-threaded transaction aborted")
	}
	if got := th.Load64(a); got != 99 {
		t.Errorf("after commit Load64 = %d, want 99", got)
	}
}

func TestAbortRollsBackStores(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 7)

	ok, ab := th.TryTx(TxNormal, func() {
		th.Store64(a, 99)
		th.Abort()
	})
	if ok {
		t.Fatal("transaction with explicit abort committed")
	}
	if ab.Reason != ReasonExplicit {
		t.Errorf("abort reason = %v, want explicit", ab.Reason)
	}
	if got := th.Load64(a); got != 7 {
		t.Errorf("after abort Load64 = %d, want 7 (rolled back)", got)
	}
}

func TestAbortReclaimsTxAllocations(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	before := e.Space().Used()
	th.TryTx(TxNormal, func() {
		th.Alloc(128)
		th.Alloc(64)
		th.Abort()
	})
	if after := e.Space().Used(); after != before {
		t.Errorf("aborted tx leaked memory: used %d -> %d", before, after)
	}
}

func TestTxFreeDeferredToCommit(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	th.TryTx(TxNormal, func() {
		th.Free(a)
		th.Abort()
	})
	// The free must not have happened: a is still a live allocation.
	if e.Space().BlockSize(a) == 0 {
		t.Fatal("transactional Free applied despite abort")
	}
	ok, _ := th.TryTx(TxNormal, func() { th.Free(a) })
	if !ok {
		t.Fatal("tx aborted unexpectedly")
	}
	if e.Space().BlockSize(a) != 0 {
		t.Fatal("transactional Free not applied at commit")
	}
}

// TestConflictRequesterWins drives two threads into a read-write conflict
// with explicit sequencing: T0 reads line L in a transaction, then T1 writes
// L in its own transaction. Requester-wins means T0 (the reader) is doomed
// and T1 commits.
func TestConflictRequesterWins(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(64)

	t0Read := make(chan struct{})
	t1Done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var t0OK bool
	var t0Abort Abort
	go func() {
		defer wg.Done()
		t0OK, t0Abort = t0.TryTx(TxNormal, func() {
			_ = t0.Load64(a)
			close(t0Read)
			<-t1Done // hold the transaction open across T1's write
			_ = t0.Load64(a)
		})
	}()

	<-t0Read
	t1OK, _ := t1.TryTx(TxNormal, func() {
		t1.Store64(a, 5)
	})
	close(t1Done)
	wg.Wait()

	if !t1OK {
		t.Error("writer (requester) should have committed")
	}
	if t0OK {
		t.Error("reader should have been doomed by the conflicting writer")
	}
	if t0OK == false && t0Abort.Reason != ReasonConflict {
		t.Errorf("reader abort reason = %v, want conflict", t0Abort.Reason)
	}
	if got := t1.Load64(a); got != 5 {
		t.Errorf("committed value = %d, want 5", got)
	}
}

// TestWriterDoomedByReader: T0 writes L transactionally, T1 then reads L
// transactionally; requester-wins dooms the writer, and the reader must see
// the pre-transactional value (store buffering).
func TestWriterDoomedByReader(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(64)
	t0.Store64(a, 1)

	t0Wrote := make(chan struct{})
	t1Done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var t0OK bool
	go func() {
		defer wg.Done()
		t0OK, _ = t0.TryTx(TxNormal, func() {
			t0.Store64(a, 99)
			close(t0Wrote)
			<-t1Done
			t0.Store64(a, 100)
		})
	}()

	<-t0Wrote
	var seen uint64
	t1OK, _ := t1.TryTx(TxNormal, func() {
		seen = t1.Load64(a)
	})
	close(t1Done)
	wg.Wait()

	if !t1OK {
		t.Error("reader (requester) should have committed")
	}
	if t0OK {
		t.Error("writer should have been doomed")
	}
	if seen != 1 {
		t.Errorf("reader saw %d, want pre-transactional 1 (speculative state leaked)", seen)
	}
	if got := t1.Load64(a); got != 1 {
		t.Errorf("memory = %d, want 1 after writer rollback", got)
	}
}

func TestResponderWinsAblation(t *testing.T) {
	e := New(platform.New(platform.IntelCore), Config{
		Threads: 2, SpaceSize: 1 << 20, Seed: 1, CostScale: 0,
		DisablePrefetch: true, ResponderWins: true,
	})
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(64)

	t0Read := make(chan struct{})
	t1Done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var t0OK bool
	go func() {
		defer wg.Done()
		t0OK, _ = t0.TryTx(TxNormal, func() {
			_ = t0.Load64(a)
			close(t0Read)
			<-t1Done
		})
	}()
	<-t0Read
	t1OK, ab := t1.TryTx(TxNormal, func() { t1.Store64(a, 5) })
	close(t1Done)
	wg.Wait()

	if t1OK {
		t.Error("responder-wins: requesting writer should abort")
	}
	if ab.Reason != ReasonConflict {
		t.Errorf("abort reason = %v, want conflict", ab.Reason)
	}
	if !t0OK {
		t.Error("responder-wins: holder should survive and commit")
	}
}

func TestNonTxStoreDoomsTransaction(t *testing.T) {
	e := newTestEngine(t, platform.POWER8, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	a := t0.Alloc(256)

	t0Read := make(chan struct{})
	t1Done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var t0OK bool
	var ab Abort
	go func() {
		defer wg.Done()
		t0OK, ab = t0.TryTx(TxNormal, func() {
			_ = t0.Load64(a)
			close(t0Read)
			<-t1Done
			_ = t0.Load64(a)
		})
	}()
	<-t0Read
	t1.Store64(a, 77) // non-transactional conflicting store
	close(t1Done)
	wg.Wait()

	if t0OK {
		t.Fatal("transaction should be doomed by non-transactional store")
	}
	// POWER8 distinguishes non-transactional conflicts (Section 2).
	if ab.Reason != ReasonNonTxConflict {
		t.Errorf("abort reason = %v, want nontx-conflict", ab.Reason)
	}
}

func TestCapacityStoreOverflowZEC12(t *testing.T) {
	e := newTestEngine(t, platform.ZEC12, 1)
	th := e.Thread(0)
	// zEC12: 8 KB gathering store cache / 256 B lines = 32 store lines.
	n := e.Platform().StoreCapacity/e.LineSize() + 1
	a := th.Alloc(n * e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i < n; i++ {
			th.Store64(a+uint64(i*e.LineSize()), 1)
		}
	})
	if ok {
		t.Fatal("store-capacity overflow did not abort")
	}
	if ab.Reason != ReasonCapacityStore {
		t.Errorf("reason = %v, want capacity-store", ab.Reason)
	}
	if !ab.Persistent {
		t.Error("capacity abort should be reported persistent")
	}
}

func TestCapacityCombinedPOWER8(t *testing.T) {
	e := newTestEngine(t, platform.POWER8, 1)
	th := e.Thread(0)
	// POWER8: 64 TMCAM entries of 128 B, loads and stores combined.
	lines := e.Platform().LoadCapacityLines()
	if lines != 64 {
		t.Fatalf("POWER8 capacity = %d lines, want 64", lines)
	}
	a := th.Alloc((lines + 1) * e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i <= lines; i++ {
			_ = th.Load64(a + uint64(i*e.LineSize()))
		}
	})
	if ok {
		t.Fatal("combined-capacity overflow did not abort")
	}
	if ab.Reason != ReasonCapacityLoad || !ab.Persistent {
		t.Errorf("abort = %+v, want persistent capacity-load", ab)
	}

	// Mixed loads+stores share the budget: 32 loads + 33 stores must abort.
	ok, _ = th.TryTx(TxNormal, func() {
		for i := 0; i < 32; i++ {
			_ = th.Load64(a + uint64(i*e.LineSize()))
		}
		for i := 32; i <= 64; i++ {
			th.Store64(a+uint64(i*e.LineSize()), 1)
		}
	})
	if ok {
		t.Fatal("combined load+store overflow did not abort")
	}

	// Exactly 64 distinct lines, read then written, must fit (no double
	// counting of read-then-written lines).
	ok, ab = th.TryTx(TxNormal, func() {
		for i := 0; i < 64; i++ {
			addr := a + uint64(i*e.LineSize())
			v := th.Load64(addr)
			th.Store64(addr, v+1)
		}
	})
	if !ok {
		t.Fatalf("64-line read+write tx aborted (%v): read->write transition double-counted", ab.Reason)
	}
}

func TestCapacityWayConflictIntel(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	spec := e.Platform()
	// Write 9 lines that map to the same L1 set (stride = sets * lineSize).
	stride := spec.StoreSets * e.LineSize()
	a := th.Alloc((spec.StoreWays + 1) * stride)
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i <= spec.StoreWays; i++ {
			th.Store64(a+uint64(i*stride), 1)
		}
	})
	if ok {
		t.Fatal("same-set store overflow did not abort")
	}
	if ab.Reason != ReasonCapacityWay {
		t.Errorf("reason = %v, want capacity-way", ab.Reason)
	}
}

func TestLargeReadSetFitsIntel(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	// 1000 load lines is far below Intel's 4 MB load capacity and must
	// commit (loads are tracked beyond the L1; no way constraint).
	n := 1000
	a := th.Alloc(n * e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i < n; i++ {
			_ = th.Load64(a + uint64(i*e.LineSize()))
		}
	})
	if !ok {
		t.Fatalf("large read set aborted: %+v", ab)
	}
}

func TestSMTSharingHalvesCapacity(t *testing.T) {
	e := newTestEngine(t, platform.POWER8, 2)
	// Both threads on the same core: slots 0 and 6 on a 6-core machine.
	e2 := New(platform.New(platform.POWER8), Config{
		Threads: 12, SpaceSize: 1 << 20, Seed: 1, CostScale: 0, DisablePrefetch: true,
	})
	_ = e
	t0, t6 := e2.Thread(0), e2.Thread(6) // same core (6 % 6 == 0)
	if t0.Core() != t6.Core() {
		t.Fatalf("threads 0 and 6 should share core: %d vs %d", t0.Core(), t6.Core())
	}
	a := t0.Alloc(128 * e2.LineSize())

	hold := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t6.TryTx(TxNormal, func() {
			_ = t6.Load64(a)
			close(hold)
			<-release
		})
	}()
	<-hold
	// With an SMT sibling in-tx, the 64-entry TMCAM halves to 32.
	ok, ab := t0.TryTx(TxNormal, func() {
		for i := 0; i < 40; i++ {
			_ = t0.Load64(a + uint64((i+8)*e2.LineSize()))
		}
	})
	close(release)
	wg.Wait()
	if ok {
		t.Fatal("40-line tx should overflow the SMT-halved 32-entry TMCAM")
	}
	if ab.Reason != ReasonCapacitySMT {
		t.Errorf("reason = %v, want capacity-smt", ab.Reason)
	}
}

func TestSpecIDExhaustionBGQ(t *testing.T) {
	e := newTestEngine(t, platform.BlueGeneQ, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	// Run more transactions than there are speculation IDs; the pool must
	// reclaim (recording waits) rather than deadlock.
	for i := 0; i < 300; i++ {
		ok, _ := th.TryTx(TxNormal, func() { th.Store64(a, uint64(i)) })
		if !ok {
			t.Fatalf("tx %d aborted unexpectedly", i)
		}
	}
	if e.Stats().SpecIDWaits == 0 {
		t.Error("expected speculation-ID reclamation waits after exhausting the 128-ID pool")
	}
}

func TestSuspendResumePOWER8(t *testing.T) {
	e := newTestEngine(t, platform.POWER8, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	shared := t0.Alloc(128)
	txData := t0.Alloc(256)

	t0Susp := make(chan struct{})
	t1Done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var t0OK bool
	var observed uint64
	go func() {
		defer wg.Done()
		t0OK, _ = t0.TryTx(TxNormal, func() {
			t0.Store64(txData, 1)
			t0.Suspend()
			close(t0Susp)
			<-t1Done
			observed = t0.Load64(shared) // non-transactional: no tracking
			t0.Resume()
			t0.Store64(txData+8, observed)
		})
	}()
	<-t0Susp
	// A non-tx store to the line T0 read while suspended must NOT doom T0.
	t1.Store64(shared, 42)
	close(t1Done)
	wg.Wait()

	if !t0OK {
		t.Fatal("suspended access must not make the transaction conflict-doomable on that line")
	}
	if observed != 42 {
		t.Errorf("suspended load observed %d, want 42", observed)
	}
}

func TestRollbackOnlyIgnoresLoadConflicts(t *testing.T) {
	e := newTestEngine(t, platform.POWER8, 2)
	t0, t1 := e.Thread(0), e.Thread(1)
	shared := t0.Alloc(128)
	out := t0.Alloc(128)

	t0Read := make(chan struct{})
	t1Done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var t0OK bool
	go func() {
		defer wg.Done()
		t0OK, _ = t0.TryTx(TxRollbackOnly, func() {
			_ = t0.Load64(shared)
			close(t0Read)
			<-t1Done
			t0.Store64(out, 1)
		})
	}()
	<-t0Read
	t1.Store64(shared, 9) // would doom a normal transaction
	close(t1Done)
	wg.Wait()
	if !t0OK {
		t.Fatal("rollback-only transaction must not track loads")
	}

	// But ROT stores are still buffered and rolled back on explicit abort.
	ok, _ := t0.TryTx(TxRollbackOnly, func() {
		t0.Store64(out, 55)
		t0.Abort()
	})
	if ok {
		t.Fatal("explicit abort in ROT committed")
	}
	if got := t0.Load64(out); got != 1 {
		t.Errorf("ROT abort left out = %d, want 1", got)
	}
}

func TestConstrainedTxCommitsUnderContention(t *testing.T) {
	e := newTestEngine(t, platform.ZEC12, 4)
	counter := e.Thread(0).Alloc(256)
	const perThread = 200
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			for j := 0; j < perThread; j++ {
				th.RunConstrained(func() {
					th.Store64(counter, th.Load64(counter)+1)
				})
			}
		}(i)
	}
	wg.Wait()
	if got := e.Thread(0).Load64(counter); got != 4*perThread {
		t.Errorf("constrained counter = %d, want %d", got, 4*perThread)
	}
}

func TestConstrainedTxEnforcesLimits(t *testing.T) {
	e := newTestEngine(t, platform.ZEC12, 1)
	th := e.Thread(0)
	a := th.Alloc(16 * e.LineSize())
	defer func() {
		r := recover()
		if _, ok := r.(*ErrConstrained); !ok {
			t.Errorf("recover() = %v, want *ErrConstrained", r)
		}
	}()
	th.RunConstrained(func() {
		for i := 0; i < 8; i++ { // 8 lines > the 4-line constraint
			th.Store64(a+uint64(i*e.LineSize()), 1)
		}
	})
	t.Fatal("constraint violation did not panic")
}

func TestPrefetchCausesNeighborConflicts(t *testing.T) {
	// With the prefetcher on, a transaction touching line L sometimes pulls
	// L+1 into its read set, so a writer of L+1 dooms it — the kmeans
	// effect of Section 5.1. Statistically: run many rounds and require at
	// least one such abort with prefetch on, and none with it off.
	run := func(disable bool) int {
		e := New(platform.New(platform.IntelCore), Config{
			Threads: 2, SpaceSize: 1 << 20, Seed: 7, CostScale: 0,
			DisablePrefetch:         disable,
			DisableCacheFetchAborts: true,
		})
		t0, t1 := e.Thread(0), e.Thread(1)
		a := t0.Alloc(2 * e.LineSize()) // two adjacent lines
		aborts := 0
		for i := 0; i < 200; i++ {
			t0Read := make(chan struct{})
			t1Done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			var ok bool
			go func() {
				defer wg.Done()
				ok, _ = t0.TryTx(TxNormal, func() {
					_ = t0.Load64(a) // line 0; prefetch may grab line 1
					close(t0Read)
					<-t1Done
					_ = t0.Load64(a)
				})
			}()
			<-t0Read
			t1.TryTx(TxNormal, func() {
				t1.Store64(a+uint64(e.LineSize()), 1) // line 1 only
			})
			close(t1Done)
			wg.Wait()
			if !ok {
				aborts++
			}
		}
		return aborts
	}
	if got := run(false); got == 0 {
		t.Error("prefetcher on: expected some neighbour-line conflict aborts")
	}
	if got := run(true); got != 0 {
		t.Errorf("prefetcher off: got %d neighbour-line aborts, want 0", got)
	}
}

func TestCacheFetchAbortsZEC12(t *testing.T) {
	e := New(platform.New(platform.ZEC12), Config{
		Threads: 1, SpaceSize: 1 << 20, Seed: 3, CostScale: 0,
	})
	th := e.Thread(0)
	a := th.Alloc(16 * e.LineSize())
	sawAbort := false
	for i := 0; i < 2000 && !sawAbort; i++ {
		ok, ab := th.TryTx(TxNormal, func() {
			for j := 0; j < 16; j++ {
				th.Store64(a+uint64(j*e.LineSize()), uint64(j))
			}
		})
		if !ok && ab.Reason == ReasonCacheFetch {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Error("zEC12 model produced no cache-fetch-related aborts in 2000 txs")
	}
}

// TestConcurrentCounterStress hammers one counter from many threads with a
// naive retry loop; the committed total must be exact on every platform.
func TestConcurrentCounterStress(t *testing.T) {
	for _, k := range platform.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			e := newTestEngine(t, k, 8)
			counter := e.Thread(0).Alloc(512)
			const perThread = 500
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					th := e.Thread(tid)
					for j := 0; j < perThread; j++ {
						for {
							ok, _ := th.TryTx(TxNormal, func() {
								th.Store64(counter, th.Load64(counter)+1)
							})
							if ok {
								break
							}
						}
					}
				}(i)
			}
			wg.Wait()
			if got := e.Thread(0).Load64(counter); got != 8*perThread {
				t.Errorf("counter = %d, want %d", got, 8*perThread)
			}
			s := e.Stats()
			if s.Commits != 8*perThread {
				t.Errorf("commits = %d, want %d", s.Commits, 8*perThread)
			}
			if s.Begins != s.Commits+s.Aborts {
				t.Errorf("begins=%d != commits+aborts=%d", s.Begins, s.Commits+s.Aborts)
			}
		})
	}
}

// TestBankInvariantStress moves money among accounts under contention; total
// balance is invariant if isolation holds.
func TestBankInvariantStress(t *testing.T) {
	for _, k := range platform.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			e := newTestEngine(t, k, 4)
			const nAcct = 32
			const initial = 1000
			base := e.Thread(0).Alloc(nAcct * 8)
			for i := 0; i < nAcct; i++ {
				e.Thread(0).Store64(base+uint64(i*8), initial)
			}
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					th := e.Thread(tid)
					rng := th.Rand()
					for j := 0; j < 1000; j++ {
						from := uint64(rng.Intn(nAcct))
						to := uint64(rng.Intn(nAcct))
						amt := uint64(rng.Intn(10))
						for {
							ok, _ := th.TryTx(TxNormal, func() {
								f := th.Load64(base + from*8)
								if f < amt {
									return
								}
								th.Store64(base+from*8, f-amt)
								th.Store64(base+to*8, th.Load64(base+to*8)+amt)
							})
							if ok {
								break
							}
						}
					}
				}(i)
			}
			wg.Wait()
			var total uint64
			for i := 0; i < nAcct; i++ {
				total += e.Thread(0).Load64(base + uint64(i*8))
			}
			if total != nAcct*initial {
				t.Errorf("total balance = %d, want %d (isolation violated)", total, nAcct*initial)
			}
		})
	}
}

func TestStatsFootprintTracking(t *testing.T) {
	e := newTestEngine(t, platform.ZEC12, 1)
	th := e.Thread(0)
	a := th.Alloc(20 * e.LineSize())
	th.TryTx(TxNormal, func() {
		for i := 0; i < 10; i++ {
			_ = th.Load64(a + uint64(i*e.LineSize()))
		}
		for i := 10; i < 15; i++ {
			th.Store64(a+uint64(i*e.LineSize()), 1)
		}
	})
	s := e.Stats()
	if s.MaxReadLines < 10 {
		t.Errorf("MaxReadLines = %d, want >= 10", s.MaxReadLines)
	}
	if s.MaxWriteLines != 5 {
		t.Errorf("MaxWriteLines = %d, want 5", s.MaxWriteLines)
	}
	if s.TxLoads != 10 || s.TxStores != 5 {
		t.Errorf("TxLoads/TxStores = %d/%d, want 10/5", s.TxLoads, s.TxStores)
	}
}

func TestNestedBeginPanics(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	defer func() {
		if recover() == nil {
			t.Error("nested TryTx did not panic")
		}
		// The outer transaction's bookkeeping must have been rolled back.
		if th.InTx() {
			t.Error("thread left in-tx after panic")
		}
	}()
	th.TryTx(TxNormal, func() {
		th.TryTx(TxNormal, func() {})
	})
}

func TestCompareAndSwapNonTx(t *testing.T) {
	e := newTestEngine(t, platform.ZEC12, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 10)
	if !th.CompareAndSwap64(a, 10, 20) {
		t.Error("CAS with matching old failed")
	}
	if th.CompareAndSwap64(a, 10, 30) {
		t.Error("CAS with stale old succeeded")
	}
	if got := th.Load64(a); got != 20 {
		t.Errorf("value = %d, want 20", got)
	}
}

func TestEngineLineSizeBGQModes(t *testing.T) {
	short := New(platform.New(platform.BlueGeneQ), Config{Threads: 1, Mode: platform.ShortRunning, CostScale: 0})
	long := New(platform.New(platform.BlueGeneQ), Config{Threads: 1, Mode: platform.LongRunning, CostScale: 0})
	if short.LineSize() != 64 {
		t.Errorf("short-running granularity = %d, want 64", short.LineSize())
	}
	if long.LineSize() != 128 {
		t.Errorf("long-running granularity = %d, want 128", long.LineSize())
	}
}

func TestTable1Parameters(t *testing.T) {
	// Guard the Table 1 numbers against accidental edits.
	cases := []struct {
		kind       platform.Kind
		line       int
		loadCap    int
		storeCap   int
		cores, smt int
	}{
		{platform.BlueGeneQ, 128, 20 << 20 / 16, 20 << 20 / 16, 16, 4},
		{platform.ZEC12, 256, 1 << 20, 8 << 10, 16, 1},
		{platform.IntelCore, 64, 4 << 20, 22 << 10, 4, 2},
		{platform.POWER8, 128, 8 << 10, 8 << 10, 6, 8},
	}
	for _, c := range cases {
		s := platform.New(c.kind)
		if s.LineSize != c.line || s.LoadCapacity != c.loadCap || s.StoreCapacity != c.storeCap ||
			s.Cores != c.cores || s.SMT != c.smt {
			t.Errorf("%v: got line=%d load=%d store=%d cores=%d smt=%d, want %+v",
				c.kind, s.LineSize, s.LoadCapacity, s.StoreCapacity, s.Cores, s.SMT, c)
		}
	}
}

func TestStrongIsolationSequentialFastPath(t *testing.T) {
	e := newTestEngine(t, platform.IntelCore, 1)
	th := e.Thread(0)
	a := th.Alloc(64)
	th.Store64(a, 5)
	if got := th.Load64(a); got != 5 {
		t.Errorf("non-tx roundtrip = %d, want 5", got)
	}
	var addr mem.Addr = a + 4
	th.Store32(addr, 9)
	if got := th.Load32(addr); got != 9 {
		t.Errorf("32-bit roundtrip = %d, want 9", got)
	}
	th.Store8(a+1, 200)
	if got := th.Load8(a + 1); got != 200 {
		t.Errorf("8-bit roundtrip = %d, want 200", got)
	}
	th.StoreFloat64(a+16, 3.25)
	if got := th.LoadFloat64(a + 16); got != 3.25 {
		t.Errorf("float roundtrip = %v, want 3.25", got)
	}
	th.StoreInt64(a+24, -7)
	if got := th.LoadInt64(a + 24); got != -7 {
		t.Errorf("int64 roundtrip = %v, want -7", got)
	}
}
