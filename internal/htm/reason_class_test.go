package htm

import (
	"testing"

	"htmcmp/internal/platform"
)

// Abort-reason classification: every engine Reason must be reachable on the
// platforms that model it, carry the right Figure 3 category, and carry the
// processor's persistent/transient verdict (capacity overflows persistent,
// everything else transient — Section 2). Real-concurrency mode with a
// single test goroutine gives exact interleavings: operations on different
// Thread structs interleave wherever the test calls them.

func reasonEngine(t *testing.T, k platform.Kind, threads int, cacheFetch bool) *Engine {
	t.Helper()
	return New(platform.New(k), Config{
		Threads: threads, SpaceSize: 16 << 20, Seed: 7, CostScale: 0,
		DisableCacheFetchAborts: !cacheFetch,
		DisablePrefetch:         true,
	})
}

func provokeExplicit(t *testing.T, e *Engine) Abort {
	th := e.Thread(0)
	a := th.Alloc(e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		th.Store64(a, 1)
		th.Abort()
	})
	if ok {
		t.Fatal("explicitly aborted tx committed")
	}
	return ab
}

// provokeConflict dooms a reader from a competing transactional writer
// (requester-wins): the doomed reader observes ReasonConflict at commit.
func provokeConflict(t *testing.T, e *Engine) Abort {
	a, b := e.Thread(0), e.Thread(1)
	x := a.Alloc(e.LineSize())
	ok, ab := a.TryTx(TxNormal, func() {
		_ = a.Load64(x)
		if okB, abB := b.TryTx(TxNormal, func() { b.Store64(x, 1) }); !okB {
			t.Fatalf("winning writer aborted: %+v", abB)
		}
	})
	if ok {
		t.Fatal("doomed reader committed")
	}
	return ab
}

// provokeNonTxConflict dooms a transactional reader from a plain
// (non-transactional) store — strong isolation.
func provokeNonTxConflict(t *testing.T, e *Engine) Abort {
	a, b := e.Thread(0), e.Thread(1)
	x := a.Alloc(e.LineSize())
	ok, ab := a.TryTx(TxNormal, func() {
		_ = a.Load64(x)
		b.Store64(x, 1)
	})
	if ok {
		t.Fatal("doomed reader committed")
	}
	return ab
}

// provokeCommitterConflict makes the line owner doom-immune (the endpoint of
// zEC12's constrained-transaction hardware escalation: hardened under the
// arbiter) so the requesting transaction must abort instead.
func provokeCommitterConflict(t *testing.T, e *Engine) Abort {
	a, b := e.Thread(0), e.Thread(1)
	x := a.Alloc(e.LineSize())
	var abB Abort
	var okB bool
	okA, _ := a.TryTx(TxNormal, func() {
		a.Store64(x, 1)
		a.hardened = true
		okB, abB = b.TryTx(TxNormal, func() { b.Store64(x, 2) })
		a.hardened = false
	})
	if !okA {
		t.Fatal("hardened owner aborted")
	}
	if okB {
		t.Fatal("requester against an immune owner committed")
	}
	return abB
}

// loadBudgetLines/storeBudgetLines are the engine-effective capacities: the
// conflict granularity is mode-dependent on Blue Gene/Q, so Spec's
// line-budget helpers do not apply there.
func loadBudgetLines(e *Engine) int { return e.Platform().LoadCapacity / e.LineSize() }

func storeBudgetLines(e *Engine) int { return e.Platform().StoreCapacity / e.LineSize() }

func provokeCapacityLoad(t *testing.T, e *Engine) Abort {
	th := e.Thread(0)
	n := loadBudgetLines(e) + 1
	base := th.Alloc(n * e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i < n; i++ {
			_ = th.Load64(base + uint64(i*e.LineSize()))
		}
	})
	if ok {
		t.Fatalf("tx over the %d-line load budget committed", n-1)
	}
	return ab
}

func provokeCapacityStore(t *testing.T, e *Engine) Abort {
	th := e.Thread(0)
	n := storeBudgetLines(e) + 1
	base := th.Alloc(n * e.LineSize())
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i < n; i++ {
			th.Store64(base+uint64(i*e.LineSize()), 1)
		}
	})
	if ok {
		t.Fatalf("tx over the %d-line store budget committed", n-1)
	}
	return ab
}

// provokeCapacityWay stores lines one cache set apart: the 9th line in one
// 8-way set overflows Intel's L1-resident store buffer even though total
// store capacity remains.
func provokeCapacityWay(t *testing.T, e *Engine) Abort {
	th := e.Thread(0)
	p := e.Platform()
	stride := p.StoreSets * e.LineSize()
	n := p.StoreWays + 1
	base := th.Alloc(n * stride)
	ok, ab := th.TryTx(TxNormal, func() {
		for i := 0; i < n; i++ {
			th.Store64(base+uint64(i*stride), 1)
		}
	})
	if ok {
		t.Fatalf("tx with %d lines in one %d-way set committed", n, p.StoreWays)
	}
	return ab
}

// provokeCapacitySMT runs a second hardware thread of the same core inside
// a transaction, halving the core's tracking resources: a footprint within
// the full budget but over the halved one aborts with the SMT reason.
func provokeCapacitySMT(sibling int) func(*testing.T, *Engine) Abort {
	return func(t *testing.T, e *Engine) Abort {
		a, b := e.Thread(0), e.Thread(sibling)
		if a.Core() != b.Core() {
			t.Fatalf("threads 0 and %d are not SMT siblings", sibling)
		}
		n := loadBudgetLines(e)/2 + 1
		base := b.Alloc(n * e.LineSize())
		pad := a.Alloc(e.LineSize())
		var abB Abort
		var okB bool
		okA, _ := a.TryTx(TxNormal, func() {
			_ = a.Load64(pad)
			okB, abB = b.TryTx(TxNormal, func() {
				for i := 0; i < n; i++ {
					_ = b.Load64(base + uint64(i*e.LineSize()))
				}
			})
		})
		if !okA {
			t.Fatal("sibling pad tx aborted")
		}
		if okB {
			t.Fatalf("tx over the SMT-divided budget (%d lines) committed", n)
		}
		return abB
	}
}

func TestAbortReasonClassification(t *testing.T) {
	cases := []struct {
		name       string
		kind       platform.Kind
		threads    int
		reason     Reason
		category   Category
		persistent bool
		provoke    func(*testing.T, *Engine) Abort
	}{
		{"explicit/bgq", platform.BlueGeneQ, 1, ReasonExplicit, CategoryOther, false, provokeExplicit},
		{"explicit/zec12", platform.ZEC12, 1, ReasonExplicit, CategoryOther, false, provokeExplicit},
		{"explicit/intel", platform.IntelCore, 1, ReasonExplicit, CategoryOther, false, provokeExplicit},
		{"explicit/p8", platform.POWER8, 1, ReasonExplicit, CategoryOther, false, provokeExplicit},

		{"conflict/bgq", platform.BlueGeneQ, 2, ReasonConflict, CategoryDataConflict, false, provokeConflict},
		{"conflict/zec12", platform.ZEC12, 2, ReasonConflict, CategoryDataConflict, false, provokeConflict},
		{"conflict/intel", platform.IntelCore, 2, ReasonConflict, CategoryDataConflict, false, provokeConflict},
		{"conflict/p8", platform.POWER8, 2, ReasonConflict, CategoryDataConflict, false, provokeConflict},

		{"nontx-conflict/zec12", platform.ZEC12, 2, ReasonNonTxConflict, CategoryDataConflict, false, provokeNonTxConflict},
		{"nontx-conflict/p8", platform.POWER8, 2, ReasonNonTxConflict, CategoryDataConflict, false, provokeNonTxConflict},

		{"committer-conflict/zec12", platform.ZEC12, 2, ReasonCommitterConflict, CategoryDataConflict, false, provokeCommitterConflict},

		{"capacity-load/bgq", platform.BlueGeneQ, 1, ReasonCapacityLoad, CategoryCapacity, true, provokeCapacityLoad},
		{"capacity-load/zec12", platform.ZEC12, 1, ReasonCapacityLoad, CategoryCapacity, true, provokeCapacityLoad},
		{"capacity-load/intel", platform.IntelCore, 1, ReasonCapacityLoad, CategoryCapacity, true, provokeCapacityLoad},
		{"capacity-load/p8", platform.POWER8, 1, ReasonCapacityLoad, CategoryCapacity, true, provokeCapacityLoad},

		{"capacity-store/bgq", platform.BlueGeneQ, 1, ReasonCapacityStore, CategoryCapacity, true, provokeCapacityStore},
		{"capacity-store/zec12", platform.ZEC12, 1, ReasonCapacityStore, CategoryCapacity, true, provokeCapacityStore},
		{"capacity-store/intel", platform.IntelCore, 1, ReasonCapacityStore, CategoryCapacity, true, provokeCapacityStore},
		{"capacity-store/p8", platform.POWER8, 1, ReasonCapacityStore, CategoryCapacity, true, provokeCapacityStore},

		{"capacity-way/intel", platform.IntelCore, 1, ReasonCapacityWay, CategoryCapacity, true, provokeCapacityWay},

		// SMT siblings share a core per Spec.CoreOf (tid % Cores): the first
		// sibling of thread 0 is thread <Cores>.
		{"capacity-smt/bgq", platform.BlueGeneQ, 17, ReasonCapacitySMT, CategoryCapacity, true, provokeCapacitySMT(16)},
		{"capacity-smt/intel", platform.IntelCore, 5, ReasonCapacitySMT, CategoryCapacity, true, provokeCapacitySMT(4)},
		{"capacity-smt/p8", platform.POWER8, 7, ReasonCapacitySMT, CategoryCapacity, true, provokeCapacitySMT(6)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := reasonEngine(t, tc.kind, tc.threads, false)
			ab := tc.provoke(t, e)
			if ab.Reason != tc.reason {
				t.Errorf("abort reason = %v, want %v", ab.Reason, tc.reason)
			}
			if got := ab.Reason.Category(); got != tc.category {
				t.Errorf("category = %v, want %v", got, tc.category)
			}
			if ab.Persistent != tc.persistent {
				t.Errorf("persistent = %v, want %v", ab.Persistent, tc.persistent)
			}
			st := e.Stats()
			if st.AbortsByReason[tc.reason] == 0 {
				t.Errorf("stats did not count the %v abort", tc.reason)
			}
			if st.AbortsByReason[ReasonNone] != 0 {
				t.Errorf("%d aborts counted under ReasonNone", st.AbortsByReason[ReasonNone])
			}
		})
	}
}

// TestCacheFetchAbortReachable: with the stochastic injector enabled, zEC12
// transactions eventually draw a transient cache-fetch abort (the dominant
// "other" bars of Figure 3); the abort must be transient and categorized as
// Other.
func TestCacheFetchAbortReachable(t *testing.T) {
	e := reasonEngine(t, platform.ZEC12, 1, true)
	th := e.Thread(0)
	base := th.Alloc(16 * e.LineSize())
	for i := 0; i < 200000; i++ {
		ok, ab := th.TryTx(TxNormal, func() {
			for l := 0; l < 16; l++ {
				_ = th.Load64(base + uint64(l*e.LineSize()))
			}
		})
		if ok {
			continue
		}
		if ab.Reason != ReasonCacheFetch {
			t.Fatalf("unexpected abort %+v on an uncontended read-only tx", ab)
		}
		if ab.Persistent {
			t.Fatal("cache-fetch abort reported persistent")
		}
		if ab.Reason.Category() != CategoryOther {
			t.Fatalf("cache-fetch category = %v, want Other", ab.Reason.Category())
		}
		if e.Stats().AbortsByReason[ReasonCacheFetch] == 0 {
			t.Fatal("stats did not count the cache-fetch abort")
		}
		return
	}
	t.Fatal("no cache-fetch abort in 200000 transactions")
}

// TestBlueGeneQSpecIDExhaustion: spec-ID exhaustion is not an abort — the
// 129th transaction begin stalls on the empty 128-ID pool and performs a
// reclamation pass, which the engine counts as a SpecIDWait (the ssca2
// serialisation of Section 5.1).
func TestBlueGeneQSpecIDExhaustion(t *testing.T) {
	e := reasonEngine(t, platform.BlueGeneQ, 1, false)
	th := e.Thread(0)
	ids := e.Platform().SpecIDs
	for i := 0; i < ids; i++ {
		if ok, ab := th.TryTx(TxNormal, func() {}); !ok {
			t.Fatalf("tx %d aborted: %+v", i, ab)
		}
	}
	if w := e.Stats().SpecIDWaits; w != 0 {
		t.Fatalf("%d spec-ID waits before the pool was exhausted", w)
	}
	if ok, ab := th.TryTx(TxNormal, func() {}); !ok {
		t.Fatalf("post-exhaustion tx aborted: %+v", ab)
	}
	if w := e.Stats().SpecIDWaits; w == 0 {
		t.Fatal("exhausting the 128-ID pool did not count a spec-ID wait")
	}
}
