package htm

// Commit-order witness log: the recording half of the serializability oracle
// (the checking half is internal/verify).
//
// When Config.Witness is set, the engine records one TxRecord per committed
// transaction — its read set as (line, version, value hash) triples and its
// write set as published line images — plus one record per strongly-isolated
// non-transactional store. Records carry a global commit sequence number
// (assigned inside the engine's own synchronisation, so it is consistent
// with the order in which effects became visible) and the committing
// thread's virtual clock. verify.Replay re-executes the log against a fresh
// sequential memory: if every committed transaction's recorded reads are
// consistent with the state produced by replaying the records in sequence
// order, the run was serializable in commit order.
//
// Like obs.Tracer, the witness is gated behind a single nil check and
// charges no virtual time, so witnessed runs are cycle-identical to
// unwitnessed ones (pinned by internal/tm's golden determinism test).
// Unlike the tracer it does touch the per-access path (one nil check per
// transactional load), because read versions must be sampled at first-read
// time.
//
// Scope and limitations:
//
//   - Non-transactional loads are not recorded; only transactional reads are
//     checked for consistency.
//   - NOrec software commits are recorded as write-only records (word
//     granularity) and do not participate in line versioning: STM and HTM
//     transactions are never mixed in one run, and NOrec's value-based
//     validation has no line-version analogue.
//   - POWER8 rollback-only transactions do not track loads, so their reads
//     are (correctly) not witnessed.
//   - Arena allocator reuse rewrites raw memory without a witness record
//     (mem.Space zeroes recycled blocks), so runs that free and re-allocate
//     simulated memory mid-run can produce false positives. Workloads under
//     the oracle must confine Alloc/Free churn to the setup phase; the
//     verify fuzzer's generated programs perform no transactional
//     allocation at all.
//   - zEC12 hardened constrained transactions are doom-immune; a concurrent
//     conflicting non-transactional store is a genuine isolation hole in
//     the model and would be reported as a violation.

import (
	"sort"
	"sync/atomic"

	"htmcmp/internal/mem"
)

// WitnessKind distinguishes the three record sources.
type WitnessKind uint8

const (
	// WitnessTx is a committed hardware transaction.
	WitnessTx WitnessKind = iota
	// WitnessNonTx is one strongly-isolated non-transactional store (or a
	// successful non-transactional CompareAndSwap64).
	WitnessNonTx
	// WitnessSTM is a committed NOrec software transaction (writes only).
	WitnessSTM
)

func (k WitnessKind) String() string {
	switch k {
	case WitnessTx:
		return "tx"
	case WitnessNonTx:
		return "non-tx"
	case WitnessSTM:
		return "stm"
	}
	return "?"
}

// WitnessRead is one first-read of a conflict-detection line by a
// transaction: the line's write-version and the FNV-64a hash of its bytes at
// the moment of the read.
type WitnessRead struct {
	Line uint32
	Ver  uint64
	Sum  uint64
}

// WitnessWrite is one published write: a full line image for hardware
// commits, the stored bytes for non-transactional stores, one word for STM
// commits.
type WitnessWrite struct {
	Addr mem.Addr
	Line uint32
	Data []byte
}

// TxRecord is one witnessed commit (or non-transactional store).
type TxRecord struct {
	// Seq is the global commit sequence number; replaying records in Seq
	// order reproduces the order in which effects became visible.
	Seq    uint64
	Thread int
	VClock uint64
	Kind   WitnessKind
	Reads  []WitnessRead
	Writes []WitnessWrite
}

// Witness collects the commit-order log of one engine. Create with
// NewWitness, pass via Config.Witness, call Start after workload setup
// (Start snapshots the arena and resets the log), and extract the finished
// log with Log once the threads are quiescent.
type Witness struct {
	space     *mem.Space
	lineSize  int
	lineShift uint
	nLines    int
	seq       atomic.Uint64
	// ver counts committed writes per line; read under the line's shard
	// lock together with the value hash so (Ver, Sum) pairs are consistent.
	ver     []uint64
	initial []byte
	recs    [][]TxRecord // per thread slot, owner-appended
	started bool
}

// NewWitness returns an empty witness; htm.New sizes it to the engine it is
// attached to.
func NewWitness() *Witness { return &Witness{} }

// attach sizes the witness for engine e (called from New).
func (w *Witness) attach(e *Engine) {
	w.space = e.space
	w.lineSize = e.lineSize
	w.lineShift = e.lineShift
	w.nLines = e.nLines
	w.ver = make([]uint64, e.nLines) //htmlint:allow atomicmix -- attach runs before any thread exists
	w.recs = make([][]TxRecord, e.cfg.Threads)
	w.seq.Store(0)
	w.initial = nil
	w.started = false
}

// Start snapshots the arena as the replay's initial state and resets the
// log. Call it after workload setup, before the measured/checked region,
// with no transactions in flight.
func (w *Witness) Start() {
	if w.space == nil {
		panic("htm: Witness.Start before the witness was attached to an engine (Config.Witness)")
	}
	w.initial = append(w.initial[:0], w.space.Data()...)
	for i := range w.ver { //htmlint:allow atomicmix -- Start is documented quiescent: no transactions in flight
		w.ver[i] = 0
	}
	for i := range w.recs {
		w.recs[i] = nil
	}
	w.seq.Store(0)
	w.started = true
}

// Started reports whether Start has been called.
func (w *Witness) Started() bool { return w.started }

// WitnessLog is the extracted, replayable log: the initial and final arena
// snapshots bracketing the records, sorted by commit sequence. Space is the
// live arena (for RegionAt symbolication); it is not consulted for bytes.
type WitnessLog struct {
	LineSize int
	NLines   int
	Space    *mem.Space
	Initial  []byte
	Final    []byte
	Records  []TxRecord
}

// Log extracts the witnessed records merged across threads in commit-
// sequence order, plus initial/final arena snapshots. Call only while the
// engine's threads are quiescent.
func (w *Witness) Log() WitnessLog {
	var all []TxRecord
	for _, rs := range w.recs {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return WitnessLog{
		LineSize: w.lineSize,
		NLines:   w.nLines,
		Space:    w.space,
		Initial:  append([]byte(nil), w.initial...),
		Final:    append([]byte(nil), w.space.Data()...),
		Records:  all,
	}
}

// LineSum is the FNV-64a hash of line's bytes in data (clipped at the arena
// end), the value fingerprint used by WitnessRead.Sum. Exported so
// verify.Replay computes the same fingerprint.
func LineSum(data []byte, line uint32, lineSize int) uint64 {
	base := uint64(line) * uint64(lineSize)
	end := base + uint64(lineSize)
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data[base:end] {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ---------------------------------------------------------------------------
// Recording hooks (called from Thread with t.wit != nil)

// witnessRead records the first transactional read of line: its current
// write-version and value hash, sampled under the line's shard lock so the
// pair is consistent with concurrent publications.
func (t *Thread) witnessRead(line uint32) {
	if t.witSeen.has(line) {
		return
	}
	t.witSeen.put(line, true)
	sh := t.lockLine(line)
	v := atomic.LoadUint64(&t.wit.ver[line]) //htmlint:allow nilgate -- recording hooks run only when the thread has a witness (see section header)
	sum := LineSum(t.eng.space.Data(), line, t.eng.lineSize)
	unlockLine(sh)
	t.witReads = append(t.witReads, WitnessRead{Line: line, Ver: v, Sum: sum})
}

// witnessCommitRecord appends the TxRecord of a just-published hardware
// commit. The commit sequence number was taken before the transaction
// became visibly committing; the write images were collected during
// publication.
func (t *Thread) witnessCommitRecord(seq uint64) {
	rec := TxRecord{Seq: seq, Thread: t.slot, VClock: t.vclock, Kind: WitnessTx}
	if len(t.witReads) > 0 {
		rec.Reads = append([]WitnessRead(nil), t.witReads...)
	}
	if len(t.witWrites) > 0 {
		rec.Writes = t.witWrites
		t.witWrites = nil // ownership moves into the record
	}
	w := t.wit
	w.recs[t.slot] = append(w.recs[t.slot], rec)
}

// witnessNonTx records one strongly-isolated non-transactional store of n
// bytes at a, reading the stored bytes back from the arena. In
// real-concurrency mode it must be called with the line's shard lock held,
// so the sequence number is consistent with the store's visibility order —
// in particular, a store that failed to doom a committing reader is
// sequenced after that reader's commit (the committer takes its number
// before becoming visibly committing).
func (t *Thread) witnessNonTx(a mem.Addr, n int) {
	w := t.wit
	line := t.lineOf(a)
	seq := w.seq.Add(1)
	atomic.AddUint64(&w.ver[line], 1)
	data := append([]byte(nil), t.eng.space.Data()[a:a+uint64(n)]...)
	w.recs[t.slot] = append(w.recs[t.slot], TxRecord{
		Seq: seq, Thread: t.slot, VClock: t.vclock, Kind: WitnessNonTx,
		Writes: []WitnessWrite{{Addr: a, Line: line, Data: data}},
	})
}

// witnessSTM records a committed NOrec writer transaction while the global
// sequence lock is held (writes only, word granularity; no line-version
// participation — see the package comment).
func (t *Thread) witnessSTM() {
	w := t.wit
	st := &t.stm
	seq := w.seq.Add(1)
	writes := make([]WitnessWrite, 0, len(st.order))
	data := t.eng.space.Data()
	for _, a := range st.order {
		writes = append(writes, WitnessWrite{
			Addr: a, Line: t.lineOf(a),
			Data: append([]byte(nil), data[a:a+8]...),
		})
	}
	w.recs[t.slot] = append(w.recs[t.slot], TxRecord{
		Seq: seq, Thread: t.slot, VClock: t.vclock, Kind: WitnessSTM,
		Writes: writes,
	})
}
