package htm

// Reason identifies why a transaction aborted. It is the simulator-level
// analogue of the abort-reason codes Section 2 describes (zEC12 condition
// codes, Intel's EAX bits, POWER8's TEXASR): enough to drive the paper's
// retry policies and the abort-breakdown of Figure 3.
type Reason int

// Abort reasons, ordered so that Figure 3's four categories (capacity
// overflow, data conflict, other, lock conflict) can be derived by Category.
const (
	// ReasonNone means no abort (zero value).
	ReasonNone Reason = iota
	// ReasonConflict is a data conflict with another transaction.
	ReasonConflict
	// ReasonNonTxConflict is a conflict with a non-transactional access
	// (strong isolation). POWER8 distinguishes this from ReasonConflict;
	// zEC12 and Intel do not (Section 2, "Abort-reason code").
	ReasonNonTxConflict
	// ReasonCapacityLoad is a transactional-load capacity overflow.
	ReasonCapacityLoad
	// ReasonCapacityStore is a transactional-store capacity overflow.
	ReasonCapacityStore
	// ReasonCapacityWay is a capacity abort caused by a cache-way conflict:
	// the set-associative structure holding buffered stores overflowed one
	// set even though total capacity remained (Section 2).
	ReasonCapacityWay
	// ReasonCapacitySMT is a capacity abort caused by SMT threads sharing
	// the per-core tracking resources (Section 2).
	ReasonCapacitySMT
	// ReasonExplicit is a programmatic abort (tabort), e.g. the Figure 1
	// retry mechanism aborting because the global lock is held.
	ReasonExplicit
	// ReasonCacheFetch models zEC12's undocumented transient
	// "cache-fetch-related" aborts — the dominant grey "other" bars of
	// Figure 3 (Section 5.1).
	ReasonCacheFetch
	// ReasonCommitterConflict is raised in the requesting transaction when
	// the conflicting owner is mid-commit and therefore immune.
	ReasonCommitterConflict
	// ReasonInterrupt is an interrupt-induced (spurious) abort: BG/Q and
	// zEC12 transactions die whenever an external interrupt is delivered
	// mid-transaction (Section 2), independent of the program's behaviour.
	// Transient — a retry usually succeeds. Raised only by the chaos
	// injector (internal/chaos); real scheduling noise is outside the
	// virtual-time model.
	ReasonInterrupt

	numReasons
)

// NumReasons is the size of the Reason vocabulary (for stats arrays).
const NumReasons = int(numReasons)

// String returns a short identifier for the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonConflict:
		return "conflict"
	case ReasonNonTxConflict:
		return "nontx-conflict"
	case ReasonCapacityLoad:
		return "capacity-load"
	case ReasonCapacityStore:
		return "capacity-store"
	case ReasonCapacityWay:
		return "capacity-way"
	case ReasonCapacitySMT:
		return "capacity-smt"
	case ReasonExplicit:
		return "explicit"
	case ReasonCacheFetch:
		return "cache-fetch"
	case ReasonCommitterConflict:
		return "committer-conflict"
	case ReasonInterrupt:
		return "interrupt"
	}
	return "unknown"
}

// Category is Figure 3's abort breakdown bucket.
type Category int

// Figure 3 categories. Lock conflicts are identified by the software retry
// mechanism (Section 3), not by the engine, so CategoryLockConflict is
// assigned in internal/tm.
const (
	CategoryCapacity Category = iota
	CategoryDataConflict
	CategoryOther
	CategoryLockConflict
	NumCategories
)

// String returns the figure label for the category.
func (c Category) String() string {
	switch c {
	case CategoryCapacity:
		return "Capacity overflow"
	case CategoryDataConflict:
		return "Data conflict"
	case CategoryOther:
		return "Other"
	case CategoryLockConflict:
		return "Lock conflict"
	}
	return "Unclassified"
}

// Category maps the engine-level reason to Figure 3's bucket (before the
// retry mechanism reclassifies lock-word conflicts).
func (r Reason) Category() Category {
	switch r {
	case ReasonCapacityLoad, ReasonCapacityStore, ReasonCapacityWay, ReasonCapacitySMT:
		return CategoryCapacity
	case ReasonConflict, ReasonNonTxConflict, ReasonCommitterConflict:
		return CategoryDataConflict
	default:
		return CategoryOther
	}
}

// Abort describes one transaction abort: the reason plus the processor's own
// persistent/transient decision (reported by zEC12, Intel and POWER8;
// Section 2). Capacity overflows are reported persistent; everything else
// transient.
type Abort struct {
	Reason     Reason
	Persistent bool
}

// IsCapacity reports whether the abort was any flavour of capacity overflow.
func (a Abort) IsCapacity() bool { return a.Reason.Category() == CategoryCapacity }
