//go:build !racecheck

package mem

// debugChecks mirrors internal/htm's racecheck gating: expensive allocator
// cross-checks compile to nothing in normal builds. The cheap classTab-based
// double-free/interior-free panic in FreeArena is always on; the shadow map
// here only adds exact bookkeeping diagnostics under -tags racecheck.
const debugChecks = false

// liveTracker is the no-op variant; all methods compile away.
type liveTracker struct{}

func (liveTracker) init()                 {}
func (liveTracker) reset()                {}
func (liveTracker) alloc(a uint64, n int) {}
func (liveTracker) free(a uint64, n int)  {}
