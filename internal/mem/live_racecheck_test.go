//go:build racecheck

package mem

import "testing"

// The shadow live tracker only exists under -tags racecheck (make race);
// these tests pin that the debug build still delivers the allocator
// diagnostics the ISSUE moved out of the hot path.

func TestRacecheckDoubleFreePanics(t *testing.T) {
	if !debugChecks {
		t.Fatal("debugChecks false under racecheck tag")
	}
	s := NewSpace(1 << 12)
	a := s.Alloc(32)
	s.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic under racecheck")
		}
	}()
	s.Free(a)
}

func TestRacecheckShadowSurvivesReset(t *testing.T) {
	s := NewSpace(1 << 12)
	a := s.Alloc(32)
	s.Reset()
	// The shadow map must have been cleared, or this fresh-Space-equivalent
	// allocation (same address as a) would trip the overlap check.
	b := s.Alloc(32)
	if b != a {
		t.Fatalf("post-Reset alloc at %#x, want %#x", b, a)
	}
	s.Free(b)
}
