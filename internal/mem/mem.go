// Package mem implements the simulated flat memory that every transactional
// workload in this repository runs against.
//
// Real HTM tracks physical cache lines, so a faithful behavioural model needs
// workloads whose data structures live at concrete addresses with controlled
// layout (padding, alignment, adjacency — the things Section 4 of the paper
// fixes in STAMP). A Space is a single []byte arena; simulated pointers are
// uint64 byte offsets into it. Offset 0 is reserved as the nil pointer.
//
// Space provides raw, untracked accessors. Transactional (tracked, buffered)
// accesses are performed through internal/htm, which layers conflict
// detection and store buffering on top of the same arena.
//
// The allocator is allocation-free on the host side: blocks come from
// per-arena size-class free lists (owner-thread-only, no locks) backed by a
// lock-free global bump pointer, and block metadata lives in a flat
// class-index side table (one byte per 8-byte granule) instead of a map.
// Allocation order — and therefore every simulated address, and therefore
// every conflict line — is identical to the previous mutex+map
// implementation, which the full-sweep golden byte-identity test pins.
package mem

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Addr is a simulated memory address: a byte offset into a Space's arena.
type Addr = uint64

// Nil is the simulated null pointer.
const Nil Addr = 0

// WordSize is the size of a simulated machine word in bytes. All pointers
// and integer fields in the transactional data structures are 8-byte words.
const WordSize = 8

// maxArenas bounds the per-hardware-thread allocation contexts; it matches
// the engine's 256-thread ceiling (the largest paper configuration is 64).
const maxArenas = 256

// Size classes: multiples of 8 up to 256 (32 classes), then powers of two
// from 512. Small classes keep STAMP's many small node allocations dense;
// the power-of-two tail bounds free-list fragmentation for big blocks.
const (
	numSmallClasses = 32 // 8, 16, ..., 256
	numClasses      = numSmallClasses + 26
)

// Space is a simulated flat memory arena with per-arena size-class free
// lists over a lock-free bump allocator. The zero value is not usable;
// construct with NewSpace.
//
// Concurrency contract: the global bump pointer and the used counter are
// atomics, so concurrent AllocArena/FreeArena calls on *different* arena IDs
// are safe without locks; each arena ID must be driven by at most one
// goroutine at a time (the engine maps arena ID to hardware-thread slot).
// Arena 0 — the Alloc/Free default — is for single-threaded setup/teardown.
//
// Raw accessors (Load*/Store*) perform no conflict tracking and must only be
// used during single-threaded setup/teardown or for provably thread-private
// data; concurrent phases go through the HTM engine.
type Space struct {
	data []byte

	next atomic.Uint64 // global bump pointer (always 8-byte aligned)
	used atomic.Uint64 // bytes currently allocated

	// classTab holds, for every 8-byte granule that starts a live block,
	// the block's size-class index + 1 (0 = not a block start). It replaces
	// the old live map: O(1) size lookup on Free, inherent double-free and
	// interior-free detection, and no map bookkeeping on the hot path.
	classTab []uint8

	// live is the shadow allocation tracker compiled in by -tags racecheck;
	// a no-op otherwise. It cross-checks classTab against an exact map.
	live liveTracker

	// arenas are per-hardware-thread allocation contexts: each bump-
	// allocates within private chunks carved from the global region, the
	// way per-thread malloc arenas (and STAMP's thread-local pools) keep
	// concurrently allocating threads off each other's cache lines.
	// Without this, transactions that allocate get adjacent blocks and
	// conflict falsely on every allocation. Each arena is owner-only, so
	// the array needs no lock.
	arenas []arena

	// regions are the labelled address ranges (Label/RegionAt), sorted by
	// start address on first lookup (regionsDirty). Setup-time only;
	// observability tooling reads them to name abort-attribution hot spots
	// symbolically.
	regionMu     sync.Mutex
	regions      []region
	regionsDirty bool
}

// region is one labelled address range [start, start+size).
type region struct {
	start uint64
	size  uint64
	name  string
}

// arenaChunk is the size of the region an arena carves from the global
// space at a time. It is line-aligned (256 is the largest modelled line).
const arenaChunk = 8 << 10

// arena is one thread-private allocation context. All fields are owner-only.
type arena struct {
	cur, end uint64
	// free holds one LIFO free list per size class, allocated on first
	// free so idle arenas cost two words.
	free [][]uint64
}

// NewSpace returns a Space with the given arena size in bytes. Size is
// rounded up to a multiple of 8. The first word is reserved so that no
// allocation is ever at address 0.
func NewSpace(size int) *Space {
	if size < 64 {
		size = 64
	}
	size = (size + 7) &^ 7
	s := &Space{
		data:     make([]byte, size),
		classTab: make([]uint8, size/WordSize),
		arenas:   make([]arena, maxArenas),
	}
	s.live.init()
	s.next.Store(WordSize) // reserve address 0 as nil
	return s
}

// Reset returns the Space to its freshly constructed state — all memory
// zeroed, all allocations and labels dropped — without reallocating the
// arena, so sweep workers can recycle multi-MB Spaces across cells. Only
// the high-water-marked region is wiped. A Reset Space behaves identically
// to a new one: allocation and conflict behaviour of the next run are
// byte-for-byte those of a fresh Space (pinned by the reuse-equivalence
// tests and the sweep golden output). Call only while no thread is using
// the Space.
func (s *Space) Reset() {
	hi := s.next.Load()
	clear(s.data[:hi])
	clear(s.classTab[:(hi+WordSize-1)/WordSize])
	s.next.Store(WordSize)
	s.used.Store(0)
	for i := range s.arenas {
		ar := &s.arenas[i]
		ar.cur, ar.end = 0, 0
		for c := range ar.free {
			ar.free[c] = ar.free[c][:0]
		}
	}
	s.regionMu.Lock()
	s.regions = s.regions[:0]
	s.regionsDirty = false
	s.regionMu.Unlock()
	s.live.reset()
}

// Size returns the arena size in bytes.
func (s *Space) Size() int { return len(s.data) }

// Used returns the number of bytes currently allocated.
func (s *Space) Used() uint64 { return s.used.Load() }

// Data exposes the raw arena. It is intended for the HTM engine's commit
// write-back and for tests; workloads should not touch it directly.
func (s *Space) Data() []byte { return s.data }

// roundSize rounds a request up to its size class: multiples of 8 up to 256,
// then powers of two.
func roundSize(n int) int {
	if n <= 0 {
		n = 1
	}
	if n <= 256 {
		return (n + 7) &^ 7
	}
	c := 512
	for c < n {
		c <<= 1
	}
	return c
}

// classIndex maps a rounded size to its class index.
func classIndex(cls int) int {
	if cls <= 256 {
		return cls/WordSize - 1
	}
	i := numSmallClasses
	for c := 512; c < cls; c <<= 1 {
		i++
	}
	return i
}

// classSize is the inverse of classIndex.
func classSize(idx int) int {
	if idx < numSmallClasses {
		return (idx + 1) * WordSize
	}
	return 512 << (idx - numSmallClasses)
}

// Alloc allocates size bytes from arena 0 and returns the block address.
// The block contents are zeroed. It panics if the space is exhausted: the
// workloads are sized to fit, so exhaustion is a configuration bug, not a
// runtime error to handle.
func (s *Space) Alloc(size int) Addr {
	return s.AllocArena(size, WordSize, 0)
}

// AllocAligned allocates size bytes from arena 0 at an address that is a
// multiple of align (a power of two >= 8). The paper's kmeans fix
// (Section 4) aligns clusters to cache-line boundaries; this is the
// primitive that enables it.
func (s *Space) AllocAligned(size int, align int) Addr {
	return s.AllocArena(size, align, 0)
}

// AllocArena allocates from the given thread arena. Concurrent allocators on
// different arenas never receive blocks in the same chunk.
func (s *Space) AllocArena(size, align, arenaID int) Addr {
	if align < WordSize {
		align = WordSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	if arenaID < 0 || arenaID >= maxArenas {
		panic(fmt.Sprintf("mem: arena ID %d out of range [0,%d)", arenaID, maxArenas))
	}
	cls := roundSize(size)
	ci := classIndex(cls)
	if ci >= numClasses {
		panic(fmt.Sprintf("mem: allocation of %d bytes exceeds the largest size class", size))
	}
	ar := &s.arenas[arenaID]

	// Reuse a free block of the exact class if one satisfies the alignment.
	if align == WordSize && ar.free != nil {
		if list := ar.free[ci]; len(list) > 0 {
			a := list[len(list)-1]
			ar.free[ci] = list[:len(list)-1]
			s.mark(a, ci, cls)
			clear(s.data[a : a+uint64(cls)])
			return a
		}
	}

	// Oversized or highly aligned requests go straight to the global
	// region; small ones bump within the arena's private chunk.
	if cls+align > arenaChunk/2 {
		a := s.bump(uint64(cls), uint64(align))
		s.mark(a, ci, cls)
		return a
	}
	a := (ar.cur + uint64(align) - 1) &^ (uint64(align) - 1)
	if a+uint64(cls) > ar.end {
		// Carve a fresh chunk unless headroom is too low (tiny test
		// spaces), in which case the block is served from the global
		// region directly.
		start, ok := uint64(0), false
		if s.next.Load()+arenaChunk+256 <= uint64(len(s.data)) {
			start, ok = s.bumpTry(arenaChunk, 256)
		}
		if !ok {
			g := s.bump(uint64(cls), uint64(align))
			s.mark(g, ci, cls)
			return g
		}
		ar.cur, ar.end = start, start+arenaChunk
		a = (ar.cur + uint64(align) - 1) &^ (uint64(align) - 1)
	}
	ar.cur = a + uint64(cls)
	s.mark(a, ci, cls)
	return a
}

// mark records a fresh allocation in the side table and counters.
func (s *Space) mark(a uint64, ci, cls int) {
	s.classTab[a/WordSize] = uint8(ci + 1)
	s.used.Add(uint64(cls))
	s.live.alloc(a, cls)
}

// bumpTry advances the global bump pointer by a lock-free CAS, returning
// ok=false when the space cannot satisfy the request.
func (s *Space) bumpTry(n, align uint64) (uint64, bool) {
	for {
		cur := s.next.Load()
		a := (cur + align - 1) &^ (align - 1)
		end := a + n
		if end > uint64(len(s.data)) {
			return 0, false
		}
		if s.next.CompareAndSwap(cur, end) {
			return a, true
		}
	}
}

// bump is bumpTry with the exhaustion panic.
func (s *Space) bump(n, align uint64) uint64 {
	a, ok := s.bumpTry(n, align)
	if !ok {
		panic(fmt.Sprintf("mem: space exhausted: need %d bytes, size %d (used %d)",
			n, len(s.data), s.used.Load()))
	}
	return a
}

// Free returns the block at a to a size-class free list. Freeing Nil is a
// no-op. Freeing an address that is not a live allocation panics (it is
// always a workload bug).
func (s *Space) Free(a Addr) {
	s.FreeArena(a, 0)
}

// FreeArena returns the block to the given arena's free list (usually the
// freeing thread's, for reuse locality).
func (s *Space) FreeArena(a Addr, arenaID int) {
	if a == Nil {
		return
	}
	if arenaID < 0 || arenaID >= maxArenas {
		panic(fmt.Sprintf("mem: arena ID %d out of range [0,%d)", arenaID, maxArenas))
	}
	if a%WordSize != 0 || a >= uint64(len(s.data)) {
		panic(fmt.Sprintf("mem: free of non-allocated address %#x", a))
	}
	ci := int(s.classTab[a/WordSize])
	if ci == 0 {
		// Never allocated, already freed, or an interior pointer.
		panic(fmt.Sprintf("mem: free of non-allocated address %#x", a))
	}
	ci--
	cls := classSize(ci)
	s.live.free(a, cls)
	s.classTab[a/WordSize] = 0
	s.used.Add(^uint64(cls - 1)) // atomic subtract
	ar := &s.arenas[arenaID]
	if ar.free == nil {
		ar.free = make([][]uint64, numClasses)
	}
	ar.free[ci] = append(ar.free[ci], a)
}

// Label names the address range [a, a+size) for diagnostics. Workload
// constructors label their shared structures at setup time so that
// observability tooling (internal/obs abort attribution) can report
// conflicting cache lines as "stamp/intruder/fragmap" instead of a raw
// address. Labels are informational only: they do not affect allocation or
// conflict detection. Overlapping labels resolve to the innermost one (the
// covering region with the greatest start address; ties go to the most
// recently added). Call during single-threaded setup.
func (s *Space) Label(a Addr, size int, name string) {
	if size <= 0 || name == "" {
		return
	}
	s.regionMu.Lock()
	defer s.regionMu.Unlock()
	s.regions = append(s.regions, region{start: a, size: uint64(size), name: name})
	s.regionsDirty = true
}

// RegionAt returns the label covering address a, or "" when a falls in no
// labelled region. Safe for concurrent use once setup is done.
func (s *Space) RegionAt(a Addr) string {
	s.regionMu.Lock()
	defer s.regionMu.Unlock()
	if s.regionsDirty {
		sort.SliceStable(s.regions, func(i, j int) bool {
			return s.regions[i].start < s.regions[j].start
		})
		s.regionsDirty = false
	}
	// First region starting after a; candidates are the ones before it.
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].start > a })
	for j := i - 1; j >= 0; j-- {
		r := s.regions[j]
		if a < r.start+r.size {
			return r.name
		}
	}
	return ""
}

// BlockSize returns the rounded size of the live allocation at a, or 0 if a
// is not a live allocation.
func (s *Space) BlockSize(a Addr) int {
	if a%WordSize != 0 || a >= uint64(len(s.data)) {
		return 0
	}
	ci := int(s.classTab[a/WordSize])
	if ci == 0 {
		return 0
	}
	return classSize(ci - 1)
}

// accessPanic reports a bad raw access; out of line so the accessors stay
// leaf-inlinable.
func (s *Space) accessPanic(a Addr, n int) {
	if a == Nil {
		panic("mem: access through nil simulated pointer")
	}
	panic(fmt.Sprintf("mem: access [%#x,%#x) out of arena bounds %d", a, a+uint64(n), len(s.data)))
}

// The raw accessors decode little-endian words with direct byte arithmetic
// on a constant-length subslice: one explicit bounds check, no
// encoding/binary call, and the compiler collapses the byte combine into a
// single load/store on little-endian hosts.

// Load64 reads the 8-byte word at address a (untracked).
func (s *Space) Load64(a Addr) uint64 {
	if a == Nil || a+8 > uint64(len(s.data)) {
		s.accessPanic(a, 8)
	}
	b := s.data[a : a+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Store64 writes the 8-byte word v at address a (untracked).
func (s *Space) Store64(a Addr, v uint64) {
	if a == Nil || a+8 > uint64(len(s.data)) {
		s.accessPanic(a, 8)
	}
	b := s.data[a : a+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Load32 reads the 4-byte word at address a (untracked).
func (s *Space) Load32(a Addr) uint32 {
	if a == Nil || a+4 > uint64(len(s.data)) {
		s.accessPanic(a, 4)
	}
	b := s.data[a : a+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Store32 writes the 4-byte word v at address a (untracked).
func (s *Space) Store32(a Addr, v uint32) {
	if a == Nil || a+4 > uint64(len(s.data)) {
		s.accessPanic(a, 4)
	}
	b := s.data[a : a+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Load8 reads the byte at address a (untracked).
func (s *Space) Load8(a Addr) byte {
	if a == Nil || a >= uint64(len(s.data)) {
		s.accessPanic(a, 1)
	}
	return s.data[a]
}

// Store8 writes the byte v at address a (untracked).
func (s *Space) Store8(a Addr, v byte) {
	if a == Nil || a >= uint64(len(s.data)) {
		s.accessPanic(a, 1)
	}
	s.data[a] = v
}

// LoadFloat64 reads the float64 at address a (untracked).
func (s *Space) LoadFloat64(a Addr) float64 {
	return math.Float64frombits(s.Load64(a))
}

// StoreFloat64 writes the float64 v at address a (untracked).
func (s *Space) StoreFloat64(a Addr, v float64) {
	s.Store64(a, math.Float64bits(v))
}

// LoadInt64 reads the word at a as a signed integer (untracked).
func (s *Space) LoadInt64(a Addr) int64 { return int64(s.Load64(a)) }

// StoreInt64 writes the signed integer v at address a (untracked).
func (s *Space) StoreInt64(a Addr, v int64) { s.Store64(a, uint64(v)) }

// WriteBytes copies b into the arena at address a (untracked).
func (s *Space) WriteBytes(a Addr, b []byte) {
	if a == Nil || a+uint64(len(b)) > uint64(len(s.data)) {
		s.accessPanic(a, len(b))
	}
	copy(s.data[a:], b)
}

// ReadBytes copies n bytes starting at address a out of the arena (untracked).
func (s *Space) ReadBytes(a Addr, n int) []byte {
	if a == Nil || a+uint64(n) > uint64(len(s.data)) {
		s.accessPanic(a, n)
	}
	out := make([]byte, n)
	copy(out, s.data[a:])
	return out
}

// WriteString stores the string v as a length-prefixed byte sequence in a
// freshly allocated block and returns its address. ReadString reverses it.
// STAMP's genome stores nucleotide segment strings in shared memory.
func (s *Space) WriteString(v string) Addr {
	a := s.Alloc(8 + len(v))
	s.Store64(a, uint64(len(v)))
	s.WriteBytes(a+8, []byte(v))
	return a
}

// ReadString reads a string previously stored with WriteString.
func (s *Space) ReadString(a Addr) string {
	n := int(s.Load64(a))
	return string(s.ReadBytes(a+8, n))
}
