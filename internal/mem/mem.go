// Package mem implements the simulated flat memory that every transactional
// workload in this repository runs against.
//
// Real HTM tracks physical cache lines, so a faithful behavioural model needs
// workloads whose data structures live at concrete addresses with controlled
// layout (padding, alignment, adjacency — the things Section 4 of the paper
// fixes in STAMP). A Space is a single []byte arena; simulated pointers are
// uint64 byte offsets into it. Offset 0 is reserved as the nil pointer.
//
// Space provides raw, untracked accessors. Transactional (tracked, buffered)
// accesses are performed through internal/htm, which layers conflict
// detection and store buffering on top of the same arena.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Addr is a simulated memory address: a byte offset into a Space's arena.
type Addr = uint64

// Nil is the simulated null pointer.
const Nil Addr = 0

// WordSize is the size of a simulated machine word in bytes. All pointers
// and integer fields in the transactional data structures are 8-byte words.
const WordSize = 8

// Space is a simulated flat memory arena with a word-aligned first-fit
// allocator. The zero value is not usable; construct with NewSpace.
//
// Raw accessors (Load*/Store*) perform no conflict tracking and must only be
// used during single-threaded setup/teardown or for provably thread-private
// data; concurrent phases go through the HTM engine.
type Space struct {
	data []byte

	mu   sync.Mutex
	next uint64         // global bump pointer (always 8-byte aligned)
	live map[uint64]int // allocated block -> rounded size (for Free/double-free checks)
	used uint64         // bytes currently allocated

	// arenas are per-hardware-thread allocation contexts: each bump-
	// allocates within private chunks carved from the global region, the
	// way per-thread malloc arenas (and STAMP's thread-local pools) keep
	// concurrently allocating threads off each other's cache lines.
	// Without this, transactions that allocate get adjacent blocks and
	// conflict falsely on every allocation.
	arenas map[int]*arena

	// regions are the labelled address ranges (Label/RegionAt), sorted by
	// start address on first lookup (regionsDirty). Setup-time only;
	// observability tooling reads them to name abort-attribution hot spots
	// symbolically.
	regions      []region
	regionsDirty bool
}

// region is one labelled address range [start, start+size).
type region struct {
	start uint64
	size  uint64
	name  string
}

// arenaChunk is the size of the region an arena carves from the global
// space at a time. It is line-aligned (256 is the largest modelled line).
const arenaChunk = 8 << 10

type arena struct {
	cur, end uint64
	free     map[int][]uint64
}

// NewSpace returns a Space with the given arena size in bytes. Size is
// rounded up to a multiple of 8. The first word is reserved so that no
// allocation is ever at address 0.
func NewSpace(size int) *Space {
	if size < 64 {
		size = 64
	}
	size = (size + 7) &^ 7
	return &Space{
		data:   make([]byte, size),
		next:   WordSize, // reserve address 0 as nil
		live:   make(map[uint64]int),
		arenas: make(map[int]*arena),
	}
}

// Size returns the arena size in bytes.
func (s *Space) Size() int { return len(s.data) }

// Used returns the number of bytes currently allocated.
func (s *Space) Used() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Data exposes the raw arena. It is intended for the HTM engine's commit
// write-back and for tests; workloads should not touch it directly.
func (s *Space) Data() []byte { return s.data }

// roundSize rounds a request up to its size class: multiples of 8 up to 256,
// then powers of two. Small classes keep STAMP's many small node allocations
// dense; the power-of-two tail bounds free-list fragmentation for big blocks.
func roundSize(n int) int {
	if n <= 0 {
		n = 1
	}
	if n <= 256 {
		return (n + 7) &^ 7
	}
	c := 512
	for c < n {
		c <<= 1
	}
	return c
}

// Alloc allocates size bytes from arena 0 and returns the block address.
// The block contents are zeroed. It panics if the space is exhausted: the
// workloads are sized to fit, so exhaustion is a configuration bug, not a
// runtime error to handle.
func (s *Space) Alloc(size int) Addr {
	return s.AllocArena(size, WordSize, 0)
}

// AllocAligned allocates size bytes from arena 0 at an address that is a
// multiple of align (a power of two >= 8). The paper's kmeans fix
// (Section 4) aligns clusters to cache-line boundaries; this is the
// primitive that enables it.
func (s *Space) AllocAligned(size int, align int) Addr {
	return s.AllocArena(size, align, 0)
}

// AllocArena allocates from the given thread arena. Concurrent allocators on
// different arenas never receive blocks in the same chunk.
func (s *Space) AllocArena(size, align, arenaID int) Addr {
	if align < WordSize {
		align = WordSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	cls := roundSize(size)
	s.mu.Lock()
	defer s.mu.Unlock()

	ar := s.arenas[arenaID]
	if ar == nil {
		ar = &arena{free: make(map[int][]uint64)}
		s.arenas[arenaID] = ar
	}

	// Reuse a free block of the exact class if one satisfies the alignment.
	if align == WordSize {
		if list := ar.free[cls]; len(list) > 0 {
			a := list[len(list)-1]
			ar.free[cls] = list[:len(list)-1]
			s.live[a] = cls
			s.used += uint64(cls)
			zero(s.data[a : a+uint64(cls)])
			return a
		}
	}

	// Oversized or highly aligned requests go straight to the global
	// region; small ones bump within the arena's private chunk.
	if cls+align > arenaChunk/2 {
		a := s.bumpLocked(cls, align)
		s.live[a] = cls
		s.used += uint64(cls)
		return a
	}
	a := (ar.cur + uint64(align) - 1) &^ (uint64(align) - 1)
	if a+uint64(cls) > ar.end {
		if s.next+arenaChunk+256 > uint64(len(s.data)) {
			// Too little headroom for a fresh chunk (tiny test spaces):
			// serve the block from the global region directly.
			g := s.bumpLocked(cls, align)
			s.live[g] = cls
			s.used += uint64(cls)
			return g
		}
		start := s.bumpLocked(arenaChunk, 256)
		ar.cur, ar.end = start, start+arenaChunk
		a = (ar.cur + uint64(align) - 1) &^ (uint64(align) - 1)
	}
	ar.cur = a + uint64(cls)
	s.live[a] = cls
	s.used += uint64(cls)
	return a
}

// bumpLocked advances the global bump pointer. Caller holds s.mu.
func (s *Space) bumpLocked(cls, align int) uint64 {
	a := (s.next + uint64(align) - 1) &^ (uint64(align) - 1)
	end := a + uint64(cls)
	if end > uint64(len(s.data)) {
		panic(fmt.Sprintf("mem: space exhausted: need %d bytes at %d, size %d (used %d)",
			cls, a, len(s.data), s.used))
	}
	s.next = end
	return a
}

// Free returns the block at a to a size-class free list. Freeing Nil is a
// no-op. Freeing an address that is not a live allocation panics (it is
// always a workload bug).
func (s *Space) Free(a Addr) {
	s.FreeArena(a, 0)
}

// FreeArena returns the block to the given arena's free list (usually the
// freeing thread's, for reuse locality).
func (s *Space) FreeArena(a Addr, arenaID int) {
	if a == Nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cls, ok := s.live[a]
	if !ok {
		panic(fmt.Sprintf("mem: free of non-allocated address %#x", a))
	}
	delete(s.live, a)
	s.used -= uint64(cls)
	ar := s.arenas[arenaID]
	if ar == nil {
		ar = &arena{free: make(map[int][]uint64)}
		s.arenas[arenaID] = ar
	}
	ar.free[cls] = append(ar.free[cls], a)
}

// Label names the address range [a, a+size) for diagnostics. Workload
// constructors label their shared structures at setup time so that
// observability tooling (internal/obs abort attribution) can report
// conflicting cache lines as "stamp/intruder/fragmap" instead of a raw
// address. Labels are informational only: they do not affect allocation or
// conflict detection. Overlapping labels resolve to the innermost one (the
// covering region with the greatest start address; ties go to the most
// recently added). Call during single-threaded setup.
func (s *Space) Label(a Addr, size int, name string) {
	if size <= 0 || name == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regions = append(s.regions, region{start: a, size: uint64(size), name: name})
	s.regionsDirty = true
}

// RegionAt returns the label covering address a, or "" when a falls in no
// labelled region. Safe for concurrent use once setup is done.
func (s *Space) RegionAt(a Addr) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.regionsDirty {
		sort.SliceStable(s.regions, func(i, j int) bool {
			return s.regions[i].start < s.regions[j].start
		})
		s.regionsDirty = false
	}
	// First region starting after a; candidates are the ones before it.
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].start > a })
	for j := i - 1; j >= 0; j-- {
		r := s.regions[j]
		if a < r.start+r.size {
			return r.name
		}
	}
	return ""
}

// BlockSize returns the rounded size of the live allocation at a, or 0 if a
// is not a live allocation.
func (s *Space) BlockSize(a Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live[a]
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func (s *Space) check(a Addr, n int) {
	if a == Nil {
		panic("mem: access through nil simulated pointer")
	}
	if a+uint64(n) > uint64(len(s.data)) {
		panic(fmt.Sprintf("mem: access [%#x,%#x) out of arena bounds %d", a, a+uint64(n), len(s.data)))
	}
}

// Load64 reads the 8-byte word at address a (untracked).
func (s *Space) Load64(a Addr) uint64 {
	s.check(a, 8)
	return binary.LittleEndian.Uint64(s.data[a:])
}

// Store64 writes the 8-byte word v at address a (untracked).
func (s *Space) Store64(a Addr, v uint64) {
	s.check(a, 8)
	binary.LittleEndian.PutUint64(s.data[a:], v)
}

// Load32 reads the 4-byte word at address a (untracked).
func (s *Space) Load32(a Addr) uint32 {
	s.check(a, 4)
	return binary.LittleEndian.Uint32(s.data[a:])
}

// Store32 writes the 4-byte word v at address a (untracked).
func (s *Space) Store32(a Addr, v uint32) {
	s.check(a, 4)
	binary.LittleEndian.PutUint32(s.data[a:], v)
}

// Load8 reads the byte at address a (untracked).
func (s *Space) Load8(a Addr) byte {
	s.check(a, 1)
	return s.data[a]
}

// Store8 writes the byte v at address a (untracked).
func (s *Space) Store8(a Addr, v byte) {
	s.check(a, 1)
	s.data[a] = v
}

// LoadFloat64 reads the float64 at address a (untracked).
func (s *Space) LoadFloat64(a Addr) float64 {
	return math.Float64frombits(s.Load64(a))
}

// StoreFloat64 writes the float64 v at address a (untracked).
func (s *Space) StoreFloat64(a Addr, v float64) {
	s.Store64(a, math.Float64bits(v))
}

// LoadInt64 reads the word at a as a signed integer (untracked).
func (s *Space) LoadInt64(a Addr) int64 { return int64(s.Load64(a)) }

// StoreInt64 writes the signed integer v at address a (untracked).
func (s *Space) StoreInt64(a Addr, v int64) { s.Store64(a, uint64(v)) }

// WriteBytes copies b into the arena at address a (untracked).
func (s *Space) WriteBytes(a Addr, b []byte) {
	s.check(a, len(b))
	copy(s.data[a:], b)
}

// ReadBytes copies n bytes starting at address a out of the arena (untracked).
func (s *Space) ReadBytes(a Addr, n int) []byte {
	s.check(a, n)
	out := make([]byte, n)
	copy(out, s.data[a:])
	return out
}

// WriteString stores the string v as a length-prefixed byte sequence in a
// freshly allocated block and returns its address. ReadString reverses it.
// STAMP's genome stores nucleotide segment strings in shared memory.
func (s *Space) WriteString(v string) Addr {
	a := s.Alloc(8 + len(v))
	s.Store64(a, uint64(len(v)))
	s.WriteBytes(a+8, []byte(v))
	return a
}

// ReadString reads a string previously stored with WriteString.
func (s *Space) ReadString(a Addr) string {
	n := int(s.Load64(a))
	return string(s.ReadBytes(a+8, n))
}
