//go:build racecheck

package mem

import (
	"fmt"
	"sync"
)

// debugChecks enables the shadow allocation tracker: an exact live map that
// cross-checks the classTab side table on every alloc and free. Catches
// side-table corruption (e.g. a workload writing through a stale pointer
// into another block's granule) that the cheap always-on checks cannot.
const debugChecks = true

type liveTracker struct {
	mu   sync.Mutex
	live map[uint64]int
}

func (l *liveTracker) init() {
	l.live = make(map[uint64]int)
}

func (l *liveTracker) reset() {
	l.mu.Lock()
	clear(l.live)
	l.mu.Unlock()
}

func (l *liveTracker) alloc(a uint64, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.live[a]; ok {
		panic(fmt.Sprintf("mem: racecheck: alloc at %#x overlaps live %d-byte block", a, old))
	}
	l.live[a] = n
}

func (l *liveTracker) free(a uint64, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	got, ok := l.live[a]
	if !ok {
		panic(fmt.Sprintf("mem: racecheck: free of non-live address %#x", a))
	}
	if got != n {
		panic(fmt.Sprintf("mem: racecheck: free of %#x sees class %d, shadow map says %d", a, n, got))
	}
	delete(l.live, a)
}
