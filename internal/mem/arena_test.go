package mem

import "testing"

func TestArenaIsolation(t *testing.T) {
	s := NewSpace(1 << 20)
	// Interleaved small allocations from two arenas must come from
	// different chunks: no block of arena 1 may fall within one line
	// (256 B) of an arena-0 block allocated adjacently in time.
	var a0, a1 []Addr
	for i := 0; i < 50; i++ {
		a0 = append(a0, s.AllocArena(24, 8, 0))
		a1 = append(a1, s.AllocArena(24, 8, 1))
	}
	for _, x := range a0 {
		for _, y := range a1 {
			dx := int64(x) - int64(y)
			if dx < 0 {
				dx = -dx
			}
			if dx < 256 {
				t.Fatalf("arena blocks %#x and %#x within one line of each other", x, y)
			}
		}
	}
}

func TestArenaChunkSequentialWithin(t *testing.T) {
	s := NewSpace(1 << 20)
	a := s.AllocArena(32, 8, 3)
	b := s.AllocArena(32, 8, 3)
	if b != a+32 {
		t.Errorf("same-arena allocations not contiguous: %#x then %#x", a, b)
	}
}

func TestArenaFreeListReuse(t *testing.T) {
	s := NewSpace(1 << 20)
	a := s.AllocArena(48, 8, 2)
	s.FreeArena(a, 2)
	b := s.AllocArena(48, 8, 2)
	if a != b {
		t.Errorf("freed block not reused within its arena: %#x then %#x", a, b)
	}
	// Cross-arena free: block allocated in arena 2, freed into arena 5,
	// reused from arena 5's list.
	s.FreeArena(b, 5)
	c := s.AllocArena(48, 8, 5)
	if c != b {
		t.Errorf("cross-arena freed block not reused: %#x then %#x", b, c)
	}
}

func TestArenaLargeAllocationsBypassChunks(t *testing.T) {
	s := NewSpace(1 << 20)
	big := s.AllocArena(arenaChunk, 8, 0) // larger than half a chunk
	if big == Nil {
		t.Fatal("large allocation failed")
	}
	if s.BlockSize(big) < arenaChunk {
		t.Errorf("large block size = %d", s.BlockSize(big))
	}
}

func TestArenaAlignedWithinChunk(t *testing.T) {
	s := NewSpace(1 << 20)
	for i := 0; i < 20; i++ {
		a := s.AllocArena(40, 256, 7)
		if a%256 != 0 {
			t.Fatalf("aligned arena allocation %#x misaligned", a)
		}
	}
}
