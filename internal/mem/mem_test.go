package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocZeroesAndAligns(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc(24)
	if a == Nil {
		t.Fatal("Alloc returned nil address")
	}
	if a%WordSize != 0 {
		t.Errorf("address %#x not word aligned", a)
	}
	for i := 0; i < 24; i++ {
		if s.Load8(a+uint64(i)) != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
}

func TestAllocAligned(t *testing.T) {
	s := NewSpace(1 << 16)
	for _, align := range []int{8, 64, 128, 256} {
		a := s.AllocAligned(40, align)
		if a%uint64(align) != 0 {
			t.Errorf("AllocAligned(%d): address %#x misaligned", align, a)
		}
	}
}

func TestAllocAlignedRejectsNonPowerOfTwo(t *testing.T) {
	s := NewSpace(1 << 12)
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two alignment did not panic")
		}
	}()
	s.AllocAligned(8, 24)
}

func TestFreeReuse(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc(64)
	s.Store64(a, 0xdeadbeef)
	s.Free(a)
	b := s.Alloc(64) // same size class: must reuse the freed block
	if b != a {
		t.Errorf("free block not reused: %#x then %#x", a, b)
	}
	if s.Load64(b) != 0 {
		t.Error("reused block not zeroed")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	s := NewSpace(1 << 12)
	a := s.Alloc(8)
	s.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	s.Free(a)
}

func TestFreeNilIsNoop(t *testing.T) {
	s := NewSpace(1 << 12)
	s.Free(Nil) // must not panic
}

func TestUsedAccounting(t *testing.T) {
	s := NewSpace(1 << 16)
	if s.Used() != 0 {
		t.Fatalf("fresh space Used = %d", s.Used())
	}
	a := s.Alloc(100) // rounds to 104
	if s.Used() == 0 {
		t.Error("Used did not grow after Alloc")
	}
	s.Free(a)
	if s.Used() != 0 {
		t.Errorf("Used = %d after freeing everything", s.Used())
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	s := NewSpace(256)
	defer func() {
		if recover() == nil {
			t.Error("arena exhaustion did not panic")
		}
	}()
	for i := 0; i < 100; i++ {
		s.Alloc(64)
	}
}

func TestRoundtripAccessors(t *testing.T) {
	s := NewSpace(1 << 12)
	a := s.Alloc(64)
	s.Store64(a, 0x0123456789abcdef)
	if got := s.Load64(a); got != 0x0123456789abcdef {
		t.Errorf("Load64 = %#x", got)
	}
	s.Store32(a+8, 0xcafebabe)
	if got := s.Load32(a + 8); got != 0xcafebabe {
		t.Errorf("Load32 = %#x", got)
	}
	s.StoreFloat64(a+16, -2.5)
	if got := s.LoadFloat64(a + 16); got != -2.5 {
		t.Errorf("LoadFloat64 = %v", got)
	}
	s.StoreInt64(a+24, -123456)
	if got := s.LoadInt64(a + 24); got != -123456 {
		t.Errorf("LoadInt64 = %v", got)
	}
	s.WriteBytes(a+32, []byte("hello"))
	if got := string(s.ReadBytes(a+32, 5)); got != "hello" {
		t.Errorf("ReadBytes = %q", got)
	}
}

func TestStringRoundtrip(t *testing.T) {
	s := NewSpace(1 << 14)
	check := func(v string) bool {
		if len(v) > 1000 {
			v = v[:1000]
		}
		a := s.WriteString(v)
		return s.ReadString(a) == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNilAccessPanics(t *testing.T) {
	s := NewSpace(1 << 12)
	defer func() {
		if recover() == nil {
			t.Error("nil access did not panic")
		}
	}()
	s.Load64(Nil)
}

func TestOutOfBoundsPanics(t *testing.T) {
	s := NewSpace(1 << 12)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds access did not panic")
		}
	}()
	s.Load64(uint64(s.Size()) - 4)
}

func TestRoundSizeClasses(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {24, 24}, {250, 256}, {256, 256},
		{257, 512}, {512, 512}, {513, 1024}, {5000, 8192},
	}
	for _, c := range cases {
		if got := roundSize(c.in); got != c.want {
			t.Errorf("roundSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLabelAndRegionAt(t *testing.T) {
	s := NewSpace(1 << 12)
	if got := s.RegionAt(100); got != "" {
		t.Fatalf("RegionAt on unlabelled space = %q, want empty", got)
	}
	s.Label(64, 64, "tm/global-lock")
	s.Label(256, 1024, "stamp/points")
	s.Label(512, 64, "stamp/hot-cluster") // nested inside stamp/points

	cases := []struct {
		addr Addr
		want string
	}{
		{0, ""},
		{64, "tm/global-lock"},
		{127, "tm/global-lock"},
		{128, ""},
		{256, "stamp/points"},
		{511, "stamp/points"},
		{512, "stamp/hot-cluster"},
		{575, "stamp/hot-cluster"},
		{576, "stamp/points"},
		{1279, "stamp/points"},
		{1280, ""},
	}
	for _, c := range cases {
		if got := s.RegionAt(c.addr); got != c.want {
			t.Errorf("RegionAt(%d) = %q, want %q", c.addr, got, c.want)
		}
	}
	// Labels added after a lookup are picked up (lazy re-sort).
	s.Label(8, 8, "late")
	if got := s.RegionAt(8); got != "late" {
		t.Errorf("RegionAt(8) after late label = %q, want %q", got, "late")
	}
	// Degenerate labels are ignored.
	s.Label(2048, 0, "empty")
	s.Label(2048, 8, "")
	if got := s.RegionAt(2048); got != "" {
		t.Errorf("RegionAt(2048) = %q, want empty (degenerate labels ignored)", got)
	}
}
