package mem

import (
	"sync"
	"testing"

	"htmcmp/internal/prng"
)

// allocScript drives an identical mixed alloc/free sequence against a Space
// and returns every address handed out, in order.
func allocScript(s *Space) []Addr {
	rng := prng.New(7)
	var addrs []Addr
	var liveAddrs []Addr
	for i := 0; i < 400; i++ {
		switch {
		case len(liveAddrs) > 0 && rng.Intn(3) == 0:
			j := rng.Intn(len(liveAddrs))
			s.FreeArena(liveAddrs[j], rng.Intn(4))
			liveAddrs[j] = liveAddrs[len(liveAddrs)-1]
			liveAddrs = liveAddrs[:len(liveAddrs)-1]
		case rng.Intn(8) == 0:
			a := s.AllocAligned(rng.Intn(600)+1, 64)
			addrs = append(addrs, a)
			liveAddrs = append(liveAddrs, a)
		default:
			a := s.AllocArena(rng.Intn(300)+1, WordSize, rng.Intn(4))
			addrs = append(addrs, a)
			liveAddrs = append(liveAddrs, a)
		}
	}
	return addrs
}

// TestResetEquivalence pins the Space.Reset contract the sweep worker pool
// depends on: a reset Space must hand out exactly the address sequence a
// fresh Space would, with all memory zeroed — otherwise pooled cells would
// diverge from the golden tables.
func TestResetEquivalence(t *testing.T) {
	fresh := NewSpace(1 << 20)
	want := allocScript(fresh)

	reused := NewSpace(1 << 20)
	// Dirty it thoroughly: run the script, scribble over the blocks, label
	// regions, then reset.
	for i, a := range allocScript(reused) {
		reused.Store64(a, uint64(i)*0x9e3779b97f4a7c15+1)
	}
	reused.Label(64, 4096, "stale-label")
	reused.Reset()

	if got, want := reused.Used(), uint64(0); got != want {
		t.Fatalf("Used after Reset = %d, want 0", got)
	}
	if got := reused.RegionAt(64); got != "" {
		t.Fatalf("RegionAt after Reset = %q, want empty", got)
	}
	got := allocScript(reused)
	if len(got) != len(want) {
		t.Fatalf("reset Space produced %d allocations, fresh produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("allocation %d: reset Space at %#x, fresh at %#x", i, got[i], want[i])
		}
	}
	for _, a := range got {
		if reused.Load64(a) != 0 {
			t.Fatalf("block at %#x not zeroed after Reset", a)
		}
	}
}

// TestResetDropsFreeLists checks Reset forgets free blocks: reusing a
// pre-Reset free-list entry would desynchronise the address sequence.
func TestResetDropsFreeLists(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc(64)
	b := s.Alloc(64)
	s.Free(b)
	s.Reset()
	c := s.Alloc(64)
	if c != a {
		t.Fatalf("first post-Reset alloc at %#x, want the fresh-Space address %#x", c, a)
	}
}

// TestConcurrentArenaAlloc exercises the lock-free global bump path under
// -race: goroutines on distinct arena IDs allocate and free concurrently,
// forcing chunk carves to contend on the CAS loop. Verifies blocks never
// overlap across arenas and the used counter balances.
func TestConcurrentArenaAlloc(t *testing.T) {
	const workers = 8
	s := NewSpace(32 << 20)
	perWorker := make([][][2]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := prng.New(uint64(id))
			var live []Addr
			for i := 0; i < 2000; i++ {
				if len(live) > 32 || (len(live) > 0 && rng.Intn(4) == 0) {
					s.FreeArena(live[len(live)-1], id)
					live = live[:len(live)-1]
					continue
				}
				n := rng.Intn(900) + 1
				a := s.AllocArena(n, WordSize, id)
				live = append(live, a)
				perWorker[id] = append(perWorker[id], [2]uint64{a, a + uint64(roundSize(n))})
			}
			for _, a := range live {
				s.FreeArena(a, id)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Used(); got != 0 {
		t.Fatalf("Used = %d after freeing everything, want 0", got)
	}
	// Rebuild the allocation intervals; since every address was handed out
	// by mark() exactly once per live period, re-allocated intervals can
	// repeat — dedupe per (start,end) is not enough. Instead verify the
	// invariant that matters: a block handed to worker A while live is
	// never simultaneously handed to worker B. Full overlap tracking needs
	// timestamps; the shadow tracker covers it under -tags racecheck. Here
	// assert the cheaper property that all addresses were word-aligned and
	// in bounds.
	for w, spans := range perWorker {
		for _, sp := range spans {
			if sp[0]%WordSize != 0 || sp[1] > uint64(s.Size()) {
				t.Fatalf("worker %d: bad block [%#x,%#x)", w, sp[0], sp[1])
			}
		}
	}
}

// TestConcurrentAllocThenReset makes sure Reset restores determinism even
// after a nondeterministic concurrent phase scrambled chunk ownership.
func TestConcurrentAllocThenReset(t *testing.T) {
	s := NewSpace(8 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.FreeArena(s.AllocArena(48, WordSize, id), id)
			}
		}(w)
	}
	wg.Wait()
	s.Reset()
	want := NewSpace(8 << 20)
	for i := 0; i < 100; i++ {
		if g, w := s.AllocArena(48, WordSize, i%3), want.AllocArena(48, WordSize, i%3); g != w {
			t.Fatalf("alloc %d after Reset at %#x, fresh Space gives %#x", i, g, w)
		}
	}
}

func TestBlockSize(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc(100)
	if got := s.BlockSize(a); got != 104 {
		t.Fatalf("BlockSize = %d, want 104", got)
	}
	if got := s.BlockSize(a + 8); got != 0 {
		t.Fatalf("BlockSize of interior pointer = %d, want 0", got)
	}
	s.Free(a)
	if got := s.BlockSize(a); got != 0 {
		t.Fatalf("BlockSize after free = %d, want 0", got)
	}
}

// TestInteriorFreePanics: freeing a pointer into the middle of a block must
// panic like any other non-live free (the classTab granule is 0 there).
func TestInteriorFreePanics(t *testing.T) {
	s := NewSpace(1 << 12)
	a := s.Alloc(64)
	defer func() {
		if recover() == nil {
			t.Error("interior free did not panic")
		}
	}()
	s.Free(a + 16)
}
