package cache

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string
	Score float64
	Raw   []int
}

func TestKeyStability(t *testing.T) {
	a, err := Key("v1", payload{Name: "x", Score: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("v1", payload{Name: "x", Score: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same inputs keyed differently: %s vs %s", a, b)
	}
	c, _ := Key("v1", payload{Name: "x", Score: 1.6})
	if a == c {
		t.Error("different inputs collided")
	}
	d, _ := Key("v2", payload{Name: "x", Score: 1.5})
	if a == d {
		t.Error("different versions collided")
	}
	if len(a) != 64 {
		t.Errorf("key length = %d, want 64 hex chars", len(a))
	}
}

func TestKeyUnencodable(t *testing.T) {
	if _, err := Key("v1", func() {}); err == nil {
		t.Error("expected error for unencodable key input")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "genome", Score: 2.25, Raw: []int{1, 2, 3}}
	key, _ := Key("v1", in)
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get(key, &out)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if out.Name != in.Name || out.Score != in.Score || len(out.Raw) != 3 {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get("deadbeef", &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("hit on missing key")
	}
}

func TestCorruptEntryIsMissAndRemoved(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("v1", payload{Name: "x"})
	if err := s.Put(key, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(key), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get(key, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corrupt entry reported as hit")
	}
	if _, err := os.Stat(s.Path(key)); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed")
	}
}

// TestTornWriteEvictsAndRecomputes is the regression test for the
// evict-and-recompute contract: a torn write (a record truncated mid-file,
// as a crashed writer or full disk leaves behind) must surface as a miss
// with the entry evicted and reported through OnEvict, so the caller
// recomputes instead of failing the cell — and the recomputed Put lands.
func TestTornWriteEvictsAndRecomputes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	var reasons []error
	s.OnEvict = func(key string, reason error) {
		evicted = append(evicted, key)
		reasons = append(reasons, reason)
	}
	in := payload{Name: "intruder", Score: 3.5, Raw: []int{9, 8, 7}}
	key, _ := Key("v1", in)
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	// Tear the record: keep only the first half of its bytes.
	full, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(key), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get(key, &out)
	if err != nil {
		t.Fatalf("torn entry surfaced as an error: %v", err)
	}
	if ok {
		t.Fatal("torn entry reported as hit")
	}
	if len(evicted) != 1 || evicted[0] != key {
		t.Fatalf("OnEvict saw %v, want [%s]", evicted, key)
	}
	if len(reasons) != 1 || reasons[0] == nil {
		t.Fatalf("OnEvict reason missing: %v", reasons)
	}
	if _, err := os.Stat(s.Path(key)); !os.IsNotExist(err) {
		t.Fatal("torn entry not evicted from disk")
	}
	// Recompute path: a fresh Put round-trips again.
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Get(key, &out); !ok || out.Name != in.Name {
		t.Fatalf("recomputed record did not land: %v %+v", ok, out)
	}
}

func TestEvictMissingIsSilentNoOp(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s.OnEvict = func(string, error) { calls++ }
	s.Evict("deadbeef", nil) // nothing on disk: must not panic
	if calls != 1 {
		t.Fatalf("OnEvict calls = %d, want 1 (caller-initiated evictions always report)", calls)
	}
}

func TestPutOverwrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("v1", "k")
	if err := s.Put(key, payload{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, payload{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if ok, _ := s.Get(key, &out); !ok || out.Name != "b" {
		t.Errorf("overwrite lost: %+v", out)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("expected error for empty dir")
	}
}

func TestPathFanout(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := s.Path("abcdef")
	if filepath.Dir(p) != filepath.Join(s.Dir(), "ab") {
		t.Errorf("path %s not fanned out by prefix", p)
	}
}
