// Package cache is a content-addressed on-disk store for experiment
// results. Keys are SHA-256 hashes of a canonical JSON encoding of the
// inputs (plus a schema version), so a record is found again only when every
// input that could change the result is unchanged. Values are JSON files
// under <dir>/<kk>/<key>.json, written atomically, which makes the store
// safe to share between concurrent sweep workers and robust to interrupted
// runs: a killed sweep leaves only complete records behind, and the next run
// resumes by hitting them.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Key derives the content address for the given inputs: a SHA-256 over the
// version string and the canonical JSON encoding of v. Any change to either
// produces a different key, which is how stale results are invalidated.
func Key(version string, v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("cache: key inputs: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Store is an on-disk result store rooted at a directory.
type Store struct {
	dir string
	// OnEvict, when set, observes every record eviction — Get detecting a
	// corrupt or truncated entry, or a caller invoking Evict (e.g. the
	// sweep detecting a record whose content no longer matches its key) —
	// with the key and the reason. Evictions are recoveries, not errors:
	// the caller recomputes the record instead of failing, and the hook is
	// how that recovery is logged and counted. Set it before sharing the
	// store between goroutines; the hook itself must be safe for
	// concurrent calls.
	OnEvict func(key string, reason error)
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file that key is stored at. Records are fanned out into
// 256 subdirectories by the first key byte to keep directories small.
func (s *Store) Path(key string) string {
	if len(key) < 2 {
		return filepath.Join(s.dir, key+".json")
	}
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get loads the record for key into out. It reports false for a missing
// entry; a corrupt entry (unreadable JSON) is deleted and reported as a miss
// so the caller recomputes it, rather than poisoning every later run.
func (s *Store) Get(key string, out any) (bool, error) {
	path := s.Path(key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cache: read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		s.Evict(key, fmt.Errorf("corrupt record (%d bytes): %w", len(data), err))
		return false, nil
	}
	return true, nil
}

// Evict removes the record stored under key and reports it to OnEvict with
// the given reason. Missing records evict silently (the torn write may have
// left nothing behind); eviction never fails the caller — the worst case is
// a recompute.
func (s *Store) Evict(key string, reason error) {
	os.Remove(s.Path(key))
	if s.OnEvict != nil {
		s.OnEvict(key, reason)
	}
}

// Put stores v under key, atomically: the record is written to a temporary
// file in the same directory and renamed into place, so concurrent readers
// never observe a partial write.
func (s *Store) Put(key string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("cache: encode %s: %w", key, err)
	}
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write %s: %v/%v", path, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Len counts the stored records (for reporting; walks the directory).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
