package tm

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
)

// waitFor polls cond (with a generous timeout) while other goroutines run.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	//htmlint:allow determinism -- real wall-clock timeout around live goroutines, not simulated time
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) { //htmlint:allow determinism -- same wall-clock poll as above
			t.Fatal("condition not reached within timeout")
		}
		runtime.Gosched()
	}
}

// TestLazySubscriptionDefersLockCheck: with lazy subscription (BG/Q
// long-running mode), a transaction that starts while the lock is FREE and
// finishes while it is free must commit even if its body never re-checks;
// and one whose body runs while the lock is held must abort at its end.
func TestLazySubscriptionDefersLockCheck(t *testing.T) {
	e := newEngine(t, platform.BlueGeneQ, 2)
	lock := NewGlobalLock(e)
	t0, t1 := e.Thread(0), e.Thread(1)
	x := NewExecutor(t0, lock, Policy{TransientRetry: 3, LazySubscription: true, Adaptation: false})

	// Acquire the lock mid-transaction: the lazy check at the end must
	// catch it.
	bodyEntered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		x.Run(func(th *htm.Thread) {
			if first {
				first = false
				close(bodyEntered)
				<-release
			}
		})
	}()
	<-bodyEntered
	lock.Acquire(t1)
	close(release)
	// Wait until the lazy end-of-transaction check has aborted the
	// attempt before releasing, otherwise the check races the release
	// and sees a free lock.
	waitFor(t, func() bool { return e.Aborts() >= 1 })
	lock.Release(t1)
	wg.Wait()
	if x.Stats.Commits() != 1 {
		t.Errorf("critical section completed %d times, want 1", x.Stats.Commits())
	}
	if x.Stats.Aborts == 0 {
		t.Error("lazy subscription failed to abort the straddling transaction")
	}
}

// TestBGQUsesSingleCounter: Blue Gene/Q must ignore the persistent/lock
// counters (its system mechanism has only one), so a persistently aborting
// body falls back after exactly TransientRetry+1 attempts.
func TestBGQUsesSingleCounter(t *testing.T) {
	e := newEngine(t, platform.BlueGeneQ, 1)
	lock := NewGlobalLock(e)
	x := NewExecutor(e.Thread(0), lock, Policy{
		LockRetry: 100, PersistentRetry: 100, TransientRetry: 3, Adaptation: false,
	})
	attempts := 0
	x.Run(func(th *htm.Thread) {
		if th.InTx() {
			attempts++
			th.Abort()
		}
	})
	if attempts != 4 { // initial + 3 retries
		t.Errorf("transactional attempts = %d, want 4 (single counter of 3 retries)", attempts)
	}
	if x.Stats.IrrevocableCommits != 1 {
		t.Errorf("IrrevocableCommits = %d, want 1", x.Stats.IrrevocableCommits)
	}
}

// TestCategoryReclassification: an abort that happens while the global lock
// is held is categorised as a lock conflict even if its engine-level reason
// was something else (Figure 1 line 13 checks the lock first).
func TestCategoryReclassification(t *testing.T) {
	e := newEngine(t, platform.POWER8, 2)
	lock := NewGlobalLock(e)
	t0, t1 := e.Thread(0), e.Thread(1)
	x := NewExecutor(t1, lock, Policy{LockRetry: 2, PersistentRetry: 1, TransientRetry: 1})

	// t1 begins a transaction (subscribing to the free lock); t0 then
	// acquires the lock, dooming t1 via the lock-word conflict. The retry
	// mechanism sees the lock held and must classify the abort as a lock
	// conflict.
	entered := make(chan struct{})
	locked := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		first := true
		x.Run(func(th *htm.Thread) {
			if first && th.InTx() {
				first = false
				close(entered)
				<-locked
				_ = th.Load64(lock.Addr()) // observe the doom
			}
		})
	}()
	<-entered
	lock.Acquire(t0)
	close(locked)
	// The classification must run while the lock is still held (the paper
	// notes a too-early release is misclassified as a data conflict).
	waitFor(t, func() bool { return e.Aborts() >= 1 })
	lock.Release(t0)
	<-done
	if x.Stats.AbortsByCategory[htm.CategoryLockConflict] == 0 {
		t.Error("no aborts classified as lock conflicts")
	}
}

// TestRunSTMRetriesToCompletion: STM execution has no fallback; contended
// increments must all commit eventually and exactly.
func TestRunSTMRetriesToCompletion(t *testing.T) {
	e := newEngine(t, platform.ZEC12, 4)
	lock := NewGlobalLock(e)
	counter := e.Thread(0).Alloc(64)
	var wg sync.WaitGroup
	execs := make([]*Executor, 4)
	for i := 0; i < 4; i++ {
		execs[i] = NewExecutor(e.Thread(i), lock, DefaultPolicy(platform.ZEC12))
		wg.Add(1)
		go func(x *Executor) {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				x.RunSTM(func(th *htm.Thread) {
					th.Store64(counter, th.Load64(counter)+1)
				})
			}
		}(execs[i])
	}
	wg.Wait()
	if got := e.Thread(0).Load64(counter); got != 1000 {
		t.Errorf("counter = %d, want 1000", got)
	}
	var agg Stats
	for _, x := range execs {
		agg.Add(&x.Stats)
	}
	if agg.IrrevocableCommits != 0 {
		t.Error("STM must never take the global lock")
	}
	if agg.TxCommits != 1000 {
		t.Errorf("TxCommits = %d, want 1000", agg.TxCommits)
	}
}

// TestPersistentVsTransientCounters: capacity (persistent) aborts must
// consume the persistent budget, not the transient one.
func TestPersistentVsTransientCounters(t *testing.T) {
	e := newEngine(t, platform.POWER8, 1)
	lock := NewGlobalLock(e)
	th := e.Thread(0)
	// 100 store lines always overflows POWER8.
	n := 100
	a := th.Alloc(n * e.LineSize())
	x := NewExecutor(th, lock, Policy{LockRetry: 50, PersistentRetry: 3, TransientRetry: 50})
	x.Run(func(th *htm.Thread) {
		if th.InTx() {
			for i := 0; i < n; i++ {
				th.Store64(a+uint64(i*e.LineSize()), 1)
			}
			return
		}
		// Irrevocable path: cheap.
		th.Store64(a, 1)
	})
	if x.Stats.Aborts != 3 {
		t.Errorf("aborts = %d, want 3 (persistent budget)", x.Stats.Aborts)
	}
	if got := x.Stats.AbortsByCategory[htm.CategoryCapacity]; got != 3 {
		t.Errorf("capacity-category aborts = %d, want 3", got)
	}
}
