// Package tm is the software transactional-memory runtime layered over the
// HTM engine: the transaction-retry mechanism of the paper's Section 3
// (Figure 1), the single-global-lock fallback that guarantees forward
// progress on best-effort HTM, Blue Gene/Q's system-provided retry mechanism
// with its adaptation heuristic, and Intel's hardware lock elision (HLE)
// execution mode.
package tm

import (
	"sync/atomic"

	"htmcmp/internal/adapt"
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/platform"
)

// GlobalLock is the single global lock used as the irrevocable fallback
// ("a single memory word and spin waiting", Section 3). The lock word lives
// in simulated memory so that transactions subscribe to it with an ordinary
// transactional load and are aborted by the cache-coherence conflict when a
// falling-back thread writes it — exactly the hardware mechanism the paper
// relies on.
type GlobalLock struct {
	addr  mem.Addr
	state atomic.Int32 // mirrors the simulated word for cheap spinning
}

// NewGlobalLock allocates the lock word in the engine's simulated memory.
func NewGlobalLock(e *htm.Engine) *GlobalLock {
	// The lock word owns a full conflict-detection line so that lock
	// subscription never falsely conflicts with program data.
	a := e.Space().AllocAligned(e.LineSize(), e.LineSize())
	e.Space().Label(a, e.LineSize(), "tm/global-lock")
	return &GlobalLock{addr: a}
}

// Addr returns the simulated address of the lock word.
func (l *GlobalLock) Addr() mem.Addr { return l.addr }

// Held reports whether the lock is currently held (Go-side fast check, used
// by the retry mechanism's post-abort classification, Figure 1 line 13).
func (l *GlobalLock) Held() bool { return l.state.Load() != 0 }

// SubscribedHeld reads the lock word transactionally, putting it into the
// transaction's read set (Figure 1 line 26: "the global lock is first
// checked, so that the HTM system can keep track of the lock word").
func (l *GlobalLock) SubscribedHeld(t *htm.Thread) bool {
	return t.Load64(l.addr) != 0
}

// Acquire takes the lock, spinning until free, then writes the simulated
// lock word non-transactionally — which dooms every subscribed transaction.
func (l *GlobalLock) Acquire(t *htm.Thread) {
	for !l.state.CompareAndSwap(0, 1) {
		t.Pause(4)
	}
	t.Store64(l.addr, 1)
}

// Release frees the lock.
func (l *GlobalLock) Release(t *htm.Thread) {
	t.Store64(l.addr, 0)
	l.state.Store(0)
}

// WaitUntilFree spins until the lock is released (Figure 1 line 9, avoiding
// the lemming effect: do not start a transaction that is doomed to abort on
// the held lock).
func (l *GlobalLock) WaitUntilFree(t *htm.Thread) {
	for l.state.Load() != 0 {
		t.Pause(4)
	}
}

// Policy holds the maximum retry counts of the paper's three-counter
// mechanism (Figure 1 lines 1–5) plus the Blue Gene/Q mode options. The
// paper tunes these per (HTM system, benchmark) pair; internal/harness
// implements that search.
type Policy struct {
	// LockRetry bounds retries of aborts caused by conflicts on the global
	// lock word.
	LockRetry int
	// PersistentRetry bounds retries of aborts the processor reports as
	// persistent (on zEC12: capacity overflows, per Section 3).
	PersistentRetry int
	// TransientRetry bounds retries of all other aborts. For Blue Gene/Q's
	// single-counter system mechanism this is the only counter used.
	TransientRetry int
	// LazySubscription checks the global lock at transaction end instead
	// of begin (Blue Gene/Q's long-running mode behaviour, Section 3).
	LazySubscription bool
	// Adaptation enables Blue Gene/Q's heuristic: transactions that fell
	// back to the lock too frequently are not allowed to retry on the next
	// abort (Section 3).
	Adaptation bool
}

// DefaultPolicy returns a reasonable untuned policy for a platform.
func DefaultPolicy(k platform.Kind) Policy {
	switch k {
	case platform.BlueGeneQ:
		return Policy{LockRetry: 8, PersistentRetry: 8, TransientRetry: 8, Adaptation: true}
	default:
		return Policy{LockRetry: 8, PersistentRetry: 2, TransientRetry: 8}
	}
}

// Stats are the runtime-level counters layered on the engine's: committed
// transactions split into transactional and irrevocable (lock-protected)
// executions, and the Figure 3 abort categorisation with lock conflicts
// identified.
type Stats struct {
	TxCommits          uint64
	IrrevocableCommits uint64
	Aborts             uint64
	AbortsByCategory   [htm.NumCategories]uint64
	// Adaptive-runtime counters (zero in static-policy runs): transactional
	// commits split by execution mode, and steady-mode site transitions.
	HTMCommits   uint64 `json:",omitempty"`
	STMCommits   uint64 `json:",omitempty"`
	ModeSwitches uint64 `json:",omitempty"`
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.TxCommits += o.TxCommits
	s.IrrevocableCommits += o.IrrevocableCommits
	s.Aborts += o.Aborts
	for i := range s.AbortsByCategory {
		s.AbortsByCategory[i] += o.AbortsByCategory[i]
	}
	s.HTMCommits += o.HTMCommits
	s.STMCommits += o.STMCommits
	s.ModeSwitches += o.ModeSwitches
}

// Commits returns all committed critical sections.
func (s *Stats) Commits() uint64 { return s.TxCommits + s.IrrevocableCommits }

// SerializationRatio is the percentage of committed transactions that ran
// irrevocably under the global lock (Section 5.1).
func (s *Stats) SerializationRatio() float64 {
	c := s.Commits()
	if c == 0 {
		return 0
	}
	return 100 * float64(s.IrrevocableCommits) / float64(c)
}

// AbortRatio is the percentage of transaction attempts that aborted
// (irrevocable executions are not transactions and are excluded, matching
// the paper's definition in Section 5).
func (s *Stats) AbortRatio() float64 {
	attempts := s.TxCommits + s.Aborts
	if attempts == 0 {
		return 0
	}
	return 100 * float64(s.Aborts) / float64(attempts)
}

// CategoryBreakdown returns per-category abort percentages of all
// transaction attempts, the quantity plotted in Figure 3.
func (s *Stats) CategoryBreakdown() [htm.NumCategories]float64 {
	var out [htm.NumCategories]float64
	attempts := s.TxCommits + s.Aborts
	if attempts == 0 {
		return out
	}
	for i, n := range s.AbortsByCategory {
		out[i] = 100 * float64(n) / float64(attempts)
	}
	return out
}

// bgqAdaptState implements Blue Gene/Q's adaptation heuristic over a sliding
// window of recent critical-section executions.
type bgqAdaptState struct {
	window    uint32 // bitmask of the last 16 executions; 1 = fell back
	fallbacks int
	size      int
}

func (b *bgqAdaptState) record(fellBack bool) {
	const width = 16
	if b.size == width {
		if b.window&(1<<(width-1)) != 0 {
			b.fallbacks--
		}
		b.window <<= 1
		b.window &= (1 << width) - 1
	} else {
		b.window <<= 1
		b.size++
	}
	if fellBack {
		b.window |= 1
		b.fallbacks++
	}
}

// suppressed reports whether retrying should be disabled: at least half the
// recent window fell back to the lock.
func (b *bgqAdaptState) suppressed() bool {
	return b.size >= 8 && b.fallbacks*2 >= b.size
}

// Executor runs critical sections for one thread: transactionally with the
// platform's retry mechanism, falling back to the global lock. Create one
// per worker goroutine with NewExecutor.
type Executor struct {
	T      *htm.Thread
	Lock   *GlobalLock
	Policy Policy
	Stats  Stats

	// Adapt, when non-nil, replaces the static retry mechanism with the
	// online mode controller (adaptive.go). Set through NewExecutorConfig.
	Adapt *adapt.Controller

	isBGQ    bool
	bgqState bgqAdaptState
}

// NewExecutor pairs a hardware thread with the global lock and policy.
func NewExecutor(t *htm.Thread, lock *GlobalLock, pol Policy) *Executor {
	return &Executor{
		T:      t,
		Lock:   lock,
		Policy: pol,
		isBGQ:  t.Engine().Platform().Kind == platform.BlueGeneQ,
	}
}

// Run executes body as an atomic critical section: Figure 1 for zEC12,
// Intel Core and POWER8; the system-provided single-counter mechanism with
// adaptation for Blue Gene/Q. body observes memory through the executor's
// Thread and may run either transactionally or irrevocably under the global
// lock; both provide atomicity and isolation.
func (x *Executor) Run(body func(t *htm.Thread)) {
	if x.Adapt != nil {
		x.runAdaptive(body)
		return
	}
	if x.isBGQ {
		x.runBGQ(body)
		return
	}
	lockRetry := x.Policy.LockRetry
	persistentRetry := x.Policy.PersistentRetry
	transientRetry := x.Policy.TransientRetry

	for {
		x.Lock.WaitUntilFree(x.T) // line 9: avoid the lemming effect
		committed, ab := x.T.TryTx(htm.TxNormal, func() {
			if x.Lock.SubscribedHeld(x.T) { // lines 26–27
				x.T.Abort()
			}
			body(x.T)
		})
		if committed {
			x.Stats.TxCommits++
			return
		}
		x.Stats.Aborts++
		// Lines 11–24: classify and decide whether to retry.
		switch {
		case x.Lock.Held(): // line 13: conflict on the lock word
			x.Stats.AbortsByCategory[htm.CategoryLockConflict]++
			lockRetry--
			if lockRetry > 0 {
				continue
			}
		case ab.Persistent: // line 17
			x.Stats.AbortsByCategory[ab.Reason.Category()]++
			persistentRetry--
			if persistentRetry > 0 {
				continue
			}
		default: // line 21
			x.Stats.AbortsByCategory[ab.Reason.Category()]++
			transientRetry--
			if transientRetry > 0 {
				continue
			}
		}
		break
	}
	x.runIrrevocable(body) // line 25
}

// runBGQ is Blue Gene/Q's system-provided mechanism: one retry counter, no
// abort-reason discrimination, optional lazy lock subscription (long-running
// mode), and the adaptation heuristic (Section 3).
func (x *Executor) runBGQ(body func(t *htm.Thread)) {
	retries := x.Policy.TransientRetry
	if x.Policy.Adaptation && x.bgqState.suppressed() {
		retries = 0
	}
	for attempt := 0; attempt <= retries; attempt++ {
		x.Lock.WaitUntilFree(x.T)
		committed, _ := x.T.TryTx(htm.TxNormal, func() {
			if !x.Policy.LazySubscription && x.Lock.SubscribedHeld(x.T) {
				x.T.Abort()
			}
			body(x.T)
			if x.Policy.LazySubscription && x.Lock.SubscribedHeld(x.T) {
				x.T.Abort()
			}
		})
		if committed {
			x.Stats.TxCommits++
			if x.Policy.Adaptation {
				x.bgqState.record(false)
			}
			return
		}
		x.Stats.Aborts++
		x.Stats.AbortsByCategory[htm.CategoryOther]++ // BG/Q exposes no reason
	}
	x.runIrrevocable(body)
	if x.Policy.Adaptation {
		x.bgqState.record(true)
	}
}

// RunIrrevocable executes body directly under the global lock with no
// speculation at all — the degenerate single-lock baseline the differential
// checker (internal/verify) compares transactional executions against.
func (x *Executor) RunIrrevocable(body func(t *htm.Thread)) {
	x.runIrrevocable(body)
}

func (x *Executor) runIrrevocable(body func(t *htm.Thread)) {
	x.Lock.Acquire(x.T)
	body(x.T)
	x.Lock.Release(x.T)
	x.Stats.IrrevocableCommits++
}

// RunSTM executes body as a NOrec software transaction, retrying until it
// commits. STM needs no global-lock fallback: it has no capacity limits and
// every abort is a genuine value-validation conflict. The comparison of
// RunSTM against Run on the same workload measures the HTM-vs-STM overhead
// trade-off the paper's introduction describes.
func (x *Executor) RunSTM(body func(t *htm.Thread)) {
	for {
		committed, _ := x.T.TrySTM(func() { body(x.T) })
		if committed {
			x.Stats.TxCommits++
			return
		}
		x.Stats.Aborts++
		x.Stats.AbortsByCategory[htm.CategoryDataConflict]++
	}
}

// RunHLE executes body with hardware lock elision (Intel, Section 2.3): one
// transactional attempt eliding the lock, and on abort a non-speculative
// re-execution holding the lock. There is no software retry mechanism to
// tune — the performance gap to RTM that Figure 7 measures.
func (x *Executor) RunHLE(body func(t *htm.Thread)) {
	if !x.T.Engine().Platform().HasHLE {
		panic("tm: HLE is an Intel Core feature")
	}
	x.Lock.WaitUntilFree(x.T)
	committed, _ := x.T.TryTx(htm.TxNormal, func() {
		if x.Lock.SubscribedHeld(x.T) {
			x.T.Abort()
		}
		body(x.T)
	})
	if committed {
		x.Stats.TxCommits++
		return
	}
	x.Stats.Aborts++
	x.runIrrevocable(body)
}
