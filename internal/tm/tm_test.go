package tm

import (
	"sync"
	"testing"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
)

func newEngine(t *testing.T, k platform.Kind, threads int) *htm.Engine {
	t.Helper()
	return htm.New(platform.New(k), htm.Config{
		Threads: threads, SpaceSize: 8 << 20, Seed: 5, CostScale: 0,
		DisablePrefetch: true, DisableCacheFetchAborts: true,
	})
}

func TestRunCommitsSimpleTx(t *testing.T) {
	e := newEngine(t, platform.IntelCore, 1)
	lock := NewGlobalLock(e)
	x := NewExecutor(e.Thread(0), lock, DefaultPolicy(platform.IntelCore))
	a := e.Thread(0).Alloc(64)
	x.Run(func(th *htm.Thread) { th.Store64(a, 9) })
	if got := e.Thread(0).Load64(a); got != 9 {
		t.Errorf("value = %d, want 9", got)
	}
	if x.Stats.TxCommits != 1 || x.Stats.IrrevocableCommits != 0 {
		t.Errorf("stats = %+v, want one transactional commit", x.Stats)
	}
}

// TestFallbackAfterPersistentRetries: a transaction that always overflows
// capacity must fall back to the lock after PersistentRetry attempts and
// still complete correctly.
func TestFallbackAfterPersistentRetries(t *testing.T) {
	e := newEngine(t, platform.POWER8, 1)
	lock := NewGlobalLock(e)
	pol := Policy{LockRetry: 3, PersistentRetry: 2, TransientRetry: 10}
	x := NewExecutor(e.Thread(0), lock, pol)
	th := e.Thread(0)
	// 100 lines > POWER8's 64-entry TMCAM: persistent capacity abort.
	n := 100
	a := th.Alloc(n * e.LineSize())
	x.Run(func(th *htm.Thread) {
		for i := 0; i < n; i++ {
			th.Store64(a+uint64(i*e.LineSize()), uint64(i))
		}
	})
	for i := 0; i < n; i++ {
		if th.Load64(a+uint64(i*e.LineSize())) != uint64(i) {
			t.Fatalf("line %d not written", i)
		}
	}
	if x.Stats.IrrevocableCommits != 1 {
		t.Errorf("IrrevocableCommits = %d, want 1", x.Stats.IrrevocableCommits)
	}
	// PersistentRetry=2 means two attempts before falling back.
	if x.Stats.Aborts != 2 {
		t.Errorf("Aborts = %d, want 2 (PersistentRetry)", x.Stats.Aborts)
	}
	if x.Stats.AbortsByCategory[htm.CategoryCapacity] != 2 {
		t.Errorf("capacity aborts = %d, want 2", x.Stats.AbortsByCategory[htm.CategoryCapacity])
	}
	if lock.Held() {
		t.Error("lock leaked")
	}
}

// TestLockSubscriptionAborts: a transaction beginning while the lock is held
// must abort (lines 26-27) and be classified as a lock conflict.
func TestLockSubscriptionAborts(t *testing.T) {
	e := newEngine(t, platform.ZEC12, 2)
	lock := NewGlobalLock(e)
	t0, t1 := e.Thread(0), e.Thread(1)

	lock.Acquire(t0)
	// t1 attempts a transaction while the lock is held. WaitUntilFree would
	// spin forever, so drive TryTx directly the way Run's body does.
	committed, _ := t1.TryTx(htm.TxNormal, func() {
		if lock.SubscribedHeld(t1) {
			t1.Abort()
		}
		t.Error("body ran despite held lock")
	})
	if committed {
		t.Error("transaction committed while lock held")
	}
	lock.Release(t0)
}

// TestLockWriteDoomsSubscribers: acquiring the lock mid-transaction dooms
// subscribed transactions via the lock-word conflict.
func TestLockWriteDoomsSubscribers(t *testing.T) {
	e := newEngine(t, platform.IntelCore, 2)
	lock := NewGlobalLock(e)
	t0, t1 := e.Thread(0), e.Thread(1)

	subscribed := make(chan struct{})
	locked := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var ok bool
	go func() {
		defer wg.Done()
		ok, _ = t0.TryTx(htm.TxNormal, func() {
			if lock.SubscribedHeld(t0) {
				t0.Abort()
			}
			close(subscribed)
			<-locked
			_ = t0.Load64(lock.Addr()) // touch anything: must observe doom
		})
	}()
	<-subscribed
	lock.Acquire(t1)
	close(locked)
	wg.Wait()
	lock.Release(t1)
	if ok {
		t.Error("subscribed transaction survived lock acquisition")
	}
}

// TestLockConflictClassification: aborts taken while the lock is held are
// counted in the lock-conflict category (Figure 1 line 13).
func TestLockConflictClassification(t *testing.T) {
	e := newEngine(t, platform.IntelCore, 2)
	lock := NewGlobalLock(e)
	t1 := e.Thread(1)
	x := NewExecutor(t1, lock, Policy{LockRetry: 2, PersistentRetry: 1, TransientRetry: 1})

	lock.Acquire(e.Thread(0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		x.Run(func(th *htm.Thread) {}) // blocks in WaitUntilFree until release
	}()
	lock.Release(e.Thread(0))
	<-done
	if x.Stats.Commits() != 1 {
		t.Errorf("Commits = %d, want 1", x.Stats.Commits())
	}
}

// TestContendedCounterAllPlatforms exercises the full runtime under real
// contention on each platform model and checks exactness plus stats sanity.
func TestContendedCounterAllPlatforms(t *testing.T) {
	for _, k := range platform.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			const nThreads, perThread = 8, 300
			e := newEngine(t, k, nThreads)
			lock := NewGlobalLock(e)
			counter := e.Thread(0).Alloc(512)
			execs := make([]*Executor, nThreads)
			var wg sync.WaitGroup
			for i := 0; i < nThreads; i++ {
				execs[i] = NewExecutor(e.Thread(i), lock, DefaultPolicy(k))
				wg.Add(1)
				go func(x *Executor) {
					defer wg.Done()
					for j := 0; j < perThread; j++ {
						x.Run(func(th *htm.Thread) {
							th.Store64(counter, th.Load64(counter)+1)
						})
					}
				}(execs[i])
			}
			wg.Wait()
			if got := e.Thread(0).Load64(counter); got != nThreads*perThread {
				t.Errorf("counter = %d, want %d", got, nThreads*perThread)
			}
			var total Stats
			for _, x := range execs {
				total.Add(&x.Stats)
			}
			if total.Commits() != nThreads*perThread {
				t.Errorf("commits = %d, want %d", total.Commits(), nThreads*perThread)
			}
			if total.SerializationRatio() < 0 || total.SerializationRatio() > 100 {
				t.Errorf("serialization ratio %v out of range", total.SerializationRatio())
			}
		})
	}
}

// TestHLEFallsBackWithoutRetry: HLE gets exactly one transactional attempt.
func TestHLEFallsBackWithoutRetry(t *testing.T) {
	e := newEngine(t, platform.IntelCore, 1)
	lock := NewGlobalLock(e)
	th := e.Thread(0)
	x := NewExecutor(th, lock, DefaultPolicy(platform.IntelCore))
	// Oversized store set: the single attempt aborts, then irrevocable.
	n := 400 // > 352-line Intel store capacity
	a := th.Alloc(n * e.LineSize())
	x.RunHLE(func(th *htm.Thread) {
		for i := 0; i < n; i++ {
			th.Store64(a+uint64(i*e.LineSize()), 1)
		}
	})
	if x.Stats.Aborts != 1 {
		t.Errorf("Aborts = %d, want exactly 1 (no HLE software retry)", x.Stats.Aborts)
	}
	if x.Stats.IrrevocableCommits != 1 {
		t.Errorf("IrrevocableCommits = %d, want 1", x.Stats.IrrevocableCommits)
	}
}

func TestHLEPanicsOffIntel(t *testing.T) {
	e := newEngine(t, platform.POWER8, 1)
	lock := NewGlobalLock(e)
	x := NewExecutor(e.Thread(0), lock, DefaultPolicy(platform.POWER8))
	defer func() {
		if recover() == nil {
			t.Error("RunHLE on POWER8 did not panic")
		}
	}()
	x.RunHLE(func(th *htm.Thread) {})
}

// TestBGQSingleCounterAndAdaptation: Blue Gene/Q uses the system mechanism;
// a persistently failing transaction falls back after TransientRetry
// attempts, and once fallbacks dominate, adaptation suppresses retries.
func TestBGQAdaptationSuppressesRetries(t *testing.T) {
	e := newEngine(t, platform.BlueGeneQ, 1)
	lock := NewGlobalLock(e)
	pol := Policy{TransientRetry: 5, Adaptation: true}
	x := NewExecutor(e.Thread(0), lock, pol)
	th := e.Thread(0)
	// Oversized tx: always capacity aborts on BGQ (1.25 MB per core at 64 B
	// lines in short mode = 20480 lines... too big to build). Use explicit
	// aborts instead: every attempt aborts.
	a := th.Alloc(64)
	for i := 0; i < 12; i++ {
		x.Run(func(th *htm.Thread) {
			if th.InTx() {
				th.Abort() // transactional attempts always fail
			} else {
				th.Store64(a, th.Load64(a)+1) // irrevocable run succeeds
			}
		})
	}
	if got := th.Load64(a); got != 12 {
		t.Fatalf("completed %d critical sections, want 12", got)
	}
	if x.Stats.IrrevocableCommits != 12 {
		t.Errorf("IrrevocableCommits = %d, want 12", x.Stats.IrrevocableCommits)
	}
	// With adaptation, later executions should stop retrying: total aborts
	// must be well below 12 * (TransientRetry+1).
	max := uint64(12 * (pol.TransientRetry + 1))
	if x.Stats.Aborts >= max {
		t.Errorf("Aborts = %d, adaptation did not suppress retries (max %d)", x.Stats.Aborts, max)
	}
}

func TestStatsAggregation(t *testing.T) {
	var a, b Stats
	a.TxCommits, a.IrrevocableCommits, a.Aborts = 10, 2, 5
	a.AbortsByCategory[htm.CategoryCapacity] = 3
	b.TxCommits = 5
	b.AbortsByCategory[htm.CategoryCapacity] = 1
	a.Add(&b)
	if a.TxCommits != 15 || a.Commits() != 17 {
		t.Errorf("aggregated commits wrong: %+v", a)
	}
	if a.AbortsByCategory[htm.CategoryCapacity] != 4 {
		t.Error("category aggregation wrong")
	}
	sr := a.SerializationRatio()
	if sr <= 11 || sr >= 12.5 {
		t.Errorf("serialization ratio = %v, want ~11.76", sr)
	}
	ar := a.AbortRatio()
	if ar <= 24 || ar >= 26 { // 5/(15+5)
		t.Errorf("abort ratio = %v, want 25", ar)
	}
}

func TestDefaultPolicies(t *testing.T) {
	for _, k := range platform.Kinds() {
		p := DefaultPolicy(k)
		if p.TransientRetry <= 0 {
			t.Errorf("%v: non-positive transient retry", k)
		}
	}
	if !DefaultPolicy(platform.BlueGeneQ).Adaptation {
		t.Error("BGQ default policy should enable adaptation")
	}
}
