package tm_test

// Determinism regression harness for the engine's hot-path optimizations.
//
// The virtual-time scheduler's contract is that results are bit-identical
// for a given seed: the same virtual clocks, the same conflict pattern, the
// same abort mix — on any host and, critically, across engine-internal
// refactors. This test pins that contract with golden values: a fixed-seed
// mixed workload (small contended read-modify-writes, occasional large
// read-mostly transactions that stress capacity, the Figure 1 retry
// mechanism with the global-lock fallback) runs on each platform at two
// thread counts, and MaxClock plus the engine counters must match the
// values recorded from the seed engine exactly. Any scheduling, conflict
// or cost change — intended or not — trips it.
//
// Golden values were captured from the pre-optimization engine (the PR 1
// tree) and must survive the map-free access sets, virtual-mode lock
// elision and the heap-based scheduler handoff unchanged. If a future PR
// changes virtual-time semantics *on purpose*, regenerate with:
//
//	go test ./internal/tm -run TestGoldenDeterminism -v -golden-print

import (
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/tm"
	"htmcmp/internal/verify"
)

var goldenPrint = flag.Bool("golden-print", false, "print measured golden rows instead of asserting")

type goldenRow struct {
	kind     platform.Kind
	threads  int
	maxClock uint64
	begins   uint64
	commits  uint64
	aborts   uint64
	txLoads  uint64
	txStores uint64
}

// goldenRun executes the fixed workload and returns the measured row; a
// non-nil tracer, witness, or metrics handle is attached to the engine (none
// may perturb the row — see TestTracingPreservesDeterminism,
// TestWitnessPreservesDeterminism, and TestTelemetryPreservesDeterminism).
func goldenRun(kind platform.Kind, threads int, tracer *obs.Tracer, wit *htm.Witness, met *obs.EngineMetrics) goldenRow {
	spec := platform.New(kind)
	e := htm.New(spec, htm.Config{
		Threads: threads, SpaceSize: 8 << 20, Seed: 20250806, Virtual: true,
		CostScale: 1, Tracer: tracer, Witness: wit, Metrics: met,
	})
	lock := tm.NewGlobalLock(e)
	setup := e.Thread(0)
	const hotLines = 64
	line := uint64(e.LineSize())
	base := setup.Alloc(hotLines * e.LineSize())
	big := setup.Alloc(64 * e.LineSize())
	for i := 0; i < threads; i++ {
		e.Thread(i).Register()
	}
	e.ResetClocks()
	if wit != nil {
		// Snapshot after setup allocation so the log covers the workload only.
		wit.Start()
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			x := tm.NewExecutor(th, lock, tm.DefaultPolicy(kind))
			th.BeginWork()
			defer th.ExitWork()
			rng := th.Rand()
			for j := 0; j < 200; j++ {
				th.Work(25)
				// Transaction shape is drawn before the attempt so retries
				// re-execute the identical body.
				if j%16 == tid&15 {
					// Large read-mostly transaction: stresses capacity
					// accounting (aborts persistently on POWER8's TMCAM).
					x.Run(func(t *htm.Thread) {
						for l := uint64(0); l < 40; l++ {
							_ = t.Load64(big + l*line)
						}
						t.Store64(big, t.Load64(big)+1)
					})
					continue
				}
				k := 1 + rng.Intn(6)
				off := uint64(rng.Intn(hotLines))
				x.Run(func(t *htm.Thread) {
					for l := uint64(0); l < uint64(k); l++ {
						a := base + ((off+l)%hotLines)*line
						t.Store64(a, t.Load64(a)+1)
					}
				})
			}
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	return goldenRow{
		kind: kind, threads: threads, maxClock: e.MaxClock(),
		begins: st.Begins, commits: st.Commits, aborts: st.Aborts,
		txLoads: st.TxLoads, txStores: st.TxStores,
	}
}

// golden holds the values measured on the seed engine (see file comment).
var golden = []goldenRow{
	{kind: platform.BlueGeneQ, threads: 1, maxClock: 64992, begins: 200, commits: 200, aborts: 0, txLoads: 1332, txStores: 612},
	{kind: platform.BlueGeneQ, threads: 2, maxClock: 76735, begins: 430, commits: 398, aborts: 32, txLoads: 2843, txStores: 1319},
	{kind: platform.BlueGeneQ, threads: 4, maxClock: 124663, begins: 1134, commits: 775, aborts: 359, txLoads: 7092, txStores: 3398},
	{kind: platform.BlueGeneQ, threads: 8, maxClock: 209758, begins: 2986, commits: 1506, aborts: 1480, txLoads: 19080, txStores: 8281},
	{kind: platform.ZEC12, threads: 1, maxClock: 17698, begins: 201, commits: 200, aborts: 1, txLoads: 1385, txStores: 664},
	{kind: platform.ZEC12, threads: 2, maxClock: 19950, begins: 434, commits: 399, aborts: 35, txLoads: 2949, txStores: 1389},
	{kind: platform.ZEC12, threads: 4, maxClock: 28538, begins: 1058, commits: 784, aborts: 274, txLoads: 6946, txStores: 3283},
	{kind: platform.ZEC12, threads: 8, maxClock: 48816, begins: 2986, commits: 1528, aborts: 1458, txLoads: 21067, txStores: 8279},
	{kind: platform.IntelCore, threads: 1, maxClock: 16560, begins: 200, commits: 200, aborts: 0, txLoads: 1355, txStores: 635},
	{kind: platform.IntelCore, threads: 2, maxClock: 23304, begins: 508, commits: 394, aborts: 114, txLoads: 3352, txStores: 1584},
	{kind: platform.IntelCore, threads: 4, maxClock: 33996, begins: 1309, commits: 769, aborts: 540, txLoads: 8281, txStores: 3895},
	{kind: platform.IntelCore, threads: 8, maxClock: 59800, begins: 4144, commits: 1444, aborts: 2700, txLoads: 25777, txStores: 11310},
	{kind: platform.POWER8, threads: 1, maxClock: 17976, begins: 200, commits: 200, aborts: 0, txLoads: 1332, txStores: 612},
	{kind: platform.POWER8, threads: 2, maxClock: 20050, begins: 424, commits: 399, aborts: 25, txLoads: 2838, txStores: 1316},
	{kind: platform.POWER8, threads: 4, maxClock: 32078, begins: 1146, commits: 782, aborts: 364, txLoads: 7315, txStores: 3453},
	{kind: platform.POWER8, threads: 8, maxClock: 58432, begins: 3190, commits: 1485, aborts: 1705, txLoads: 21236, txStores: 8573},
}

func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden workload is not short")
	}
	if *goldenPrint {
		for _, kind := range []platform.Kind{platform.BlueGeneQ, platform.ZEC12, platform.IntelCore, platform.POWER8} {
			for _, n := range []int{1, 2, 4, 8} {
				g := goldenRun(kind, n, nil, nil, nil)
				fmt.Printf("\t{kind: platform.%v, threads: %d, maxClock: %d, begins: %d, commits: %d, aborts: %d, txLoads: %d, txStores: %d},\n",
					kindName(g.kind), g.threads, g.maxClock, g.begins, g.commits, g.aborts, g.txLoads, g.txStores)
			}
		}
		return
	}
	if len(golden) == 0 {
		t.Fatal("golden table is empty; regenerate with -golden-print")
	}
	for _, want := range golden {
		want := want
		t.Run(fmt.Sprintf("%s-%dt", want.kind.Short(), want.threads), func(t *testing.T) {
			t.Parallel()
			got := goldenRun(want.kind, want.threads, nil, nil, nil)
			if got != want {
				t.Errorf("virtual-time results diverge from the seed engine\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestTracingPreservesDeterminism pins the observability contract: attaching
// an event tracer records at transaction boundaries only and never advances
// virtual time, so a traced fixed-seed run must land on the exact golden row
// of the untraced engine — and the trace itself must agree with the engine's
// own counters.
func TestTracingPreservesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden workload is not short")
	}
	for _, want := range golden {
		want := want
		if want.threads != 4 {
			continue // 4-thread rows have the richest conflict mix
		}
		t.Run(fmt.Sprintf("%s-%dt-traced", want.kind.Short(), want.threads), func(t *testing.T) {
			t.Parallel()
			tracer := obs.NewTracer(want.threads, obs.DefaultRingEvents)
			got := goldenRun(want.kind, want.threads, tracer, nil, nil)
			if got != want {
				t.Errorf("tracing perturbed the virtual-time results\n got: %+v\nwant: %+v", got, want)
			}
			if tracer.Dropped() != 0 {
				t.Fatalf("ring dropped %d events; counts below would be meaningless", tracer.Dropped())
			}
			var begins, commits, aborts uint64
			for _, ev := range tracer.Events() {
				switch ev.Kind {
				case obs.KindBegin:
					begins++
				case obs.KindCommit:
					commits++
				case obs.KindAbort:
					aborts++
				}
			}
			if begins != want.begins || commits != want.commits || aborts != want.aborts {
				t.Errorf("trace counts begins=%d commits=%d aborts=%d diverge from engine stats %d/%d/%d",
					begins, commits, aborts, want.begins, want.commits, want.aborts)
			}
		})
	}
}

// TestWitnessPreservesDeterminism pins the oracle's zero-overhead contract:
// attaching a commit-order witness records behind a nil check and charges no
// virtual time, so a witnessed fixed-seed run must land on the exact golden
// row of the bare engine — and the recorded log must replay serializably.
// (The golden workload allocates only during setup, so the witness's full
// final-state check applies.)
func TestWitnessPreservesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden workload is not short")
	}
	for _, want := range golden {
		want := want
		if want.threads != 4 {
			continue // 4-thread rows have the richest conflict mix
		}
		t.Run(fmt.Sprintf("%s-%dt-witnessed", want.kind.Short(), want.threads), func(t *testing.T) {
			t.Parallel()
			wit := htm.NewWitness()
			got := goldenRun(want.kind, want.threads, nil, wit, nil)
			if got != want {
				t.Errorf("witnessing perturbed the virtual-time results\n got: %+v\nwant: %+v", got, want)
			}
			if v := verify.Replay(wit.Log()); v != nil {
				t.Errorf("golden workload log does not replay serializably: %v", v)
			}
		})
	}
}

// TestTelemetryPreservesDeterminism pins the live-metrics contract: engine
// counters published into an obs.Registry — with a sampler concurrently
// snapshotting it into time series — record at transaction boundaries behind
// a nil check and never charge virtual time, so an instrumented fixed-seed
// run must land on the exact golden row of the bare engine, and the registry
// totals must agree with the engine's own counters.
func TestTelemetryPreservesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden workload is not short")
	}
	for _, want := range golden {
		want := want
		if want.threads != 4 {
			continue // 4-thread rows have the richest conflict mix
		}
		t.Run(fmt.Sprintf("%s-%dt-metrics", want.kind.Short(), want.threads), func(t *testing.T) {
			t.Parallel()
			reg := obs.NewRegistry()
			met := obs.NewEngineMetrics(reg, 10, 3)
			sampler := obs.NewSampler(reg, time.Millisecond, 0)
			sampler.Start()
			got := goldenRun(want.kind, want.threads, nil, nil, met)
			sampler.Stop()
			if got != want {
				t.Errorf("metrics publication perturbed the virtual-time results\n got: %+v\nwant: %+v", got, want)
			}
			if b := met.Begins.Value(); b != want.begins {
				t.Errorf("registry begins = %d, engine stats = %d", b, want.begins)
			}
			if c := met.Commits.Value(); c != want.commits {
				t.Errorf("registry commits = %d, engine stats = %d", c, want.commits)
			}
			if a := met.Aborts.Value(); a != want.aborts {
				t.Errorf("registry aborts = %d, engine stats = %d", a, want.aborts)
			}
			var byReason uint64
			for _, c := range met.ByReason {
				byReason += c.Value()
			}
			if byReason != want.aborts {
				t.Errorf("per-reason abort sum = %d, engine stats = %d", byReason, want.aborts)
			}
			if sampler.Ticks() == 0 {
				t.Error("sampler never ticked during the instrumented run")
			}
		})
	}
}

func kindName(k platform.Kind) string {
	switch k {
	case platform.BlueGeneQ:
		return "BlueGeneQ"
	case platform.ZEC12:
		return "ZEC12"
	case platform.IntelCore:
		return "IntelCore"
	case platform.POWER8:
		return "POWER8"
	}
	return "?"
}
