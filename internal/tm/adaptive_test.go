package tm_test

// Integration tests of the adaptive hybrid-TM runtime: all three execution
// modes (hardware TM, NOrec STM, global lock) coexisting in one virtual-time
// run, with the engine's hybrid-NOrec fences keeping them mutually isolated.
//
// The workload mixes a hot conflict-bound site with a capacity-bound site
// that overflows POWER8's TMCAM on every hardware attempt, so the controller
// demotes it to STM early — producing genuine concurrent HTM/STM execution
// whose atomicity the shared-counter checks and the serializability oracle
// then verify.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"htmcmp/internal/adapt"
	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
	"htmcmp/internal/platform"
	"htmcmp/internal/tm"
	"htmcmp/internal/verify"
)

// adaptiveRun executes the mixed workload and returns the engine, summed
// runtime stats and the controller.
func adaptiveRun(t *testing.T, kind platform.Kind, threads, iters int,
	tracer *obs.Tracer, wit *htm.Witness) (*htm.Engine, tm.Stats, *adapt.Controller) {
	t.Helper()
	spec := platform.New(kind)
	e := htm.New(spec, htm.Config{
		Threads: threads, SpaceSize: 8 << 20, Seed: 20250808, Virtual: true,
		CostScale: 1, Tracer: tracer, Witness: wit,
	})
	lock := tm.NewGlobalLock(e)
	ctl := adapt.NewController(adapt.Config{
		Window: 32, CapacityDemote: 3, Probation: 16, ProbeWins: 2,
	})
	setup := e.Thread(0)
	line := uint64(e.LineSize())
	const hotLines = 8
	hot := setup.Alloc(hotLines * e.LineSize())
	// A footprint comfortably past POWER8's TMCAM line budget, so hardware
	// attempts of the big site abort persistently with capacity.
	bigLines := 2 * (spec.LoadCapacity / e.LineSize())
	if bigLines < 16 {
		bigLines = 16
	}
	big := setup.Alloc(bigLines * e.LineSize())
	total := setup.Alloc(8) // shared commit counter: every execution adds 1
	for i := 0; i < threads; i++ {
		e.Thread(i).Register()
	}
	e.ResetClocks()
	if wit != nil {
		wit.Start()
	}

	// One source-level closure per transaction site (the controller keys
	// sites by the closure's code pointer). The big site also touches the
	// hot lines, so once it runs as STM its commits overlap in-flight
	// hardware transactions of the hot site — exercising the gate fence.
	stats := make([]tm.Stats, threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			x := tm.NewExecutorConfig(th, lock, tm.Config{
				Policy: tm.DefaultPolicy(kind),
				Adapt:  ctl,
			})
			th.BeginWork()
			defer th.ExitWork()
			rng := th.Rand()
			hotBody := func(t *htm.Thread) {
				off := uint64(rng.Intn(hotLines))
				for l := uint64(0); l < 3; l++ {
					a := hot + ((off+l)%hotLines)*line
					t.Store64(a, t.Load64(a)+1)
				}
				t.Store64(total, t.Load64(total)+1)
			}
			bigBody := func(t *htm.Thread) {
				var sum uint64
				for l := uint64(0); l < uint64(bigLines); l++ {
					sum += t.Load64(big + l*line)
				}
				a := hot + (sum%hotLines)*line
				t.Store64(a, t.Load64(a)+1)
				t.Store64(total, t.Load64(total)+1)
			}
			for j := 0; j < iters; j++ {
				th.Work(20)
				if j%8 == tid&7 {
					x.Run(bigBody)
				} else {
					x.Run(hotBody)
				}
			}
			stats[tid] = x.Stats
		}(i)
	}
	wg.Wait()
	var sum tm.Stats
	for i := range stats {
		sum.Add(&stats[i])
	}
	// The total counter must equal the committed executions across all
	// modes: any HTM/STM/lock isolation failure shows up as a lost update.
	got := setup.Load64(total)
	want := uint64(threads * iters)
	if got != want {
		t.Fatalf("lost updates across hybrid modes: total counter = %d, want %d", got, want)
	}
	if sum.Commits() != want {
		t.Fatalf("commit accounting: Commits() = %d, want %d", sum.Commits(), want)
	}
	return e, sum, ctl
}

func TestAdaptiveHybridCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive workload is not short")
	}
	_, sum, ctl := adaptiveRun(t, platform.POWER8, 4, 160, nil, nil)
	if sum.STMCommits == 0 {
		t.Error("capacity-bound site never ran as STM; the demotion path was not exercised")
	}
	if sum.HTMCommits == 0 {
		t.Error("no hardware commits at all")
	}
	if sum.ModeSwitches == 0 {
		t.Error("controller recorded no mode switches")
	}
	if sum.ModeSwitches != ctl.Switches() {
		t.Errorf("executor counted %d switches, controller %d", sum.ModeSwitches, ctl.Switches())
	}
	// The capacity-bound site must have demoted away from HTM.
	demoted := false
	for _, s := range ctl.Sites() {
		if s.Mode != adapt.ModeHTM && s.Transitions > 0 {
			demoted = true
		}
	}
	if !demoted {
		t.Error("no site left HTM despite persistent capacity aborts")
	}
}

// TestAdaptiveDeterminism pins the virtual-time contract for hybrid runs:
// the controller's decisions depend only on per-site history and the
// per-thread PRNGs, so a fixed seed reproduces bit-identical results.
func TestAdaptiveDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive workload is not short")
	}
	type row struct {
		maxClock                        uint64
		commits, aborts, stmC, htmC, sw uint64
	}
	run := func() row {
		e, sum, _ := adaptiveRun(t, platform.POWER8, 4, 120, nil, nil)
		return row{
			maxClock: e.MaxClock(), commits: sum.Commits(), aborts: sum.Aborts,
			stmC: sum.STMCommits, htmC: sum.HTMCommits, sw: sum.ModeSwitches,
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("adaptive runs diverge for a fixed seed\n first: %+v\nsecond: %+v", a, b)
	}
}

// TestAdaptiveWitnessSerializable runs the serializability oracle over a
// hybrid run: the commit-order log of interleaved HTM, STM and lock
// executions must replay serializably — the end-to-end check that the gate
// subscription, the writer fence and the lock fence compose correctly.
func TestAdaptiveWitnessSerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive workload is not short")
	}
	wit := htm.NewWitness()
	_, _, _ = adaptiveRun(t, platform.POWER8, 4, 120, nil, wit)
	if v := verify.Replay(wit.Log()); v != nil {
		t.Fatalf("hybrid run does not replay serializably: %v", v)
	}
}

// TestAdaptiveModeSwitchEvents checks the observability contract: every
// steady-mode transition is emitted as a KindModeSwitch event, the JSONL
// encoding round-trips, and the stream passes schema validation.
func TestAdaptiveModeSwitchEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive workload is not short")
	}
	const threads = 4
	tracer := obs.NewTracer(threads, obs.DefaultRingEvents)
	_, sum, _ := adaptiveRun(t, platform.POWER8, threads, 120, tracer, nil)
	if tracer.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", tracer.Dropped())
	}
	events := tracer.Events()
	var switches uint64
	for _, ev := range events {
		if ev.Kind == obs.KindModeSwitch {
			switches++
			from, to := obs.ModeName(uint8(ev.Aborter)), obs.ModeName(ev.Reason)
			if from == to {
				t.Errorf("self-transition event %s -> %s", from, to)
			}
			for _, name := range []string{from, to} {
				switch name {
				case "htm", "stm", "lock":
				default:
					t.Errorf("unknown mode name %q in event", name)
				}
			}
		}
	}
	if switches != sum.ModeSwitches {
		t.Errorf("trace has %d mode-switch events, executors counted %d", switches, sum.ModeSwitches)
	}
	if switches == 0 {
		t.Error("no mode-switch events recorded")
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if n, err := obs.Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("mode events fail schema validation after %d events: %v", n, err)
	}
	if r := obs.Aggregate(events, obs.ReportOptions{}); r.ModeSwitches != switches {
		t.Errorf("Aggregate counted %d mode switches, want %d", r.ModeSwitches, switches)
	}
}

// TestAdaptiveRequiresVirtual pins the safety gate: hybrid HTM/STM execution
// relies on the single-runner invariant, so attaching a controller to a
// real-concurrency engine must panic rather than race.
func TestAdaptiveRequiresVirtual(t *testing.T) {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{Threads: 1, SpaceSize: 1 << 20})
	lock := tm.NewGlobalLock(e)
	defer func() {
		if recover() == nil {
			t.Fatal("NewExecutorConfig with a controller on a non-virtual engine did not panic")
		}
	}()
	tm.NewExecutorConfig(e.Thread(0), lock, tm.Config{Adapt: adapt.NewController(adapt.Config{})})
}

// TestAdaptiveLockMode drives one site straight into lock mode (conflicts
// plus capacity in the same window) and checks executions stay correct and
// accounted as irrevocable.
func TestAdaptiveLockMode(t *testing.T) {
	e := htm.New(platform.New(platform.ZEC12), htm.Config{
		Threads: 1, SpaceSize: 1 << 20, Seed: 7, Virtual: true, CostScale: 1,
	})
	lock := tm.NewGlobalLock(e)
	// A controller whose thresholds demote to lock almost immediately.
	ctl := adapt.NewController(adapt.Config{
		Window: 8, CapacityDemote: 1, LockDemote: 1, STMDemote: 1, Probation: 1024,
	})
	th := e.Thread(0)
	c := th.Alloc(8)
	th.Register()
	var stats tm.Stats
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		x := tm.NewExecutorConfig(th, lock, tm.Config{Adapt: ctl})
		th.BeginWork()
		defer th.ExitWork()
		body := func(t *htm.Thread) {
			t.Store64(c, t.Load64(c)+1)
		}
		for j := 0; j < 50; j++ {
			x.Run(body)
		}
		stats = x.Stats
	}()
	wg.Wait()
	if got := th.Load64(c); got != 50 {
		t.Fatalf("counter = %d, want 50", got)
	}
	if stats.Commits() != 50 {
		t.Fatalf("Commits() = %d, want 50", stats.Commits())
	}
}

func ExampleConfig() {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 1, SpaceSize: 1 << 20, Virtual: true,
	})
	lock := tm.NewGlobalLock(e)
	ctl := adapt.NewController(adapt.Config{})
	th := e.Thread(0)
	a := th.Alloc(8)
	th.Register()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		x := tm.NewExecutorConfig(th, lock, tm.Config{
			Policy: tm.DefaultPolicy(platform.IntelCore),
			Adapt:  ctl,
		})
		th.BeginWork()
		defer th.ExitWork()
		x.Run(func(t *htm.Thread) { t.Store64(a, 41+1) })
	}()
	wg.Wait()
	fmt.Println(th.Load64(a))
	// Output: 42
}
