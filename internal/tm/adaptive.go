package tm

import (
	"reflect"

	"htmcmp/internal/adapt"
	"htmcmp/internal/htm"
	"htmcmp/internal/obs"
)

// Adaptive hybrid-TM execution: instead of the static Figure 1 retry
// counters, an online controller (internal/adapt) selects the execution
// mode — hardware transaction, NOrec software transaction, or the global
// lock — and the retry/backoff budgets per transaction site, from a sliding
// window of recent abort reasons.
//
// Correct coexistence of the three modes inside one run relies on the
// engine's hybrid-NOrec fences (internal/htm hybrid.go): hardware
// transactions subscribe to the hybrid gate line, software transactions
// subscribe to the global lock word by value, and lock acquisition issues
// an STM fence. NewExecutorConfig arms the fences (idempotently) when a
// controller is attached; this requires a virtual-time engine.

// Config bundles an Executor's policy inputs: the static retry policy and,
// optionally, the adaptive controller. With Adapt nil the executor behaves
// exactly like NewExecutor's (static-policy runs are unchanged down to the
// golden determinism rows); with Adapt set, Run routes through the
// controller and Policy is used only by the explicit RunSTM/RunHLE/
// RunIrrevocable entry points.
type Config struct {
	Policy Policy
	// Adapt, when non-nil, enables adaptive mode selection. Controllers may
	// be shared by all executors of a run (per-site state is locked).
	Adapt *adapt.Controller
}

// NewExecutorConfig is NewExecutor with an explicit Config. When cfg.Adapt
// is set it also enables the engine's hybrid HTM/STM mode (virtual-time
// engines only — the fences rely on the single-runner invariant).
func NewExecutorConfig(t *htm.Thread, lock *GlobalLock, cfg Config) *Executor {
	x := NewExecutor(t, lock, cfg.Policy)
	if cfg.Adapt != nil {
		t.Engine().EnableHybridSTM()
		x.Adapt = cfg.Adapt
	}
	return x
}

// siteKey identifies the static transaction site of a body closure: the
// closure's code pointer, shared by every execution of the same source-level
// atomic block and stable for the life of the process.
func siteKey(body func(t *htm.Thread)) uintptr {
	return reflect.ValueOf(body).Pointer()
}

// adaptClass maps an engine abort to the controller's vocabulary. Lock-word
// conflicts are identified exactly as the static mechanism does (Figure 1
// line 13: the lock is held at classification time).
func adaptClass(ab htm.Abort, lockHeld bool) adapt.Class {
	if lockHeld {
		return adapt.ClassLockConflict
	}
	switch ab.Reason.Category() {
	case htm.CategoryCapacity:
		return adapt.ClassCapacity
	case htm.CategoryDataConflict:
		return adapt.ClassConflict
	default:
		return adapt.ClassOther
	}
}

// noteTransition counts a steady-mode change and emits it as an obs event
// through the executing thread's trace ring (a nil-check no-op untraced).
func (x *Executor) noteTransition(tr adapt.Transition) {
	if !tr.Changed {
		return
	}
	x.Stats.ModeSwitches++
	x.T.TraceEvent(obs.Event{
		Kind:    obs.KindModeSwitch,
		Reason:  uint8(tr.To),
		Aborter: int16(tr.From),
		Line:    tr.Site,
	})
}

// runAdaptive executes body under the controller's direction: each attempt
// runs in the mode the per-site cursor dictates, abort outcomes feed back
// into the site's window, and conflict retries honour the cursor's jittered
// exponential backoff.
func (x *Executor) runAdaptive(body func(t *htm.Thread)) {
	site := x.Adapt.SiteFor(siteKey(body))
	tx := site.Begin()
	for {
		switch tx.Mode() {
		case adapt.ModeHTM:
			if n := tx.Backoff(x.T.Rand().Intn); n > 0 {
				x.T.Pause(n)
			}
			x.Lock.WaitUntilFree(x.T) // lemming guard, as in Figure 1 line 9
			committed, ab := x.T.TryTx(htm.TxNormal, func() {
				x.T.SubscribeHybridGate()
				if x.Lock.SubscribedHeld(x.T) {
					x.T.Abort()
				}
				body(x.T)
			})
			if committed {
				x.Stats.TxCommits++
				x.Stats.HTMCommits++
				x.noteTransition(tx.Commit())
				return
			}
			x.Stats.Aborts++
			held := x.Lock.Held()
			if held {
				x.Stats.AbortsByCategory[htm.CategoryLockConflict]++
			} else {
				x.Stats.AbortsByCategory[ab.Reason.Category()]++
			}
			x.noteTransition(tx.Abort(adaptClass(ab, held)))

		case adapt.ModeSTM:
			if n := tx.Backoff(x.T.Rand().Intn); n > 0 {
				x.T.Pause(n)
			}
			x.Lock.WaitUntilFree(x.T)
			committed, _ := x.T.TrySTM(func() {
				// Value-logged lock subscription: Engine.STMFence at lock
				// acquisition forces revalidation, which sees the held lock.
				if x.Lock.SubscribedHeld(x.T) {
					x.T.Abort()
				}
				body(x.T)
			})
			if committed {
				x.Stats.TxCommits++
				x.Stats.STMCommits++
				x.noteTransition(tx.Commit())
				return
			}
			x.Stats.Aborts++
			if x.Lock.Held() {
				x.Stats.AbortsByCategory[htm.CategoryLockConflict]++
				x.noteTransition(tx.Abort(adapt.ClassLockConflict))
			} else {
				x.Stats.AbortsByCategory[htm.CategoryDataConflict]++
				x.noteTransition(tx.Abort(adapt.ClassSTMConflict))
			}

		case adapt.ModeLock:
			x.Lock.Acquire(x.T)
			// The fence makes every in-flight software transaction
			// revalidate and observe the held lock (hardware transactions
			// are doomed by the lock-word store itself).
			x.T.Engine().STMFence(x.T)
			body(x.T)
			x.Lock.Release(x.T)
			x.Stats.IrrevocableCommits++
			x.noteTransition(tx.Commit())
			return
		}
	}
}
