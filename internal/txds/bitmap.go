package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// Bitmap is a fixed-size bit set — STAMP's lib/bitmap.c, used by ssca2 to
// mark visited vertices and by intruder's flow reassembly.
//
// Layout: header [nBits][dataPtr]; data is packed 64-bit words.
type Bitmap struct{ base mem.Addr }

const (
	bmBits     = 0
	bmData     = 1
	bmHdrWords = 2
)

// NewBitmap allocates a bitmap of nBits bits, all clear.
func NewBitmap(t *htm.Thread, nBits int) Bitmap {
	if nBits < 1 {
		nBits = 1
	}
	words := (nBits + 63) / 64
	h := t.Alloc(bmHdrWords * w)
	data := t.Alloc(words * w)
	sp := t.Engine().Space()
	sp.Label(h, bmHdrWords*w, "txds/bitmap-hdr")
	sp.Label(data, words*w, "txds/bitmap-data")
	storeField(t, h, bmBits, uint64(nBits))
	storeField(t, h, bmData, data)
	return Bitmap{base: h}
}

// Handle returns the bitmap's base address; BitmapAt reverses it.
func (b Bitmap) Handle() mem.Addr { return b.base }

// BitmapAt reinterprets a stored handle as a Bitmap.
func BitmapAt(a mem.Addr) Bitmap { return Bitmap{base: a} }

// Bits returns the bitmap's size in bits.
func (b Bitmap) Bits(t *htm.Thread) int { return int(loadField(t, b.base, bmBits)) }

func (b Bitmap) wordAddr(t *htm.Thread, i int) (mem.Addr, uint64) {
	n := int(loadField(t, b.base, bmBits))
	if i < 0 || i >= n {
		panic("txds: bitmap index out of range")
	}
	data := loadField(t, b.base, bmData)
	return data + uint64(i/64)*w, 1 << (uint(i) & 63)
}

// Set sets bit i, returning false if it was already set (STAMP's
// bitmap_set is test-and-set).
func (b Bitmap) Set(t *htm.Thread, i int) bool {
	a, mask := b.wordAddr(t, i)
	word := t.Load64(a)
	if word&mask != 0 {
		return false
	}
	t.Store64(a, word|mask)
	return true
}

// Clear clears bit i.
func (b Bitmap) Clear(t *htm.Thread, i int) {
	a, mask := b.wordAddr(t, i)
	t.Store64(a, t.Load64(a)&^mask)
}

// Test reports whether bit i is set.
func (b Bitmap) Test(t *htm.Thread, i int) bool {
	a, mask := b.wordAddr(t, i)
	return t.Load64(a)&mask != 0
}

// ClearAll clears every bit.
func (b Bitmap) ClearAll(t *htm.Thread) {
	n := int(loadField(t, b.base, bmBits))
	data := loadField(t, b.base, bmData)
	words := (n + 63) / 64
	for i := 0; i < words; i++ {
		t.Store64(data+uint64(i)*w, 0)
	}
}

// Count returns the number of set bits.
func (b Bitmap) Count(t *htm.Thread) int {
	n := int(loadField(t, b.base, bmBits))
	data := loadField(t, b.base, bmData)
	words := (n + 63) / 64
	total := 0
	for i := 0; i < words; i++ {
		x := t.Load64(data + uint64(i)*w)
		for x != 0 {
			x &= x - 1
			total++
		}
	}
	return total
}
