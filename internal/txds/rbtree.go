package txds

import (
	"fmt"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// RBTree is a red-black tree with unique int64 keys — STAMP's lib/rbtree.c.
// The original intruder and vacation use it for unordered sets, which the
// paper identifies as TM-unfriendly (Section 4): every operation walks a
// log-n path and rebalancing writes fan out across the tree, inflating both
// read and write footprints. The modified benchmarks keep it only where
// order matters.
//
// The implementation is the classic CLRS algorithm with parent pointers and
// a shared nil sentinel, executed entirely through transactional loads and
// stores on simulated memory.
//
// Layout: header [root][sentinel]; node [key][val][left][right][parent][color].
type RBTree struct{ base mem.Addr }

const (
	rbKey       = 0
	rbVal       = 1
	rbLeft      = 2
	rbRight     = 3
	rbParent    = 4
	rbColor     = 5
	rbNodeWords = 6

	rbHdrRoot     = 0
	rbHdrSentinel = 1
	rbHdrWords    = 2
)

const (
	red   = 0
	black = 1
)

// NewRBTree allocates an empty tree.
func NewRBTree(t *htm.Thread) RBTree {
	// Not labelled: intruder's modified variant creates trees inside
	// transactions, and the region registry is setup-time only.
	h := t.Alloc(rbHdrWords * w)
	nilN := t.Alloc(rbNodeWords * w)
	storeField(t, nilN, rbColor, black)
	storeField(t, nilN, rbLeft, nilN)
	storeField(t, nilN, rbRight, nilN)
	storeField(t, nilN, rbParent, nilN)
	storeField(t, h, rbHdrRoot, nilN)
	storeField(t, h, rbHdrSentinel, nilN)
	return RBTree{base: h}
}

// Handle returns the tree's base address; RBTreeAt reverses it.
func (r RBTree) Handle() mem.Addr { return r.base }

// RBTreeAt reinterprets a stored handle as an RBTree.
func RBTreeAt(a mem.Addr) RBTree { return RBTree{base: a} }

func (r RBTree) root(t *htm.Thread) mem.Addr       { return loadField(t, r.base, rbHdrRoot) }
func (r RBTree) setRoot(t *htm.Thread, n mem.Addr) { storeField(t, r.base, rbHdrRoot, n) }
func (r RBTree) nilN(t *htm.Thread) mem.Addr       { return loadField(t, r.base, rbHdrSentinel) }

func key(t *htm.Thread, n mem.Addr) int64          { return int64(loadField(t, n, rbKey)) }
func left(t *htm.Thread, n mem.Addr) mem.Addr      { return loadField(t, n, rbLeft) }
func right(t *htm.Thread, n mem.Addr) mem.Addr     { return loadField(t, n, rbRight) }
func parent(t *htm.Thread, n mem.Addr) mem.Addr    { return loadField(t, n, rbParent) }
func color(t *htm.Thread, n mem.Addr) uint64       { return loadField(t, n, rbColor) }
func setLeft(t *htm.Thread, n, v mem.Addr)         { storeField(t, n, rbLeft, v) }
func setRight(t *htm.Thread, n, v mem.Addr)        { storeField(t, n, rbRight, v) }
func setParent(t *htm.Thread, n, v mem.Addr)       { storeField(t, n, rbParent, v) }
func setColor(t *htm.Thread, n mem.Addr, c uint64) { storeField(t, n, rbColor, c) }

func (r RBTree) leftRotate(t *htm.Thread, x mem.Addr) {
	nilN := r.nilN(t)
	y := right(t, x)
	setRight(t, x, left(t, y))
	if left(t, y) != nilN {
		setParent(t, left(t, y), x)
	}
	setParent(t, y, parent(t, x))
	if parent(t, x) == nilN {
		r.setRoot(t, y)
	} else if x == left(t, parent(t, x)) {
		setLeft(t, parent(t, x), y)
	} else {
		setRight(t, parent(t, x), y)
	}
	setLeft(t, y, x)
	setParent(t, x, y)
}

func (r RBTree) rightRotate(t *htm.Thread, x mem.Addr) {
	nilN := r.nilN(t)
	y := left(t, x)
	setLeft(t, x, right(t, y))
	if right(t, y) != nilN {
		setParent(t, right(t, y), x)
	}
	setParent(t, y, parent(t, x))
	if parent(t, x) == nilN {
		r.setRoot(t, y)
	} else if x == right(t, parent(t, x)) {
		setRight(t, parent(t, x), y)
	} else {
		setLeft(t, parent(t, x), y)
	}
	setRight(t, y, x)
	setParent(t, x, y)
}

// Insert adds k→val, returning false if k is already present.
func (r RBTree) Insert(t *htm.Thread, k int64, val uint64) bool {
	nilN := r.nilN(t)
	y := nilN
	x := r.root(t)
	for x != nilN {
		y = x
		kx := key(t, x)
		switch {
		case k == kx:
			return false
		case k < kx:
			x = left(t, x)
		default:
			x = right(t, x)
		}
	}
	z := t.Alloc(rbNodeWords * w)
	storeField(t, z, rbKey, uint64(k))
	storeField(t, z, rbVal, val)
	setParent(t, z, y)
	if y == nilN {
		r.setRoot(t, z)
	} else if k < key(t, y) {
		setLeft(t, y, z)
	} else {
		setRight(t, y, z)
	}
	setLeft(t, z, nilN)
	setRight(t, z, nilN)
	setColor(t, z, red)
	r.insertFixup(t, z)
	return true
}

func (r RBTree) insertFixup(t *htm.Thread, z mem.Addr) {
	for color(t, parent(t, z)) == red {
		p := parent(t, z)
		g := parent(t, p)
		if p == left(t, g) {
			y := right(t, g)
			if color(t, y) == red {
				setColor(t, p, black)
				setColor(t, y, black)
				setColor(t, g, red)
				z = g
			} else {
				if z == right(t, p) {
					z = p
					r.leftRotate(t, z)
				}
				p = parent(t, z)
				g = parent(t, p)
				setColor(t, p, black)
				setColor(t, g, red)
				r.rightRotate(t, g)
			}
		} else {
			y := left(t, g)
			if color(t, y) == red {
				setColor(t, p, black)
				setColor(t, y, black)
				setColor(t, g, red)
				z = g
			} else {
				if z == left(t, p) {
					z = p
					r.rightRotate(t, z)
				}
				p = parent(t, z)
				g = parent(t, p)
				setColor(t, p, black)
				setColor(t, g, red)
				r.leftRotate(t, g)
			}
		}
	}
	setColor(t, r.root(t), black)
}

// lookup returns the node with key k, or the sentinel.
func (r RBTree) lookup(t *htm.Thread, k int64) mem.Addr {
	nilN := r.nilN(t)
	x := r.root(t)
	for x != nilN {
		kx := key(t, x)
		switch {
		case k == kx:
			return x
		case k < kx:
			x = left(t, x)
		default:
			x = right(t, x)
		}
	}
	return nilN
}

// Get returns the value stored under k.
func (r RBTree) Get(t *htm.Thread, k int64) (uint64, bool) {
	n := r.lookup(t, k)
	if n == r.nilN(t) {
		return 0, false
	}
	return loadField(t, n, rbVal), true
}

// Contains reports whether k is present.
func (r RBTree) Contains(t *htm.Thread, k int64) bool {
	return r.lookup(t, k) != r.nilN(t)
}

// Set updates the value under k, returning false if k is absent.
func (r RBTree) Set(t *htm.Thread, k int64, val uint64) bool {
	n := r.lookup(t, k)
	if n == r.nilN(t) {
		return false
	}
	storeField(t, n, rbVal, val)
	return true
}

func (r RBTree) minimum(t *htm.Thread, x mem.Addr) mem.Addr {
	nilN := r.nilN(t)
	for left(t, x) != nilN {
		x = left(t, x)
	}
	return x
}

// Min returns the smallest key, if the tree is non-empty.
func (r RBTree) Min(t *htm.Thread) (int64, uint64, bool) {
	nilN := r.nilN(t)
	root := r.root(t)
	if root == nilN {
		return 0, 0, false
	}
	n := r.minimum(t, root)
	return key(t, n), loadField(t, n, rbVal), true
}

// Successor returns the smallest key strictly greater than k, if any.
func (r RBTree) Successor(t *htm.Thread, k int64) (int64, uint64, bool) {
	nilN := r.nilN(t)
	x := r.root(t)
	best := nilN
	for x != nilN {
		if key(t, x) > k {
			best = x
			x = left(t, x)
		} else {
			x = right(t, x)
		}
	}
	if best == nilN {
		return 0, 0, false
	}
	return key(t, best), loadField(t, best, rbVal), true
}

func (r RBTree) transplant(t *htm.Thread, u, v mem.Addr) {
	nilN := r.nilN(t)
	up := parent(t, u)
	if up == nilN {
		r.setRoot(t, v)
	} else if u == left(t, up) {
		setLeft(t, up, v)
	} else {
		setRight(t, up, v)
	}
	setParent(t, v, up)
}

// Remove deletes k, returning its value and whether it was present.
func (r RBTree) Remove(t *htm.Thread, k int64) (uint64, bool) {
	nilN := r.nilN(t)
	z := r.lookup(t, k)
	if z == nilN {
		return 0, false
	}
	val := loadField(t, z, rbVal)

	y := z
	yColor := color(t, y)
	var x mem.Addr
	switch {
	case left(t, z) == nilN:
		x = right(t, z)
		r.transplant(t, z, x)
	case right(t, z) == nilN:
		x = left(t, z)
		r.transplant(t, z, x)
	default:
		y = r.minimum(t, right(t, z))
		yColor = color(t, y)
		x = right(t, y)
		if parent(t, y) == z {
			setParent(t, x, y) // x may be the sentinel; CLRS relies on this
		} else {
			r.transplant(t, y, x)
			setRight(t, y, right(t, z))
			setParent(t, right(t, y), y)
		}
		r.transplant(t, z, y)
		setLeft(t, y, left(t, z))
		setParent(t, left(t, y), y)
		setColor(t, y, color(t, z))
	}
	if yColor == black {
		r.deleteFixup(t, x)
	}
	t.Free(z)
	return val, true
}

func (r RBTree) deleteFixup(t *htm.Thread, x mem.Addr) {
	for x != r.root(t) && color(t, x) == black {
		p := parent(t, x)
		if x == left(t, p) {
			w2 := right(t, p)
			if color(t, w2) == red {
				setColor(t, w2, black)
				setColor(t, p, red)
				r.leftRotate(t, p)
				p = parent(t, x)
				w2 = right(t, p)
			}
			if color(t, left(t, w2)) == black && color(t, right(t, w2)) == black {
				setColor(t, w2, red)
				x = p
			} else {
				if color(t, right(t, w2)) == black {
					setColor(t, left(t, w2), black)
					setColor(t, w2, red)
					r.rightRotate(t, w2)
					p = parent(t, x)
					w2 = right(t, p)
				}
				setColor(t, w2, color(t, p))
				setColor(t, p, black)
				setColor(t, right(t, w2), black)
				r.leftRotate(t, p)
				x = r.root(t)
			}
		} else {
			w2 := left(t, p)
			if color(t, w2) == red {
				setColor(t, w2, black)
				setColor(t, p, red)
				r.rightRotate(t, p)
				p = parent(t, x)
				w2 = left(t, p)
			}
			if color(t, right(t, w2)) == black && color(t, left(t, w2)) == black {
				setColor(t, w2, red)
				x = p
			} else {
				if color(t, left(t, w2)) == black {
					setColor(t, right(t, w2), black)
					setColor(t, w2, red)
					r.leftRotate(t, w2)
					p = parent(t, x)
					w2 = left(t, p)
				}
				setColor(t, w2, color(t, p))
				setColor(t, p, black)
				setColor(t, left(t, w2), black)
				r.rightRotate(t, p)
				x = r.root(t)
			}
		}
	}
	setColor(t, x, black)
}

// Len returns the number of keys (O(n) walk).
func (r RBTree) Len(t *htm.Thread) int {
	n := 0
	r.Each(t, func(int64, uint64) bool { n++; return true })
	return n
}

// Each calls fn for every (key, value) in ascending order; fn returning
// false stops the walk. The walk is iterative (successor-based) so it works
// on simulated memory without recursion limits.
func (r RBTree) Each(t *htm.Thread, fn func(k int64, v uint64) bool) {
	nilN := r.nilN(t)
	x := r.root(t)
	if x == nilN {
		return
	}
	x = r.minimum(t, x)
	for x != nilN {
		if !fn(key(t, x), loadField(t, x, rbVal)) {
			return
		}
		// Successor of x.
		if right(t, x) != nilN {
			x = r.minimum(t, right(t, x))
		} else {
			p := parent(t, x)
			for p != nilN && x == right(t, p) {
				x = p
				p = parent(t, p)
			}
			x = p
		}
	}
}

// CheckInvariants verifies the red-black properties (test support): root is
// black, no red node has a red child, all root-to-sentinel paths have equal
// black height, and keys are ordered. It returns an error describing the
// first violation.
func (r RBTree) CheckInvariants(t *htm.Thread) error {
	nilN := r.nilN(t)
	root := r.root(t)
	if root == nilN {
		return nil
	}
	if color(t, root) != black {
		return fmt.Errorf("rbtree: root is red")
	}
	var check func(n mem.Addr, lo, hi int64, loOK, hiOK bool) (int, error)
	check = func(n mem.Addr, lo, hi int64, loOK, hiOK bool) (int, error) {
		if n == nilN {
			return 1, nil
		}
		k := key(t, n)
		if loOK && k <= lo {
			return 0, fmt.Errorf("rbtree: key %d violates lower bound %d", k, lo)
		}
		if hiOK && k >= hi {
			return 0, fmt.Errorf("rbtree: key %d violates upper bound %d", k, hi)
		}
		if color(t, n) == red {
			if color(t, left(t, n)) == red || color(t, right(t, n)) == red {
				return 0, fmt.Errorf("rbtree: red node %d has red child", k)
			}
		}
		lb, err := check(left(t, n), lo, k, loOK, true)
		if err != nil {
			return 0, err
		}
		rb, err := check(right(t, n), k, hi, true, hiOK)
		if err != nil {
			return 0, err
		}
		if lb != rb {
			return 0, fmt.Errorf("rbtree: black-height mismatch at key %d (%d vs %d)", k, lb, rb)
		}
		h := lb
		if color(t, n) == black {
			h++
		}
		return h, nil
	}
	_, err := check(root, 0, 0, false, false)
	return err
}
