package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// Heap is a growable binary max-heap of (priority, value) pairs — STAMP's
// lib/heap.c, used by yada as the shared work queue of bad triangles.
//
// Layout: header [size][capacity][arrayPtr]; the array holds pairs of words
// (priority, value), 1-indexed like the STAMP original (slot 0 unused).
type Heap struct{ base mem.Addr }

const (
	hpSize     = 0
	hpCapacity = 1
	hpArray    = 2
	hpHdrWords = 3
)

// NewHeap allocates a heap with the given initial capacity (minimum 1).
func NewHeap(t *htm.Thread, capacity int) Heap {
	if capacity < 1 {
		capacity = 1
	}
	// The header's size field is written by every push/pop; isolate it on
	// its own conflict-detection line (see Queue).
	line := t.Engine().LineSize()
	hdrBytes := hpHdrWords * w
	if hdrBytes < line {
		hdrBytes = line
	}
	h := t.AllocAligned(hdrBytes, line)
	arr := t.Alloc((capacity + 1) * 2 * w)
	sp := t.Engine().Space()
	sp.Label(h, hdrBytes, "txds/heap-hdr")
	sp.Label(arr, (capacity+1)*2*w, "txds/heap-array")
	storeField(t, h, hpSize, 0)
	storeField(t, h, hpCapacity, uint64(capacity))
	storeField(t, h, hpArray, arr)
	return Heap{base: h}
}

// Handle returns the heap's base address; HeapAt reverses it.
func (h Heap) Handle() mem.Addr { return h.base }

// HeapAt reinterprets a stored handle as a Heap.
func HeapAt(a mem.Addr) Heap { return Heap{base: a} }

// Len returns the number of elements.
func (h Heap) Len(t *htm.Thread) int { return int(loadField(t, h.base, hpSize)) }

func (h Heap) prio(t *htm.Thread, arr mem.Addr, i uint64) int64 {
	return int64(t.Load64(arr + (2*i)*w))
}

func (h Heap) val(t *htm.Thread, arr mem.Addr, i uint64) uint64 {
	return t.Load64(arr + (2*i+1)*w)
}

func (h Heap) put(t *htm.Thread, arr mem.Addr, i uint64, p int64, v uint64) {
	t.Store64(arr+(2*i)*w, uint64(p))
	t.Store64(arr+(2*i+1)*w, v)
}

// Push inserts value v with priority p, growing the array when full.
func (h Heap) Push(t *htm.Thread, p int64, v uint64) {
	size := loadField(t, h.base, hpSize)
	cap := loadField(t, h.base, hpCapacity)
	arr := loadField(t, h.base, hpArray)
	if size == cap {
		newCap := cap * 2
		newArr := t.Alloc(int(newCap+1) * 2 * w)
		for i := uint64(1); i <= size; i++ {
			h.put(t, newArr, i, h.prio(t, arr, i), h.val(t, arr, i))
		}
		t.Free(arr)
		storeField(t, h.base, hpArray, newArr)
		storeField(t, h.base, hpCapacity, newCap)
		arr = newArr
	}
	// Sift up.
	i := size + 1
	for i > 1 {
		par := i / 2
		if h.prio(t, arr, par) >= p {
			break
		}
		h.put(t, arr, i, h.prio(t, arr, par), h.val(t, arr, par))
		i = par
	}
	h.put(t, arr, i, p, v)
	storeField(t, h.base, hpSize, size+1)
}

// Pop removes and returns the highest-priority element.
func (h Heap) Pop(t *htm.Thread) (p int64, v uint64, ok bool) {
	size := loadField(t, h.base, hpSize)
	if size == 0 {
		return 0, 0, false
	}
	arr := loadField(t, h.base, hpArray)
	p = h.prio(t, arr, 1)
	v = h.val(t, arr, 1)
	lastP := h.prio(t, arr, size)
	lastV := h.val(t, arr, size)
	size--
	storeField(t, h.base, hpSize, size)
	if size == 0 {
		return p, v, true
	}
	// Sift the former last element down from the root.
	i := uint64(1)
	for {
		c := 2 * i
		if c > size {
			break
		}
		if c+1 <= size && h.prio(t, arr, c+1) > h.prio(t, arr, c) {
			c++
		}
		if h.prio(t, arr, c) <= lastP {
			break
		}
		h.put(t, arr, i, h.prio(t, arr, c), h.val(t, arr, c))
		i = c
	}
	h.put(t, arr, i, lastP, lastV)
	return p, v, true
}
