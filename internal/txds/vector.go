package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// Vector is a growable array of 64-bit values — STAMP's lib/vector.c, used
// by yada (cavity element lists) and labyrinth (path point lists).
//
// Layout: header [size][capacity][arrayPtr].
type Vector struct{ base mem.Addr }

const (
	vecSize     = 0
	vecCapacity = 1
	vecArray    = 2
	vecHdrWords = 3
)

// NewVector allocates a vector with the given initial capacity (minimum 1).
func NewVector(t *htm.Thread, capacity int) Vector {
	if capacity < 1 {
		capacity = 1
	}
	h := t.Alloc(vecHdrWords * w)
	arr := t.Alloc(capacity * w)
	sp := t.Engine().Space()
	sp.Label(h, vecHdrWords*w, "txds/vector-hdr")
	sp.Label(arr, capacity*w, "txds/vector-array")
	storeField(t, h, vecSize, 0)
	storeField(t, h, vecCapacity, uint64(capacity))
	storeField(t, h, vecArray, arr)
	return Vector{base: h}
}

// Handle returns the vector's base address; VectorAt reverses it.
func (v Vector) Handle() mem.Addr { return v.base }

// VectorAt reinterprets a stored handle as a Vector.
func VectorAt(a mem.Addr) Vector { return Vector{base: a} }

// Len returns the number of elements.
func (v Vector) Len(t *htm.Thread) int { return int(loadField(t, v.base, vecSize)) }

// PushBack appends x, doubling the array when full.
func (v Vector) PushBack(t *htm.Thread, x uint64) {
	size := loadField(t, v.base, vecSize)
	cap := loadField(t, v.base, vecCapacity)
	arr := loadField(t, v.base, vecArray)
	if size == cap {
		newCap := cap * 2
		newArr := t.Alloc(int(newCap) * w)
		for i := uint64(0); i < size; i++ {
			t.Store64(newArr+i*w, t.Load64(arr+i*w))
		}
		t.Free(arr)
		storeField(t, v.base, vecArray, newArr)
		storeField(t, v.base, vecCapacity, newCap)
		arr = newArr
	}
	t.Store64(arr+size*w, x)
	storeField(t, v.base, vecSize, size+1)
}

// PopBack removes and returns the last element.
func (v Vector) PopBack(t *htm.Thread) (uint64, bool) {
	size := loadField(t, v.base, vecSize)
	if size == 0 {
		return 0, false
	}
	arr := loadField(t, v.base, vecArray)
	x := t.Load64(arr + (size-1)*w)
	storeField(t, v.base, vecSize, size-1)
	return x, true
}

// At returns element i; it panics on out-of-range access (a workload bug).
func (v Vector) At(t *htm.Thread, i int) uint64 {
	size := int(loadField(t, v.base, vecSize))
	if i < 0 || i >= size {
		panic("txds: vector index out of range")
	}
	arr := loadField(t, v.base, vecArray)
	return t.Load64(arr + uint64(i)*w)
}

// SetAt replaces element i.
func (v Vector) SetAt(t *htm.Thread, i int, x uint64) {
	size := int(loadField(t, v.base, vecSize))
	if i < 0 || i >= size {
		panic("txds: vector index out of range")
	}
	arr := loadField(t, v.base, vecArray)
	t.Store64(arr+uint64(i)*w, x)
}

// Clear resets the vector to length zero without shrinking.
func (v Vector) Clear(t *htm.Thread) { storeField(t, v.base, vecSize, 0) }
