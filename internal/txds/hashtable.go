package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// Hashtable is a fixed-bucket chained hash table with int64 keys — the
// structure the paper substitutes for red-black trees in intruder and
// vacation ("similar to the concurrent hash table in the Java standard
// class library", Section 4). A transactional insert or lookup touches only
// the bucket head and a short chain, keeping footprints tiny — which is the
// entire point of the paper's modification.
//
// There is deliberately no global size counter: one shared counter would put
// a hot line into every transaction's write set and serialise the table, a
// TM anti-pattern the Java concurrent hash table also avoids.
//
// Layout: header [nBuckets][bucketArrayPtr]; buckets are chain heads; chain
// node [next][key][value].
type Hashtable struct{ base mem.Addr }

const (
	htNBuckets = 0
	htBuckets  = 1
	htHdrWords = 2
)

// NewHashtable allocates a table with nBuckets chains (rounded up to at
// least 1). The bucket array is line-aligned so adjacent buckets sharing a
// conflict-detection line is a modelled effect, not an allocator accident.
func NewHashtable(t *htm.Thread, nBuckets int) Hashtable {
	if nBuckets < 1 {
		nBuckets = 1
	}
	h := t.Alloc(htHdrWords * w)
	arr := t.AllocAligned(nBuckets*w, t.Engine().LineSize())
	sp := t.Engine().Space()
	sp.Label(h, htHdrWords*w, "txds/hashtable-hdr")
	sp.Label(arr, nBuckets*w, "txds/hashtable-buckets")
	for i := 0; i < nBuckets; i++ {
		t.Store64(arr+uint64(i)*w, mem.Nil)
	}
	storeField(t, h, htNBuckets, uint64(nBuckets))
	storeField(t, h, htBuckets, arr)
	return Hashtable{base: h}
}

// Handle returns the table's base address; HashtableAt reverses it.
func (h Hashtable) Handle() mem.Addr { return h.base }

// HashtableAt reinterprets a stored handle as a Hashtable.
func HashtableAt(a mem.Addr) Hashtable { return Hashtable{base: a} }

func (h Hashtable) bucketAddr(t *htm.Thread, key int64) mem.Addr {
	n := loadField(t, h.base, htNBuckets)
	arr := loadField(t, h.base, htBuckets)
	idx := Hash64(uint64(key)) % n
	return arr + idx*w
}

// Insert adds key→val, returning false if the key was already present.
func (h Hashtable) Insert(t *htm.Thread, key int64, val uint64) bool {
	b := h.bucketAddr(t, key)
	head := t.LoadPtr(b)
	for cur := head; cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
		if int64(loadField(t, cur, listKey)) == key {
			return false
		}
	}
	n := t.Alloc(listNodeWords * w)
	storeField(t, n, listKey, uint64(key))
	storeField(t, n, listVal, val)
	storeField(t, n, listNext, head)
	t.StorePtr(b, n)
	return true
}

// Put adds or replaces key→val, returning true if the key was new.
func (h Hashtable) Put(t *htm.Thread, key int64, val uint64) bool {
	b := h.bucketAddr(t, key)
	head := t.LoadPtr(b)
	for cur := head; cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
		if int64(loadField(t, cur, listKey)) == key {
			storeField(t, cur, listVal, val)
			return false
		}
	}
	n := t.Alloc(listNodeWords * w)
	storeField(t, n, listKey, uint64(key))
	storeField(t, n, listVal, val)
	storeField(t, n, listNext, head)
	t.StorePtr(b, n)
	return true
}

// Get returns the value stored under key.
func (h Hashtable) Get(t *htm.Thread, key int64) (uint64, bool) {
	b := h.bucketAddr(t, key)
	for cur := t.LoadPtr(b); cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
		if int64(loadField(t, cur, listKey)) == key {
			return loadField(t, cur, listVal), true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (h Hashtable) Contains(t *htm.Thread, key int64) bool {
	_, ok := h.Get(t, key)
	return ok
}

// Remove deletes key, returning its value and whether it was present.
func (h Hashtable) Remove(t *htm.Thread, key int64) (uint64, bool) {
	b := h.bucketAddr(t, key)
	prevLink := b
	for cur := t.LoadPtr(b); cur != mem.Nil; {
		next := t.LoadPtr(fieldAddr(cur, listNext))
		if int64(loadField(t, cur, listKey)) == key {
			v := loadField(t, cur, listVal)
			t.StorePtr(prevLink, next)
			t.Free(cur)
			return v, true
		}
		prevLink = fieldAddr(cur, listNext)
		cur = next
	}
	return 0, false
}

// Len walks all chains and returns the number of entries.
func (h Hashtable) Len(t *htm.Thread) int {
	n := int(loadField(t, h.base, htNBuckets))
	arr := loadField(t, h.base, htBuckets)
	total := 0
	for i := 0; i < n; i++ {
		for cur := t.LoadPtr(arr + uint64(i)*w); cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
			total++
		}
	}
	return total
}

// Each calls fn for every (key, value); iteration order is unspecified. fn
// returning false stops the walk.
func (h Hashtable) Each(t *htm.Thread, fn func(key int64, val uint64) bool) {
	n := int(loadField(t, h.base, htNBuckets))
	arr := loadField(t, h.base, htBuckets)
	for i := 0; i < n; i++ {
		for cur := t.LoadPtr(arr + uint64(i)*w); cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
			if !fn(int64(loadField(t, cur, listKey)), loadField(t, cur, listVal)) {
				return
			}
		}
	}
}
