package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// Queue is a growable circular-buffer FIFO of 64-bit values — STAMP's
// lib/queue.c, used by intruder to hand packets between the capture,
// reassembly and detection phases.
//
// Layout: header [pop][push][capacity][arrayPtr]; the array holds values.
// As in STAMP, pop is the index *before* the first element and push is the
// index of the next free slot.
type Queue struct{ base mem.Addr }

const (
	qPop      = 0
	qPush     = 1
	qCapacity = 2
	qArray    = 3
	qHdrWords = 4
)

// NewQueue allocates a queue with the given initial capacity (minimum 2).
func NewQueue(t *htm.Thread, capacity int) Queue {
	if capacity < 2 {
		capacity = 2
	}
	// The header holds the constantly written pop/push cursors; give it a
	// full conflict-detection line so unrelated allocations sharing the
	// line do not get doomed by every queue operation.
	line := t.Engine().LineSize()
	hdrBytes := qHdrWords * w
	if hdrBytes < line {
		hdrBytes = line
	}
	h := t.AllocAligned(hdrBytes, line)
	arr := t.Alloc(capacity * w)
	sp := t.Engine().Space()
	sp.Label(h, hdrBytes, "txds/queue-hdr")
	sp.Label(arr, capacity*w, "txds/queue-array")
	storeField(t, h, qPop, uint64(capacity-1))
	storeField(t, h, qPush, 0)
	storeField(t, h, qCapacity, uint64(capacity))
	storeField(t, h, qArray, arr)
	return Queue{base: h}
}

// Handle returns the queue's base address; QueueAt reverses it.
func (q Queue) Handle() mem.Addr { return q.base }

// QueueAt reinterprets a stored handle as a Queue.
func QueueAt(a mem.Addr) Queue { return Queue{base: a} }

// Empty reports whether the queue has no elements.
func (q Queue) Empty(t *htm.Thread) bool {
	pop := loadField(t, q.base, qPop)
	push := loadField(t, q.base, qPush)
	cap := loadField(t, q.base, qCapacity)
	return push == (pop+1)%cap
}

// Len returns the number of queued elements.
func (q Queue) Len(t *htm.Thread) int {
	pop := loadField(t, q.base, qPop)
	push := loadField(t, q.base, qPush)
	cap := loadField(t, q.base, qCapacity)
	return int((push + cap - (pop+1)%cap) % cap)
}

// Push appends v, doubling the backing array when full (STAMP's
// queue_push). The old array is freed.
func (q Queue) Push(t *htm.Thread, v uint64) {
	pop := loadField(t, q.base, qPop)
	push := loadField(t, q.base, qPush)
	cap := loadField(t, q.base, qCapacity)
	arr := loadField(t, q.base, qArray)

	newPush := (push + 1) % cap
	if newPush == pop { // full: grow
		newCap := cap * 2
		newArr := t.Alloc(int(newCap) * w)
		// Copy elements in order into the new array starting at 0.
		n := uint64(0)
		for i := (pop + 1) % cap; i != push; i = (i + 1) % cap {
			t.Store64(newArr+n*w, t.Load64(arr+i*w))
			n++
		}
		t.Free(arr)
		storeField(t, q.base, qArray, newArr)
		storeField(t, q.base, qCapacity, newCap)
		storeField(t, q.base, qPop, newCap-1)
		storeField(t, q.base, qPush, n)
		arr, cap, push = newArr, newCap, n
	}
	t.Store64(arr+push*w, v)
	storeField(t, q.base, qPush, (push+1)%cap)
}

// Pop removes and returns the oldest element.
func (q Queue) Pop(t *htm.Thread) (uint64, bool) {
	pop := loadField(t, q.base, qPop)
	push := loadField(t, q.base, qPush)
	cap := loadField(t, q.base, qCapacity)
	newPop := (pop + 1) % cap
	if newPop == push {
		return 0, false
	}
	arr := loadField(t, q.base, qArray)
	v := t.Load64(arr + newPop*w)
	storeField(t, q.base, qPop, newPop)
	return v, true
}
