// Package txds provides the transactional data structures the STAMP
// benchmarks are built from: sorted linked list, chained hash table,
// red-black tree, queue, binary heap, vector and bitmap — the Go analogues
// of STAMP's lib/ directory.
//
// Every structure lives entirely in simulated memory (internal/mem) and is
// accessed through an htm.Thread, so the same code runs transactionally
// inside a transaction and plainly outside one — mirroring STAMP's TMxxx /
// Pxxx accessor split without duplicating the logic. Handles (List,
// Hashtable, …) are plain values wrapping the structure's base address and
// can themselves be stored in simulated memory as pointers.
//
// Keys are int64 and values are opaque 64-bit words (usually simulated
// addresses), matching STAMP's (comparator, void*) pairs.
package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// w is the simulated word size; field offsets below are in words.
const w = mem.WordSize

// addrOf returns base + index*words.
func fieldAddr(base mem.Addr, field int) mem.Addr {
	return base + uint64(field)*w
}

// loadField reads word field of the record at base.
func loadField(t *htm.Thread, base mem.Addr, field int) uint64 {
	return t.Load64(fieldAddr(base, field))
}

// storeField writes word field of the record at base.
func storeField(t *htm.Thread, base mem.Addr, field int, v uint64) {
	t.Store64(fieldAddr(base, field), v)
}

// Hash64 is the 64-bit finalizer used to spread hash-table keys.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
