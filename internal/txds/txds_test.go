package txds

import (
	"container/heap"
	"sort"
	"sync"
	"testing"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
	"htmcmp/internal/prng"
)

func testThread(t *testing.T) *htm.Thread {
	t.Helper()
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 1, SpaceSize: 32 << 20, CostScale: 0,
		DisablePrefetch: true, DisableCacheFetchAborts: true,
	})
	return e.Thread(0)
}

// ---------------------------------------------------------------------------
// List

func TestListBasic(t *testing.T) {
	th := testThread(t)
	l := NewList(th)
	if n := l.Len(th); n != 0 {
		t.Fatalf("fresh list Len = %d", n)
	}
	if !l.Insert(th, 5, 50) || !l.Insert(th, 1, 10) || !l.Insert(th, 3, 30) {
		t.Fatal("insert of fresh keys failed")
	}
	if l.Insert(th, 3, 99) {
		t.Error("duplicate insert succeeded")
	}
	if v, ok := l.Get(th, 3); !ok || v != 30 {
		t.Errorf("Get(3) = %d,%v", v, ok)
	}
	if l.Contains(th, 2) {
		t.Error("Contains(2) true")
	}
	// Sorted iteration.
	var keys []int64
	l.Each(th, func(k int64, v uint64) bool { keys = append(keys, k); return true })
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 5 {
		t.Errorf("Each order = %v", keys)
	}
	if v, ok := l.Remove(th, 3); !ok || v != 30 {
		t.Errorf("Remove(3) = %d,%v", v, ok)
	}
	if _, ok := l.Remove(th, 3); ok {
		t.Error("double remove succeeded")
	}
	if k, v, ok := l.RemoveFirst(th); !ok || k != 1 || v != 10 {
		t.Errorf("RemoveFirst = %d,%d,%v", k, v, ok)
	}
	l.Clear(th)
	if n := l.Len(th); n != 0 {
		t.Errorf("after Clear Len = %d", n)
	}
}

func TestListRandomOracle(t *testing.T) {
	th := testThread(t)
	l := NewList(th)
	oracle := map[int64]uint64{}
	rng := prng.New(99)
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			ins := l.Insert(th, k, uint64(i))
			_, had := oracle[k]
			if ins == had {
				t.Fatalf("step %d: Insert(%d)=%v but oracle had=%v", i, k, ins, had)
			}
			if ins {
				oracle[k] = uint64(i)
			}
		case 1:
			v, ok := l.Get(th, k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Get(%d)=(%d,%v) oracle (%d,%v)", i, k, v, ok, ov, ook)
			}
		default:
			v, ok := l.Remove(th, k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Remove(%d)=(%d,%v) oracle (%d,%v)", i, k, v, ok, ov, ook)
			}
			delete(oracle, k)
		}
	}
	if l.Len(th) != len(oracle) {
		t.Fatalf("final Len=%d oracle=%d", l.Len(th), len(oracle))
	}
}

// ---------------------------------------------------------------------------
// Hashtable

func TestHashtableBasic(t *testing.T) {
	th := testThread(t)
	h := NewHashtable(th, 16)
	if !h.Insert(th, 42, 1) {
		t.Fatal("insert failed")
	}
	if h.Insert(th, 42, 2) {
		t.Error("duplicate insert succeeded")
	}
	if v, ok := h.Get(th, 42); !ok || v != 1 {
		t.Errorf("Get = %d,%v", v, ok)
	}
	if isNew := h.Put(th, 42, 5); isNew {
		t.Error("Put of existing key reported new")
	}
	if v, _ := h.Get(th, 42); v != 5 {
		t.Errorf("after Put Get = %d", v)
	}
	if v, ok := h.Remove(th, 42); !ok || v != 5 {
		t.Errorf("Remove = %d,%v", v, ok)
	}
	if h.Contains(th, 42) {
		t.Error("Contains after Remove")
	}
}

func TestHashtableRandomOracle(t *testing.T) {
	th := testThread(t)
	h := NewHashtable(th, 8) // tiny table: long chains exercise removal mid-chain
	oracle := map[int64]uint64{}
	rng := prng.New(123)
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(300)) - 150 // include negatives
		switch rng.Intn(4) {
		case 0:
			ins := h.Insert(th, k, uint64(i))
			_, had := oracle[k]
			if ins == had {
				t.Fatalf("step %d: Insert(%d)=%v oracle had=%v", i, k, ins, had)
			}
			if ins {
				oracle[k] = uint64(i)
			}
		case 1:
			h.Put(th, k, uint64(i))
			oracle[k] = uint64(i)
		case 2:
			v, ok := h.Get(th, k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Get(%d)=(%d,%v) oracle (%d,%v)", i, k, v, ok, ov, ook)
			}
		default:
			v, ok := h.Remove(th, k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Remove(%d)=(%d,%v) oracle (%d,%v)", i, k, v, ok, ov, ook)
			}
			delete(oracle, k)
		}
		if i%1000 == 0 && h.Len(th) != len(oracle) {
			t.Fatalf("step %d: Len=%d oracle=%d", i, h.Len(th), len(oracle))
		}
	}
	got := map[int64]uint64{}
	h.Each(th, func(k int64, v uint64) bool { got[k] = v; return true })
	if len(got) != len(oracle) {
		t.Fatalf("Each visited %d entries, oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle { //htmlint:allow determinism -- map-vs-map comparison, order-insensitive
		if got[k] != v {
			t.Fatalf("Each mismatch at %d: %d vs %d", k, got[k], v)
		}
	}
}

func TestHashtableConcurrentInserts(t *testing.T) {
	e := htm.New(platform.New(platform.ZEC12), htm.Config{
		Threads: 4, SpaceSize: 32 << 20, CostScale: 0, DisableCacheFetchAborts: true,
	})
	h := NewHashtable(e.Thread(0), 64)
	const perThread = 500
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			for j := 0; j < perThread; j++ {
				k := int64(tid*perThread + j)
				for {
					ok, _ := th.TryTx(htm.TxNormal, func() { h.Insert(th, k, uint64(k)) })
					if ok {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if n := h.Len(e.Thread(0)); n != 4*perThread {
		t.Fatalf("concurrent inserts lost entries: Len=%d want %d", n, 4*perThread)
	}
}

// ---------------------------------------------------------------------------
// RBTree

func TestRBTreeBasic(t *testing.T) {
	th := testThread(t)
	r := NewRBTree(th)
	for _, k := range []int64{5, 2, 8, 1, 9, 3, 7, 4, 6} {
		if !r.Insert(th, k, uint64(k*10)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if r.Insert(th, 5, 0) {
		t.Error("duplicate insert succeeded")
	}
	if err := r.CheckInvariants(th); err != nil {
		t.Fatalf("invariants after inserts: %v", err)
	}
	if v, ok := r.Get(th, 7); !ok || v != 70 {
		t.Errorf("Get(7) = %d,%v", v, ok)
	}
	if k, v, ok := r.Min(th); !ok || k != 1 || v != 10 {
		t.Errorf("Min = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := r.Successor(th, 5); !ok || k != 6 {
		t.Errorf("Successor(5) = %d,%v", k, ok)
	}
	if _, _, ok := r.Successor(th, 9); ok {
		t.Error("Successor(max) should not exist")
	}
	if !r.Set(th, 3, 333) {
		t.Error("Set(3) failed")
	}
	if v, _ := r.Get(th, 3); v != 333 {
		t.Errorf("after Set Get(3) = %d", v)
	}
	var keys []int64
	r.Each(th, func(k int64, v uint64) bool { keys = append(keys, k); return true })
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("Each not sorted: %v", keys)
	}
	if len(keys) != 9 {
		t.Errorf("Each visited %d keys", len(keys))
	}
	for _, k := range []int64{5, 1, 9, 2, 8, 3, 7, 4, 6} {
		if _, ok := r.Remove(th, k); !ok {
			t.Fatalf("Remove(%d) failed", k)
		}
		if err := r.CheckInvariants(th); err != nil {
			t.Fatalf("invariants after Remove(%d): %v", k, err)
		}
	}
	if r.Len(th) != 0 {
		t.Errorf("Len after removing all = %d", r.Len(th))
	}
}

// TestRBTreeRandomOracle is the heavyweight property test: thousands of
// random operations checked against a Go map, with the red-black invariants
// revalidated periodically.
func TestRBTreeRandomOracle(t *testing.T) {
	th := testThread(t)
	r := NewRBTree(th)
	oracle := map[int64]uint64{}
	rng := prng.New(2024)
	for i := 0; i < 8000; i++ {
		k := int64(rng.Intn(400))
		switch rng.Intn(3) {
		case 0:
			ins := r.Insert(th, k, uint64(i))
			_, had := oracle[k]
			if ins == had {
				t.Fatalf("step %d: Insert(%d)=%v oracle had=%v", i, k, ins, had)
			}
			if ins {
				oracle[k] = uint64(i)
			}
		case 1:
			v, ok := r.Get(th, k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Get(%d)=(%d,%v) oracle (%d,%v)", i, k, v, ok, ov, ook)
			}
		default:
			v, ok := r.Remove(th, k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Remove(%d)=(%d,%v) oracle (%d,%v)", i, k, v, ok, ov, ook)
			}
			delete(oracle, k)
		}
		if i%250 == 0 {
			if err := r.CheckInvariants(th); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if r.Len(th) != len(oracle) {
				t.Fatalf("step %d: Len=%d oracle=%d", i, r.Len(th), len(oracle))
			}
		}
	}
	if err := r.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeAscendingDescendingInserts(t *testing.T) {
	th := testThread(t)
	r := NewRBTree(th)
	for k := int64(0); k < 200; k++ {
		r.Insert(th, k, uint64(k))
	}
	if err := r.CheckInvariants(th); err != nil {
		t.Fatalf("ascending: %v", err)
	}
	for k := int64(400); k > 200; k-- {
		r.Insert(th, k, uint64(k))
	}
	if err := r.CheckInvariants(th); err != nil {
		t.Fatalf("descending: %v", err)
	}
	if r.Len(th) != 400 {
		t.Errorf("Len = %d, want 400", r.Len(th))
	}
}

func TestRBTreeConcurrentMixed(t *testing.T) {
	e := htm.New(platform.New(platform.IntelCore), htm.Config{
		Threads: 4, SpaceSize: 64 << 20, CostScale: 0,
		DisablePrefetch: true, DisableCacheFetchAborts: true,
	})
	r := NewRBTree(e.Thread(0))
	var inserted [4][]int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			rng := th.Rand()
			for j := 0; j < 400; j++ {
				k := int64(tid)*100000 + int64(rng.Intn(5000))
				var ins bool
				for {
					ok, _ := th.TryTx(htm.TxNormal, func() { ins = r.Insert(th, k, uint64(k)) })
					if ok {
						break
					}
				}
				if ins {
					inserted[tid] = append(inserted[tid], k)
				}
			}
		}(i)
	}
	wg.Wait()
	th := e.Thread(0)
	if err := r.CheckInvariants(th); err != nil {
		t.Fatalf("invariants after concurrent inserts: %v", err)
	}
	total := 0
	for tid := range inserted {
		total += len(inserted[tid])
		for _, k := range inserted[tid] {
			if !r.Contains(th, k) {
				t.Fatalf("lost key %d", k)
			}
		}
	}
	if r.Len(th) != total {
		t.Fatalf("Len=%d, want %d", r.Len(th), total)
	}
}

// ---------------------------------------------------------------------------
// Queue

func TestQueueFIFOAndGrowth(t *testing.T) {
	th := testThread(t)
	q := NewQueue(th, 2)
	if !q.Empty(th) {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(0); i < 100; i++ {
		q.Push(th, i)
	}
	if q.Len(th) != 100 {
		t.Fatalf("Len = %d, want 100", q.Len(th))
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Pop(th)
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(th); ok {
		t.Error("Pop of empty queue succeeded")
	}
}

func TestQueueInterleavedOracle(t *testing.T) {
	th := testThread(t)
	q := NewQueue(th, 4)
	var oracle []uint64
	rng := prng.New(5)
	for i := 0; i < 4000; i++ {
		if rng.Intn(2) == 0 || len(oracle) == 0 {
			v := rng.Uint64()
			q.Push(th, v)
			oracle = append(oracle, v)
		} else {
			v, ok := q.Pop(th)
			if !ok || v != oracle[0] {
				t.Fatalf("step %d: Pop=(%d,%v) oracle head %d", i, v, ok, oracle[0])
			}
			oracle = oracle[1:]
		}
		if q.Len(th) != len(oracle) {
			t.Fatalf("step %d: Len=%d oracle=%d", i, q.Len(th), len(oracle))
		}
	}
}

// ---------------------------------------------------------------------------
// Heap

type intHeap []int64

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] > h[j] } // max-heap
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestHeapAgainstContainerHeap(t *testing.T) {
	th := testThread(t)
	h := NewHeap(th, 2)
	var oracle intHeap
	heap.Init(&oracle)
	rng := prng.New(77)
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 || oracle.Len() == 0 {
			p := int64(rng.Intn(10000))
			h.Push(th, p, uint64(p))
			heap.Push(&oracle, p)
		} else {
			p, v, ok := h.Pop(th)
			want := heap.Pop(&oracle).(int64)
			if !ok || p != want || v != uint64(want) {
				t.Fatalf("step %d: Pop=(%d,%d,%v) want prio %d", i, p, v, ok, want)
			}
		}
		if h.Len(th) != oracle.Len() {
			t.Fatalf("step %d: Len=%d oracle=%d", i, h.Len(th), oracle.Len())
		}
	}
}

func TestHeapPopEmpty(t *testing.T) {
	th := testThread(t)
	h := NewHeap(th, 4)
	if _, _, ok := h.Pop(th); ok {
		t.Error("Pop of empty heap succeeded")
	}
}

// ---------------------------------------------------------------------------
// Vector

func TestVectorBasic(t *testing.T) {
	th := testThread(t)
	v := NewVector(th, 1)
	for i := uint64(0); i < 50; i++ {
		v.PushBack(th, i*3)
	}
	if v.Len(th) != 50 {
		t.Fatalf("Len = %d", v.Len(th))
	}
	for i := 0; i < 50; i++ {
		if got := v.At(th, i); got != uint64(i*3) {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	v.SetAt(th, 10, 999)
	if v.At(th, 10) != 999 {
		t.Error("SetAt failed")
	}
	if x, ok := v.PopBack(th); !ok || x != 49*3 {
		t.Errorf("PopBack = %d,%v", x, ok)
	}
	v.Clear(th)
	if v.Len(th) != 0 {
		t.Error("Clear failed")
	}
	if _, ok := v.PopBack(th); ok {
		t.Error("PopBack of empty succeeded")
	}
}

func TestVectorAtOutOfRangePanics(t *testing.T) {
	th := testThread(t)
	v := NewVector(th, 1)
	v.PushBack(th, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	v.At(th, 1)
}

// ---------------------------------------------------------------------------
// Bitmap

func TestBitmapBasic(t *testing.T) {
	th := testThread(t)
	b := NewBitmap(th, 200)
	if b.Bits(th) != 200 {
		t.Fatalf("Bits = %d", b.Bits(th))
	}
	if !b.Set(th, 63) || !b.Set(th, 64) || !b.Set(th, 199) {
		t.Fatal("Set of clear bits failed")
	}
	if b.Set(th, 63) {
		t.Error("Set of set bit returned true")
	}
	if !b.Test(th, 63) || !b.Test(th, 64) || !b.Test(th, 199) || b.Test(th, 0) {
		t.Error("Test mismatch")
	}
	if b.Count(th) != 3 {
		t.Errorf("Count = %d", b.Count(th))
	}
	b.Clear(th, 64)
	if b.Test(th, 64) {
		t.Error("Clear failed")
	}
	b.ClearAll(th)
	if b.Count(th) != 0 {
		t.Error("ClearAll failed")
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	th := testThread(t)
	b := NewBitmap(th, 10)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range bitmap access did not panic")
		}
	}()
	b.Set(th, 10)
}

// TestStructuresAbortSafety verifies that a transaction that mutates a
// structure and then aborts leaves the structure exactly as before — the
// core isolation property everything in stamp/ relies on.
func TestStructuresAbortSafety(t *testing.T) {
	th := testThread(t)
	r := NewRBTree(th)
	h := NewHashtable(th, 8)
	l := NewList(th)
	q := NewQueue(th, 4)
	for i := int64(0); i < 20; i++ {
		r.Insert(th, i, uint64(i))
		h.Insert(th, i, uint64(i))
		l.Insert(th, i, uint64(i))
		q.Push(th, uint64(i))
	}
	ok, _ := th.TryTx(htm.TxNormal, func() {
		r.Remove(th, 5)
		r.Insert(th, 100, 1)
		h.Remove(th, 5)
		l.Remove(th, 5)
		q.Pop(th)
		q.Push(th, 999)
		th.Abort()
	})
	if ok {
		t.Fatal("tx with explicit abort committed")
	}
	if r.Len(th) != 20 || !r.Contains(th, 5) || r.Contains(th, 100) {
		t.Error("rbtree mutated by aborted tx")
	}
	if err := r.CheckInvariants(th); err != nil {
		t.Errorf("rbtree invariants after abort: %v", err)
	}
	if h.Len(th) != 20 || !h.Contains(th, 5) {
		t.Error("hashtable mutated by aborted tx")
	}
	if l.Len(th) != 20 || !l.Contains(th, 5) {
		t.Error("list mutated by aborted tx")
	}
	if q.Len(th) != 20 {
		t.Error("queue mutated by aborted tx")
	}
	if v, _ := q.Pop(th); v != 0 {
		t.Errorf("queue head = %d, want 0", v)
	}
}
