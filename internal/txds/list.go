package txds

import (
	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
)

// List is a sorted singly-linked list with unique int64 keys — STAMP's
// lib/list.c. The original intruder uses it for ordered sets (one of the
// data-structure choices the paper's Section 4 identifies as TM-unfriendly:
// long traversals put every visited node in the read set).
//
// Layout: header node [next]; node [next][key][value].
type List struct{ base mem.Addr }

const (
	listNext      = 0
	listKey       = 1
	listVal       = 2
	listNodeWords = 3
)

// NewList allocates an empty list.
func NewList(t *htm.Thread) List {
	// Not labelled: workloads (intruder, vacation) create lists inside
	// transactions, and the region registry is setup-time only.
	h := t.Alloc(w) // header holds only next
	t.Store64(h, mem.Nil)
	return List{base: h}
}

// Handle returns the list's base address (for embedding in other
// structures); ListAt reverses it.
func (l List) Handle() mem.Addr { return l.base }

// ListAt reinterprets a stored handle as a List.
func ListAt(a mem.Addr) List { return List{base: a} }

// findPrev returns the node after which key belongs: the last node whose key
// is < key (or the header).
func (l List) findPrev(t *htm.Thread, key int64) mem.Addr {
	prev := l.base
	cur := t.LoadPtr(fieldAddr(prev, listNext))
	for cur != mem.Nil {
		k := int64(loadField(t, cur, listKey))
		if k >= key {
			break
		}
		prev = cur
		cur = t.LoadPtr(fieldAddr(cur, listNext))
	}
	return prev
}

// Insert adds key→val; it returns false (and stores nothing) if the key is
// already present.
func (l List) Insert(t *htm.Thread, key int64, val uint64) bool {
	prev := l.findPrev(t, key)
	next := t.LoadPtr(fieldAddr(prev, listNext))
	if next != mem.Nil && int64(loadField(t, next, listKey)) == key {
		return false
	}
	n := t.Alloc(listNodeWords * w)
	storeField(t, n, listKey, uint64(key))
	storeField(t, n, listVal, val)
	storeField(t, n, listNext, next)
	storeField(t, prev, listNext, n)
	return true
}

// Get returns the value stored under key.
func (l List) Get(t *htm.Thread, key int64) (uint64, bool) {
	prev := l.findPrev(t, key)
	cur := t.LoadPtr(fieldAddr(prev, listNext))
	if cur != mem.Nil && int64(loadField(t, cur, listKey)) == key {
		return loadField(t, cur, listVal), true
	}
	return 0, false
}

// Contains reports whether key is present.
func (l List) Contains(t *htm.Thread, key int64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// Remove deletes key, returning its value and whether it was present. The
// node is freed (deferred to commit inside a transaction).
func (l List) Remove(t *htm.Thread, key int64) (uint64, bool) {
	prev := l.findPrev(t, key)
	cur := t.LoadPtr(fieldAddr(prev, listNext))
	if cur == mem.Nil || int64(loadField(t, cur, listKey)) != key {
		return 0, false
	}
	v := loadField(t, cur, listVal)
	storeField(t, prev, listNext, loadField(t, cur, listNext))
	t.Free(cur)
	return v, true
}

// RemoveFirst pops the smallest key, if any.
func (l List) RemoveFirst(t *htm.Thread) (key int64, val uint64, ok bool) {
	first := t.LoadPtr(fieldAddr(l.base, listNext))
	if first == mem.Nil {
		return 0, 0, false
	}
	key = int64(loadField(t, first, listKey))
	val = loadField(t, first, listVal)
	storeField(t, l.base, listNext, loadField(t, first, listNext))
	t.Free(first)
	return key, val, true
}

// Len walks the list and returns its length.
func (l List) Len(t *htm.Thread) int {
	n := 0
	for cur := t.LoadPtr(fieldAddr(l.base, listNext)); cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
		n++
	}
	return n
}

// Each calls fn for every (key, value) in ascending key order; fn returning
// false stops the walk.
func (l List) Each(t *htm.Thread, fn func(key int64, val uint64) bool) {
	for cur := t.LoadPtr(fieldAddr(l.base, listNext)); cur != mem.Nil; cur = t.LoadPtr(fieldAddr(cur, listNext)) {
		if !fn(int64(loadField(t, cur, listKey)), loadField(t, cur, listVal)) {
			return
		}
	}
}

// Clear removes (and frees) all nodes.
func (l List) Clear(t *htm.Thread) {
	cur := t.LoadPtr(fieldAddr(l.base, listNext))
	for cur != mem.Nil {
		next := t.LoadPtr(fieldAddr(cur, listNext))
		t.Free(cur)
		cur = next
	}
	t.Store64(fieldAddr(l.base, listNext), mem.Nil)
}
