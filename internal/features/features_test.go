package features

import (
	"sync"
	"testing"

	"htmcmp/internal/htm"
	"htmcmp/internal/platform"
)

func clqEngine(t *testing.T, threads int) *htm.Engine {
	t.Helper()
	return htm.New(platform.New(platform.ZEC12), htm.Config{
		Threads: threads, SpaceSize: 16 << 20, Seed: 9, CostScale: 0,
		DisableCacheFetchAborts: true,
	})
}

func TestCLQLockFreeFIFO(t *testing.T) {
	e := clqEngine(t, 1)
	th := e.Thread(0)
	q := NewCLQ(th)
	for i := uint64(1); i <= 50; i++ {
		q.EnqueueLockFree(th, i)
	}
	if n := q.Len(th); n != 50 {
		t.Fatalf("Len = %d", n)
	}
	for i := uint64(1); i <= 50; i++ {
		v, ok := q.DequeueLockFree(th)
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.DequeueLockFree(th); ok {
		t.Error("dequeue of empty queue succeeded")
	}
}

func TestCLQModesPreserveElements(t *testing.T) {
	// Mixed-mode concurrent use: total enqueued == dequeued + remaining.
	e := clqEngine(t, 4)
	q := NewCLQ(e.Thread(0))
	const perThread = 300
	var deq int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := e.Thread(tid)
			local := int64(0)
			for i := 0; i < perThread; i++ {
				switch tid % 4 {
				case 0:
					q.EnqueueLockFree(th, 1)
					if _, ok := q.DequeueLockFree(th); ok {
						local++
					}
				case 1:
					q.EnqueueTM(th, 1, 0)
					if _, ok := q.DequeueTM(th, 0); ok {
						local++
					}
				case 2:
					q.EnqueueTM(th, 1, 8)
					if _, ok := q.DequeueTM(th, 8); ok {
						local++
					}
				default:
					q.EnqueueConstrained(th, 1)
					if _, ok := q.DequeueConstrained(th); ok {
						local++
					}
				}
			}
			mu.Lock()
			deq += local
			mu.Unlock()
		}(tid)
	}
	wg.Wait()
	want := int64(4*perThread) - deq
	if got := int64(q.Len(e.Thread(0))); got != want {
		t.Fatalf("queue length %d, want %d (enq %d deq %d)", got, want, 4*perThread, deq)
	}
}

func TestRunCLQShape(t *testing.T) {
	if testing.Short() {
		t.Skip("CLQ experiment in -short mode")
	}
	results, err := RunCLQ(CLQOptions{OpsPerThread: 400, Threads: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	rel := map[CLQMode]map[int]float64{}
	for _, r := range results {
		if rel[r.Mode] == nil {
			rel[r.Mode] = map[int]float64{}
		}
		rel[r.Mode][r.Threads] = r.Relative
		if r.Seconds <= 0 {
			t.Errorf("%v/%d: non-positive duration", r.Mode, r.Threads)
		}
	}
	// Single-threaded transactions beat the CAS path (the Figure 6 path-
	// length effect).
	if rel[CLQOptRetryTM][1] >= 1.0 {
		t.Errorf("OptRetryTM at 1 thread = %.2f, want < 1 (path-length win)", rel[CLQOptRetryTM][1])
	}
	if rel[CLQConstrainedTM][1] >= 1.0 {
		t.Errorf("ConstrainedTM at 1 thread = %.2f, want < 1", rel[CLQConstrainedTM][1])
	}
}

func TestTLSSequentialValidates(t *testing.T) {
	for _, k := range []TLSKernel{KernelMilc, KernelSphinx3} {
		if _, err := runTLSSequential(TLSOptions{Iterations: 256, Seed: 3}.withDefaults(), k); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestTLSParallelOrderingBothModes(t *testing.T) {
	for _, k := range []TLSKernel{KernelMilc, KernelSphinx3} {
		for _, sr := range []bool{false, true} {
			_, _, err := runTLSParallel(TLSOptions{Iterations: 256, Seed: 3}.withDefaults(), k, 4, sr)
			if err != nil {
				t.Errorf("%v sr=%v: %v", k, sr, err)
			}
		}
	}
}

// TestTLSSuspendResumeReducesAborts is the Figure 9 headline claim.
func TestTLSSuspendResumeReducesAborts(t *testing.T) {
	opts := TLSOptions{Iterations: 512, Seed: 5}.withDefaults()
	_, without, err := runTLSParallel(opts, KernelSphinx3, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	_, with, err := runTLSParallel(opts, KernelSphinx3, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Errorf("suspend/resume abort ratio %.1f%% not below %.1f%%", with, without)
	}
	if with > 5 {
		t.Errorf("sphinx3 with suspend/resume aborts %.1f%%, want ~0", with)
	}
	if without < 20 {
		t.Errorf("sphinx3 without suspend/resume aborts %.1f%%, want large", without)
	}
}

func TestRunTLSSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("TLS experiment in -short mode")
	}
	results, err := RunTLS(TLSOptions{Iterations: 512, Threads: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	get := func(k TLSKernel, threads int, sr bool) TLSResult {
		for _, r := range results {
			if r.Kernel == k && r.Threads == threads && r.SuspendResume == sr {
				return r
			}
		}
		t.Fatalf("missing result %v/%d/%v", k, threads, sr)
		return TLSResult{}
	}
	for _, k := range []TLSKernel{KernelMilc, KernelSphinx3} {
		with := get(k, 4, true)
		without := get(k, 4, false)
		if with.Speedup <= without.Speedup {
			t.Errorf("%v: with s/r %.2f not faster than without %.2f", k, with.Speedup, without.Speedup)
		}
	}
}
