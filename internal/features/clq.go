// Package features implements the processor-specific feature evaluations of
// the paper's Section 6: zEC12 constrained transactions on a concurrent
// linked queue (Figure 6), and POWER8 thread-level speculation with
// suspend/resume (Figure 9). Intel HLE (Figure 7) lives in internal/harness
// since it reuses the STAMP machinery.
package features

import (
	"fmt"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/platform"
)

// CLQ is a Michael–Scott concurrent linked queue in simulated memory — the
// analogue of Java's ConcurrentLinkedQueue that Section 6.1 uses to evaluate
// zEC12 constrained transactions. The lock-free CAS paths are the baseline;
// the transactional paths replace the multi-CAS dance with a short
// transaction, falling back to the lock-free code exactly as the paper
// describes ("Otherwise, it falls back to the original lock-free code").
//
// Node layout: [value][next]; the queue header holds [head][tail] on
// separate lines to avoid needless head/tail false sharing.
type CLQ struct {
	headAddr mem.Addr
	tailAddr mem.Addr
}

const (
	nodeVal  = 0
	nodeNext = 8
)

// NewCLQ allocates an empty queue (one dummy node).
func NewCLQ(t *htm.Thread) *CLQ {
	line := t.Engine().LineSize()
	q := &CLQ{
		headAddr: t.AllocAligned(line, line), // full lines: no false sharing
		tailAddr: t.AllocAligned(line, line),
	}
	dummy := t.Alloc(16)
	t.Store64(q.headAddr, dummy)
	t.Store64(q.tailAddr, dummy)
	return q
}

func newNode(t *htm.Thread, v uint64) mem.Addr {
	n := t.Alloc(16)
	t.Store64(n+nodeVal, v)
	t.Store64(n+nodeNext, mem.Nil)
	return n
}

// EnqueueLockFree appends v with the Michael–Scott CAS protocol.
func (q *CLQ) EnqueueLockFree(t *htm.Thread, v uint64) {
	n := newNode(t, v)
	for {
		tail := t.Load64(q.tailAddr)
		next := t.Load64(tail + nodeNext)
		if tail != t.Load64(q.tailAddr) {
			continue
		}
		if next == mem.Nil {
			if t.CompareAndSwap64(tail+nodeNext, mem.Nil, n) {
				t.CompareAndSwap64(q.tailAddr, tail, n)
				return
			}
		} else {
			t.CompareAndSwap64(q.tailAddr, tail, next)
		}
	}
}

// DequeueLockFree removes the oldest value with the Michael–Scott protocol.
func (q *CLQ) DequeueLockFree(t *htm.Thread) (uint64, bool) {
	for {
		head := t.Load64(q.headAddr)
		tail := t.Load64(q.tailAddr)
		next := t.Load64(head + nodeNext)
		if head != t.Load64(q.headAddr) {
			continue
		}
		if head == tail {
			if next == mem.Nil {
				return 0, false
			}
			t.CompareAndSwap64(q.tailAddr, tail, next)
			continue
		}
		v := t.Load64(next + nodeVal)
		if t.CompareAndSwap64(q.headAddr, head, next) {
			return v, true
		}
	}
}

// enqueueTxBody is the transactional enqueue fast path: the paper's
// "enqueuing operation in a transaction adds a new element to the last
// element (tail) if the next pointer of the last element is null". It
// reports whether the fast path applied.
func (q *CLQ) enqueueTxBody(t *htm.Thread, n mem.Addr) bool {
	tail := t.Load64(q.tailAddr)
	if t.Load64(tail+nodeNext) != mem.Nil {
		return false // tail lagging: revert to lock-free code
	}
	t.Store64(tail+nodeNext, n)
	t.Store64(q.tailAddr, n)
	return true
}

// dequeueTxBody is the transactional dequeue fast path.
func (q *CLQ) dequeueTxBody(t *htm.Thread) (v uint64, ok, fast bool) {
	head := t.Load64(q.headAddr)
	next := t.Load64(head + nodeNext)
	if next == mem.Nil {
		return 0, false, true // empty
	}
	v = t.Load64(next + nodeVal)
	t.Store64(q.headAddr, next)
	return v, true, true
}

// EnqueueTM appends v using a normal transaction with up to retries
// attempts before reverting to the lock-free code (NoRetryTM: retries = 0;
// OptRetryTM: tuned retries).
func (q *CLQ) EnqueueTM(t *htm.Thread, v uint64, retries int) {
	n := newNode(t, v)
	for attempt := 0; attempt <= retries; attempt++ {
		fast := false
		ok, _ := t.TryTx(htm.TxNormal, func() {
			fast = q.enqueueTxBody(t, n)
			if !fast {
				t.Abort()
			}
		})
		if ok && fast {
			return
		}
	}
	// Fall back to the lock-free path, reusing the node.
	for {
		tail := t.Load64(q.tailAddr)
		next := t.Load64(tail + nodeNext)
		if tail != t.Load64(q.tailAddr) {
			continue
		}
		if next == mem.Nil {
			if t.CompareAndSwap64(tail+nodeNext, mem.Nil, n) {
				t.CompareAndSwap64(q.tailAddr, tail, n)
				return
			}
		} else {
			t.CompareAndSwap64(q.tailAddr, tail, next)
		}
	}
}

// DequeueTM removes the oldest value via transaction, falling back to the
// lock-free path after retries failed attempts.
func (q *CLQ) DequeueTM(t *htm.Thread, retries int) (uint64, bool) {
	for attempt := 0; attempt <= retries; attempt++ {
		var v uint64
		var okv, fast bool
		committed, _ := t.TryTx(htm.TxNormal, func() {
			v, okv, fast = q.dequeueTxBody(t)
		})
		if committed && fast {
			return v, okv
		}
	}
	return q.DequeueLockFree(t)
}

// EnqueueConstrained appends v with a zEC12 constrained transaction: no
// retry logic, no fallback — the hardware guarantees completion.
func (q *CLQ) EnqueueConstrained(t *htm.Thread, v uint64) {
	n := newNode(t, v)
	for {
		fast := false
		t.RunConstrained(func() {
			fast = q.enqueueTxBody(t, n)
		})
		if fast {
			return
		}
		// Tail was lagging (cannot happen with constrained-only use, but
		// tolerate mixed use): help via lock-free step.
		tail := t.Load64(q.tailAddr)
		next := t.Load64(tail + nodeNext)
		if next != mem.Nil {
			t.CompareAndSwap64(q.tailAddr, tail, next)
		}
	}
}

// DequeueConstrained removes the oldest value with a constrained
// transaction.
func (q *CLQ) DequeueConstrained(t *htm.Thread) (uint64, bool) {
	var v uint64
	var ok bool
	t.RunConstrained(func() {
		v, ok, _ = q.dequeueTxBody(t)
	})
	return v, ok
}

// Len walks the queue (single-threaded use only).
func (q *CLQ) Len(t *htm.Thread) int {
	n := 0
	for cur := t.Load64(t.Load64(q.headAddr) + nodeNext); cur != mem.Nil; cur = t.Load64(cur + nodeNext) {
		n++
	}
	return n
}

// CLQMode selects the Figure 6 execution mode.
type CLQMode int

// The four Figure 6 series.
const (
	CLQLockFree CLQMode = iota
	CLQNoRetryTM
	CLQOptRetryTM
	CLQConstrainedTM
)

// String returns the figure label.
func (m CLQMode) String() string {
	switch m {
	case CLQLockFree:
		return "LockFree"
	case CLQNoRetryTM:
		return "NoRetryTM"
	case CLQOptRetryTM:
		return "OptRetryTM"
	case CLQConstrainedTM:
		return "ConstrainedTM"
	}
	return "?"
}

// CLQResult is one measured Figure 6 point.
type CLQResult struct {
	Mode     CLQMode
	Threads  int
	Seconds  float64
	Relative float64 // vs the lock-free baseline at the same thread count
}

// CLQOptions configure the Figure 6 experiment.
type CLQOptions struct {
	OpsPerThread int
	Threads      []int
	OptRetries   int // OptRetryTM's tuned retry count
	CostScale    float64
	Seed         uint64
}

func (o CLQOptions) withDefaults() CLQOptions {
	if o.OpsPerThread <= 0 {
		o.OpsPerThread = 3000
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 16}
	}
	if o.OptRetries <= 0 {
		o.OptRetries = 8
	}
	if o.CostScale == 0 {
		o.CostScale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// RunCLQ runs the Figure 6 experiment on the zEC12 model: each thread
// alternately enqueues to and dequeues from a single queue; execution time
// is reported relative to the lock-free baseline at the same thread count.
func RunCLQ(opts CLQOptions) ([]CLQResult, error) {
	opts = opts.withDefaults()
	var out []CLQResult
	for _, threads := range opts.Threads {
		var base float64
		for _, mode := range []CLQMode{CLQLockFree, CLQNoRetryTM, CLQOptRetryTM, CLQConstrainedTM} {
			var secs float64
			if mode == CLQOptRetryTM {
				// "Opt" is the paper's tuned retry count: search a small
				// grid per thread count and keep the best (Section 6.1:
				// "we tuned the retry count to obtain the maximum
				// performance").
				best := -1.0
				for _, retries := range []int{1, 2, 4, 8, 16} {
					o := opts
					o.OptRetries = retries
					s, err := runCLQOnce(o, mode, threads)
					if err != nil {
						return nil, err
					}
					if best < 0 || s < best {
						best = s
					}
				}
				secs = best
			} else {
				var err error
				secs, err = runCLQOnce(opts, mode, threads)
				if err != nil {
					return nil, err
				}
			}
			if mode == CLQLockFree {
				base = secs
			}
			out = append(out, CLQResult{
				Mode: mode, Threads: threads, Seconds: secs, Relative: secs / base,
			})
		}
	}
	return out, nil
}

func runCLQOnce(opts CLQOptions, mode CLQMode, threads int) (float64, error) {
	e := htm.New(platform.New(platform.ZEC12), htm.Config{
		Threads:   threads,
		SpaceSize: 64 << 20,
		Seed:      opts.Seed,
		CostScale: opts.CostScale,
		Virtual:   true,
	})
	q := NewCLQ(e.Thread(0))
	// Pre-fill so dequeues find work.
	for i := 0; i < threads*4; i++ {
		q.EnqueueLockFree(e.Thread(0), uint64(i))
	}
	var enqTotal, deqTotal int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	e.ResetClocks()
	for tid := 0; tid < threads; tid++ {
		e.Thread(tid).Register()
	}
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			t := e.Thread(tid)
			t.BeginWork()
			defer t.ExitWork()
			var enq, deq int64
			for i := 0; i < opts.OpsPerThread; i++ {
				v := uint64(tid<<32 | i)
				switch mode {
				case CLQLockFree:
					q.EnqueueLockFree(t, v)
					if _, ok := q.DequeueLockFree(t); ok {
						deq++
					}
				case CLQNoRetryTM:
					q.EnqueueTM(t, v, 0)
					if _, ok := q.DequeueTM(t, 0); ok {
						deq++
					}
				case CLQOptRetryTM:
					q.EnqueueTM(t, v, opts.OptRetries)
					if _, ok := q.DequeueTM(t, opts.OptRetries); ok {
						deq++
					}
				case CLQConstrainedTM:
					q.EnqueueConstrained(t, v)
					if _, ok := q.DequeueConstrained(t); ok {
						deq++
					}
				}
				enq++
			}
			mu.Lock()
			enqTotal += enq
			deqTotal += deq
			mu.Unlock()
		}(tid)
	}
	wg.Wait()
	secs := float64(e.MaxClock())
	// Consistency: remaining length == prefill + enqueues - dequeues.
	want := threads*4 + int(enqTotal) - int(deqTotal)
	if got := q.Len(e.Thread(0)); got != want {
		return 0, fmt.Errorf("clq %v/%d threads: queue length %d, want %d", mode, threads, got, want)
	}
	return secs, nil
}
