package features

import (
	"fmt"
	"sync"

	"htmcmp/internal/htm"
	"htmcmp/internal/mem"
	"htmcmp/internal/platform"
)

// Thread-level speculation on POWER8 (Section 6.3, Figures 8 and 9). Loop
// iterations run speculatively in transactions but must commit in program
// order, coordinated through a shared NextIterToCommit word:
//
//   - Without suspend/resume, the transaction reads NextIterToCommit at its
//     end and aborts if it is not its turn (Figure 8's dark-grey code) — the
//     ordering variable sits in every transaction's read set, so the
//     predecessor's commit-order store conflicts with every speculative
//     successor and abort ratios are huge (69–83% in the paper).
//   - With suspend/resume, the transaction suspends, spin-waits on
//     NextIterToCommit outside transactional tracking, resumes and commits
//     (Figure 8's light-grey code); only genuine data conflicts remain.
//
// Two loop kernels stand in for the paper's SPEC CPU2006 loops (see
// DESIGN.md): "milc" iterations write 72-byte blocks that straddle 128-byte
// conflict-detection lines, so neighbouring iterations share lines and some
// false conflicts survive suspend/resume (the paper's residual 10% abort
// ratio on 433.milc); "sphinx3" iterations write line-aligned private slots
// and become conflict-free with suspend/resume (0.1% in the paper).

// TLSKernel selects the loop kernel.
type TLSKernel int

// The two Figure 9 kernels.
const (
	KernelMilc TLSKernel = iota
	KernelSphinx3
)

// String returns the SPEC benchmark name the kernel stands in for.
func (k TLSKernel) String() string {
	if k == KernelMilc {
		return "433.milc"
	}
	return "482.sphinx3"
}

// TLSResult is one Figure 9 point.
type TLSResult struct {
	Kernel        TLSKernel
	Threads       int
	SuspendResume bool
	Speedup       float64
	AbortRatio    float64
}

// TLSOptions configure the Figure 9 experiment.
type TLSOptions struct {
	Iterations int
	Threads    []int
	CostScale  float64
	Seed       uint64
}

func (o TLSOptions) withDefaults() TLSOptions {
	if o.Iterations <= 0 {
		o.Iterations = 1536
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 3, 4, 5, 6}
	}
	if o.CostScale == 0 {
		o.CostScale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// tlsState is one kernel instance in simulated memory.
type tlsState struct {
	kernel    TLSKernel
	iters     int
	blockSize int // bytes written per iteration
	in        mem.Addr
	out       mem.Addr
	links     mem.Addr // milc: occasionally shared gauge-link cells
	next      mem.Addr // NextIterToCommit
}

func newTLSState(t *htm.Thread, kernel TLSKernel, iters int) *tlsState {
	s := &tlsState{kernel: kernel, iters: iters}
	line := t.Engine().LineSize()
	s.blockSize = line
	s.out = t.AllocAligned(iters*s.blockSize, line)
	if kernel == KernelMilc {
		// milc iterations occasionally update gauge-link cells shared by
		// groups of eight iterations: the false conflicts that survive
		// suspend/resume in the paper (abort ratio 83% -> 10%).
		s.links = t.AllocAligned((iters/8+1)*line, line)
	}
	s.in = t.Alloc(iters * 8)
	for i := 0; i < iters; i++ {
		t.Store64(s.in+uint64(i*8), uint64(i)*0x9e3779b97f4a7c15+1)
	}
	s.next = t.AllocAligned(line, line) // a full line: only true ordering conflicts
	t.Store64(s.next, 0)
	return s
}

// expected computes iteration i's first output word (the validation oracle).
func (s *tlsState) expected(i int) uint64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 1
	for k := 0; k < 8; k++ {
		x ^= x << 13
		x ^= x >> 7
		x *= 0xc4ceb9fe1a85ec53
	}
	return x
}

// body runs iteration i's loop body: read the input word, compute, write the
// iteration's output block.
func (s *tlsState) body(t *htm.Thread, i int) {
	t.Work(60) // the iteration's arithmetic (su3 multiply / frame scoring)
	x := t.LoadRO64(s.in + uint64(i*8))
	for k := 0; k < 8; k++ {
		x ^= x << 13
		x ^= x >> 7
		x *= 0xc4ceb9fe1a85ec53
	}
	base := s.out + uint64(i*s.blockSize)
	for wd := 0; wd < 9; wd++ { // a 3x3 complex block
		t.Store64(base+uint64(wd*8), x+uint64(wd))
	}
	if s.kernel == KernelMilc && x%5 == 0 {
		// Shared gauge-link update: a true cross-iteration conflict.
		a := s.links + uint64(i/8)*uint64(s.blockSize)
		t.Store64(a, t.Load64(a)+x)
	}
}

// RunTLS reproduces Figure 9 on the POWER8 model: speed-up of TLS execution
// over sequential, with and without suspend/resume, for each thread count.
func RunTLS(opts TLSOptions) ([]TLSResult, error) {
	opts = opts.withDefaults()
	var out []TLSResult
	for _, kernel := range []TLSKernel{KernelMilc, KernelSphinx3} {
		seqSecs, err := runTLSSequential(opts, kernel)
		if err != nil {
			return nil, err
		}
		for _, sr := range []bool{false, true} {
			for _, threads := range opts.Threads {
				secs, abortRatio, err := runTLSParallel(opts, kernel, threads, sr)
				if err != nil {
					return nil, err
				}
				out = append(out, TLSResult{
					Kernel:        kernel,
					Threads:       threads,
					SuspendResume: sr,
					Speedup:       seqSecs / secs,
					AbortRatio:    abortRatio,
				})
			}
		}
	}
	return out, nil
}

func runTLSSequential(opts TLSOptions, kernel TLSKernel) (float64, error) {
	e := htm.New(platform.New(platform.POWER8), htm.Config{
		Threads: 1, SpaceSize: 32 << 20, Seed: opts.Seed, CostScale: opts.CostScale,
		Virtual: true,
	})
	t := e.Thread(0)
	s := newTLSState(t, kernel, opts.Iterations)
	e.ResetClocks()
	t.Register()
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.BeginWork()
		defer t.ExitWork()
		for i := 0; i < s.iters; i++ {
			s.body(t, i)
		}
	}()
	<-done
	return float64(e.MaxClock()), s.validate(t)
}

func (s *tlsState) validate(t *htm.Thread) error {
	for i := 0; i < s.iters; i++ {
		got := t.Load64(s.out + uint64(i*s.blockSize))
		if got != s.expected(i) {
			return fmt.Errorf("tls %v: iteration %d output %#x, want %#x", s.kernel, i, got, s.expected(i))
		}
	}
	return nil
}

func runTLSParallel(opts TLSOptions, kernel TLSKernel, threads int, suspendResume bool) (float64, float64, error) {
	e := htm.New(platform.New(platform.POWER8), htm.Config{
		Threads: threads, SpaceSize: 32 << 20, Seed: opts.Seed, CostScale: opts.CostScale,
		Virtual: true,
	})
	s := newTLSState(e.Thread(0), kernel, opts.Iterations)
	e.ResetClocks()
	for tid := 0; tid < threads; tid++ {
		e.Thread(tid).Register()
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			t := e.Thread(tid)
			t.BeginWork()
			defer t.ExitWork()
			for i := tid; i < s.iters; i += threads {
				s.runIteration(t, i, suspendResume)
			}
		}(tid)
	}
	wg.Wait()
	secs := float64(e.MaxClock())
	if err := s.validate(e.Thread(0)); err != nil {
		return 0, 0, err
	}
	if got := e.Thread(0).Load64(s.next); got != uint64(s.iters) {
		return 0, 0, fmt.Errorf("tls: NextIterToCommit = %d, want %d", got, s.iters)
	}
	st := e.Stats()
	return secs, st.AbortRatio(), nil
}

// runIteration executes iteration i under ordered speculation, following
// Figure 8's transformation.
func (s *tlsState) runIteration(t *htm.Thread, i int, suspendResume bool) {
	for {
		// Non-speculative turn: when it is already this iteration's turn,
		// run in order without a transaction.
		if t.Load64(s.next) == uint64(i) {
			s.body(t, i)
			t.Store64(s.next, uint64(i)+1)
			return
		}
		ok, _ := t.TryTx(htm.TxNormal, func() {
			s.body(t, i)
			if suspendResume {
				// Light-grey path: wait for our turn outside tracking.
				t.Suspend()
				for t.Load64(s.next) != uint64(i) {
					t.Pause(40) // inter-core line transfer latency per poll
				}
				t.Resume()
			} else {
				// Dark-grey path: the ordering read joins the read set;
				// not our turn yet means abort and retry.
				if t.Load64(s.next) != uint64(i) {
					t.Abort()
				}
			}
		})
		if ok {
			// Commit order held: publish the next turn (after tend, as in
			// Figure 8(b)).
			t.Store64(s.next, uint64(i)+1)
			return
		}
	}
}
