package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func startTestTelemetry(t *testing.T, cfg TelemetryConfig) *Telemetry {
	t.Helper()
	tel, err := StartTelemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tel.Close() })
	return tel
}

func TestTelemetryHTTPEndpoints(t *testing.T) {
	tel := startTestTelemetry(t, TelemetryConfig{
		HTTPAddr:       "127.0.0.1:0",
		SampleInterval: 10 * time.Millisecond,
		Reasons:        3,
		Modes:          2,
		Workers:        2,
	})
	tel.Engine.Begins.Add(0, 10)
	tel.Engine.Commits.Add(0, 8)
	tel.Engine.Abort(0, 1)
	tel.WorkerTable().Begin(0, "cell-a")

	base := "http://" + tel.Addr()

	// /metrics is valid Prometheus text naming the engine counters.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if _, err := ValidatePromText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	names, err := PromMetricNames(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"htm_tx_begins_total", "htm_tx_commits_total", "htm_tx_aborts_by_reason_total"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("exposition missing %s: %v", want, names)
		}
	}

	// /api/state decodes and reflects the published values.
	resp, err = http.Get(base + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Counters["htm_tx_commits_total"] != 8 {
		t.Fatalf("state commits = %d", st.Counters["htm_tx_commits_total"])
	}
	if len(st.Workers) != 2 || st.Workers[0].State != "run" || st.Workers[0].Cell != "cell-a" {
		t.Fatalf("state workers = %+v", st.Workers)
	}

	// / serves the dashboard; other paths 404.
	resp, err = http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"htmcmp live telemetry", "EventSource", "/api/stream"} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if resp, err = http.Get(base + "/nope"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope status = %d", resp.StatusCode)
	}
}

func TestTelemetrySSEStream(t *testing.T) {
	tel := startTestTelemetry(t, TelemetryConfig{
		HTTPAddr:       "127.0.0.1:0",
		SampleInterval: 10 * time.Millisecond,
	})
	tel.Registry.Counter("x_total").Add(0, 3)

	resp, err := http.Get("http://" + tel.Addr() + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	frames := 0
	for sc.Scan() && frames < 2 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st State
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			t.Fatalf("bad SSE frame: %v in %q", err, line)
		}
		if st.Counters["x_total"] != 3 {
			t.Fatalf("frame counters = %v", st.Counters)
		}
		frames++
	}
	if frames < 2 {
		t.Fatalf("got %d SSE frames, want 2", frames)
	}
}

func TestFlightRecorderAbortStorm(t *testing.T) {
	dir := t.TempDir()
	tel := startTestTelemetry(t, TelemetryConfig{
		SampleInterval: time.Hour, // ticks driven by hand below
		Reasons:        3,
		Modes:          2,
		Flight: &FlightConfig{
			Dir:       dir,
			AbortRate: 10, // aborts/sec
		},
	})

	// Give the event log something to dump.
	tr := NewTracer(1, 16)
	tr.Ring(0).Record(mkBegin(0, 1))
	tr.Ring(0).Record(mkAbort(0, 9, 5, 1, 0, 7, NoThread))
	tel.Log.Drain("storm-cell", tr)

	// Two manual ticks one second apart with 100 aborts between them: a
	// 100/s abort rate, well over the 10/s threshold.
	t0 := time.Now()
	tel.Sampler.Tick(t0)
	for i := 0; i < 100; i++ {
		tel.Engine.Abort(0, 1)
	}
	tel.Sampler.Tick(t0.Add(time.Second))
	tel.Flight.Wait()

	dumps := tel.Flight.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "abort-storm" {
		t.Fatalf("dumps = %+v", dumps)
	}
	// The dump holds info.json, metrics.prom, state.json, series.json and a
	// validating rings file.
	for _, name := range []string{"info.json", "metrics.prom", "state.json", "series.json"} {
		if _, err := os.Stat(filepath.Join(dumps[0].Dir, name)); err != nil {
			t.Fatalf("dump missing %s: %v", name, err)
		}
	}
	rings, err := filepath.Glob(filepath.Join(dumps[0].Dir, "rings-*.jsonl"))
	if err != nil || len(rings) != 1 {
		t.Fatalf("rings files = %v (%v)", rings, err)
	}
	if n, err := ValidateFile(rings[0]); err != nil || n != 2 {
		t.Fatalf("rings validate: n=%d err=%v", n, err)
	}
	f, err := os.Open(filepath.Join(dumps[0].Dir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ValidatePromText(f); err != nil {
		t.Fatalf("dumped exposition invalid: %v", err)
	}
	if tel.Registry.Counter("flight_triggers_total").Value() != 1 {
		t.Fatal("flight_triggers_total not bumped")
	}

	// Cooldown: an immediate second storm is dropped.
	for i := 0; i < 100; i++ {
		tel.Engine.Abort(0, 1)
	}
	tel.Sampler.Tick(t0.Add(2 * time.Second))
	tel.Flight.Wait()
	if got := len(tel.Flight.Dumps()); got != 1 {
		t.Fatalf("dumps after cooldown window = %d, want 1", got)
	}
}

func TestFlightRecorderStalledCell(t *testing.T) {
	dir := t.TempDir()
	tel := startTestTelemetry(t, TelemetryConfig{
		SampleInterval: time.Hour,
		Workers:        2,
		Flight: &FlightConfig{
			Dir:          dir,
			StallTimeout: time.Millisecond,
		},
	})
	tel.WorkerTable().Begin(1, "slow-cell")
	time.Sleep(5 * time.Millisecond)
	tel.Sampler.Tick(time.Now())
	tel.Flight.Wait()
	dumps := tel.Flight.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "stalled-cell" {
		t.Fatalf("dumps = %+v", dumps)
	}
	if !strings.Contains(dumps[0].Detail, "slow-cell") {
		t.Fatalf("detail = %q", dumps[0].Detail)
	}
}

func TestWorkerTableTransitions(t *testing.T) {
	w := NewWorkerTable(2)
	w.Begin(0, "c1")
	w.NoteSteal(0)
	w.End(0)
	w.Begin(9, "out-of-range") // ignored
	rows := w.Snapshot()
	if rows[0].State != "idle" || rows[0].Done != 1 || rows[0].Steals != 1 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[1].Done != 0 || rows[1].State != "idle" {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	if got := w.Stalled(time.Now(), time.Minute); len(got) != 0 {
		t.Fatalf("Stalled = %+v", got)
	}
}
