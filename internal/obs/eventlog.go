package obs

import (
	"fmt"
	"path/filepath"
	"sync"
)

// EventLog is the flight recorder's rolling event store: a bounded queue of
// drained tracer segments, one per finished unit of work (a sweep cell, a
// benchmark repeat). Tracers are drained only once their producers are
// quiescent, so the log never races live rings; when the segment budget is
// exceeded the oldest segment is evicted, keeping memory bounded during
// long sweeps.
//
// Segments stay separate through to dump time: virtual clocks restart at
// zero for every cell, so concatenating segments into one stream would trip
// Validate's per-thread monotone-clock check. Each segment instead dumps to
// its own headered JSONL file.

// DefaultLogSegments is the default retained-segment budget.
const DefaultLogSegments = 64

// Segment is one drained, self-consistent event stream plus its ring
// provenance counters.
type Segment struct {
	Label    string // human identity, e.g. a cell key ("p8-fig2-4t#1")
	Events   []Event
	Recorded uint64 // ring events ever recorded while producing this segment
	Dropped  uint64 // ring events lost to overwrites
}

// Header returns the segment's JSONL stream header.
func (s *Segment) Header() StreamHeader {
	return StreamHeader{Events: uint64(len(s.Events)), Recorded: s.Recorded, Dropped: s.Dropped}
}

// EventLog accumulates recent segments. Safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	max     int
	segs    []Segment
	added   uint64
	evicted uint64
}

// NewEventLog returns a log retaining at most maxSegments recent segments
// (<= 0 selects DefaultLogSegments).
func NewEventLog(maxSegments int) *EventLog {
	if maxSegments <= 0 {
		maxSegments = DefaultLogSegments
	}
	return &EventLog{max: maxSegments}
}

// Add appends a segment, evicting the oldest if over budget.
func (l *EventLog) Add(seg Segment) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.segs = append(l.segs, seg)
	l.added++
	if len(l.segs) > l.max {
		over := len(l.segs) - l.max
		l.segs = append(l.segs[:0:0], l.segs[over:]...)
		l.evicted += uint64(over)
	}
}

// Drain captures a quiescent tracer's merged events as a new segment and
// resets the tracer for reuse.
func (l *EventLog) Drain(label string, t *Tracer) {
	seg := Segment{
		Label:    label,
		Events:   t.Events(),
		Recorded: t.Recorded(),
		Dropped:  t.Dropped(),
	}
	t.Reset()
	l.Add(seg)
}

// Len returns the number of retained segments.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Added and Evicted return lifetime segment counts.
func (l *EventLog) Added() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.added
}

func (l *EventLog) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Snapshot returns a shallow copy of the retained segments, oldest first
// (event slices are shared — segments are append-only once added).
func (l *EventLog) Snapshot() []Segment {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Segment(nil), l.segs...)
}

// DumpDir writes every retained segment as a headered JSONL file under dir
// (which must exist), named rings-<index>-<label>.jsonl, and returns the
// written paths.
func (l *EventLog) DumpDir(dir string) ([]string, error) {
	segs := l.Snapshot()
	paths := make([]string, 0, len(segs))
	for i, seg := range segs {
		name := fmt.Sprintf("rings-%03d-%s.jsonl", i, sanitizeLabel(seg.Label))
		path := filepath.Join(dir, name)
		if err := WriteJSONLStreamFile(path, seg.Header(), seg.Events); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// sanitizeLabel maps a segment label to a safe file-name fragment.
func sanitizeLabel(s string) string {
	if s == "" {
		return "seg"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			b[i] = '_'
		}
	}
	if len(b) > 80 {
		b = b[:80]
	}
	return string(b)
}
