package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONLStreamHeaderRoundTrip(t *testing.T) {
	tr := NewTracer(1, 8)
	tr.Ring(0).Record(mkBegin(0, 1))
	tr.Ring(0).Record(mkCommit(0, 9, 5))
	events := tr.Events()

	var buf bytes.Buffer
	if err := WriteJSONLStream(&buf, HeaderFor(tr), events); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Validate: %v\n%s", err, buf.String())
	}
	if n != 2 {
		t.Fatalf("events = %d, want 2", n)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	var h headerJSON
	if err := json.Unmarshal([]byte(first), &h); err != nil || h.Kind != "header" {
		t.Fatalf("first line %q not a header: %v", first, err)
	}
	if h.Events != 2 || h.Recorded != 2 || h.Dropped != 0 {
		t.Fatalf("header = %+v", h)
	}
}

func TestValidateHeaderConsistency(t *testing.T) {
	ev := `{"kind":"begin","thread":0,"vclock":1}` + "\n"
	cases := map[string]struct {
		in      string
		wantErr string
	}{
		"count mismatch": {
			`{"kind":"header","events":2,"recorded":2,"dropped":0}` + "\n" + ev,
			"declares 2 events but stream holds 1",
		},
		"internal inconsistency": {
			`{"kind":"header","events":3,"recorded":5,"dropped":1}` + "\n" + ev,
			"recorded 5 - dropped 1",
		},
		"dropped exceeds recorded": {
			`{"kind":"header","events":0,"recorded":1,"dropped":2}` + "\n" + ev,
			"dropped 2 exceeds recorded 1",
		},
		"header not first": {
			ev + `{"kind":"header","events":1,"recorded":1,"dropped":0}` + "\n",
			"", // any error is fine (unknown fields on a non-first header)
		},
		"unknown header field": {
			`{"kind":"header","events":1,"recorded":1,"dropped":0,"bogus":1}` + "\n" + ev,
			"malformed header",
		},
	}
	for name, tc := range cases {
		_, err := Validate(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: no error", name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}

	// A consistent headered stream with declared drops passes.
	ok := `{"kind":"header","events":1,"recorded":5,"dropped":4}` + "\n" + ev
	if n, err := Validate(strings.NewReader(ok)); err != nil || n != 1 {
		t.Fatalf("consistent headered stream: n=%d err=%v", n, err)
	}
	// Headerless streams stay valid (back-compat with pre-header traces).
	if n, err := Validate(strings.NewReader(ev)); err != nil || n != 1 {
		t.Fatalf("headerless stream: n=%d err=%v", n, err)
	}
}

func TestReadJSONLFileSkipsHeader(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/h.jsonl"
	events := []Event{mkBegin(0, 1), mkCommit(0, 9, 5)}
	hdr := StreamHeader{Events: 2, Recorded: 2, Dropped: 0}
	if err := WriteJSONLStreamFile(path, hdr, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindBegin || got[1].Kind != KindCommit {
		t.Fatalf("read back %d events: %+v", len(got), got)
	}
}

// Perfetto exporter edge cases.

func decodeChromeTrace(t *testing.T, events []Event) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace must serialise traceEvents as [], got %s", buf.String())
	}
	doc := decodeChromeTrace(t, nil)
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("events = %+v", doc.TraceEvents)
	}
}

func TestChromeTraceSingleEvent(t *testing.T) {
	doc := decodeChromeTrace(t, []Event{mkCommit(3, 10, 4)})
	// One thread_name metadata record plus one X slice.
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2: %+v", len(doc.TraceEvents), doc.TraceEvents)
	}
	meta, slice := doc.TraceEvents[0], doc.TraceEvents[1]
	if meta.Phase != "M" || meta.TID != 3 {
		t.Fatalf("metadata = %+v", meta)
	}
	if slice.Phase != "X" || slice.TS != 6 || slice.Dur == nil || *slice.Dur != 4 {
		t.Fatalf("slice = %+v", slice)
	}
}

func TestChromeTraceCrossThreadTimestampOrdering(t *testing.T) {
	// Thread 1's commit starts (vclock-dur=2) before thread 0's (TS 5)
	// even though thread 0's event comes first in the stream; both slices
	// must carry absolute virtual timestamps, not stream order.
	events := []Event{
		mkCommit(0, 8, 3),   // TS 5
		mkCommit(1, 12, 10), // TS 2
	}
	doc := decodeChromeTrace(t, events)
	var ts []uint64
	byTID := map[int]uint64{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			ts = append(ts, ev.TS)
			byTID[ev.TID] = ev.TS
		}
	}
	if len(ts) != 2 || byTID[0] != 5 || byTID[1] != 2 {
		t.Fatalf("slice timestamps = %v (byTID %v)", ts, byTID)
	}
}

func TestChromeTraceClampsUnderflow(t *testing.T) {
	ev := mkCommit(0, 3, 9) // malformed: dur exceeds vclock
	doc := decodeChromeTrace(t, []Event{ev})
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && e.TS != 0 {
			t.Fatalf("underflowing slice TS = %d, want clamp to 0", e.TS)
		}
	}
}
