package obs

import (
	"testing"
	"time"
)

func TestSamplerRatesAndHistory(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx_total")
	g := r.Gauge("busy")
	s := NewSampler(r, time.Second, 8)

	t0 := time.UnixMilli(1_000_000)
	c.Add(0, 10)
	g.Set(2)
	s.Tick(t0)
	c.Add(0, 30)
	g.Set(5)
	s.Tick(t0.Add(2 * time.Second))

	snap, ok := s.SnapshotOne("tx_total", 0)
	if !ok {
		t.Fatal("tx_total series missing")
	}
	if len(snap.Vals) != 2 || snap.Vals[0] != 10 || snap.Vals[1] != 40 {
		t.Fatalf("values = %v", snap.Vals)
	}
	// First tick has no baseline; second tick: 30 more over 2s = 15/s.
	if snap.Rates[0] != 0 || snap.Rates[1] != 15 {
		t.Fatalf("rates = %v", snap.Rates)
	}
	if snap.Times[1]-snap.Times[0] != 2000 {
		t.Fatalf("times = %v", snap.Times)
	}

	gs, ok := s.SnapshotOne("busy", 0)
	if !ok || gs.Vals[1] != 5 || gs.Rates[1] != 0 {
		t.Fatalf("gauge series = %+v ok=%v", gs, ok)
	}
	if s.Ticks() != 2 {
		t.Fatalf("Ticks = %d", s.Ticks())
	}
}

func TestSeriesRingWraps(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total")
	s := NewSampler(r, time.Second, 4)
	t0 := time.UnixMilli(0)
	for i := 0; i < 10; i++ {
		c.Inc(0)
		s.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	snap, _ := s.SnapshotOne("n_total", 0)
	if len(snap.Vals) != 4 {
		t.Fatalf("retained = %d, want 4", len(snap.Vals))
	}
	// Oldest-first: the last four samples saw values 7..10.
	for i, want := range []float64{7, 8, 9, 10} {
		if snap.Vals[i] != want {
			t.Fatalf("vals = %v", snap.Vals)
		}
	}
	// maxPoints truncation keeps the most recent points.
	short, _ := s.SnapshotOne("n_total", 2)
	if len(short.Vals) != 2 || short.Vals[1] != 10 {
		t.Fatalf("maxPoints snapshot = %v", short.Vals)
	}
}

func TestSamplerSnapshotSortedAndHooks(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total")
	r.Counter("a_total")
	r.Gauge("c")
	s := NewSampler(r, time.Second, 4)

	var hookRates map[string]float64
	s.OnSample(func(_ time.Time, rates map[string]float64) { hookRates = rates })
	s.Tick(time.UnixMilli(1000))

	snaps := s.Snapshot(0)
	if len(snaps) != 3 {
		t.Fatalf("series = %d", len(snaps))
	}
	if snaps[0].Name != "a_total" || snaps[1].Name != "b_total" || snaps[2].Name != "c" {
		t.Fatalf("order = %s, %s, %s", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	if hookRates == nil {
		t.Fatal("OnSample hook did not run")
	}
	if _, ok := hookRates["a_total"]; !ok {
		t.Fatalf("hook rates missing counter: %v", hookRates)
	}
}

func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	s := NewSampler(r, time.Millisecond, 16)
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if s.Ticks() == 0 {
		t.Fatal("background sampler never ticked")
	}
	s.Stop() // idempotent after stop
}
