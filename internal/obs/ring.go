package obs

import (
	"sort"
	"sync/atomic"
)

// DefaultRingEvents is the default per-thread ring capacity. At 40 bytes
// per event this is ~2.6 MB per thread — enough for the full event stream
// of a sim-scale benchmark run without drops.
const DefaultRingEvents = 1 << 16

// Ring is a single-producer lock-free ring buffer of Events. The owning
// thread records with one slot write and one atomic head store; when the
// ring fills, the oldest events are overwritten (and counted as dropped) so
// recording never blocks and never allocates.
//
// Counters (Recorded, Dropped) may be read concurrently with the producer.
// Events (the slot snapshot) is only well-defined once the producer is
// quiescent — the drain-after-run model every sink in this package uses.
type Ring struct {
	buf  []Event
	mask uint64
	head atomic.Uint64 // total events ever recorded
	_    [40]byte      // keep neighbouring rings off one cache line
}

func newRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]Event, n), mask: uint64(n - 1)}
}

// Record appends ev. Single producer only (the owning engine thread).
func (r *Ring) Record(ev Event) {
	h := r.head.Load()
	r.buf[h&r.mask] = ev
	// The release store publishes the slot write to concurrent counter
	// readers; the single-producer contract makes the slot itself safe.
	r.head.Store(h + 1)
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.buf) }

// Recorded returns the total number of events ever recorded, including
// overwritten ones. Safe to call while the producer runs.
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// Dropped returns how many events have been overwritten. Safe to call while
// the producer runs.
func (r *Ring) Dropped() uint64 {
	if h := r.head.Load(); h > uint64(len(r.buf)) {
		return h - uint64(len(r.buf))
	}
	return 0
}

// Events returns the retained events, oldest first. Call only while the
// producer is quiescent.
func (r *Ring) Events() []Event {
	h := r.head.Load()
	n := h
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]Event, 0, n)
	for i := h - n; i < h; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// Reset discards all recorded events (e.g. between a warm-up and a measured
// phase). Call only while the producer is quiescent.
func (r *Ring) Reset() { r.head.Store(0) }

// Tracer is a set of per-thread rings, one per engine thread slot. Attach
// one to an engine with htm.Config.Tracer; threads whose slot has no ring
// (slot >= Threads()) simply record nothing.
type Tracer struct {
	rings []*Ring
}

// NewTracer builds a tracer with one ring of perThread events for each of
// threads slots. perThread <= 0 selects DefaultRingEvents.
func NewTracer(threads, perThread int) *Tracer {
	t := &Tracer{rings: make([]*Ring, threads)}
	for i := range t.rings {
		t.rings[i] = newRing(perThread)
	}
	return t
}

// Threads returns the number of per-thread rings.
func (t *Tracer) Threads() int { return len(t.rings) }

// Ring returns the ring for a thread slot, or nil when the slot is out of
// range (that thread records nothing).
func (t *Tracer) Ring(slot int) *Ring {
	if slot < 0 || slot >= len(t.rings) {
		return nil
	}
	return t.rings[slot]
}

// Recorded returns the total events recorded across all rings.
func (t *Tracer) Recorded() uint64 {
	var n uint64
	for _, r := range t.rings {
		n += r.Recorded()
	}
	return n
}

// Dropped returns the total events lost to ring overwrites across threads.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, r := range t.rings {
		n += r.Dropped()
	}
	return n
}

// Reset discards every ring's events. Call only while producers are
// quiescent.
func (t *Tracer) Reset() {
	for _, r := range t.rings {
		r.Reset()
	}
}

// Events merges all rings into one stream ordered by (VClock, Thread,
// per-thread record order). Call only while producers are quiescent.
func (t *Tracer) Events() []Event {
	var out []Event
	for _, r := range t.rings {
		out = append(out, r.Events()...)
	}
	// Per-ring order is already chronological (a thread's clock never goes
	// backwards), so a stable sort on (VClock, Thread) yields a total order
	// that preserves each thread's sequence.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].VClock != out[j].VClock {
			return out[i].VClock < out[j].VClock
		}
		return out[i].Thread < out[j].Thread
	})
	return out
}
