package obs

import (
	"strings"
	"testing"
)

func TestWritePromTextAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("htm_tx_commits_total").Add(0, 5)
	r.Counter(`htm_tx_aborts_by_reason_total{reason="conflict"}`).Add(1, 2)
	r.Counter(`htm_tx_aborts_by_reason_total{reason="capacity-load"}`).Add(2, 1)
	r.Gauge("sweep_workers_busy").Set(3)
	h := r.Histogram("cell_duration_ms", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := r.WritePromText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	n, err := ValidatePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ValidatePromText: %v\n%s", err, text)
	}
	// 3 counters + 1 gauge + 3 buckets + sum + count = 9 samples.
	if n != 9 {
		t.Fatalf("samples = %d, want 9\n%s", n, text)
	}

	for _, want := range []string{
		"# TYPE htm_tx_commits_total counter\n",
		"htm_tx_commits_total 5\n",
		`htm_tx_aborts_by_reason_total{reason="conflict"} 2` + "\n",
		"# TYPE sweep_workers_busy gauge\n",
		"# TYPE cell_duration_ms histogram\n",
		`cell_duration_ms_bucket{le="10"} 1` + "\n",
		`cell_duration_ms_bucket{le="100"} 2` + "\n",
		`cell_duration_ms_bucket{le="+Inf"} 3` + "\n",
		"cell_duration_ms_sum 5055\n",
		"cell_duration_ms_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// The labelled counters share one # TYPE line.
	if strings.Count(text, "# TYPE htm_tx_aborts_by_reason_total counter") != 1 {
		t.Fatalf("labelled counter TYPE line repeated:\n%s", text)
	}

	names, err := PromMetricNames(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"htm_tx_commits_total", "htm_tx_aborts_by_reason_total", "sweep_workers_busy"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("PromMetricNames missing %s: %v", want, names)
		}
	}
}

func TestValidatePromTextRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad metric name":     "9bad_name 1\n",
		"unterminated labels": "m{a=\"x\" 1\n",
		"unquoted label":      "m{a=x} 1\n",
		"bad label name":      "m{9a=\"x\"} 1\n",
		"missing value":       "metric_name\n",
		"bad value":           "metric_name abc\n",
		"extra fields":        "metric_name 1 2 3\n",
		"bad timestamp":       "metric_name 1 nope\n",
		"bad TYPE":            "# TYPE m widget\nm 1\n",
		"malformed TYPE":      "# TYPE m\n",
		"TYPE re-declared":    "# TYPE m counter\n# TYPE m gauge\n",
	}
	for name, in := range cases {
		if _, err := ValidatePromText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestValidatePromTextAcceptsPermissiveInput(t *testing.T) {
	in := "# free text comment\n" +
		"no_type_metric 1.5\n" +
		"with_ts 2 1712345678000\n" +
		"inf_value +Inf\n" +
		"empty_labels{} 0\n" +
		"multi{a=\"1\",b=\"two, still b\"} 3\n"
	n, err := ValidatePromText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ValidatePromText: %v", err)
	}
	if n != 5 {
		t.Fatalf("samples = %d, want 5", n)
	}
}

func TestPromBaseAndMergeLabel(t *testing.T) {
	if b, l := promBase(`x_total{reason="c"}`); b != "x_total" || l != `{reason="c"}` {
		t.Fatalf("promBase = %q, %q", b, l)
	}
	if b, l := promBase("plain"); b != "plain" || l != "" {
		t.Fatalf("promBase = %q, %q", b, l)
	}
	if got := mergeLabel("", "le", "10"); got != `{le="10"}` {
		t.Fatalf("mergeLabel empty = %q", got)
	}
	if got := mergeLabel(`{a="b"}`, "le", "+Inf"); got != `{a="b",le="+Inf"}` {
		t.Fatalf("mergeLabel = %q", got)
	}
}
