package obs

import (
	"sync"
	"time"
)

// Time-series sampling. The registry answers "how many so far"; the paper's
// central observation — abort behaviour is phase-dependent and platform-
// dependent — needs "how fast right now". The Sampler periodically
// snapshots every registry counter and gauge into fixed-capacity ring-
// buffered series: raw values plus windowed rates (delta per second between
// consecutive samples). Sampling reads only atomics and its own state, from
// its own goroutine, on the wall clock — it charges no virtual time and
// perturbs nothing, so fixed-seed runs sampled and unsampled produce
// byte-identical results.

// DefaultSeriesCap is the default number of retained points per series: at
// the default 500ms interval, five minutes of history.
const DefaultSeriesCap = 600

// Series is one metric's rolling history. All fields are guarded by the
// owning Sampler's mutex.
type Series struct {
	name  string
	times []int64 // unix milliseconds, ring
	vals  []float64
	rates []float64 // per-second delta for counters; 0 for gauges
	head  int       // next write slot
	n     int       // filled slots
}

func newSeries(name string, capacity int) *Series {
	return &Series{
		name:  name,
		times: make([]int64, capacity),
		vals:  make([]float64, capacity),
		rates: make([]float64, capacity),
	}
}

func (s *Series) push(t int64, val, rate float64) {
	s.times[s.head] = t
	s.vals[s.head] = val
	s.rates[s.head] = rate
	s.head = (s.head + 1) % len(s.times)
	if s.n < len(s.times) {
		s.n++
	}
}

// SeriesSnapshot is a copied, oldest-first view of one series.
type SeriesSnapshot struct {
	Name  string    `json:"name"`
	Times []int64   `json:"times_ms"`
	Vals  []float64 `json:"values"`
	Rates []float64 `json:"rates"`
}

func (s *Series) snapshot(maxPoints int) SeriesSnapshot {
	n := s.n
	if maxPoints > 0 && n > maxPoints {
		n = maxPoints
	}
	out := SeriesSnapshot{
		Name:  s.name,
		Times: make([]int64, n),
		Vals:  make([]float64, n),
		Rates: make([]float64, n),
	}
	start := s.head - n
	if start < 0 {
		start += len(s.times)
	}
	for i := 0; i < n; i++ {
		j := (start + i) % len(s.times)
		out.Times[i] = s.times[j]
		out.Vals[i] = s.vals[j]
		out.Rates[i] = s.rates[j]
	}
	return out
}

// Sampler periodically snapshots a Registry into per-metric Series rings.
// Create with NewSampler, then either Start a background goroutine or call
// Tick yourself (tests, single-step tools).
type Sampler struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu     sync.Mutex
	series map[string]*Series
	prev   map[string]uint64 // counter values at the previous tick
	prevT  time.Time
	ticks  uint64

	// onSample hooks run after each tick with the fresh rates (the flight
	// recorder's anomaly watch). Registered before Start; called from the
	// sampler goroutine.
	onSample []func(now time.Time, rates map[string]float64)

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over reg. interval <= 0 selects 500ms;
// capacity <= 0 selects DefaultSeriesCap points per series.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		series:   map[string]*Series{},
		prev:     map[string]uint64{},
	}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// OnSample registers a per-tick hook (e.g. the flight recorder's anomaly
// check). Must be called before Start.
func (s *Sampler) OnSample(f func(now time.Time, rates map[string]float64)) {
	s.onSample = append(s.onSample, f)
}

// Start launches the background sampling goroutine. Stop stops it.
func (s *Sampler) Start() {
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				s.Tick(now)
			}
		}
	}()
}

// Stop halts the background goroutine (no-op if never started) and takes a
// final sample so short runs still end with fresh series.
func (s *Sampler) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
	s.Tick(time.Now())
}

// Tick takes one sample at the given wall-clock time. Exported so tests and
// single-threaded tools can drive the sampler without the goroutine.
func (s *Sampler) Tick(now time.Time) {
	counters := s.reg.CounterValues()
	gauges := s.reg.GaugeValues()

	s.mu.Lock()
	dt := now.Sub(s.prevT).Seconds()
	ms := now.UnixMilli()
	rates := make(map[string]float64, len(counters))
	for name, v := range counters {
		rate := 0.0
		if s.ticks > 0 && dt > 0 {
			if p, ok := s.prev[name]; ok && v >= p {
				rate = float64(v-p) / dt
			}
		}
		rates[name] = rate
		s.seriesLocked(name).push(ms, float64(v), rate)
		s.prev[name] = v
	}
	for name, v := range gauges {
		s.seriesLocked(name).push(ms, float64(v), 0)
	}
	s.prevT = now
	s.ticks++
	hooks := s.onSample
	s.mu.Unlock()
	// Hooks run outside the lock so they may call Snapshot and friends.
	for _, f := range hooks {
		f(now, rates)
	}
}

func (s *Sampler) seriesLocked(name string) *Series {
	sr := s.series[name]
	if sr == nil {
		sr = newSeries(name, s.capacity)
		s.series[name] = sr
	}
	return sr
}

// Ticks returns how many samples have been taken.
func (s *Sampler) Ticks() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Snapshot copies up to maxPoints recent points of every series, sorted by
// name (maxPoints <= 0 means all retained points).
func (s *Sampler) Snapshot(maxPoints int) []SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]SeriesSnapshot, 0, len(names))
	for _, n := range names {
		out = append(out, s.series[n].snapshot(maxPoints))
	}
	return out
}

// SnapshotOne returns one named series' snapshot (ok=false if the metric
// has never been sampled).
func (s *Sampler) SnapshotOne(name string, maxPoints int) (SeriesSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok {
		return SeriesSnapshot{}, false
	}
	return sr.snapshot(maxPoints), true
}

// sortStrings is a tiny insertion sort: series counts are dozens, and this
// keeps sort out of the lock-held path's allocation profile.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
