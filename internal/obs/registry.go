package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Live metrics registry. The post-hoc sinks in this package (JSONL,
// Perfetto, Aggregate) explain a run after it ends; the Registry is the
// live counterpart: engines, the adaptive runtime and the sweep scheduler
// publish into named counters, gauges and fixed-bucket histograms while
// they run, and the Sampler (series.go) and HTTP server (http.go) read
// them back concurrently.
//
// Cost contract, mirroring the tracer's: publishers hold pre-resolved
// handles (registration allocates, publication never does) behind a single
// nil check, so a run without telemetry pays exactly that nil check per
// transaction boundary and nothing per access. Publication never charges
// virtual time, so fixed-seed simulated results are identical with the
// registry attached and detached (pinned by internal/tm's determinism
// tests).

// counterStripes is the number of cache-line-padded cells a Counter spreads
// its adds over. Publishers pass a stripe hint (their thread slot or worker
// index) so concurrent engines do not serialise on one hot cache line.
// Power of two.
const counterStripes = 8

// stripe is one padded counter cell.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing metric. Safe for concurrent use;
// reads may race writes and see any point-in-time sum.
type Counter struct {
	name    string
	stripes [counterStripes]stripe
}

// Name returns the full metric name (including any label set).
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta. hint selects the stripe — pass a
// stable small integer (thread slot, worker index) to spread contention;
// any value is safe.
func (c *Counter) Add(hint int, delta uint64) {
	c.stripes[uint(hint)&(counterStripes-1)].v.Add(delta)
}

// Inc is Add(hint, 1).
func (c *Counter) Inc(hint int) { c.Add(hint, 1) }

// Value returns the current sum across stripes.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.stripes {
		n += c.stripes[i].v.Load()
	}
	return n
}

// Gauge is a metric that can go up and down (an instantaneous level: queue
// depth, busy workers, remaining ETA). Stores are last-writer-wins.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the full metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of integer observations (cell
// durations in milliseconds, commit latencies in cycles). Buckets are
// cumulative in exposition (Prometheus style) but stored per-interval.
// Observe is lock-free; the bucket bounds are immutable after creation.
type Histogram struct {
	name   string
	bounds []uint64 // sorted upper bounds; implicit +Inf bucket at the end
	counts []atomic.Uint64
	sum    atomic.Uint64
	total  atomic.Uint64
}

// Name returns the full metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Name   string
	Bounds []uint64 // upper bounds; the final count row is the +Inf bucket
	Counts []uint64 // per-bucket (non-cumulative) counts, len(Bounds)+1
	Sum    uint64
	Total  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Total = h.total.Load()
	return s
}

// Registry is a named collection of live metrics. Registration (Counter,
// Gauge, Histogram) takes a mutex and may allocate; it is meant for setup
// paths. The returned handles are stable for the registry's lifetime —
// publishers cache them and never touch the registry maps again.
//
// Metric names follow Prometheus conventions: a base name of
// [a-zA-Z_][a-zA-Z0-9_]* optionally followed by a {label="value"} set.
// Metrics sharing a base name (one per label set) are grouped under one
// # TYPE line in the exposition.
type Registry struct {
	mu     sync.Mutex
	cnt    map[string]*Counter
	gau    map[string]*Gauge
	hist   map[string]*Histogram
	sealed []string // sorted name cache, invalidated on registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cnt:  map[string]*Counter{},
		gau:  map[string]*Gauge{},
		hist: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it at zero on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cnt[name]
	if c == nil {
		c = &Counter{name: name}
		r.cnt[name] = c
		r.sealed = nil
	}
	return c
}

// Gauge returns the gauge registered under name, creating it at zero on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gau[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gau[name] = g
		r.sealed = nil
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (bounds are ignored for an
// existing histogram). Bounds must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hist[name]
	if h == nil {
		b := append([]uint64(nil), bounds...)
		h = &Histogram{
			name:   name,
			bounds: b,
			counts: make([]atomic.Uint64, len(b)+1),
		}
		r.hist[name] = h
		r.sealed = nil
	}
	return h
}

// Counters returns all registered counters sorted by name.
func (r *Registry) Counters() []*Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Counter, 0, len(r.cnt))
	for _, c := range r.cnt {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Gauges returns all registered gauges sorted by name.
func (r *Registry) Gauges() []*Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Gauge, 0, len(r.gau))
	for _, g := range r.gau {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Histograms returns all registered histograms sorted by name.
func (r *Registry) Histograms() []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Histogram, 0, len(r.hist))
	for _, h := range r.hist {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// CounterValues returns a point-in-time name → value copy of every counter.
func (r *Registry) CounterValues() map[string]uint64 {
	counters := r.Counters()
	out := make(map[string]uint64, len(counters))
	for _, c := range counters {
		out[c.name] = c.Value()
	}
	return out
}

// GaugeValues returns a point-in-time name → value copy of every gauge.
func (r *Registry) GaugeValues() map[string]int64 {
	gauges := r.Gauges()
	out := make(map[string]int64, len(gauges))
	for _, g := range gauges {
		out[g.name] = g.Value()
	}
	return out
}

// EngineMetrics is the pre-resolved handle set an engine publishes through
// (htm.Config.Metrics): transaction boundaries, aborts by reason, and
// adaptive-runtime mode switches. One EngineMetrics is shared by every
// engine of a sweep — counters stripe by thread slot, so concurrent cells
// do not serialise. Reason and mode codes index the pre-built handle
// slices; codes beyond the registered vocabulary fall back to the last
// ("unknown") handle rather than allocating.
type EngineMetrics struct {
	Begins   *Counter
	Commits  *Counter
	Aborts   *Counter
	ByReason []*Counter // indexed by engine reason code
	ByMode   []*Counter // mode switches indexed by to-mode code
}

// NewEngineMetrics registers the engine counter set in reg: reasons and
// modes size the per-code handle slices (label values come from the
// registered reason/mode namers).
func NewEngineMetrics(reg *Registry, reasons, modes int) *EngineMetrics {
	m := &EngineMetrics{
		Begins:  reg.Counter("htm_tx_begins_total"),
		Commits: reg.Counter("htm_tx_commits_total"),
		Aborts:  reg.Counter("htm_tx_aborts_total"),
	}
	if reasons < 1 {
		reasons = 1
	}
	if modes < 1 {
		modes = 1
	}
	m.ByReason = make([]*Counter, reasons)
	for i := range m.ByReason {
		m.ByReason[i] = reg.Counter(`htm_tx_aborts_by_reason_total{reason="` + ReasonName(uint8(i)) + `"}`)
	}
	m.ByMode = make([]*Counter, modes)
	for i := range m.ByMode {
		m.ByMode[i] = reg.Counter(`tm_mode_switches_total{to="` + ModeName(uint8(i)) + `"}`)
	}
	return m
}

// Abort bumps the total and per-reason abort counters.
func (m *EngineMetrics) Abort(hint int, reason uint8) {
	m.Aborts.Inc(hint)
	i := int(reason)
	if i >= len(m.ByReason) {
		i = len(m.ByReason) - 1
	}
	m.ByReason[i].Inc(hint)
}

// ModeSwitch bumps the per-target-mode switch counter.
func (m *EngineMetrics) ModeSwitch(hint int, to uint8) {
	i := int(to)
	if i >= len(m.ByMode) {
		i = len(m.ByMode) - 1
	}
	m.ByMode[i].Inc(hint)
}
