package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): the wire format the /metrics
// endpoint serves and the only metrics format most scrapers agree on. The
// writer groups samples by base metric name under one # TYPE comment;
// ValidatePromText is the matching in-repo syntax checker CI scrapes
// against, so exposition drift fails the build instead of a dashboard.

// promBase splits a registry metric name into its base name and label part
// ("htm_aborts_total{reason=\"x\"}" → "htm_aborts_total", "{reason=\"x\"}").
func promBase(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// validPromName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validPromLabelName is validPromName without the ':' (colons are reserved
// for recording rules, not label names).
func validPromLabelName(s string) bool {
	if !validPromName(s) {
		return false
	}
	return !strings.ContainsRune(s, ':')
}

// WritePromText writes every metric of the registry in Prometheus text
// exposition format: counters, gauges, then histograms, each base name
// introduced by a # TYPE line, samples sorted by full name.
func (r *Registry) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)

	writeGroup := func(kind string, names []string, value func(string) string) {
		lastBase := ""
		for _, name := range names {
			base, labels := promBase(name)
			if base != lastBase {
				fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
				lastBase = base
			}
			fmt.Fprintf(bw, "%s%s %s\n", base, labels, value(name))
		}
	}

	counters := r.Counters()
	cnames := make([]string, len(counters))
	cvals := make(map[string]string, len(counters))
	for i, c := range counters {
		cnames[i] = c.name
		cvals[c.name] = strconv.FormatUint(c.Value(), 10)
	}
	writeGroup("counter", cnames, func(n string) string { return cvals[n] })

	gauges := r.Gauges()
	gnames := make([]string, len(gauges))
	gvals := make(map[string]string, len(gauges))
	for i, g := range gauges {
		gnames[i] = g.name
		gvals[g.name] = strconv.FormatInt(g.Value(), 10)
	}
	writeGroup("gauge", gnames, func(n string) string { return gvals[n] })

	for _, h := range r.Histograms() {
		s := h.Snapshot()
		base, labels := promBase(s.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", base)
		cum := uint64(0)
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = strconv.FormatUint(s.Bounds[i], 10)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", base, mergeLabel(labels, "le", le), cum)
		}
		fmt.Fprintf(bw, "%s_sum%s %d\n", base, labels, s.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", base, labels, s.Total)
	}

	return bw.Flush()
}

// mergeLabel inserts key="value" into an existing {..} label set (or makes
// a fresh one).
func mergeLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// ValidatePromText checks a Prometheus text exposition for syntactic
// validity: every non-comment line must be `name[{labels}] value [ts]` with
// a legal metric name, well-formed label set and parseable float value, and
// every # TYPE comment must name a legal metric and a known type. It
// returns the number of samples read. It is deliberately strict about
// structure and permissive about semantics (it does not require TYPE
// comments, matching real scrapers).
func ValidatePromText(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	samples := 0
	types := map[string]string{}
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validatePromComment(line, types); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validatePromSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// validatePromComment checks a # line: HELP/TYPE comments must be
// well-formed; other comments are free text.
func validatePromComment(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
		return nil // free-text comment
	}
	if len(fields) < 3 || !validPromName(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("TYPE comment wants exactly a name and a type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if prev, ok := types[fields[2]]; ok && prev != fields[3] {
			return fmt.Errorf("metric %s re-declared as %s (was %s)", fields[2], fields[3], prev)
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// validatePromSample checks one sample line: name[{labels}] value [timestamp].
func validatePromSample(line string) error {
	rest := line
	// Metric name.
	nameEnd := 0
	for nameEnd < len(rest) && rest[nameEnd] != '{' && rest[nameEnd] != ' ' && rest[nameEnd] != '\t' {
		nameEnd++
	}
	name := rest[:nameEnd]
	if !validPromName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[nameEnd:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := validatePromLabels(rest[1:end]); err != nil {
			return err
		}
		rest = rest[end+1:]
	}
	// Value and optional timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q wants `value [timestamp]` after the name", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		// Prometheus also allows +Inf/-Inf/NaN, which ParseFloat accepts.
		return fmt.Errorf("unparseable sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return nil
}

// validatePromLabels checks the inside of a {...} label set.
func validatePromLabels(s string) error {
	if strings.TrimSpace(s) == "" {
		return nil // empty label set is legal
	}
	for _, pair := range splitPromLabels(s) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", pair)
		}
		name := strings.TrimSpace(pair[:eq])
		val := strings.TrimSpace(pair[eq+1:])
		if !validPromLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("label value %s must be double-quoted", val)
		}
		if _, err := strconv.Unquote(val); err != nil {
			return fmt.Errorf("bad escaping in label value %s", val)
		}
	}
	return nil
}

// splitPromLabels splits a label body on commas outside quoted values.
func splitPromLabels(s string) []string {
	var out []string
	depth := false // inside a quoted value
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// PromMetricNames returns the sorted distinct base metric names of an
// exposition — handy for smoke assertions ("did the scrape contain
// htm_tx_aborts_total at all?").
func PromMetricNames(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	seen := map[string]bool{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		end := 0
		for end < len(line) && line[end] != '{' && line[end] != ' ' {
			end++
		}
		seen[line[:end]] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}
