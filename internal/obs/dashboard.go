package obs

// dashboardHTML is the self-contained live dashboard served at /. No
// external assets: styles and script are inline so the page works from an
// air-gapped bench box. It consumes /api/state once for first paint, then
// /api/stream (SSE) for live updates, falling back to polling if the stream
// drops. Layout: a KPI row of stat tiles, small-multiple sparklines (one
// per abort reason — identity by label, single hue), the worker table, and
// flight-recorder dumps.
//
// NOTE: the script intentionally avoids JS template literals — this file
// embeds the page in a Go raw string, so backticks are off the table.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>htmcmp live telemetry</title>
<style>
:root {
  color-scheme: light;
  --page:      #f9f9f7;
  --surface:   #fcfcfb;
  --ink:       #0b0b0b;
  --ink-2:     #52514e;
  --muted:     #898781;
  --grid:      #e1e0d9;
  --baseline:  #c3c2b7;
  --border:    rgba(11,11,11,0.10);
  --series-1:  #2a78d6;
  --status-good:     #0ca30c;
  --status-warning:  #fab219;
  --status-serious:  #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page:      #0d0d0d;
    --surface:   #1a1a19;
    --ink:       #ffffff;
    --ink-2:     #c3c2b7;
    --muted:     #898781;
    --grid:      #2c2c2a;
    --baseline:  #383835;
    --border:    rgba(255,255,255,0.10);
    --series-1:  #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px 40px;
  background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 16px; font-weight: 600; margin: 0 0 2px; }
.sub { color: var(--muted); font-size: 12px; margin-bottom: 16px; }
.sub .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
  background: var(--status-critical); margin-right: 4px; vertical-align: baseline; }
.sub.live .dot { background: var(--status-good); }
section { margin-bottom: 20px; }
h2 { font-size: 12px; font-weight: 600; color: var(--ink-2);
  text-transform: uppercase; letter-spacing: 0.04em; margin: 0 0 8px; }
.tiles { display: grid; grid-template-columns: repeat(auto-fill, minmax(180px, 1fr)); gap: 10px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px 8px; min-height: 74px; position: relative;
}
.tile .label { font-size: 12px; color: var(--ink-2); margin-bottom: 2px; }
.tile .value { font-size: 26px; font-weight: 600; line-height: 1.1; }
.tile .unit { font-size: 12px; color: var(--muted); font-weight: 400; margin-left: 2px; }
.tile svg { display: block; width: 100%; height: 34px; margin-top: 6px; }
.multiples { display: grid; grid-template-columns: repeat(auto-fill, minmax(200px, 1fr)); gap: 10px; }
.spark-val { font-size: 15px; font-weight: 600; float: right; }
table {
  width: 100%; border-collapse: collapse; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; overflow: hidden;
  font-variant-numeric: tabular-nums;
}
th, td { text-align: left; padding: 6px 12px; border-top: 1px solid var(--grid); font-size: 13px; }
th { border-top: none; color: var(--muted); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; }
.state { font-weight: 600; }
.state::before { content: "●"; margin-right: 5px; }
.state.run::before  { color: var(--status-good); }
.state.idle::before { color: var(--baseline); }
.state.stall::before { color: var(--status-serious); }
.flights li { margin: 2px 0; font-size: 13px; }
.flights .why { color: var(--status-serious); font-weight: 600; }
.empty { color: var(--muted); font-size: 13px; }
#tip {
  position: fixed; display: none; pointer-events: none; z-index: 10;
  background: var(--surface); border: 1px solid var(--border); border-radius: 6px;
  padding: 4px 8px; font-size: 12px; color: var(--ink);
  box-shadow: 0 2px 8px rgba(0,0,0,0.15);
}
#tip .t { color: var(--muted); }
</style>
</head>
<body>
<h1>htmcmp live telemetry</h1>
<div class="sub" id="status"><span class="dot"></span><span id="status-text">connecting…</span></div>

<section>
  <h2>Throughput</h2>
  <div class="tiles" id="kpis"></div>
</section>

<section>
  <h2>Abort rate by reason <span style="font-weight:400;text-transform:none;color:var(--muted)">(aborts/s, one panel per reason)</span></h2>
  <div class="multiples" id="reasons"></div>
</section>

<section>
  <h2>Sweep workers</h2>
  <div id="workers"></div>
</section>

<section>
  <h2>Flight recorder</h2>
  <div id="flights" class="flights"><span class="empty">no dumps</span></div>
</section>

<div id="tip"></div>

<script>
"use strict";
var tip = document.getElementById("tip");

function fmt(v) {
  if (v >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
  if (v >= 100) return v.toFixed(0);
  if (v >= 1) return v.toFixed(1);
  return v.toFixed(2);
}
function esc(s) {
  return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;")
    .replace(/"/g, "&quot;");
}

// sparkSVG renders one series as a 2px line with a baseline and an end dot.
// Data points ride along in data- attributes for the hover layer.
function sparkSVG(pts, times, w, h) {
  var svg = '<svg viewBox="0 0 ' + w + ' ' + h + '" preserveAspectRatio="none" ' +
    'class="spark" data-v="' + pts.map(fmt).join(",") + '" data-t="' + times.join(",") + '">';
  svg += '<line x1="0" y1="' + (h - 1) + '" x2="' + w + '" y2="' + (h - 1) +
    '" stroke="var(--baseline)" stroke-width="1"/>';
  if (pts.length > 1) {
    var max = Math.max.apply(null, pts), min = 0;
    if (max <= min) max = 1;
    var step = w / (pts.length - 1), d = "";
    for (var i = 0; i < pts.length; i++) {
      var x = (i * step).toFixed(1);
      var y = (h - 3 - (pts[i] - min) / (max - min) * (h - 8)).toFixed(1);
      d += (i ? "L" : "M") + x + " " + y;
    }
    svg += '<path d="' + d + '" fill="none" stroke="var(--series-1)" ' +
      'stroke-width="2" stroke-linejoin="round" vector-effect="non-scaling-stroke"/>';
    var lx = w.toFixed(1), ly = (h - 3 - (pts[pts.length - 1] - min) / (max - min) * (h - 8)).toFixed(1);
    svg += '<circle cx="' + lx + '" cy="' + ly + '" r="3" fill="var(--series-1)" ' +
      'stroke="var(--surface)" stroke-width="2"/>';
  }
  return svg + "</svg>";
}

function tile(label, value, unit, series) {
  var html = '<div class="tile"><div class="label">' + esc(label) + '</div>' +
    '<div class="value">' + value + '<span class="unit">' + unit + "</span></div>";
  if (series) html += sparkSVG(series.rates, series.times_ms, 200, 34);
  return html + "</div>";
}

function findSeries(state, name) {
  for (var i = 0; i < (state.series || []).length; i++)
    if (state.series[i].name === name) return state.series[i];
  return null;
}
function lastRate(s) { return s && s.rates.length ? s.rates[s.rates.length - 1] : 0; }

var reasonRe = /^htm_tx_aborts_by_reason_total\{reason="(.+)"\}$/;

function render(state) {
  var commits = findSeries(state, "htm_tx_commits_total");
  var aborts = findSeries(state, "htm_tx_aborts_total");
  var kpis = "";
  kpis += tile("Commit rate", fmt(lastRate(commits)), "/s", commits);
  kpis += tile("Abort rate", fmt(lastRate(aborts)), "/s", aborts);
  var modeRate = 0;
  for (var i = 0; i < (state.series || []).length; i++)
    if (state.series[i].name.indexOf("tm_mode_switches_total{") === 0)
      modeRate += lastRate(state.series[i]);
  kpis += tile("Mode switches", fmt(modeRate), "/s", null);
  var busy = 0, workers = state.workers || [];
  for (var j = 0; j < workers.length; j++) if (workers[j].state === "run") busy++;
  if (workers.length)
    kpis += tile("Workers busy", busy + '<span class="unit">/' + workers.length + "</span>", "", null);
  kpis += tile("Cells done", fmt(state.counters["sweep_cells_done_total"] || 0), "", null);
  var retries = state.counters["sweep_cell_retries_total"] || 0;
  var quar = state.counters["sweep_cells_quarantined"] || 0;
  var recov = state.counters["sweep_cells_recovered_total"] || 0;
  if (retries || quar || recov)
    kpis += tile("Self-healing", fmt(recov) +
      '<span class="unit"> recovered / ' + fmt(retries) + " retries / " +
      fmt(quar) + " quarantined</span>", "", null);
  kpis += tile("Aborts total", fmt(state.counters["htm_tx_aborts_total"] || 0), "", null);
  document.getElementById("kpis").innerHTML = kpis;

  // Small multiples: one labeled sparkline per abort reason. Identity lives
  // in the label, so a single hue serves every panel.
  var panels = "";
  for (var k = 0; k < (state.series || []).length; k++) {
    var s = state.series[k], m = reasonRe.exec(s.name);
    if (!m || m[1] === "none") continue;
    panels += '<div class="tile"><span class="spark-val">' + fmt(lastRate(s)) +
      '<span class="unit">/s</span></span><div class="label">' + esc(m[1]) + "</div>" +
      sparkSVG(s.rates, s.times_ms, 200, 34) + "</div>";
  }
  document.getElementById("reasons").innerHTML =
    panels || '<span class="empty">no abort series yet</span>';

  var whtml;
  if (!workers.length) {
    whtml = '<span class="empty">no sweep running</span>';
  } else {
    whtml = "<table><tr><th>worker</th><th>state</th><th>cell</th>" +
      '<th class="num">for</th><th class="num">done</th><th class="num">steals</th></tr>';
    for (var w = 0; w < workers.length; w++) {
      var row = workers[w];
      var secs = Math.max(0, (state.now_ms - row.since_ms) / 1000);
      var cls = row.state === "run" ? (secs > 60 ? "stall" : "run") : "idle";
      whtml += '<tr><td>#' + row.id + '</td><td><span class="state ' + cls + '">' +
        esc(row.state) + "</span></td><td>" + esc(row.cell || "—") + "</td>" +
        '<td class="num">' + secs.toFixed(0) + 's</td>' +
        '<td class="num">' + row.done + '</td><td class="num">' + row.steals + "</td></tr>";
    }
    whtml += "</table>";
  }
  document.getElementById("workers").innerHTML = whtml;

  var flights = state.flights || [];
  var fhtml = "";
  for (var f = 0; f < flights.length; f++)
    fhtml += '<li><span class="why">⚑ ' + esc(flights[f].reason) + "</span> " +
      esc(flights[f].time) + " → <code>" + esc(flights[f].dir) + "</code> " +
      esc(flights[f].detail || "") + "</li>";
  document.getElementById("flights").innerHTML =
    fhtml ? "<ul>" + fhtml + "</ul>" : '<span class="empty">no dumps</span>';
}

// Hover layer: nearest-point tooltip over any sparkline.
document.addEventListener("mousemove", function (e) {
  var el = e.target.closest ? e.target.closest("svg.spark") : null;
  if (!el) { tip.style.display = "none"; return; }
  var vals = el.getAttribute("data-v").split(",");
  var ts = el.getAttribute("data-t").split(",");
  if (!vals.length || vals[0] === "") { tip.style.display = "none"; return; }
  var r = el.getBoundingClientRect();
  var i = Math.round((e.clientX - r.left) / r.width * (vals.length - 1));
  i = Math.min(Math.max(i, 0), vals.length - 1);
  var when = ts[i] ? new Date(+ts[i]).toLocaleTimeString() : "";
  tip.innerHTML = "<b>" + esc(vals[i]) + "/s</b> <span class=\"t\">" + when + "</span>";
  tip.style.display = "block";
  tip.style.left = (e.clientX + 12) + "px";
  tip.style.top = (e.clientY - 28) + "px";
});

var statusEl = document.getElementById("status"), statusText = document.getElementById("status-text");
function setLive(live, text) {
  statusEl.className = live ? "sub live" : "sub";
  statusText.textContent = text;
}

function poll() {
  fetch("/api/state").then(function (r) { return r.json(); }).then(render)
    .catch(function () {});
}
poll();
var es = new EventSource("/api/stream");
es.onmessage = function (e) { setLive(true, "live (SSE)"); render(JSON.parse(e.data)); };
es.onerror = function () { setLive(false, "stream lost — polling"); };
setInterval(function () { if (es.readyState === 2) poll(); }, 2000);
</script>
</body>
</html>
`
