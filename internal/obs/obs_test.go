package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkAbort(thread uint8, vclock, dur uint64, reason uint8, retry uint16, line uint32, by int16) Event {
	return Event{
		Kind: KindAbort, Thread: thread, Reason: reason, Retry: retry,
		Aborter: by, Line: line, ReadLines: 3, WriteLines: 2,
		VClock: vclock, Dur: dur,
	}
}

func mkCommit(thread uint8, vclock, dur uint64) Event {
	return Event{
		Kind: KindCommit, Thread: thread, Aborter: NoThread, Line: NoLine,
		ReadLines: 4, WriteLines: 1, VClock: vclock, Dur: dur,
	}
}

func mkBegin(thread uint8, vclock uint64) Event {
	return Event{Kind: KindBegin, Thread: thread, Aborter: NoThread, Line: NoLine, VClock: vclock}
}

func TestRingRecordAndDrain(t *testing.T) {
	r := newRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindBegin, VClock: uint64(i)})
	}
	if got := r.Recorded(); got != 5 {
		t.Fatalf("Recorded = %d, want 5", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len(Events) = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.VClock != uint64(i) {
			t.Fatalf("event %d has VClock %d, want %d (oldest-first order)", i, ev.VClock, i)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindBegin, VClock: uint64(i)})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.VClock != want {
			t.Fatalf("event %d has VClock %d, want %d (newest 4 retained)", i, ev.VClock, want)
		}
	}
	r.Reset()
	if r.Recorded() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestRingRoundsCapacityToPowerOfTwo(t *testing.T) {
	if got := newRing(5).Cap(); got != 8 {
		t.Fatalf("Cap = %d, want 8", got)
	}
	if got := newRing(0).Cap(); got != DefaultRingEvents {
		t.Fatalf("Cap = %d, want default %d", got, DefaultRingEvents)
	}
}

func TestTracerMergesInClockOrder(t *testing.T) {
	tr := NewTracer(3, 16)
	if tr.Threads() != 3 {
		t.Fatalf("Threads = %d, want 3", tr.Threads())
	}
	// Interleave two threads with distinct clocks plus a tie at 50.
	tr.Ring(0).Record(mkBegin(0, 10))
	tr.Ring(0).Record(mkCommit(0, 50, 40))
	tr.Ring(1).Record(mkBegin(1, 20))
	tr.Ring(1).Record(mkAbort(1, 50, 30, 1, 0, 7, 0))
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	wantClocks := []uint64{10, 20, 50, 50}
	for i, ev := range evs {
		if ev.VClock != wantClocks[i] {
			t.Fatalf("event %d has VClock %d, want %d", i, ev.VClock, wantClocks[i])
		}
	}
	// Tie at 50 breaks by thread.
	if evs[2].Thread != 0 || evs[3].Thread != 1 {
		t.Fatalf("tie order = threads %d,%d, want 0,1", evs[2].Thread, evs[3].Thread)
	}
	if tr.Ring(-1) != nil || tr.Ring(3) != nil {
		t.Fatal("out-of-range Ring() should return nil")
	}
	if tr.Recorded() != 4 {
		t.Fatalf("Recorded = %d, want 4", tr.Recorded())
	}
	tr.Reset()
	if tr.Recorded() != 0 {
		t.Fatal("Reset did not clear rings")
	}
}

func TestJSONLRoundTripAndValidate(t *testing.T) {
	events := []Event{
		mkBegin(0, 10),
		mkAbort(0, 40, 30, 1, 0, 123, 1),
		mkBegin(0, 45),
		mkCommit(0, 90, 45),
		mkBegin(1, 12),
		mkCommit(1, 70, 58),
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	if err := WriteJSONLFile(path, events); err != nil {
		t.Fatalf("WriteJSONLFile: %v", err)
	}
	n, err := ValidateFile(path)
	if err != nil {
		t.Fatalf("ValidateFile: %v", err)
	}
	if n != len(events) {
		t.Fatalf("ValidateFile counted %d events, want %d", n, len(events))
	}
	back, err := ReadJSONLFile(path)
	if err != nil {
		t.Fatalf("ReadJSONLFile: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip read %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d round trip mismatch:\n got %+v\nwant %+v", i, back[i], events[i])
		}
	}
}

func TestValidateRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name string
		line string
		want string
	}{
		{"unknown kind", `{"kind":"frobnicate","thread":0,"vclock":1}`, "unknown event kind"},
		{"unknown field", `{"kind":"begin","thread":0,"vclock":1,"bogus":2}`, "bogus"},
		{"abort without reason", `{"kind":"abort","thread":0,"vclock":9,"dur":2}`, "without a reason"},
		{"commit with reason", `{"kind":"commit","thread":0,"vclock":9,"dur":2,"reason":"conflict"}`, "abort reason"},
		{"dur exceeds clock", `{"kind":"commit","thread":0,"vclock":5,"dur":9}`, "exceeds vclock"},
		{"begin with dur", `{"kind":"begin","thread":0,"vclock":9,"dur":2}`, "commit/abort fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate(strings.NewReader(tc.line + "\n"))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsBackwardsClock(t *testing.T) {
	stream := `{"kind":"begin","thread":3,"vclock":100}
{"kind":"begin","thread":3,"vclock":50}
`
	_, err := Validate(strings.NewReader(stream))
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("Validate error = %v, want clock-went-backwards", err)
	}
}

func TestChromeTraceIsValidJSONWithTracks(t *testing.T) {
	events := []Event{
		mkBegin(0, 10),
		mkAbort(0, 40, 30, 1, 0, 123, 1),
		mkBegin(1, 12),
		mkCommit(1, 70, 58),
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exporter produced invalid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var meta, complete, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			complete++
			if ev.TS+ev.Dur == 0 {
				t.Fatalf("complete event %q has zero extent", ev.Name)
			}
		case "i":
			instants++
		}
	}
	if meta != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2 (one per thread)", meta)
	}
	if complete != 2 {
		t.Fatalf("complete events = %d, want 2 (one commit + one abort slice)", complete)
	}
	if instants != 1 {
		t.Fatalf("instant events = %d, want 1 (the abort marker)", instants)
	}
}

func TestAggregateReport(t *testing.T) {
	// Thread 0: abort twice on line 7 (retry depths 0 and 1), then commit.
	// Thread 1: one commit; one capacity abort with no line.
	events := []Event{
		mkBegin(0, 0),
		mkAbort(0, 30, 30, 1, 0, 7, 1),
		mkBegin(0, 35),
		mkAbort(0, 60, 25, 1, 1, 7, 1),
		mkBegin(0, 65),
		mkCommit(0, 100, 35),
		mkBegin(1, 0),
		mkCommit(1, 40, 40),
		mkBegin(1, 45),
		mkAbort(1, 90, 45, 3, 0, NoLine, NoThread),
	}
	regions := map[uint64]string{7 * 64: "stamp/hot-node"}
	rep := Aggregate(events, ReportOptions{
		TopN:     10,
		LineSize: 64,
		RegionAt: func(a uint64) string { return regions[a] },
	})
	if rep.Begins != 5 || rep.Commits != 2 || rep.Aborts != 3 {
		t.Fatalf("counts = begins %d commits %d aborts %d, want 5/2/3", rep.Begins, rep.Commits, rep.Aborts)
	}
	if len(rep.Reasons) != 2 {
		t.Fatalf("reasons = %d, want 2", len(rep.Reasons))
	}
	if rep.Reasons[0].Total != 2 || rep.Reasons[0].Depth[0] != 1 || rep.Reasons[0].Depth[1] != 1 {
		t.Fatalf("top reason hist = %+v, want total 2 with depth0=1 depth1=1", rep.Reasons[0])
	}
	if len(rep.TopLines) != 1 {
		t.Fatalf("top lines = %d, want 1 (capacity abort carries no line)", len(rep.TopLines))
	}
	tl := rep.TopLines[0]
	if tl.Line != 7 || tl.Aborts != 2 || tl.Addr != 7*64 || tl.Region != "stamp/hot-node" {
		t.Fatalf("top line = %+v, want line 7 x2 at %#x region stamp/hot-node", tl, 7*64)
	}
	if tl.Share != 1.0 {
		t.Fatalf("share = %v, want 1.0", tl.Share)
	}
	if rep.LatMax != 45 {
		t.Fatalf("LatMax = %v, want 45", rep.LatMax)
	}
	if rep.LatP50 == 0 {
		t.Fatal("LatP50 should be nonzero")
	}

	var buf bytes.Buffer
	rep.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"abort ratio", "stamp/hot-node", "retry depth", "p90"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateRetryBucketSaturates(t *testing.T) {
	events := []Event{mkAbort(0, 10, 5, 1, 9, 3, NoThread)}
	rep := Aggregate(events, ReportOptions{})
	if rep.Reasons[0].Depth[RetryBuckets-1] != 1 {
		t.Fatalf("retry depth 9 should land in the 4+ bucket: %+v", rep.Reasons[0])
	}
}

func TestMetricsCountersAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Add("cells_done", 3)
	c := m.Counter("tx_aborts")
	c.Add(41)
	c.Add(1)
	if got := m.Get("cells_done"); got != 3 {
		t.Fatalf("cells_done = %d, want 3", got)
	}
	if got := m.Get("tx_aborts"); got != 42 {
		t.Fatalf("tx_aborts = %d, want 42", got)
	}
	if got := m.Get("never_touched"); got != 0 {
		t.Fatalf("never_touched = %d, want 0", got)
	}
	snap := m.Snapshot()
	if snap["cells_done"] != 3 || snap["tx_aborts"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("WriteJSON produced invalid JSON")
	}
	var back map[string]uint64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back["tx_aborts"] != 42 {
		t.Fatalf("round trip tx_aborts = %d, want 42", back["tx_aborts"])
	}
}

func TestValidateFileMissing(t *testing.T) {
	if _, err := ValidateFile(filepath.Join(t.TempDir(), "nope.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want IsNotExist", err)
	}
}
