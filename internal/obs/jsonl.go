package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// eventJSON is the JSONL wire schema of one Event. Kind and Reason travel
// as symbolic names; numeric fields that do not apply to the event kind are
// omitted. ValidateFile enforces exactly this shape (unknown fields are a
// schema-drift error).
type eventJSON struct {
	Kind   string `json:"kind"`
	Thread uint8  `json:"thread"`
	VClock uint64 `json:"vclock"`
	Retry  uint16 `json:"retry,omitempty"`
	// Abort-only fields.
	Reason  string  `json:"reason,omitempty"`
	Line    *uint32 `json:"line,omitempty"`
	Aborter *int16  `json:"aborter,omitempty"`
	// Commit/abort fields.
	ReadLines  uint32 `json:"read_lines,omitempty"`
	WriteLines uint32 `json:"write_lines,omitempty"`
	Dur        uint64 `json:"dur,omitempty"`
	// Mode-switch-only fields (adaptive runtime site transitions).
	From string  `json:"from,omitempty"`
	To   string  `json:"to,omitempty"`
	Site *uint32 `json:"site,omitempty"`
}

func toJSON(ev Event) eventJSON {
	j := eventJSON{
		Kind:   ev.Kind.String(),
		Thread: ev.Thread,
		VClock: ev.VClock,
		Retry:  ev.Retry,
	}
	if ev.Kind == KindCommit || ev.Kind == KindAbort {
		j.ReadLines = ev.ReadLines
		j.WriteLines = ev.WriteLines
		j.Dur = ev.Dur
	}
	if ev.Kind == KindAbort {
		j.Reason = ReasonName(ev.Reason)
		if ev.Line != NoLine {
			line := ev.Line
			j.Line = &line
		}
		if ev.Aborter != NoThread {
			by := ev.Aborter
			j.Aborter = &by
		}
	}
	if ev.Kind == KindModeSwitch {
		j.From = ModeName(uint8(ev.Aborter))
		j.To = ModeName(ev.Reason)
		if ev.Line != NoLine {
			site := ev.Line
			j.Site = &site
		}
	}
	return j
}

// StreamHeader declares the provenance of a JSONL event stream: how many
// events follow, how many the producing ring ever recorded, and how many
// were lost to overwrites. With a header present, Validate cross-checks the
// actual event count against the declaration, so silent ring truncation is
// caught at check time instead of read time.
type StreamHeader struct {
	Events   uint64 `json:"events"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}

// headerJSON is the JSONL wire form of a StreamHeader (always line one).
type headerJSON struct {
	Kind     string `json:"kind"`
	Events   uint64 `json:"events"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}

// HeaderFor builds the stream header matching a quiescent tracer's retained
// events and ring counters.
func HeaderFor(t *Tracer) StreamHeader {
	rec, drop := t.Recorded(), t.Dropped()
	return StreamHeader{Events: rec - drop, Recorded: rec, Dropped: drop}
}

// WriteJSONL writes events as JSON Lines: one object per event, schema as
// validated by ValidateFile.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(toJSON(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLStream writes a header line followed by the events. hdr.Events
// should equal len(events) — Validate will reject the stream otherwise.
func WriteJSONLStream(w io.Writer, hdr StreamHeader, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerJSON{
		Kind:     "header",
		Events:   hdr.Events,
		Recorded: hdr.Recorded,
		Dropped:  hdr.Dropped,
	}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(toJSON(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLStreamFile writes a headered stream to path, creating or
// truncating it.
func WriteJSONLStreamFile(path string, hdr StreamHeader, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONLStream(f, hdr, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteJSONLFile writes events to path, creating or truncating it.
func WriteJSONLFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Validate checks an event stream in JSONL form against the schema: every
// line must parse with no unknown fields, kinds and reasons must be
// well-formed, durations must not exceed the event clock, and each thread's
// clock must be non-decreasing. An optional header on the first line (kind
// "header", written by WriteJSONLStream) must declare an event count
// consistent with its recorded/dropped ring counters and with the events
// that actually follow. It returns the number of events read.
func Validate(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	first := true
	var hdr *headerJSON
	lastClock := map[uint8]uint64{}
	for lineNo := 1; sc.Scan(); lineNo++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if first {
			first = false
			if h, ok, err := parseHeaderLine(raw); err != nil {
				return count, fmt.Errorf("line %d: %v", lineNo, err)
			} else if ok {
				if h.Recorded < h.Dropped {
					return count, fmt.Errorf("line %d: header dropped %d exceeds recorded %d",
						lineNo, h.Dropped, h.Recorded)
				}
				if h.Events != h.Recorded-h.Dropped {
					return count, fmt.Errorf("line %d: header declares %d events but recorded %d - dropped %d = %d",
						lineNo, h.Events, h.Recorded, h.Dropped, h.Recorded-h.Dropped)
				}
				hdr = h
				continue
			}
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var j eventJSON
		if err := dec.Decode(&j); err != nil {
			return count, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if j.Kind == "header" {
			return count, fmt.Errorf("line %d: header after the first line", lineNo)
		}
		switch j.Kind {
		case "begin":
			if j.Reason != "" || j.Dur != 0 {
				return count, fmt.Errorf("line %d: begin event carries commit/abort fields", lineNo)
			}
		case "commit":
			if j.Reason != "" {
				return count, fmt.Errorf("line %d: commit event carries an abort reason", lineNo)
			}
		case "abort":
			if j.Reason == "" {
				return count, fmt.Errorf("line %d: abort event without a reason", lineNo)
			}
		case "mode":
			if j.From == "" || j.To == "" {
				return count, fmt.Errorf("line %d: mode event without from/to modes", lineNo)
			}
			if j.Reason != "" || j.Dur != 0 {
				return count, fmt.Errorf("line %d: mode event carries commit/abort fields", lineNo)
			}
		default:
			return count, fmt.Errorf("line %d: unknown event kind %q", lineNo, j.Kind)
		}
		if j.Kind != "mode" && (j.From != "" || j.To != "" || j.Site != nil) {
			return count, fmt.Errorf("line %d: %s event carries mode-switch fields", lineNo, j.Kind)
		}
		if j.Dur > j.VClock {
			return count, fmt.Errorf("line %d: dur %d exceeds vclock %d", lineNo, j.Dur, j.VClock)
		}
		if last, ok := lastClock[j.Thread]; ok && j.VClock < last {
			return count, fmt.Errorf("line %d: thread %d clock went backwards (%d < %d)",
				lineNo, j.Thread, j.VClock, last)
		}
		lastClock[j.Thread] = j.VClock
		count++
	}
	if err := sc.Err(); err != nil {
		return count, err
	}
	if hdr != nil && uint64(count) != hdr.Events {
		return count, fmt.Errorf("header declares %d events but stream holds %d", hdr.Events, count)
	}
	return count, nil
}

// parseHeaderLine strictly decodes raw as a header line; ok reports whether
// the line is a header at all (a non-header first line is not an error).
func parseHeaderLine(raw []byte) (*headerJSON, bool, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(raw, &probe) != nil || probe.Kind != "header" {
		return nil, false, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var h headerJSON
	if err := dec.Decode(&h); err != nil {
		return nil, true, fmt.Errorf("malformed header: %v", err)
	}
	return &h, true, nil
}

// ValidateFile is Validate over the file at path. CI uses it to guard the
// emitted event streams against schema drift.
func ValidateFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := Validate(f)
	if err != nil {
		return n, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// ReadJSONLFile parses a JSONL event file back into Events (inverse of
// WriteJSONLFile, for tooling that post-processes saved traces). Reason
// names resolve back to codes through the registered namer.
func ReadJSONLFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var j eventJSON
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		if j.Kind == "header" && out == nil && lineNo == 1 {
			continue
		}
		ev := Event{
			Thread:     j.Thread,
			VClock:     j.VClock,
			Retry:      j.Retry,
			ReadLines:  j.ReadLines,
			WriteLines: j.WriteLines,
			Dur:        j.Dur,
			Line:       NoLine,
			Aborter:    NoThread,
		}
		switch j.Kind {
		case "begin":
			ev.Kind = KindBegin
		case "commit":
			ev.Kind = KindCommit
		case "abort":
			ev.Kind = KindAbort
			ev.Reason = reasonCode(j.Reason)
			if j.Line != nil {
				ev.Line = *j.Line
			}
			if j.Aborter != nil {
				ev.Aborter = *j.Aborter
			}
		case "mode":
			ev.Kind = KindModeSwitch
			ev.Reason = modeCode(j.To)
			ev.Aborter = int16(modeCode(j.From))
			if j.Site != nil {
				ev.Line = *j.Site
			}
		default:
			return nil, fmt.Errorf("%s:%d: unknown event kind %q", path, lineNo, j.Kind)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// reasonCode inverts ReasonName over the first 256 codes (reason
// vocabularies are tiny; this is tooling-path only).
func reasonCode(name string) uint8 {
	for c := 0; c < 256; c++ {
		if ReasonName(uint8(c)) == name {
			return uint8(c)
		}
	}
	return 0
}

// modeCode inverts ModeName the same way (mode vocabularies are tiny).
func modeCode(name string) uint8 {
	for c := 0; c < 256; c++ {
		if ModeName(uint8(c)) == name {
			return uint8(c)
		}
	}
	return 0
}
