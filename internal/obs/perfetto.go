package obs

import (
	"encoding/json"
	"io"
	"os"
)

// Chrome trace_event JSON, the format Perfetto and chrome://tracing load.
// Virtual clocks map directly onto the timestamp axis (microseconds in the
// viewer, cost units here): each simulated thread is a track, each committed
// or aborted transaction a complete ("X") slice from its begin to its end,
// and each abort additionally an instant ("i") marker carrying the reason
// and attribution args.

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as a Chrome trace_event JSON document, one
// track per simulated thread with the virtual clock as the time axis. Open
// the output in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// TraceEvents starts non-nil so an empty trace still serialises as
	// "traceEvents": [] — viewers reject a JSON null there.
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}

	threads := map[uint8]bool{}
	for _, ev := range events {
		threads[ev.Thread] = true
	}
	for tid := 0; tid < 256; tid++ {
		if !threads[uint8(tid)] {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   tid,
			Args:  map[string]any{"name": "sim-thread " + itoa(tid)},
		})
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindCommit, KindAbort:
			name := "commit"
			if ev.Kind == KindAbort {
				name = "abort:" + ReasonName(ev.Reason)
			}
			dur := ev.Dur
			// Clamp rather than underflow when a malformed event claims a
			// duration longer than its clock.
			ts := uint64(0)
			if ev.VClock >= ev.Dur {
				ts = ev.VClock - ev.Dur
			}
			args := map[string]any{
				"read_lines":  ev.ReadLines,
				"write_lines": ev.WriteLines,
				"retry":       ev.Retry,
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  name,
				Phase: "X",
				TS:    ts,
				Dur:   &dur,
				PID:   0,
				TID:   int(ev.Thread),
				Args:  args,
			})
			if ev.Kind == KindAbort {
				iargs := map[string]any{"reason": ReasonName(ev.Reason)}
				if ev.Line != NoLine {
					iargs["line"] = ev.Line
				}
				if ev.Aborter != NoThread {
					iargs["aborter"] = ev.Aborter
				}
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name:  "abort",
					Phase: "i",
					TS:    ev.VClock,
					PID:   0,
					TID:   int(ev.Thread),
					Scope: "t",
					Args:  iargs,
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeTraceFile writes the Chrome trace to path, creating or
// truncating it.
func WriteChromeTraceFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
