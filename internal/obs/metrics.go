package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Metrics is an expvar-style registry of named atomic counters: cheap to
// bump from worker goroutines, cheap to snapshot from a progress loop. The
// sweep scheduler publishes cells_done / cells_cached / tx_aborts etc. here
// and the live progress line and METRICS.json read them back.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*atomic.Uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]*atomic.Uint64)}
}

// Counter returns the counter registered under name, creating it at zero on
// first use. The returned pointer is stable; callers may cache it and bump
// with Add without further map lookups.
func (m *Metrics) Counter(name string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = new(atomic.Uint64)
		m.counters[name] = c
	}
	return c
}

// Add bumps the named counter by delta (registering it if needed).
func (m *Metrics) Add(name string, delta uint64) {
	m.Counter(name).Add(delta)
}

// Get returns the current value of the named counter (0 if never touched).
func (m *Metrics) Get(name string) uint64 {
	m.mu.Lock()
	c := m.counters[name]
	m.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Snapshot returns a point-in-time copy of all counters.
func (m *Metrics) Snapshot() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.counters))
	for name, c := range m.counters {
		out[name] = c.Load()
	}
	return out
}

// WriteJSON writes the counters as a JSON object (encoding/json emits map
// keys sorted, so output is deterministic).
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
