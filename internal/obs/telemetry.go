package obs

import (
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"
)

// Telemetry bundles the live-observability pieces into one handle the CLIs
// wire through the harness and sweep layers: the metrics registry the
// publishers write into, the sampler turning it into time series, the
// rolling event log, the worker table, and optionally an HTTP server and a
// flight recorder. A nil *Telemetry everywhere means "telemetry off" — the
// same single-nil-check contract the tracer uses.
type Telemetry struct {
	Registry *Registry
	Sampler  *Sampler
	Log      *EventLog
	Engine   *EngineMetrics
	Flight   *FlightRecorder // nil unless configured

	// workers is swapped by the sweep scheduler at each Prewarm pass while
	// the sampler and HTTP handlers read it concurrently; hence atomic.
	workers atomic.Pointer[WorkerTable]
	server  *httpServer // nil unless configured
	sigquit chan os.Signal
}

// SetWorkers publishes the live worker table (replacing any previous one).
func (t *Telemetry) SetWorkers(w *WorkerTable) { t.workers.Store(w) }

// WorkerTable returns the current worker table, nil when no pool is live.
func (t *Telemetry) WorkerTable() *WorkerTable { return t.workers.Load() }

// TelemetryConfig configures StartTelemetry. Zero values select defaults;
// HTTPAddr "" serves nothing; Flight nil disables the recorder.
type TelemetryConfig struct {
	HTTPAddr       string        // listen address, e.g. ":8080" (empty = no server)
	SampleInterval time.Duration // sampler period (default 500ms)
	SeriesCap      int           // points retained per series (default DefaultSeriesCap)
	LogSegments    int           // event-log segments retained (default DefaultLogSegments)
	Reasons        int           // abort-reason vocabulary size for EngineMetrics
	Modes          int           // mode vocabulary size for EngineMetrics
	Workers        int           // worker-table size (sweep jobs; 0 = no table)
	Flight         *FlightConfig // anomaly-triggered dumps (nil = off)
	SIGQUIT        bool          // also trigger the flight recorder on SIGQUIT
}

// StartTelemetry builds the bundle, starts the sampler, and (when
// configured) the HTTP server and flight recorder. Call Close when done.
func StartTelemetry(cfg TelemetryConfig) (*Telemetry, error) {
	reg := NewRegistry()
	t := &Telemetry{
		Registry: reg,
		Sampler:  NewSampler(reg, cfg.SampleInterval, cfg.SeriesCap),
		Log:      NewEventLog(cfg.LogSegments),
		Engine:   NewEngineMetrics(reg, cfg.Reasons, cfg.Modes),
	}
	if cfg.Workers > 0 {
		t.SetWorkers(NewWorkerTable(cfg.Workers))
	}
	if cfg.Flight != nil {
		t.Flight = newFlightRecorder(*cfg.Flight, t)
		t.Sampler.OnSample(t.Flight.check)
		if cfg.SIGQUIT {
			t.sigquit = make(chan os.Signal, 1)
			signal.Notify(t.sigquit, syscall.SIGQUIT)
			go func() {
				for range t.sigquit {
					t.Flight.Trigger("sigquit", "operator-requested dump")
				}
			}()
		}
	}
	if cfg.HTTPAddr != "" {
		srv, err := startHTTPServer(cfg.HTTPAddr, t)
		if err != nil {
			t.Sampler.Stop()
			return nil, err
		}
		t.server = srv
	}
	t.Sampler.Start()
	return t, nil
}

// Addr returns the HTTP server's actual listen address ("" without one) —
// useful with ":0" in tests and smoke jobs.
func (t *Telemetry) Addr() string {
	if t.server == nil {
		return ""
	}
	return t.server.addr()
}

// Close stops the sampler (taking a final sample), waits for in-flight
// recorder dumps, and shuts the HTTP server down.
func (t *Telemetry) Close() error {
	t.Sampler.Stop()
	if t.sigquit != nil {
		signal.Stop(t.sigquit)
		close(t.sigquit)
		t.sigquit = nil
	}
	if t.Flight != nil {
		t.Flight.Wait()
	}
	if t.server != nil {
		return t.server.close()
	}
	return nil
}

// State is the JSON document /api/state serves and the SSE stream pushes:
// a point-in-time view of counters, gauges, series, workers, and dumps.
type State struct {
	NowMs    int64             `json:"now_ms"`
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]int64  `json:"gauges"`
	Series   []SeriesSnapshot  `json:"series"`
	Workers  []WorkerRow       `json:"workers,omitempty"`
	Flights  []FlightInfo      `json:"flights,omitempty"`
	Segments int               `json:"segments"`
}

// State snapshots the bundle (maxPoints bounds series length; <= 0 = all).
func (t *Telemetry) State(maxPoints int) State {
	s := State{
		NowMs:    time.Now().UnixMilli(),
		Counters: t.Registry.CounterValues(),
		Gauges:   t.Registry.GaugeValues(),
		Series:   t.Sampler.Snapshot(maxPoints),
		Segments: t.Log.Len(),
	}
	if w := t.WorkerTable(); w != nil {
		s.Workers = w.Snapshot()
	}
	if t.Flight != nil {
		s.Flights = t.Flight.Dumps()
	}
	return s
}
